// Rule corpus text format and the CLI flag parser.
#include <gtest/gtest.h>

#include "automation/rule_io.h"
#include "datagen/corpus_generator.h"
#include "instructions/standard_instruction_set.h"
#include "util/args.h"

namespace sidet {
namespace {

TEST(RuleIo, FormatSingleRule) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Rule rule = MakeRule(1, "ventilate", "smoke", "window.open", registry, 4100).value();
  EXPECT_EQ(FormatRule(rule), "WHEN smoke DO window.open USERS 4100 ; ventilate");

  Rule plain = MakeRule(2, "", "motion", "light.on", registry).value();
  EXPECT_EQ(FormatRule(plain), "WHEN motion DO light.on");

  Rule with_arg =
      MakeRule(3, "dim", "occupancy", "light.set_brightness", registry, 7, 0.4).value();
  EXPECT_EQ(FormatRule(with_arg), "WHEN occupancy DO light.set_brightness ARG 0.4 USERS 7 ; dim");
}

TEST(RuleIo, ParseSingleLine) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<Rule> rule = ParseRuleLine(
      "WHEN temperature > 26.5 and occupancy DO ac.cool USERS 123 ; cool the house", 7,
      registry);
  ASSERT_TRUE(rule.ok()) << rule.error().message();
  EXPECT_EQ(rule.value().id, 7u);
  EXPECT_EQ(rule.value().action, "ac.cool");
  EXPECT_EQ(rule.value().user_count, 123u);
  EXPECT_EQ(rule.value().description, "cool the house");
  EXPECT_EQ(rule.value().category, DeviceCategory::kAirConditioning);
}

class RuleLineErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(RuleLineErrorTest, Rejected) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  EXPECT_FALSE(ParseRuleLine(GetParam(), 1, registry).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, RuleLineErrorTest,
                         ::testing::Values("", "smoke DO window.open",
                                           "WHEN smoke", "WHEN smoke DO",
                                           "WHEN smoke DO window.fly",
                                           "WHEN smoke and DO window.open",
                                           "WHEN smoke DO window.open USERS",
                                           "WHEN smoke DO window.open USERS abc",
                                           "WHEN smoke DO window.open USERS 0",
                                           "WHEN smoke DO window.open BOGUS 4",
                                           "WHEN smoke DO window.get_state"));

TEST(RuleIo, CorpusRoundTrip) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CorpusConfig config;
  config.core_rules = 120;
  config.camera_rules = 30;
  Result<GeneratedCorpus> generated = GenerateCorpus(config, registry);
  ASSERT_TRUE(generated.ok());

  const std::string document = FormatCorpus(generated.value().corpus);
  Result<RuleCorpus> parsed = ParseCorpus(document, registry);
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  ASSERT_EQ(parsed.value().size(), generated.value().corpus.size());
  for (std::size_t i = 0; i < parsed.value().size(); ++i) {
    const Rule& original = generated.value().corpus.rules()[i];
    const Rule& round_tripped = parsed.value().rules()[i];
    EXPECT_EQ(round_tripped.action, original.action);
    EXPECT_EQ(round_tripped.user_count, original.user_count);
    EXPECT_EQ(round_tripped.description, original.description);
    // Condition semantics survive: the re-parsed source is equivalent.
    EXPECT_EQ(round_tripped.condition->ToString(), original.condition->ToString());
  }
}

TEST(RuleIo, CorpusSkipsCommentsAndReportsLineNumbers) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<RuleCorpus> ok = ParseCorpus(
      "# header comment\n"
      "\n"
      "WHEN smoke DO window.open\n"
      "   # indented comment\n"
      "WHEN motion DO light.on USERS 5\n",
      registry);
  ASSERT_TRUE(ok.ok()) << ok.error().message();
  EXPECT_EQ(ok.value().size(), 2u);

  Result<RuleCorpus> bad = ParseCorpus(
      "WHEN smoke DO window.open\n"
      "WHEN nonsense( DO light.on\n",
      registry);
  ASSERT_FALSE(bad.ok());
  EXPECT_NE(bad.error().message().find("line 2"), std::string::npos);
}

// --- ArgParser ---------------------------------------------------------------------

TEST(ArgParser, DefaultsAndOverrides) {
  ArgParser parser;
  parser.AddFlag("seed", "42", "rng seed");
  parser.AddFlag("samples", "3000");
  parser.AddFlag("verbose", "false");

  const char* argv[] = {"prog", "--seed", "7", "--verbose=true", "positional"};
  ASSERT_TRUE(parser.Parse(5, argv).ok());
  EXPECT_EQ(parser.GetInt("seed"), 7);
  EXPECT_EQ(parser.GetInt("samples"), 3000);  // default kept
  EXPECT_TRUE(parser.GetBool("verbose"));
  EXPECT_EQ(parser.positional(), (std::vector<std::string>{"positional"}));
}

TEST(ArgParser, Errors) {
  ArgParser parser;
  parser.AddFlag("seed", "1");
  const char* unknown[] = {"prog", "--sneed", "7"};
  EXPECT_FALSE(parser.Parse(3, unknown).ok());
  ArgParser parser2;
  parser2.AddFlag("seed", "1");
  const char* dangling[] = {"prog", "--seed"};
  EXPECT_FALSE(parser2.Parse(2, dangling).ok());
}

TEST(ArgParser, NumericAndHelp) {
  ArgParser parser;
  parser.AddFlag("fraction", "0.25", "a ratio");
  const char* argv[] = {"prog", "--fraction=0.75"};
  ASSERT_TRUE(parser.Parse(2, argv).ok());
  EXPECT_DOUBLE_EQ(parser.GetDouble("fraction"), 0.75);
  EXPECT_NE(parser.Help("prog").find("--fraction"), std::string::npos);
}

}  // namespace
}  // namespace sidet
