// Strings, SimClock, stats, CSV, table renderer, logging.
#include <gtest/gtest.h>

#include "util/csv.h"
#include "util/log.h"
#include "util/sim_clock.h"
#include "util/stats.h"
#include "util/strings.h"
#include "util/table.h"

namespace sidet {
namespace {

TEST(Strings, SplitAndJoin) {
  EXPECT_EQ(Split("a,b,,c", ','), (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(Split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(Join({"x", "y", "z"}, "--"), "x--y--z");
  EXPECT_EQ(SplitWhitespace("  a\t b\nc  "), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(Strings, TrimAndCase) {
  EXPECT_EQ(Trim("  body  "), "body");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_EQ(ToUpper("MiXeD"), "MIXED");
}

TEST(Strings, PrefixSuffixContains) {
  EXPECT_TRUE(StartsWith("window.open", "window."));
  EXPECT_FALSE(StartsWith("win", "window"));
  EXPECT_TRUE(EndsWith("file.json", ".json"));
  EXPECT_TRUE(ContainsIgnoreCase("Smart Home", "smart"));
  EXPECT_FALSE(ContainsIgnoreCase("Smart Home", "hotel"));
}

TEST(Strings, FormatAndHumanize) {
  EXPECT_EQ(Format("%d-%s-%.2f", 7, "x", 1.5), "7-x-1.50");
  EXPECT_EQ(Humanize("kitchen_smoke"), "Kitchen smoke");
}

TEST(SimTime, FieldDecomposition) {
  const SimTime t = SimTime::FromDayTime(3, 14, 5, 9);
  EXPECT_EQ(t.day(), 3);
  EXPECT_EQ(t.hour(), 14);
  EXPECT_EQ(t.minute(), 5);
  EXPECT_EQ(t.day_of_week(), DayOfWeek::kThursday);  // epoch day 0 is Monday
  EXPECT_FALSE(t.is_weekend());
  EXPECT_NEAR(t.hour_of_day(), 14.0 + 5.0 / 60.0 + 9.0 / 3600.0, 1e-9);
}

TEST(SimTime, WeekendAndSegments) {
  EXPECT_TRUE(SimTime::FromDayTime(5, 12).is_weekend());   // Saturday
  EXPECT_TRUE(SimTime::FromDayTime(6, 12).is_weekend());   // Sunday
  EXPECT_EQ(SimTime::FromDayTime(0, 3).day_segment(), DaySegment::kNight);
  EXPECT_EQ(SimTime::FromDayTime(0, 6).day_segment(), DaySegment::kMorning);
  EXPECT_EQ(SimTime::FromDayTime(0, 13).day_segment(), DaySegment::kAfternoon);
  EXPECT_EQ(SimTime::FromDayTime(0, 23).day_segment(), DaySegment::kEvening);
}

TEST(SimClock, AdvancesMonotonically) {
  SimClock clock(SimTime(100));
  clock.AdvanceSeconds(60);
  EXPECT_EQ(clock.now().seconds(), 160);
  clock.AdvanceTo(SimTime(50));  // never goes backwards
  EXPECT_EQ(clock.now().seconds(), 160);
  clock.AdvanceTo(SimTime(500));
  EXPECT_EQ(clock.now().seconds(), 500);
}

TEST(Stats, Descriptive) {
  const std::vector<double> v = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(v), 3.0);
  EXPECT_DOUBLE_EQ(Variance(v), 2.5);
  EXPECT_DOUBLE_EQ(Min(v), 1.0);
  EXPECT_DOUBLE_EQ(Max(v), 5.0);
  EXPECT_DOUBLE_EQ(Median(v), 3.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100), 5.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25), 2.0);
}

TEST(Stats, PearsonCorrelation) {
  const std::vector<double> x = {1, 2, 3, 4};
  const std::vector<double> y = {2, 4, 6, 8};
  const std::vector<double> anti = {8, 6, 4, 2};
  const std::vector<double> flat = {5, 5, 5, 5};
  EXPECT_NEAR(PearsonCorrelation(x, y), 1.0, 1e-12);
  EXPECT_NEAR(PearsonCorrelation(x, anti), -1.0, 1e-12);
  EXPECT_DOUBLE_EQ(PearsonCorrelation(x, flat), 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  RunningStats running;
  const std::vector<double> v = {2.5, -1.0, 7.25, 0.0, 3.5};
  for (const double x : v) running.Add(x);
  EXPECT_EQ(running.count(), v.size());
  EXPECT_NEAR(running.mean(), Mean(v), 1e-12);
  EXPECT_NEAR(running.variance(), Variance(v), 1e-12);
  EXPECT_DOUBLE_EQ(running.min(), -1.0);
  EXPECT_DOUBLE_EQ(running.max(), 7.25);
}

TEST(Stats, HistogramBinsAndClamps) {
  FixedBinHistogram h(0.0, 10.0, 5);
  h.Add(0.5);
  h.Add(9.9);
  h.Add(-100.0);  // clamps to first bin
  h.Add(100.0);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.bin_lo(1), 2.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(1), 4.0);
}

TEST(Csv, EscapingRoundTrip) {
  const std::vector<CsvRow> rows = {
      {"plain", "with,comma", "with\"quote", "with\nnewline"},
      {"", "second", "row", "ok"},
  };
  Result<std::vector<CsvRow>> parsed = ParseCsv(WriteCsv(rows));
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value(), rows);
}

TEST(Csv, CrlfAndErrors) {
  Result<std::vector<CsvRow>> parsed = ParseCsv("a,b\r\nc,d\r\n");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().size(), 2u);
  EXPECT_EQ(parsed.value()[1][1], "d");
  EXPECT_FALSE(ParseCsv("\"unterminated").ok());
  EXPECT_FALSE(ParseCsv("ab\"cd").ok());
}

TEST(TextTable, AlignsColumns) {
  TextTable table({"name", "value"});
  table.AddRow({"x", "1"});
  table.AddRow({"longer-name", "2.5"});
  const std::string rendered = table.Render();
  EXPECT_NE(rendered.find("| name        | value |"), std::string::npos);
  EXPECT_NE(rendered.find("| longer-name | 2.5   |"), std::string::npos);
}

TEST(TextTable, CellFormatting) {
  EXPECT_EQ(TextTable::Cell(0.98765, 3), "0.988");
  EXPECT_EQ(TextTable::Percent(0.8529), "85.29%");
}

TEST(BarChart, ProportionalBars) {
  BarChart chart("title", 10);
  chart.Add("full", 10.0);
  chart.Add("half", 5.0);
  const std::string rendered = chart.Render();
  EXPECT_NE(rendered.find("##########"), std::string::npos);
  EXPECT_NE(rendered.find("#####"), std::string::npos);
}

TEST(Log, CaptureAndLevels) {
  std::string captured;
  {
    ScopedLogCapture capture(captured);
    SetMinLogLevel(LogLevel::kInfo);
    LogDebug("dropped");
    LogInfo("kept");
    LogError("also kept");
  }
  EXPECT_EQ(captured.find("dropped"), std::string::npos);
  EXPECT_NE(captured.find("INFO: kept"), std::string::npos);
  EXPECT_NE(captured.find("ERROR: also kept"), std::string::npos);
  // Sink restored after scope: logging after must not touch `captured`.
  const std::string before = captured;
  LogInfo("outside");
  EXPECT_EQ(captured, before);
}

// Regression: Log() used to invoke the sink while holding the global mutex,
// so a sink that itself logged deadlocked the process. The sink now runs
// outside the lock; a re-entrant sink must complete and both messages land.
TEST(Log, ReentrantSinkDoesNotDeadlock) {
  std::vector<std::string> messages;
  const LogSink previous = SetLogSink([&messages](LogLevel, std::string_view message) {
    messages.emplace_back(message);
    // One level of re-entry, guarded so the recursion terminates.
    if (message.find("nested") == std::string_view::npos) {
      LogInfo("nested from sink");
    }
  });
  SetMinLogLevel(LogLevel::kInfo);
  LogInfo("outer");
  SetLogSink(previous);
  ASSERT_EQ(messages.size(), 2u);
  EXPECT_EQ(messages[0], "outer");
  EXPECT_EQ(messages[1], "nested from sink");
}

TEST(Log, MinLogLevelRoundTrips) {
  const LogLevel original = MinLogLevel();
  SetMinLogLevel(LogLevel::kError);
  EXPECT_EQ(MinLogLevel(), LogLevel::kError);
  SetMinLogLevel(LogLevel::kDebug);
  EXPECT_EQ(MinLogLevel(), LogLevel::kDebug);
  SetMinLogLevel(original);
}

TEST(Log, ParseLogLevelSpellings) {
  EXPECT_EQ(ParseLogLevel("debug", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("WARN", LogLevel::kInfo), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("Error", LogLevel::kInfo), LogLevel::kError);
  EXPECT_EQ(ParseLogLevel("info", LogLevel::kError), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("0", LogLevel::kInfo), LogLevel::kDebug);
  EXPECT_EQ(ParseLogLevel("3", LogLevel::kInfo), LogLevel::kError);
  // Unknown spellings keep the fallback.
  EXPECT_EQ(ParseLogLevel("verbose", LogLevel::kWarn), LogLevel::kWarn);
  EXPECT_EQ(ParseLogLevel("", LogLevel::kInfo), LogLevel::kInfo);
  EXPECT_EQ(ParseLogLevel("9", LogLevel::kInfo), LogLevel::kInfo);
}

}  // namespace
}  // namespace sidet
