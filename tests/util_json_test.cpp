#include "util/json.h"

#include <gtest/gtest.h>

namespace sidet {
namespace {

TEST(Json, Scalars) {
  EXPECT_EQ(Json(nullptr).Dump(), "null");
  EXPECT_EQ(Json(true).Dump(), "true");
  EXPECT_EQ(Json(false).Dump(), "false");
  EXPECT_EQ(Json(42).Dump(), "42");
  EXPECT_EQ(Json(-7.5).Dump(), "-7.5");
  EXPECT_EQ(Json("hi").Dump(), "\"hi\"");
}

TEST(Json, IntegersPrintWithoutExponent) {
  EXPECT_EQ(Json(1000000.0).Dump(), "1000000");
  EXPECT_EQ(Json(static_cast<std::int64_t>(-123456789)).Dump(), "-123456789");
}

TEST(Json, StringEscaping) {
  EXPECT_EQ(Json("a\"b\\c\n\t").Dump(), "\"a\\\"b\\\\c\\n\\t\"");
  EXPECT_EQ(Json(std::string(1, '\x01')).Dump(), "\"\\u0001\"");
}

TEST(Json, ObjectPreservesInsertionOrder) {
  Json obj = Json::Object();
  obj["zebra"] = 1;
  obj["apple"] = 2;
  obj["mid"] = 3;
  EXPECT_EQ(obj.Dump(), "{\"zebra\":1,\"apple\":2,\"mid\":3}");
}

TEST(Json, ObjectEqualityIsOrderInsensitive) {
  Json a = Json::Object();
  a["x"] = 1;
  a["y"] = 2;
  Json b = Json::Object();
  b["y"] = 2;
  b["x"] = 1;
  EXPECT_EQ(a, b);
}

TEST(Json, LookupHelpers) {
  Json obj = Json::Object();
  obj["n"] = 5;
  obj["s"] = "text";
  obj["b"] = true;
  EXPECT_EQ(obj.number_or("n", -1), 5);
  EXPECT_EQ(obj.number_or("missing", -1), -1);
  EXPECT_EQ(obj.string_or("s", "x"), "text");
  EXPECT_EQ(obj.string_or("n", "x"), "x");  // wrong type -> fallback
  EXPECT_TRUE(obj.bool_or("b", false));
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(JsonParse, BasicDocument) {
  Result<Json> parsed = Json::Parse(R"({"a": [1, 2.5, "x"], "b": {"c": null}, "d": true})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  const Json& v = parsed.value();
  EXPECT_EQ(v.find("a")->as_array().size(), 3u);
  EXPECT_EQ(v.find("a")->as_array()[1].as_number(), 2.5);
  EXPECT_TRUE(v.find("b")->find("c")->is_null());
  EXPECT_TRUE(v.find("d")->as_bool());
}

TEST(JsonParse, WhitespaceTolerant) {
  Result<Json> parsed = Json::Parse("  {\n \"k\" :\t[ ] }  ");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed.value().find("k")->as_array().empty());
}

TEST(JsonParse, UnicodeEscape) {
  Result<Json> parsed = Json::Parse(R"("Aé")");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().as_string(), "A\xc3\xa9");
}

TEST(JsonParse, NumbersWithExponents) {
  Result<Json> parsed = Json::Parse("[1e3, -2.5E-2, 0.125]");
  ASSERT_TRUE(parsed.ok());
  EXPECT_DOUBLE_EQ(parsed.value().as_array()[0].as_number(), 1000.0);
  EXPECT_DOUBLE_EQ(parsed.value().as_array()[1].as_number(), -0.025);
}

class JsonParseErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonParseErrorTest, RejectsMalformedInput) {
  EXPECT_FALSE(Json::Parse(GetParam()).ok()) << "input: " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, JsonParseErrorTest,
                         ::testing::Values("", "{", "}", "[1,", "[1 2]", "{\"a\" 1}",
                                           "{\"a\":}", "tru", "nul", "\"unterminated",
                                           "01a", "{\"a\":1} extra", "[1,]nope",
                                           "\"bad \\q escape\"", "{\"a\": \"\\u00g1\"}"));

class JsonRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(JsonRoundTripTest, ParseDumpParseIsStable) {
  Result<Json> first = Json::Parse(GetParam());
  ASSERT_TRUE(first.ok()) << first.error().message();
  const std::string dumped = first.value().Dump();
  Result<Json> second = Json::Parse(dumped);
  ASSERT_TRUE(second.ok()) << second.error().message();
  EXPECT_EQ(first.value(), second.value());
  EXPECT_EQ(dumped, second.value().Dump());
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, JsonRoundTripTest,
    ::testing::Values("null", "true", "3.25", "\"text with \\\"quotes\\\"\"", "[]", "{}",
                      "[1,[2,[3,[4]]]]", R"({"sensors":{"smoke":{"kind":"binary","value":true}}})",
                      R"([{"a":1},{"b":[true,false,null]},"mixed"])",
                      R"({"deep":{"deep":{"deep":{"deep":{"x":0.5}}}}})"));

TEST(JsonParse, DepthLimitEnforced) {
  std::string deep(300, '[');
  deep += std::string(300, ']');
  EXPECT_FALSE(Json::Parse(deep).ok());
}

TEST(Json, PrettyRendersIndented) {
  Json obj = Json::Object();
  obj["list"] = JsonArray{Json(1), Json(2)};
  const std::string pretty = obj.Pretty(2);
  EXPECT_NE(pretty.find("\n  \"list\": [\n"), std::string::npos);
  // Pretty output re-parses to the same value.
  Result<Json> reparsed = Json::Parse(pretty);
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), obj);
}

TEST(Json, MutationThroughIndexOperator) {
  Json obj = Json::Object();
  obj["a"] = 1;
  obj["a"] = 2;  // overwrite, no duplicate key
  EXPECT_EQ(obj.as_object().size(), 1u);
  EXPECT_EQ(obj.find("a")->as_number(), 2);
}

}  // namespace
}  // namespace sidet
