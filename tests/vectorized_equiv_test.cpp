// Seeded equivalence suite for the vectorized judge hot path (DESIGN.md §15):
// the branch-free block kernel, the scalar flat-array walk and the original
// pointer trees must agree bit-for-bit — same leaf, same stored double — on
// every forest, every batch shape (including ragged tails shorter than one
// kBlockRows block), and through the full ContextIds::JudgeBatch pipeline
// with the vectorized engine on or off. Also holds the allocation-free
// guarantee for ScoreBatch (via the alloc_hook.cpp operator-new probe) and a
// concurrency stress the TSan CI job patrols.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/detector.h"
#include "core/feature_memory.h"
#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "instructions/standard_instruction_set.h"
#include "ml/compiled_tree.h"
#include "instructions/threat.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "util/alloc_probe.h"
#include "util/json.h"
#include "util/rng.h"

namespace sidet {
namespace {

// ----- Kernel-level equivalence: block vs scalar vs pointer walk -----------

std::vector<FeatureSpec> MixedFeatures() {
  std::vector<FeatureSpec> specs;
  for (int f = 0; f < 6; ++f) {
    FeatureSpec spec;
    spec.name = "num" + std::to_string(f);
    specs.push_back(std::move(spec));
  }
  FeatureSpec cat;
  cat.name = "kind";
  cat.categorical = true;
  cat.categories = {"a", "b", "c", "d", "e"};
  specs.push_back(std::move(cat));
  return specs;
}

std::vector<double> RandomRow(Rng& rng, std::size_t num_features) {
  std::vector<double> row(num_features);
  for (std::size_t f = 0; f + 1 < num_features; ++f) row[f] = rng.UniformDouble(-4.0, 4.0);
  row[num_features - 1] = static_cast<double>(rng.UniformInt(0, 4));
  return row;
}

Dataset TrainingData(std::uint64_t seed, std::size_t rows) {
  Dataset data(MixedFeatures());
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> row = RandomRow(rng, data.num_features());
    const bool label =
        row[0] + row[1] * row[2] > 0.3 || (row[6] == 3.0 && row[4] < 0) || row[5] > 2.5;
    const bool flipped = rng.Bernoulli(0.05);
    data.Add(std::move(row), (label != flipped) ? 1 : 0);
  }
  return data;
}

// Batch shapes: multiples of the 8-row block, ragged tails, and sub-block
// counts that never reach the kernel at all.
const std::size_t kBatchShapes[] = {1, 3, 7, 8, 64, 203, 1024};

TEST(VectorizedEquiv, ForestBlockScalarAndPointerWalksAgreeBitwise) {
  const std::uint64_t kForestSeeds[] = {3, 17, 29, 41, 55};
  for (const std::uint64_t seed : kForestSeeds) {
    const Dataset train = TrainingData(seed, 600);
    RandomForestParams params;
    params.trees = 11;
    params.seed = seed;
    RandomForest forest(params);
    ASSERT_TRUE(forest.Fit(train).ok());
    const CompiledForest compiled = CompiledForest::Compile(forest);

    Rng rng(seed ^ 0xbeefULL);
    for (const std::size_t count : kBatchShapes) {
      std::vector<std::vector<double>> rows;
      std::vector<const double*> ptrs;
      rows.reserve(count);
      ptrs.reserve(count);
      for (std::size_t i = 0; i < count; ++i) {
        rows.push_back(RandomRow(rng, train.num_features()));
        ptrs.push_back(rows.back().data());
      }

      std::vector<double> block(count, -1.0);
      std::vector<double> scalar(count, -2.0);
      compiled.PredictRows(ptrs.data(), count, block.data());
      compiled.PredictRowsScalar(ptrs.data(), count, scalar.data());
      for (std::size_t i = 0; i < count; ++i) {
        // Bit-exact, not approximate: same leaves summed in the same order.
        EXPECT_EQ(block[i], scalar[i]) << "seed " << seed << " count " << count << " row " << i;
        EXPECT_EQ(block[i], forest.PredictProbability(rows[i]))
            << "seed " << seed << " count " << count << " row " << i;
      }
    }
  }
}

TEST(VectorizedEquiv, TreeBlockKernelMatchesPointerTreeOnEveryShape) {
  const std::uint64_t kTreeSeeds[] = {5, 23, 71};
  for (const std::uint64_t seed : kTreeSeeds) {
    const Dataset train = TrainingData(seed, 700);
    DecisionTree tree;
    ASSERT_TRUE(tree.Fit(train).ok());
    const CompiledTree compiled = CompiledTree::Compile(tree);

    Rng rng(seed * 7 + 1);
    for (const std::size_t count : kBatchShapes) {
      std::vector<std::vector<double>> rows;
      std::vector<const double*> ptrs;
      for (std::size_t i = 0; i < count; ++i) {
        rows.push_back(RandomRow(rng, train.num_features()));
        ptrs.push_back(rows.back().data());
      }
      std::vector<double> block(count, -1.0);
      compiled.PredictRows(ptrs.data(), count, block.data());
      for (std::size_t i = 0; i < count; ++i) {
        EXPECT_EQ(block[i], tree.PredictProbability(rows[i]))
            << "seed " << seed << " count " << count << " row " << i;
      }
    }
  }
}

// ----- Pipeline-level equivalence: JudgeBatch engines and per-row Judge ----

// Expensive fixtures built once: registry, corpus, and a serialized trained
// memory that can be rehydrated into as many independent IDS instances as
// the tests need (ContextFeatureMemory is move-only).
class JudgeEquivFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new InstructionRegistry(BuildStandardInstructionSet());
    Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, *registry_);
    ASSERT_TRUE(corpus.ok());
    ContextFeatureMemory memory;
    MemoryTrainingOptions options;
    options.samples_per_device = 1500;  // keep the suite fast
    ASSERT_TRUE(memory.TrainFromCorpus(corpus.value().corpus, options).ok());
    memory_json_ = new Json(memory.ToJson());
  }
  static void TearDownTestSuite() {
    delete memory_json_;
    delete registry_;
    memory_json_ = nullptr;
    registry_ = nullptr;
  }

  static ContextIds MakeIds() {
    Result<ContextFeatureMemory> memory = ContextFeatureMemory::FromJson(*memory_json_);
    EXPECT_TRUE(memory.ok());
    return ContextIds(SensitiveInstructionDetector(PaperTableThree()),
                      std::move(memory).value());
  }

  // A context rich enough to featurize every evaluated family's schema.
  static SensorSnapshot RichSnapshot(SimTime at, double temperature, bool motion) {
    SensorSnapshot snapshot(at);
    snapshot.Set("smoke", SensorType::kSmoke, SensorValue::Binary(false));
    snapshot.Set("gas_leak", SensorType::kGasLeak, SensorValue::Binary(false));
    snapshot.Set("voice_command", SensorType::kVoiceCommand, SensorValue::Binary(true));
    snapshot.Set("lock_state", SensorType::kLockState, SensorValue::Binary(true));
    snapshot.Set("temperature", SensorType::kTemperature,
                 SensorValue::Continuous(temperature));
    snapshot.Set("outdoor_temperature", SensorType::kOutdoorTemperature,
                 SensorValue::Continuous(temperature + 8.0));
    snapshot.Set("air_quality", SensorType::kAirQuality, SensorValue::Continuous(60.0));
    snapshot.Set("weather_condition", SensorType::kWeatherCondition,
                 SensorValue::Categorical("clear", 0));
    snapshot.Set("motion", SensorType::kMotion, SensorValue::Binary(motion));
    snapshot.Set("occupancy", SensorType::kOccupancy, SensorValue::Binary(true));
    snapshot.Set("humidity", SensorType::kHumidity, SensorValue::Continuous(45.0));
    snapshot.Set("window_contact", SensorType::kWindowContact, SensorValue::Binary(false));
    snapshot.Set("illuminance", SensorType::kIlluminance, SensorValue::Continuous(300.0));
    snapshot.Set("noise_level", SensorType::kNoiseLevel, SensorValue::Continuous(40.0));
    return snapshot;
  }

  // A mixed request stream: scored rows for several modelled families over a
  // few distinct contexts, non-sensitive rows, sensitive-but-unmodelled rows
  // (security camera), and error rows (empty snapshot => missing sensors).
  struct Workload {
    std::vector<SensorSnapshot> snapshots;
    SensorSnapshot empty;
    std::vector<JudgeRequest> requests;
  };

  static Workload MakeWorkload(std::size_t rows) {
    Workload w;
    const SimTime noon = SimTime::FromDayTime(3, 12);
    const SimTime night = SimTime::FromDayTime(3, 23);
    w.snapshots.push_back(RichSnapshot(noon, 21.0, true));
    w.snapshots.push_back(RichSnapshot(noon, 33.0, false));
    w.snapshots.push_back(RichSnapshot(night, 18.0, false));
    const char* kNames[] = {"window.open",  "window.close", "light.on",
                            "light.off",    "ac.cool",      "curtain.open",
                            "kettle.boil",  "tv.on",        "camera.enable",
                            "window.open"};
    const InstructionRegistry& registry = *registry_;
    for (std::size_t i = 0; i < rows; ++i) {
      JudgeRequest request;
      request.instruction = registry.FindByName(kNames[i % std::size(kNames)]);
      EXPECT_NE(request.instruction, nullptr);
      // Every 13th row judges against the empty snapshot (error rows for
      // modelled families); the rest cycle the rich contexts.
      const SensorSnapshot& snapshot =
          i % 13 == 12 ? w.empty : w.snapshots[(i / 7) % w.snapshots.size()];
      request.snapshot = &snapshot;
      request.time = snapshot.time();
      w.requests.push_back(request);
    }
    return w;
  }

  static InstructionRegistry* registry_;
  static Json* memory_json_;
};

InstructionRegistry* JudgeEquivFixture::registry_ = nullptr;
Json* JudgeEquivFixture::memory_json_ = nullptr;

void ExpectSameJudgement(const Judgement& a, const Judgement& b, std::size_t row) {
  EXPECT_EQ(a.sensitive, b.sensitive) << "row " << row;
  EXPECT_EQ(a.allowed, b.allowed) << "row " << row;
  EXPECT_EQ(a.consistency, b.consistency) << "row " << row;  // bitwise
  EXPECT_EQ(a.reason, b.reason) << "row " << row;
  EXPECT_EQ(a.tier, b.tier) << "row " << row;
}

TEST_F(JudgeEquivFixture, VectorizedAndLegacyBatchEnginesAreBitIdentical) {
  const Workload w = MakeWorkload(1000);
  for (const int threads : {1, 4}) {
    ContextIds vectorized = MakeIds();
    ContextIds legacy = MakeIds();
    legacy.EnableVectorizedBatch(false);

    const std::vector<Judgement> a = vectorized.JudgeBatch(w.requests, threads);
    const std::vector<Judgement> b = legacy.JudgeBatch(w.requests, threads);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) ExpectSameJudgement(a[i], b[i], i);

    // Same verdict mix => same stats counters.
    EXPECT_EQ(vectorized.stats().ToJson().Dump(), legacy.stats().ToJson().Dump());
  }
}

TEST_F(JudgeEquivFixture, BatchMatchesPerRowJudgeAndPointerTrees) {
  const Workload w = MakeWorkload(400);
  ContextIds batch_ids = MakeIds();
  ContextIds pointer_ids = MakeIds();
  pointer_ids.EnableCompiledInference(false);  // original pointer-walk trees
  ContextIds row_ids = MakeIds();

  const std::vector<Judgement> batched = batch_ids.JudgeBatch(w.requests, /*threads=*/2);
  const std::vector<Judgement> pointered = pointer_ids.JudgeBatch(w.requests, /*threads=*/2);
  ASSERT_EQ(batched.size(), w.requests.size());
  for (std::size_t i = 0; i < batched.size(); ++i) {
    ExpectSameJudgement(batched[i], pointered[i], i);
  }

  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    const JudgeRequest& request = w.requests[i];
    Result<Judgement> single =
        row_ids.Judge(*request.instruction, *request.snapshot, request.time);
    if (!single.ok()) {
      // Judge() propagates judgement failures as errors; the batch fails the
      // row closed in place with the same classification.
      EXPECT_FALSE(batched[i].allowed) << "row " << i;
      EXPECT_EQ(batched[i].consistency, 0.0) << "row " << i;
      EXPECT_TRUE(batched[i].reason.rfind("judgement error: ", 0) == 0) << "row " << i;
      continue;
    }
    ExpectSameJudgement(batched[i], single.value(), i);
  }
  // Same judged/allowed/blocked/error tallies whichever path ran.
  EXPECT_EQ(batch_ids.stats().ToJson().Dump(), row_ids.stats().ToJson().Dump());
}

TEST_F(JudgeEquivFixture, ScoreBatchMatchesJudgeBatchWithSentinels) {
  const Workload w = MakeWorkload(500);
  ContextIds ids = MakeIds();
  const std::vector<Judgement> judged = ids.JudgeBatch(w.requests, /*threads=*/1);

  ContextIds scorer = MakeIds();
  std::vector<double> probabilities(w.requests.size(), -1.0);
  ASSERT_TRUE(scorer.ScoreBatch(w.requests, probabilities, /*threads=*/1).ok());
  for (std::size_t i = 0; i < w.requests.size(); ++i) {
    const Judgement& judgement = judged[i];
    if (!judgement.sensitive || judgement.reason == "category outside the modelled scope") {
      EXPECT_EQ(probabilities[i], 1.0) << "row " << i;  // would pass
    } else if (judgement.reason.rfind("judgement error: ", 0) == 0) {
      EXPECT_EQ(probabilities[i], 0.0) << "row " << i;  // would fail closed
    } else {
      EXPECT_EQ(probabilities[i], judgement.consistency) << "row " << i;  // bitwise
    }
  }
  // ScoreBatch is the probability-only core: no stats, no audit.
  EXPECT_EQ(scorer.stats().judged, 0u);
}

TEST_F(JudgeEquivFixture, ScoreBatchIsAllocationFreeOnceWarm) {
  if (!AllocProbe::Active()) {
    GTEST_SKIP() << "allocation hook not linked (sanitizer build)";
  }
  Workload w = MakeWorkload(512);
  // Error rows allocate their message by design; keep this stream clean.
  for (JudgeRequest& request : w.requests) {
    if (request.snapshot == &w.empty) {
      request.snapshot = &w.snapshots[0];
      request.time = w.snapshots[0].time();
    }
  }
  ContextIds ids = MakeIds();
  std::vector<double> probabilities(w.requests.size(), 0.0);
  // Warm the reusable scratch (arena growth, reason-cache, group slots).
  ASSERT_TRUE(ids.ScoreBatch(w.requests, probabilities, /*threads=*/1).ok());
  ASSERT_TRUE(ids.ScoreBatch(w.requests, probabilities, /*threads=*/1).ok());

  AllocProbe::Reset();
  ASSERT_TRUE(ids.ScoreBatch(w.requests, probabilities, /*threads=*/1).ok());
  EXPECT_EQ(AllocProbe::Count(), 0u)
      << "steady-state ScoreBatch must not touch the heap";
}

TEST_F(JudgeEquivFixture, ConcurrentJudgeBatchesAreStableAndRaceFree) {
  const Workload w = MakeWorkload(512);
  // Internal lanes: repeated multi-threaded batches over one IDS must agree
  // with themselves run to run (and run clean under the TSan CI job).
  ContextIds ids = MakeIds();
  const std::vector<Judgement> reference = ids.JudgeBatch(w.requests, /*threads=*/4);
  for (int iteration = 0; iteration < 8; ++iteration) {
    const std::vector<Judgement> repeat = ids.JudgeBatch(w.requests, /*threads=*/4);
    for (std::size_t i = 0; i < repeat.size(); ++i) {
      ExpectSameJudgement(reference[i], repeat[i], i);
    }
  }
  // Instance-parallel: the serving contract is one thread per ContextIds;
  // independent instances must not interfere through shared state.
  std::vector<std::vector<Judgement>> results(4);
  {
    std::vector<std::thread> drivers;
    for (std::size_t t = 0; t < results.size(); ++t) {
      drivers.emplace_back([&, t] {
        ContextIds lane = MakeIds();
        for (int repeat = 0; repeat < 3; ++repeat) {
          results[t] = lane.JudgeBatch(w.requests, /*threads=*/2);
        }
      });
    }
    for (std::thread& driver : drivers) driver.join();
  }
  for (std::size_t t = 0; t < results.size(); ++t) {
    ASSERT_EQ(results[t].size(), reference.size()) << "driver " << t;
    for (std::size_t i = 0; i < reference.size(); ++i) {
      ExpectSameJudgement(reference[i], results[t][i], i);
    }
  }
}

}  // namespace
}  // namespace sidet
