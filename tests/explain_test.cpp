// Verdict explainability (DESIGN.md §17): the Saabas attribution walk over
// the compiled forests. The contract under test is exactness — bias + every
// per-feature contribution + residual reproduces the served consistency
// bit-for-bit, batch and per-row explanation agree exactly, the flight
// recorder's stamped attribution notes round-trip through the session
// NDJSON, and replay resolves recorded/replayed attributions on verdict
// flips between models.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

#include "core/ids.h"
#include "datagen/context_schema.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "ml/compiled_tree.h"
#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "replay/flight_recorder.h"
#include "replay/replay_engine.h"
#include "util/rng.h"

namespace sidet {
namespace {

// --- forest-level exactness -------------------------------------------------

std::vector<FeatureSpec> MixedFeatures() {
  std::vector<FeatureSpec> specs;
  for (int f = 0; f < 5; ++f) {
    FeatureSpec spec;
    spec.name = "num" + std::to_string(f);
    specs.push_back(std::move(spec));
  }
  FeatureSpec cat;
  cat.name = "kind";
  cat.categorical = true;
  cat.categories = {"a", "b", "c", "d"};
  specs.push_back(std::move(cat));
  return specs;
}

std::vector<double> RandomRow(Rng& rng, std::size_t num_features) {
  std::vector<double> row(num_features);
  for (std::size_t f = 0; f + 1 < num_features; ++f) row[f] = rng.UniformDouble(-3.0, 3.0);
  row[num_features - 1] = static_cast<double>(rng.UniformInt(0, 3));
  return row;
}

Dataset TrainingData(std::uint64_t seed, std::size_t rows) {
  Dataset data(MixedFeatures());
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> row = RandomRow(rng, data.num_features());
    const bool label = row[0] + row[1] * row[2] > 0.25 || (row[5] == 2.0 && row[3] < 0);
    const bool flipped = rng.Bernoulli(0.05);
    data.Add(std::move(row), (label != flipped) ? 1 : 0);
  }
  return data;
}

// bias + contributions (column order) + residual must reproduce the margin
// exactly — the stored double, not an approximation.
void ExpectClosure(const ForestExplanation& explanation) {
  double partial = explanation.bias;
  for (const double c : explanation.contributions) partial += c;
  partial += explanation.residual;
  EXPECT_EQ(partial, explanation.margin);
}

TEST(Explain, CompiledTreeAttributionClosesBitForBit) {
  const Dataset train = TrainingData(7, 800);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  const CompiledTree compiled = CompiledTree::Compile(tree);

  Rng rng(17);
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> row = RandomRow(rng, train.num_features());
    const ForestExplanation explanation = compiled.Explain(row);
    // The attribution walk takes the scoring walk's exact branches: the
    // margin carries the served probability's bit pattern.
    EXPECT_EQ(explanation.margin, compiled.PredictProbability(row)) << "row " << i;
    ASSERT_EQ(explanation.contributions.size(), train.num_features());
    ExpectClosure(explanation);
  }
}

TEST(Explain, CompiledForestAttributionClosesBitForBit) {
  const Dataset train = TrainingData(21, 900);
  RandomForestParams params;
  params.trees = 15;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());
  const CompiledForest compiled = CompiledForest::Compile(forest);

  Rng rng(29);
  bool saw_negative = false;
  bool saw_positive = false;
  for (int i = 0; i < 2000; ++i) {
    const std::vector<double> row = RandomRow(rng, train.num_features());
    const ForestExplanation explanation = compiled.Explain(row);
    EXPECT_EQ(explanation.margin, compiled.PredictProbability(row)) << "row " << i;
    ExpectClosure(explanation);
    for (const double c : explanation.contributions) {
      saw_negative |= c < 0.0;
      saw_positive |= c > 0.0;
    }
  }
  // Signed attribution, not importance: real forests push both ways.
  EXPECT_TRUE(saw_negative);
  EXPECT_TRUE(saw_positive);
}

TEST(Explain, ScoringKernelsNeverReadTheAttributionArrays) {
  // Indirect but load-bearing: batch scoring of rows previously explained
  // must be bit-identical to rows never explained — explanation is a pure
  // read with no scoring side effects.
  const Dataset train = TrainingData(33, 600);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(train).ok());
  const CompiledForest compiled = CompiledForest::Compile(forest);

  Rng rng(41);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 64; ++i) rows.push_back(RandomRow(rng, train.num_features()));
  std::vector<double> before(rows.size());
  compiled.PredictBatch(rows, before);
  for (const std::vector<double>& row : rows) (void)compiled.Explain(row);
  std::vector<double> after(rows.size());
  compiled.PredictBatch(rows, after);
  EXPECT_EQ(before, after);
}

// --- IDS-level explanation --------------------------------------------------

struct ExplainWorkload {
  InstructionRegistry registry;
  ContextIds ids;
  std::vector<SensorSnapshot> snapshots;
  std::vector<SimTime> times;
  SensorSnapshot empty_snapshot;
  std::vector<JudgeRequest> requests;  // sensitive + modelled rows only

  ExplainWorkload()
      : registry(BuildStandardInstructionSet()),
        ids([this] {
          Result<ContextIds> built = BuildIdsFromScratch(registry, 99);
          if (!built.ok()) std::abort();
          return std::move(built).value();
        }()) {
    SmartHome home = BuildDemoHome(7);
    for (int s = 0; s < 5; ++s) {
      home.Step(kSecondsPerHour * 5);
      snapshots.push_back(home.Snapshot());
      times.push_back(home.now());
    }
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
      for (const Instruction& instruction : registry.all()) {
        if (!ids.detector().IsSensitive(instruction)) continue;
        if (!ids.memory().HasModel(instruction.category)) continue;
        requests.push_back({&instruction, &snapshots[s], times[s]});
      }
    }
  }
};

ExplainWorkload& Workload() {
  static ExplainWorkload* workload = new ExplainWorkload();
  return *workload;
}

TEST(Explain, ServesTheExactJudgeVerdict) {
  ExplainWorkload& w = Workload();
  ASSERT_FALSE(w.requests.empty());
  for (const JudgeRequest& request : w.requests) {
    Result<Judgement> judged =
        w.ids.Judge(*request.instruction, *request.snapshot, request.time);
    ASSERT_TRUE(judged.ok());
    // top_k at full schema width so the decomposition is complete.
    Result<ExplainResult> explained =
        w.ids.Explain(*request.instruction, *request.snapshot, request.time, 64);
    ASSERT_TRUE(explained.ok()) << explained.error().message();
    const ExplainResult& result = explained.value();
    ASSERT_EQ(result.kind, VerdictKind::kScored);
    EXPECT_EQ(result.judgement.allowed, judged.value().allowed);
    EXPECT_EQ(result.judgement.consistency, judged.value().consistency);  // bit-exact
    EXPECT_EQ(result.judgement.reason, judged.value().reason);

    // Contributions are ranked by |contribution| descending...
    for (std::size_t i = 1; i < result.contributions.size(); ++i) {
      EXPECT_GE(std::abs(result.contributions[i - 1].contribution),
                std::abs(result.contributions[i].contribution));
    }
    // ...and re-ordered back to schema column order the decomposition sums
    // to the served consistency exactly (fields absent from the list carry
    // zero contribution, which cannot change the sum).
    const ContextSchema schema = ContextSchema::ForCategory(request.instruction->category);
    std::vector<double> by_column(schema.size(), 0.0);
    for (const FeatureContribution& entry : result.contributions) {
      ASSERT_LT(entry.field, by_column.size());
      EXPECT_EQ(entry.feature, schema.fields()[entry.field].name);
      EXPECT_FALSE(entry.reason.empty());
      by_column[entry.field] = entry.contribution;
    }
    double partial = result.bias;
    for (const double c : by_column) partial += c;
    partial += result.residual;
    EXPECT_EQ(partial, result.judgement.consistency);
  }
}

TEST(Explain, TopKTruncatesTheRankingWithoutReordering) {
  ExplainWorkload& w = Workload();
  const JudgeRequest& request = w.requests.front();
  Result<ExplainResult> full =
      w.ids.Explain(*request.instruction, *request.snapshot, request.time, 64);
  Result<ExplainResult> top3 =
      w.ids.Explain(*request.instruction, *request.snapshot, request.time, 3);
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(top3.ok());
  ASSERT_LE(top3.value().contributions.size(), 3u);
  for (std::size_t i = 0; i < top3.value().contributions.size(); ++i) {
    EXPECT_EQ(top3.value().contributions[i].field, full.value().contributions[i].field);
    EXPECT_EQ(top3.value().contributions[i].contribution,
              full.value().contributions[i].contribution);
  }
  // The truncated judgement is still the served one — only the skimmable
  // list shrinks.
  EXPECT_EQ(top3.value().judgement.consistency, full.value().judgement.consistency);
}

TEST(Explain, NonScoredRowsExplainLikeJudge) {
  ExplainWorkload& w = Workload();
  const Instruction* tv = w.registry.FindByName("tv.on");
  ASSERT_NE(tv, nullptr);
  Result<ExplainResult> non_sensitive =
      w.ids.Explain(*tv, w.snapshots.front(), w.times.front());
  ASSERT_TRUE(non_sensitive.ok());
  EXPECT_EQ(non_sensitive.value().kind, VerdictKind::kNonSensitive);
  EXPECT_TRUE(non_sensitive.value().contributions.empty());
  EXPECT_TRUE(non_sensitive.value().judgement.allowed);

  // Errors exactly where Judge() errors: a snapshot with no sensors cannot
  // featurize the schema.
  const JudgeRequest& request = w.requests.front();
  Result<ExplainResult> error =
      w.ids.Explain(*request.instruction, w.empty_snapshot, w.times.front());
  EXPECT_FALSE(error.ok());
}

TEST(Explain, BatchAgreesWithPerRowBitForBit) {
  ExplainWorkload& w = Workload();
  const std::vector<ExplainResult> batch = w.ids.ExplainBatch(w.requests, 5);
  ASSERT_EQ(batch.size(), w.requests.size());
  for (std::size_t i = 0; i < batch.size(); ++i) {
    Result<ExplainResult> row = w.ids.Explain(*w.requests[i].instruction,
                                              *w.requests[i].snapshot,
                                              w.requests[i].time, 5);
    ASSERT_TRUE(row.ok());
    EXPECT_EQ(batch[i].kind, row.value().kind);
    EXPECT_EQ(batch[i].judgement.consistency, row.value().judgement.consistency);
    EXPECT_EQ(batch[i].bias, row.value().bias);
    EXPECT_EQ(batch[i].residual, row.value().residual);
    ASSERT_EQ(batch[i].contributions.size(), row.value().contributions.size());
    for (std::size_t c = 0; c < batch[i].contributions.size(); ++c) {
      EXPECT_EQ(batch[i].contributions[c].field, row.value().contributions[c].field);
      EXPECT_EQ(batch[i].contributions[c].contribution,
                row.value().contributions[c].contribution);
    }
  }
  // Batch rows that cannot featurize come back kError fail-closed instead of
  // aborting the batch.
  std::vector<JudgeRequest> bad = {
      {w.requests.front().instruction, &w.empty_snapshot, w.times.front()}};
  const std::vector<ExplainResult> errors = w.ids.ExplainBatch(bad, 5);
  ASSERT_EQ(errors.size(), 1u);
  EXPECT_EQ(errors.front().kind, VerdictKind::kError);
  EXPECT_FALSE(errors.front().judgement.allowed);
}

TEST(Explain, ExplainIsAPureRead) {
  ExplainWorkload& w = Workload();
  const IdsStats before = w.ids.stats();
  (void)w.ids.ExplainBatch(w.requests, 5);
  const IdsStats after = w.ids.stats();
  EXPECT_EQ(after.judged, before.judged);
  EXPECT_EQ(after.blocked, before.blocked);
  EXPECT_EQ(after.allowed, before.allowed);
}

// --- recorder round-trip ----------------------------------------------------

std::string SessionPath(const char* name) {
  return ::testing::TempDir() + "/sidet_" + name + ".ndjson";
}

TEST(Explain, RecorderStampsAttributionNotesIntoTheSession) {
  ExplainWorkload& w = Workload();
  const std::string path = SessionPath("attribution");
  {
    FlightRecorderOptions options;
    options.path = path;
    options.flush_interval_ms = 5;
    FlightRecorder recorder(options);
    ASSERT_TRUE(recorder.StartSession(w.ids.memory().Fingerprint()).ok());
    w.ids.EnableAttributionCapture(true, /*top_k=*/3);
    w.ids.SetVerdictObserver(&recorder);
    (void)w.ids.JudgeBatch(w.requests, 1);
    w.ids.SetVerdictObserver(nullptr);
    w.ids.EnableAttributionCapture(false);
    recorder.Close();
    EXPECT_EQ(recorder.stats().dropped, 0u);
    EXPECT_EQ(recorder.stats().attributions, w.requests.size());
  }

  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok()) << session.error().message();
  ASSERT_EQ(session.value().events.size(), w.requests.size());
  for (std::size_t i = 0; i < session.value().events.size(); ++i) {
    const RecordedEvent& event = session.value().events[i];
    ASSERT_EQ(event.kind, VerdictKind::kScored);
    ASSERT_FALSE(event.attribution.empty()) << "row " << i;
    ASSERT_LE(event.attribution.size(), 3u);
    // The stamped notes are exactly Explain's top-3 for the same arguments —
    // field indices and contribution doubles, after a %.17g JSON round trip.
    Result<ExplainResult> explained = w.ids.Explain(
        *w.requests[i].instruction, *w.requests[i].snapshot, w.requests[i].time, 3);
    ASSERT_TRUE(explained.ok());
    ASSERT_EQ(event.attribution.size(), explained.value().contributions.size());
    for (std::size_t c = 0; c < event.attribution.size(); ++c) {
      EXPECT_EQ(event.attribution[c].first, explained.value().contributions[c].field);
      EXPECT_EQ(event.attribution[c].second,
                explained.value().contributions[c].contribution);
    }
  }
  std::remove(path.c_str());
}

TEST(Explain, SessionsWithoutCaptureCarryNoAttribution) {
  ExplainWorkload& w = Workload();
  const std::string path = SessionPath("no_attribution");
  {
    FlightRecorderOptions options;
    options.path = path;
    FlightRecorder recorder(options);
    ASSERT_TRUE(recorder.StartSession(w.ids.memory().Fingerprint()).ok());
    w.ids.SetVerdictObserver(&recorder);
    (void)w.ids.JudgeBatch(w.requests, 1);
    w.ids.SetVerdictObserver(nullptr);
    recorder.Close();
    EXPECT_EQ(recorder.stats().attributions, 0u);
  }
  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok());
  for (const RecordedEvent& event : session.value().events) {
    EXPECT_TRUE(event.attribution.empty());
  }
  std::remove(path.c_str());
}

TEST(Explain, ReplayAttributesVerdictFlipsBetweenModels) {
  ExplainWorkload& w = Workload();
  const std::string path = SessionPath("flip_attribution");
  {
    FlightRecorderOptions options;
    options.path = path;
    FlightRecorder recorder(options);
    ASSERT_TRUE(recorder.StartSession(w.ids.memory().Fingerprint()).ok());
    w.ids.EnableAttributionCapture(true, /*top_k=*/5);
    w.ids.SetVerdictObserver(&recorder);
    (void)w.ids.JudgeBatch(w.requests, 1);
    w.ids.SetVerdictObserver(nullptr);
    w.ids.EnableAttributionCapture(false);
    recorder.Close();
  }
  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok());

  // A model trained on a differently-seeded corpus disagrees somewhere on a
  // stream this wide; the report must attribute each sampled flip.
  Result<ContextIds> other = BuildIdsFromScratch(w.registry, 4242);
  ASSERT_TRUE(other.ok());
  const ReplayReport report = Replay(session.value(), other.value(), 1);
  EXPECT_EQ(report.replayed, w.requests.size());
  ASSERT_GT(report.flips, 0u) << "seeds 99 vs 4242 replayed bit-identically";
  ASSERT_FALSE(report.flip_samples.empty());
  for (const VerdictFlip& flip : report.flip_samples) {
    EXPECT_NE(flip.recorded_allowed, flip.replayed_allowed);
    ASSERT_FALSE(flip.recorded_top.empty());
    ASSERT_FALSE(flip.replayed_top.empty());
    // Field indices resolved to schema names, not left numeric.
    for (const auto& [feature, contribution] : flip.recorded_top) {
      EXPECT_FALSE(feature.empty());
      EXPECT_NE(feature.rfind("field_", 0), 0u) << "unresolved field: " << feature;
    }
  }
  // Flip drivers: summed replayed-minus-recorded contribution per feature,
  // |delta| descending.
  ASSERT_FALSE(report.flip_feature_deltas.empty());
  for (std::size_t i = 1; i < report.flip_feature_deltas.size(); ++i) {
    EXPECT_GE(std::abs(report.flip_feature_deltas[i - 1].second),
              std::abs(report.flip_feature_deltas[i].second));
  }
  const Json json = report.ToJson();
  EXPECT_TRUE(json.find("flip_feature_deltas") != nullptr);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sidet
