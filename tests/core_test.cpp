#include <gtest/gtest.h>

#include "core/collector.h"
#include "core/detector.h"
#include "core/feature_memory.h"
#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "instructions/standard_instruction_set.h"

namespace sidet {
namespace {

// Shared expensive fixtures: corpus + trained memory, built once.
class CoreFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new InstructionRegistry(BuildStandardInstructionSet());
    Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, *registry_);
    ASSERT_TRUE(corpus.ok());
    corpus_ = new RuleCorpus(std::move(corpus).value().corpus);

    memory_ = new ContextFeatureMemory();
    MemoryTrainingOptions options;
    options.samples_per_device = 1500;  // keep the suite fast
    ASSERT_TRUE(memory_->TrainFromCorpus(*corpus_, options).ok());
  }
  static void TearDownTestSuite() {
    delete memory_;
    delete corpus_;
    delete registry_;
    memory_ = nullptr;
    corpus_ = nullptr;
    registry_ = nullptr;
  }

  static InstructionRegistry* registry_;
  static RuleCorpus* corpus_;
  static ContextFeatureMemory* memory_;
};

InstructionRegistry* CoreFixture::registry_ = nullptr;
RuleCorpus* CoreFixture::corpus_ = nullptr;
ContextFeatureMemory* CoreFixture::memory_ = nullptr;

TEST(Detector, ClassifiesByCategoryAndKind) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SensitiveInstructionDetector detector(PaperTableThree());
  EXPECT_TRUE(detector.IsSensitive(*registry.FindByName("window.open")));
  EXPECT_TRUE(detector.IsSensitive(*registry.FindByName("light.on")));
  EXPECT_FALSE(detector.IsSensitive(*registry.FindByName("tv.on")));        // low-threat family
  EXPECT_FALSE(detector.IsSensitive(*registry.FindByName("vacuum.start")));
  EXPECT_FALSE(detector.IsSensitive(*registry.FindByName("window.get_state")));  // status
  EXPECT_EQ(detector.SensitiveCategories().size(), 7u);
}

TEST_F(CoreFixture, MemoryTrainsEveryEvaluatedFamilyWell) {
  for (const DeviceCategory category : EvaluatedCategories()) {
    ASSERT_TRUE(memory_->HasModel(category)) << ToString(category);
    const TrainedDeviceModel* model = memory_->Model(category);
    ASSERT_NE(model, nullptr);
    EXPECT_GE(model->holdout_metrics.accuracy, 0.82) << ToString(category);
    EXPECT_GT(model->training_rows, 0u);
  }
  EXPECT_FALSE(memory_->HasModel(DeviceCategory::kSecurityCamera));
  EXPECT_EQ(memory_->Trained().size(), EvaluatedCategories().size());
}

TEST_F(CoreFixture, MemoryJudgesCoherentAndSpoofedContexts) {
  // Legitimate: real fire context (smoke + its physics) for window.open.
  SensorSnapshot fire;
  fire.Set("smoke", SensorType::kSmoke, SensorValue::Binary(true));
  fire.Set("gas_leak", SensorType::kGasLeak, SensorValue::Binary(false));
  fire.Set("voice_command", SensorType::kVoiceCommand, SensorValue::Binary(false));
  fire.Set("lock_state", SensorType::kLockState, SensorValue::Binary(true));
  fire.Set("temperature", SensorType::kTemperature, SensorValue::Continuous(33.0));
  fire.Set("air_quality", SensorType::kAirQuality, SensorValue::Continuous(320.0));
  fire.Set("weather_condition", SensorType::kWeatherCondition,
           SensorValue::Categorical("clear", 0));
  fire.Set("motion", SensorType::kMotion, SensorValue::Binary(false));
  const SimTime noon = SimTime::FromDayTime(1, 12);

  Result<bool> legit =
      memory_->Consistent(DeviceCategory::kWindowAndLock, "window.open", fire, noon);
  ASSERT_TRUE(legit.ok()) << legit.error().message();
  EXPECT_TRUE(legit.value());

  // Spoof: same smoke bit, benign physics.
  SensorSnapshot spoof = fire;
  spoof.Set("temperature", SensorType::kTemperature, SensorValue::Continuous(19.0));
  spoof.Set("air_quality", SensorType::kAirQuality, SensorValue::Continuous(55.0));
  Result<bool> attack =
      memory_->Consistent(DeviceCategory::kWindowAndLock, "window.open", spoof, noon);
  ASSERT_TRUE(attack.ok());
  EXPECT_FALSE(attack.value());
}

TEST_F(CoreFixture, MemoryFailsOnUntrainedCategoryAndBadSnapshot) {
  SensorSnapshot empty;
  EXPECT_FALSE(memory_->Consistent(DeviceCategory::kVacuum, "vacuum.start", empty, SimTime())
                   .ok());
  EXPECT_FALSE(
      memory_->Consistent(DeviceCategory::kWindowAndLock, "window.open", empty, SimTime())
          .ok());
}

TEST_F(CoreFixture, MemoryJsonRoundTripPreservesJudgements) {
  Result<ContextFeatureMemory> restored = ContextFeatureMemory::FromJson(memory_->ToJson());
  ASSERT_TRUE(restored.ok()) << restored.error().message();
  EXPECT_EQ(restored.value().Trained().size(), memory_->Trained().size());

  // Identical probabilities on a probe context.
  SensorSnapshot probe;
  probe.Set("occupancy", SensorType::kOccupancy, SensorValue::Binary(true));
  probe.Set("motion", SensorType::kMotion, SensorValue::Binary(true));
  probe.Set("voice_command", SensorType::kVoiceCommand, SensorValue::Binary(true));
  const SimTime morning = SimTime::FromDayTime(2, 7);
  Result<double> original = memory_->ConsistencyProbability(DeviceCategory::kKitchen,
                                                            "kettle.boil", probe, morning);
  Result<double> roundtrip = restored.value().ConsistencyProbability(
      DeviceCategory::kKitchen, "kettle.boil", probe, morning);
  ASSERT_TRUE(original.ok());
  ASSERT_TRUE(roundtrip.ok());
  EXPECT_DOUBLE_EQ(original.value(), roundtrip.value());
}

TEST_F(CoreFixture, IdsPipelineJudgements) {
  // Memory is copied into the IDS via JSON round trip (cheap deep copy).
  Result<ContextFeatureMemory> memory_copy = ContextFeatureMemory::FromJson(memory_->ToJson());
  ASSERT_TRUE(memory_copy.ok());
  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()),
                 std::move(memory_copy).value());

  SensorSnapshot night;
  night.Set("smoke", SensorType::kSmoke, SensorValue::Binary(false));
  night.Set("gas_leak", SensorType::kGasLeak, SensorValue::Binary(false));
  night.Set("voice_command", SensorType::kVoiceCommand, SensorValue::Binary(false));
  night.Set("lock_state", SensorType::kLockState, SensorValue::Binary(true));
  night.Set("temperature", SensorType::kTemperature, SensorValue::Continuous(19.0));
  night.Set("air_quality", SensorType::kAirQuality, SensorValue::Continuous(60.0));
  night.Set("weather_condition", SensorType::kWeatherCondition,
            SensorValue::Categorical("clear", 0));
  night.Set("motion", SensorType::kMotion, SensorValue::Binary(false));
  const SimTime three_am = SimTime::FromDayTime(4, 3);

  // Sensitive instruction in a wrong context: blocked.
  Result<Judgement> blocked =
      ids.Judge(*BuildStandardInstructionSet().FindByName("window.open"), night, three_am);
  ASSERT_TRUE(blocked.ok()) << blocked.error().message();
  EXPECT_TRUE(blocked.value().sensitive);
  EXPECT_FALSE(blocked.value().allowed);
  EXPECT_LT(blocked.value().consistency, 0.5);

  // Non-sensitive instruction: passes without sensor context at all.
  Result<Judgement> tv =
      ids.Judge(*BuildStandardInstructionSet().FindByName("tv.on"), SensorSnapshot(), three_am);
  ASSERT_TRUE(tv.ok());
  EXPECT_FALSE(tv.value().sensitive);
  EXPECT_TRUE(tv.value().allowed);

  // Sensitive but unmodelled family (camera): passes as out of scope.
  Result<Judgement> camera = ids.Judge(
      *BuildStandardInstructionSet().FindByName("camera.alert"), SensorSnapshot(), three_am);
  ASSERT_TRUE(camera.ok());
  EXPECT_TRUE(camera.value().sensitive);
  EXPECT_TRUE(camera.value().allowed);

  EXPECT_EQ(ids.stats().judged, 3u);
  EXPECT_EQ(ids.stats().blocked, 1u);
  EXPECT_EQ(ids.stats().passed_non_sensitive, 1u);
  EXPECT_EQ(ids.stats().passed_unmodelled, 1u);
}

TEST_F(CoreFixture, GuardFailsClosedOnErrors) {
  Result<ContextFeatureMemory> memory_copy = ContextFeatureMemory::FromJson(memory_->ToJson());
  ASSERT_TRUE(memory_copy.ok());
  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()),
                 std::move(memory_copy).value());
  InstructionGuard guard = ids.AsGuard();
  const InstructionRegistry registry = BuildStandardInstructionSet();

  // Empty snapshot -> featurize error -> sensitive instruction blocked.
  EXPECT_FALSE(guard(*registry.FindByName("window.open"), SensorSnapshot()));
  // Non-sensitive instruction passes even on errors.
  EXPECT_TRUE(guard(*registry.FindByName("tv.on"), SensorSnapshot()));
}

TEST(BuildIdsFromScratch, ProducesAWorkingPipeline) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> ids = BuildIdsFromScratch(registry, 5);
  ASSERT_TRUE(ids.ok()) << ids.error().message();
  EXPECT_EQ(ids.value().memory().Trained().size(), EvaluatedCategories().size());
  EXPECT_TRUE(ids.value().detector().IsSensitive(*registry.FindByName("window.open")));
}

}  // namespace
}  // namespace sidet
