#include <gtest/gtest.h>

#include "automation/condition.h"
#include "automation/dsl_parser.h"
#include "automation/engine.h"
#include "automation/rule.h"
#include "instructions/standard_instruction_set.h"

namespace sidet {
namespace {

SensorSnapshot MakeSnapshot() {
  SensorSnapshot snapshot(SimTime::FromDayTime(1, 19, 30));  // Tuesday evening
  snapshot.Set("occupancy", SensorType::kOccupancy, SensorValue::Binary(true));
  snapshot.Set("motion", SensorType::kMotion, SensorValue::Binary(false));
  snapshot.Set("smoke", SensorType::kSmoke, SensorValue::Binary(false));
  snapshot.Set("temperature", SensorType::kTemperature, SensorValue::Continuous(27.5));
  snapshot.Set("illuminance", SensorType::kIlluminance, SensorValue::Continuous(42.0));
  snapshot.Set("weather_condition", SensorType::kWeatherCondition,
               SensorValue::Categorical("rain", 2));
  return snapshot;
}

EvalContext MakeContext(const SensorSnapshot& snapshot) {
  EvalContext context;
  context.snapshot = &snapshot;
  context.time = snapshot.time();
  return context;
}

struct EvalCase {
  const char* source;
  bool expected;
};

class ConditionEvalTest : public ::testing::TestWithParam<EvalCase> {};

TEST_P(ConditionEvalTest, EvaluatesAgainstFixedSnapshot) {
  const SensorSnapshot snapshot = MakeSnapshot();
  Result<ConditionPtr> condition = ParseCondition(GetParam().source);
  ASSERT_TRUE(condition.ok()) << condition.error().message();
  Result<bool> value = condition.value()->Evaluate(MakeContext(snapshot));
  ASSERT_TRUE(value.ok()) << value.error().message();
  EXPECT_EQ(value.value(), GetParam().expected) << GetParam().source;
}

INSTANTIATE_TEST_SUITE_P(
    Semantics, ConditionEvalTest,
    ::testing::Values(
        EvalCase{"occupancy", true}, EvalCase{"motion", false},
        EvalCase{"not motion", true}, EvalCase{"occupancy and motion", false},
        EvalCase{"occupancy or motion", true},
        EvalCase{"temperature > 27", true}, EvalCase{"temperature > 28", false},
        EvalCase{"temperature >= 27.5", true}, EvalCase{"temperature < 27.5", false},
        EvalCase{"temperature <= 27.5", true}, EvalCase{"temperature == 27.5", true},
        EvalCase{"temperature != 27.5", false},
        EvalCase{"illuminance < 100 and occupancy", true},
        EvalCase{"weather_condition == \"rain\"", true},
        EvalCase{"weather_condition != \"clear\"", true},
        EvalCase{"hour >= 19 and hour < 20", true},
        EvalCase{"segment == \"evening\"", true},
        EvalCase{"segment == \"morning\"", false},
        EvalCase{"weekend", false},
        EvalCase{"not (occupancy and motion)", true},
        EvalCase{"smoke or (temperature > 27 and occupancy)", true},
        // Precedence: and binds tighter than or.
        EvalCase{"motion and motion or occupancy", true},
        EvalCase{"motion and (motion or occupancy)", false},
        EvalCase{"true", true}, EvalCase{"false or occupancy", true},
        EvalCase{"occupancy == true", true}, EvalCase{"motion == false", true}));

class ConditionParseErrorTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ConditionParseErrorTest, Rejected) {
  EXPECT_FALSE(ParseCondition(GetParam()).ok()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Malformed, ConditionParseErrorTest,
                         ::testing::Values("", "and", "occupancy and", "(occupancy",
                                           "occupancy)", "temperature >", "== 5",
                                           "temperature = 20", "motion ! occupancy",
                                           "\"unterminated", "a b", "not", "1 2 3"));

TEST(ConditionEval, TypeErrorsSurfaceNotSilence) {
  const SensorSnapshot snapshot = MakeSnapshot();
  // Ordering comparison on categorical value.
  Result<ConditionPtr> c1 = ParseCondition("weather_condition > 1");
  ASSERT_TRUE(c1.ok());
  EXPECT_FALSE(c1.value()->Evaluate(MakeContext(snapshot)).ok());
  // Continuous sensor used as bare boolean.
  Result<ConditionPtr> c2 = ParseCondition("temperature");
  ASSERT_TRUE(c2.ok());
  EXPECT_FALSE(c2.value()->Evaluate(MakeContext(snapshot)).ok());
  // Unknown identifier.
  Result<ConditionPtr> c3 = ParseCondition("flux_capacitor > 88");
  ASSERT_TRUE(c3.ok());
  EXPECT_FALSE(c3.value()->Evaluate(MakeContext(snapshot)).ok());
  // Missing sensor in snapshot.
  Result<ConditionPtr> c4 = ParseCondition("humidity > 50");
  ASSERT_TRUE(c4.ok());
  EXPECT_FALSE(c4.value()->Evaluate(MakeContext(snapshot)).ok());
}

class ConditionRoundTripTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ConditionRoundTripTest, ToStringReparsesToSameSemantics) {
  const SensorSnapshot snapshot = MakeSnapshot();
  Result<ConditionPtr> original = ParseCondition(GetParam());
  ASSERT_TRUE(original.ok());
  Result<ConditionPtr> reparsed = ParseCondition(original.value()->ToString());
  ASSERT_TRUE(reparsed.ok()) << original.value()->ToString();
  const Result<bool> a = original.value()->Evaluate(MakeContext(snapshot));
  const Result<bool> b = reparsed.value()->Evaluate(MakeContext(snapshot));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
}

INSTANTIATE_TEST_SUITE_P(Corpus, ConditionRoundTripTest,
                         ::testing::Values("occupancy and (segment == \"evening\" or motion)",
                                           "not (temperature > 26.5 and occupancy)",
                                           "smoke or motion or occupancy",
                                           "illuminance < 50 and hour >= 18",
                                           "weather_condition == \"rain\" and not motion"));

TEST(Condition, ReferencedSensorsExcludesTimePseudoSensors) {
  Result<ConditionPtr> condition = ParseCondition(
      "smoke or (temperature > 26 and hour >= 18 and segment == \"evening\" and not weekend "
      "and smoke)");
  ASSERT_TRUE(condition.ok());
  const std::vector<std::string> sensors = condition.value()->ReferencedSensors();
  EXPECT_EQ(sensors, (std::vector<std::string>{"smoke", "temperature"}));  // deduplicated
}

TEST(Condition, CloneIsDeepAndEquivalent) {
  const SensorSnapshot snapshot = MakeSnapshot();
  Result<ConditionPtr> original = ParseCondition("occupancy and temperature > 20");
  ASSERT_TRUE(original.ok());
  ConditionPtr clone = original.value()->Clone();
  original.value().reset();  // destroying the original must not affect the clone
  Result<bool> value = clone->Evaluate(MakeContext(snapshot));
  ASSERT_TRUE(value.ok());
  EXPECT_TRUE(value.value());
}

TEST(Rule, MakeRuleValidatesAction) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<Rule> good = MakeRule(1, "turn on light", "motion", "light.on", registry, 10);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value().category, DeviceCategory::kLighting);
  EXPECT_EQ(good.value().user_count, 10u);

  EXPECT_FALSE(MakeRule(2, "bad", "motion", "light.fly", registry).ok());
  EXPECT_FALSE(MakeRule(3, "status", "motion", "light.get_state", registry).ok());
  EXPECT_FALSE(MakeRule(4, "unparsable", "motion and", "light.on", registry).ok());
}

TEST(Rule, CopyIsDeep) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<Rule> original = MakeRule(1, "r", "occupancy", "light.on", registry);
  ASSERT_TRUE(original.ok());
  Rule copy = original.value();
  EXPECT_NE(copy.condition.get(), original.value().condition.get());
  EXPECT_EQ(copy.condition_source, original.value().condition_source);
}

TEST(RuleCorpus, QueriesAndPopularity) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  RuleCorpus corpus;
  corpus.Add(MakeRule(1, "a", "motion", "light.on", registry, 5).value());
  corpus.Add(MakeRule(2, "b", "not occupancy", "light.off", registry, 50).value());
  corpus.Add(MakeRule(3, "c", "smoke", "window.open", registry, 20).value());

  EXPECT_EQ(corpus.size(), 3u);
  EXPECT_EQ(corpus.ForCategory(DeviceCategory::kLighting).size(), 2u);
  EXPECT_EQ(corpus.ForAction("window.open").size(), 1u);
  EXPECT_EQ(corpus.TotalUsers(), 75u);
  const std::vector<const Rule*> popular = corpus.ByPopularity();
  EXPECT_EQ(popular[0]->id, 2u);
  EXPECT_EQ(popular[2]->id, 1u);
}

TEST(RuleEngine, EdgeTriggeredFiring) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(31);
  RuleEngine engine(registry, home);
  engine.AddRule(MakeRule(1, "vent on smoke", "smoke", "window.open", registry).value());

  home.Step(kSecondsPerMinute);
  EXPECT_TRUE(engine.Poll().empty());  // no smoke yet

  home.StartFire();
  home.Step(kSecondsPerMinute);
  const std::vector<FiredAction> fired = engine.Poll();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_EQ(fired[0].action, "window.open");
  EXPECT_FALSE(fired[0].blocked);

  // Condition still true -> no re-fire until it falls and rises again.
  home.Step(kSecondsPerMinute);
  EXPECT_TRUE(engine.Poll().empty());

  home.StopFire();
  home.Step(5 * kSecondsPerMinute);
  (void)engine.Poll();
  home.StartFire();
  home.Step(kSecondsPerMinute);
  EXPECT_EQ(engine.Poll().size(), 1u);
}

TEST(RuleEngine, GuardVetoesExecution) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(32);
  RuleEngine engine(registry, home);
  engine.AddRule(MakeRule(1, "vent on smoke", "smoke", "window.open", registry).value());
  engine.SetGuard([](const Instruction&, const SensorSnapshot&) { return false; });

  home.StartFire();
  home.Step(kSecondsPerMinute);
  const std::vector<FiredAction> fired = engine.Poll();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].blocked);
  // The window device must not have moved.
  EXPECT_FALSE(home.FindDevice("living_window_motor")->IsOn("open"));
}

TEST(RuleEngine, BadConditionsAreCountedNotFatal) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(33);
  RuleEngine engine(registry, home);
  // humidity sensor exists in the demo home, water_leak rule fine; use a rule
  // over a sensor the home lacks by removing... simplest: reference unknown
  // identifier via parse-time valid but eval-time unknown name is impossible
  // (parser lowercases known grammar); use a condition whose sensor is absent
  // from the snapshot: all demo sensors exist, so craft a corrupted rule.
  Rule rule = MakeRule(1, "x", "occupancy", "light.on", registry).value();
  rule.condition = ParseCondition("noise_level > 200 and flux > 1").value();
  engine.AddRule(std::move(rule));
  home.Step(kSecondsPerMinute);
  (void)engine.Poll();
  // Short-circuit may skip the bad identifier when the first clause is false;
  // force evaluation order by polling multiple ticks.
  home.Step(kSecondsPerMinute);
  (void)engine.Poll();
  SUCCEED();  // no crash; errors surfaced through the counter
}

}  // namespace
}  // namespace sidet
