// Cross-cutting property tests: algebraic laws and invariances that hold for
// *generated* inputs, not hand-picked cases.
#include <gtest/gtest.h>

#include "automation/dsl_parser.h"
#include "datagen/background.h"
#include "home/smart_home.h"
#include "ml/decision_tree.h"
#include "ml/sampling.h"
#include "util/json.h"
#include "util/rng.h"

namespace sidet {
namespace {

// --- JSON: random documents round-trip ------------------------------------------

Json RandomJson(Rng& rng, int depth) {
  const double shape = rng.UniformDouble();
  if (depth <= 0 || shape < 0.35) {
    switch (rng.UniformInt(0, 3)) {
      case 0: return Json(nullptr);
      case 1: return Json(rng.Bernoulli(0.5));
      case 2: return Json(rng.Normal(0, 1000.0));
      default: {
        std::string text;
        const auto length = static_cast<std::size_t>(rng.UniformInt(0, 12));
        for (std::size_t i = 0; i < length; ++i) {
          text.push_back(static_cast<char>(rng.UniformInt(32, 126)));
        }
        return Json(std::move(text));
      }
    }
  }
  if (shape < 0.7) {
    Json arr = Json::Array();
    const auto n = static_cast<std::size_t>(rng.UniformInt(0, 5));
    for (std::size_t i = 0; i < n; ++i) arr.as_array().push_back(RandomJson(rng, depth - 1));
    return arr;
  }
  Json obj = Json::Object();
  const auto n = static_cast<std::size_t>(rng.UniformInt(0, 5));
  for (std::size_t i = 0; i < n; ++i) {
    obj["key_" + std::to_string(rng.UniformInt(0, 20))] = RandomJson(rng, depth - 1);
  }
  return obj;
}

class PropertySeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertySeedTest, JsonDumpParseIsIdentity) {
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    const Json original = RandomJson(rng, 4);
    Result<Json> parsed = Json::Parse(original.Dump());
    ASSERT_TRUE(parsed.ok()) << original.Dump();
    EXPECT_EQ(parsed.value(), original);
    // Pretty form parses to the same value too.
    Result<Json> pretty = Json::Parse(original.Pretty());
    ASSERT_TRUE(pretty.ok());
    EXPECT_EQ(pretty.value(), original);
  }
}

// --- DSL: De Morgan / double negation over random contexts ------------------------

TEST_P(PropertySeedTest, DslDeMorganLaws) {
  BackgroundSampler sampler(GetParam());
  const auto eval = [](const char* source, const ContextSample& context) {
    Result<ConditionPtr> condition = ParseCondition(source);
    EXPECT_TRUE(condition.ok()) << source;
    EvalContext eval_context;
    eval_context.snapshot = &context.snapshot;
    eval_context.time = context.time;
    Result<bool> value = condition.value()->Evaluate(eval_context);
    EXPECT_TRUE(value.ok()) << source;
    return value.value_or(false);
  };

  for (int i = 0; i < 80; ++i) {
    const ContextSample context = sampler.Sample();
    EXPECT_EQ(eval("not (smoke and occupancy)", context),
              eval("not smoke or not occupancy", context));
    EXPECT_EQ(eval("not (motion or gas_leak)", context),
              eval("not motion and not gas_leak", context));
    EXPECT_EQ(eval("not not voice_command", context), eval("voice_command", context));
    EXPECT_EQ(eval("temperature > 20", context), eval("not (temperature <= 20)", context));
    EXPECT_EQ(eval("weather_condition == \"rain\"", context),
              eval("not (weather_condition != \"rain\")", context));
  }
}

// --- Decision tree: scale invariance ------------------------------------------------

TEST_P(PropertySeedTest, TreePredictionsInvariantToFeatureScaling) {
  Rng rng(GetParam() + 100);
  const std::vector<FeatureSpec> specs = {FeatureSpec{"a", false, {}},
                                          FeatureSpec{"b", false, {}}};
  Dataset original((std::vector<FeatureSpec>(specs)));
  Dataset scaled((std::vector<FeatureSpec>(specs)));
  const double kScale = 1000.0;
  for (int i = 0; i < 400; ++i) {
    const double a = rng.UniformDouble();
    const double b = rng.UniformDouble();
    const int label = (a + 0.3 * b > 0.6) ? 1 : 0;
    original.Add({a, b}, label);
    scaled.Add({a * kScale, b * kScale}, label);  // monotone transform
  }
  DecisionTree tree_original;
  DecisionTree tree_scaled;
  ASSERT_TRUE(tree_original.Fit(original).ok());
  ASSERT_TRUE(tree_scaled.Fit(scaled).ok());

  for (int i = 0; i < 200; ++i) {
    const double a = rng.UniformDouble();
    const double b = rng.UniformDouble();
    EXPECT_EQ(tree_original.Predict(std::vector<double>{a, b}),
              tree_scaled.Predict(std::vector<double>{a * kScale, b * kScale}));
  }
}

// --- Oversampling: original rows preserved verbatim -----------------------------------

TEST_P(PropertySeedTest, OversamplePreservesOriginalPrefix) {
  Rng rng(GetParam() + 200);
  Dataset data(std::vector<FeatureSpec>{FeatureSpec{"x", false, {}}});
  const int majority = 60 + static_cast<int>(rng.UniformInt(0, 40));
  const int minority = 5 + static_cast<int>(rng.UniformInt(0, 10));
  for (int i = 0; i < majority; ++i) data.Add({rng.Normal(1, 1)}, 1);
  for (int i = 0; i < minority; ++i) data.Add({rng.Normal(-1, 1)}, 0);

  for (const bool smote : {false, true}) {
    Rng sampler_rng(GetParam() + 300);
    const Dataset balanced = smote ? SmoteOversample(data, sampler_rng)
                                   : RandomOversample(data, sampler_rng);
    ASSERT_GE(balanced.size(), data.size());
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_DOUBLE_EQ(balanced.row(i)[0], data.row(i)[0]);
      EXPECT_EQ(balanced.label(i), data.label(i));
    }
    // Balance achieved and only minority rows were added.
    EXPECT_EQ(balanced.CountLabel(0), balanced.CountLabel(1));
    EXPECT_EQ(balanced.CountLabel(1), static_cast<std::size_t>(majority));
  }
}

// --- Simulator: passive thermal convergence --------------------------------------------

TEST_P(PropertySeedTest, PassiveHomeTracksOutdoorBand) {
  SmartHome home = BuildDemoHome(GetParam(), /*seasonal_mean_c=*/-5.0);
  // No HVAC commands: after two days the insulated zone must have drifted
  // well below its 21C start toward the cold outdoors, yet stay inside the
  // envelope of recent outdoor temperatures (thermal lag means it can sit
  // below the *current* outdoor reading on a warming morning, but never
  // below the coldest air it has been exposed to).
  home.Step(2 * 24 * kSecondsPerHour);
  double min_outdoor = home.outdoor().temperature_c;
  for (int hour = 0; hour < 24; ++hour) {
    home.Step(kSecondsPerHour);
    min_outdoor = std::min(min_outdoor, home.outdoor().temperature_c);
    EXPECT_GT(home.indoor_temperature(), min_outdoor - 1.0);
  }
  EXPECT_LT(home.indoor_temperature(), 15.0);
}

// --- Snapshot: Set/Find coherence over random operations ----------------------------------

TEST_P(PropertySeedTest, SnapshotSetFindCoherence) {
  Rng rng(GetParam() + 400);
  SensorSnapshot snapshot;
  std::map<std::string, double> reference;
  for (int op = 0; op < 300; ++op) {
    const std::string key = "sensor_" + std::to_string(rng.UniformInt(0, 20));
    const double value = rng.Normal(0, 10);
    snapshot.Set(key, SensorType::kTemperature, SensorValue::Continuous(value));
    reference[key] = value;
    // Spot-check a random known key.
    const auto it = reference.begin();
    ASSERT_NE(snapshot.Find(it->first), nullptr);
  }
  EXPECT_EQ(snapshot.size(), reference.size());
  for (const auto& [key, value] : reference) {
    ASSERT_NE(snapshot.Find(key), nullptr) << key;
    EXPECT_DOUBLE_EQ(snapshot.Find(key)->number, value);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertySeedTest, ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace sidet
