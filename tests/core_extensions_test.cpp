// CameraWarningService (§V) and the on-disk model store.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/camera_warning.h"
#include "core/model_store.h"
#include "datagen/corpus_generator.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"

namespace sidet {
namespace {

SensorSnapshot QuietHome() {
  SensorSnapshot snapshot;
  snapshot.Set("door", SensorType::kDoorContact, SensorValue::Binary(false));
  snapshot.Set("window", SensorType::kWindowContact, SensorValue::Binary(false));
  snapshot.Set("smoke", SensorType::kSmoke, SensorValue::Binary(false));
  snapshot.Set("water", SensorType::kWaterLeak, SensorValue::Binary(false));
  snapshot.Set("gas", SensorType::kGasLeak, SensorValue::Binary(false));
  snapshot.Set("motion", SensorType::kMotion, SensorValue::Binary(false));
  snapshot.Set("occupancy", SensorType::kOccupancy, SensorValue::Binary(true));
  return snapshot;
}

TEST(CameraWarning, QuietHomeRaisesNothing) {
  CameraWarningService service;
  EXPECT_TRUE(service.Observe(QuietHome(), SimTime(0)).empty());
  EXPECT_TRUE(service.history().empty());
}

TEST(CameraWarning, EachTriggerKindFires) {
  CameraWarningService service;
  SimTime t(0);
  (void)service.Observe(QuietHome(), t);

  struct Case {
    const char* key;
    SensorType type;
    WarningTrigger expected;
  };
  const std::vector<Case> cases = {
      {"door", SensorType::kDoorContact, WarningTrigger::kDoorOpened},
      {"window", SensorType::kWindowContact, WarningTrigger::kWindowOpened},
      {"smoke", SensorType::kSmoke, WarningTrigger::kSmokeOrFire},
      {"water", SensorType::kWaterLeak, WarningTrigger::kWaterLeak},
      {"gas", SensorType::kGasLeak, WarningTrigger::kCombustibleGas},
  };
  for (const Case& c : cases) {
    SensorSnapshot snapshot = QuietHome();
    snapshot.Set(c.key, c.type, SensorValue::Binary(true));
    t = t + kSecondsPerHour;  // outside any cooldown
    const std::vector<CameraWarning> raised = service.Observe(snapshot, t);
    ASSERT_EQ(raised.size(), 1u) << c.key;
    EXPECT_EQ(raised[0].trigger, c.expected);
    // Back to quiet to reset the edge.
    t = t + kSecondsPerMinute;
    EXPECT_TRUE(service.Observe(QuietHome(), t).empty());
  }
  EXPECT_EQ(service.history().size(), cases.size());
}

TEST(CameraWarning, MotionWhileAwayNeedsBothConditions) {
  CameraWarningService service;
  SimTime t(0);
  (void)service.Observe(QuietHome(), t);

  SensorSnapshot motion_home = QuietHome();
  motion_home.Set("motion", SensorType::kMotion, SensorValue::Binary(true));
  EXPECT_TRUE(service.Observe(motion_home, t + 60).empty());  // someone IS home

  SensorSnapshot motion_away = QuietHome();
  motion_away.Set("motion", SensorType::kMotion, SensorValue::Binary(true));
  motion_away.Set("occupancy", SensorType::kOccupancy, SensorValue::Binary(false));
  const std::vector<CameraWarning> raised = service.Observe(motion_away, t + 120);
  ASSERT_EQ(raised.size(), 1u);
  EXPECT_EQ(raised[0].trigger, WarningTrigger::kMotionWhileAway);
}

TEST(CameraWarning, EdgeTriggeredNotLevelTriggered) {
  CameraWarningService service;
  SensorSnapshot burning = QuietHome();
  burning.Set("smoke", SensorType::kSmoke, SensorValue::Binary(true));
  EXPECT_EQ(service.Observe(burning, SimTime(0)).size(), 1u);
  // Smoke persists: no repeat warnings while the level stays high.
  for (int minute = 1; minute < 30; ++minute) {
    EXPECT_TRUE(service.Observe(burning, SimTime(minute * 60)).empty());
  }
}

TEST(CameraWarning, CooldownSuppressesRapidRetrigger) {
  CameraWarningService service(CameraWarningOptions{.cooldown_seconds = 600});
  SensorSnapshot open_door = QuietHome();
  open_door.Set("door", SensorType::kDoorContact, SensorValue::Binary(true));

  EXPECT_EQ(service.Observe(open_door, SimTime(0)).size(), 1u);
  (void)service.Observe(QuietHome(), SimTime(60));
  // Re-opens 2 minutes later: inside cooldown, suppressed.
  EXPECT_TRUE(service.Observe(open_door, SimTime(120)).empty());
  (void)service.Observe(QuietHome(), SimTime(180));
  // Re-opens 20 minutes later: warned again.
  EXPECT_EQ(service.Observe(open_door, SimTime(1200)).size(), 1u);
  EXPECT_EQ(service.CountsByTrigger()[WarningTrigger::kDoorOpened], 2);
}

TEST(CameraWarning, LiveHomeIntegration) {
  SmartHome home = BuildDemoHome(81);
  CameraWarningService service;
  home.Step(kSecondsPerHour);
  (void)service.Observe(home.Snapshot(), home.now());

  home.StartFire();
  home.Step(2 * kSecondsPerMinute);
  bool fire_warned = false;
  for (const CameraWarning& warning : service.Observe(home.Snapshot(), home.now())) {
    fire_warned |= warning.trigger == WarningTrigger::kSmokeOrFire;
  }
  EXPECT_TRUE(fire_warned);
}

TEST(ModelStore, SaveLoadRoundTrip) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(corpus.ok());

  ContextFeatureMemory memory;
  MemoryTrainingOptions options;
  options.samples_per_device = 600;
  ASSERT_TRUE(memory.TrainFromCorpus(corpus.value().corpus, options).ok());

  const std::string path = ::testing::TempDir() + "/sidet_memory_test.json";
  ASSERT_TRUE(SaveMemory(memory, path).ok());

  Result<ContextFeatureMemory> loaded = LoadMemory(path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message();
  EXPECT_EQ(loaded.value().Trained().size(), memory.Trained().size());

  // Identical verdicts on a probe.
  SensorSnapshot probe;
  probe.Set("occupancy", SensorType::kOccupancy, SensorValue::Binary(true));
  probe.Set("motion", SensorType::kMotion, SensorValue::Binary(true));
  probe.Set("voice_command", SensorType::kVoiceCommand, SensorValue::Binary(false));
  const SimTime noon = SimTime::FromDayTime(1, 12);
  Result<double> a =
      memory.ConsistencyProbability(DeviceCategory::kKitchen, "cooker.start", probe, noon);
  Result<double> b = loaded.value().ConsistencyProbability(DeviceCategory::kKitchen,
                                                           "cooker.start", probe, noon);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_DOUBLE_EQ(a.value(), b.value());
  std::remove(path.c_str());
}

TEST(ModelStore, LoadRejectsMissingAndMalformed) {
  EXPECT_FALSE(LoadMemory("/nonexistent/dir/memory.json").ok());

  const std::string path = ::testing::TempDir() + "/sidet_bad_memory.json";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("{not json", f);
  std::fclose(f);
  EXPECT_FALSE(LoadMemory(path).ok());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sidet
