#include <gtest/gtest.h>

#include "instructions/device_category.h"
#include "instructions/instruction.h"
#include "instructions/standard_instruction_set.h"
#include "instructions/threat.h"

namespace sidet {
namespace {

TEST(DeviceCategory, NamesRoundTrip) {
  EXPECT_EQ(AllDeviceCategories().size(), kDeviceCategoryCount);
  for (const DeviceCategory category : AllDeviceCategories()) {
    Result<DeviceCategory> parsed = DeviceCategoryFromString(ToString(category));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), category);
    EXPECT_FALSE(DisplayName(category).empty());
  }
  EXPECT_FALSE(DeviceCategoryFromString("spaceship").ok());
}

TEST(InstructionRegistry, AddAndLookup) {
  InstructionRegistry registry;
  Instruction inst;
  inst.opcode = 0x0101;
  inst.name = "test.on";
  inst.category = DeviceCategory::kLighting;
  inst.kind = InstructionKind::kControl;
  ASSERT_TRUE(registry.Add(inst).ok());

  EXPECT_NE(registry.FindByOpcode(0x0101), nullptr);
  EXPECT_NE(registry.FindByName("test.on"), nullptr);
  EXPECT_EQ(registry.FindByOpcode(0x9999), nullptr);
  EXPECT_EQ(registry.FindByName("nope"), nullptr);
}

TEST(InstructionRegistry, RejectsDuplicates) {
  InstructionRegistry registry;
  Instruction a;
  a.opcode = 1;
  a.name = "x";
  ASSERT_TRUE(registry.Add(a).ok());

  Instruction same_opcode;
  same_opcode.opcode = 1;
  same_opcode.name = "y";
  EXPECT_FALSE(registry.Add(same_opcode).ok());

  Instruction same_name;
  same_name.opcode = 2;
  same_name.name = "x";
  EXPECT_FALSE(registry.Add(same_name).ok());
  EXPECT_EQ(registry.size(), 1u);
}

TEST(StandardInstructionSet, CoversEveryCategoryBothKinds) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  EXPECT_GE(registry.size(), 60u);
  for (const DeviceCategory category : AllDeviceCategories()) {
    EXPECT_FALSE(registry.ForCategory(category, InstructionKind::kControl).empty())
        << ToString(category);
    EXPECT_FALSE(registry.ForCategory(category, InstructionKind::kStatus).empty())
        << ToString(category);
  }
}

TEST(StandardInstructionSet, OpcodeBlocksEncodeCategoryAndKind) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  for (const Instruction& instruction : registry.all()) {
    EXPECT_EQ(CategoryOfOpcode(instruction.opcode), instruction.category)
        << instruction.name;
    const bool status_block = (instruction.opcode & 0x80) != 0;
    EXPECT_EQ(status_block, instruction.kind == InstructionKind::kStatus) << instruction.name;
    EXPECT_FALSE(instruction.handler.empty());
    EXPECT_FALSE(instruction.description.empty());
  }
}

TEST(StandardInstructionSet, ContainsThePaperCriticalInstructions) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  for (const char* name : {"window.open", "backdoor.open", "lock.unlock", "camera.alert",
                           "light.on", "ac.cool", "curtain.open", "tv.on", "kettle.boil"}) {
    EXPECT_NE(registry.FindByName(name), nullptr) << name;
  }
}

TEST(InstructionKind, RoundTrip) {
  EXPECT_EQ(InstructionKindFromString("control").value(), InstructionKind::kControl);
  EXPECT_EQ(InstructionKindFromString("status").value(), InstructionKind::kStatus);
  EXPECT_FALSE(InstructionKindFromString("query").ok());
}

TEST(ThreatProfile, PaperTableThreeSensitivitySet) {
  const ThreatProfile profile = PaperTableThree();
  // Above the 50% line (Table III): alarms, kitchen, AC, curtains, lighting,
  // window, camera.
  EXPECT_TRUE(profile.IsSensitive(DeviceCategory::kAlarm));
  EXPECT_TRUE(profile.IsSensitive(DeviceCategory::kKitchen));
  EXPECT_TRUE(profile.IsSensitive(DeviceCategory::kAirConditioning));
  EXPECT_TRUE(profile.IsSensitive(DeviceCategory::kCurtains));
  EXPECT_TRUE(profile.IsSensitive(DeviceCategory::kLighting));
  EXPECT_TRUE(profile.IsSensitive(DeviceCategory::kWindowAndLock));
  EXPECT_TRUE(profile.IsSensitive(DeviceCategory::kSecurityCamera));
  // Below it: TV/audio and sweeping robots.
  EXPECT_FALSE(profile.IsSensitive(DeviceCategory::kEntertainment));
  EXPECT_FALSE(profile.IsSensitive(DeviceCategory::kVacuum));
  EXPECT_EQ(profile.SensitiveCategories().size(), 7u);
}

TEST(ThreatProfile, ThresholdIsParametric) {
  const ThreatProfile profile = PaperTableThree();
  // At a 90% threshold only windows and cameras remain.
  const std::vector<DeviceCategory> strict = profile.SensitiveCategories(0.9);
  EXPECT_EQ(strict.size(), 2u);
}

TEST(ThreatProfile, StatusInstructionsNeverSensitive) {
  const ThreatProfile profile = PaperTableThree();
  Instruction status;
  status.category = DeviceCategory::kWindowAndLock;  // highest-threat category
  status.kind = InstructionKind::kStatus;
  EXPECT_FALSE(IsSensitiveInstruction(status, profile));

  Instruction control = status;
  control.kind = InstructionKind::kControl;
  EXPECT_TRUE(IsSensitiveInstruction(control, profile));
}

TEST(ThreatProfile, DistributionsSumToOne) {
  const ThreatProfile profile = PaperTableThree();
  for (const DeviceCategory category : AllDeviceCategories()) {
    const ThreatDistribution& d = profile.Of(category);
    EXPECT_NEAR(d.high + d.low + d.none, 1.0, 0.002) << ToString(category);
  }
}

}  // namespace
}  // namespace sidet
