#include "protocol/mqtt.h"

#include <gtest/gtest.h>

#include "core/collector.h"

namespace sidet {
namespace {

// --- Topic matching -------------------------------------------------------------

struct MatchCase {
  const char* filter;
  const char* topic;
  bool matches;
};

class TopicMatchTest : public ::testing::TestWithParam<MatchCase> {};

TEST_P(TopicMatchTest, MatchesPerMqttSemantics) {
  EXPECT_EQ(MqttBroker::TopicMatches(GetParam().filter, GetParam().topic), GetParam().matches)
      << GetParam().filter << " vs " << GetParam().topic;
}

INSTANTIATE_TEST_SUITE_P(
    Cases, TopicMatchTest,
    ::testing::Values(
        MatchCase{"a/b/c", "a/b/c", true}, MatchCase{"a/b/c", "a/b/d", false},
        MatchCase{"a/b/c", "a/b", false}, MatchCase{"a/b", "a/b/c", false},
        MatchCase{"a/+/c", "a/b/c", true}, MatchCase{"a/+/c", "a/x/c", true},
        MatchCase{"a/+/c", "a/b/d", false}, MatchCase{"+/b/c", "a/b/c", true},
        MatchCase{"a/b/+", "a/b/c", true}, MatchCase{"a/#", "a/b/c", true},
        MatchCase{"a/#", "a", true},  // MQTT spec: '#' also matches the parent level
        MatchCase{"#", "anything/at/all", true}, MatchCase{"a/#", "b/c", false},
        MatchCase{"a/+/#", "a/b/c/d", true}, MatchCase{"a/+/#", "a/b", true},
        MatchCase{"tuya/+/state", "tuya/kitchen_smoke/state", true},
        MatchCase{"tuya/+/state", "tuya/kitchen_smoke/config", false}));

// --- Broker -----------------------------------------------------------------------

TEST(MqttBroker, DeliversToMatchingSubscribers) {
  MqttBroker broker;
  std::vector<std::string> seen_a;
  std::vector<std::string> seen_all;
  broker.Subscribe("home/a/state",
                   [&](const std::string&, const std::string& p) { seen_a.push_back(p); });
  broker.Subscribe("home/#",
                   [&](const std::string&, const std::string& p) { seen_all.push_back(p); });

  broker.Publish("home/a/state", "1");
  broker.Publish("home/b/state", "2");
  EXPECT_EQ(seen_a, (std::vector<std::string>{"1"}));
  EXPECT_EQ(seen_all, (std::vector<std::string>{"1", "2"}));
  EXPECT_EQ(broker.messages_published(), 2u);
  EXPECT_EQ(broker.deliveries(), 3u);
}

TEST(MqttBroker, RetainedMessagesDeliveredOnSubscribe) {
  MqttBroker broker;
  broker.Publish("home/x/state", "retained-value", /*retain=*/true);
  broker.Publish("home/y/state", "not-retained", /*retain=*/false);

  std::vector<std::string> seen;
  broker.Subscribe("home/#",
                   [&](const std::string&, const std::string& p) { seen.push_back(p); });
  EXPECT_EQ(seen, (std::vector<std::string>{"retained-value"}));

  // Empty retained payload clears the slot.
  broker.Publish("home/x/state", "", /*retain=*/true);
  EXPECT_EQ(broker.retained_count(), 0u);
}

TEST(MqttBroker, UnsubscribeStopsDelivery) {
  MqttBroker broker;
  int count = 0;
  const int id = broker.Subscribe("t", [&](const std::string&, const std::string&) { ++count; });
  broker.Publish("t", "1");
  broker.Unsubscribe(id);
  broker.Publish("t", "2");
  EXPECT_EQ(count, 1);
}

TEST(MqttBroker, RetainedOverwrite) {
  MqttBroker broker;
  broker.Publish("k", "old", true);
  broker.Publish("k", "new", true);
  std::string latest;
  broker.Subscribe("k", [&](const std::string&, const std::string& p) { latest = p; });
  EXPECT_EQ(latest, "new");
}

// --- Bridge + collector --------------------------------------------------------------

TEST(MqttSensorBridge, PublishesRetainedSensorState) {
  SmartHome home = BuildDemoHome(71);
  home.Step(kSecondsPerHour);
  MqttBroker broker;
  MqttSensorBridge bridge(home, broker, "home/demo");
  bridge.PublishAll();
  EXPECT_EQ(bridge.published(), home.AllSensors().size());
  EXPECT_EQ(broker.retained_count(), home.AllSensors().size());
}

TEST(MqttCollector, AccumulatesPushedState) {
  SmartHome home = BuildDemoHome(72);
  home.Step(kSecondsPerHour);
  MqttBroker broker;
  MqttSensorBridge bridge(home, broker, "home/demo");
  MqttCollector collector(broker, "home/demo");

  EXPECT_FALSE(collector.Snapshot(home.now()).ok());  // nothing pushed yet
  bridge.PublishAll();
  Result<SensorSnapshot> snapshot = collector.Snapshot(home.now());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().size(), home.AllSensors().size());
  EXPECT_EQ(collector.updates_received(), home.AllSensors().size());

  // Later pushes update in place, not duplicate.
  home.Step(kSecondsPerHour);
  bridge.PublishAll();
  EXPECT_EQ(collector.Snapshot(home.now()).value().size(), home.AllSensors().size());
}

TEST(MqttCollector, LateSubscriberSeesRetainedState) {
  SmartHome home = BuildDemoHome(73);
  home.Step(kSecondsPerHour);
  MqttBroker broker;
  MqttSensorBridge bridge(home, broker, "home/demo");
  bridge.PublishAll();  // published before any collector exists

  MqttCollector late(broker, "home/demo");
  Result<SensorSnapshot> snapshot = late.Snapshot(home.now());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().size(), home.AllSensors().size());
}

TEST(MqttCollector, IgnoresMalformedUpdates) {
  MqttBroker broker;
  MqttCollector collector(broker, "base");
  broker.Publish("base/x/state", "not json");
  broker.Publish("base/x/state", R"({"kind":"binary","value":true})");  // no type
  broker.Publish("base//state", R"({"kind":"binary","value":true,"type":"smoke"})");
  EXPECT_EQ(collector.updates_received(), 0u);
  EXPECT_EQ(collector.malformed_updates(), 3u);
  EXPECT_FALSE(collector.Snapshot(SimTime()).ok());
}

TEST(MqttCollector, VendorFilteredBridge) {
  SmartHome home = BuildDemoHome(74);
  home.AddSensor("tuya_patio_motion", SensorType::kMotion, "patio", Vendor::kTuyaLike);
  home.Step(kSecondsPerHour);

  MqttBroker broker;
  MqttSensorBridge bridge(home, broker, "tuya", Vendor::kTuyaLike);
  MqttCollector collector(broker, "tuya");
  bridge.PublishAll();
  Result<SensorSnapshot> snapshot = collector.Snapshot(home.now());
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().size(), 1u);
  EXPECT_NE(snapshot.value().Find("tuya_patio_motion"), nullptr);
}

TEST(SensorDataCollector, MergesThreeVendors) {
  SmartHome home = BuildDemoHome(75);
  home.AddSensor("tuya_patio_motion", SensorType::kMotion, "patio", Vendor::kTuyaLike);
  home.Step(kSecondsPerHour);

  InMemoryTransport transport(9);
  MiioGateway gateway(0x31, home);
  gateway.BindTo(transport, "udp://gw");
  RestBridge rest_bridge(home, "tok");
  rest_bridge.BindTo(transport, "http://ha");
  MqttBroker broker;
  MqttSensorBridge mqtt_bridge(home, broker, "tuya", Vendor::kTuyaLike);
  mqtt_bridge.PublishAll();

  auto miio = std::make_unique<MiioClient>(transport, "udp://gw");
  ASSERT_TRUE(miio->HandshakeForToken().ok());
  auto rest = std::make_unique<RestClient>(transport, "http://ha", "tok");
  SensorDataCollector collector(std::move(miio), std::move(rest));
  collector.AttachMqtt(std::make_unique<MqttCollector>(broker, "tuya"));

  Result<SensorSnapshot> merged = collector.Collect(home.now());
  ASSERT_TRUE(merged.ok()) << merged.error().message();
  // All 16 demo sensors (two polled vendors) + 1 pushed Tuya sensor.
  EXPECT_EQ(merged.value().size(), home.AllSensors().size());
  EXPECT_NE(merged.value().Find("tuya_patio_motion"), nullptr);
  EXPECT_EQ(collector.stats().mqtt_snapshots, 1u);
}

}  // namespace
}  // namespace sidet
