#include <gtest/gtest.h>

#include "datagen/background.h"
#include "datagen/condition_solver.h"
#include "datagen/context_schema.h"
#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "instructions/standard_instruction_set.h"

namespace sidet {
namespace {

// --- Background sampler --------------------------------------------------------

TEST(Background, ProducesCompleteInRangeContexts) {
  BackgroundSampler sampler(1);
  for (int i = 0; i < 500; ++i) {
    const ContextSample sample = sampler.Sample();
    for (const SensorType type : AllSensorTypes()) {
      const SensorValue* value = sample.snapshot.FindByType(type);
      ASSERT_NE(value, nullptr) << ToString(type);
      const SensorTraits& traits = TraitsOf(type);
      if (traits.kind == ValueKind::kContinuous) {
        EXPECT_GE(value->number, traits.min_value - 1e-6) << ToString(type);
        EXPECT_LE(value->number, traits.max_value + 1e-6) << ToString(type);
      }
    }
  }
}

TEST(Background, OccupancyTracksWorkHours) {
  BackgroundSampler sampler(2);
  int home_work_hours = 0;
  int total_work_hours = 0;
  int home_night = 0;
  int total_night = 0;
  for (int i = 0; i < 5000; ++i) {
    const ContextSample sample = sampler.Sample();
    const bool home = sample.snapshot.FindByType(SensorType::kOccupancy)->as_bool();
    const double hour = sample.time.hour_of_day();
    if (!sample.time.is_weekend() && hour >= 9 && hour < 17) {
      ++total_work_hours;
      home_work_hours += home;
    }
    if (hour < 5) {
      ++total_night;
      home_night += home;
    }
  }
  EXPECT_LT(home_work_hours / static_cast<double>(total_work_hours), 0.5);
  EXPECT_GT(home_night / static_cast<double>(total_night), 0.8);
}

TEST(Background, HazardsAreRareAndCoherent) {
  BackgroundSampler sampler(3);
  int smoke_count = 0;
  for (int i = 0; i < 5000; ++i) {
    const ContextSample sample = sampler.Sample();
    if (sample.snapshot.FindByType(SensorType::kSmoke)->as_bool()) {
      ++smoke_count;
      // Organic smoke carries its physical consequences.
      EXPECT_GT(sample.snapshot.FindByType(SensorType::kAirQuality)->number, 150.0);
    }
  }
  EXPECT_LT(smoke_count, 300);
  EXPECT_GT(smoke_count, 5);
}

TEST(HazardCoherence, EnforceAndStrip) {
  BackgroundSampler sampler(4);
  Rng rng(4);
  ContextSample sample = sampler.Sample();
  sample.snapshot.Set("smoke", SensorType::kSmoke, SensorValue::Binary(true));
  sample.snapshot.Set("air_quality", SensorType::kAirQuality, SensorValue::Continuous(50));
  EnforceHazardCoherence(sample, rng);
  EXPECT_GT(sample.snapshot.FindByType(SensorType::kAirQuality)->number, 180.0);
  EXPECT_GT(sample.snapshot.FindByType(SensorType::kTemperature)->number, 25.0);

  StripHazardCoherence(sample, rng, {"smoke"});
  EXPECT_LT(sample.snapshot.FindByType(SensorType::kAirQuality)->number, 120.0);
  // The hazard bit itself is untouched — that is the point of a spoof.
  EXPECT_TRUE(sample.snapshot.FindByType(SensorType::kSmoke)->as_bool());
}

// --- Condition solver -----------------------------------------------------------

class SolverPropertyTest : public ::testing::TestWithParam<const char*> {};

TEST_P(SolverPropertyTest, ForcedConditionsHold) {
  Result<ConditionPtr> condition = ParseCondition(GetParam());
  ASSERT_TRUE(condition.ok()) << condition.error().message();
  BackgroundSampler sampler(11);
  Rng rng(11);

  int satisfied = 0;
  int falsified = 0;
  const int trials = 60;
  for (int i = 0; i < trials; ++i) {
    ContextSample sample = sampler.Sample();
    ASSERT_TRUE(ForceCondition(*condition.value(), true, sample, rng).ok()) << GetParam();
    EvalContext context{&sample.snapshot, sample.time};
    Result<bool> holds = condition.value()->Evaluate(context);
    ASSERT_TRUE(holds.ok());
    satisfied += holds.value();

    ASSERT_TRUE(ForceCondition(*condition.value(), false, sample, rng).ok()) << GetParam();
    EvalContext context2{&sample.snapshot, sample.time};
    Result<bool> still_holds = condition.value()->Evaluate(context2);
    ASSERT_TRUE(still_holds.ok());
    falsified += !still_holds.value();
  }
  EXPECT_EQ(satisfied, trials) << GetParam();
  EXPECT_EQ(falsified, trials) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, SolverPropertyTest,
    ::testing::Values("smoke", "not occupancy", "temperature > 26", "temperature <= 15",
                      "air_quality >= 150", "hour >= 21", "hour < 6.5",
                      "segment == \"afternoon\"", "weekend", "not weekend",
                      "weather_condition == \"rain\"", "weather_condition != \"rain\"",
                      "smoke and gas_leak", "occupancy and motion and voice_command",
                      "temperature > 26 and weather_condition == \"clear\"",
                      "motion and illuminance < 50",
                      "occupancy and (segment == \"evening\" or segment == \"night\")",
                      "voice_command and not lock_state",
                      "noise_level > 80 and not occupancy",
                      "temperature < 16 and occupancy and hour >= 18"));

TEST(Solver, IdentifierVsIdentifierComparison) {
  Result<ConditionPtr> condition = ParseCondition("temperature > outdoor_temperature");
  ASSERT_TRUE(condition.ok());
  BackgroundSampler sampler(12);
  Rng rng(12);
  for (int i = 0; i < 30; ++i) {
    ContextSample sample = sampler.Sample();
    ASSERT_TRUE(ForceCondition(*condition.value(), true, sample, rng).ok());
    EvalContext context{&sample.snapshot, sample.time};
    EXPECT_TRUE(condition.value()->Evaluate(context).value());
    ASSERT_TRUE(ForceCondition(*condition.value(), false, sample, rng).ok());
    EvalContext context2{&sample.snapshot, sample.time};
    EXPECT_FALSE(condition.value()->Evaluate(context2).value());
  }
}

TEST(Solver, SmallMarginsLandNearBoundary) {
  Result<ConditionPtr> condition = ParseCondition("temperature > 25");
  ASSERT_TRUE(condition.ok());
  BackgroundSampler sampler(13);
  Rng rng(13);
  const SolverOptions tight{0.1};
  for (int i = 0; i < 50; ++i) {
    ContextSample sample = sampler.Sample();
    ASSERT_TRUE(ForceCondition(*condition.value(), true, sample, rng, tight).ok());
    const double t = sample.snapshot.FindByType(SensorType::kTemperature)->number;
    EXPECT_GT(t, 25.0);
    EXPECT_LT(t, 26.5);  // tight margin keeps it close
  }
}

// --- Context schema ---------------------------------------------------------------

TEST(ContextSchema, WindowSchemaIsTheNineFigSixFeaturesPlusAction) {
  const ContextSchema schema = ContextSchema::ForCategory(DeviceCategory::kWindowAndLock);
  ASSERT_EQ(schema.size(), 10u);
  const std::vector<std::string> expected = {
      "smoke",       "gas_leak",          "voice_command", "lock_state", "temperature",
      "air_quality", "weather_condition", "motion",        "hour",       "action"};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(schema.fields()[i].name, expected[i]);
  }
}

TEST(ContextSchema, FeaturizeMatchesSnapshot) {
  const ContextSchema schema = ContextSchema::ForCategory(DeviceCategory::kWindowAndLock);
  BackgroundSampler sampler(14);
  const ContextSample sample = sampler.Sample();
  Result<std::vector<double>> row =
      schema.Featurize(sample.snapshot, sample.time, "window.open");
  ASSERT_TRUE(row.ok()) << row.error().message();
  ASSERT_EQ(row.value().size(), schema.size());
  EXPECT_EQ(row.value()[0], sample.snapshot.FindByType(SensorType::kSmoke)->number);
  EXPECT_NEAR(row.value()[8], sample.time.hour_of_day(), 1e-9);
  EXPECT_EQ(row.value()[9], schema.ActionIndex("window.open"));
}

TEST(ContextSchema, UnknownActionMapsToOther) {
  const ContextSchema schema = ContextSchema::ForCategory(DeviceCategory::kLighting);
  const std::vector<std::string>& labels = schema.ActionLabels();
  EXPECT_EQ(labels.back(), "other");
  EXPECT_EQ(schema.ActionIndex("not.an.instruction"),
            static_cast<double>(labels.size() - 1));
}

TEST(ContextSchema, FeaturizeFailsOnMissingSensor) {
  const ContextSchema schema = ContextSchema::ForCategory(DeviceCategory::kWindowAndLock);
  SensorSnapshot empty;
  EXPECT_FALSE(schema.Featurize(empty, SimTime(), "window.open").ok());
}

// --- Corpus generator ---------------------------------------------------------------

TEST(Corpus, GeneratesRequestedCounts) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CorpusConfig config;
  config.core_rules = 200;
  config.camera_rules = 50;
  Result<GeneratedCorpus> generated = GenerateCorpus(config, registry);
  ASSERT_TRUE(generated.ok()) << generated.error().message();
  EXPECT_EQ(generated.value().corpus.size(), 250u);
  int census_total = 0;
  for (const auto& [trigger, count] : generated.value().camera_census) census_total += count;
  EXPECT_EQ(census_total, 50);
}

TEST(Corpus, AllRulesParseAndTargetControlInstructions) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> generated = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(generated.ok());
  for (const Rule& rule : generated.value().corpus.rules()) {
    ASSERT_NE(rule.condition, nullptr);
    const Instruction* instruction = registry.FindByName(rule.action);
    ASSERT_NE(instruction, nullptr) << rule.action;
    EXPECT_EQ(instruction->kind, InstructionKind::kControl);
    EXPECT_EQ(instruction->category, rule.category);
    EXPECT_GE(rule.user_count, 1u);
  }
}

TEST(Corpus, EveryEvaluatedFamilyHasRules) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> generated = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(generated.ok());
  for (const DeviceCategory category : EvaluatedCategories()) {
    EXPECT_GT(generated.value().corpus.ForCategory(category).size(), 10u)
        << ToString(category);
  }
}

TEST(Corpus, PopularityIsHeavyTailed) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> generated = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(generated.ok());
  const std::vector<const Rule*> by_popularity = generated.value().corpus.ByPopularity();
  const std::uint64_t total = generated.value().corpus.TotalUsers();
  std::uint64_t top_decile = 0;
  for (std::size_t i = 0; i < by_popularity.size() / 10; ++i) {
    top_decile += by_popularity[i]->user_count;
  }
  EXPECT_GT(top_decile * 2, total);  // top 10% holds more than half of usage
  EXPECT_LE(by_popularity.back()->user_count, 10u);  // deep tail (boosts allowed)
}

TEST(Corpus, DeterministicForSeed) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> a = GenerateCorpus(CorpusConfig{}, registry);
  Result<GeneratedCorpus> b = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a.value().corpus.size(), b.value().corpus.size());
  for (std::size_t i = 0; i < a.value().corpus.size(); ++i) {
    EXPECT_EQ(a.value().corpus.rules()[i].condition_source,
              b.value().corpus.rules()[i].condition_source);
    EXPECT_EQ(a.value().corpus.rules()[i].user_count, b.value().corpus.rules()[i].user_count);
  }
}

// --- Device dataset builder -----------------------------------------------------------

class DeviceDatasetTest : public ::testing::TestWithParam<DeviceCategory> {};

TEST_P(DeviceDatasetTest, BuildsLabelledDatasetWithConfiguredMix) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(corpus.ok());

  DeviceDatasetConfig config = DefaultConfigFor(GetParam());
  config.samples = 800;
  Result<DeviceDataset> built = BuildDeviceDataset(corpus.value().corpus, config);
  ASSERT_TRUE(built.ok()) << built.error().message();

  const Dataset& data = built.value().data;
  EXPECT_EQ(data.size(), 800u);
  EXPECT_EQ(data.num_features(), built.value().schema.size());
  // Positive fraction within label-noise tolerance of the configured mix.
  EXPECT_NEAR(data.PositiveFraction(), config.positive_fraction, 0.05);
  EXPECT_GT(built.value().rules_used, 0u);
}

INSTANTIATE_TEST_SUITE_P(Families, DeviceDatasetTest,
                         ::testing::ValuesIn(EvaluatedCategories()),
                         [](const ::testing::TestParamInfo<DeviceCategory>& info) {
                           return std::string(ToString(info.param));
                         });

TEST(DeviceDataset, FailsWithoutRules) {
  RuleCorpus empty;
  DeviceDatasetConfig config = DefaultConfigFor(DeviceCategory::kLighting);
  EXPECT_FALSE(BuildDeviceDataset(empty, config).ok());
}

TEST(DeviceDataset, DeterministicForSeed) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(corpus.ok());
  DeviceDatasetConfig config = DefaultConfigFor(DeviceCategory::kKitchen);
  config.samples = 300;
  Result<DeviceDataset> a = BuildDeviceDataset(corpus.value().corpus, config);
  Result<DeviceDataset> b = BuildDeviceDataset(corpus.value().corpus, config);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a.value().data.ToCsv(), b.value().data.ToCsv());
}

}  // namespace
}  // namespace sidet
