#include "home/smart_home.h"

#include <gtest/gtest.h>

#include "home/environment.h"
#include "home/occupant.h"
#include "instructions/standard_instruction_set.h"

namespace sidet {
namespace {

TEST(WeatherModel, TemperatureAndDaylightStayPlausible) {
  WeatherModel weather(Rng(5), /*seasonal_mean_c=*/15.0);
  for (int hour = 0; hour < 24 * 30; ++hour) {
    const OutdoorConditions conditions = weather.Step(SimTime(hour * kSecondsPerHour));
    EXPECT_GT(conditions.temperature_c, -25.0);
    EXPECT_LT(conditions.temperature_c, 45.0);
    EXPECT_GE(conditions.daylight_lux, 0.0);
    EXPECT_LE(conditions.daylight_lux, 25000.0);
  }
}

TEST(WeatherModel, DarkAtNightBrightAtNoon) {
  WeatherModel weather(Rng(6), 15.0);
  double night_total = 0.0;
  double noon_total = 0.0;
  for (int day = 0; day < 20; ++day) {
    night_total += weather.Step(SimTime::FromDayTime(day, 2)).daylight_lux;
    noon_total += weather.Step(SimTime::FromDayTime(day, 13)).daylight_lux;
  }
  EXPECT_EQ(night_total, 0.0);
  EXPECT_GT(noon_total, 0.0);
}

TEST(WeatherModel, SnowRequiresCold) {
  WeatherModel weather(Rng(7), /*seasonal_mean_c=*/22.0);  // warm season
  for (int hour = 0; hour < 24 * 60; ++hour) {
    const OutdoorConditions conditions = weather.Step(SimTime(hour * kSecondsPerHour));
    if (conditions.condition == WeatherCondition::kSnow) {
      ADD_FAILURE() << "snow in a warm season at hour " << hour;
      break;
    }
  }
}

TEST(Occupant, WorkdayScheduleShape) {
  Occupant worker("w", OccupantSchedule{}, 11);
  int home_at_work_hours = 0;
  int home_at_night = 0;
  const int days = 50;
  for (int day = 0; day < days; ++day) {
    const auto dow = static_cast<DayOfWeek>(day % 7);
    if (dow == DayOfWeek::kSaturday || dow == DayOfWeek::kSunday) continue;
    home_at_work_hours += worker.IsHome(SimTime::FromDayTime(day, 12));
    home_at_night += worker.IsHome(SimTime::FromDayTime(day, 2));
  }
  EXPECT_LT(home_at_work_hours, 10);  // nearly always at work at noon
  EXPECT_GT(home_at_night, 30);       // always home at 2am
}

TEST(Occupant, SleepsAtNight) {
  Occupant sleeper("s", OccupantSchedule{}, 13);
  int awake_at_3am = 0;
  int awake_at_20 = 0;
  for (int day = 0; day < 30; ++day) {
    awake_at_3am += sleeper.IsAwake(SimTime::FromDayTime(day, 3));
    awake_at_20 += sleeper.IsHome(SimTime::FromDayTime(day, 20)) &&
                   sleeper.IsAwake(SimTime::FromDayTime(day, 20));
  }
  EXPECT_LT(awake_at_3am, 3);
  EXPECT_GT(awake_at_20, 20);
}

TEST(Occupant, MotionOnlyWhenHomeAndAwake) {
  Occupant person("p", OccupantSchedule{}, 17);
  for (int day = 0; day < 10; ++day) {
    for (int hour = 0; hour < 24; ++hour) {
      const SimTime t = SimTime::FromDayTime(day, hour);
      if (person.MotionRate(t) > 0.0) {
        EXPECT_TRUE(person.IsHome(t));
        EXPECT_TRUE(person.IsAwake(t));
      }
    }
  }
}

TEST(Device, AppliesMatchingControlInstructions) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Device light(1, "lamp", DeviceCategory::kLighting, "den");
  ASSERT_TRUE(light.Apply(*registry.FindByName("light.on")).ok());
  EXPECT_TRUE(light.IsOn("on"));
  ASSERT_TRUE(light.Apply(*registry.FindByName("light.set_brightness"), 0.4).ok());
  EXPECT_DOUBLE_EQ(light.State("brightness"), 0.4);
  ASSERT_TRUE(light.Apply(*registry.FindByName("light.off")).ok());
  EXPECT_FALSE(light.IsOn("on"));
}

TEST(Device, RejectsWrongCategoryAndStatusInstructions) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Device light(1, "lamp", DeviceCategory::kLighting, "den");
  EXPECT_FALSE(light.Apply(*registry.FindByName("window.open")).ok());
  EXPECT_FALSE(light.Apply(*registry.FindByName("light.get_state")).ok());
}

TEST(Device, ClampsArguments) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Device ac(2, "ac", DeviceCategory::kAirConditioning, "living");
  ASSERT_TRUE(ac.Apply(*registry.FindByName("ac.set_target"), 99.0).ok());
  EXPECT_DOUBLE_EQ(ac.State("target"), 32.0);
  ASSERT_TRUE(ac.Apply(*registry.FindByName("ac.set_target"), -99.0).ok());
  EXPECT_DOUBLE_EQ(ac.State("target"), 10.0);
}

TEST(SmartHome, DemoHomeIsFullyEquipped) {
  SmartHome home = BuildDemoHome(1);
  EXPECT_EQ(home.rooms().size(), 4u);
  EXPECT_GE(home.AllSensors().size(), 16u);
  EXPECT_GE(home.devices().size(), 10u);
  EXPECT_EQ(home.occupants().size(), 2u);
  EXPECT_FALSE(home.SensorsOfVendor(Vendor::kXiaomi).empty());
  EXPECT_FALSE(home.SensorsOfVendor(Vendor::kSmartThings).empty());
  // Every sensor type relevant to the ML schemas is present.
  const SensorSnapshot snapshot = home.Snapshot();
  for (const SensorType type :
       {SensorType::kSmoke, SensorType::kGasLeak, SensorType::kVoiceCommand,
        SensorType::kLockState, SensorType::kTemperature, SensorType::kAirQuality,
        SensorType::kWeatherCondition, SensorType::kMotion, SensorType::kOccupancy,
        SensorType::kIlluminance}) {
    EXPECT_NE(snapshot.FindByType(type), nullptr) << ToString(type);
  }
}

TEST(SmartHome, HeatingRaisesIndoorTemperature) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(3, /*seasonal_mean_c=*/5.0);
  home.Step(2 * kSecondsPerHour);
  const double before = home.indoor_temperature();
  ASSERT_TRUE(home.Execute(*registry.FindByName("ac.set_target"), 28.0).ok());
  ASSERT_TRUE(home.Execute(*registry.FindByName("ac.heat")).ok());
  home.Step(kSecondsPerHour);
  EXPECT_GT(home.indoor_temperature(), before + 2.0);
}

TEST(SmartHome, OpenWindowPullsTemperatureTowardOutdoor) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(4, /*seasonal_mean_c=*/-5.0);  // cold outside
  home.Step(kSecondsPerHour);
  const double closed_temp = home.indoor_temperature();
  ASSERT_TRUE(home.Execute(*registry.FindByName("window.open")).ok());
  home.Step(2 * kSecondsPerHour);
  EXPECT_LT(home.indoor_temperature(), closed_temp - 3.0);
  // The window contact sensor reflects the device state.
  const SensorSnapshot snapshot = home.Snapshot();
  EXPECT_TRUE(snapshot.FindByType(SensorType::kWindowContact)->as_bool());
}

TEST(SmartHome, FireDrivesSmokeAndAirQuality) {
  SmartHome home = BuildDemoHome(5);
  home.Step(kSecondsPerMinute);
  EXPECT_FALSE(home.Snapshot().FindByType(SensorType::kSmoke)->as_bool());
  home.StartFire();
  home.Step(10 * kSecondsPerMinute);
  const SensorSnapshot burning = home.Snapshot();
  EXPECT_TRUE(burning.FindByType(SensorType::kSmoke)->as_bool());
  EXPECT_GT(burning.FindByType(SensorType::kAirQuality)->number, 180.0);
  home.StopFire();
  EXPECT_FALSE(home.fire_active());
}

TEST(SmartHome, VoiceCommandWindowExpires) {
  SmartHome home = BuildDemoHome(6);
  home.TriggerVoiceCommand(/*window_seconds=*/120);
  // Voice sensor true while someone is awake within the window. Advance to
  // Monday 20:00 when both residents are home and awake, then re-trigger.
  home.Step(20 * kSecondsPerHour);
  home.TriggerVoiceCommand(120);
  EXPECT_TRUE(home.Snapshot().FindByType(SensorType::kVoiceCommand)->as_bool());
  home.Step(10 * kSecondsPerMinute);
  EXPECT_FALSE(home.Snapshot().FindByType(SensorType::kVoiceCommand)->as_bool());
}

TEST(SmartHome, LockSensorTracksLockDevice) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(7);
  EXPECT_TRUE(home.Snapshot().FindByType(SensorType::kLockState)->as_bool());
  ASSERT_TRUE(home.Execute(*registry.FindByName("lock.unlock")).ok());
  EXPECT_FALSE(home.Snapshot().FindByType(SensorType::kLockState)->as_bool());
  ASSERT_TRUE(home.Execute(*registry.FindByName("lock.lock")).ok());
  EXPECT_TRUE(home.Snapshot().FindByType(SensorType::kLockState)->as_bool());
}

TEST(SmartHome, ExecuteLogsEventsAndRejectsStatus) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(8);
  const std::size_t before = home.events().size();
  ASSERT_TRUE(home.Execute(*registry.FindByName("tv.on")).ok());
  EXPECT_GT(home.events().size(), before);
  EXPECT_FALSE(home.Execute(*registry.FindByName("tv.get_state")).ok());
}

TEST(SmartHome, StepIsDeterministicForSeed) {
  SmartHome a = BuildDemoHome(99);
  SmartHome b = BuildDemoHome(99);
  a.Step(kSecondsPerHour * 5);
  b.Step(kSecondsPerHour * 5);
  EXPECT_DOUBLE_EQ(a.indoor_temperature(), b.indoor_temperature());
  EXPECT_EQ(a.Snapshot().ToJson().Dump(), b.Snapshot().ToJson().Dump());
}

}  // namespace
}  // namespace sidet
