// Replacement global operator new/delete that counts allocations into
// AllocProbe's thread-local counter. Compiled only into test binaries that
// assert allocation-free hot paths (see tests/CMakeLists.txt); everything
// else keeps the default allocator.
//
// Sanitizer builds compile this TU to nothing: ASan/TSan interpose on the
// allocator themselves, and stacking a second replacement on top of theirs
// breaks their bookkeeping. AllocProbe::Active() then stays false and the
// allocation-free tests GTEST_SKIP.
#include "util/alloc_probe.h"

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SIDET_ALLOC_HOOK_DISABLED 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
#define SIDET_ALLOC_HOOK_DISABLED 1
#endif
#endif

#ifndef SIDET_ALLOC_HOOK_DISABLED

#include <cstdlib>
#include <new>

namespace {

void* CountedAlloc(std::size_t size) {
  ++sidet::detail::alloc_probe_count;
  if (size == 0) size = 1;
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc();
}

// Flips AllocProbe::Active() once the hook is linked in.
const bool kHookRegistered = [] {
  sidet::detail::alloc_probe_active = true;
  return true;
}();

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }

void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  ++sidet::detail::alloc_probe_count;
  return std::malloc(size == 0 ? 1 : size);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  ++sidet::detail::alloc_probe_count;
  return std::malloc(size == 0 ? 1 : size);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, const std::nothrow_t&) noexcept { std::free(p); }
void operator delete[](void* p, const std::nothrow_t&) noexcept { std::free(p); }

#endif  // SIDET_ALLOC_HOOK_DISABLED
