#include "ml/decision_tree.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace sidet {
namespace {

std::vector<FeatureSpec> TwoNumeric() {
  return {FeatureSpec{"x", false, {}}, FeatureSpec{"y", false, {}}};
}

Dataset ThresholdDataset(Rng& rng, int n) {
  // label = x > 0.5 (y is noise).
  Dataset data(TwoNumeric());
  for (int i = 0; i < n; ++i) {
    const double x = rng.UniformDouble();
    const double y = rng.UniformDouble();
    data.Add({x, y}, x > 0.5 ? 1 : 0);
  }
  return data;
}

TEST(DecisionTree, LearnsSingleThreshold) {
  Rng rng(1);
  Dataset train = ThresholdDataset(rng, 500);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());

  Dataset test = ThresholdDataset(rng, 300);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 290);
  // The informative feature carries essentially all the importance.
  EXPECT_GT(tree.feature_importances()[0], 0.9);
}

TEST(DecisionTree, LearnsXorWithDepth) {
  // XOR needs at least two levels — a classic sanity check for recursion.
  Rng rng(2);
  Dataset train(TwoNumeric());
  for (int i = 0; i < 800; ++i) {
    const double x = rng.UniformDouble();
    const double y = rng.UniformDouble();
    train.Add({x, y}, (x > 0.5) != (y > 0.5) ? 1 : 0);
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_GE(tree.depth(), 2);
  EXPECT_EQ(tree.Predict(std::vector<double>{0.9, 0.1}), 1);
  EXPECT_EQ(tree.Predict(std::vector<double>{0.1, 0.9}), 1);
  EXPECT_EQ(tree.Predict(std::vector<double>{0.9, 0.9}), 0);
  EXPECT_EQ(tree.Predict(std::vector<double>{0.1, 0.1}), 0);
}

TEST(DecisionTree, LearnsCategoricalSplit) {
  Dataset train(std::vector<FeatureSpec>{FeatureSpec{"weather", true, {"clear", "rain", "snow"}}});
  Rng rng(3);
  for (int i = 0; i < 300; ++i) {
    const auto c = static_cast<double>(rng.UniformInt(0, 2));
    train.Add({c}, c == 1.0 ? 1 : 0);  // rain -> positive
  }
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_EQ(tree.Predict(std::vector<double>{1.0}), 1);
  EXPECT_EQ(tree.Predict(std::vector<double>{0.0}), 0);
  EXPECT_EQ(tree.Predict(std::vector<double>{2.0}), 0);
}

TEST(DecisionTree, PureDataYieldsSingleLeaf) {
  Dataset train(TwoNumeric());
  for (int i = 0; i < 50; ++i) train.Add({static_cast<double>(i), 0.0}, 1);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_EQ(tree.node_count(), 1u);
  EXPECT_EQ(tree.depth(), 0);
  EXPECT_EQ(tree.Predict(std::vector<double>{-5.0, 3.0}), 1);
  EXPECT_DOUBLE_EQ(tree.PredictProbability(std::vector<double>{0, 0}), 1.0);
}

TEST(DecisionTree, RespectsMaxDepth) {
  Rng rng(4);
  Dataset train = ThresholdDataset(rng, 1000);
  DecisionTreeParams params;
  params.max_depth = 2;
  DecisionTree tree(params);
  ASSERT_TRUE(tree.Fit(train).ok());
  EXPECT_LE(tree.depth(), 2);
}

TEST(DecisionTree, RespectsMinSamplesLeaf) {
  Rng rng(5);
  Dataset train = ThresholdDataset(rng, 400);
  DecisionTreeParams params;
  params.min_samples_leaf = 50;
  DecisionTree tree(params);
  ASSERT_TRUE(tree.Fit(train).ok());
  // With such large leaves the tree must stay small.
  EXPECT_LE(tree.leaf_count(), 8u);
}

TEST(DecisionTree, FailsOnEmptyDataset) {
  DecisionTree tree;
  EXPECT_FALSE(tree.Fit(Dataset(TwoNumeric())).ok());
  EXPECT_FALSE(tree.trained());
}

TEST(DecisionTree, ImportancesSumToOneWhenSplitsExist) {
  Rng rng(6);
  Dataset train = ThresholdDataset(rng, 500);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  double sum = 0.0;
  for (const double w : tree.feature_importances()) {
    EXPECT_GE(w, 0.0);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);

  const auto ranked = tree.RankedImportances();
  EXPECT_EQ(ranked.size(), 2u);
  EXPECT_GE(ranked[0].second, ranked[1].second);
  EXPECT_EQ(ranked[0].first, "x");
}

TEST(DecisionTree, DeterministicForSameData) {
  Rng rng_a(7);
  Dataset train_a = ThresholdDataset(rng_a, 300);
  Rng rng_b(7);
  Dataset train_b = ThresholdDataset(rng_b, 300);

  DecisionTree a;
  DecisionTree b;
  ASSERT_TRUE(a.Fit(train_a).ok());
  ASSERT_TRUE(b.Fit(train_b).ok());
  EXPECT_EQ(a.ToJson().Dump(), b.ToJson().Dump());
}

class TreeCriterionTest : public ::testing::TestWithParam<SplitCriterion> {};

TEST_P(TreeCriterionTest, AllCriteriaLearnTheThreshold) {
  Rng rng(8);
  Dataset train = ThresholdDataset(rng, 600);
  DecisionTreeParams params;
  params.criterion = GetParam();
  DecisionTree tree(params);
  ASSERT_TRUE(tree.Fit(train).ok());

  Dataset test = ThresholdDataset(rng, 200);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += tree.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 190) << ToString(GetParam());
}

INSTANTIATE_TEST_SUITE_P(Criteria, TreeCriterionTest,
                         ::testing::Values(SplitCriterion::kGini, SplitCriterion::kInfoGain,
                                           SplitCriterion::kGainRatio));

TEST(DecisionTree, JsonRoundTripPreservesPredictions) {
  Rng rng(9);
  Dataset train = ThresholdDataset(rng, 500);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());

  Result<DecisionTree> restored = DecisionTree::FromJson(tree.ToJson());
  ASSERT_TRUE(restored.ok()) << restored.error().message();
  EXPECT_EQ(restored.value().node_count(), tree.node_count());

  Dataset probe = ThresholdDataset(rng, 500);
  for (std::size_t i = 0; i < probe.size(); ++i) {
    EXPECT_EQ(restored.value().Predict(probe.row(i)), tree.Predict(probe.row(i)));
    EXPECT_DOUBLE_EQ(restored.value().PredictProbability(probe.row(i)),
                     tree.PredictProbability(probe.row(i)));
  }
  // Importances survive too.
  EXPECT_EQ(restored.value().feature_importances(), tree.feature_importances());
}

TEST(DecisionTree, FromJsonRejectsGarbage) {
  EXPECT_FALSE(DecisionTree::FromJson(Json(nullptr)).ok());
  EXPECT_FALSE(DecisionTree::FromJson(Json::Object()).ok());
  Json wrong_model = Json::Object();
  wrong_model["model"] = "svm";
  EXPECT_FALSE(DecisionTree::FromJson(wrong_model).ok());
}

TEST(DecisionTree, DescribeShowsStructure) {
  Rng rng(10);
  Dataset train = ThresholdDataset(rng, 300);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  const std::string description = tree.Describe();
  EXPECT_NE(description.find("if x <="), std::string::npos);
  EXPECT_NE(description.find("leaf:"), std::string::npos);
}

TEST(DecisionTree, ProbabilityBounded) {
  Rng rng(11);
  Dataset train = ThresholdDataset(rng, 400);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> row = {rng.UniformDouble(), rng.UniformDouble()};
    const double p = tree.PredictProbability(row);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    EXPECT_EQ(tree.Predict(row), p >= 0.5 ? 1 : 0);
  }
}

}  // namespace
}  // namespace sidet
