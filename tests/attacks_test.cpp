#include <gtest/gtest.h>

#include "attacks/attack_generator.h"
#include "attacks/protocol_attacks.h"
#include "instructions/standard_instruction_set.h"
#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"

namespace sidet {
namespace {

class ProtocolAttackTest : public ::testing::Test {
 protected:
  ProtocolAttackTest() : home_(BuildDemoHome(51)), gateway_(0xAA55, home_), bridge_(home_, "tok") {
    home_.Step(kSecondsPerHour);
    gateway_.BindTo(transport_, "udp://gw");
    bridge_.BindTo(transport_, "http://ha");
  }

  Bytes CaptureValidPacket() {
    MiioMessage message;
    message.device_id = 0xAA55;
    message.stamp = static_cast<std::uint32_t>(home_.now().seconds()) + 1;
    message.payload_json = R"({"id":1,"method":"miIO.info","params":[]})";
    return EncodeMiioPacket(gateway_.token(), message);
  }

  InMemoryTransport transport_{5};
  SmartHome home_;
  MiioGateway gateway_;
  RestBridge bridge_;
};

TEST_F(ProtocolAttackTest, ReplayIsRejectedAfterFirstDelivery) {
  const Bytes packet = CaptureValidPacket();
  // First delivery succeeds...
  ASSERT_TRUE(transport_.Request("udp://gw", packet).ok());
  // ...the captured replay does not.
  const ProtocolAttackResult result = ReplayMiioPacket(transport_, "udp://gw", packet);
  EXPECT_TRUE(result.rejected) << result.detail;
  EXPECT_GE(gateway_.replays_rejected(), 1u);
}

TEST_F(ProtocolAttackTest, ForgedTokenIsRejected) {
  const ProtocolAttackResult result = ForgeMiioPacket(
      transport_, "udp://gw", 0xAA55, static_cast<std::uint32_t>(home_.now().seconds()) + 10,
      R"({"id":2,"method":"get_all_props","params":[]})");
  EXPECT_TRUE(result.rejected) << result.detail;
  EXPECT_GE(gateway_.checksum_failures(), 1u);
}

TEST_F(ProtocolAttackTest, InFlightTamperIsRejected) {
  for (const std::size_t flip : {0u, 5u, 17u, 33u, 47u}) {
    const ProtocolAttackResult result =
        TamperMiioPacket(transport_, "udp://gw", CaptureValidPacket(), flip);
    EXPECT_TRUE(result.rejected) << "flip index " << flip << ": " << result.detail;
  }
}

TEST_F(ProtocolAttackTest, RestTokenEnforcement) {
  EXPECT_TRUE(RestWithoutToken(transport_, "http://ha").rejected);
  EXPECT_TRUE(RestWithWrongToken(transport_, "http://ha", "guess").rejected);
  EXPECT_GE(bridge_.unauthorized_requests(), 2u);
  // The legitimate token still works afterwards.
  RestClient client(transport_, "http://ha", "tok");
  EXPECT_TRUE(client.Ping().ok());
}

TEST(AttackGenerator, EveryScenarioStagesAndCleansUp) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(52);
  AttackGenerator attacker(home, registry, 1);

  for (const AttackKind kind : AllAttackKinds()) {
    Result<AttackAttempt> attempt = attacker.Launch(kind);
    ASSERT_TRUE(attempt.ok()) << ToString(kind) << ": " << attempt.error().message();
    EXPECT_NE(attempt.value().instruction, nullptr);
    EXPECT_EQ(attempt.value().instruction->kind, InstructionKind::kControl);
    EXPECT_FALSE(attempt.value().description.empty());

    attacker.Cleanup(attempt.value());
    EXPECT_TRUE(attempt.value().spoofed.empty());
  }
  // After cleanup no sensor remains spoofed.
  for (Sensor* sensor : home.AllSensors()) EXPECT_FALSE(sensor->spoofed());
}

TEST(AttackGenerator, SmokeSpoofForgesReadingNotPhysics) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(53);
  home.Step(kSecondsPerHour);
  AttackGenerator attacker(home, registry, 2);

  Result<AttackAttempt> attempt = attacker.Launch(AttackKind::kSmokeSpoofBackdoor);
  ASSERT_TRUE(attempt.ok());
  EXPECT_EQ(attempt.value().instruction->name, "backdoor.open");

  const SensorSnapshot snapshot = home.Snapshot();
  // The reported smoke value is forged true...
  EXPECT_TRUE(snapshot.FindByType(SensorType::kSmoke)->as_bool());
  // ...but the physics is benign: no fire, normal air quality.
  EXPECT_FALSE(home.fire_active());
  EXPECT_LT(snapshot.FindByType(SensorType::kAirQuality)->number, 150.0);

  attacker.Cleanup(attempt.value());
  EXPECT_FALSE(home.Snapshot().FindByType(SensorType::kSmoke)->as_bool());
}

TEST(AttackGenerator, FailsOnHomeMissingEquipment) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome bare(1);  // no sensors, no devices
  AttackGenerator attacker(bare, registry, 3);
  Result<AttackAttempt> attempt = attacker.Launch(AttackKind::kSmokeSpoofBackdoor);
  EXPECT_FALSE(attempt.ok());
}

}  // namespace
}  // namespace sidet
