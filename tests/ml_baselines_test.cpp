// KNN, naive Bayes and linear SVM — the §IV.C candidate algorithms.
#include <gtest/gtest.h>

#include <memory>

#include "ml/knn.h"
#include "ml/linear_svm.h"
#include "ml/naive_bayes.h"
#include "util/rng.h"

namespace sidet {
namespace {

std::vector<FeatureSpec> MixedSpecs() {
  return {
      FeatureSpec{"x", false, {}},
      FeatureSpec{"mode", true, {"a", "b"}},
  };
}

// Separable data: positive iff x > 0 (numeric margin) with the categorical
// feature correlated (mode "b" mostly positive).
Dataset Separable(Rng& rng, int n) {
  Dataset data(MixedSpecs());
  for (int i = 0; i < n; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    const double x = (label == 1 ? 1.0 : -1.0) + rng.Normal(0.0, 0.4);
    const double mode = rng.Bernoulli(label == 1 ? 0.8 : 0.2) ? 1.0 : 0.0;
    data.Add({x, mode}, label);
  }
  return data;
}

double Accuracy(const Classifier& model, const Dataset& test) {
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += model.Predict(test.row(i)) == test.label(i);
  }
  return static_cast<double>(correct) / static_cast<double>(test.size());
}

struct BaselineCase {
  const char* name;
  std::function<std::unique_ptr<Classifier>()> make;
  double min_accuracy;
};

class BaselineTest : public ::testing::TestWithParam<BaselineCase> {};

TEST_P(BaselineTest, LearnsSeparableMixedData) {
  Rng rng(100);
  const Dataset train = Separable(rng, 600);
  const Dataset test = Separable(rng, 400);
  const std::unique_ptr<Classifier> model = GetParam().make();
  ASSERT_TRUE(model->Fit(train).ok());
  EXPECT_GT(Accuracy(*model, test), GetParam().min_accuracy) << GetParam().name;
}

TEST_P(BaselineTest, FailsCleanlyOnEmptyData) {
  const std::unique_ptr<Classifier> model = GetParam().make();
  EXPECT_FALSE(model->Fit(Dataset(MixedSpecs())).ok());
}

TEST_P(BaselineTest, ProbabilitiesAreBoundedAndConsistent) {
  Rng rng(101);
  const Dataset train = Separable(rng, 400);
  const std::unique_ptr<Classifier> model = GetParam().make();
  ASSERT_TRUE(model->Fit(train).ok());
  for (int i = 0; i < 100; ++i) {
    const std::vector<double> row = {rng.Normal(0.0, 2.0),
                                     rng.Bernoulli(0.5) ? 1.0 : 0.0};
    const double p = model->PredictProbability(row);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    All, BaselineTest,
    ::testing::Values(
        BaselineCase{"knn", [] { return std::make_unique<KnnClassifier>(); }, 0.9},
        BaselineCase{"naive_bayes", [] { return std::make_unique<NaiveBayesClassifier>(); },
                     0.9},
        BaselineCase{"linear_svm", [] { return std::make_unique<LinearSvm>(); }, 0.9}),
    [](const ::testing::TestParamInfo<BaselineCase>& info) { return info.param.name; });

TEST(Knn, KOneMemorizesTrainingPoints) {
  Dataset train(MixedSpecs());
  train.Add({1.0, 0}, 1);
  train.Add({-1.0, 1}, 0);
  KnnClassifier knn(KnnParams{.k = 1});
  ASSERT_TRUE(knn.Fit(train).ok());
  EXPECT_EQ(knn.Predict(std::vector<double>{0.9, 0.0}), 1);
  EXPECT_EQ(knn.Predict(std::vector<double>{-0.9, 1.0}), 0);
}

TEST(Knn, NormalizationMakesScalesComparable) {
  // Feature 0 spans [0, 1000], feature 1 spans [0, 1]; without normalization
  // feature 1 would be invisible. Labels depend only on feature 1.
  Dataset train(std::vector<FeatureSpec>{FeatureSpec{"big", false, {}},
                                         FeatureSpec{"small", false, {}}});
  Rng rng(7);
  for (int i = 0; i < 300; ++i) {
    const double big = rng.UniformDouble(0, 1000);
    const double small = rng.UniformDouble();
    train.Add({big, small}, small > 0.5 ? 1 : 0);
  }
  KnnClassifier knn;
  ASSERT_TRUE(knn.Fit(train).ok());
  int correct = 0;
  for (int i = 0; i < 200; ++i) {
    const double big = rng.UniformDouble(0, 1000);
    const double small = rng.UniformDouble();
    correct += knn.Predict(std::vector<double>{big, small}) == (small > 0.5 ? 1 : 0);
  }
  EXPECT_GT(correct, 180);
}

TEST(NaiveBayes, RequiresBothClasses) {
  Dataset one_class(MixedSpecs());
  one_class.Add({1, 0}, 1);
  one_class.Add({2, 1}, 1);
  NaiveBayesClassifier nb;
  EXPECT_FALSE(nb.Fit(one_class).ok());
}

TEST(NaiveBayes, PriorsInfluencePrediction) {
  // Heavily skewed prior with uninformative features: predicts majority.
  Dataset train(MixedSpecs());
  Rng rng(8);
  for (int i = 0; i < 95; ++i) train.Add({rng.Normal(0, 1), 0}, 1);
  for (int i = 0; i < 5; ++i) train.Add({rng.Normal(0, 1), 0}, 0);
  NaiveBayesClassifier nb;
  ASSERT_TRUE(nb.Fit(train).ok());
  EXPECT_EQ(nb.Predict(std::vector<double>{0.0, 0.0}), 1);
  EXPECT_GT(nb.PredictProbability(std::vector<double>{0.0, 0.0}), 0.8);
}

TEST(LinearSvm, DecisionSignMatchesPrediction) {
  Rng rng(9);
  const Dataset train = Separable(rng, 300);
  LinearSvm svm;
  ASSERT_TRUE(svm.Fit(train).ok());
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> row = {rng.Normal(0, 2), rng.Bernoulli(0.5) ? 1.0 : 0.0};
    EXPECT_EQ(svm.Predict(row), svm.Decision(row) >= 0.0 ? 1 : 0);
  }
}

TEST(LinearSvm, DeterministicForSeed) {
  Rng rng(10);
  const Dataset train = Separable(rng, 200);
  LinearSvm a(LinearSvmParams{.seed = 5});
  LinearSvm b(LinearSvmParams{.seed = 5});
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  const std::vector<double> probe = {0.3, 1.0};
  EXPECT_DOUBLE_EQ(a.Decision(probe), b.Decision(probe));
}

}  // namespace
}  // namespace sidet
