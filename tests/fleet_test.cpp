// The fleet layer (DESIGN.md §18): rendezvous home→shard placement and its
// minimal-disruption property, the compact model format's fail-closed loader
// and bit-identical serving, the shared model cache, lane LRU eviction with
// the cold-start miss path (zero dropped requests), the gateway's fleet
// counters on every ops surface, the fleet proxy's routing and failover, and
// the Zipf key-distribution loadgen mode.
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/ids.h"
#include "core/model_store.h"
#include "datagen/corpus_generator.h"
#include "fleet/directory.h"
#include "fleet/model_cache.h"
#include "fleet/proxy.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "server/batcher.h"
#include "server/client.h"
#include "server/gateway.h"
#include "server/loadgen.h"
#include "server/router.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "util/rng.h"

namespace sidet {
namespace {

std::vector<std::string> MakeHomes(std::size_t count) {
  std::vector<std::string> homes;
  homes.reserve(count);
  for (std::size_t i = 0; i < count; ++i) homes.push_back("home-" + std::to_string(i));
  return homes;
}

// ----------------------------------------------------------- directory ----

TEST(FleetDirectory, PlacementIsDeterministicAndIgnoresInsertionOrder) {
  FleetDirectory forward;
  FleetDirectory reversed;
  const std::vector<std::string> shards = {"s0", "s1", "s2", "s3"};
  for (const std::string& shard : shards) ASSERT_TRUE(forward.AddShard(shard).ok());
  for (auto it = shards.rbegin(); it != shards.rend(); ++it) {
    ASSERT_TRUE(reversed.AddShard(*it).ok());
  }
  for (const std::string& home : MakeHomes(2000)) {
    const Result<std::string> a = forward.PlaceHome(home);
    const Result<std::string> b = reversed.PlaceHome(home);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), b.value());
    // PlacementOrder is a permutation of the shard set headed by the owner.
    const std::vector<std::string> order = forward.PlacementOrder(home);
    ASSERT_EQ(order.size(), shards.size());
    EXPECT_EQ(order.front(), a.value());
    EXPECT_EQ(std::set<std::string>(order.begin(), order.end()),
              std::set<std::string>(shards.begin(), shards.end()));
  }
  // Weight is a pure function — stable across directory instances.
  EXPECT_EQ(FleetDirectory::Weight("s1", "home-7"), FleetDirectory::Weight("s1", "home-7"));
  EXPECT_NE(FleetDirectory::Weight("s1", "home-7"), FleetDirectory::Weight("s2", "home-7"));
}

TEST(FleetDirectory, SpreadsHomesRoughlyEvenly) {
  FleetDirectory directory;
  for (int s = 0; s < 4; ++s) ASSERT_TRUE(directory.AddShard("shard-" + std::to_string(s)).ok());
  std::map<std::string, std::size_t> counts;
  const std::vector<std::string> homes = MakeHomes(20000);
  for (const std::string& home : homes) {
    counts[directory.PlaceHome(home).value()]++;
  }
  ASSERT_EQ(counts.size(), 4u);
  const double mean = static_cast<double>(homes.size()) / 4.0;
  for (const auto& [shard, count] : counts) {
    EXPECT_GT(count, mean * 0.85) << shard;
    EXPECT_LT(count, mean * 1.15) << shard;
  }
}

TEST(FleetDirectory, RemoveMovesOnlyTheRemovedShardsHomes) {
  FleetDirectory before;
  for (int s = 0; s < 4; ++s) ASSERT_TRUE(before.AddShard("shard-" + std::to_string(s)).ok());
  FleetDirectory after = before;
  ASSERT_TRUE(after.RemoveShard("shard-2").ok());
  EXPECT_FALSE(after.HasShard("shard-2"));

  const std::vector<std::string> homes = MakeHomes(20000);
  std::size_t owned_by_removed = 0;
  for (const std::string& home : homes) {
    if (before.PlaceHome(home).value() == "shard-2") ++owned_by_removed;
  }
  const RemapReport report = DiffPlacements(before, after, homes);
  EXPECT_EQ(report.homes, homes.size());
  // Exactly the removed shard's homes move — nobody between survivors.
  EXPECT_EQ(report.moved, owned_by_removed);
  EXPECT_EQ(report.misplaced, 0u);
  EXPECT_GT(report.moved_fraction, 0.15);  // ≈ 1/4
  EXPECT_LT(report.moved_fraction, 0.35);
}

TEST(FleetDirectory, AddStealsRoughlyOneOverNPlusOneOntoTheNewcomer) {
  FleetDirectory before;
  for (int s = 0; s < 4; ++s) ASSERT_TRUE(before.AddShard("shard-" + std::to_string(s)).ok());
  FleetDirectory after = before;
  ASSERT_TRUE(after.AddShard("shard-new").ok());

  const std::vector<std::string> homes = MakeHomes(20000);
  const RemapReport report = DiffPlacements(before, after, homes);
  EXPECT_EQ(report.misplaced, 0u);  // every move lands on the newcomer
  EXPECT_GT(report.moved_fraction, 0.12);  // ≈ 1/5
  EXPECT_LT(report.moved_fraction, 0.28);
  for (const std::string& home : homes) {
    const std::string was = before.PlaceHome(home).value();
    const std::string now = after.PlaceHome(home).value();
    if (was != now) {
      EXPECT_EQ(now, "shard-new");
    }
  }
}

TEST(FleetDirectory, RejectsDuplicatesEmptiesAndUnknownShards) {
  FleetDirectory directory;
  EXPECT_FALSE(directory.PlaceHome("h").ok());  // empty fleet
  EXPECT_FALSE(directory.AddShard("").ok());
  ASSERT_TRUE(directory.AddShard("s0").ok());
  EXPECT_FALSE(directory.AddShard("s0").ok());
  EXPECT_FALSE(directory.RemoveShard("ghost").ok());
  EXPECT_EQ(directory.shard_count(), 1u);
  EXPECT_EQ(directory.PlaceHome("h").value(), "s0");
}

// ---------------------------------------------------------------- zipf ----

TEST(ZipfLoad, CdfIsMonotoneClosedAndFrontLoaded) {
  const std::vector<double> cdf = ZipfCdf(1000, 1.1);
  ASSERT_EQ(cdf.size(), 1000u);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_EQ(cdf.back(), 1.0);
  // Zipf s=1.1 over 1000 keys: the head dominates the uniform share.
  EXPECT_GT(cdf[0], 0.05);
  EXPECT_GT(cdf[9], 10.0 / 1000.0);
}

TEST(ZipfLoad, PicksAreDeterministicPerSeedAndSkewed) {
  const std::vector<double> cdf = ZipfCdf(500, 1.2);
  Rng a = Rng(99).Fork(3);
  Rng b = Rng(99).Fork(3);
  Rng c = Rng(99).Fork(4);  // sibling stream must diverge
  std::vector<std::size_t> counts(500, 0);
  bool streams_diverged = false;
  for (int i = 0; i < 20000; ++i) {
    const std::size_t pick = ZipfPick(cdf, a);
    ASSERT_EQ(pick, ZipfPick(cdf, b));  // same seed+stream → same sequence
    ASSERT_LT(pick, 500u);
    if (ZipfPick(cdf, c) != pick) streams_diverged = true;
    counts[pick]++;
  }
  EXPECT_TRUE(streams_diverged);
  EXPECT_GT(counts[0], counts[250] * 4);  // heavy head
}

// ------------------------------------------------------------- fixture ----

void AwaitCount(const std::atomic<int>& counter, int expected, int timeout_ms = 10000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (counter.load() < expected && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counter.load(), expected);
}

// One trained memory persisted in both formats, plus a demo-home snapshot
// that yields scored (not fail-closed) verdicts.
class FleetServingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new InstructionRegistry(BuildStandardInstructionSet());
    Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, *registry_);
    ASSERT_TRUE(corpus.ok());
    ContextFeatureMemory memory;
    MemoryTrainingOptions options;
    options.samples_per_device = 1200;  // keep the suite fast
    ASSERT_TRUE(memory.TrainFromCorpus(corpus.value().corpus, options).ok());
    const std::string stem =
        ::testing::TempDir() + "sidet_fleet_model." + std::to_string(::getpid());
    json_path_ = new std::string(stem + ".json");
    compact_path_ = new std::string(stem + ".sidm");
    ASSERT_TRUE(SaveMemory(memory, *json_path_).ok());
    ASSERT_TRUE(SaveCompact(memory, *compact_path_).ok());
    fingerprint_ = new std::string(memory.Fingerprint());

    SmartHome home = BuildDemoHome(7);
    home.Step(3 * kSecondsPerHour);
    snapshot_ = new SensorSnapshot(home.Snapshot());
    time_ = home.now();
  }
  static void TearDownTestSuite() {
    std::remove(json_path_->c_str());
    std::remove(compact_path_->c_str());
    delete registry_;
    delete json_path_;
    delete compact_path_;
    delete fingerprint_;
    delete snapshot_;
    registry_ = nullptr;
    json_path_ = nullptr;
    compact_path_ = nullptr;
    fingerprint_ = nullptr;
    snapshot_ = nullptr;
  }

  static ContextIds MakeIds(const std::string& path) {
    Result<ContextFeatureMemory> memory = LoadMemoryAuto(path);
    EXPECT_TRUE(memory.ok());
    return ContextIds(SensitiveInstructionDetector(PaperTableThree()),
                      std::move(memory).value());
  }

  // A provider that cold-starts every home from the shared compact blob —
  // the tiered-store miss path every shard uses in the fleet bench.
  static GatewayRouter::ModelProvider CacheProvider(ModelCache* cache) {
    return [cache](const std::string&) -> Result<ContextIds> {
      Result<ContextFeatureMemory> memory = cache->Load(*compact_path_);
      if (!memory.ok()) return memory.error();
      return ContextIds(SensitiveInstructionDetector(PaperTableThree()),
                        std::move(memory).value());
    };
  }

  // Synchronous judge through a lane (zero-delay policies flush immediately).
  static Judgement JudgeSync(GatewayRouter& router, const std::string& home) {
    std::atomic<int> completions{0};
    std::mutex mu;
    Judgement out;
    JudgeTask task;
    task.instruction = registry_->FindByName("window.open");
    task.snapshot = std::make_shared<const SensorSnapshot>(*snapshot_);
    task.time = time_;
    task.done = [&](const Judgement& judgement) {
      std::lock_guard<std::mutex> lock(mu);
      out = judgement;
      completions.fetch_add(1);
    };
    EXPECT_EQ(router.SubmitJudge(home, std::move(task)), Admission::kAccepted);
    AwaitCount(completions, 1);
    std::lock_guard<std::mutex> lock(mu);
    return out;
  }

  static std::string ReadFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good());
    return std::string((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  }
  static void WriteFile(const std::string& path, const std::string& bytes) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    ASSERT_TRUE(out.good());
  }

  static InstructionRegistry* registry_;
  static std::string* json_path_;
  static std::string* compact_path_;
  static std::string* fingerprint_;
  static SensorSnapshot* snapshot_;
  static SimTime time_;
};
InstructionRegistry* FleetServingFixture::registry_ = nullptr;
std::string* FleetServingFixture::json_path_ = nullptr;
std::string* FleetServingFixture::compact_path_ = nullptr;
std::string* FleetServingFixture::fingerprint_ = nullptr;
SensorSnapshot* FleetServingFixture::snapshot_ = nullptr;
SimTime FleetServingFixture::time_;

// -------------------------------------------------------- compact store ----

TEST_F(FleetServingFixture, CompactRoundTripServesBitIdenticalVerdicts) {
  Result<ContextFeatureMemory> json_memory = LoadMemory(*json_path_);
  Result<ContextFeatureMemory> compact_memory = LoadCompact(*compact_path_);
  ASSERT_TRUE(json_memory.ok()) << json_memory.error().message();
  ASSERT_TRUE(compact_memory.ok()) << compact_memory.error().message();
  EXPECT_EQ(json_memory.value().Fingerprint(), *fingerprint_);
  EXPECT_EQ(compact_memory.value().Fingerprint(), *fingerprint_);
  EXPECT_TRUE(json_memory.value().json_serializable());
  EXPECT_FALSE(compact_memory.value().json_serializable());
  EXPECT_EQ(json_memory.value().Trained(), compact_memory.value().Trained());

  // Every model answers bit-identically on every instruction of its family.
  const std::vector<DeviceCategory> families = json_memory.value().Trained();
  ASSERT_FALSE(families.empty());
  std::size_t compared = 0;
  for (const DeviceCategory family : families) {
    for (const Instruction* instruction : registry_->ForCategory(family)) {
      const Result<double> a = json_memory.value().ConsistencyProbability(
          family, instruction->name, *snapshot_, time_);
      const Result<double> b = compact_memory.value().ConsistencyProbability(
          family, instruction->name, *snapshot_, time_);
      ASSERT_EQ(a.ok(), b.ok()) << instruction->name;
      if (a.ok()) {
        EXPECT_EQ(a.value(), b.value()) << instruction->name;  // exact bits
        ++compared;
      }
    }
  }
  EXPECT_GT(compared, 0u);

  // And through the full IDS: same verdict, same consistency bits.
  ContextIds json_ids = MakeIds(*json_path_);
  ContextIds compact_ids = MakeIds(*compact_path_);
  for (const Instruction& instruction : registry_->all()) {
    const Result<Judgement> a = json_ids.Judge(instruction, *snapshot_, time_);
    const Result<Judgement> b = compact_ids.Judge(instruction, *snapshot_, time_);
    ASSERT_EQ(a.ok(), b.ok()) << instruction.name;
    if (!a.ok()) continue;
    EXPECT_EQ(a.value().sensitive, b.value().sensitive) << instruction.name;
    EXPECT_EQ(a.value().allowed, b.value().allowed) << instruction.name;
    EXPECT_EQ(a.value().consistency, b.value().consistency) << instruction.name;
  }
}

TEST_F(FleetServingFixture, CompactHeaderPeekMatchesJsonFormFingerprint) {
  const Result<std::string> peeked = PeekCompactFingerprint(*compact_path_);
  ASSERT_TRUE(peeked.ok()) << peeked.error().message();
  EXPECT_EQ(peeked.value(), *fingerprint_);
  EXPECT_FALSE(PeekCompactFingerprint(*json_path_).ok());  // not a compact blob
  EXPECT_FALSE(PeekCompactFingerprint("/nonexistent.sidm").ok());
}

TEST_F(FleetServingFixture, CompactLoadRejectsCorruptBlobsWhole) {
  const std::string blob = ReadFile(*compact_path_);
  ASSERT_GT(blob.size(), 64u);
  const std::string scratch = ::testing::TempDir() + "sidet_fleet_corrupt." +
                              std::to_string(::getpid()) + ".sidm";

  // Truncations at every interesting boundary: inside the magic, inside the
  // header, mid-slab, and one byte short.
  for (const std::size_t keep :
       {std::size_t{0}, std::size_t{3}, std::size_t{10}, blob.size() / 3,
        blob.size() / 2, blob.size() - 1}) {
    WriteFile(scratch, blob.substr(0, keep));
    EXPECT_FALSE(LoadCompact(scratch).ok()) << "kept " << keep << " bytes";
    EXPECT_FALSE(LoadMemoryAuto(scratch).ok()) << "kept " << keep << " bytes";
  }

  // Oversize: trailing garbage after a well-formed image is rejected too.
  WriteFile(scratch, blob + std::string(8, '\xee'));
  const Result<ContextFeatureMemory> oversized = LoadCompact(scratch);
  ASSERT_FALSE(oversized.ok());
  EXPECT_NE(oversized.error().message().find("trailing"), std::string::npos);

  // Bad magic.
  std::string bad_magic = blob;
  bad_magic[0] = 'X';
  WriteFile(scratch, bad_magic);
  EXPECT_FALSE(LoadCompact(scratch).ok());
  EXPECT_FALSE(LoadMemoryAuto(scratch).ok());  // sniffs as JSON, fails to parse

  // Wrong version (u32 LE at offset 4).
  std::string bad_version = blob;
  bad_version[4] = '\x7f';
  WriteFile(scratch, bad_version);
  const Result<ContextFeatureMemory> versioned = LoadCompact(scratch);
  ASSERT_FALSE(versioned.ok());
  EXPECT_NE(versioned.error().message().find("version"), std::string::npos);

  std::remove(scratch.c_str());
}

TEST_F(FleetServingFixture, ServingOnlyMemoryRefusesJsonSaveButRoundTripsCompact) {
  Result<ContextFeatureMemory> memory = LoadCompact(*compact_path_);
  ASSERT_TRUE(memory.ok());
  const std::string scratch = ::testing::TempDir() + "sidet_fleet_resave." +
                              std::to_string(::getpid()) + ".bin";
  // The pointer trees are gone — the JSON document cannot represent it.
  EXPECT_FALSE(SaveMemory(memory.value(), scratch).ok());
  // But the compact form round-trips, fingerprint pinned through both hops.
  ASSERT_TRUE(SaveCompact(memory.value(), scratch).ok());
  Result<ContextFeatureMemory> again = LoadCompact(scratch);
  ASSERT_TRUE(again.ok()) << again.error().message();
  EXPECT_EQ(again.value().Fingerprint(), *fingerprint_);
  std::remove(scratch.c_str());
}

// ---------------------------------------------------------- model cache ----

TEST_F(FleetServingFixture, ModelCacheSharesOneForestAcrossLoadsAndFormats) {
  ModelCache cache;
  Result<ContextFeatureMemory> first = cache.Load(*compact_path_);
  Result<ContextFeatureMemory> second = cache.Load(*compact_path_);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  ModelCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.resident_models, 1u);

  // Both copies reference the same immutable models — one forest in RAM.
  for (const DeviceCategory family : first.value().Trained()) {
    EXPECT_EQ(first.value().ModelShared(family).get(),
              second.value().ModelShared(family).get());
  }

  // The JSON document of the same memory fingerprints identically, so it
  // resolves to the already-resident entry (after its unavoidable disk load).
  Result<ContextFeatureMemory> via_json = cache.Load(*json_path_);
  ASSERT_TRUE(via_json.ok());
  stats = cache.stats();
  EXPECT_EQ(stats.resident_models, 1u);
  EXPECT_EQ(stats.misses, 2u);
  for (const DeviceCategory family : via_json.value().Trained()) {
    EXPECT_EQ(via_json.value().ModelShared(family).get(),
              first.value().ModelShared(family).get());
  }
  EXPECT_FALSE(cache.Load("/nonexistent.sidm").ok());
}

// ------------------------------------------------- router fleet mode ----

TEST_F(FleetServingFixture, RouterColdStartsAndEvictsLeastRecentlyJudged) {
  ModelCache cache;
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy);
  router.SetModelProvider(CacheProvider(&cache));
  router.SetLaneCap(2);

  // Unknown homes cold-start instead of bouncing.
  const Judgement alpha_first = JudgeSync(router, "alpha");
  EXPECT_TRUE(alpha_first.sensitive);
  EXPECT_TRUE(alpha_first.reason.find("context consistency") != std::string::npos)
      << alpha_first.reason;  // scored, not fail-closed
  JudgeSync(router, "beta");
  EXPECT_EQ(router.resident_lanes(), 2u);
  EXPECT_EQ(router.model_cold_loads(), 2u);
  EXPECT_EQ(router.lane_evictions(), 0u);

  // Third home breaches the cap: alpha is the least recently judged victim.
  JudgeSync(router, "gamma");
  EXPECT_EQ(router.resident_lanes(), 2u);
  EXPECT_FALSE(router.HasHome("alpha"));
  EXPECT_TRUE(router.HasHome("beta"));
  EXPECT_TRUE(router.HasHome("gamma"));
  EXPECT_EQ(router.lane_evictions(), 1u);
  EXPECT_EQ(router.model_cold_loads(), 3u);

  // The evicted home comes back through the cold path — beta (older use than
  // gamma) is the next victim, and the re-judged verdict is bit-identical.
  const Judgement alpha_again = JudgeSync(router, "alpha");
  EXPECT_FALSE(router.HasHome("beta"));
  EXPECT_TRUE(router.HasHome("gamma"));
  EXPECT_EQ(alpha_again.sensitive, alpha_first.sensitive);
  EXPECT_EQ(alpha_again.allowed, alpha_first.allowed);
  EXPECT_EQ(alpha_again.consistency, alpha_first.consistency);  // exact bits

  // Every cold start hit the one shared blob: one disk load, rest cache hits.
  EXPECT_EQ(cache.stats().resident_models, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);

  // The stats document carries the fleet section.
  const Json stats = router.StatsJson();
  const Json* fleet = stats.find("fleet");
  ASSERT_NE(fleet, nullptr);
  EXPECT_EQ(fleet->number_or("lanes_resident", -1), 2.0);
  EXPECT_EQ(fleet->number_or("lane_evictions", -1), 2.0);
  EXPECT_EQ(fleet->number_or("model_cold_loads", -1), 4.0);
  router.DrainAll();
}

TEST_F(FleetServingFixture, EvictionDrainsInFlightTasksToCompletion) {
  ModelCache cache;
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.min_delay_us = policy.max_delay_us = 50'000;  // keep tasks queued
  GatewayRouter router(policy);
  router.SetModelProvider(CacheProvider(&cache));
  router.SetLaneCap(1);

  const Instruction* window_open = registry_->FindByName("window.open");
  std::atomic<int> completions{0};
  std::atomic<int> scored{0};
  auto submit = [&](const std::string& home) {
    JudgeTask task;
    task.instruction = window_open;
    task.snapshot = std::make_shared<const SensorSnapshot>(*snapshot_);
    task.time = time_;
    task.done = [&](const Judgement& judgement) {
      if (judgement.reason.find("context consistency") != std::string::npos) {
        scored.fetch_add(1);
      }
      completions.fetch_add(1);
    };
    ASSERT_EQ(router.SubmitJudge(home, std::move(task)), Admission::kAccepted);
  };

  // Queue a pile of work on alpha (the 50ms coalescing delay keeps it
  // pending), then cold-start beta — which must evict alpha mid-flight.
  for (int i = 0; i < 9; ++i) submit("alpha");
  EXPECT_EQ(router.resident_lanes(), 1u);
  submit("beta");
  EXPECT_EQ(router.lane_evictions(), 1u);
  EXPECT_FALSE(router.HasHome("alpha"));

  // Zero drops: all nine alpha tasks plus beta's complete with real verdicts.
  AwaitCount(completions, 10);
  router.DrainAll();
  EXPECT_EQ(completions.load(), 10);
  EXPECT_EQ(scored.load(), 10);
}

// ------------------------------------------------- gateway ops surface ----

TEST_F(FleetServingFixture, GatewayExposesFleetCountersOnEveryOpsSurface) {
  MetricsRegistry metrics;
  ModelCache cache;
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy, &metrics);
  router.SetModelProvider(CacheProvider(&cache));
  router.SetLaneCap(1);
  router.EnablePerLaneTelemetry(false);  // fleet shards cap label cardinality
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics);
  ASSERT_TRUE(gateway.Start().ok());
  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok()) << client.error().message();

  // Two homes through a one-lane shard: two cold loads, one eviction.
  for (const std::string home : {"h1", "h2"}) {
    Json judge = Json::Object();
    judge["op"] = "judge";
    judge["id"] = 1;
    judge["home"] = home;
    judge["instruction"] = "window.open";
    judge["time"] = time_.seconds();
    judge["snapshot"] = snapshot_->ToJson();
    Result<Json> verdict = client.value().Call(judge, /*timeout_ms=*/30000);
    ASSERT_TRUE(verdict.ok()) << verdict.error().message();
    EXPECT_TRUE(verdict.value().bool_or("ok", false)) << home;
  }

  Json health = Json::Object();
  health["op"] = "health";
  health["id"] = 2;
  Result<Json> health_response = client.value().Call(health);
  ASSERT_TRUE(health_response.ok());
  EXPECT_EQ(health_response.value().number_or("lanes_resident", -1), 1.0);
  EXPECT_EQ(health_response.value().number_or("lane_evictions", -1), 1.0);
  EXPECT_EQ(health_response.value().number_or("model_cold_loads", -1), 2.0);

  Json stats = Json::Object();
  stats["op"] = "stats";
  stats["id"] = 3;
  Result<Json> stats_response = client.value().Call(stats);
  ASSERT_TRUE(stats_response.ok());
  const Json* fleet = stats_response.value().find("fleet");
  ASSERT_NE(fleet, nullptr);
  EXPECT_EQ(fleet->number_or("lanes_resident", -1), 1.0);
  EXPECT_EQ(fleet->number_or("lane_evictions", -1), 1.0);
  EXPECT_EQ(fleet->number_or("model_cold_loads", -1), 2.0);

  Json prom = Json::Object();
  prom["op"] = "metrics";
  prom["id"] = 4;
  Result<Json> prom_response = client.value().Call(prom);
  ASSERT_TRUE(prom_response.ok());
  const std::string exposition = prom_response.value().string_or("metrics", "");
  EXPECT_NE(exposition.find("sidet_gateway_lanes_resident"), std::string::npos);
  EXPECT_NE(exposition.find("sidet_gateway_lane_evictions_total"), std::string::npos);
  EXPECT_NE(exposition.find("sidet_gateway_model_cold_loads_total"), std::string::npos);
  EXPECT_NE(exposition.find("sidet_gateway_model_cold_load_seconds"), std::string::npos);
  // Per-lane telemetry is off: no per-home batcher series leaked.
  EXPECT_EQ(exposition.find("home=\"h1\""), std::string::npos);

  gateway.Shutdown();
}

// ---------------------------------------------------------------- proxy ----

TEST_F(FleetServingFixture, ProxyRoutesByPlacementAggregatesHealthAndFailsOver) {
  ModelCache cache;
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;

  GatewayRouter router_a(policy);
  GatewayRouter router_b(policy);
  for (GatewayRouter* router : {&router_a, &router_b}) {
    router->SetModelProvider(CacheProvider(&cache));
    router->SetLaneCap(8);
  }
  Gateway shard_a(router_a, *registry_);
  Gateway shard_b(router_b, *registry_);
  ASSERT_TRUE(shard_a.Start().ok());
  ASSERT_TRUE(shard_b.Start().ok());

  FleetProxy proxy;
  ASSERT_TRUE(proxy.AddShard({"shard-a", "127.0.0.1", shard_a.port()}).ok());
  ASSERT_TRUE(proxy.AddShard({"shard-b", "127.0.0.1", shard_b.port()}).ok());
  EXPECT_FALSE(proxy.AddShard({"shard-a", "127.0.0.1", shard_a.port()}).ok());

  // Judges land on the placement owner and come back scored.
  const std::vector<std::string> homes = MakeHomes(8);
  std::set<std::string> owners;
  for (const std::string& home : homes) {
    EXPECT_EQ(proxy.ShardFor(home).value(), proxy.directory().PlaceHome(home).value());
    owners.insert(proxy.directory().PlaceHome(home).value());
    Result<Json> verdict = proxy.Judge(home, "window.open", time_, snapshot_);
    ASSERT_TRUE(verdict.ok()) << verdict.error().message();
    EXPECT_TRUE(verdict.value().bool_or("ok", false)) << home;
    EXPECT_TRUE(verdict.value().bool_or("sensitive", false)) << home;
  }
  ASSERT_EQ(owners.size(), 2u) << "8 homes should span both shards";

  // Health fans out and sums the fleet counters across reachable shards.
  Json health = proxy.Health();
  EXPECT_EQ(health.number_or("shards_total", 0), 2.0);
  EXPECT_EQ(health.number_or("shards_reachable", 0), 2.0);
  EXPECT_EQ(health.number_or("homes", -1), 8.0);
  EXPECT_EQ(health.number_or("model_cold_loads", -1), 8.0);

  // Explain forwards like judge does.
  Result<Json> explained = proxy.Explain(homes[0], "window.open", time_, 3, snapshot_);
  ASSERT_TRUE(explained.ok());
  EXPECT_TRUE(explained.value().bool_or("ok", false));

  // Kill shard-a: its homes fail over to shard-b, which cold-starts them
  // from the shared store — every home stays servable.
  shard_a.Shutdown();
  for (const std::string& home : homes) {
    Result<Json> verdict = proxy.Judge(home, "window.open", time_, snapshot_);
    ASSERT_TRUE(verdict.ok()) << verdict.error().message();
    EXPECT_TRUE(verdict.value().bool_or("ok", false)) << home;
  }
  health = proxy.Health();
  EXPECT_EQ(health.number_or("shards_reachable", 0), 1.0);
  const Json stats = proxy.StatsJson();
  const Json* dead = stats.find("shards")->find("shard-a");
  ASSERT_NE(dead, nullptr);
  EXPECT_FALSE(dead->bool_or("healthy", true));
  EXPECT_GT(dead->number_or("failovers", 0), 0.0);
  // After enough consecutive failures the router prefers the live shard.
  EXPECT_EQ(proxy.ShardFor(homes[0]).value(), "shard-b");

  // Removing the dead shard re-homes everything onto the survivor.
  ASSERT_TRUE(proxy.RemoveShard("shard-a").ok());
  for (const std::string& home : homes) {
    EXPECT_EQ(proxy.directory().PlaceHome(home).value(), "shard-b");
  }
  shard_b.Shutdown();
}

}  // namespace
}  // namespace sidet
