// Adversarial-input robustness: every decoder that accepts bytes off the
// wire (miio packets, HTTP messages, firmware images, JSON, DSL text, CSV)
// must reject random and mutated garbage with an error — never crash,
// never hang, never return nonsense successfully where integrity is claimed.
#include <gtest/gtest.h>

#include "automation/dsl_parser.h"
#include "core/collector.h"
#include "core/ids.h"
#include "crypto/miio_kdf.h"
#include "firmware/firmware_image.h"
#include "instructions/standard_instruction_set.h"
#include "protocol/fault_schedule.h"
#include "protocol/http.h"
#include "protocol/miio_codec.h"
#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/log.h"
#include "util/rng.h"

namespace sidet {
namespace {

Bytes RandomBytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.Next());
  return out;
}

std::string RandomText(Rng& rng, std::size_t n) {
  std::string out(n, ' ');
  for (auto& c : out) c = static_cast<char>(rng.UniformInt(32, 126));
  return out;
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, MiioDecoderSurvivesGarbage) {
  Rng rng(GetParam());
  const MiioToken token = TokenForDevice(1);
  for (const std::size_t size : {0u, 1u, 16u, 31u, 32u, 33u, 64u, 200u}) {
    const Bytes garbage = RandomBytes(rng, size);
    const Result<MiioMessage> decoded = DecodeMiioPacket(token, garbage);
    EXPECT_FALSE(decoded.ok());  // random bytes essentially never authenticate
  }
}

TEST_P(FuzzSeedTest, MutatedValidPacketNeverDecodes) {
  Rng rng(GetParam());
  const MiioToken token = TokenForDevice(2);
  MiioMessage message;
  message.device_id = 2;
  message.stamp = 77;
  message.payload_json = R"({"id":1,"method":"get_all_props","params":[]})";
  const Bytes valid = EncodeMiioPacket(token, message);

  for (int i = 0; i < 40; ++i) {
    Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int m = 0; m < mutations; ++m) {
      const auto index = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[index] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(0, 254));
    }
    if (mutated == valid) continue;
    EXPECT_FALSE(DecodeMiioPacket(token, mutated).ok());
  }
}

TEST_P(FuzzSeedTest, HttpDecoderSurvivesGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Bytes garbage = RandomBytes(rng, static_cast<std::size_t>(rng.UniformInt(0, 300)));
    // Must return (ok or error) without crashing; most garbage is an error.
    (void)DecodeHttpRequest(garbage);
    (void)DecodeHttpResponse(garbage);
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, JsonParserSurvivesRandomText) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const std::string text = RandomText(rng, static_cast<std::size_t>(rng.UniformInt(0, 200)));
    const Result<Json> parsed = Json::Parse(text);
    if (parsed.ok()) {
      // If it parsed, it must round-trip.
      EXPECT_TRUE(Json::Parse(parsed.value().Dump()).ok());
    }
  }
}

TEST_P(FuzzSeedTest, DslParserSurvivesRandomText) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const std::string text = RandomText(rng, static_cast<std::size_t>(rng.UniformInt(0, 120)));
    (void)ParseCondition(text);  // error or AST, never a crash
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, CsvParserSurvivesRandomText) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    (void)ParseCsv(RandomText(rng, static_cast<std::size_t>(rng.UniformInt(0, 200))));
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, FirmwareExtractorSurvivesCorruptImages) {
  Rng rng(GetParam());
  Bytes image = BuildFirmwareImage(BuildStandardInstructionSet(), GetParam());
  // Heavy mutation across the whole image.
  for (int m = 0; m < 200; ++m) {
    const auto index = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(image.size()) - 1));
    image[index] ^= static_cast<std::uint8_t>(rng.Next());
  }
  (void)ExtractInstructionTable(image);  // error or (rarely) success, no crash
  // Truncations at hostile offsets.
  for (const std::size_t keep : {0u, 7u, 8u, 24u, 40u, 4096u}) {
    const Bytes truncated(image.begin(), image.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(keep, image.size())));
    EXPECT_FALSE(ExtractInstructionTable(truncated).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Robustness, HelloResponseGarbage) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const Bytes garbage = RandomBytes(rng, 32);
    MiioToken token;
    (void)DecodeMiioHelloResponse(garbage, &token);  // magic check rejects most
  }
  SUCCEED();
}

// --- Collector-level fault tolerance -----------------------------------------
//
// The resilient collector must survive structured network faults — flapping
// links, hard outages, exhausted deadlines — by degrading (stale cache,
// partial coverage) instead of failing, with the degradation visible in
// SnapshotQuality, CollectorStats and the breaker state.

constexpr const char* kGw = "udp://gw";
constexpr const char* kHa = "http://ha";

// A demo home behind both vendor stacks on one faultable transport, with a
// shared simulated clock driving backoff, deadlines and fault windows.
struct CollectorRig {
  SmartHome home;
  SimClock clock;
  InMemoryTransport transport;
  MiioGateway gateway;
  RestBridge bridge;
  std::unique_ptr<SensorDataCollector> collector;

  explicit CollectorRig(std::uint64_t seed, const CollectorConfig& config,
                        bool with_rest = true)
      : home(BuildDemoHome(seed)),
        clock(home.now()),
        transport(seed),
        gateway(0x42, home),
        bridge(home, "tok") {
    home.Step(kSecondsPerHour);
    clock.AdvanceTo(home.now());
    gateway.BindTo(transport, kGw);
    bridge.BindTo(transport, kHa);
    auto miio = std::make_unique<MiioClient>(transport, kGw);
    EXPECT_TRUE(miio->HandshakeForToken().ok());
    auto rest = with_rest ? std::make_unique<RestClient>(transport, kHa, "tok") : nullptr;
    collector =
        std::make_unique<SensorDataCollector>(std::move(miio), std::move(rest), config);
    collector->AttachClock(&clock);
    transport.AttachClock(&clock);
  }

  Result<SensorSnapshot> Step(std::int64_t seconds) {
    home.Step(seconds);
    clock.AdvanceTo(home.now());
    return collector->Collect(home.now());
  }
};

TEST(CollectorFaults, FlappingGatewayRecoversWithoutError) {
  CollectorConfig config;
  config.max_retries = 2;
  config.backoff = {.initial_seconds = 5, .multiplier = 2.0, .max_seconds = 20, .jitter = 0.0};
  config.breaker = {.failure_threshold = 4, .open_seconds = 120};
  config.deadline_budget_seconds = 60;
  CollectorRig rig(301, config);

  // Gateway flaps: 10 minutes up, 5 minutes down, starting now.
  FaultSpec spec;
  spec.flap_start = rig.clock.now();
  spec.flap_up_seconds = 600;
  spec.flap_down_seconds = 300;
  FaultSchedule schedule;
  schedule.Set(kGw, spec);
  rig.transport.SetFaultSchedule(std::move(schedule));

  bool saw_cached = false;
  bool recovered_after_cached = false;
  for (int minute = 0; minute < 30; ++minute) {
    Result<SensorSnapshot> snapshot = rig.Step(kSecondsPerMinute);
    ASSERT_TRUE(snapshot.ok()) << "minute " << minute << ": "
                               << snapshot.error().message();
    const VendorQuality& miio = snapshot.value().quality().miio;
    EXPECT_TRUE(miio.served()) << "minute " << minute;
    if (miio.from_cache) saw_cached = true;
    if (saw_cached && miio.fresh) recovered_after_cached = true;
  }
  EXPECT_TRUE(saw_cached) << "down phases must have served the stale cache";
  EXPECT_TRUE(recovered_after_cached) << "up phase must recover to fresh polls";
  EXPECT_EQ(rig.collector->stats().failures, 0u);
  EXPECT_GT(rig.collector->stats().stale_serves, 0u);
}

TEST(CollectorFaults, PermanentOutageTripsBreakerAndServesStaleCache) {
  CollectorConfig config;
  config.max_retries = 2;
  config.backoff = {.initial_seconds = 2, .multiplier = 2.0, .max_seconds = 10, .jitter = 0.0};
  config.breaker = {.failure_threshold = 3, .open_seconds = 600};
  config.deadline_budget_seconds = 60;
  CollectorRig rig(302, config);

  // Prime the cache with one healthy collection.
  Result<SensorSnapshot> healthy = rig.Step(kSecondsPerMinute);
  ASSERT_TRUE(healthy.ok());
  EXPECT_TRUE(healthy.value().quality().miio.fresh);
  EXPECT_FALSE(healthy.value().quality().degraded());
  EXPECT_DOUBLE_EQ(healthy.value().quality().coverage(), 1.0);

  // Gateway goes down for good.
  FaultSpec spec;
  spec.outages.push_back({rig.clock.now(), SimTime(std::int64_t{1} << 40)});
  FaultSchedule schedule;
  schedule.Set(kGw, spec);
  rig.transport.SetFaultSchedule(std::move(schedule));

  std::int64_t last_staleness = 0;
  for (int minute = 0; minute < 8; ++minute) {
    Result<SensorSnapshot> snapshot = rig.Step(kSecondsPerMinute);
    ASSERT_TRUE(snapshot.ok()) << snapshot.error().message();
    const SnapshotQuality& quality = snapshot.value().quality();
    EXPECT_TRUE(quality.miio.from_cache);
    EXPECT_TRUE(quality.rest.fresh);
    EXPECT_TRUE(quality.degraded());
    EXPECT_GE(quality.miio.staleness_seconds, last_staleness);
    last_staleness = quality.miio.staleness_seconds;
  }
  EXPECT_GE(rig.collector->miio_breaker().times_opened(), 1u);
  EXPECT_EQ(rig.collector->miio_breaker().state(), BreakerState::kOpen);
  EXPECT_GT(rig.collector->stats().breaker_skips, 0u);
  EXPECT_GE(rig.collector->stats().stale_serves, 8u);
  EXPECT_EQ(rig.collector->stats().failures, 0u);
}

TEST(CollectorFaults, DeadlineBudgetBoundsRetryTime) {
  CollectorConfig config;
  config.max_retries = 50;  // far more than the budget admits
  config.backoff = {.initial_seconds = 1, .multiplier = 2.0, .max_seconds = 30, .jitter = 0.0};
  config.breaker = {.failure_threshold = 1000, .open_seconds = 600};  // never trips
  config.deadline_budget_seconds = 60;
  CollectorRig rig(303, config);

  // Every miio request times out after burning 5 simulated seconds.
  FaultSpec spec;
  spec.drop_probability = 1.0;
  spec.latency_seconds = 5;
  FaultSchedule schedule;
  schedule.Set(kGw, spec);
  rig.transport.SetFaultSchedule(std::move(schedule));

  const SimTime before = rig.clock.now();
  Result<SensorSnapshot> snapshot = rig.collector->Collect(rig.home.now());
  const std::int64_t elapsed = rig.clock.now() - before;

  // The REST vendor still serves, so the collection degrades instead of
  // failing; retry time stays within budget + one trailing round trip.
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().message();
  EXPECT_EQ(snapshot.value().quality().missing_vendors, 1u);
  EXPECT_TRUE(snapshot.value().quality().rest.fresh);
  EXPECT_LE(elapsed, config.deadline_budget_seconds + 10);
  EXPECT_GE(rig.collector->stats().deadline_stops, 1u);
}

TEST(CollectorFaults, MaxRetriesClampedAndZeroMeansOneAttempt) {
  // A negative count previously meant "never attempt" and surfaced as a
  // vendor failure; it must behave like zero retries instead.
  CollectorConfig negative;
  negative.max_retries = -5;
  CollectorRig rig(304, negative);
  Result<SensorSnapshot> snapshot = rig.Step(kSecondsPerMinute);
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().message();
  EXPECT_TRUE(snapshot.value().quality().miio.fresh);

  // max_retries = 0: exactly one poll request per vendor, even when it fails.
  CollectorConfig zero;
  zero.max_retries = 0;
  CollectorRig failing(305, zero);
  FaultSpec drop_all;
  drop_all.drop_probability = 1.0;
  FaultSchedule schedule;
  schedule.SetDefault(drop_all);
  failing.transport.SetFaultSchedule(std::move(schedule));

  const std::size_t sent_before = failing.transport.requests_sent();
  (void)failing.collector->Collect(failing.home.now());
  EXPECT_EQ(failing.transport.requests_sent() - sent_before, 2u);  // one per vendor
  EXPECT_EQ(failing.collector->stats().miio_retries, 0u);
  EXPECT_EQ(failing.collector->stats().rest_retries, 0u);
}

TEST(CollectorFaults, MqttFailuresAreCountedAndLogged) {
  MqttBroker broker;
  CollectorConfig config;
  CollectorRig rig(306, config);
  // Subscribed but nothing ever published: every Snapshot() fails.
  rig.collector->AttachMqtt(std::make_unique<MqttCollector>(broker, "home"));

  std::string captured;
  ScopedLogCapture capture(captured);
  Result<SensorSnapshot> snapshot = rig.Step(kSecondsPerMinute);
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().message();  // polled vendors cover
  EXPECT_EQ(rig.collector->stats().mqtt_failures, 1u);
  EXPECT_NE(captured.find("mqtt snapshot failed"), std::string::npos);
  EXPECT_EQ(snapshot.value().quality().missing_vendors, 1u);  // the mqtt source
}

TEST(CollectorFaults, IdsJudgesDegradedFromCacheDuringOutage) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> trained = BuildIdsFromScratch(registry, 307);
  ASSERT_TRUE(trained.ok());
  Result<ContextFeatureMemory> memory =
      ContextFeatureMemory::FromJson(trained.value().memory().ToJson());
  ASSERT_TRUE(memory.ok());

  CollectorConfig config;
  config.max_retries = 1;
  config.backoff.jitter = 0.0;
  config.breaker = {.failure_threshold = 2, .open_seconds = 600};
  CollectorRig rig(308, config);
  SensorDataCollector* collector = rig.collector.get();
  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()), std::move(memory).value(),
                 std::move(rig.collector));
  AuditLog audit;
  ids.SetAuditLog(&audit);
  const Instruction* window_open = registry.FindByName("window.open");

  // Healthy judgement primes the cache.
  Result<Judgement> fresh = ids.JudgeLive(*window_open, rig.home.now());
  ASSERT_TRUE(fresh.ok()) << fresh.error().message();
  EXPECT_EQ(ids.stats().judged_degraded, 0u);

  // Gateway outage: the IDS must still judge, from cached readings, and the
  // degradation must show up in quality, stats and the audit trail.
  FaultSpec spec;
  spec.outages.push_back({rig.clock.now(), SimTime(std::int64_t{1} << 40)});
  FaultSchedule schedule;
  schedule.Set(kGw, spec);
  rig.transport.SetFaultSchedule(std::move(schedule));
  rig.home.Step(kSecondsPerMinute);
  rig.clock.AdvanceTo(rig.home.now());

  Result<Judgement> degraded = ids.JudgeLive(*window_open, rig.home.now());
  ASSERT_TRUE(degraded.ok()) << degraded.error().message();
  EXPECT_EQ(ids.stats().judged_degraded, 1u);
  EXPECT_GT(collector->stats().stale_serves, 0u);
  ASSERT_GE(audit.size(), 2u);
  EXPECT_FALSE(audit.records().front().degraded);
  EXPECT_TRUE(audit.records().back().degraded);
}

TEST(CollectorFaults, DegradedPolicyFailClosedForCriticalFailOpenForStandard) {
  // miio-only collector, dead from the start with no cache: collection is
  // impossible, so the per-sensitivity fail-open/fail-closed policy decides.
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CollectorConfig config;
  config.max_retries = 1;
  config.breaker = {.failure_threshold = 2, .open_seconds = 600};
  CollectorRig rig(309, config, /*with_rest=*/false);
  FaultSpec spec;
  spec.outages.push_back({SimTime(), SimTime(std::int64_t{1} << 40)});
  FaultSchedule schedule;
  schedule.Set(kGw, spec);
  rig.transport.SetFaultSchedule(std::move(schedule));

  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()), ContextFeatureMemory{},
                 std::move(rig.collector));
  AuditLog audit;
  ids.SetAuditLog(&audit);

  // window/lock: 94% of respondents rate it high-threat -> critical, blocks.
  Result<Judgement> critical = ids.JudgeLive(*registry.FindByName("backdoor.open"),
                                             rig.home.now());
  ASSERT_TRUE(critical.ok());
  EXPECT_FALSE(critical.value().allowed);
  EXPECT_EQ(ids.stats().blocked_on_outage, 1u);

  // curtains: 56% high-threat -> standard tier, fails open with a warning.
  Result<Judgement> standard = ids.JudgeLive(*registry.FindByName("curtain.open"),
                                             rig.home.now());
  ASSERT_TRUE(standard.ok());
  EXPECT_TRUE(standard.value().allowed);
  EXPECT_EQ(ids.stats().allowed_degraded, 1u);

  ASSERT_EQ(audit.size(), 2u);
  EXPECT_TRUE(audit.records().front().degraded);
  EXPECT_TRUE(audit.records().back().degraded);
}

TEST(Robustness, SnapshotFromHostileJson) {
  // Structurally valid JSON with hostile contents must error, not crash.
  for (const char* text : {
           R"({"time_seconds":1e308,"readings":{}})",
           R"({"readings":{"x":{}}})",
           R"({"readings":{"x":{"kind":"binary","value":true,"type":"smoke","extra":[[[[1]]]]}}})",
           R"({"readings":{"":{"kind":"continuous","value":1,"type":"temperature"}}})",
       }) {
    Result<Json> parsed = Json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    (void)SensorSnapshot::FromJson(parsed.value());
  }
  SUCCEED();
}

}  // namespace
}  // namespace sidet
