// Adversarial-input robustness: every decoder that accepts bytes off the
// wire (miio packets, HTTP messages, firmware images, JSON, DSL text, CSV)
// must reject random and mutated garbage with an error — never crash,
// never hang, never return nonsense successfully where integrity is claimed.
#include <gtest/gtest.h>

#include "automation/dsl_parser.h"
#include "crypto/miio_kdf.h"
#include "firmware/firmware_image.h"
#include "instructions/standard_instruction_set.h"
#include "protocol/http.h"
#include "protocol/miio_codec.h"
#include "util/csv.h"
#include "util/json.h"
#include "util/rng.h"

namespace sidet {
namespace {

Bytes RandomBytes(Rng& rng, std::size_t n) {
  Bytes out(n);
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.Next());
  return out;
}

std::string RandomText(Rng& rng, std::size_t n) {
  std::string out(n, ' ');
  for (auto& c : out) c = static_cast<char>(rng.UniformInt(32, 126));
  return out;
}

class FuzzSeedTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeedTest, MiioDecoderSurvivesGarbage) {
  Rng rng(GetParam());
  const MiioToken token = TokenForDevice(1);
  for (const std::size_t size : {0u, 1u, 16u, 31u, 32u, 33u, 64u, 200u}) {
    const Bytes garbage = RandomBytes(rng, size);
    const Result<MiioMessage> decoded = DecodeMiioPacket(token, garbage);
    EXPECT_FALSE(decoded.ok());  // random bytes essentially never authenticate
  }
}

TEST_P(FuzzSeedTest, MutatedValidPacketNeverDecodes) {
  Rng rng(GetParam());
  const MiioToken token = TokenForDevice(2);
  MiioMessage message;
  message.device_id = 2;
  message.stamp = 77;
  message.payload_json = R"({"id":1,"method":"get_all_props","params":[]})";
  const Bytes valid = EncodeMiioPacket(token, message);

  for (int i = 0; i < 40; ++i) {
    Bytes mutated = valid;
    const int mutations = 1 + static_cast<int>(rng.UniformInt(0, 3));
    for (int m = 0; m < mutations; ++m) {
      const auto index = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[index] ^= static_cast<std::uint8_t>(1 + rng.UniformInt(0, 254));
    }
    if (mutated == valid) continue;
    EXPECT_FALSE(DecodeMiioPacket(token, mutated).ok());
  }
}

TEST_P(FuzzSeedTest, HttpDecoderSurvivesGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 50; ++i) {
    const Bytes garbage = RandomBytes(rng, static_cast<std::size_t>(rng.UniformInt(0, 300)));
    // Must return (ok or error) without crashing; most garbage is an error.
    (void)DecodeHttpRequest(garbage);
    (void)DecodeHttpResponse(garbage);
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, JsonParserSurvivesRandomText) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const std::string text = RandomText(rng, static_cast<std::size_t>(rng.UniformInt(0, 200)));
    const Result<Json> parsed = Json::Parse(text);
    if (parsed.ok()) {
      // If it parsed, it must round-trip.
      EXPECT_TRUE(Json::Parse(parsed.value().Dump()).ok());
    }
  }
}

TEST_P(FuzzSeedTest, DslParserSurvivesRandomText) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    const std::string text = RandomText(rng, static_cast<std::size_t>(rng.UniformInt(0, 120)));
    (void)ParseCondition(text);  // error or AST, never a crash
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, CsvParserSurvivesRandomText) {
  Rng rng(GetParam());
  for (int i = 0; i < 100; ++i) {
    (void)ParseCsv(RandomText(rng, static_cast<std::size_t>(rng.UniformInt(0, 200))));
  }
  SUCCEED();
}

TEST_P(FuzzSeedTest, FirmwareExtractorSurvivesCorruptImages) {
  Rng rng(GetParam());
  Bytes image = BuildFirmwareImage(BuildStandardInstructionSet(), GetParam());
  // Heavy mutation across the whole image.
  for (int m = 0; m < 200; ++m) {
    const auto index = static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(image.size()) - 1));
    image[index] ^= static_cast<std::uint8_t>(rng.Next());
  }
  (void)ExtractInstructionTable(image);  // error or (rarely) success, no crash
  // Truncations at hostile offsets.
  for (const std::size_t keep : {0u, 7u, 8u, 24u, 40u, 4096u}) {
    const Bytes truncated(image.begin(), image.begin() + static_cast<std::ptrdiff_t>(
                                             std::min(keep, image.size())));
    EXPECT_FALSE(ExtractInstructionTable(truncated).ok());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeedTest, ::testing::Values(1, 2, 3, 4, 5));

TEST(Robustness, HelloResponseGarbage) {
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    const Bytes garbage = RandomBytes(rng, 32);
    MiioToken token;
    (void)DecodeMiioHelloResponse(garbage, &token);  // magic check rejects most
  }
  SUCCEED();
}

TEST(Robustness, SnapshotFromHostileJson) {
  // Structurally valid JSON with hostile contents must error, not crash.
  for (const char* text : {
           R"({"time_seconds":1e308,"readings":{}})",
           R"({"readings":{"x":{}}})",
           R"({"readings":{"x":{"kind":"binary","value":true,"type":"smoke","extra":[[[[1]]]]}}})",
           R"({"readings":{"":{"kind":"continuous","value":1,"type":"temperature"}}})",
       }) {
    Result<Json> parsed = Json::Parse(text);
    ASSERT_TRUE(parsed.ok()) << text;
    (void)SensorSnapshot::FromJson(parsed.value());
  }
  SUCCEED();
}

}  // namespace
}  // namespace sidet
