#include "firmware/firmware_image.h"

#include <gtest/gtest.h>

#include "instructions/standard_instruction_set.h"
#include "util/rng.h"

namespace sidet {
namespace {

InstructionRegistry SmallRegistry() {
  InstructionRegistry registry;
  Instruction a;
  a.opcode = 0x0701;
  a.name = "window.open";
  a.handler = "cmd_window_open";
  a.category = DeviceCategory::kWindowAndLock;
  a.kind = InstructionKind::kControl;
  a.description = "Open the window";
  EXPECT_TRUE(registry.Add(a).ok());
  Instruction b;
  b.opcode = 0x0781;
  b.name = "window.get_state";
  b.handler = "qry_window_state";
  b.category = DeviceCategory::kWindowAndLock;
  b.kind = InstructionKind::kStatus;
  b.description = "Read window state";
  EXPECT_TRUE(registry.Add(b).ok());
  return registry;
}

TEST(Firmware, ImageIsDeterministicForSeed) {
  const InstructionRegistry registry = SmallRegistry();
  EXPECT_EQ(BuildFirmwareImage(registry, 1), BuildFirmwareImage(registry, 1));
  EXPECT_NE(BuildFirmwareImage(registry, 1), BuildFirmwareImage(registry, 2));
}

TEST(Firmware, TableLivesAtThePaperOffset) {
  const Bytes image = BuildFirmwareImage(SmallRegistry());
  ASSERT_GT(image.size(), kFirmwareTableOffset + 8);
  // "ITBL" magic at 0x102F80, exactly where the paper found the table.
  EXPECT_EQ(image[kFirmwareTableOffset], 'I');
  EXPECT_EQ(image[kFirmwareTableOffset + 1], 'T');
  EXPECT_EQ(image[kFirmwareTableOffset + 2], 'B');
  EXPECT_EQ(image[kFirmwareTableOffset + 3], 'L');
}

TEST(Firmware, ExtractRoundTripsInstructions) {
  const InstructionRegistry registry = SmallRegistry();
  const Bytes image = BuildFirmwareImage(registry);
  Result<std::vector<FirmwareRecord>> records = ExtractInstructionTable(image);
  ASSERT_TRUE(records.ok()) << records.error().message();
  ASSERT_EQ(records.value().size(), registry.size());
  for (std::size_t i = 0; i < records.value().size(); ++i) {
    EXPECT_EQ(records.value()[i].instruction, registry.all()[i]);
    // Function addresses look like aligned flash pointers below the table.
    EXPECT_EQ(records.value()[i].function_address % 4, 0u);
    EXPECT_LT(records.value()[i].function_address, kFirmwareTableOffset);
  }
}

TEST(Firmware, FullStandardSetRoundTrips) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  const Bytes image = BuildFirmwareImage(registry);
  Result<InstructionRegistry> recovered = RegistryFromFirmware(image);
  ASSERT_TRUE(recovered.ok()) << recovered.error().message();
  EXPECT_EQ(recovered.value().size(), registry.size());
  for (const Instruction& instruction : registry.all()) {
    const Instruction* found = recovered.value().FindByName(instruction.name);
    ASSERT_NE(found, nullptr) << instruction.name;
    EXPECT_EQ(*found, instruction);
  }
}

TEST(Firmware, RejectsNonFirmware) {
  EXPECT_FALSE(ExtractInstructionTable(Bytes{}).ok());
  EXPECT_FALSE(ExtractInstructionTable(Bytes(100, 0xAB)).ok());
  Bytes wrong_magic = BuildFirmwareImage(SmallRegistry());
  wrong_magic[0] = 'X';
  EXPECT_FALSE(ExtractInstructionTable(wrong_magic).ok());
}

// Corrupting any byte of the stored table must fail the MD5 digest check.
class FirmwareCorruptionTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(FirmwareCorruptionTest, DigestCatchesTableCorruption) {
  Bytes image = BuildFirmwareImage(SmallRegistry());
  const std::size_t offset = kFirmwareTableOffset + GetParam();
  ASSERT_LT(offset, image.size());
  image[offset] ^= 0xFF;
  Result<std::vector<FirmwareRecord>> records = ExtractInstructionTable(image);
  EXPECT_FALSE(records.ok());
}

INSTANTIATE_TEST_SUITE_P(Offsets, FirmwareCorruptionTest,
                         ::testing::Values(0, 1, 4, 8, 9, 20, 50, 100, 150, 200));

TEST(Firmware, CorruptingFillerDoesNotAffectExtraction) {
  Bytes image = BuildFirmwareImage(SmallRegistry());
  image[0x5000] ^= 0xFF;  // code region, not covered by the table digest
  EXPECT_TRUE(ExtractInstructionTable(image).ok());
}

TEST(Firmware, ScannerFindsTableWithoutHeader) {
  const InstructionRegistry registry = SmallRegistry();
  Bytes image = BuildFirmwareImage(registry);
  // Destroy the header completely — the analyst has only raw flash.
  for (std::size_t i = 0; i < 40; ++i) image[i] = 0xFF;
  ASSERT_FALSE(ExtractInstructionTable(image).ok());

  Result<std::vector<FirmwareRecord>> scanned = ScanForInstructionTable(image);
  ASSERT_TRUE(scanned.ok()) << scanned.error().message();
  ASSERT_EQ(scanned.value().size(), registry.size());
  EXPECT_EQ(scanned.value()[0].instruction.name, "window.open");
}

TEST(Firmware, ScannerRejectsNoise) {
  Rng rng(9);
  Bytes noise(1 << 16);
  for (auto& b : noise) b = static_cast<std::uint8_t>(rng.Next());
  // Random noise will essentially never contain a structurally valid table.
  EXPECT_FALSE(ScanForInstructionTable(noise).ok());
}

TEST(Firmware, RegistryFromFirmwareRejectsDuplicateRecords) {
  // Craft an image whose table contains the same opcode twice by building
  // from a registry, extracting, and re-serializing is complex; instead
  // verify the error path through registry addition directly.
  InstructionRegistry registry;
  Instruction a;
  a.opcode = 1;
  a.name = "a";
  ASSERT_TRUE(registry.Add(a).ok());
  Instruction duplicate;
  duplicate.opcode = 1;
  duplicate.name = "b";
  EXPECT_FALSE(registry.Add(duplicate).ok());
}

}  // namespace
}  // namespace sidet
