#include "crypto/aes.h"

#include <gtest/gtest.h>

#include "crypto/miio_kdf.h"
#include "util/rng.h"

namespace sidet {
namespace {

AesKey128 KeyFromHex(const char* hex) {
  const Bytes raw = FromHex(hex).value();
  AesKey128 key;
  std::copy(raw.begin(), raw.end(), key.begin());
  return key;
}

TEST(Aes128, Fips197AppendixBVector) {
  // FIPS-197 Appendix B: single-block encryption.
  const AesKey128 key = KeyFromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const Bytes plain = FromHex("3243f6a8885a308d313198a2e0370734").value();
  const Bytes expected = FromHex("3925841d02dc09fbdc118597196a0b32").value();

  Aes128 aes(key);
  std::uint8_t out[16];
  aes.EncryptBlock(plain.data(), out);
  EXPECT_EQ(Bytes(out, out + 16), expected);

  std::uint8_t back[16];
  aes.DecryptBlock(out, back);
  EXPECT_EQ(Bytes(back, back + 16), plain);
}

TEST(Aes128, Sp80038aCbcVector) {
  // NIST SP 800-38A F.2.1 (CBC-AES128, first two blocks).
  const AesKey128 key = KeyFromHex("2b7e151628aed2a6abf7158809cf4f3c");
  AesIv iv;
  const Bytes iv_raw = FromHex("000102030405060708090a0b0c0d0e0f").value();
  std::copy(iv_raw.begin(), iv_raw.end(), iv.begin());

  const Bytes plain = FromHex(
      "6bc1bee22e409f96e93d7e117393172a"
      "ae2d8a571e03ac9c9eb76fac45af8e51").value();
  const Bytes expected = FromHex(
      "7649abac8119b246cee98e9b12e9197d"
      "5086cb9b507219ee95db113a917678b2").value();

  const Bytes cipher = AesCbcEncrypt(key, iv, plain);
  // Our output has one extra PKCS#7 padding block appended.
  ASSERT_EQ(cipher.size(), expected.size() + kAesBlockSize);
  EXPECT_EQ(Bytes(cipher.begin(), cipher.begin() + 32), expected);

  Result<Bytes> decrypted = AesCbcDecrypt(key, iv, cipher);
  ASSERT_TRUE(decrypted.ok());
  EXPECT_EQ(decrypted.value(), plain);
}

class AesCbcRoundTripTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(AesCbcRoundTripTest, EncryptDecryptIdentity) {
  Rng rng(GetParam() + 1);
  Bytes plain(GetParam());
  for (auto& b : plain) b = static_cast<std::uint8_t>(rng.Next());
  const MiioKeyMaterial keys = DeriveMiioKeys(TokenForDevice(GetParam()));

  const Bytes cipher = AesCbcEncrypt(keys.key, keys.iv, plain);
  EXPECT_EQ(cipher.size() % kAesBlockSize, 0u);
  EXPECT_GT(cipher.size(), plain.size());  // always at least one pad byte

  Result<Bytes> back = AesCbcDecrypt(keys.key, keys.iv, cipher);
  ASSERT_TRUE(back.ok()) << back.error().message();
  EXPECT_EQ(back.value(), plain);
}

INSTANTIATE_TEST_SUITE_P(Sizes, AesCbcRoundTripTest,
                         ::testing::Values(0, 1, 15, 16, 17, 31, 32, 33, 64, 100, 255, 256,
                                           1000, 4096));

TEST(AesCbc, WrongKeyFailsPaddingCheck) {
  const MiioKeyMaterial good = DeriveMiioKeys(TokenForDevice(1));
  const MiioKeyMaterial bad = DeriveMiioKeys(TokenForDevice(2));
  const Bytes cipher = AesCbcEncrypt(good.key, good.iv, ToBytes("secret payload"));
  // Wrong key: decryption should (with overwhelming probability) fail.
  EXPECT_FALSE(AesCbcDecrypt(bad.key, good.iv, cipher).ok());
}

TEST(AesCbc, RejectsRaggedCiphertext) {
  const MiioKeyMaterial keys = DeriveMiioKeys(TokenForDevice(3));
  EXPECT_FALSE(AesCbcDecrypt(keys.key, keys.iv, Bytes{}).ok());
  EXPECT_FALSE(AesCbcDecrypt(keys.key, keys.iv, Bytes(15, 0)).ok());
  EXPECT_FALSE(AesCbcDecrypt(keys.key, keys.iv, Bytes(17, 0)).ok());
}

TEST(AesCbc, CbcChainingPropagates) {
  // Same plaintext blocks must not produce identical ciphertext blocks.
  const MiioKeyMaterial keys = DeriveMiioKeys(TokenForDevice(4));
  const Bytes plain(48, 0x42);  // three identical blocks
  const Bytes cipher = AesCbcEncrypt(keys.key, keys.iv, plain);
  EXPECT_NE(Bytes(cipher.begin(), cipher.begin() + 16),
            Bytes(cipher.begin() + 16, cipher.begin() + 32));
}

TEST(ConstantTimeEquals, Behaviour) {
  const Bytes a = {1, 2, 3};
  const Bytes b = {1, 2, 3};
  const Bytes c = {1, 2, 4};
  const Bytes d = {1, 2};
  EXPECT_TRUE(ConstantTimeEquals(a, b));
  EXPECT_FALSE(ConstantTimeEquals(a, c));
  EXPECT_FALSE(ConstantTimeEquals(a, d));
  EXPECT_TRUE(ConstantTimeEquals(Bytes{}, Bytes{}));
}

TEST(MiioKdf, MatchesMiioScheme) {
  // key = MD5(token); iv = MD5(key || token).
  const MiioToken token = TokenForDevice(77);
  const MiioKeyMaterial keys = DeriveMiioKeys(token);

  const Md5Digest expected_key = Md5Sum(std::span<const std::uint8_t>(token.data(), 16));
  EXPECT_EQ(keys.key, expected_key);

  Md5 iv_hash;
  iv_hash.Update(std::span<const std::uint8_t>(expected_key.data(), 16));
  iv_hash.Update(std::span<const std::uint8_t>(token.data(), 16));
  EXPECT_EQ(keys.iv, iv_hash.Finish());
}

TEST(MiioKdf, TokensAreDeterministicAndDistinct) {
  EXPECT_EQ(TokenForDevice(5), TokenForDevice(5));
  EXPECT_NE(TokenForDevice(5), TokenForDevice(6));
}

}  // namespace
}  // namespace sidet
