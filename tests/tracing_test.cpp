// End-to-end request tracing: trace-id wire format, forward-compatible
// protocol parsing (unknown members never break old parse paths), the
// contiguous span tree, tail-based exemplar retention, the gateway serving
// path with tracing attached (responses echo ids, the `trace` op exports
// exemplars, named spans account for >= 95% of wire-to-wire latency), and
// the trace<->verdict join through the flight recorder and replay engine.
#include <gtest/gtest.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>
#include <string>

#include "core/ids.h"
#include "core/model_store.h"
#include "datagen/corpus_generator.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "replay/flight_recorder.h"
#include "replay/replay_engine.h"
#include "server/client.h"
#include "server/gateway.h"
#include "server/loadgen.h"
#include "server/router.h"
#include "server/wire.h"
#include "telemetry/exporters.h"
#include "telemetry/tracing.h"

namespace sidet {
namespace {

// ------------------------------------------------------------ trace ids ----

TEST(TraceId, FormatParseRoundTrip) {
  for (const std::uint64_t id :
       {std::uint64_t{1}, std::uint64_t{0xdeadbeefcafef00dULL},
        std::uint64_t{0xffffffffffffffffULL}, std::uint64_t{0x51de7}}) {
    const std::string text = FormatTraceId(id);
    EXPECT_EQ(text.size(), 16u);
    EXPECT_EQ(ParseTraceId(text), id) << text;
  }
  EXPECT_EQ(FormatTraceId(0x51de7), "0000000000051de7");
}

TEST(TraceId, MalformedIdsDegradeToUntraced) {
  EXPECT_EQ(ParseTraceId(""), 0u);
  EXPECT_EQ(ParseTraceId("abc"), 0u);                   // too short
  EXPECT_EQ(ParseTraceId("00000000000051de70"), 0u);    // too long
  EXPECT_EQ(ParseTraceId("zzzzzzzzzzzzzzzz"), 0u);      // not hex
  EXPECT_EQ(ParseTraceId("0000000000051de"), 0u);       // 15 digits
  EXPECT_EQ(ParseTraceId("DEADBEEFCAFEF00D"), 0xdeadbeefcafef00dULL);  // upper ok
}

// -------------------------------------------- wire forward compatibility ----

TEST(WireForwardCompat, FullParserIgnoresUnknownMembers) {
  // A request from a *newer* protocol revision: unknown scalar, object and
  // array members must be skipped, not rejected.
  Result<WireRequest> parsed = ParseWireRequest(
      R"({"op":"judge","id":9,"home":"alpha","instruction":"window.open",)"
      R"("time":3600,"future_flag":true,"nested":{"a":[1,2,{"b":"c"}]},)"
      R"("priority":7})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value().id, 9u);
  EXPECT_EQ(parsed.value().home, "alpha");
  EXPECT_EQ(parsed.value().instruction, "window.open");
  EXPECT_EQ(parsed.value().time.seconds(), 3600);
  EXPECT_EQ(parsed.value().trace.trace_id, 0u);  // untraced without members
}

TEST(WireForwardCompat, FullParserReadsTraceMembers) {
  Result<WireRequest> parsed = ParseWireRequest(
      R"({"op":"judge","id":1,"instruction":"window.open","time":60,)"
      R"("trace":"deadbeefcafef00d","span":"0000000000000007","sampled":true})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value().trace.trace_id, 0xdeadbeefcafef00dULL);
  EXPECT_EQ(parsed.value().trace.parent_span, 7u);
  EXPECT_TRUE(parsed.value().trace.sampled);

  // Malformed ids degrade to untraced, never to a parse error.
  Result<WireRequest> malformed = ParseWireRequest(
      R"({"op":"judge","id":1,"instruction":"window.open","time":60,)"
      R"("trace":"not-a-trace-id!!"})");
  ASSERT_TRUE(malformed.ok()) << malformed.error().message();
  EXPECT_EQ(malformed.value().trace.trace_id, 0u);
}

TEST(WireForwardCompat, FastParserFallsBackOnUnknownMembers) {
  // The strict-subset scanner must refuse (not fail) lines carrying members
  // outside its known set — including the new trace members — so the full
  // parser handles them.
  WireRequest out;
  EXPECT_TRUE(FastParseJudgeRequest(
      R"({"op":"judge","id":3,"home":"a","instruction":"window.open","time":60})", &out));
  EXPECT_EQ(out.instruction, "window.open");

  const char* novel_lines[] = {
      R"({"op":"judge","id":3,"instruction":"window.open","time":60,"trace":"deadbeefcafef00d"})",
      R"({"op":"judge","id":3,"instruction":"window.open","time":60,"sampled":true})",
      R"({"op":"judge","id":3,"instruction":"window.open","time":60,"span":"0000000000000001"})",
      R"({"op":"judge","id":3,"instruction":"window.open","time":60,"shiny_new_field":1})",
  };
  for (const char* line : novel_lines) {
    WireRequest fast;
    EXPECT_FALSE(FastParseJudgeRequest(line, &fast)) << line;
    Result<WireRequest> full = ParseWireRequest(line);
    ASSERT_TRUE(full.ok()) << line << ": " << full.error().message();
    EXPECT_EQ(full.value().instruction, "window.open");
  }
}

TEST(WireForwardCompat, UntracedResponseBytesAreUnchanged) {
  Judgement judgement;
  judgement.sensitive = true;
  judgement.allowed = false;
  judgement.consistency = 0.25;
  judgement.reason = "context consistency 0.25 below threshold";
  // trace_id == 0 must produce byte-identical output to the legacy builder,
  // so a tracing-detached gateway emits exactly the old protocol.
  EXPECT_EQ(WireJudgeResponse(5, judgement), WireJudgeResponse(5, judgement, 0));

  const std::string traced = WireJudgeResponse(5, judgement, 0xabcdef0123456789ULL);
  Result<Json> parsed = Json::Parse(traced);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().string_or("trace", ""), "abcdef0123456789");
  EXPECT_FALSE(parsed.value().bool_or("allowed", true));
}

TEST(WireForwardCompat, OldClientsIgnoreUnknownResponseMembers) {
  // An old client parsing a traced (or future-revision) response with the
  // generic JSON path reads its known fields untouched.
  Judgement judgement;
  judgement.sensitive = false;
  judgement.allowed = true;
  judgement.consistency = 1.0;
  std::string response = WireJudgeResponse(11, judgement, 0x51de7);
  response.insert(response.size() - 1, R"(,"future_member":{"deep":[true]})");
  Result<Json> parsed = Json::Parse(response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().number_or("id", 0), 11.0);
  EXPECT_TRUE(parsed.value().bool_or("ok", false));
  EXPECT_TRUE(parsed.value().bool_or("allowed", false));
}

// ------------------------------------------------------------- span tree ----

RequestTrace FullTrace() {
  RequestTrace trace;
  trace.trace_id = 42;
  trace.admitted_us = 1000;
  trace.submitted_us = 1050;
  trace.batch_start_us = 1400;
  trace.judge_end_us = 2400;
  trace.staged_us = 2500;
  trace.write_us = 2600;
  trace.classify_us = 200;
  trace.score_us = 600;
  trace.verdict_us = 100;
  trace.batch_rows = 8;
  return trace;
}

TEST(SpanTree, PartitionsWireToWireContiguously) {
  const RequestTrace trace = FullTrace();
  const std::vector<ExemplarSpan> spans = BuildSpanTree(trace);

  std::int64_t covered = 0;
  std::int64_t cursor = trace.admitted_us;
  std::size_t top_level = 0;
  for (const ExemplarSpan& span : spans) {
    if (std::string_view(span.name).substr(0, 8) != "gateway.") continue;
    EXPECT_EQ(span.start_us, cursor) << span.name;  // contiguous partition
    cursor = span.start_us + span.duration_us;
    covered += span.duration_us;
    ++top_level;
  }
  EXPECT_EQ(top_level, 5u);  // admission/queue/judge/respond/writeback
  EXPECT_EQ(covered, trace.e2e_us());  // 100% coverage by construction
  EXPECT_EQ(cursor, trace.write_us);

  // ids.* annotations nest inside [batch_start, judge_end].
  for (const ExemplarSpan& span : spans) {
    if (std::string_view(span.name).substr(0, 4) != "ids.") continue;
    EXPECT_GE(span.start_us, trace.batch_start_us);
    EXPECT_LE(span.start_us + span.duration_us, trace.judge_end_us);
  }
}

TEST(SpanTree, ShedRequestYieldsAdmissionAndWriteback) {
  RequestTrace trace;
  trace.trace_id = 7;
  trace.shed = true;
  trace.admitted_us = 1000;
  trace.staged_us = 1010;  // 429 staged straight from the loop thread
  trace.write_us = 1030;
  const std::vector<ExemplarSpan> spans = BuildSpanTree(trace);
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_STREQ(spans[0].name, "gateway.admission");
  EXPECT_STREQ(spans[1].name, "gateway.writeback");
  EXPECT_EQ(spans[0].duration_us + spans[1].duration_us, trace.e2e_us());
}

// --------------------------------------------------------- tail sampling ----

RequestTrace TimedTrace(std::int64_t e2e_us) {
  RequestTrace trace;
  trace.trace_id = static_cast<std::uint64_t>(1000 + e2e_us);
  trace.admitted_us = 1000;
  trace.staged_us = 1000 + e2e_us - 1;
  trace.write_us = 1000 + e2e_us;
  return trace;
}

TEST(TailExemplarStore, SlowSetKeepsTheTopKByLatency) {
  TailExemplarStore store(/*slow_capacity=*/4, /*event_capacity=*/8);
  for (std::int64_t e2e = 1; e2e <= 10; ++e2e) store.Offer(TimedTrace(e2e * 100));

  const std::vector<TraceExemplar> kept = store.Snapshot();
  ASSERT_EQ(kept.size(), 4u);
  // Slowest first: 1000, 900, 800, 700 survived; everything faster evicted.
  EXPECT_EQ(kept[0].e2e_us, 1000);
  EXPECT_EQ(kept[3].e2e_us, 700);
  EXPECT_EQ(store.slow_threshold_us(), 700);

  const TailExemplarStore::Stats stats = store.stats();
  EXPECT_EQ(stats.offered, 10u);
  EXPECT_EQ(stats.evicted, stats.retained_slow - 4u);
  // A fast request against a warm store is rejected without retention.
  store.Offer(TimedTrace(50));
  EXPECT_EQ(store.stats().offered, 11u);
  EXPECT_EQ(store.Snapshot().size(), 4u);
}

TEST(TailExemplarStore, EventClassesAlwaysRetain) {
  TailExemplarStore store(/*slow_capacity=*/2, /*event_capacity=*/2);

  RequestTrace shed = TimedTrace(10);
  shed.shed = true;
  store.Offer(shed);

  RequestTrace blocked = TimedTrace(20);
  blocked.sensitive = true;
  blocked.allowed = false;
  store.Offer(blocked);

  RequestTrace forced = TimedTrace(30);
  forced.sampled = true;
  store.Offer(forced);

  const TailExemplarStore::Stats stats = store.stats();
  EXPECT_EQ(stats.retained_shed, 1u);
  EXPECT_EQ(stats.retained_blocked, 1u);
  EXPECT_EQ(stats.retained_forced, 1u);
  EXPECT_EQ(stats.retained_slow, 0u);

  std::map<std::string, int> classes;
  for (const TraceExemplar& exemplar : store.Snapshot()) {
    classes[exemplar.retained_for] += 1;
  }
  EXPECT_EQ(classes["shed"], 1);
  EXPECT_EQ(classes["blocked"], 1);
  EXPECT_EQ(classes["forced"], 1);

  // The ring is bounded: a third shed rotates the oldest out.
  RequestTrace shed2 = TimedTrace(11);
  shed2.shed = true;
  RequestTrace shed3 = TimedTrace(12);
  shed3.shed = true;
  store.Offer(shed2);
  store.Offer(shed3);
  int shed_kept = 0;
  for (const TraceExemplar& exemplar : store.Snapshot()) {
    if (std::string_view(exemplar.retained_for) == "shed") ++shed_kept;
  }
  EXPECT_EQ(shed_kept, 2);
  EXPECT_GE(store.stats().evicted, 1u);
}

TEST(RequestTracing, AssignsIdsAndAdoptsPropagatedContext) {
  MetricsRegistry metrics;
  RequestTracing tracing(RequestTracingOptions{}, &metrics);

  // No propagated context: a fresh nonzero id per request.
  const auto a = tracing.Begin(TraceContext{}, "h", "i");
  const auto b = tracing.Begin(TraceContext{}, "h", "i");
  EXPECT_NE(a->trace_id, 0u);
  EXPECT_NE(b->trace_id, 0u);
  EXPECT_NE(a->trace_id, b->trace_id);
  EXPECT_GT(a->admitted_us, 0);

  // A propagated id is adopted verbatim.
  TraceContext upstream;
  upstream.trace_id = 0x1234;
  upstream.parent_span = 0x99;
  upstream.sampled = true;
  const auto c = tracing.Begin(upstream, "h", "i");
  EXPECT_EQ(c->trace_id, 0x1234u);
  EXPECT_EQ(c->parent_span, 0x99u);
  EXPECT_TRUE(c->sampled);

  tracing.Finalize(a);
  tracing.Finalize(c);
  EXPECT_EQ(tracing.exemplars().stats().offered, 2u);
  bool counted = metrics.Find("sidet_trace_requests_total", "",
                              [](const MetricsRegistry::MetricView& view) {
                                EXPECT_EQ(view.counter->Value(), 3u);
                              });
  EXPECT_TRUE(counted);
}

// ------------------------------------------------------- gateway serving ----

class TracedGatewayFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new InstructionRegistry(BuildStandardInstructionSet());
    Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, *registry_);
    ASSERT_TRUE(corpus.ok());
    ContextFeatureMemory memory;
    MemoryTrainingOptions options;
    options.samples_per_device = 1200;  // keep the suite fast
    ASSERT_TRUE(memory.TrainFromCorpus(corpus.value().corpus, options).ok());
    // Per-process name: ctest runs each test in its own process and this
    // suite sets up once per process — a shared path would race.
    model_path_ = new std::string(::testing::TempDir() + "sidet_tracing_model." +
                                  std::to_string(::getpid()) + ".json");
    ASSERT_TRUE(SaveMemory(memory, *model_path_).ok());

    SmartHome home = BuildDemoHome(7);
    home.Step(3 * kSecondsPerHour);
    snapshot_ = new SensorSnapshot(home.Snapshot());
    time_ = home.now();
  }
  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete registry_;
    delete model_path_;
    delete snapshot_;
    registry_ = nullptr;
    model_path_ = nullptr;
    snapshot_ = nullptr;
  }

  static ContextIds MakeIds() {
    Result<ContextFeatureMemory> memory = LoadMemory(*model_path_);
    EXPECT_TRUE(memory.ok());
    return ContextIds(SensitiveInstructionDetector(PaperTableThree()),
                      std::move(memory).value());
  }

  static InstructionRegistry* registry_;
  static std::string* model_path_;
  static SensorSnapshot* snapshot_;
  static SimTime time_;
};
InstructionRegistry* TracedGatewayFixture::registry_ = nullptr;
std::string* TracedGatewayFixture::model_path_ = nullptr;
SensorSnapshot* TracedGatewayFixture::snapshot_ = nullptr;
SimTime TracedGatewayFixture::time_;

TEST_F(TracedGatewayFixture, TracedResponsesTraceOpAndSpanCoverage) {
  MetricsRegistry metrics;
  RequestTracing tracing(RequestTracingOptions{}, &metrics);
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 200;
  GatewayRouter router(policy, &metrics, nullptr, &tracing);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  ASSERT_TRUE(router.SetContext("default", *snapshot_).ok());
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics, nullptr, &tracing);
  ASSERT_TRUE(gateway.Start().ok());

  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok()) << client.error().message();

  // Server-assigned id: a judge without trace members still gets one.
  Json judge = Json::Object();
  judge["op"] = "judge";
  judge["id"] = 1;
  judge["instruction"] = "window.open";
  judge["time"] = time_.seconds();
  judge["sampled"] = true;  // force exemplar retention for this request
  Result<Json> verdict = client.value().Call(judge);
  ASSERT_TRUE(verdict.ok()) << verdict.error().message();
  ASSERT_TRUE(verdict.value().bool_or("ok", false));
  const std::string assigned = verdict.value().string_or("trace", "");
  EXPECT_NE(ParseTraceId(assigned), 0u) << assigned;

  // Client-propagated id: echoed verbatim on the response.
  Json propagated = Json::Object();
  propagated["op"] = "judge";
  propagated["id"] = 2;
  propagated["instruction"] = "window.open";
  propagated["time"] = time_.seconds();
  propagated["trace"] = "00000000deadbeef";
  propagated["sampled"] = true;
  Result<Json> echoed = client.value().Call(propagated);
  ASSERT_TRUE(echoed.ok());
  ASSERT_TRUE(echoed.value().bool_or("ok", false));
  EXPECT_EQ(echoed.value().string_or("trace", ""), "00000000deadbeef");

  // The finalized exemplars are exported by the `trace` wire command.
  Result<Json> exported = client.value().FetchTrace();
  ASSERT_TRUE(exported.ok()) << exported.error().message();
  const Json* exemplars = exported.value().find("exemplars");
  ASSERT_NE(exemplars, nullptr);
  ASSERT_TRUE(exemplars->is_array());

  // Span coverage for the sampled requests: the named gateway.* stages must
  // account for >= 95% of the measured wire-to-wire latency (the acceptance
  // criterion; contiguity makes this ~100%). The two requests are found by
  // trace id — retention class depends on the verdict (a blocked sampled
  // request lands in the blocked ring, which outranks forced).
  const std::set<std::string> sampled_ids = {assigned, "00000000deadbeef"};
  std::set<std::string> seen;
  int covered_exemplars = 0;
  for (const Json& exemplar : exemplars->as_array()) {
    if (!sampled_ids.contains(exemplar.string_or("trace", ""))) continue;
    const double e2e_us = exemplar.number_or("e2e_us", 0);
    ASSERT_GT(e2e_us, 0);
    double named_us = 0;
    const Json* spans = exemplar.find("spans");
    ASSERT_NE(spans, nullptr);
    for (const Json& span : spans->as_array()) {
      const std::string name = span.string_or("name", "");
      if (name.rfind("gateway.", 0) == 0) {
        named_us += span.number_or("duration_us", 0);
        seen.insert(name);
      }
    }
    EXPECT_GE(named_us, 0.95 * e2e_us)
        << "trace " << exemplar.string_or("trace", "") << " covers " << named_us
        << "us of " << e2e_us << "us";
    ++covered_exemplars;
  }
  EXPECT_EQ(covered_exemplars, 2);
  // The full request path appears in the trees.
  for (const char* stage : {"gateway.admission", "gateway.queue", "gateway.judge",
                            "gateway.respond", "gateway.writeback"}) {
    EXPECT_TRUE(seen.contains(stage)) << stage;
  }

  // Chrome form exports a trace_event document.
  Result<Json> chrome = client.value().FetchTrace(/*chrome=*/true);
  ASSERT_TRUE(chrome.ok());
  const Json* doc = chrome.value().find("trace");
  ASSERT_NE(doc, nullptr);
  ASSERT_NE(doc->find("traceEvents"), nullptr);
  EXPECT_FALSE(doc->find("traceEvents")->as_array().empty());

  // Stats carries the tail-store section; the registry counted the traces.
  Json stats = Json::Object();
  stats["op"] = "stats";
  stats["id"] = 3;
  Result<Json> stats_response = client.value().Call(stats);
  ASSERT_TRUE(stats_response.ok());
  const Json* tracing_stats = stats_response.value().find("tracing");
  ASSERT_NE(tracing_stats, nullptr);
  EXPECT_GE(tracing_stats->number_or("offered", 0), 2.0);
  const double retained = tracing_stats->number_or("retained_forced", 0) +
                          tracing_stats->number_or("retained_blocked", 0) +
                          tracing_stats->number_or("retained_slow", 0);
  EXPECT_GE(retained, 2.0);

  client.value().Close();
  gateway.Shutdown();
}

TEST_F(TracedGatewayFixture, GatewayWithoutTracingServesTraceOpAs404) {
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  Gateway gateway(router, *registry_);
  ASSERT_TRUE(gateway.Start().ok());
  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());
  Result<Json> fetched = client.value().FetchTrace();
  EXPECT_FALSE(fetched.ok());  // in-band 404 surfaces as an error
  client.value().Close();
  gateway.Shutdown();
}

// The trace<->verdict join: every verdict a flight recorder captures from a
// traced gateway session carries a resolvable trace_id, and the replay
// engine reads it back (the PR's second acceptance criterion).
TEST_F(TracedGatewayFixture, RecordedVerdictsJoinToServerTraces) {
  MetricsRegistry metrics;
  RequestTracingOptions trace_options;
  trace_options.event_capacity = 256;  // retain every forced exemplar below
  RequestTracing tracing(trace_options, &metrics);
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 200;
  GatewayRouter router(policy, &metrics, nullptr, &tracing);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  ASSERT_TRUE(router.SetContext("default", *snapshot_).ok());

  const std::string session_path =
      ::testing::TempDir() + "sidet_traced_session.ndjson";
  FlightRecorderOptions recorder_options;
  recorder_options.path = session_path;
  FlightRecorder recorder(recorder_options);
  ASSERT_TRUE(recorder.StartSession("traced-gateway-session").ok());
  ASSERT_TRUE(router.SetVerdictObserver("default", &recorder).ok());

  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics, nullptr, &tracing);
  ASSERT_TRUE(gateway.Start().ok());
  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());

  constexpr int kRequests = 24;
  for (int i = 0; i < kRequests; ++i) {
    Json judge = Json::Object();
    judge["op"] = "judge";
    judge["id"] = i + 1;
    judge["instruction"] = i % 2 == 0 ? "window.open" : "light.on";
    judge["time"] = time_.seconds();
    judge["sampled"] = true;  // keep every exemplar for the join below
    Result<Json> verdict = client.value().Call(judge);
    ASSERT_TRUE(verdict.ok()) << verdict.error().message();
    ASSERT_TRUE(verdict.value().bool_or("ok", false)) << verdict.value().Dump();
    EXPECT_NE(ParseTraceId(verdict.value().string_or("trace", "")), 0u);
  }

  // Collect the server-side exemplar ids before teardown.
  std::set<std::uint64_t> exemplar_ids;
  for (const TraceExemplar& exemplar : tracing.exemplars().Snapshot()) {
    exemplar_ids.insert(exemplar.trace_id);
  }

  client.value().Close();
  gateway.Shutdown();
  router.DrainAll();
  recorder.Close();

  Result<RecordedSession> session = LoadSession(session_path);
  ASSERT_TRUE(session.ok()) << session.error().message();
  ASSERT_EQ(session.value().events.size(), static_cast<std::size_t>(kRequests));
  for (const RecordedEvent& event : session.value().events) {
    // Every recorded verdict resolves a trace id...
    ASSERT_NE(event.trace_id, 0u);
    // ...and the id joins to a retained server-side span tree.
    EXPECT_TRUE(exemplar_ids.contains(event.trace_id))
        << FormatTraceId(event.trace_id);
  }
  std::remove(session_path.c_str());
}

TEST_F(TracedGatewayFixture, LoadGeneratorCountsTracedResponses) {
  MetricsRegistry metrics;
  RequestTracing tracing(RequestTracingOptions{}, &metrics);
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 100;
  GatewayRouter router(policy, &metrics, nullptr, &tracing);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  ASSERT_TRUE(router.SetContext("default", *snapshot_).ok());
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics, nullptr, &tracing);
  ASSERT_TRUE(gateway.Start().ok());

  LoadOptions options;
  options.connections = 2;
  options.pipeline = 8;
  options.duration_ms = 150;
  options.request_tails = {JudgeRequestTail("default", "light.on", time_)};
  const LoadReport report = RunLoad("127.0.0.1", gateway.port(), options);
  EXPECT_GT(report.ok, 0u);
  // Every ok judge response from a tracing gateway carries a trace id.
  EXPECT_EQ(report.traced, report.ok);
  EXPECT_GT(report.ToJson().number_or("traced", 0), 0.0);
  gateway.Shutdown();
}

}  // namespace
}  // namespace sidet
