#include "util/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

namespace sidet {
namespace {

TEST(Rng, DeterministicForEqualSeeds) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(Rng, ForkIsIndependentOfParentConsumption) {
  Rng parent(7);
  Rng child = parent.Fork();
  const std::uint64_t child_first = child.Next();
  // Consuming more from the parent must not change what the child produced.
  (void)parent.Next();
  EXPECT_NE(child_first, parent.Next());
}

TEST(Rng, ZeroSeedStillWorks) {
  Rng rng(0);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 100; ++i) seen.insert(rng.Next());
  EXPECT_GT(seen.size(), 95u);
}

TEST(Rng, UniformIntStaysInRangeAndHitsEndpoints) {
  Rng rng(3);
  bool hit_lo = false;
  bool hit_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.UniformInt(-3, 4);
    ASSERT_GE(v, -3);
    ASSERT_LE(v, 4);
    hit_lo |= v == -3;
    hit_hi |= v == 4;
  }
  EXPECT_TRUE(hit_lo);
  EXPECT_TRUE(hit_hi);
}

TEST(Rng, UniformIntDegenerateRange) {
  Rng rng(5);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(9, 9), 9);
}

TEST(Rng, UniformIntIsRoughlyUniform) {
  Rng rng(11);
  int counts[10] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(0, 9)];
  for (const int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
  }
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(2.0, 3.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double variance = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 2.0, 0.05);
  EXPECT_NEAR(std::sqrt(variance), 3.0, 0.05);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, ZipfRanksBoundedAndHeadHeavy) {
  Rng rng(23);
  int rank_one = 0;
  int rank_tail = 0;
  for (int i = 0; i < 20000; ++i) {
    const std::int64_t rank = rng.Zipf(1000, 1.2);
    ASSERT_GE(rank, 1);
    ASSERT_LE(rank, 1000);
    if (rank == 1) ++rank_one;
    if (rank > 500) ++rank_tail;
  }
  EXPECT_GT(rank_one, rank_tail);  // the head dominates the far tail
}

TEST(Rng, CategoricalFollowsWeights) {
  Rng rng(29);
  const double weights[3] = {1.0, 2.0, 7.0};
  int counts[3] = {};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.Categorical(std::span<const double>(weights, 3))];
  EXPECT_NEAR(counts[0] / static_cast<double>(n), 0.1, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(n), 0.2, 0.015);
  EXPECT_NEAR(counts[2] / static_cast<double>(n), 0.7, 0.015);
}

TEST(Rng, CategoricalZeroWeightNeverChosen) {
  Rng rng(31);
  const double weights[3] = {1.0, 0.0, 1.0};
  for (int i = 0; i < 5000; ++i) {
    EXPECT_NE(rng.Categorical(std::span<const double>(weights, 3)), 1u);
  }
}

TEST(Rng, PoissonMeanSmallLambda) {
  Rng rng(37);
  double sum = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(3.5));
  EXPECT_NEAR(sum / n, 3.5, 0.08);
}

TEST(Rng, PoissonMeanLargeLambda) {
  Rng rng(41);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.Poisson(80.0));
  EXPECT_NEAR(sum / n, 80.0, 0.8);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(43);
  std::vector<int> v = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = v;
  rng.Shuffle(shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

// Parameterized property: SampleWithoutReplacement yields k distinct indices
// in range for many (n, k) combinations.
class SampleWithoutReplacementTest
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(SampleWithoutReplacementTest, DistinctAndInRange) {
  const auto [n, k] = GetParam();
  Rng rng(n * 1000 + k);
  const std::vector<std::size_t> sample = rng.SampleWithoutReplacement(n, k);
  EXPECT_EQ(sample.size(), k);
  std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), k);
  for (const std::size_t index : sample) EXPECT_LT(index, n);
}

INSTANTIATE_TEST_SUITE_P(Sweep, SampleWithoutReplacementTest,
                         ::testing::Values(std::pair<std::size_t, std::size_t>{1, 1},
                                           std::pair<std::size_t, std::size_t>{10, 0},
                                           std::pair<std::size_t, std::size_t>{10, 10},
                                           std::pair<std::size_t, std::size_t>{100, 5},
                                           std::pair<std::size_t, std::size_t>{1000, 999},
                                           std::pair<std::size_t, std::size_t>{5000, 2500}));

}  // namespace
}  // namespace sidet
