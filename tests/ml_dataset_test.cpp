#include "ml/dataset.h"

#include <gtest/gtest.h>

#include "ml/metrics.h"

namespace sidet {
namespace {

std::vector<FeatureSpec> MixedSpecs() {
  return {
      FeatureSpec{"temperature", false, {}},
      FeatureSpec{"weather", true, {"clear", "cloudy", "rain"}},
      FeatureSpec{"motion", false, {}},
  };
}

TEST(Dataset, AddAndAccess) {
  Dataset data(MixedSpecs());
  data.Add({21.5, 0, 1}, 1);
  data.Add({15.0, 2, 0}, 0);
  EXPECT_EQ(data.size(), 2u);
  EXPECT_EQ(data.num_features(), 3u);
  EXPECT_DOUBLE_EQ(data.row(0)[0], 21.5);
  EXPECT_EQ(data.label(1), 0);
  EXPECT_EQ(data.CountLabel(1), 1u);
  EXPECT_DOUBLE_EQ(data.PositiveFraction(), 0.5);
  EXPECT_EQ(data.Column(1), (std::vector<double>{0, 2}));
}

TEST(Dataset, SubsetSelectsRows) {
  Dataset data(MixedSpecs());
  for (int i = 0; i < 10; ++i) data.Add({static_cast<double>(i), 0, 0}, i % 2);
  const std::vector<std::size_t> indices = {1, 3, 7};
  const Dataset subset = data.Subset(indices);
  EXPECT_EQ(subset.size(), 3u);
  EXPECT_DOUBLE_EQ(subset.row(0)[0], 1.0);
  EXPECT_DOUBLE_EQ(subset.row(2)[0], 7.0);
  EXPECT_EQ(subset.label(0), 1);
}

TEST(Dataset, AppendRequiresMatchingSpecs) {
  Dataset a(MixedSpecs());
  a.Add({1, 0, 0}, 0);
  Dataset b(MixedSpecs());
  b.Add({2, 1, 1}, 1);
  ASSERT_TRUE(a.Append(b).ok());
  EXPECT_EQ(a.size(), 2u);

  Dataset wrong(std::vector<FeatureSpec>{FeatureSpec{"x", false, {}}});
  EXPECT_FALSE(a.Append(wrong).ok());
}

TEST(Dataset, ShufflePreservesRowLabelPairs) {
  Dataset data(MixedSpecs());
  for (int i = 0; i < 50; ++i) {
    // Encode the label into the row so we can verify pairing survives.
    data.Add({static_cast<double>(i), 0, static_cast<double>(i % 2)}, i % 2);
  }
  Rng rng(5);
  data.Shuffle(rng);
  for (std::size_t i = 0; i < data.size(); ++i) {
    EXPECT_EQ(static_cast<int>(data.row(i)[2]), data.label(i));
  }
}

TEST(Dataset, CsvRoundTrip) {
  Dataset data(MixedSpecs());
  data.Add({21.5, 0, 1}, 1);
  data.Add({-3.25, 2, 0}, 0);
  const std::string csv = data.ToCsv();
  EXPECT_NE(csv.find("temperature,weather,motion,label"), std::string::npos);
  EXPECT_NE(csv.find("rain"), std::string::npos);

  Result<Dataset> back = Dataset::FromCsv(csv, MixedSpecs());
  ASSERT_TRUE(back.ok()) << back.error().message();
  ASSERT_EQ(back.value().size(), 2u);
  EXPECT_DOUBLE_EQ(back.value().row(1)[0], -3.25);
  EXPECT_DOUBLE_EQ(back.value().row(1)[1], 2.0);
  EXPECT_EQ(back.value().label(0), 1);
}

TEST(Dataset, FromCsvRejectsBadInput) {
  EXPECT_FALSE(Dataset::FromCsv("", MixedSpecs()).ok());
  EXPECT_FALSE(Dataset::FromCsv("only,two,cols\n", MixedSpecs()).ok());
  EXPECT_FALSE(
      Dataset::FromCsv("temperature,weather,motion,label\n1,unknown_cat,0,1\n", MixedSpecs())
          .ok());
  EXPECT_FALSE(
      Dataset::FromCsv("temperature,weather,motion,label\nNaNope,clear,0,1\n", MixedSpecs())
          .ok());
  EXPECT_FALSE(
      Dataset::FromCsv("temperature,weather,motion,label\n1,clear,0,7\n", MixedSpecs()).ok());
}

TEST(Metrics, ConfusionAndDerivedRates) {
  ConfusionMatrix confusion;
  // 6 TP, 2 FN, 1 FP, 11 TN.
  for (int i = 0; i < 6; ++i) confusion.Add(1, 1);
  for (int i = 0; i < 2; ++i) confusion.Add(1, 0);
  confusion.Add(0, 1);
  for (int i = 0; i < 11; ++i) confusion.Add(0, 0);

  const BinaryMetrics m = ComputeMetrics(confusion);
  EXPECT_DOUBLE_EQ(m.accuracy, 17.0 / 20.0);
  EXPECT_DOUBLE_EQ(m.recall, 6.0 / 8.0);
  EXPECT_DOUBLE_EQ(m.precision, 6.0 / 7.0);
  EXPECT_DOUBLE_EQ(m.fpr, 1.0 / 12.0);
  EXPECT_DOUBLE_EQ(m.fnr, 2.0 / 8.0);
  EXPECT_NEAR(m.f1, 2 * m.precision * m.recall / (m.precision + m.recall), 1e-12);
}

TEST(Metrics, VectorOverloadAndEmptyDenominators) {
  const std::vector<int> truth = {1, 1, 0, 0};
  const std::vector<int> predicted = {1, 0, 0, 1};
  const BinaryMetrics m = ComputeMetrics(truth, predicted);
  EXPECT_DOUBLE_EQ(m.accuracy, 0.5);

  // All-negative truth: recall/fnr denominators are zero -> defined as 0.
  const std::vector<int> zeros = {0, 0};
  const BinaryMetrics z = ComputeMetrics(zeros, zeros);
  EXPECT_DOUBLE_EQ(z.recall, 0.0);
  EXPECT_DOUBLE_EQ(z.fnr, 0.0);
  EXPECT_DOUBLE_EQ(z.accuracy, 1.0);
}

}  // namespace
}  // namespace sidet
