#include "sensors/history.h"

#include <gtest/gtest.h>

#include "home/smart_home.h"

namespace sidet {
namespace {

SensorSnapshot At(std::int64_t seconds, double temperature, bool smoke) {
  SensorSnapshot snapshot{SimTime(seconds)};
  snapshot.Set("temp", SensorType::kTemperature, SensorValue::Continuous(temperature));
  snapshot.Set("smoke", SensorType::kSmoke, SensorValue::Binary(smoke));
  return snapshot;
}

TEST(SnapshotHistory, SlopeOfLinearRamp) {
  SnapshotHistory history;
  // +6 degrees over 30 minutes = +12 degrees/hour.
  for (int minute = 0; minute <= 30; minute += 5) {
    history.Push(At(minute * 60, 20.0 + 0.2 * minute, false));
  }
  Result<double> slope = history.SlopePerHour(SensorType::kTemperature, 31 * 60);
  ASSERT_TRUE(slope.ok()) << slope.error().message();
  EXPECT_NEAR(slope.value(), 12.0, 1e-9);
}

TEST(SnapshotHistory, FlatSignalHasZeroSlope) {
  SnapshotHistory history;
  for (int minute = 0; minute < 20; ++minute) history.Push(At(minute * 60, 21.0, false));
  Result<double> slope = history.SlopePerHour(SensorType::kTemperature, 21 * 60);
  ASSERT_TRUE(slope.ok());
  EXPECT_NEAR(slope.value(), 0.0, 1e-9);
}

TEST(SnapshotHistory, WindowExcludesOldSamples) {
  SnapshotHistory history;
  // Steep ramp long ago, flat recently: a short window must see only flat.
  for (int minute = 0; minute <= 10; ++minute) history.Push(At(minute * 60, minute * 2.0, false));
  for (int minute = 11; minute <= 30; ++minute) history.Push(At(minute * 60, 20.0, false));
  Result<double> recent = history.SlopePerHour(SensorType::kTemperature, 10 * 60);
  ASSERT_TRUE(recent.ok());
  EXPECT_NEAR(recent.value(), 0.0, 1e-9);
  Result<double> whole = history.SlopePerHour(SensorType::kTemperature, 31 * 60);
  ASSERT_TRUE(whole.ok());
  EXPECT_GT(whole.value(), 5.0);
}

TEST(SnapshotHistory, SlopeNeedsTwoReadings) {
  SnapshotHistory history;
  EXPECT_FALSE(history.SlopePerHour(SensorType::kTemperature, 600).ok());
  history.Push(At(0, 20.0, false));
  EXPECT_FALSE(history.SlopePerHour(SensorType::kTemperature, 600).ok());
  history.Push(At(60, 21.0, false));
  EXPECT_TRUE(history.SlopePerHour(SensorType::kTemperature, 600).ok());
}

TEST(SnapshotHistory, MeanAndEdgesAndDutyCycle) {
  SnapshotHistory history;
  // smoke: off off on on off on  -> 2 rising edges, 3/6 duty cycle.
  const bool pattern[6] = {false, false, true, true, false, true};
  for (int i = 0; i < 6; ++i) history.Push(At(i * 60, 10.0 * i, pattern[i]));

  Result<double> mean = history.MeanOver(SensorType::kTemperature, 6 * 60);
  ASSERT_TRUE(mean.ok());
  EXPECT_NEAR(mean.value(), 25.0, 1e-9);
  EXPECT_EQ(history.RisingEdges(SensorType::kSmoke, 6 * 60), 2);
  EXPECT_NEAR(history.ActiveFraction(SensorType::kSmoke, 6 * 60), 0.5, 1e-9);
  EXPECT_EQ(history.RisingEdges(SensorType::kGasLeak, 6 * 60), 0);  // absent type
  EXPECT_FALSE(history.MeanOver(SensorType::kHumidity, 6 * 60).ok());
}

TEST(SnapshotHistory, CapacityBoundsMemory) {
  SnapshotHistory history(8);
  for (int i = 0; i < 100; ++i) history.Push(At(i * 60, 20.0, false));
  EXPECT_EQ(history.size(), 8u);
  EXPECT_EQ(history.latest().time().seconds(), 99 * 60);
}

TEST(SnapshotHistory, SameTimestampReplaces) {
  SnapshotHistory history;
  history.Push(At(60, 20.0, false));
  history.Push(At(60, 25.0, true));
  EXPECT_EQ(history.size(), 1u);
  EXPECT_DOUBLE_EQ(history.latest().FindByType(SensorType::kTemperature)->number, 25.0);
}

TEST(SnapshotHistory, DistinguishesRealFireFromSpoofedSmoke) {
  // The Peeves-style check (§VII): a forged smoke bit carries no physical
  // trajectory; a real fire does.
  SmartHome spoofed_home = BuildDemoHome(91);
  spoofed_home.Step(kSecondsPerHour);
  SnapshotHistory spoofed_history;
  spoofed_home.FindSensor("kitchen_smoke")->Spoof(SensorValue::Binary(true));
  for (int minute = 0; minute < 10; ++minute) {
    spoofed_home.Step(kSecondsPerMinute);
    spoofed_history.Push(spoofed_home.Snapshot());
  }

  SmartHome burning_home = BuildDemoHome(91);
  burning_home.Step(kSecondsPerHour);
  SnapshotHistory burning_history;
  burning_home.StartFire();
  for (int minute = 0; minute < 10; ++minute) {
    burning_home.Step(kSecondsPerMinute);
    burning_history.Push(burning_home.Snapshot());
  }

  // Both report smoke...
  EXPECT_GT(spoofed_history.ActiveFraction(SensorType::kSmoke, 10 * 60), 0.9);
  EXPECT_GT(burning_history.ActiveFraction(SensorType::kSmoke, 10 * 60), 0.9);
  // ...but only the real fire moves the air quality.
  Result<double> spoofed_slope =
      spoofed_history.SlopePerHour(SensorType::kAirQuality, 10 * 60);
  Result<double> burning_slope =
      burning_history.SlopePerHour(SensorType::kAirQuality, 10 * 60);
  ASSERT_TRUE(spoofed_slope.ok());
  ASSERT_TRUE(burning_slope.ok());
  EXPECT_LT(std::abs(spoofed_slope.value()), 200.0);
  EXPECT_GT(burning_slope.value(), 500.0);  // AQI climbing hard
}

}  // namespace
}  // namespace sidet
