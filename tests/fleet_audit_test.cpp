// Randomized home builder, audit log, gateway-side guarded execution.
#include <gtest/gtest.h>

#include "core/audit.h"
#include "core/ids.h"
#include "core/online_update.h"
#include "datagen/corpus_generator.h"
#include "home/home_builder.h"
#include "instructions/standard_instruction_set.h"
#include "protocol/miio_gateway.h"

namespace sidet {
namespace {

// --- Home builder ------------------------------------------------------------

class RandomHomeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomHomeTest, AlwaysCarriesTheMandatoryCore) {
  SmartHome home = BuildRandomHome(HomeConfig{}, GetParam());

  // Every schema-referenced sensor type is present.
  const SensorSnapshot snapshot = home.Snapshot();
  for (const SensorType type : AllSensorTypes()) {
    EXPECT_NE(snapshot.FindByType(type), nullptr) << ToString(type) << " seed " << GetParam();
  }
  // Every evaluated device family is installed, plus the lock starts locked.
  for (const DeviceCategory category :
       {DeviceCategory::kKitchen, DeviceCategory::kLighting, DeviceCategory::kAirConditioning,
        DeviceCategory::kCurtains, DeviceCategory::kEntertainment,
        DeviceCategory::kWindowAndLock}) {
    bool found = false;
    for (const auto& device : home.devices()) found |= device->category() == category;
    EXPECT_TRUE(found) << ToString(category);
  }
  EXPECT_TRUE(snapshot.FindByType(SensorType::kLockState)->as_bool());
  EXPECT_GE(home.rooms().size(), 3u);
  EXPECT_GE(home.occupants().size(), 1u);
}

TEST_P(RandomHomeTest, DeterministicForSeed) {
  SmartHome a = BuildRandomHome(HomeConfig{}, GetParam());
  SmartHome b = BuildRandomHome(HomeConfig{}, GetParam());
  a.Step(kSecondsPerHour);
  b.Step(kSecondsPerHour);
  EXPECT_EQ(a.Snapshot().ToJson().Dump(), b.Snapshot().ToJson().Dump());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomHomeTest, ::testing::Values(1, 2, 3, 42, 999, 31337));

TEST(RandomHome, SeedsProduceDifferentHomes) {
  SmartHome a = BuildRandomHome(HomeConfig{}, 1);
  SmartHome b = BuildRandomHome(HomeConfig{}, 2);
  const bool differs = a.rooms().size() != b.rooms().size() ||
                       a.occupants().size() != b.occupants().size() ||
                       a.devices().size() != b.devices().size() ||
                       a.AllSensors().size() != b.AllSensors().size();
  EXPECT_TRUE(differs);
}

// --- Audit log ----------------------------------------------------------------

AuditRecord MakeRecord(std::int64_t t, const char* name, bool sensitive, bool allowed) {
  AuditRecord record;
  record.at = SimTime(t);
  record.instruction = name;
  record.category = DeviceCategory::kWindowAndLock;
  record.sensitive = sensitive;
  record.allowed = allowed;
  record.consistency = allowed ? 0.9 : 0.1;
  record.reason = "test";
  return record;
}

TEST(AuditLog, AppendAndQuery) {
  AuditLog log;
  log.Append(MakeRecord(10, "window.open", true, true));
  log.Append(MakeRecord(20, "window.open", true, false));
  log.Append(MakeRecord(30, "tv.on", false, true));

  EXPECT_EQ(log.size(), 3u);
  EXPECT_EQ(log.Blocked().size(), 1u);
  EXPECT_EQ(log.Blocked()[0]->at.seconds(), 20);
  EXPECT_EQ(log.ForCategory(DeviceCategory::kWindowAndLock).size(), 3u);
  EXPECT_EQ(log.Between(SimTime(15), SimTime(30)).size(), 1u);
  EXPECT_DOUBLE_EQ(log.BlockRate(), 0.5);  // 1 of 2 sensitive judgements blocked
}

TEST(AuditLog, RingCapacity) {
  AuditLog log(/*capacity=*/5);
  for (int i = 0; i < 12; ++i) log.Append(MakeRecord(i, "x", true, true));
  EXPECT_EQ(log.size(), 5u);
  EXPECT_EQ(log.total_appended(), 12u);
  EXPECT_EQ(log.records().front().at.seconds(), 7);  // oldest surviving
}

TEST(AuditLog, ExportFormats) {
  AuditLog log;
  log.Append(MakeRecord(10, "window.open", true, false));
  const Json json = log.ToJson();
  ASSERT_TRUE(json.is_array());
  EXPECT_EQ(json.as_array()[0].string_or("instruction", ""), "window.open");
  EXPECT_FALSE(json.as_array()[0].bool_or("allowed", true));

  const std::string csv = log.ToCsv();
  EXPECT_NE(csv.find("at_seconds,instruction"), std::string::npos);
  EXPECT_NE(csv.find("window.open"), std::string::npos);
}

TEST(AuditLog, NdjsonRecordRoundTripsBitExactly) {
  AuditRecord record = MakeRecord(42, "lock.unlock", true, false);
  record.degraded = true;
  record.consistency = 0.1234567890123456789;  // exercises %.17g round-trip
  record.reason = "context consistency 0.123 below threshold\n\"quoted\"";

  const std::string line = record.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);  // one record = one line
  const Result<AuditRecord> reloaded = AuditRecord::FromJsonLine(line);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message();
  EXPECT_EQ(reloaded.value(), record);

  EXPECT_FALSE(AuditRecord::FromJsonLine("{not json").ok());
  EXPECT_FALSE(AuditRecord::FromJsonLine("[1,2]").ok());
}

TEST(AuditLog, NdjsonLogRoundTripsLosslessly) {
  AuditLog log;
  log.Append(MakeRecord(10, "window.open", true, true));
  log.Append(MakeRecord(20, "window.open", true, false));
  AuditRecord degraded = MakeRecord(30, "camera.off", true, false);
  degraded.degraded = true;
  log.Append(degraded);

  const std::string ndjson = log.ToNdjson();
  const Result<AuditLog> reloaded = AuditLog::FromNdjson(ndjson);
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message();
  ASSERT_EQ(reloaded.value().size(), log.size());
  for (std::size_t i = 0; i < log.size(); ++i) {
    EXPECT_EQ(reloaded.value().records()[i], log.records()[i]) << "record " << i;
  }
  // Re-export is byte-identical: nothing was lost or reformatted.
  EXPECT_EQ(reloaded.value().ToNdjson(), ndjson);
  // Capacity applies on load like on append (ring semantics).
  const Result<AuditLog> clipped = AuditLog::FromNdjson(ndjson, /*capacity=*/2);
  ASSERT_TRUE(clipped.ok());
  EXPECT_EQ(clipped.value().size(), 2u);
  EXPECT_EQ(clipped.value().records().front().at.seconds(), 20);
}

TEST(AuditLog, IdsRecordsEveryJudgement) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> ids = BuildIdsFromScratch(registry, 33);
  ASSERT_TRUE(ids.ok());
  AuditLog audit;
  ids.value().SetAuditLog(&audit);

  SmartHome home = BuildDemoHome(44);
  home.Step(kSecondsPerHour);
  (void)ids.value().Judge(*registry.FindByName("tv.on"), home.Snapshot(), home.now());
  (void)ids.value().Judge(*registry.FindByName("window.open"), home.Snapshot(), home.now());
  // Error path (empty snapshot) is audited conservatively as blocked.
  (void)ids.value().Judge(*registry.FindByName("window.open"), SensorSnapshot(), home.now());

  ASSERT_EQ(audit.size(), 3u);
  EXPECT_FALSE(audit.records()[0].sensitive);  // tv.on
  EXPECT_TRUE(audit.records()[1].sensitive);
  EXPECT_FALSE(audit.records()[2].allowed);
  EXPECT_NE(audit.records()[2].reason.find("judgement error"), std::string::npos);
}

// --- Gateway-side guarded execution ----------------------------------------------

class GatewayControlTest : public ::testing::Test {
 protected:
  GatewayControlTest()
      : registry_(BuildStandardInstructionSet()), home_(BuildDemoHome(55)),
        gateway_(0xC0DE, home_) {
    home_.Step(kSecondsPerHour * 2);
    gateway_.BindTo(transport_, "udp://gw");
  }

  Result<Json> Execute(MiioClient& client, const char* name) {
    Json params = Json::Array();
    params.as_array().push_back(std::string(name));
    return client.Call("execute", std::move(params));
  }

  InstructionRegistry registry_;
  SmartHome home_;
  InMemoryTransport transport_{11};
  MiioGateway gateway_;
};

TEST_F(GatewayControlTest, DisabledByDefault) {
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  EXPECT_FALSE(Execute(client, "tv.on").ok());  // method not found
}

TEST_F(GatewayControlTest, ExecutesWithoutGuard) {
  gateway_.EnableControl(&registry_, nullptr);
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  Result<Json> result = Execute(client, "tv.on");
  ASSERT_TRUE(result.ok()) << result.error().message();
  EXPECT_TRUE(home_.FindDevice("living_tv")->IsOn("on"));
  EXPECT_EQ(gateway_.executions(), 1u);
}

TEST_F(GatewayControlTest, GuardBlocksAtTheGateway) {
  Result<ContextIds> ids = BuildIdsFromScratch(registry_, 66);
  ASSERT_TRUE(ids.ok());
  gateway_.EnableControl(&registry_, ids.value().AsGuard());

  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());

  // Spoofed smoke + attempt to open the window through the gateway RPC.
  home_.FindSensor("kitchen_smoke")->Spoof(SensorValue::Binary(true));
  Result<Json> blocked = Execute(client, "window.open");
  EXPECT_FALSE(blocked.ok());
  EXPECT_NE(blocked.error().message().find("blocked"), std::string::npos);
  EXPECT_FALSE(home_.FindDevice("living_window_motor")->IsOn("open"));
  EXPECT_EQ(gateway_.blocked_executions(), 1u);
  home_.FindSensor("kitchen_smoke")->ClearSpoof();

  // A real fire: the same RPC goes through.
  home_.StartFire();
  home_.Step(12 * kSecondsPerMinute);
  Result<Json> allowed = Execute(client, "window.open");
  ASSERT_TRUE(allowed.ok()) << allowed.error().message();
  EXPECT_TRUE(home_.FindDevice("living_window_motor")->IsOn("open"));
}

TEST_F(GatewayControlTest, UnknownInstructionIsRpcError) {
  gateway_.EnableControl(&registry_, nullptr);
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  EXPECT_FALSE(Execute(client, "warp.drive").ok());
  EXPECT_EQ(gateway_.executions(), 0u);
}

// --- Online update (feedback loop) ------------------------------------------------

TEST(OnlineUpdate, FeedbackFlipsARecurringFalseBlock) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> base = BuildIdsFromScratch(registry, 77);
  ASSERT_TRUE(base.ok());

  // An unusual-but-legitimate habit: TV on at 05:00 on weekdays.
  SensorSnapshot context;
  context.Set("occupancy", SensorType::kOccupancy, SensorValue::Binary(true));
  context.Set("motion", SensorType::kMotion, SensorValue::Binary(false));
  context.Set("noise_level", SensorType::kNoiseLevel, SensorValue::Continuous(31));
  context.Set("voice_command", SensorType::kVoiceCommand, SensorValue::Binary(false));
  const SimTime five_am = SimTime::FromDayTime(1, 5);
  const Instruction* kettle = registry.FindByName("kettle.boil");

  SensorSnapshot kitchen;
  kitchen.Set("occupancy", SensorType::kOccupancy, SensorValue::Binary(true));
  kitchen.Set("motion", SensorType::kMotion, SensorValue::Binary(false));
  kitchen.Set("voice_command", SensorType::kVoiceCommand, SensorValue::Binary(false));

  Result<Judgement> before = base.value().Judge(*kettle, kitchen, five_am);
  ASSERT_TRUE(before.ok());
  ASSERT_FALSE(before.value().allowed) << "expected an initial false block";

  FeedbackBuffer feedback;
  for (int day = 0; day < 10; ++day) {
    ASSERT_TRUE(feedback
                    .Record(DeviceCategory::kKitchen, "kettle.boil", kitchen,
                            SimTime::FromDayTime(day, 5), /*legitimate=*/true)
                    .ok());
  }
  EXPECT_EQ(feedback.total(), 10u);
  EXPECT_EQ(feedback.CountFor(DeviceCategory::kKitchen), 10u);

  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(corpus.ok());
  ContextFeatureMemory memory =
      ContextFeatureMemory::FromJson(base.value().memory().ToJson()).value();
  ASSERT_TRUE(RetrainWithFeedback(memory, corpus.value().corpus, feedback).ok());

  ContextIds updated(SensitiveInstructionDetector(PaperTableThree()), std::move(memory));
  Result<Judgement> after = updated.Judge(*kettle, kitchen, five_am);
  ASSERT_TRUE(after.ok());
  EXPECT_TRUE(after.value().allowed);
}

TEST(OnlineUpdate, RecordValidatesSnapshot) {
  FeedbackBuffer feedback;
  EXPECT_FALSE(feedback
                   .Record(DeviceCategory::kKitchen, "kettle.boil", SensorSnapshot(),
                           SimTime(), true)
                   .ok());
  EXPECT_EQ(feedback.total(), 0u);
  feedback.Clear();
  EXPECT_TRUE(feedback.Categories().empty());
}

}  // namespace
}  // namespace sidet
