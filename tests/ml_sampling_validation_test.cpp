#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>

#include "ml/decision_tree.h"
#include "ml/sampling.h"
#include "ml/validation.h"

namespace sidet {
namespace {

std::vector<FeatureSpec> Specs() {
  return {FeatureSpec{"x", false, {}}, FeatureSpec{"c", true, {"p", "q"}}};
}

Dataset Imbalanced(Rng& rng, int majority, int minority) {
  Dataset data(Specs());
  for (int i = 0; i < majority; ++i) data.Add({rng.Normal(1, 0.5), 0}, 1);
  for (int i = 0; i < minority; ++i) data.Add({rng.Normal(-1, 0.5), 1}, 0);
  return data;
}

class OversampleRatioTest : public ::testing::TestWithParam<double> {};

TEST_P(OversampleRatioTest, RandomOversampleHitsTargetRatio) {
  Rng rng(1);
  const Dataset data = Imbalanced(rng, 900, 100);
  const Dataset balanced = RandomOversample(data, rng, GetParam());
  const double minority = static_cast<double>(balanced.CountLabel(0));
  const double majority = static_cast<double>(balanced.CountLabel(1));
  EXPECT_EQ(majority, 900);  // majority untouched
  EXPECT_NEAR(minority / majority, GetParam(), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Ratios, OversampleRatioTest, ::testing::Values(0.25, 0.5, 0.75, 1.0));

TEST(RandomOversample, DuplicatesComeFromMinority) {
  Rng rng(2);
  const Dataset data = Imbalanced(rng, 50, 5);
  const Dataset balanced = RandomOversample(data, rng);
  // Every synthetic row equals one of the original minority rows.
  std::set<double> minority_values;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.label(i) == 0) minority_values.insert(data.row(i)[0]);
  }
  for (std::size_t i = 0; i < balanced.size(); ++i) {
    if (balanced.label(i) == 0) {
      EXPECT_TRUE(minority_values.count(balanced.row(i)[0])) << "row " << i;
    }
  }
}

TEST(RandomOversample, NoOpOnBalancedOrDegenerate) {
  Rng rng(3);
  const Dataset balanced = Imbalanced(rng, 100, 100);
  EXPECT_EQ(RandomOversample(balanced, rng).size(), 200u);

  Dataset one_class(Specs());
  one_class.Add({1, 0}, 1);
  EXPECT_EQ(RandomOversample(one_class, rng).size(), 1u);
}

TEST(Smote, SyntheticRowsInterpolateNumericFeatures) {
  Rng rng(4);
  const Dataset data = Imbalanced(rng, 400, 40);
  double lo = 1e9;
  double hi = -1e9;
  for (std::size_t i = 0; i < data.size(); ++i) {
    if (data.label(i) == 0) {
      lo = std::min(lo, data.row(i)[0]);
      hi = std::max(hi, data.row(i)[0]);
    }
  }
  const Dataset balanced = SmoteOversample(data, rng);
  EXPECT_EQ(balanced.CountLabel(0), balanced.CountLabel(1));
  // All synthetic minority x-values stay within the minority's convex hull.
  for (std::size_t i = data.size(); i < balanced.size(); ++i) {
    EXPECT_EQ(balanced.label(i), 0);
    EXPECT_GE(balanced.row(i)[0], lo - 1e-9);
    EXPECT_LE(balanced.row(i)[0], hi + 1e-9);
    // Categorical features copy a parent value, never interpolate.
    const double c = balanced.row(i)[1];
    EXPECT_TRUE(c == 0.0 || c == 1.0);
  }
}

TEST(Smote, TinyMinorityFallsBackGracefully) {
  Rng rng(5);
  Dataset data(Specs());
  for (int i = 0; i < 20; ++i) data.Add({1.0, 0}, 1);
  data.Add({-1.0, 1}, 0);  // single minority row: SMOTE impossible
  const Dataset balanced = SmoteOversample(data, rng);
  EXPECT_EQ(balanced.CountLabel(0), balanced.CountLabel(1));
}

TEST(RandomUndersample, ShrinksMajorityOnly) {
  Rng rng(6);
  const Dataset data = Imbalanced(rng, 500, 50);
  const Dataset reduced = RandomUndersample(data, rng);
  EXPECT_EQ(reduced.CountLabel(0), 50u);
  EXPECT_EQ(reduced.CountLabel(1), 50u);
}

TEST(StratifiedSplit, PreservesClassProportions) {
  Rng rng(7);
  const Dataset data = Imbalanced(rng, 700, 300);
  const TrainTestSplit split = StratifiedSplit(data, 0.3, rng);
  EXPECT_EQ(split.train.size() + split.test.size(), data.size());
  EXPECT_NEAR(split.test.size() / static_cast<double>(data.size()), 0.3, 0.01);
  EXPECT_NEAR(split.test.CountLabel(0) / static_cast<double>(split.test.size()), 0.3, 0.02);
  EXPECT_NEAR(split.train.CountLabel(0) / static_cast<double>(split.train.size()), 0.3, 0.02);
}

TEST(StratifiedFolds, EveryRowAssignedBalancedFolds) {
  Rng rng(8);
  const Dataset data = Imbalanced(rng, 80, 40);
  const std::vector<int> folds = StratifiedFolds(data, 4, rng);
  ASSERT_EQ(folds.size(), data.size());
  int counts[4] = {};
  for (const int f : folds) {
    ASSERT_GE(f, 0);
    ASSERT_LT(f, 4);
    ++counts[f];
  }
  for (const int c : counts) EXPECT_EQ(c, 30);
}

TEST(CrossValidate, ProducesPerFoldAndPooledMetrics) {
  Rng rng(9);
  const Dataset data = Imbalanced(rng, 400, 200);  // cleanly separable
  const CrossValidationResult result = CrossValidate(
      data, [] { return std::make_unique<DecisionTree>(); }, 5, rng);
  EXPECT_EQ(result.fold_metrics.size(), 5u);
  EXPECT_GT(result.mean_accuracy, 0.95);
  EXPECT_GT(result.pooled.accuracy, 0.95);
  EXPECT_EQ(result.pooled.confusion.total(), static_cast<long>(data.size()));
}

TEST(CrossValidate, RebalanceHookOnlyTouchesTraining) {
  Rng rng(10);
  const Dataset data = Imbalanced(rng, 300, 30);
  bool hook_called = false;
  const CrossValidationResult result = CrossValidate(
      data, [] { return std::make_unique<DecisionTree>(); }, 3, rng,
      [&hook_called](const Dataset& d, Rng& r) {
        hook_called = true;
        return RandomOversample(d, r);
      });
  EXPECT_TRUE(hook_called);
  // Held-out predictions still cover exactly the original rows.
  EXPECT_EQ(result.pooled.confusion.total(), static_cast<long>(data.size()));
}

}  // namespace
}  // namespace sidet
