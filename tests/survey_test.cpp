#include "survey/survey.h"

#include <gtest/gtest.h>

namespace sidet {
namespace {

TEST(Survey, ReproducesTableThreeWithinSamplingNoise) {
  SurveySimulator simulator(SurveyCalibration{}, 1);
  // Large n shrinks multinomial noise; fractions must converge to Table III.
  const SurveyResults results = simulator.Run(20000);
  const ThreatProfile paper = PaperTableThree();
  for (const DeviceCategory category : AllDeviceCategories()) {
    const ThreatDistribution measured =
        results.control[static_cast<std::size_t>(category)].ToDistribution();
    const ThreatDistribution& expected = paper.Of(category);
    const double norm = expected.high + expected.low + expected.none;
    EXPECT_NEAR(measured.high, expected.high / norm, 0.02) << DisplayName(category);
    EXPECT_NEAR(measured.low, expected.low / norm, 0.02) << DisplayName(category);
    EXPECT_NEAR(measured.none, expected.none / norm, 0.02) << DisplayName(category);
  }
}

TEST(Survey, HeadlineStatisticsCalibrated) {
  SurveySimulator simulator(SurveyCalibration{}, 2);
  const SurveyResults results = simulator.Run(20000);
  EXPECT_NEAR(results.control_more_threatening_fraction, 0.8529, 0.01);
  EXPECT_NEAR(results.coverage_fraction, 0.9118, 0.01);
}

TEST(Survey, PaperScaleRunIsPlausible) {
  SurveySimulator simulator(SurveyCalibration{}, 3);
  const SurveyResults results = simulator.Run(340);
  EXPECT_EQ(results.respondents, 340);
  // With n=340 the top categories must stay clearly sensitive and the bottom
  // ones clearly not, even under sampling noise.
  const ThreatProfile profile = results.ToThreatProfile();
  EXPECT_TRUE(profile.IsSensitive(DeviceCategory::kWindowAndLock));
  EXPECT_TRUE(profile.IsSensitive(DeviceCategory::kSecurityCamera));
  EXPECT_FALSE(profile.IsSensitive(DeviceCategory::kEntertainment));
}

TEST(Survey, StatusRatingsShiftedBelowControl) {
  SurveySimulator simulator(SurveyCalibration{}, 4);
  const SurveyResults results = simulator.Run(5000);
  for (const DeviceCategory category : AllDeviceCategories()) {
    const auto index = static_cast<std::size_t>(category);
    EXPECT_LT(results.status[index].fraction(ThreatLevel::kHigh),
              results.control[index].fraction(ThreatLevel::kHigh))
        << DisplayName(category);
  }
}

TEST(Survey, CameraStatusThreatStaysElevated) {
  SurveySimulator simulator(SurveyCalibration{}, 5);
  const SurveyResults results = simulator.Run(5000);
  double best_other = 0.0;
  for (const DeviceCategory category : AllDeviceCategories()) {
    if (category == DeviceCategory::kSecurityCamera) continue;
    best_other = std::max(
        best_other, results.status[static_cast<std::size_t>(category)].fraction(ThreatLevel::kHigh));
  }
  EXPECT_GT(results.status[static_cast<std::size_t>(DeviceCategory::kSecurityCamera)].fraction(
                ThreatLevel::kHigh),
            best_other);
}

TEST(Survey, StatusDistributionIsProperDistribution) {
  SurveySimulator simulator(SurveyCalibration{}, 6);
  for (const DeviceCategory category : AllDeviceCategories()) {
    const ThreatDistribution d = simulator.StatusDistribution(category);
    EXPECT_GE(d.high, 0.0);
    EXPECT_GE(d.low, 0.0);
    EXPECT_GE(d.none, 0.0);
    EXPECT_NEAR(d.high + d.low + d.none, 1.0, 0.02) << DisplayName(category);
  }
}

TEST(Survey, RespondentsOwnAtLeastOneDevice) {
  SurveySimulator simulator(SurveyCalibration{}, 7);
  for (int i = 0; i < 200; ++i) {
    const Respondent respondent = simulator.SampleRespondent();
    EXPECT_GE(respondent.devices_owned, 1);
    EXPECT_LE(respondent.devices_in_catalogue, respondent.devices_owned);
  }
}

TEST(Survey, DeterministicForSeed) {
  SurveySimulator a(SurveyCalibration{}, 42);
  SurveySimulator b(SurveyCalibration{}, 42);
  const SurveyResults ra = a.Run(340);
  const SurveyResults rb = b.Run(340);
  for (std::size_t c = 0; c < kDeviceCategoryCount; ++c) {
    EXPECT_EQ(ra.control[c].counts, rb.control[c].counts);
    EXPECT_EQ(ra.status[c].counts, rb.status[c].counts);
  }
  EXPECT_EQ(ra.coverage_fraction, rb.coverage_fraction);
}

TEST(Survey, TalliesSumToRespondentCount) {
  SurveySimulator simulator(SurveyCalibration{}, 8);
  const SurveyResults results = simulator.Run(340);
  for (std::size_t c = 0; c < kDeviceCategoryCount; ++c) {
    EXPECT_EQ(results.control[c].total(), 340);
    EXPECT_EQ(results.status[c].total(), 340);
  }
}

}  // namespace
}  // namespace sidet
