#include <gtest/gtest.h>

#include "ml/random_forest.h"
#include "ml/roc.h"
#include "util/rng.h"

namespace sidet {
namespace {

std::vector<FeatureSpec> Specs() {
  return {FeatureSpec{"x", false, {}}, FeatureSpec{"y", false, {}},
          FeatureSpec{"c", true, {"a", "b"}}};
}

Dataset Noisy(Rng& rng, int n, double flip = 0.0) {
  // label = (x > 0.5) xor-noise; y pure noise; c correlated with the label.
  Dataset data(Specs());
  for (int i = 0; i < n; ++i) {
    const double x = rng.UniformDouble();
    int label = x > 0.5 ? 1 : 0;
    if (flip > 0 && rng.Bernoulli(flip)) label = 1 - label;
    const double c = rng.Bernoulli(label == 1 ? 0.7 : 0.3) ? 1.0 : 0.0;
    data.Add({x, rng.UniformDouble(), c}, label);
  }
  return data;
}

TEST(RandomForest, LearnsAndVotes) {
  Rng rng(1);
  const Dataset train = Noisy(rng, 800);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(train).ok());
  EXPECT_EQ(forest.size(), 25u);

  const Dataset test = Noisy(rng, 400);
  int correct = 0;
  for (std::size_t i = 0; i < test.size(); ++i) {
    correct += forest.Predict(test.row(i)) == test.label(i);
  }
  EXPECT_GT(correct, 370);
}

TEST(RandomForest, ProbabilityIsEnsembleMean) {
  Rng rng(2);
  const Dataset train = Noisy(rng, 500, /*flip=*/0.1);
  RandomForestParams fifteen;
  fifteen.trees = 15;
  RandomForest forest(fifteen);
  ASSERT_TRUE(forest.Fit(train).ok());
  // With label noise the ensemble produces genuinely intermediate scores.
  int intermediate = 0;
  for (int i = 0; i < 200; ++i) {
    const double p =
        forest.PredictProbability(std::vector<double>{rng.UniformDouble(), 0.5, 0.0});
    ASSERT_GE(p, 0.0);
    ASSERT_LE(p, 1.0);
    if (p > 0.05 && p < 0.95) ++intermediate;
  }
  EXPECT_GT(intermediate, 10);
}

TEST(RandomForest, ImportancesIdentifyTheSignalFeature) {
  Rng rng(3);
  const Dataset train = Noisy(rng, 800);
  RandomForest forest;
  ASSERT_TRUE(forest.Fit(train).ok());
  const std::vector<double>& importances = forest.feature_importances();
  double sum = 0.0;
  for (const double w : importances) sum += w;
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(importances[0], importances[1]);  // x beats pure-noise y
}

TEST(RandomForest, DeterministicForSeedAndFailsOnEmpty) {
  Rng rng(4);
  const Dataset train = Noisy(rng, 300);
  RandomForestParams five;
  five.trees = 5;
  five.seed = 9;
  RandomForest a(five);
  RandomForest b(five);
  ASSERT_TRUE(a.Fit(train).ok());
  ASSERT_TRUE(b.Fit(train).ok());
  for (int i = 0; i < 50; ++i) {
    const std::vector<double> row = {rng.UniformDouble(), rng.UniformDouble(), 0.0};
    EXPECT_DOUBLE_EQ(a.PredictProbability(row), b.PredictProbability(row));
  }
  RandomForest empty_forest;
  EXPECT_FALSE(empty_forest.Fit(Dataset(Specs())).ok());
}

TEST(RandomForest, MaxFeaturesRespected) {
  Rng rng(5);
  const Dataset train = Noisy(rng, 200);
  RandomForestParams narrow;
  narrow.trees = 3;
  narrow.max_features = 1;
  RandomForest forest(narrow);
  ASSERT_TRUE(forest.Fit(train).ok());
  SUCCEED();  // structural check is internal; fitting at all proves projection works
}

// --- ROC ---------------------------------------------------------------------

TEST(Roc, PerfectSeparationGivesAucOne) {
  const std::vector<double> scores = {0.9, 0.8, 0.7, 0.2, 0.1};
  const std::vector<int> labels = {1, 1, 1, 0, 0};
  const RocCurve curve = ComputeRoc(scores, labels);
  EXPECT_NEAR(curve.auc, 1.0, 1e-9);
}

TEST(Roc, ReversedScoresGiveAucZero) {
  const std::vector<double> scores = {0.1, 0.2, 0.9};
  const std::vector<int> labels = {1, 1, 0};
  EXPECT_NEAR(ComputeRoc(scores, labels).auc, 0.0, 1e-9);
}

TEST(Roc, RandomScoresNearHalf) {
  Rng rng(6);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    scores.push_back(rng.UniformDouble());
    labels.push_back(rng.Bernoulli(0.5) ? 1 : 0);
  }
  EXPECT_NEAR(ComputeRoc(scores, labels).auc, 0.5, 0.05);
}

TEST(Roc, CurveIsMonotone) {
  Rng rng(7);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 500; ++i) {
    const int label = rng.Bernoulli(0.4) ? 1 : 0;
    scores.push_back(rng.Normal(label == 1 ? 0.7 : 0.3, 0.2));
    labels.push_back(label);
  }
  const RocCurve curve = ComputeRoc(scores, labels);
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    EXPECT_GE(curve.points[i].tpr + 1e-12, curve.points[i - 1].tpr);
    EXPECT_GE(curve.points[i].fpr + 1e-12, curve.points[i - 1].fpr);
  }
  EXPECT_GT(curve.auc, 0.7);
}

TEST(Roc, DegenerateSingleClass) {
  const std::vector<double> scores = {0.3, 0.6};
  const std::vector<int> ones = {1, 1};
  EXPECT_NEAR(ComputeRoc(scores, ones).auc, 0.5, 1e-9);
}

TEST(Roc, MetricsAtThresholdMatchesManualCount) {
  const std::vector<double> scores = {0.9, 0.6, 0.4, 0.1};
  const std::vector<int> labels = {1, 0, 1, 0};
  const BinaryMetrics at_half = MetricsAtThreshold(scores, labels, 0.5);
  EXPECT_EQ(at_half.confusion.tp, 1);
  EXPECT_EQ(at_half.confusion.fp, 1);
  EXPECT_EQ(at_half.confusion.fn, 1);
  EXPECT_EQ(at_half.confusion.tn, 1);

  const BinaryMetrics strict = MetricsAtThreshold(scores, labels, 0.95);
  EXPECT_EQ(strict.confusion.tp + strict.confusion.fp, 0);
}

TEST(Roc, ThresholdForFprBoundsFalseAlarms) {
  Rng rng(8);
  std::vector<double> scores;
  std::vector<int> labels;
  for (int i = 0; i < 2000; ++i) {
    const int label = rng.Bernoulli(0.5) ? 1 : 0;
    scores.push_back(std::clamp(rng.Normal(label == 1 ? 0.65 : 0.35, 0.15), 0.0, 1.0));
    labels.push_back(label);
  }
  const double threshold = ThresholdForFpr(scores, labels, 0.02);
  const BinaryMetrics metrics = MetricsAtThreshold(scores, labels, threshold);
  EXPECT_LE(metrics.fpr, 0.025);
  EXPECT_GT(metrics.recall, 0.2);  // still catches a useful share
}

}  // namespace
}  // namespace sidet
