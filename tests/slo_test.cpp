// SLO burn-rate engine: histogram good-event interpolation, the multi-window
// burn-rate math over cumulative samples (hand-cranked clock), gauge export
// through the Prometheus exposition, composition with the AlertEvaluator via
// SloBurnAlerts, and the acceptance sweep — the stock gateway objectives fire
// under a deterministic overload and stay silent on nominal load.
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>

#include "replay/drift_monitor.h"
#include "server/batcher.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/slo.h"

namespace sidet {
namespace {

const SloState* FindState(const std::vector<SloState>& states, const std::string& name) {
  for (const SloState& state : states) {
    if (state.name == name) return &state;
  }
  return nullptr;
}

TEST(SloHistogram, GoodAtOrBelowInterpolatesInsideTheCrossingBucket) {
  MetricsRegistry registry;
  Histogram* histogram = registry.GetHistogram("slo_test_seconds", "", {1.0, 2.0, 4.0});
  histogram->Observe(0.5);   // bucket [0, 1]
  histogram->Observe(1.5);   // bucket (1, 2]
  histogram->Observe(3.0);   // bucket (2, 4]
  histogram->Observe(10.0);  // +Inf overflow

  EXPECT_DOUBLE_EQ(HistogramGoodAtOrBelow(*histogram, 2.0), 2.0);  // exact boundary
  EXPECT_DOUBLE_EQ(HistogramGoodAtOrBelow(*histogram, 3.0), 2.5);  // half of (2,4]
  EXPECT_DOUBLE_EQ(HistogramGoodAtOrBelow(*histogram, 0.5), 0.5);  // half of [0,1]
  // At/past the last finite bound the overflow bucket stays bad.
  EXPECT_DOUBLE_EQ(HistogramGoodAtOrBelow(*histogram, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(HistogramGoodAtOrBelow(*histogram, 100.0), 3.0);
}

TEST(SloEngine, BurnRateIsBadFractionOverBudget) {
  MetricsRegistry registry;
  Counter* bad = registry.GetCounter("test_bad_total");
  Counter* total = registry.GetCounter("test_total");

  std::int64_t now_us = 0;
  SloEngine engine({{60, 1.0}, {600, 1.0}}, [&now_us] { return now_us; });
  SloObjective objective;
  objective.name = "ratio";
  objective.kind = SloObjective::Kind::kBadRatio;
  objective.bad_metric = "test_bad_total";
  objective.total_metric = "test_total";
  objective.objective = 0.99;  // budget = 0.01
  engine.AddObjective(objective);

  // First evaluation: a single sample cannot span a window yet.
  total->Increment(100);
  std::vector<SloState> states = engine.Evaluate(registry);
  ASSERT_EQ(states.size(), 1u);
  EXPECT_FALSE(states[0].firing);
  EXPECT_FALSE(states[0].windows[0].has_data);

  // +30s: 100 more requests, 5 of them bad => bad_fraction 0.05, burn 5.0.
  now_us = 30'000'000;
  total->Increment(100);
  bad->Increment(5);
  states = engine.Evaluate(registry);
  ASSERT_EQ(states[0].windows.size(), 2u);
  EXPECT_TRUE(states[0].windows[0].has_data);
  EXPECT_NEAR(states[0].windows[0].bad_fraction, 0.05, 1e-9);
  EXPECT_NEAR(states[0].windows[0].burn_rate, 5.0, 1e-6);
  EXPECT_TRUE(states[0].firing);  // both windows burn at 5x threshold 1.0
}

TEST(SloEngine, MultiWindowAndSuppressesStalePages) {
  MetricsRegistry registry;
  Counter* bad = registry.GetCounter("test_bad_total");
  Counter* total = registry.GetCounter("test_total");

  std::int64_t now_us = 0;
  SloEngine engine({{10, 1.0}, {1000, 1.0}}, [&now_us] { return now_us; });
  SloObjective objective;
  objective.name = "ratio";
  objective.kind = SloObjective::Kind::kBadRatio;
  objective.bad_metric = "test_bad_total";
  objective.total_metric = "test_total";
  objective.objective = 0.99;
  engine.AddObjective(objective);

  engine.Evaluate(registry);  // baseline sample at t=0

  // t=5s: an error burst. Both windows see it: firing.
  now_us = 5'000'000;
  total->Increment(1000);
  bad->Increment(100);
  std::vector<SloState> burst = engine.Evaluate(registry);
  EXPECT_TRUE(burst[0].firing);

  // t=20s: the burst ended 15s ago; clean traffic since. The short window
  // has recovered (burn 0) even though the long window still carries the
  // burst — the multi-window AND keeps the page from staying up stale.
  now_us = 20'000'000;
  total->Increment(1000);
  std::vector<SloState> recovered = engine.Evaluate(registry);
  EXPECT_NEAR(recovered[0].windows[0].burn_rate, 0.0, 1e-9);  // 10s window
  EXPECT_GT(recovered[0].windows[1].burn_rate, 1.0);          // 1000s window
  EXPECT_FALSE(recovered[0].firing);
}

TEST(SloEngine, LatencyObjectiveCountsSlowEventsAsBad) {
  MetricsRegistry registry;
  Histogram* latency =
      registry.GetHistogram("test_latency_seconds", "", {0.001, 0.002, 0.01});

  std::int64_t now_us = 0;
  SloEngine engine({{60, 1.0}}, [&now_us] { return now_us; });
  SloObjective objective;
  objective.name = "latency";
  objective.kind = SloObjective::Kind::kLatencyBound;
  objective.metric = "test_latency_seconds";
  objective.latency_bound_seconds = 0.002;
  objective.objective = 0.95;  // budget = 0.05
  engine.AddObjective(objective);

  engine.Evaluate(registry);  // baseline on the empty histogram

  now_us = 30'000'000;
  for (int i = 0; i < 90; ++i) latency->Observe(0.0005);  // good
  for (int i = 0; i < 10; ++i) latency->Observe(0.005);   // bad (over 2ms)
  std::vector<SloState> states = engine.Evaluate(registry);
  EXPECT_NEAR(states[0].windows[0].bad_fraction, 0.10, 1e-9);
  EXPECT_NEAR(states[0].windows[0].burn_rate, 2.0, 1e-6);
  EXPECT_TRUE(states[0].firing);

  // The same traffic under a looser bound is all good.
  SloEngine loose({{60, 1.0}}, [&now_us] { return now_us; });
  SloObjective relaxed = objective;
  relaxed.latency_bound_seconds = 0.01;
  loose.AddObjective(relaxed);
  loose.Evaluate(registry);
  now_us = 60'000'000;
  for (int i = 0; i < 50; ++i) latency->Observe(0.005);  // good under 10ms
  std::vector<SloState> quiet = loose.Evaluate(registry);
  EXPECT_NEAR(quiet[0].windows[0].burn_rate, 0.0, 1e-9);
  EXPECT_FALSE(quiet[0].firing);
}

TEST(SloEngine, WritesGaugesAndComposesWithAlertEvaluator) {
  MetricsRegistry registry;
  Counter* bad = registry.GetCounter("test_bad_total");
  Counter* total = registry.GetCounter("test_total");

  std::int64_t now_us = 0;
  SloEngine engine({{60, 1.0}}, [&now_us] { return now_us; });
  SloObjective objective;
  objective.name = "availability";
  objective.kind = SloObjective::Kind::kBadRatio;
  objective.bad_metric = "test_bad_total";
  objective.total_metric = "test_total";
  objective.objective = 0.999;
  engine.AddObjective(objective);

  engine.Evaluate(registry);
  now_us = 30'000'000;
  total->Increment(100);
  bad->Increment(50);
  const std::vector<SloState> states = engine.Evaluate(registry);
  ASSERT_TRUE(states[0].firing);

  // The burn gauges ride the exporters.
  const std::string exposition = PrometheusText(registry);
  EXPECT_NE(exposition.find("sidet_slo_burn_rate"), std::string::npos);
  EXPECT_NE(exposition.find("sidet_slo_bad_fraction"), std::string::npos);
  EXPECT_NE(exposition.find("sidet_slo_firing{slo=\"availability\"} 1"),
            std::string::npos)
      << exposition;

  // SloBurnAlerts turns the firing gauge into a standard alert.
  AlertEvaluator alerts;
  for (AlertRule& rule : SloBurnAlerts({"availability"})) {
    alerts.AddRule(std::move(rule));
  }
  const std::vector<AlertState> alert_states = alerts.Evaluate(registry);
  ASSERT_EQ(alert_states.size(), 1u);
  EXPECT_EQ(alert_states[0].name, "slo_burn_availability");
  EXPECT_TRUE(alert_states[0].has_data);
  EXPECT_TRUE(alert_states[0].firing);

  // StatesJson round-trips the shape the stats surface exports.
  const Json json = SloEngine::StatesJson(states);
  ASSERT_TRUE(json.is_array());
  EXPECT_EQ(json.as_array()[0].string_or("slo", ""), "availability");
  EXPECT_TRUE(json.as_array()[0].bool_or("firing", false));
}

// The acceptance sweep: the stock gateway objectives over a lane driven
// deterministically into overload fire their burn gauges; the same
// objectives over nominal traffic stay silent. Each phase gets its own
// registry because the counters are cumulative.
TEST(SloEngine, GatewayObjectivesFireUnderOverloadAndStaySilentNominal) {
  const auto run_phase = [](bool overload) {
    MetricsRegistry registry;
    // The metrics the gateway serving path would feed: request/backlog
    // counters plus the wire-to-wire latency histogram.
    Counter* requests = registry.GetCounter("sidet_gateway_requests_total", "",
                                            "Parsed request lines");
    Counter* backlog = registry.GetCounter("sidet_gateway_backlog_shed_total", "",
                                           "Connection backlog sheds");
    Histogram* e2e = registry.GetHistogram("sidet_gateway_judge_e2e_seconds", "",
                                           {0.001, 0.002, 0.01, 0.1});

    BatchPolicy policy;
    policy.max_batch = 4;
    policy.min_delay_us = policy.max_delay_us = 0;
    policy.queue_capacity = overload ? 2 : 1024;
    MicroBatcher batcher(policy, [overload](std::span<const JudgeRequest> rows, int) {
      if (overload) {
        // A slow executor keeps the queue saturated so later submits shed.
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
      return std::vector<Judgement>(rows.size());
    });
    batcher.AttachTelemetry(&registry, "default", nullptr);

    std::int64_t now_us = 0;
    SloEngine engine(DefaultSloWindows(), [&now_us] { return now_us; });
    for (SloObjective& objective : DefaultGatewaySlos("default")) {
      engine.AddObjective(std::move(objective));
    }
    engine.Evaluate(registry);  // baseline

    Instruction instruction;
    instruction.opcode = 1;
    instruction.name = "light.on";
    for (int i = 0; i < 64; ++i) {
      requests->Increment();
      JudgeTask task;
      task.instruction = &instruction;
      task.time = SimTime(60);
      const Admission admission = batcher.Submit(std::move(task));
      if (admission == Admission::kShed) {
        // The gateway answers queue sheds with a 429 and a slow e2e stamp is
        // never produced; connection-backlog pressure tracks the same storm.
        backlog->Increment();
        e2e->Observe(0.05);
      } else {
        e2e->Observe(overload ? 0.05 : 0.0005);
      }
    }
    batcher.Drain();

    now_us = 60'000'000;  // one minute into both default windows
    return engine.Evaluate(registry);
  };

  const std::vector<SloState> hot = run_phase(/*overload=*/true);
  const SloState* availability = FindState(hot, "availability");
  const SloState* shed_rate = FindState(hot, "lane_shed_rate");
  const SloState* latency = FindState(hot, "judge_latency");
  ASSERT_NE(availability, nullptr);
  ASSERT_NE(shed_rate, nullptr);
  ASSERT_NE(latency, nullptr);
  EXPECT_TRUE(availability->firing);
  EXPECT_TRUE(shed_rate->firing);
  EXPECT_TRUE(latency->firing);

  const std::vector<SloState> calm = run_phase(/*overload=*/false);
  for (const SloState& state : calm) {
    EXPECT_FALSE(state.firing) << state.name;
    for (const SloWindowState& window : state.windows) {
      EXPECT_TRUE(window.has_data) << state.name;  // silent, not blind
    }
  }
}

}  // namespace
}  // namespace sidet
