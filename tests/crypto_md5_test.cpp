#include "crypto/md5.h"

#include <gtest/gtest.h>

namespace sidet {
namespace {

// The seven reference vectors from RFC 1321 §A.5.
struct Rfc1321Vector {
  const char* input;
  const char* digest;
};

class Md5Rfc1321Test : public ::testing::TestWithParam<Rfc1321Vector> {};

TEST_P(Md5Rfc1321Test, MatchesReferenceDigest) {
  EXPECT_EQ(Md5Hex(GetParam().input), GetParam().digest);
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, Md5Rfc1321Test,
    ::testing::Values(
        Rfc1321Vector{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Rfc1321Vector{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Rfc1321Vector{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Rfc1321Vector{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Rfc1321Vector{"abcdefghijklmnopqrstuvwxyz", "c3fcd3d76192e4007dfb496cca67e13b"},
        Rfc1321Vector{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789",
                      "d174ab98d277d9f5a5611c2c9f419d9f"},
        Rfc1321Vector{"1234567890123456789012345678901234567890123456789012345678901234567890123"
                      "4567890",
                      "57edf4a22be3c955ac49da2e2107b67a"}));

TEST(Md5, IncrementalMatchesOneShot) {
  const std::string text = "The quick brown fox jumps over the lazy dog";
  // Feed in awkward chunk sizes that straddle the 64-byte block boundary.
  for (const std::size_t chunk : {1u, 3u, 7u, 13u, 63u, 64u, 65u}) {
    Md5 hasher;
    for (std::size_t offset = 0; offset < text.size(); offset += chunk) {
      hasher.Update(std::string_view(text).substr(offset, chunk));
    }
    EXPECT_EQ(hasher.Finish(), Md5Sum(text)) << "chunk size " << chunk;
  }
}

TEST(Md5, KnownQuickBrownFox) {
  EXPECT_EQ(Md5Hex("The quick brown fox jumps over the lazy dog"),
            "9e107d9d372bb6826bd81d3542a419d6");
}

TEST(Md5, LongInputExercisesManyBlocks) {
  const std::string big(1 << 16, 'x');
  // Value pinned from an independent implementation run; guards regressions
  // in the multi-block path.
  Md5 hasher;
  hasher.Update(big);
  const Md5Digest digest = hasher.Finish();
  EXPECT_EQ(digest, Md5Sum(big));
  // 64 KiB of 'x' differs from 64 KiB - 1 of 'x'.
  EXPECT_NE(Md5Sum(big), Md5Sum(std::string((1 << 16) - 1, 'x')));
}

TEST(Md5, SingleBitChangesDigest) {
  const Md5Digest a = Md5Sum("context-a");
  const Md5Digest b = Md5Sum("context-b");
  EXPECT_NE(a, b);
}

TEST(Md5, ExactBlockBoundaryLengths) {
  // Lengths 55/56/57 straddle the padding boundary; 64 is a full block.
  for (const std::size_t n : {55u, 56u, 57u, 64u, 119u, 120u}) {
    const std::string text(n, 'q');
    Md5 incremental;
    incremental.Update(text.substr(0, n / 2));
    incremental.Update(text.substr(n / 2));
    EXPECT_EQ(incremental.Finish(), Md5Sum(text)) << "length " << n;
  }
}

}  // namespace
}  // namespace sidet
