#include <gtest/gtest.h>

#include "home/smart_home.h"
#include "protocol/http.h"
#include "protocol/miio_codec.h"
#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"
#include "protocol/transport.h"

namespace sidet {
namespace {

// --- Transport ---------------------------------------------------------------

TEST(Transport, RoutesToBoundHandler) {
  InMemoryTransport transport(1);
  transport.Bind("host-a", [](std::span<const std::uint8_t> req) -> Result<Bytes> {
    Bytes reply = ToBytes("echo:");
    reply.insert(reply.end(), req.begin(), req.end());
    return reply;
  });
  Result<Bytes> reply = transport.Request("host-a", ToBytes("ping"));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(ToString(reply.value()), "echo:ping");
  EXPECT_FALSE(transport.Request("host-b", ToBytes("ping")).ok());
}

TEST(Transport, UnbindRemovesHost) {
  InMemoryTransport transport(1);
  transport.Bind("x", [](std::span<const std::uint8_t>) -> Result<Bytes> { return Bytes{}; });
  ASSERT_TRUE(transport.Request("x", Bytes{}).ok());
  transport.Unbind("x");
  EXPECT_FALSE(transport.Request("x", Bytes{}).ok());
}

TEST(Transport, DropFaultProducesTimeouts) {
  InMemoryTransport transport(2, FaultModel{.drop_probability = 0.5});
  transport.Bind("x", [](std::span<const std::uint8_t>) -> Result<Bytes> { return Bytes{1}; });
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!transport.Request("x", Bytes{}).ok()) ++failures;
  }
  EXPECT_NEAR(failures, 500, 80);
  EXPECT_EQ(transport.requests_dropped(), static_cast<std::size_t>(failures));
}

// --- miio codec --------------------------------------------------------------

TEST(MiioCodec, HelloShape) {
  const Bytes hello = EncodeMiioHello();
  EXPECT_EQ(hello.size(), kMiioHeaderSize);
  EXPECT_TRUE(IsMiioHello(hello));
  Bytes not_hello = hello;
  not_hello[10] = 0x00;
  EXPECT_FALSE(IsMiioHello(not_hello));
  EXPECT_FALSE(IsMiioHello(Bytes(10, 0xff)));
}

TEST(MiioCodec, HelloResponseCarriesIdentityAndToken) {
  const MiioToken token = TokenForDevice(42);
  const Bytes response = EncodeMiioHelloResponse(0x1234, 999, &token);
  MiioToken disclosed{};
  Result<MiioMessage> parsed = DecodeMiioHelloResponse(response, &disclosed);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().device_id, 0x1234u);
  EXPECT_EQ(parsed.value().stamp, 999u);
  EXPECT_EQ(disclosed, token);
}

TEST(MiioCodec, PacketRoundTrip) {
  const MiioToken token = TokenForDevice(7);
  MiioMessage message;
  message.device_id = 7;
  message.stamp = 1234;
  message.payload_json = R"({"id":1,"method":"get_prop","params":["a","b"]})";

  const Bytes packet = EncodeMiioPacket(token, message);
  Result<MiioMessage> decoded = DecodeMiioPacket(token, packet);
  ASSERT_TRUE(decoded.ok()) << decoded.error().message();
  EXPECT_EQ(decoded.value().device_id, 7u);
  EXPECT_EQ(decoded.value().stamp, 1234u);
  EXPECT_EQ(decoded.value().payload_json, message.payload_json);
}

TEST(MiioCodec, WrongTokenFailsChecksum) {
  MiioMessage message;
  message.payload_json = "{}";
  const Bytes packet = EncodeMiioPacket(TokenForDevice(1), message);
  EXPECT_FALSE(DecodeMiioPacket(TokenForDevice(2), packet).ok());
}

// Any single-byte tamper anywhere in the packet must be rejected.
class MiioTamperTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(MiioTamperTest, ChecksumDetectsFlippedByte) {
  const MiioToken token = TokenForDevice(3);
  MiioMessage message;
  message.device_id = 3;
  message.stamp = 55;
  message.payload_json = R"({"method":"get_all_props"})";
  Bytes packet = EncodeMiioPacket(token, message);
  const std::size_t index = GetParam() % packet.size();
  packet[index] ^= 0x20;
  EXPECT_FALSE(DecodeMiioPacket(token, packet).ok()) << "flipped byte " << index;
}

INSTANTIATE_TEST_SUITE_P(Offsets, MiioTamperTest,
                         ::testing::Values(0, 1, 2, 3, 5, 8, 12, 16, 20, 31, 32, 40, 48));

TEST(MiioCodec, RejectsTruncatedAndOversized) {
  const MiioToken token = TokenForDevice(4);
  MiioMessage message;
  message.payload_json = "{}";
  Bytes packet = EncodeMiioPacket(token, message);
  Bytes truncated(packet.begin(), packet.end() - 1);
  EXPECT_FALSE(DecodeMiioPacket(token, truncated).ok());
  Bytes padded = packet;
  padded.push_back(0);
  EXPECT_FALSE(DecodeMiioPacket(token, padded).ok());
}

// --- Gateway + client --------------------------------------------------------

class GatewayTest : public ::testing::Test {
 protected:
  GatewayTest() : home_(BuildDemoHome(21)), gateway_(0xBEEF, home_) {
    home_.Step(kSecondsPerHour);
    gateway_.BindTo(transport_, "udp://gw");
  }

  InMemoryTransport transport_{3};
  SmartHome home_;
  MiioGateway gateway_;
};

TEST_F(GatewayTest, HandshakeLearnsIdentityAndToken) {
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  EXPECT_EQ(client.device_id(), 0xBEEFu);
  EXPECT_TRUE(client.has_token());
}

TEST_F(GatewayTest, InfoMethod) {
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  Result<Json> info = client.Call("miIO.info", Json::Array());
  ASSERT_TRUE(info.ok()) << info.error().message();
  EXPECT_EQ(info.value().string_or("model", ""), "sidet.gateway.v3");
}

TEST_F(GatewayTest, GetPropReturnsRequestedSensors) {
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  Result<SensorSnapshot> snapshot = client.Poll({"kitchen_smoke", "living_temperature"});
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().message();
  EXPECT_EQ(snapshot.value().size(), 2u);
  EXPECT_NE(snapshot.value().Find("kitchen_smoke"), nullptr);
  EXPECT_NE(snapshot.value().Find("living_temperature"), nullptr);
}

TEST_F(GatewayTest, PollAllServesOnlyXiaomiSensors) {
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  Result<SensorSnapshot> snapshot = client.PollAll();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().size(), home_.SensorsOfVendor(Vendor::kXiaomi).size());
  // A SmartThings sensor is not served by the Xiaomi gateway.
  EXPECT_EQ(snapshot.value().Find("home_occupancy"), nullptr);
}

TEST_F(GatewayTest, UnknownSensorYieldsNullSlot) {
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  Result<SensorSnapshot> snapshot = client.Poll({"kitchen_smoke", "no_such_sensor"});
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().size(), 1u);
}

TEST_F(GatewayTest, UnknownMethodIsRpcError) {
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  EXPECT_FALSE(client.Call("set_fan_speed", Json::Array()).ok());
}

TEST_F(GatewayTest, RejectsStaleStamps) {
  MiioClient client(transport_, "udp://gw");
  ASSERT_TRUE(client.HandshakeForToken().ok());
  ASSERT_TRUE(client.Call("miIO.info", Json::Array()).ok());

  // Hand-craft a packet with an old stamp: the gateway must reject it.
  MiioMessage replay;
  replay.device_id = 0xBEEF;
  replay.stamp = 1;  // long in the past
  replay.payload_json = R"({"id":9,"method":"miIO.info","params":[]})";
  const Bytes packet = EncodeMiioPacket(gateway_.token(), replay);
  Result<Bytes> response = transport_.Request("udp://gw", packet);
  EXPECT_FALSE(response.ok());
  EXPECT_GE(gateway_.replays_rejected(), 1u);
}

// --- HTTP framing ------------------------------------------------------------

TEST(Http, RequestRoundTrip) {
  HttpRequest request;
  request.method = "GET";
  request.path = "/api/states";
  request.headers["authorization"] = "Bearer tok";
  request.body = "body-bytes";
  Result<HttpRequest> back = DecodeHttpRequest(EncodeHttpRequest(request));
  ASSERT_TRUE(back.ok()) << back.error().message();
  EXPECT_EQ(back.value().method, "GET");
  EXPECT_EQ(back.value().path, "/api/states");
  EXPECT_EQ(back.value().headers.at("authorization"), "Bearer tok");
  EXPECT_EQ(back.value().body, "body-bytes");
}

TEST(Http, ResponseRoundTrip) {
  HttpResponse response;
  response.status = 404;
  response.body = "{\"message\":\"nope\"}";
  Result<HttpResponse> back = DecodeHttpResponse(EncodeHttpResponse(response));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().status, 404);
  EXPECT_EQ(back.value().body, response.body);
}

TEST(Http, RejectsMalformed) {
  EXPECT_FALSE(DecodeHttpRequest(ToBytes("GET /")).ok());           // no terminator
  EXPECT_FALSE(DecodeHttpRequest(ToBytes("GARBAGE\r\n\r\n")).ok()); // bad request line
  EXPECT_FALSE(DecodeHttpResponse(ToBytes("HTTP/1.0\r\n\r\n")).ok());
}

// --- REST bridge -------------------------------------------------------------

class RestBridgeTest : public ::testing::Test {
 protected:
  RestBridgeTest() : home_(BuildDemoHome(22)), bridge_(home_, "secret-token") {
    home_.Step(kSecondsPerHour);
    bridge_.BindTo(transport_, "http://ha");
  }

  InMemoryTransport transport_{4};
  SmartHome home_;
  RestBridge bridge_;
};

TEST_F(RestBridgeTest, PingWithValidToken) {
  RestClient client(transport_, "http://ha", "secret-token");
  EXPECT_TRUE(client.Ping().ok());
}

TEST_F(RestBridgeTest, RejectsBadToken) {
  RestClient wrong(transport_, "http://ha", "guessed");
  EXPECT_FALSE(wrong.Ping().ok());
  EXPECT_GE(bridge_.unauthorized_requests(), 1u);
}

TEST_F(RestBridgeTest, PollAllServesSmartThingsSensors) {
  RestClient client(transport_, "http://ha", "secret-token");
  Result<SensorSnapshot> snapshot = client.PollAll();
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().message();
  EXPECT_EQ(snapshot.value().size(), home_.SensorsOfVendor(Vendor::kSmartThings).size());
  EXPECT_NE(snapshot.value().Find("home_occupancy"), nullptr);
  EXPECT_EQ(snapshot.value().Find("kitchen_smoke"), nullptr);  // Xiaomi-side
}

TEST_F(RestBridgeTest, SingleEntityAndNotFound) {
  RestClient client(transport_, "http://ha", "secret-token");
  Result<SensorSnapshot> one = client.PollEntity("binary_sensor.home_occupancy");
  ASSERT_TRUE(one.ok()) << one.error().message();
  EXPECT_EQ(one.value().size(), 1u);
  EXPECT_FALSE(client.PollEntity("sensor.not_a_thing").ok());
}

TEST_F(RestBridgeTest, EntityIdsFollowHomeAssistantConvention) {
  SmartHome home = BuildDemoHome(23);
  const Sensor* binary = home.FindSensor("home_occupancy");
  const Sensor* numeric = home.FindSensor("outdoor_temperature");
  ASSERT_NE(binary, nullptr);
  ASSERT_NE(numeric, nullptr);
  EXPECT_EQ(EntityIdFor(*binary), "binary_sensor.home_occupancy");
  EXPECT_EQ(EntityIdFor(*numeric), "sensor.outdoor_temperature");
}

}  // namespace
}  // namespace sidet
