// TimeSeriesStore (DESIGN.md §17): bounded multi-resolution retention of
// MetricsRegistry samples. Under test: ring wrap-around keeps exactly the
// newest points, the downsampling cascade folds finest-level points on exact
// factor boundaries, empty and partial windows reduce to zeros instead of
// garbage, counter resets clamp instead of unwinding the delta, and
// sampling may race queries freely (the TSan job drives the same test).
#include "telemetry/timeseries.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"

namespace sidet {
namespace {

TimeSeriesOptions SingleLevel(std::size_t capacity) {
  TimeSeriesOptions options;
  options.sample_interval_ms = 1000;
  options.levels = {{1, capacity}};
  return options;
}

TEST(TimeSeries, RingWrapAroundKeepsOnlyTheNewestPoints) {
  MetricsRegistry registry;
  Counter* requests = registry.GetCounter("ts_requests_total");
  TimeSeriesStore store(SingleLevel(8));

  for (int i = 1; i <= 20; ++i) {
    requests->Increment();
    store.SampleNow(registry, i * 1000);
  }
  EXPECT_EQ(store.samples_taken(), 20u);
  EXPECT_EQ(store.last_sample_ms(), 20'000);

  const RangeResult all = store.Query({"ts_requests_total", "", 0, 0});
  ASSERT_TRUE(all.found);
  EXPECT_TRUE(all.cumulative);
  ASSERT_EQ(all.points.size(), 8u);  // capacity bound, not sample count
  EXPECT_EQ(all.points.front().at_ms, 13'000);  // oldest survivor
  EXPECT_EQ(all.points.back().at_ms, 20'000);
  EXPECT_DOUBLE_EQ(all.points.front().last, 13.0);
  EXPECT_DOUBLE_EQ(all.last, 20.0);
  // Delta spans only the retained window: 20 - 13 increments.
  EXPECT_DOUBLE_EQ(all.delta, 7.0);
  EXPECT_DOUBLE_EQ(all.rate, 1.0);  // one increment per second
}

TEST(TimeSeries, MonotonicStampsAreEnforced) {
  MetricsRegistry registry;
  registry.GetGauge("ts_depth")->Set(1.0);
  TimeSeriesStore store(SingleLevel(8));

  store.SampleNow(registry, 1000);
  store.SampleNow(registry, 1000);  // at the previous stamp: ignored
  store.SampleNow(registry, 500);   // before it: ignored
  EXPECT_EQ(store.samples_taken(), 1u);
  store.SampleNow(registry, 1001);
  EXPECT_EQ(store.samples_taken(), 2u);
}

TEST(TimeSeries, DownsamplingFoldsOnExactFactorBoundaries) {
  MetricsRegistry registry;
  Gauge* depth = registry.GetGauge("ts_queue_depth");
  TimeSeriesOptions options;
  options.sample_interval_ms = 1000;
  options.levels = {{1, 4}, {4, 8}};  // level 1: one point per 4 samples
  TimeSeriesStore store(options);

  // Values 1..10; level-1 points should aggregate {1,2,3,4} and {5,6,7,8},
  // with {9,10} still pending (an incomplete fold never surfaces).
  for (int i = 1; i <= 10; ++i) {
    depth->Set(static_cast<double>(i));
    store.SampleNow(registry, i * 1000);
  }

  // A window reaching past level 0's retention (newest 4 samples) degrades
  // to level 1.
  const RangeResult coarse = store.Query({"ts_queue_depth", "", 1000, 0});
  ASSERT_TRUE(coarse.found);
  EXPECT_EQ(coarse.step_seconds, 4);
  ASSERT_EQ(coarse.points.size(), 2u);
  const SeriesPoint& first = coarse.points[0];
  EXPECT_EQ(first.at_ms, 4000);  // stamped with the newest folded sample
  EXPECT_EQ(first.count, 4u);
  EXPECT_DOUBLE_EQ(first.min, 1.0);
  EXPECT_DOUBLE_EQ(first.max, 4.0);
  EXPECT_DOUBLE_EQ(first.sum, 10.0);
  EXPECT_DOUBLE_EQ(first.last, 4.0);
  const SeriesPoint& second = coarse.points[1];
  EXPECT_EQ(second.at_ms, 8000);
  EXPECT_DOUBLE_EQ(second.min, 5.0);
  EXPECT_DOUBLE_EQ(second.max, 8.0);

  // The same store serves the recent window at full resolution.
  const RangeResult fine = store.Query({"ts_queue_depth", "", 7000, 0});
  ASSERT_TRUE(fine.found);
  EXPECT_EQ(fine.step_seconds, 1);
  ASSERT_EQ(fine.points.size(), 4u);
  EXPECT_DOUBLE_EQ(fine.points.front().last, 7.0);
  EXPECT_DOUBLE_EQ(fine.last, 10.0);
  // avg is sample-weighted across folded values.
  EXPECT_DOUBLE_EQ(fine.avg, (7.0 + 8.0 + 9.0 + 10.0) / 4.0);
}

TEST(TimeSeries, EmptyAndPartialWindowsReduceToZeros) {
  MetricsRegistry registry;
  Gauge* depth = registry.GetGauge("ts_queue_depth");
  TimeSeriesStore store(SingleLevel(16));

  // Unknown series: found == false, every reduction zero.
  const RangeResult unknown = store.Query({"ts_never_sampled", "", 0, 0});
  EXPECT_FALSE(unknown.found);
  EXPECT_TRUE(unknown.points.empty());
  EXPECT_DOUBLE_EQ(unknown.delta, 0.0);
  EXPECT_DOUBLE_EQ(unknown.avg, 0.0);

  depth->Set(5.0);
  store.SampleNow(registry, 10'000);
  depth->Set(7.0);
  store.SampleNow(registry, 11'000);

  // Window entirely after the retained data: found but empty.
  const RangeResult future = store.Query({"ts_queue_depth", "", 50'000, 60'000});
  EXPECT_TRUE(future.found);
  EXPECT_TRUE(future.points.empty());
  EXPECT_DOUBLE_EQ(future.last, 0.0);
  EXPECT_DOUBLE_EQ(future.max, 0.0);

  // Window starting before the first sample still returns what exists.
  const RangeResult partial = store.Query({"ts_queue_depth", "", 0, 10'500});
  EXPECT_TRUE(partial.found);
  ASSERT_EQ(partial.points.size(), 1u);
  EXPECT_DOUBLE_EQ(partial.last, 5.0);

  // A single point has no span: rate collapses to zero instead of dividing
  // by zero.
  EXPECT_DOUBLE_EQ(partial.rate, 0.0);
}

TEST(TimeSeries, CounterResetClampsTheDelta) {
  // Two registries sharing a metric name simulate a process restart: the
  // cumulative value drops and the window delta must clamp, not go negative.
  MetricsRegistry before;
  MetricsRegistry after;
  before.GetCounter("ts_requests_total")->Increment(100);
  after.GetCounter("ts_requests_total")->Increment(3);

  TimeSeriesStore store(SingleLevel(8));
  store.SampleNow(before, 1000);
  store.SampleNow(after, 2000);   // "restart": 100 -> 3
  after.GetCounter("ts_requests_total")->Increment(4);
  store.SampleNow(after, 3000);   // 3 -> 7

  const RangeResult result = store.Query({"ts_requests_total", "", 0, 0});
  ASSERT_EQ(result.points.size(), 3u);
  EXPECT_DOUBLE_EQ(result.delta, 4.0);  // only the post-restart growth
  EXPECT_DOUBLE_EQ(result.last, 7.0);
}

TEST(TimeSeries, HistogramsFlattenIntoFiveSubSeries) {
  MetricsRegistry registry;
  Histogram* latency =
      registry.GetHistogram("ts_latency_seconds", "", {0.001, 0.01, 0.1, 1.0});
  latency->Observe(0.005);
  latency->Observe(0.05);
  TimeSeriesStore store(SingleLevel(8));
  store.SampleNow(registry, 1000);

  const std::vector<std::string> names = store.SeriesNames();
  for (const char* sub : {":count", ":sum", ":p50", ":p95", ":p99"}) {
    const std::string expected = std::string("ts_latency_seconds") + sub;
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "missing " << expected;
  }
  const RangeResult count = store.Query({"ts_latency_seconds:count", "", 0, 0});
  ASSERT_TRUE(count.found);
  EXPECT_TRUE(count.cumulative);  // histogram count behaves counter-like
  EXPECT_DOUBLE_EQ(count.last, 2.0);
}

TEST(TimeSeries, QuantileIsNearestRankOverWindowPoints) {
  MetricsRegistry registry;
  Gauge* depth = registry.GetGauge("ts_queue_depth");
  TimeSeriesStore store(SingleLevel(16));
  for (int i = 1; i <= 10; ++i) {
    depth->Set(static_cast<double>(i));
    store.SampleNow(registry, i * 1000);
  }
  const RangeResult result = store.Query({"ts_queue_depth", "", 0, 0});
  ASSERT_EQ(result.points.size(), 10u);
  EXPECT_DOUBLE_EQ(result.Quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(result.Quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(result.Quantile(0.5), 5.0);
}

TEST(TimeSeries, RangeResultToJsonCarriesTheReductions) {
  MetricsRegistry registry;
  registry.GetCounter("ts_requests_total")->Increment(2);
  TimeSeriesStore store(SingleLevel(8));
  store.SampleNow(registry, 1000);
  registry.GetCounter("ts_requests_total")->Increment(2);
  store.SampleNow(registry, 2000);

  const Json json = store.Query({"ts_requests_total", "", 0, 0}).ToJson();
  EXPECT_EQ(json.string_or("series", ""), "ts_requests_total");
  EXPECT_TRUE(json.bool_or("found", false));
  EXPECT_DOUBLE_EQ(json.number_or("delta", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(json.number_or("last", -1.0), 4.0);
}

// Sampling and querying race freely on one mutex; the sanitizer CI job runs
// this under TSan to prove the store's locking discipline.
TEST(TimeSeries, ConcurrentSampleWhileQueryIsSafe) {
  MetricsRegistry registry;
  Counter* requests = registry.GetCounter("ts_requests_total");
  Gauge* depth = registry.GetGauge("ts_queue_depth");
  TimeSeriesStore store(SingleLevel(64));

  std::atomic<bool> stop{false};
  std::thread sampler([&] {
    std::int64_t stamp = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      requests->Increment();
      depth->Set(static_cast<double>(stamp % 7));
      store.SampleNow(registry, stamp += 1000);
    }
  });
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      const RangeResult r = store.Query({"ts_requests_total", "", 0, 0});
      if (r.found && !r.points.empty()) {
        // Monotonic counter: retained points never decrease.
        for (std::size_t i = 1; i < r.points.size(); ++i) {
          ASSERT_GE(r.points[i].last, r.points[i - 1].last);
        }
      }
      (void)store.SeriesNames();
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  sampler.join();
  reader.join();
  EXPECT_GT(store.samples_taken(), 0u);
}

// The background sampler takes real-clock samples without explicit stamps
// and stops cleanly (idempotently) — the ops attach/detach lifecycle.
TEST(TimeSeries, BackgroundSamplerTakesSamplesAndStopsCleanly) {
  MetricsRegistry registry;
  registry.GetCounter("ts_requests_total")->Increment();
  TimeSeriesOptions options;
  options.sample_interval_ms = 5;
  options.levels = {{1, 128}};
  TimeSeriesStore store(options);

  EXPECT_FALSE(store.sampler_running());
  store.StartSampler(&registry);
  EXPECT_TRUE(store.sampler_running());
  store.StartSampler(&registry);  // no-op while running
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  store.StopSampler();
  EXPECT_FALSE(store.sampler_running());
  store.StopSampler();  // idempotent
  EXPECT_GT(store.samples_taken(), 0u);
}

}  // namespace
}  // namespace sidet
