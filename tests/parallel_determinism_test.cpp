// The determinism contract of the parallel substrate: every parallel code
// path (corpus generation, oversampling, forest fit, cross-validation,
// memory training, batch judgement) must produce byte-identical results at
// any thread count — parallelism may only change wall-clock, never output.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "ml/random_forest.h"
#include "ml/sampling.h"
#include "ml/validation.h"
#include "survey/survey.h"

namespace sidet {
namespace {

Dataset SyntheticData(std::uint64_t seed, std::size_t rows, double positive_fraction) {
  std::vector<FeatureSpec> specs;
  for (int f = 0; f < 6; ++f) {
    FeatureSpec spec;
    spec.name = "f" + std::to_string(f);
    specs.push_back(std::move(spec));
  }
  Dataset data(std::move(specs));
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> row(6);
    for (double& v : row) v = rng.UniformDouble(-2.0, 2.0);
    const int label = rng.Bernoulli(positive_fraction) ? 1 : 0;
    data.Add(std::move(row), label);
  }
  return data;
}

TEST(ParallelDeterminismTest, ForestFitIsBitIdenticalAcrossThreadCounts) {
  const Dataset train = SyntheticData(3, 500, 0.5);
  std::string reference;
  for (const int threads : {1, 2, 4, 8}) {
    RandomForestParams params;
    params.trees = 9;
    params.threads = threads;
    RandomForest forest(params);
    ASSERT_TRUE(forest.Fit(train).ok());
    const std::string serialized = forest.ToJson().Dump();
    if (reference.empty()) reference = serialized;
    EXPECT_EQ(serialized, reference) << "threads " << threads;
  }
}

TEST(ParallelDeterminismTest, OversamplingIsBitIdenticalAcrossThreadCounts) {
  const Dataset imbalanced = SyntheticData(9, 400, 0.15);
  Rng rng_a(77), rng_b(77), rng_c(77), rng_d(77);
  const std::string random_1 =
      RandomOversample(imbalanced, rng_a, /*target_ratio=*/1.0, /*threads=*/1).ToCsv();
  const std::string random_4 =
      RandomOversample(imbalanced, rng_b, /*target_ratio=*/1.0, /*threads=*/4).ToCsv();
  EXPECT_EQ(random_1, random_4);
  const std::string smote_1 =
      SmoteOversample(imbalanced, rng_c, /*k=*/5, /*target_ratio=*/1.0, /*threads=*/1).ToCsv();
  const std::string smote_4 =
      SmoteOversample(imbalanced, rng_d, /*k=*/5, /*target_ratio=*/1.0, /*threads=*/4).ToCsv();
  EXPECT_EQ(smote_1, smote_4);
}

TEST(ParallelDeterminismTest, CrossValidationIsIdenticalAcrossThreadCounts) {
  const Dataset data = SyntheticData(13, 400, 0.4);
  const ClassifierFactory factory = [] {
    DecisionTreeParams params;
    params.max_depth = 6;
    return std::make_unique<DecisionTree>(params);
  };
  CrossValidationResult reference;
  bool first = true;
  for (const int threads : {1, 3, 8}) {
    Rng rng(2021);
    const CrossValidationResult result = CrossValidate(data, factory, 5, rng, nullptr, threads);
    if (first) {
      reference = result;
      first = false;
      continue;
    }
    ASSERT_EQ(result.fold_metrics.size(), reference.fold_metrics.size());
    for (std::size_t f = 0; f < result.fold_metrics.size(); ++f) {
      EXPECT_EQ(result.fold_metrics[f].accuracy, reference.fold_metrics[f].accuracy);
      EXPECT_EQ(result.fold_metrics[f].f1, reference.fold_metrics[f].f1);
    }
    EXPECT_EQ(result.pooled.accuracy, reference.pooled.accuracy);
    EXPECT_EQ(result.mean_accuracy, reference.mean_accuracy);
    EXPECT_EQ(result.stddev_accuracy, reference.stddev_accuracy);
  }
}

TEST(ParallelDeterminismTest, CorpusGenerationIsIdenticalAcrossThreadCounts) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CorpusConfig config;
  config.core_rules = 120;
  config.camera_rules = 40;

  config.threads = 1;
  Result<GeneratedCorpus> sequential = GenerateCorpus(config, registry);
  ASSERT_TRUE(sequential.ok());
  config.threads = 4;
  Result<GeneratedCorpus> parallel = GenerateCorpus(config, registry);
  ASSERT_TRUE(parallel.ok());

  const std::vector<Rule>& a = sequential.value().corpus.rules();
  const std::vector<Rule>& b = parallel.value().corpus.rules();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].description, b[i].description);
    EXPECT_EQ(a[i].condition_source, b[i].condition_source);
    EXPECT_EQ(a[i].action, b[i].action);
    EXPECT_EQ(a[i].action_argument, b[i].action_argument);
    EXPECT_EQ(a[i].category, b[i].category);
    EXPECT_EQ(a[i].user_count, b[i].user_count);
  }
  EXPECT_EQ(sequential.value().camera_census, parallel.value().camera_census);
}

// The satellite regression: the serialized model memory must come out
// byte-identical whether training ran sequentially or across lanes.
TEST(ParallelDeterminismTest, MemoryTrainingSerializesIdenticallyAcrossThreadCounts) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CorpusConfig config;
  Result<GeneratedCorpus> corpus = GenerateCorpus(config, registry);
  ASSERT_TRUE(corpus.ok());

  std::string reference;
  for (const int threads : {1, 3}) {
    ContextFeatureMemory memory;
    MemoryTrainingOptions options;
    options.samples_per_device = 600;
    options.threads = threads;
    ASSERT_TRUE(memory.TrainFromCorpus(corpus.value().corpus, options).ok());
    const std::string serialized = memory.ToJson().Dump();
    if (reference.empty()) reference = serialized;
    EXPECT_EQ(serialized, reference) << "threads " << threads;
  }
}

// JudgeBatch is an execution strategy, not a policy change: verdicts, stats
// and audit records must match a per-row Judge() loop field for field.
TEST(ParallelDeterminismTest, JudgeBatchMatchesPerRowJudge) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CorpusConfig config;
  Result<GeneratedCorpus> corpus = GenerateCorpus(config, registry);
  ASSERT_TRUE(corpus.ok());
  ContextFeatureMemory memory;
  MemoryTrainingOptions options;
  options.samples_per_device = 600;
  ASSERT_TRUE(memory.TrainFromCorpus(corpus.value().corpus, options).ok());
  // TrainedDeviceModel is move-only; clone the memory through its JSON form
  // for each IDS under test.
  const Json serialized_memory = memory.ToJson();
  const auto clone_memory = [&serialized_memory] {
    Result<ContextFeatureMemory> clone = ContextFeatureMemory::FromJson(serialized_memory);
    EXPECT_TRUE(clone.ok());
    return std::move(clone).value();
  };

  SmartHome home = BuildDemoHome(5);
  std::vector<SensorSnapshot> snapshots;
  std::vector<SimTime> times;
  for (int s = 0; s < 6; ++s) {
    home.Step(kSecondsPerHour);
    snapshots.push_back(home.Snapshot());
    times.push_back(home.now());
  }
  // Mix of modelled, unmodelled and non-sensitive instructions, plus a
  // snapshot-less row to drive the error path.
  std::vector<ContextIds::JudgeRequest> requests;
  const SensorSnapshot empty_snapshot(times.back());
  for (std::size_t s = 0; s < snapshots.size(); ++s) {
    for (const Instruction& instruction : registry.all()) {
      requests.push_back({&instruction, &snapshots[s], times[s]});
    }
  }
  const Instruction* window_open = registry.FindByName("window.open");
  ASSERT_NE(window_open, nullptr);
  requests.push_back({window_open, &empty_snapshot, times.back()});

  ContextIds per_row(SensitiveInstructionDetector(PaperTableThree()), clone_memory());
  AuditLog per_row_audit;
  per_row.SetAuditLog(&per_row_audit);

  std::vector<Judgement> expected;
  for (const ContextIds::JudgeRequest& request : requests) {
    Result<Judgement> judgement =
        per_row.Judge(*request.instruction, *request.snapshot, request.time);
    if (judgement.ok()) {
      expected.push_back(std::move(judgement).value());
    } else {
      // Judge() reports errors out-of-band but still audits the fail-closed
      // verdict; JudgeBatch reports the same verdict in place.
      Judgement failed;
      failed.sensitive = true;
      failed.allowed = false;
      failed.consistency = 0.0;
      expected.push_back(std::move(failed));
    }
  }

  for (const int threads : {1, 4}) {
    ContextIds fresh(SensitiveInstructionDetector(PaperTableThree()), clone_memory());
    AuditLog audit;
    fresh.SetAuditLog(&audit);
    const std::vector<Judgement> verdicts = fresh.JudgeBatch(requests, threads);
    ASSERT_EQ(verdicts.size(), expected.size());
    for (std::size_t i = 0; i < verdicts.size(); ++i) {
      EXPECT_EQ(verdicts[i].sensitive, expected[i].sensitive) << "row " << i;
      EXPECT_EQ(verdicts[i].allowed, expected[i].allowed) << "row " << i;
      EXPECT_EQ(verdicts[i].consistency, expected[i].consistency) << "row " << i;
    }
    if (threads == 1) {
      // Stats and audit parity against the per-row loop.
      const IdsStats& a = per_row.stats();
      const IdsStats& b = fresh.stats();
      EXPECT_EQ(a.judged, b.judged);
      EXPECT_EQ(a.passed_non_sensitive, b.passed_non_sensitive);
      EXPECT_EQ(a.passed_unmodelled, b.passed_unmodelled);
      EXPECT_EQ(a.allowed, b.allowed);
      EXPECT_EQ(a.blocked, b.blocked);
      EXPECT_EQ(a.errors, b.errors);
      ASSERT_EQ(audit.size(), per_row_audit.size());
      for (std::size_t i = 0; i < audit.size(); ++i) {
        const AuditRecord& x = per_row_audit.records()[i];
        const AuditRecord& y = audit.records()[i];
        EXPECT_EQ(x.instruction, y.instruction);
        EXPECT_EQ(x.allowed, y.allowed);
        EXPECT_EQ(x.consistency, y.consistency);
        EXPECT_EQ(x.reason, y.reason) << "row " << i;
        EXPECT_EQ(x.degraded, y.degraded);
      }
    }
  }
}

}  // namespace
}  // namespace sidet
