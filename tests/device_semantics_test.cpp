// Parameterized sweep: EVERY control instruction in the standard catalogue
// has executable semantics on a device of its category, and the demo home
// can execute it end to end.
#include <gtest/gtest.h>

#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"

namespace sidet {
namespace {

const std::vector<Instruction>& AllControlInstructions() {
  // Static: ValuesIn stores iterators into the container it is given.
  static const std::vector<Instruction> kAll = [] {
    const InstructionRegistry registry = BuildStandardInstructionSet();
    std::vector<Instruction> out;
    for (const Instruction& instruction : registry.all()) {
      if (instruction.kind == InstructionKind::kControl) out.push_back(instruction);
    }
    return out;
  }();
  return kAll;
}

class ControlInstructionTest : public ::testing::TestWithParam<Instruction> {};

TEST_P(ControlInstructionTest, AppliesToAFreshDeviceOfItsCategory) {
  const Instruction& instruction = GetParam();
  Device device(1, "probe", instruction.category, "room");
  // Arg-style instructions receive a plausible scalar.
  const Status applied = device.Apply(instruction, 1.0);
  EXPECT_TRUE(applied.ok()) << instruction.name << ": "
                            << (applied.ok() ? "" : applied.error().message());
  EXPECT_FALSE(device.state().empty()) << instruction.name;
}

TEST_P(ControlInstructionTest, ExecutesOnTheDemoHome) {
  const Instruction& instruction = GetParam();
  SmartHome home = BuildDemoHome(1000 + instruction.opcode);
  const Status executed = home.Execute(instruction, 1.0);
  EXPECT_TRUE(executed.ok()) << instruction.name << ": "
                             << (executed.ok() ? "" : executed.error().message());
}

TEST_P(ControlInstructionTest, IsIdempotentOnSecondApplication) {
  const Instruction& instruction = GetParam();
  Device device(1, "probe", instruction.category, "room");
  ASSERT_TRUE(device.Apply(instruction, 1.0).ok());
  const std::map<std::string, double> after_first = device.state();
  ASSERT_TRUE(device.Apply(instruction, 1.0).ok());
  // camera.alert is a counter by design; everything else is idempotent.
  if (instruction.name != "camera.alert") {
    EXPECT_EQ(device.state(), after_first) << instruction.name;
  }
}

INSTANTIATE_TEST_SUITE_P(Catalogue, ControlInstructionTest,
                         ::testing::ValuesIn(AllControlInstructions()),
                         [](const ::testing::TestParamInfo<Instruction>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

class StatusInstructionTest : public ::testing::TestWithParam<Instruction> {};

TEST_P(StatusInstructionTest, NeverAppliesAsControl) {
  const Instruction& instruction = GetParam();
  Device device(1, "probe", instruction.category, "room");
  EXPECT_FALSE(device.Apply(instruction).ok()) << instruction.name;
}

const std::vector<Instruction>& AllStatusInstructions() {
  static const std::vector<Instruction> kAll = [] {
    const InstructionRegistry registry = BuildStandardInstructionSet();
    std::vector<Instruction> out;
    for (const Instruction& instruction : registry.all()) {
      if (instruction.kind == InstructionKind::kStatus) out.push_back(instruction);
    }
    return out;
  }();
  return kAll;
}

INSTANTIATE_TEST_SUITE_P(Catalogue, StatusInstructionTest,
                         ::testing::ValuesIn(AllStatusInstructions()),
                         [](const ::testing::TestParamInfo<Instruction>& info) {
                           std::string name = info.param.name;
                           for (char& c : name) {
                             if (c == '.') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace sidet
