// Flight recorder + replay engine + drift/alert monitor (DESIGN.md §11).
//
// The determinism contract under test: a session recorded against a model
// and replayed through the same model reproduces every verdict bit-for-bit —
// allowed flag, consistency double, reason string and audit record all equal.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/ids.h"
#include "core/model_store.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "replay/drift_monitor.h"
#include "replay/flight_recorder.h"
#include "replay/replay_engine.h"
#include "telemetry/exporters.h"

namespace sidet {
namespace {

// One trained IDS and a mixed request stream, built once for the suite: the
// stream covers scored, non-sensitive and unmodelled rows plus judgement
// errors (empty snapshot -> missing schema sensors), across several contexts.
struct ReplayWorkload {
  InstructionRegistry registry;
  ContextIds ids;
  std::vector<SensorSnapshot> snapshots;
  std::vector<SimTime> times;
  SensorSnapshot empty_snapshot;
  std::vector<JudgeRequest> requests;

  ReplayWorkload()
      : registry(BuildStandardInstructionSet()),
        ids([this] {
          Result<ContextIds> built = BuildIdsFromScratch(registry, 2021);
          if (!built.ok()) std::abort();
          return std::move(built).value();
        }()) {
    SmartHome home = BuildDemoHome(7);
    for (int s = 0; s < 6; ++s) {
      home.Step(kSecondsPerHour * 3);
      snapshots.push_back(home.Snapshot());
      times.push_back(home.now());
    }
    for (std::size_t s = 0; s < snapshots.size(); ++s) {
      for (const Instruction& instruction : registry.all()) {
        requests.push_back({&instruction, &snapshots[s], times[s]});
      }
    }
    // Error rows: sensitive + modelled, but the snapshot has no sensors.
    for (const Instruction& instruction : registry.all()) {
      if (!ids.detector().IsSensitive(instruction)) continue;
      if (!ids.memory().HasModel(instruction.category)) continue;
      requests.push_back({&instruction, &empty_snapshot, times.back()});
      break;
    }
  }
};

ReplayWorkload& Workload() {
  static ReplayWorkload* workload = new ReplayWorkload();
  return *workload;
}

std::string SessionPath(const char* name) {
  return ::testing::TempDir() + "/sidet_" + name + ".ndjson";
}

// Records one JudgeBatch pass of the whole stream and returns the live
// judgements; the session lands at `path`.
std::vector<Judgement> RecordBatchSession(const std::string& path,
                                          std::int64_t flush_interval_ms = 5) {
  ReplayWorkload& w = Workload();
  FlightRecorderOptions options;
  options.path = path;
  options.flush_interval_ms = flush_interval_ms;
  FlightRecorder recorder(options);
  EXPECT_TRUE(recorder.StartSession(w.ids.memory().Fingerprint()).ok());
  w.ids.SetVerdictObserver(&recorder);
  std::vector<Judgement> live = w.ids.JudgeBatch(w.requests, 1);
  w.ids.SetVerdictObserver(nullptr);
  recorder.Close();
  EXPECT_EQ(recorder.stats().dropped, 0u);
  return live;
}

TEST(ReplayDeterminism, RecordedEventsReproduceLiveJudgements) {
  ReplayWorkload& w = Workload();
  const std::string path = SessionPath("events");
  const std::vector<Judgement> live = RecordBatchSession(path);

  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok()) << session.error().message();
  EXPECT_EQ(session.value().model_fingerprint, w.ids.memory().Fingerprint());
  EXPECT_EQ(session.value().dropped, 0u);
  ASSERT_EQ(session.value().events.size(), w.requests.size());

  bool saw_error_row = false;
  for (std::size_t i = 0; i < live.size(); ++i) {
    const RecordedEvent& event = session.value().events[i];
    EXPECT_EQ(event.allowed(), live[i].allowed) << "row " << i;
    EXPECT_EQ(event.consistency(), live[i].consistency) << "row " << i;  // bit-exact
    EXPECT_EQ(event.reason(), live[i].reason) << "row " << i;
    EXPECT_EQ(event.at_seconds, w.requests[i].time.seconds()) << "row " << i;
    saw_error_row |= event.kind == VerdictKind::kError;
  }
  EXPECT_TRUE(saw_error_row);  // the empty-snapshot row failed closed
  std::remove(path.c_str());
}

TEST(ReplayDeterminism, SameModelReplayIsBitIdentical) {
  ReplayWorkload& w = Workload();
  const std::string path = SessionPath("replay");
  (void)RecordBatchSession(path);

  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok()) << session.error().message();

  ReplayReport report = Replay(session.value(), w.ids, /*threads=*/1);
  EXPECT_EQ(report.events, w.requests.size());
  EXPECT_EQ(report.replayed, w.requests.size());
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_TRUE(report.bit_identical());
  EXPECT_EQ(report.flips, 0u);
  EXPECT_EQ(report.consistency_changes, 0u);
  EXPECT_EQ(report.reason_mismatches, 0u);
  EXPECT_EQ(report.max_consistency_delta, 0.0);
  EXPECT_FALSE(report.model_changed());
  std::remove(path.c_str());
}

TEST(ReplayDeterminism, PersistedModelReplayIsBitIdentical) {
  ReplayWorkload& w = Workload();
  const std::string model_path = SessionPath("model");
  const std::string path = SessionPath("persisted");
  (void)RecordBatchSession(path);

  // Round-trip the model through the store; the fingerprint proves the
  // reloaded memory is the recorded one.
  ASSERT_TRUE(SaveMemory(w.ids.memory(), model_path).ok());
  Result<ContextFeatureMemory> loaded = LoadMemory(model_path);
  ASSERT_TRUE(loaded.ok()) << loaded.error().message();
  EXPECT_EQ(loaded.value().Fingerprint(), w.ids.memory().Fingerprint());

  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok()) << session.error().message();
  ContextIds replay_ids = MakeReplayIds(std::move(loaded).value());
  ReplayReport report = Replay(session.value(), replay_ids, /*threads=*/1);
  EXPECT_TRUE(report.bit_identical());
  EXPECT_FALSE(report.model_changed());

  const Json report_json = report.ToJson();
  EXPECT_TRUE(report_json.is_object());
  std::remove(model_path.c_str());
  std::remove(path.c_str());
}

TEST(ReplayDeterminism, SingleVerdictsAndAuditRecordsRoundTrip) {
  ReplayWorkload& w = Workload();
  const std::string path = SessionPath("single");
  FlightRecorderOptions options;
  options.path = path;
  FlightRecorder recorder(options);
  ASSERT_TRUE(recorder.StartSession(w.ids.memory().Fingerprint()).ok());

  AuditLog audit;
  w.ids.SetAuditLog(&audit);
  w.ids.SetVerdictObserver(&recorder);
  std::size_t judged = 0;
  for (std::size_t i = 0; i < w.requests.size(); i += 7) {
    const JudgeRequest& request = w.requests[i];
    Result<Judgement> verdict =
        w.ids.Judge(*request.instruction, *request.snapshot, request.time);
    if (verdict.ok()) ++judged;
  }
  w.ids.SetVerdictObserver(nullptr);
  w.ids.SetAuditLog(nullptr);
  recorder.Close();

  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok()) << session.error().message();
  ASSERT_EQ(session.value().events.size(), audit.records().size());
  for (std::size_t i = 0; i < session.value().events.size(); ++i) {
    const RecordedEvent& event = session.value().events[i];
    // Single-path events carry the per-judgement latency batches do not.
    EXPECT_GE(event.latency_us, 0) << "row " << i;
    // The reconstructed audit record equals what ContextIds appended live.
    EXPECT_EQ(session.value().EventAudit(event), audit.records()[i]) << "row " << i;
  }
  EXPECT_GT(judged, 0u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, DestructorFlushesStagedRowsAndFooter) {
  ReplayWorkload& w = Workload();
  const std::string path = SessionPath("shutdown");
  {
    FlightRecorderOptions options;
    options.path = path;
    options.flush_interval_ms = 600'000;  // parked: only shutdown can drain
    FlightRecorder recorder(options);
    ASSERT_TRUE(recorder.StartSession(w.ids.memory().Fingerprint()).ok());
    w.ids.SetVerdictObserver(&recorder);
    (void)w.ids.JudgeBatch(std::span<const JudgeRequest>(w.requests.data(), 32), 1);
    w.ids.SetVerdictObserver(nullptr);
    // No Flush(), no Close(): the destructor must drain the staged rows.
  }
  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok()) << session.error().message();
  EXPECT_EQ(session.value().events.size(), 32u);
  std::remove(path.c_str());
}

TEST(FlightRecorder, TruncatedSessionFailsLoudly) {
  ReplayWorkload& w = Workload();
  const std::string path = SessionPath("truncated");
  (void)RecordBatchSession(path);

  std::ifstream in(path, std::ios::binary);
  std::stringstream buffer;
  buffer << in.rdbuf();
  std::string text = buffer.str();
  std::remove(path.c_str());

  ASSERT_TRUE(ParseSession(text).ok());
  // Drop the footer line: the session now looks like a crashed recorder.
  const std::size_t cut = text.rfind("{\"type\":\"footer\"");
  ASSERT_NE(cut, std::string::npos);
  EXPECT_FALSE(ParseSession(text.substr(0, cut)).ok());
  // No header: not a session at all.
  const std::size_t first_newline = text.find('\n');
  ASSERT_NE(first_newline, std::string::npos);
  EXPECT_FALSE(ParseSession(text.substr(first_newline + 1)).ok());
  // A malformed line anywhere fails the parse.
  EXPECT_FALSE(ParseSession(text + "{not json\n").ok());
  EXPECT_FALSE(LoadSession("/nonexistent/dir/session.ndjson").ok());
}

TEST(FlightRecorder, FullRingDropsAndCounts) {
  ReplayWorkload& w = Workload();
  const std::string path = SessionPath("drops");
  FlightRecorderOptions options;
  options.path = path;
  options.ring_capacity = 8;
  options.flush_interval_ms = 600'000;  // no drain between the two batches
  FlightRecorder recorder(options);
  ASSERT_TRUE(recorder.StartSession(w.ids.memory().Fingerprint()).ok());
  w.ids.SetVerdictObserver(&recorder);
  (void)w.ids.JudgeBatch(std::span<const JudgeRequest>(w.requests.data(), 32), 1);
  w.ids.SetVerdictObserver(nullptr);
  recorder.Close();

  EXPECT_EQ(recorder.stats().recorded, 8u);
  EXPECT_EQ(recorder.stats().dropped, 32u - 8u);
  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok()) << session.error().message();
  EXPECT_EQ(session.value().events.size(), 8u);
  EXPECT_EQ(session.value().dropped, 32u - 8u);  // the drops line survives
  std::remove(path.c_str());
}

// TSan target: staging (judge thread) races the 1 ms flusher cadence and
// explicit Flush() calls; every staged row must still reach the file exactly
// once and in order.
TEST(FlightRecorder, ConcurrentFlushKeepsEveryRow) {
  ReplayWorkload& w = Workload();
  const std::string path = SessionPath("stress");
  FlightRecorderOptions options;
  options.path = path;
  options.flush_interval_ms = 1;
  FlightRecorder recorder(options);
  ASSERT_TRUE(recorder.StartSession(w.ids.memory().Fingerprint()).ok());
  w.ids.SetVerdictObserver(&recorder);
  std::vector<Judgement> expected;
  for (int round = 0; round < 50; ++round) {
    const std::size_t offset = (static_cast<std::size_t>(round) * 17) % 100;
    const std::span<const JudgeRequest> slice(w.requests.data() + offset, 23);
    std::vector<Judgement> live = w.ids.JudgeBatch(slice, 1);
    expected.insert(expected.end(), live.begin(), live.end());
    if (round % 8 == 0) recorder.Flush();
  }
  w.ids.SetVerdictObserver(nullptr);
  recorder.Close();
  EXPECT_EQ(recorder.stats().dropped, 0u);

  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok()) << session.error().message();
  ASSERT_EQ(session.value().events.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    const RecordedEvent& event = session.value().events[i];
    EXPECT_EQ(event.allowed(), expected[i].allowed) << "row " << i;
    EXPECT_EQ(event.consistency(), expected[i].consistency) << "row " << i;
  }
  std::remove(path.c_str());
}

TEST(DriftMonitor, BaselineJsonRoundTrips) {
  ReplayWorkload& w = Workload();
  DriftBaseline baseline = BaselineFromMemory(w.ids.memory());
  EXPECT_FALSE(baseline.categories.empty());

  Result<DriftBaseline> reloaded = DriftBaseline::FromJson(baseline.ToJson());
  ASSERT_TRUE(reloaded.ok()) << reloaded.error().message();
  ASSERT_EQ(reloaded.value().categories.size(), baseline.categories.size());
  for (const auto& [category, expected] : baseline.categories) {
    const auto it = reloaded.value().categories.find(category);
    ASSERT_NE(it, reloaded.value().categories.end());
    EXPECT_EQ(it->second.allow_rate, expected.allow_rate);
    EXPECT_EQ(it->second.support, expected.support);
  }
  EXPECT_EQ(reloaded.value().features.size(), baseline.features.size());
}

TEST(DriftMonitor, SessionBaselineCoversVerdictsAndFeatures) {
  const std::string path = SessionPath("baseline");
  (void)RecordBatchSession(path);
  Result<RecordedSession> session = LoadSession(path);
  ASSERT_TRUE(session.ok()) << session.error().message();

  const DriftBaseline baseline = BaselineFromSession(session.value());
  EXPECT_FALSE(baseline.categories.empty());
  EXPECT_FALSE(baseline.features.empty());  // demo-home snapshots carry sensors
  for (const auto& [category, entry] : baseline.categories) EXPECT_GT(entry.support, 0u);
  std::remove(path.c_str());
}

TEST(DriftMonitor, FlagsVerdictRateAndFeatureShift) {
  DriftBaseline baseline;
  baseline.categories[DeviceCategory::kWindowAndLock] = {/*allow_rate=*/0.9,
                                                         /*support=*/1000};
  baseline.features[SensorType::kTemperature] = {/*mean=*/20.0, /*stddev=*/2.0,
                                                 /*support=*/1000};
  DriftMonitor monitor(baseline);
  MetricsRegistry registry;
  monitor.AttachTelemetry(&registry);

  // Production suddenly blocks everything the baseline allowed...
  for (int i = 0; i < 50; ++i) monitor.ObserveVerdict(DeviceCategory::kWindowAndLock, false);
  // ...and the temperature sensor reads 15 baseline sigmas high.
  SensorSnapshot hot;
  hot.Set("temperature", SensorType::kTemperature, SensorValue::Continuous(50.0));
  for (int i = 0; i < 10; ++i) monitor.ObserveSnapshot(hot);

  const DriftReport report = monitor.Evaluate();
  EXPECT_EQ(report.verdicts, 50u);
  EXPECT_EQ(report.snapshots, 10u);
  EXPECT_NEAR(report.max_rate_delta, 0.9, 1e-9);
  EXPECT_NEAR(report.max_feature_z, 15.0, 1e-9);
  EXPECT_TRUE(report.ToJson().is_object());

  // The gauges surfaced through the attached registry.
  bool found = false;
  registry.Find("sidet_drift_max_feature_z", "",
                [&](const MetricsRegistry::MetricView& view) {
                  found = true;
                  EXPECT_NEAR(view.gauge->Value(), 15.0, 1e-9);
                });
  EXPECT_TRUE(found);
}

TEST(AlertEvaluator, ThresholdRatioAndNoDataRules) {
  MetricsRegistry registry;
  registry.GetCounter("t_blocked")->Increment(30);
  registry.GetCounter("t_judged")->Increment(100);
  registry.GetGauge("t_depth")->Set(3.0);

  AlertEvaluator alerts;
  AlertRule ratio;
  ratio.name = "high_block_ratio";
  ratio.metric = "t_blocked";
  ratio.denominator_metric = "t_judged";
  ratio.threshold = 0.25;  // 0.30 observed -> firing
  alerts.AddRule(ratio);

  AlertRule below;
  below.name = "depth_low";
  below.metric = "t_depth";
  below.comparison = AlertRule::Comparison::kBelow;
  below.threshold = 5.0;  // 3.0 observed -> firing
  alerts.AddRule(below);

  AlertRule missing;
  missing.name = "no_such_metric";
  missing.metric = "t_never_registered";
  missing.threshold = 1.0;
  alerts.AddRule(missing);

  const std::vector<AlertState> states = alerts.Evaluate(registry);
  ASSERT_EQ(states.size(), 3u);
  EXPECT_TRUE(states[0].has_data);
  EXPECT_TRUE(states[0].firing);
  EXPECT_NEAR(states[0].value, 0.30, 1e-9);
  EXPECT_TRUE(states[1].firing);
  EXPECT_FALSE(states[2].has_data);
  EXPECT_FALSE(states[2].firing);  // no data never fires

  // Firing states write 0/1 gauges back for the exporters; a rule over a
  // missing metric must not have created the metric it watches.
  bool fired = false;
  registry.Find("sidet_alert_firing", PrometheusLabel("alert", "high_block_ratio"),
                [&](const MetricsRegistry::MetricView& view) {
                  fired = view.gauge->Value() == 1.0;
                });
  EXPECT_TRUE(fired);
  EXPECT_FALSE(registry.Find("t_never_registered", "",
                             [](const MetricsRegistry::MetricView&) {}));
  EXPECT_TRUE(AlertEvaluator::StatesJson(states).is_array());
}

TEST(AlertEvaluator, DefaultIdsAlertPackIsWellFormed) {
  const std::vector<AlertRule> pack = DefaultIdsAlerts();
  ASSERT_FALSE(pack.empty());
  std::vector<std::string> names;
  for (const AlertRule& rule : pack) {
    EXPECT_FALSE(rule.name.empty());
    EXPECT_FALSE(rule.metric.empty());
    names.push_back(rule.name);
  }
  std::sort(names.begin(), names.end());
  EXPECT_EQ(std::unique(names.begin(), names.end()), names.end());
}

}  // namespace
}  // namespace sidet
