// Prometheus text exposition conformance (format 0.0.4), parser-style: a
// small line-grammar parser walks the exporter's whole output and checks the
// structural invariants a real scrape pipeline depends on — every line is a
// comment or a `name{labels} value` sample, each metric's HELP/TYPE block
// precedes its samples and appears once, histogram `_bucket` series are
// cumulative and monotone with `le="+Inf"` equal to `_count`, `_sum`/`_count`
// are present, and escaping keeps pathological HELP text and label values
// from corrupting the framing.
#include <gtest/gtest.h>

#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/exporters.h"
#include "telemetry/metrics.h"

namespace sidet {
namespace {

struct ParsedSample {
  std::string name;    // metric name including _bucket/_sum/_count suffix
  std::string labels;  // raw text between the braces ("" when none)
  double value = 0.0;
};

struct ParsedExposition {
  std::vector<ParsedSample> samples;              // exposition order
  std::vector<std::string> help_order;            // metric per # HELP line
  std::vector<std::string> type_order;            // metric per # TYPE line
  std::map<std::string, std::string> types;       // metric -> counter|gauge|histogram
  std::vector<std::string> errors;                // grammar violations
};

bool ValidMetricName(const std::string& name) {
  if (name.empty()) return false;
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    const bool alpha = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
                       c == ':';
    if (!(alpha || (i > 0 && c >= '0' && c <= '9'))) return false;
  }
  return true;
}

// Walks the label body `k1="v1",k2="v2"` honouring \" escapes; returns false
// on any framing violation.
bool ValidLabelBody(const std::string& body, std::vector<std::string>* errors) {
  std::size_t i = 0;
  while (i < body.size()) {
    std::size_t eq = body.find('=', i);
    if (eq == std::string::npos || eq == i) {
      errors->push_back("label missing '=': " + body);
      return false;
    }
    if (!ValidMetricName(body.substr(i, eq - i))) {
      errors->push_back("bad label name in: " + body);
      return false;
    }
    if (eq + 1 >= body.size() || body[eq + 1] != '"') {
      errors->push_back("label value not quoted: " + body);
      return false;
    }
    std::size_t j = eq + 2;
    while (j < body.size() && body[j] != '"') {
      if (body[j] == '\\') ++j;  // escaped char consumes two
      ++j;
    }
    if (j >= body.size()) {
      errors->push_back("unterminated label value: " + body);
      return false;
    }
    i = j + 1;
    if (i < body.size()) {
      if (body[i] != ',') {
        errors->push_back("label pairs not comma-separated: " + body);
        return false;
      }
      ++i;
    }
  }
  return true;
}

ParsedExposition ParseExposition(const std::string& text) {
  ParsedExposition out;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) {
      out.errors.push_back("blank line in exposition");
      continue;
    }
    if (line.rfind("# HELP ", 0) == 0) {
      const std::size_t space = line.find(' ', 7);
      out.help_order.push_back(line.substr(7, space - 7));
      continue;
    }
    if (line.rfind("# TYPE ", 0) == 0) {
      const std::size_t space = line.find(' ', 7);
      const std::string name = line.substr(7, space - 7);
      const std::string kind = line.substr(space + 1);
      out.type_order.push_back(name);
      if (kind != "counter" && kind != "gauge" && kind != "histogram") {
        out.errors.push_back("unknown TYPE: " + kind);
      }
      if (!out.types.emplace(name, kind).second) {
        out.errors.push_back("duplicate TYPE block: " + name);
      }
      continue;
    }
    if (line[0] == '#') {
      out.errors.push_back("unknown comment: " + line);
      continue;
    }
    ParsedSample sample;
    std::size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos) {
      out.errors.push_back("sample without value: " + line);
      continue;
    }
    sample.name = line.substr(0, name_end);
    if (!ValidMetricName(sample.name)) {
      out.errors.push_back("bad metric name: " + sample.name);
    }
    std::size_t value_start = name_end;
    if (line[name_end] == '{') {
      // Label values may contain '}' only escaped; scan with quote awareness.
      std::size_t close = std::string::npos;
      bool in_quotes = false;
      for (std::size_t i = name_end + 1; i < line.size(); ++i) {
        if (in_quotes && line[i] == '\\') {
          ++i;
        } else if (line[i] == '"') {
          in_quotes = !in_quotes;
        } else if (!in_quotes && line[i] == '}') {
          close = i;
          break;
        }
      }
      if (close == std::string::npos) {
        out.errors.push_back("unterminated label set: " + line);
        continue;
      }
      sample.labels = line.substr(name_end + 1, close - name_end - 1);
      ValidLabelBody(sample.labels, &out.errors);
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      out.errors.push_back("missing space before value: " + line);
      continue;
    }
    char* end = nullptr;
    sample.value = std::strtod(line.c_str() + value_start + 1, &end);
    if (end == line.c_str() + value_start + 1 || *end != '\0') {
      out.errors.push_back("unparseable value: " + line);
      continue;
    }
    out.samples.push_back(std::move(sample));
  }
  return out;
}

std::string BaseName(const std::string& name) {
  for (const char* suffix : {"_bucket", "_sum", "_count"}) {
    const std::string s = suffix;
    if (name.size() > s.size() && name.compare(name.size() - s.size(), s.size(), s) == 0) {
      return name.substr(0, name.size() - s.size());
    }
  }
  return name;
}

MetricsRegistry& ConformanceRegistry() {
  static MetricsRegistry* registry = [] {
    auto* r = new MetricsRegistry();
    r->GetCounter("sidet_conf_requests_total", "", "requests served")->Increment(42);
    r->GetCounter("sidet_conf_requests_total", "home=\"alpha\"")->Increment(7);
    r->GetCounter("sidet_conf_requests_total", "home=\"beta\"")->Increment(9);
    r->GetGauge("sidet_conf_queue_depth", "", "instantaneous depth")->Set(3.5);
    Histogram* latency = r->GetHistogram("sidet_conf_latency_seconds", "",
                                         {0.001, 0.01, 0.1, 1.0}, "e2e latency");
    latency->Observe(0.0005);
    latency->Observe(0.005);
    latency->Observe(0.005);
    latency->Observe(0.5);
    latency->Observe(50.0);  // overflow bucket
    // Pathological HELP text and label value: escaping must keep framing.
    r->GetCounter("sidet_conf_weird_total", "path=\"C:\\\\tmp\\\"x\\\"\"",
                  "help with \\ backslash\nand newline")
        ->Increment();
    ExportBuildInfo(*r);
    return r;
  }();
  return *registry;
}

TEST(PrometheusConformance, EveryLineParsesUnderTheLineGrammar) {
  const ParsedExposition parsed = ParseExposition(PrometheusText(ConformanceRegistry()));
  EXPECT_TRUE(parsed.errors.empty()) << parsed.errors.front();
  EXPECT_FALSE(parsed.samples.empty());
}

TEST(PrometheusConformance, TypeBlocksAreUniqueAndPrecedeTheirSamples) {
  const ParsedExposition parsed = ParseExposition(PrometheusText(ConformanceRegistry()));
  // One TYPE per metric name, announced before any of its samples.
  std::set<std::string> seen_types;
  std::size_t sample_cursor = 0;
  (void)sample_cursor;
  for (const std::string& name : parsed.type_order) {
    EXPECT_TRUE(seen_types.insert(name).second) << "duplicate TYPE " << name;
  }
  std::set<std::string> sampled;
  for (const ParsedSample& sample : parsed.samples) {
    const std::string base = BaseName(sample.name);
    EXPECT_TRUE(parsed.types.count(base) != 0)
        << "sample " << sample.name << " without TYPE block";
    sampled.insert(base);
  }
  // HELP lines (when present) name metrics that actually expose samples.
  for (const std::string& name : parsed.help_order) {
    EXPECT_TRUE(sampled.count(name) != 0) << "HELP for sample-less metric " << name;
  }
}

TEST(PrometheusConformance, HistogramBucketsAreCumulativeWithInfEqualCount) {
  const ParsedExposition parsed = ParseExposition(PrometheusText(ConformanceRegistry()));
  const std::string metric = "sidet_conf_latency_seconds";
  ASSERT_EQ(parsed.types.at(metric), "histogram");

  std::vector<double> bucket_values;
  bool saw_inf = false;
  double inf_value = -1.0, sum = -1.0, count = -1.0;
  for (const ParsedSample& sample : parsed.samples) {
    if (sample.name == metric + "_bucket") {
      if (sample.labels.find("le=\"+Inf\"") != std::string::npos) {
        saw_inf = true;
        inf_value = sample.value;
      } else {
        ASSERT_NE(sample.labels.find("le=\""), std::string::npos);
        bucket_values.push_back(sample.value);
      }
    }
    if (sample.name == metric + "_sum") sum = sample.value;
    if (sample.name == metric + "_count") count = sample.value;
  }
  ASSERT_TRUE(saw_inf);
  ASSERT_EQ(bucket_values.size(), 4u);  // one per finite bound
  // Cumulative: monotone non-decreasing across ascending le bounds.
  for (std::size_t i = 1; i < bucket_values.size(); ++i) {
    EXPECT_GE(bucket_values[i], bucket_values[i - 1]);
  }
  // {0.0005} <= 0.001; +{0.005 x2} <= 0.01; 0.1 adds none; +{0.5} <= 1.0.
  EXPECT_DOUBLE_EQ(bucket_values[0], 1.0);
  EXPECT_DOUBLE_EQ(bucket_values[1], 3.0);
  EXPECT_DOUBLE_EQ(bucket_values[2], 3.0);
  EXPECT_DOUBLE_EQ(bucket_values[3], 4.0);
  // The +Inf bucket is the total observation count, and _count agrees.
  EXPECT_DOUBLE_EQ(inf_value, 5.0);
  EXPECT_DOUBLE_EQ(count, 5.0);
  EXPECT_GE(bucket_values.back(), 0.0);
  EXPECT_GE(inf_value, bucket_values.back());
  EXPECT_NEAR(sum, 0.0005 + 0.005 + 0.005 + 0.5 + 50.0, 1e-9);
}

TEST(PrometheusConformance, LabelledSeriesShareOneAnnouncementBlock) {
  const ParsedExposition parsed = ParseExposition(PrometheusText(ConformanceRegistry()));
  int requests_series = 0;
  for (const ParsedSample& sample : parsed.samples) {
    if (sample.name == "sidet_conf_requests_total") ++requests_series;
  }
  EXPECT_EQ(requests_series, 3);  // unlabelled + alpha + beta
  int type_blocks = 0;
  for (const std::string& name : parsed.type_order) {
    if (name == "sidet_conf_requests_total") ++type_blocks;
  }
  EXPECT_EQ(type_blocks, 1);
}

TEST(PrometheusConformance, BuildInfoGaugeJoinsProvenanceLabels) {
  const ParsedExposition parsed = ParseExposition(PrometheusText(ConformanceRegistry()));
  bool found = false;
  for (const ParsedSample& sample : parsed.samples) {
    if (sample.name != "sidet_build_info") continue;
    found = true;
    EXPECT_EQ(parsed.types.at("sidet_build_info"), "gauge");
    EXPECT_DOUBLE_EQ(sample.value, 1.0);  // constant 1: join by group_left
    EXPECT_NE(sample.labels.find("version=\""), std::string::npos);
    EXPECT_NE(sample.labels.find("compiler=\""), std::string::npos);
  }
  EXPECT_TRUE(found);
  // Idempotent registration: a second export adds no second series.
  ExportBuildInfo(ConformanceRegistry());
  const ParsedExposition again = ParseExposition(PrometheusText(ConformanceRegistry()));
  int build_series = 0;
  for (const ParsedSample& sample : again.samples) {
    if (sample.name == "sidet_build_info") ++build_series;
  }
  EXPECT_EQ(build_series, 1);
}

TEST(PrometheusConformance, EscapingHelpers) {
  EXPECT_EQ(PrometheusEscapeHelp("a\\b\nc"), "a\\\\b\\nc");
  EXPECT_EQ(PrometheusEscapeLabelValue("say \"hi\"\\now\n"), "say \\\"hi\\\"\\\\now\\n");
  EXPECT_EQ(PrometheusLabel("home", "a\"b"), "home=\"a\\\"b\"");
}

}  // namespace
}  // namespace sidet
