// The telemetry substrate: metric semantics (counters, gauges, fixed-bucket
// histograms with quantile readout), registry handle identity, span tracing
// with an injected clock, and the three exporters. The hot-path contract —
// updates through resolved handles are lock-free and exact under concurrency
// — is exercised with real threads so TSan patrols it.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/json.h"
#include "util/thread_pool.h"

namespace sidet {
namespace {

TEST(TelemetryMetrics, CounterIsMonotonic) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(TelemetryMetrics, GaugeSetsAndAdds) {
  Gauge g;
  EXPECT_EQ(g.Value(), 0.0);
  g.Set(2.5);
  EXPECT_EQ(g.Value(), 2.5);
  g.Add(-1.0);
  EXPECT_EQ(g.Value(), 1.5);
  g.Set(0.25);  // Set overwrites, not accumulates
  EXPECT_EQ(g.Value(), 0.25);
}

TEST(TelemetryMetrics, HistogramBucketsCountAndSum) {
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0 (<=1)
  h.Observe(1.0);    // bucket 0 (bounds are inclusive upper bounds)
  h.Observe(5.0);    // bucket 1
  h.Observe(1000.0); // overflow bucket
  EXPECT_EQ(h.Count(), 4u);
  EXPECT_DOUBLE_EQ(h.Sum(), 1006.5);
  ASSERT_EQ(h.bounds().size(), 3u);
  EXPECT_EQ(h.BucketCount(0), 2u);
  EXPECT_EQ(h.BucketCount(1), 1u);
  EXPECT_EQ(h.BucketCount(2), 0u);
  EXPECT_EQ(h.BucketCount(3), 1u);  // +Inf
}

TEST(TelemetryMetrics, HistogramQuantilesInterpolate) {
  Histogram h({10.0, 20.0, 30.0});
  for (int i = 0; i < 50; ++i) h.Observe(12.0);  // bucket 1
  for (int i = 0; i < 50; ++i) h.Observe(25.0);  // bucket 2
  // Interior quantiles interpolate inside the landing bucket, clamped to the
  // observed [min, max].
  const double p50 = h.Quantile(0.5);
  EXPECT_GE(p50, 12.0);
  EXPECT_LE(p50, 25.0);
  EXPECT_LT(h.Quantile(0.1), h.Quantile(0.9));
}

TEST(TelemetryMetrics, HistogramQuantileEdgeCases) {
  Histogram empty({1.0, 2.0});
  EXPECT_EQ(empty.Quantile(0.5), 0.0);  // no observations
  EXPECT_EQ(empty.Min(), 0.0);
  EXPECT_EQ(empty.Max(), 0.0);

  Histogram overflow({1.0, 2.0});
  overflow.Observe(100.0);
  // Overflow-bucket values clamp to the observed max, never +Inf (and no
  // longer under-report as the last finite bound).
  EXPECT_EQ(overflow.Quantile(0.99), 100.0);
  EXPECT_EQ(overflow.Max(), 100.0);
}

TEST(TelemetryMetrics, HistogramSingleSampleReportsItself) {
  // Regression: sidet_ids_batch_rows with one 8192-row batch used to report
  // p50 = 10240 — linear interpolation inside the (4096, 16384] bucket,
  // above the only value ever observed. The [min, max] clamp pins every
  // quantile of a single-sample histogram to that sample.
  Histogram h({1, 8, 64, 256, 1024, 4096, 16384, 65536});
  h.Observe(8192.0);
  EXPECT_EQ(h.Count(), 1u);
  EXPECT_DOUBLE_EQ(h.Quantile(0.5), 8192.0);
  EXPECT_DOUBLE_EQ(h.Quantile(0.0), 8192.0);
  EXPECT_DOUBLE_EQ(h.Quantile(1.0), 8192.0);
  EXPECT_DOUBLE_EQ(h.Min(), 8192.0);
  EXPECT_DOUBLE_EQ(h.Max(), 8192.0);
}

TEST(TelemetryMetrics, DefaultLatencyBoundsAreAscending) {
  const std::vector<double> bounds = DefaultLatencyBoundsSeconds();
  ASSERT_GE(bounds.size(), 8u);
  for (std::size_t i = 1; i < bounds.size(); ++i) EXPECT_LT(bounds[i - 1], bounds[i]);
  EXPECT_LE(bounds.front(), 1e-6);
  EXPECT_GE(bounds.back(), 10.0);
}

TEST(TelemetryRegistry, ReRegistrationReturnsSameHandle) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("sidet_test_total", "", "help once");
  Counter* b = registry.GetCounter("sidet_test_total");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a, b);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(TelemetryRegistry, LabelsDistinguishSeries) {
  MetricsRegistry registry;
  Counter* miio = registry.GetCounter("sidet_test_total", "vendor=\"miio\"");
  Counter* rest = registry.GetCounter("sidet_test_total", "vendor=\"rest\"");
  ASSERT_NE(miio, nullptr);
  ASSERT_NE(rest, nullptr);
  EXPECT_NE(miio, rest);
  EXPECT_EQ(registry.size(), 2u);
}

TEST(TelemetryRegistry, KindMismatchReturnsNull) {
  MetricsRegistry registry;
  ASSERT_NE(registry.GetCounter("sidet_test_metric"), nullptr);
  EXPECT_EQ(registry.GetGauge("sidet_test_metric"), nullptr);
  EXPECT_EQ(registry.GetHistogram("sidet_test_metric"), nullptr);
  EXPECT_EQ(registry.size(), 1u);  // the failed lookups register nothing
}

TEST(TelemetryRegistry, VisitRunsInRegistrationOrder) {
  MetricsRegistry registry;
  registry.GetCounter("sidet_z_total");
  registry.GetGauge("sidet_a_gauge");
  registry.GetHistogram("sidet_m_seconds");
  std::vector<std::string> names;
  registry.Visit([&names](const MetricsRegistry::MetricView& view) {
    names.push_back(view.name);
  });
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "sidet_z_total");
  EXPECT_EQ(names[1], "sidet_a_gauge");
  EXPECT_EQ(names[2], "sidet_m_seconds");
}

TEST(TelemetryRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("sidet_test_concurrent_total");
  Histogram* hist = registry.GetHistogram("sidet_test_concurrent_seconds", "", {1.0});
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([counter, hist] {
      for (int i = 0; i < kPerThread; ++i) {
        counter->Increment();
        hist->Observe(0.5);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(counter->Value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(hist->Count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(hist->Sum(), kThreads * kPerThread * 0.5);
  EXPECT_EQ(hist->BucketCount(0), static_cast<std::uint64_t>(kThreads) * kPerThread);
}

TEST(TelemetryRegistry, ConcurrentRegistrationReturnsOneHandle) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  std::vector<Counter*> handles(kThreads, nullptr);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry, &handles, t] {
      handles[t] = registry.GetCounter("sidet_test_race_total");
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(registry.size(), 1u);
}

TEST(TelemetryExporters, PrometheusTextShape) {
  MetricsRegistry registry;
  registry.GetCounter("sidet_demo_total", "", "A demo counter")->Increment(3);
  registry.GetGauge("sidet_demo_depth")->Set(7.0);
  Histogram* h = registry.GetHistogram("sidet_demo_seconds", "", {0.1, 1.0});
  h->Observe(0.05);
  h->Observe(0.5);
  registry.GetCounter("sidet_demo_labeled_total", "vendor=\"miio\"")->Increment();

  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("# HELP sidet_demo_total A demo counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sidet_demo_total counter"), std::string::npos);
  EXPECT_NE(text.find("sidet_demo_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sidet_demo_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE sidet_demo_seconds histogram"), std::string::npos);
  // Cumulative buckets: the 1.0 bucket includes the 0.1 bucket's hit.
  EXPECT_NE(text.find("sidet_demo_seconds_bucket{le=\"0.1\"} 1"), std::string::npos);
  EXPECT_NE(text.find("sidet_demo_seconds_bucket{le=\"1\"} 2"), std::string::npos);
  EXPECT_NE(text.find("sidet_demo_seconds_bucket{le=\"+Inf\"} 2"), std::string::npos);
  EXPECT_NE(text.find("sidet_demo_seconds_count 2"), std::string::npos);
  EXPECT_NE(text.find("sidet_demo_labeled_total{vendor=\"miio\"} 1"), std::string::npos);
}

TEST(TelemetryExporters, PrometheusEscapesPathologicalHelpAndLabels) {
  MetricsRegistry registry;
  registry.GetCounter("sidet_evil_total", "", "line one\nline two with \\ backslash")
      ->Increment();
  registry
      .GetGauge("sidet_evil_depth",
                PrometheusLabel("path", "C:\\tmp\n\"quoted\" value"))
      ->Set(1.0);

  const std::string text = PrometheusText(registry);
  // HELP folds the newline and doubles the backslash, keeping one block line.
  EXPECT_NE(text.find("# HELP sidet_evil_total line one\\nline two with \\\\ backslash\n"),
            std::string::npos);
  // Label values additionally escape the double quote.
  EXPECT_NE(text.find("sidet_evil_depth{path=\"C:\\\\tmp\\n\\\"quoted\\\" value\"} 1\n"),
            std::string::npos);
  // No raw newline survives inside any exported line: every '\n' in the text
  // terminates a well-formed line starting with '#' or a sidet_ series.
  std::size_t start = 0;
  while (start < text.size()) {
    const std::size_t end = text.find('\n', start);
    ASSERT_NE(end, std::string::npos);
    const std::string_view line(text.data() + start, end - start);
    EXPECT_TRUE(line.rfind("# ", 0) == 0 || line.rfind("sidet_", 0) == 0) << line;
    start = end + 1;
  }
}

TEST(TelemetryRegistry, FindNeverCreatesAndResolvesExisting) {
  MetricsRegistry registry;
  registry.GetCounter("sidet_present_total", "k=\"v\"")->Increment(4);

  bool seen = false;
  EXPECT_TRUE(registry.Find("sidet_present_total", "k=\"v\"",
                            [&](const MetricsRegistry::MetricView& view) {
                              seen = true;
                              EXPECT_EQ(view.kind, MetricKind::kCounter);
                              EXPECT_EQ(view.counter->Value(), 4u);
                            }));
  EXPECT_TRUE(seen);
  // Wrong labels or unknown names miss without registering anything.
  EXPECT_FALSE(registry.Find("sidet_present_total", "", [](const auto&) {}));
  EXPECT_FALSE(registry.Find("sidet_absent_total", "", [](const auto&) {}));
  EXPECT_EQ(registry.size(), 1u);
}

TEST(TelemetryExporters, MetricsSnapshotJsonShape) {
  MetricsRegistry registry;
  registry.GetCounter("sidet_demo_total")->Increment(5);
  registry.GetGauge("sidet_demo_depth")->Set(2.0);
  Histogram* h = registry.GetHistogram("sidet_demo_seconds", "", {1.0, 2.0});
  h->Observe(0.5);
  h->Observe(1.5);

  const Json snapshot = MetricsSnapshotJson(registry);
  // Round-trips through the project parser.
  const Result<Json> reparsed = Json::Parse(snapshot.Dump());
  ASSERT_TRUE(reparsed.ok());

  const Json* counters = snapshot.find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->number_or("sidet_demo_total", -1), 5);
  const Json* gauges = snapshot.find("gauges");
  ASSERT_NE(gauges, nullptr);
  EXPECT_EQ(gauges->number_or("sidet_demo_depth", -1), 2.0);
  const Json* histograms = snapshot.find("histograms");
  ASSERT_NE(histograms, nullptr);
  const Json* demo = histograms->find("sidet_demo_seconds");
  ASSERT_NE(demo, nullptr);
  EXPECT_EQ(demo->number_or("count", -1), 2);
  EXPECT_DOUBLE_EQ(demo->number_or("sum", -1), 2.0);
  EXPECT_NE(demo->find("p50"), nullptr);
  EXPECT_NE(demo->find("p95"), nullptr);
  EXPECT_NE(demo->find("p99"), nullptr);
}

// A hand-cranked clock: every call advances time by a fixed step, so span
// durations are exact and the test never depends on wall time.
SpanTracer::ClockFn SteppingClock(std::int64_t* now, std::int64_t step) {
  return [now, step] {
    const std::int64_t t = *now;
    *now += step;
    return t;
  };
}

TEST(TelemetryTrace, SpansRecordWithInjectedClock) {
  std::int64_t now = 1000;
  SpanTracer tracer(SteppingClock(&now, 10));
  {
    TraceSpan span(&tracer, "outer");
  }
  const std::vector<SpanEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_STREQ(events[0].name, "outer");
  EXPECT_EQ(events[0].start_us, 1000);
  EXPECT_EQ(events[0].duration_us, 10);
}

TEST(TelemetryTrace, NestedSpansCompleteInnerFirst) {
  std::int64_t now = 0;
  SpanTracer tracer(SteppingClock(&now, 1));
  {
    SIDET_TRACE_SPAN(&tracer, "outer");
    {
      SIDET_TRACE_SPAN(&tracer, "inner", "stage");
    }
  }
  const std::vector<SpanEvent> events = tracer.Events();
  ASSERT_EQ(events.size(), 2u);
  // Complete events land at close time: inner first, nested inside outer.
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[0].category, "stage");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_GE(events[0].start_us, events[1].start_us);
  EXPECT_LE(events[0].start_us + events[0].duration_us,
            events[1].start_us + events[1].duration_us);
}

TEST(TelemetryTrace, NullTracerIsANoop) {
  TraceSpan span(nullptr, "ignored");
  ScopedStage stage(nullptr, nullptr, "ignored");
  // Nothing to assert beyond "does not crash"; the null path is the
  // compiled-in-but-idle mode bench_observability measures.
}

TEST(TelemetryTrace, CapacityBoundsBufferAndCountsDrops) {
  std::int64_t now = 0;
  SpanTracer tracer(SteppingClock(&now, 1), /*capacity=*/4);
  for (int i = 0; i < 10; ++i) tracer.Record("s", "c", i, 1);
  EXPECT_EQ(tracer.size(), 4u);
  EXPECT_EQ(tracer.dropped(), 6u);
  tracer.Clear();
  EXPECT_EQ(tracer.size(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  tracer.Record("s", "c", 0, 1);
  EXPECT_EQ(tracer.size(), 1u);
}

TEST(TelemetryTrace, ScopedStageFeedsHistogramAndTracerFromOneClock) {
  std::int64_t now = 0;
  SpanTracer tracer(SteppingClock(&now, 500));  // 500µs per clock read
  Histogram latency({0.001, 1.0});
  {
    ScopedStage stage(&tracer, &latency, "ids.detect");
  }
  ASSERT_EQ(tracer.Events().size(), 1u);
  EXPECT_EQ(tracer.Events()[0].duration_us, 500);
  ASSERT_EQ(latency.Count(), 1u);
  EXPECT_DOUBLE_EQ(latency.Sum(), 500e-6);  // the same interval, in seconds
  EXPECT_EQ(latency.BucketCount(0), 1u);    // 500µs <= 1ms
}

TEST(TelemetryTrace, ThreadIdsAreStablePerThreadAndDistinct) {
  const std::uint32_t main_a = CurrentTraceThreadId();
  const std::uint32_t main_b = CurrentTraceThreadId();
  EXPECT_EQ(main_a, main_b);
  std::uint32_t worker_id = main_a;
  std::thread([&worker_id] { worker_id = CurrentTraceThreadId(); }).join();
  EXPECT_NE(worker_id, main_a);
}

TEST(TelemetryExporters, ChromeTraceJsonIsLoadable) {
  std::int64_t now = 250;
  SpanTracer tracer(SteppingClock(&now, 50));
  {
    TraceSpan span(&tracer, "ids.judge", "pipeline");
  }
  const Json trace = ChromeTraceJson(tracer);
  const Result<Json> reparsed = Json::Parse(trace.Dump());
  ASSERT_TRUE(reparsed.ok());

  const Json* events = trace.find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  ASSERT_EQ(events->as_array().size(), 1u);
  const Json& event = events->as_array()[0];
  EXPECT_EQ(event.string_or("ph", ""), "X");  // complete event
  EXPECT_EQ(event.string_or("name", ""), "ids.judge");
  EXPECT_EQ(event.string_or("cat", ""), "pipeline");
  EXPECT_EQ(event.number_or("ts", -1), 250);
  EXPECT_EQ(event.number_or("dur", -1), 50);
  EXPECT_NE(event.find("pid"), nullptr);
  EXPECT_NE(event.find("tid"), nullptr);
}

TEST(TelemetryExporters, ThreadPoolTelemetryCountsTasks) {
  MetricsRegistry registry;
  ThreadPool pool(2);
  AttachThreadPoolTelemetry(pool, registry);
  constexpr int kTasks = 32;
  std::atomic<int> ran{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    futures.push_back(pool.Submit([&ran] { ran.fetch_add(1); }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(ran.load(), kTasks);
  EXPECT_EQ(registry.GetCounter("sidet_pool_tasks_total")->Value(),
            static_cast<std::uint64_t>(kTasks));
  EXPECT_EQ(registry.GetHistogram("sidet_pool_task_seconds")->Count(),
            static_cast<std::uint64_t>(kTasks));
  ASSERT_NE(registry.GetGauge("sidet_pool_queue_depth"), nullptr);
}

}  // namespace
}  // namespace sidet
