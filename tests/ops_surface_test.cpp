// The explain/query/health ops surface over the wire (DESIGN.md §17): a
// gateway with a time-series store, SLO engine and drift monitor attached
// must (1) serve per-verdict attributions through `explain`, (2) answer
// windowed `query` reductions over retained registry samples, and (3) render
// a per-home `health` scorecard in which injected shed and drift become
// visible within one sampling interval of the store observing them.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "core/ids.h"
#include "core/model_store.h"
#include "datagen/corpus_generator.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "replay/drift_monitor.h"
#include "server/client.h"
#include "server/gateway.h"
#include "server/router.h"
#include "server/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/slo.h"
#include "telemetry/timeseries.h"
#include "util/json.h"

namespace sidet {
namespace {

// Same once-per-process serving fixture shape as gateway_test: train one
// memory, persist it, and reload per IDS instance.
class OpsSurfaceFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new InstructionRegistry(BuildStandardInstructionSet());
    Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, *registry_);
    ASSERT_TRUE(corpus.ok());
    ContextFeatureMemory memory;
    MemoryTrainingOptions options;
    options.samples_per_device = 1200;
    ASSERT_TRUE(memory.TrainFromCorpus(corpus.value().corpus, options).ok());
    model_path_ = new std::string(::testing::TempDir() + "sidet_ops_model." +
                                  std::to_string(::getpid()) + ".json");
    ASSERT_TRUE(SaveMemory(memory, *model_path_).ok());

    SmartHome home = BuildDemoHome(7);
    home.Step(3 * kSecondsPerHour);
    snapshot_ = new SensorSnapshot(home.Snapshot());
    time_ = home.now();
  }
  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete registry_;
    delete model_path_;
    delete snapshot_;
    registry_ = nullptr;
    model_path_ = nullptr;
    snapshot_ = nullptr;
  }

  static ContextIds MakeIds() {
    Result<ContextFeatureMemory> memory = LoadMemory(*model_path_);
    EXPECT_TRUE(memory.ok());
    return ContextIds(SensitiveInstructionDetector(PaperTableThree()),
                      std::move(memory).value());
  }

  static void PushAmbientContext(GatewayClient& client) {
    Json context = Json::Object();
    context["op"] = "context";
    context["id"] = 1;
    context["snapshot"] = snapshot_->ToJson();
    Result<Json> ack = client.Call(context);
    ASSERT_TRUE(ack.ok()) << ack.error().message();
    ASSERT_TRUE(ack.value().bool_or("ok", false));
  }

  static InstructionRegistry* registry_;
  static std::string* model_path_;
  static SensorSnapshot* snapshot_;
  static SimTime time_;
};
InstructionRegistry* OpsSurfaceFixture::registry_ = nullptr;
std::string* OpsSurfaceFixture::model_path_ = nullptr;
SensorSnapshot* OpsSurfaceFixture::snapshot_ = nullptr;
SimTime OpsSurfaceFixture::time_;

TEST_F(OpsSurfaceFixture, ExplainServesAttributionsOverTheWire) {
  MetricsRegistry metrics;
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy, &metrics);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics);
  ASSERT_TRUE(gateway.Start().ok());

  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());
  PushAmbientContext(client.value());

  Result<Json> explained =
      client.value().Explain("default", "window.open", time_.seconds(), 3);
  ASSERT_TRUE(explained.ok()) << explained.error().message();
  const Json& body = explained.value();
  EXPECT_EQ(body.string_or("kind", ""), "scored");
  ASSERT_NE(body.find("contributions"), nullptr);
  const std::vector<Json>& contributions = body.find("contributions")->as_array();
  ASSERT_FALSE(contributions.empty());
  ASSERT_LE(contributions.size(), 3u);
  for (const Json& entry : contributions) {
    EXPECT_FALSE(entry.string_or("feature", "").empty());
    EXPECT_FALSE(entry.string_or("reason", "").empty());
    EXPECT_NE(entry.find("contribution"), nullptr);
  }
  // The wire judgement matches a direct judge of the same arguments.
  Json judge = Json::Object();
  judge["op"] = "judge";
  judge["id"] = 9;
  judge["instruction"] = "window.open";
  judge["time"] = time_.seconds();
  Result<Json> verdict = client.value().Call(judge);
  ASSERT_TRUE(verdict.ok());
  EXPECT_EQ(body.bool_or("allowed", !verdict.value().bool_or("allowed", false)),
            verdict.value().bool_or("allowed", false));
  EXPECT_EQ(body.number_or("consistency", -1.0),
            verdict.value().number_or("consistency", -2.0));

  // In-band errors stay in-band: unknown instruction and unknown home.
  EXPECT_FALSE(client.value().Explain("default", "warp.drive", time_.seconds()).ok());
  EXPECT_FALSE(client.value().Explain("nowhere", "window.open", time_.seconds()).ok());
  gateway.Shutdown();
}

TEST_F(OpsSurfaceFixture, QueryAnswersWindowedReductionsOverRetainedSamples) {
  MetricsRegistry metrics;
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy, &metrics);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  TimeSeriesStore store;
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics);
  gateway.AttachOps({&store, nullptr, nullptr});
  ASSERT_TRUE(gateway.Start().ok());

  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());
  PushAmbientContext(client.value());

  store.SampleNow(metrics, 1000);  // pre-traffic baseline
  for (int i = 0; i < 5; ++i) {
    Json judge = Json::Object();
    judge["op"] = "judge";
    judge["id"] = 10 + i;
    judge["instruction"] = "window.open";
    judge["time"] = time_.seconds();
    Result<Json> verdict = client.value().Call(judge);
    ASSERT_TRUE(verdict.ok());
  }
  store.SampleNow(metrics, 2000);  // one interval later the judges are visible

  Result<Json> range = client.value().QueryRange("sidet_gateway_requests_total", "", 60);
  ASSERT_TRUE(range.ok()) << range.error().message();
  const Json* result = range.value().find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_TRUE(result->bool_or("found", false));
  EXPECT_TRUE(result->bool_or("cumulative", false));
  EXPECT_GE(result->number_or("delta", 0.0), 5.0);
  EXPECT_GE(range.value().number_or("samples_taken", 0.0), 2.0);

  // Unknown series: found == false in-band, not a transport error.
  Result<Json> unknown = client.value().QueryRange("sidet_no_such_series", "", 60);
  ASSERT_TRUE(unknown.ok());
  EXPECT_FALSE(unknown.value().find("result")->bool_or("found", true));
  gateway.Shutdown();
}

TEST_F(OpsSurfaceFixture, QueryAndScorecardRequireAnAttachedStore) {
  MetricsRegistry metrics;
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy, &metrics);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics);  // no AttachOps
  ASSERT_TRUE(gateway.Start().ok());

  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());
  EXPECT_FALSE(client.value().QueryRange("sidet_gateway_requests_total", "", 60).ok());
  // `health` still answers liveness, just without a scorecard.
  Result<Json> health = client.value().FetchHealth(60);
  ASSERT_TRUE(health.ok());
  EXPECT_EQ(health.value().string_or("status", ""), "serving");
  EXPECT_EQ(health.value().find("scorecard"), nullptr);
  gateway.Shutdown();
}

TEST_F(OpsSurfaceFixture, HealthScorecardShowsInjectedShedAndDriftWithinOneInterval) {
  MetricsRegistry metrics;
  // A two-deep queue behind a 50 ms coalescing delay. max_batch stays above
  // the capacity so the worker actually coalesces (with max_batch 1 the
  // deadline wait is skipped and the queue drains instantly): tasks sit
  // queued for the full delay and a rapid submit loop must shed.
  BatchPolicy policy;
  policy.queue_capacity = 2;
  policy.max_batch = 4;
  policy.min_delay_us = policy.max_delay_us = 50'000;
  policy.overflow = OverflowPolicy::kShed;
  GatewayRouter router(policy, &metrics);
  ContextIds ids = MakeIds();
  const DriftBaseline baseline = BaselineFromMemory(ids.memory());
  ASSERT_FALSE(baseline.categories.empty());
  ASSERT_TRUE(router.AddHome("default", std::move(ids)).ok());

  TimeSeriesStore store;
  SloEngine slo;
  for (SloObjective& objective : DefaultGatewaySlos("default")) {
    slo.AddObjective(std::move(objective));
  }
  DriftMonitor drift(baseline);
  drift.AttachTelemetry(&metrics);

  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics);
  gateway.AttachOps({&store, &slo, &drift});
  ASSERT_TRUE(gateway.Start().ok());

  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());
  PushAmbientContext(client.value());
  store.SampleNow(metrics, 1000);  // clean baseline sample

  // Wire traffic so the gateway-wide request counter moves: a pipelined
  // burst whose exact ok/shed split is timing-dependent — every response is
  // a request either way.
  constexpr int kBurst = 8;
  for (int i = 0; i < kBurst; ++i) {
    Json judge = Json::Object();
    judge["op"] = "judge";
    judge["id"] = 100 + i;
    judge["instruction"] = "window.open";
    judge["time"] = time_.seconds();
    ASSERT_TRUE(client.value().Send(judge.Dump()).ok());
  }
  int wire_responses = 0;
  for (int i = 0; i < kBurst; ++i) {
    Result<std::string> line = client.value().ReadLine();
    ASSERT_TRUE(line.ok());
    Result<Json> response = Json::Parse(line.value());
    ASSERT_TRUE(response.ok());
    const bool served = response.value().bool_or("ok", false);
    const bool overloaded = response.value().number_or("code", 0) == kWireOverloaded;
    EXPECT_TRUE(served || overloaded) << line.value();
    ++wire_responses;
  }
  ASSERT_EQ(wire_responses, kBurst);

  // Deterministic shed injection: submit straight into the lane faster than
  // the 50 ms coalescing deadline can possibly drain a two-deep queue. The
  // loop exits on the shed count, so scheduler stalls only add iterations.
  auto completed = std::make_shared<std::atomic<int>>(0);
  JudgeTask task;
  task.instruction = registry_->FindByName("window.open");
  task.snapshot = std::make_shared<const SensorSnapshot>(*snapshot_);
  task.time = time_;
  task.done = [completed](const Judgement&) { completed->fetch_add(1); };
  int shed = 0;
  for (int i = 0; i < 50'000 && shed < 8; ++i) {
    if (router.SubmitJudge("default", JudgeTask(task)) == Admission::kShed) ++shed;
  }
  ASSERT_GE(shed, 8) << "a bounded queue that never overflows under a tight loop";

  // Drift injection: the observed stream blocks every verdict of a category
  // whose training baseline overwhelmingly allowed it.
  const DeviceCategory drifted = baseline.categories.begin()->first;
  for (int i = 0; i < 256; ++i) drift.ObserveVerdict(drifted, false);

  // Two post-injection sampling instants (the trend verdict needs at least
  // two retained points to call drift sustained).
  (void)drift.Evaluate();
  store.SampleNow(metrics, 2000);  // first interval after injection
  (void)drift.Evaluate();
  store.SampleNow(metrics, 3000);

  Result<Json> health = client.value().FetchHealth(/*window_seconds=*/60);
  ASSERT_TRUE(health.ok()) << health.error().message();
  const Json* card = health.value().find("scorecard");
  ASSERT_NE(card, nullptr);
  EXPECT_GE(card->number_or("samples_taken", 0.0), 3.0);

  // Shed visible in the per-home flow — stamped by the first sample taken
  // after the burst.
  const Json* home = card->find("homes")->find("default");
  ASSERT_NE(home, nullptr);
  EXPECT_GE(home->number_or("shed_in_window", 0.0), static_cast<double>(shed));
  EXPECT_GT(home->number_or("shed_fraction", 0.0), 0.0);
  const Json* lane = home->find("lane");
  ASSERT_NE(lane, nullptr);
  EXPECT_GE(lane->number_or("shed", 0.0), static_cast<double>(shed));

  // Gateway-wide flow covers the admitted traffic.
  EXPECT_GE(card->find("gateway")->number_or("requests_in_window", 0.0),
            static_cast<double>(kBurst));

  // Drift sustained across the retained trail, resolved per category.
  const Json* drift_card = card->find("drift");
  ASSERT_NE(drift_card, nullptr);
  EXPECT_TRUE(drift_card->bool_or("sustained_drift", false));
  ASSERT_NE(drift_card->find("rate_deltas"), nullptr);
  EXPECT_FALSE(drift_card->find("rate_deltas")->as_array().empty());

  // SLO trend states ride along.
  EXPECT_NE(card->find("slo"), nullptr);
  gateway.Shutdown();
}

TEST_F(OpsSurfaceFixture, ScorecardKeepsRecentExplainSummaries) {
  MetricsRegistry metrics;
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy, &metrics);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  TimeSeriesStore store;
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics);
  gateway.AttachOps({&store, nullptr, nullptr});
  ASSERT_TRUE(gateway.Start().ok());

  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());
  PushAmbientContext(client.value());
  ASSERT_TRUE(client.value().Explain("default", "window.open", time_.seconds()).ok());
  ASSERT_TRUE(client.value().Explain("default", "door.open", time_.seconds()).ok());
  store.SampleNow(metrics, 1000);

  Result<Json> health = client.value().FetchHealth(60);
  ASSERT_TRUE(health.ok());
  const Json* recent =
      health.value().find("scorecard")->find("homes")->find("default")->find(
          "recent_attributions");
  ASSERT_NE(recent, nullptr);
  ASSERT_EQ(recent->as_array().size(), 2u);
  EXPECT_EQ(recent->as_array().front().string_or("instruction", ""), "window.open");
  EXPECT_EQ(recent->as_array().back().string_or("instruction", ""), "door.open");
  EXPECT_FALSE(recent->as_array().front().string_or("top_feature", "").empty());
  gateway.Shutdown();
}

TEST_F(OpsSurfaceFixture, StatsCarryBuildInfoAndUptime) {
  MetricsRegistry metrics;
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy, &metrics);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics);
  ASSERT_TRUE(gateway.Start().ok());

  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());
  Json stats = Json::Object();
  stats["op"] = "stats";
  stats["id"] = 2;
  Result<Json> response = client.value().Call(stats);
  ASSERT_TRUE(response.ok());
  const Json* gw = response.value().find("gateway");
  ASSERT_NE(gw, nullptr);
  EXPECT_GE(gw->number_or("uptime_seconds", -1.0), 0.0);
  const Json* build = gw->find("build");
  ASSERT_NE(build, nullptr);
  EXPECT_FALSE(build->string_or("version", "").empty());
  EXPECT_FALSE(build->string_or("compiler", "").empty());

  // The same provenance exports as Prometheus series.
  Json prom = Json::Object();
  prom["op"] = "metrics";
  prom["id"] = 3;
  Result<Json> exposition = client.value().Call(prom);
  ASSERT_TRUE(exposition.ok());
  const std::string text = exposition.value().string_or("metrics", "");
  EXPECT_NE(text.find("sidet_build_info{"), std::string::npos);
  EXPECT_NE(text.find("sidet_gateway_uptime_seconds"), std::string::npos);
  gateway.Shutdown();
}

}  // namespace
}  // namespace sidet
