// ThreadPool: inline fallback, task completion, ParallelFor coverage, and
// the deterministic Rng::Fork(stream) contract the pool's users rely on.
#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "util/rng.h"

namespace sidet {
namespace {

TEST(ThreadPoolTest, ExplicitSizeOneIsInline) {
  ThreadPool pool(1);
  EXPECT_TRUE(pool.inline_mode());
  EXPECT_EQ(pool.size(), 1u);

  // Inline Submit runs the task before returning, on the caller's thread.
  const std::thread::id caller = std::this_thread::get_id();
  std::thread::id ran_on;
  bool ran = false;
  std::future<void> done = pool.Submit([&] {
    ran = true;
    ran_on = std::this_thread::get_id();
  });
  EXPECT_TRUE(ran);
  EXPECT_EQ(ran_on, caller);
  done.get();
}

TEST(ThreadPoolTest, DefaultThreadCountIsAtLeastOne) {
  // hardware_concurrency() may legally return 0; the pool must still resolve
  // to a usable lane count.
  EXPECT_GE(ThreadPool::DefaultThreadCount(), 1u);
  ThreadPool pool;  // 0 = default
  EXPECT_GE(pool.size(), 1u);
}

TEST(ThreadPoolTest, SubmitRunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i) {
    futures.push_back(pool.Submit([&counter] { ++counter; }));
  }
  for (std::future<void>& f : futures) f.get();
  EXPECT_EQ(counter.load(), 64);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{3}, std::size_t{8}}) {
    ThreadPool pool(threads);
    std::vector<std::atomic<int>> hits(257);
    pool.ParallelFor(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (std::size_t i = 0; i < hits.size(); ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " threads " << threads;
    }
  }
}

TEST(ThreadPoolTest, ParallelForZeroAndOneElement) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](std::size_t i) {
    ++calls;
    EXPECT_EQ(i, 0u);
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, FreeParallelForMatchesPoolSemantics) {
  std::vector<int> out(100, 0);
  ParallelFor(/*threads=*/0, out.size(), [&](std::size_t i) { out[i] = static_cast<int>(i); });
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], static_cast<int>(i));

  std::vector<int> inline_out(100, 0);
  ParallelFor(/*threads=*/1, inline_out.size(),
              [&](std::size_t i) { inline_out[i] = static_cast<int>(i); });
  EXPECT_EQ(out, inline_out);
}

TEST(RngForkTest, ForkIsConstAndDeterministic) {
  const Rng parent(1234);
  Rng a = parent.Fork(7);
  Rng b = parent.Fork(7);
  // Same stream index twice: identical child sequences, parent untouched.
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.Next(), b.Next());

  Rng c = parent.Fork(8);
  Rng d = parent.Fork(7);
  bool all_equal = true;
  for (int i = 0; i < 16; ++i) {
    if (c.Next() != d.Next()) all_equal = false;
  }
  EXPECT_FALSE(all_equal) << "distinct streams must decorrelate";
}

TEST(RngForkTest, ForkedStreamsAreStableUnderParallelSchedules) {
  // The exact scenario the training loops depend on: per-index streams give
  // the same draws no matter which lane (or order) evaluates them.
  const Rng master(99);
  std::vector<std::uint64_t> sequential(64);
  for (std::size_t i = 0; i < sequential.size(); ++i) sequential[i] = master.Fork(i).Next();

  std::vector<std::uint64_t> parallel(sequential.size());
  ParallelFor(4, parallel.size(), [&](std::size_t i) { parallel[i] = master.Fork(i).Next(); });
  EXPECT_EQ(sequential, parallel);
}

}  // namespace
}  // namespace sidet
