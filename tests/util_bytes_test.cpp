#include "util/bytes.h"

#include <gtest/gtest.h>

namespace sidet {
namespace {

TEST(ByteWriter, BigEndianLayout) {
  ByteWriter w;
  w.U16Be(0x1234);
  w.U32Be(0xAABBCCDD);
  const Bytes& b = w.data();
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(b[0], 0x12);
  EXPECT_EQ(b[1], 0x34);
  EXPECT_EQ(b[2], 0xAA);
  EXPECT_EQ(b[5], 0xDD);
}

TEST(ByteWriter, LittleEndianLayout) {
  ByteWriter w;
  w.U32Le(0xAABBCCDD);
  const Bytes& b = w.data();
  EXPECT_EQ(b[0], 0xDD);
  EXPECT_EQ(b[3], 0xAA);
}

TEST(ByteRoundTrip, AllWidthsBothEndians) {
  ByteWriter w;
  w.U8(0xFE);
  w.U16Be(0xBEEF);
  w.U32Be(0xDEADBEEF);
  w.U64Be(0x0123456789ABCDEFULL);
  w.U16Le(0xBEEF);
  w.U32Le(0xDEADBEEF);
  w.U64Le(0x0123456789ABCDEFULL);

  ByteReader r(w.data());
  EXPECT_EQ(r.U8().value(), 0xFE);
  EXPECT_EQ(r.U16Be().value(), 0xBEEF);
  EXPECT_EQ(r.U32Be().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64Be().value(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.U16Le().value(), 0xBEEF);
  EXPECT_EQ(r.U32Le().value(), 0xDEADBEEFu);
  EXPECT_EQ(r.U64Le().value(), 0x0123456789ABCDEFULL);
  EXPECT_TRUE(r.AtEnd());
}

TEST(ByteReader, ShortReadsFailGracefully) {
  const Bytes data = {0x01, 0x02};
  ByteReader r(data);
  EXPECT_FALSE(r.U32Be().ok());
  // A failed read must not consume anything.
  EXPECT_EQ(r.remaining(), 2u);
  EXPECT_TRUE(r.U16Be().ok());
  EXPECT_FALSE(r.U8().ok());
}

TEST(ByteReader, SkipAndSeek) {
  const Bytes data = {1, 2, 3, 4, 5};
  ByteReader r(data);
  ASSERT_TRUE(r.Skip(2).ok());
  EXPECT_EQ(r.U8().value(), 3);
  ASSERT_TRUE(r.SeekTo(0).ok());
  EXPECT_EQ(r.U8().value(), 1);
  EXPECT_FALSE(r.SeekTo(6).ok());
  ASSERT_TRUE(r.SeekTo(5).ok());
  EXPECT_TRUE(r.AtEnd());
}

TEST(FixedString, PadsAndTruncates) {
  ByteWriter w;
  w.FixedString("abc", 8);
  w.FixedString("longer-than-width", 4);
  ByteReader r(w.data());
  EXPECT_EQ(r.FixedString(8).value(), "abc");
  EXPECT_EQ(r.FixedString(4).value(), "long");
}

TEST(ByteWriter, PatchOverwritesInPlace) {
  ByteWriter w;
  w.U32Be(0);
  w.Raw(std::string_view("payload"));
  w.PatchU32Be(0, 0xCAFEBABE);
  ByteReader r(w.data());
  EXPECT_EQ(r.U32Be().value(), 0xCAFEBABEu);
  EXPECT_EQ(ToString(r.Raw(7).value()), "payload");
}

TEST(Hex, RoundTrip) {
  const Bytes data = {0x00, 0x7F, 0xFF, 0xA5};
  const std::string hex = ToHex(data);
  EXPECT_EQ(hex, "007fffa5");
  Result<Bytes> back = FromHex(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value(), data);
  // Uppercase accepted too.
  EXPECT_EQ(FromHex("A5").value()[0], 0xA5);
}

TEST(Hex, RejectsMalformed) {
  EXPECT_FALSE(FromHex("abc").ok());   // odd length
  EXPECT_FALSE(FromHex("zz").ok());    // bad digit
  EXPECT_TRUE(FromHex("").ok());       // empty is fine
}

TEST(Bytes, StringConversions) {
  const std::string text = "hello\0world";
  const Bytes b = ToBytes(text);
  EXPECT_EQ(ToString(b), text);
}

}  // namespace
}  // namespace sidet
