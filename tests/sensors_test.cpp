#include <gtest/gtest.h>

#include "sensors/sensor.h"
#include "sensors/sensor_types.h"
#include "sensors/snapshot.h"
#include "util/rng.h"

namespace sidet {
namespace {

TEST(SensorTypes, TraitsTableIsConsistent) {
  EXPECT_EQ(AllSensorTypes().size(), kSensorTypeCount);
  for (const SensorType type : AllSensorTypes()) {
    const SensorTraits& traits = TraitsOf(type);
    EXPECT_EQ(traits.type, type);
    EXPECT_FALSE(traits.name.empty());
    EXPECT_LT(traits.min_value, traits.max_value + 1e-9);
    if (traits.kind == ValueKind::kCategorical) {
      EXPECT_FALSE(traits.categories.empty());
    } else {
      EXPECT_TRUE(traits.categories.empty());
    }
    // Name round trip.
    Result<SensorType> parsed = SensorTypeFromString(traits.name);
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), type);
  }
  EXPECT_FALSE(SensorTypeFromString("not_a_sensor").ok());
}

TEST(SensorValue, Constructors) {
  EXPECT_TRUE(SensorValue::Binary(true).as_bool());
  EXPECT_FALSE(SensorValue::Binary(false).as_bool());
  EXPECT_DOUBLE_EQ(SensorValue::Continuous(21.5).number, 21.5);
  const SensorValue cat = SensorValue::Categorical("rain", 2);
  EXPECT_EQ(cat.label, "rain");
  EXPECT_DOUBLE_EQ(cat.number, 2.0);
}

class SensorValueJsonTest : public ::testing::TestWithParam<SensorValue> {};

TEST_P(SensorValueJsonTest, JsonRoundTrip) {
  const SensorValue& original = GetParam();
  Result<SensorValue> back = SensorValue::FromJson(original.ToJson());
  ASSERT_TRUE(back.ok()) << back.error().message();
  EXPECT_EQ(back.value(), original);
}

INSTANTIATE_TEST_SUITE_P(Values, SensorValueJsonTest,
                         ::testing::Values(SensorValue::Binary(true),
                                           SensorValue::Binary(false),
                                           SensorValue::Continuous(0.0),
                                           SensorValue::Continuous(-12.75),
                                           SensorValue::Continuous(99999.5),
                                           SensorValue::Categorical("clear", 0),
                                           SensorValue::Categorical("snow", 3)));

TEST(SensorValue, FromJsonRejectsMalformed) {
  EXPECT_FALSE(SensorValue::FromJson(Json(nullptr)).ok());
  EXPECT_FALSE(SensorValue::FromJson(Json::Object()).ok());
  Json wrong = Json::Object();
  wrong["kind"] = "binary";
  wrong["value"] = 3.0;  // must be bool
  EXPECT_FALSE(SensorValue::FromJson(wrong).ok());
  Json unknown = Json::Object();
  unknown["kind"] = "quantum";
  unknown["value"] = 1;
  EXPECT_FALSE(SensorValue::FromJson(unknown).ok());
}

TEST(MakeCategorical, ValidatesCategory) {
  Result<SensorValue> ok = MakeCategorical(SensorType::kWeatherCondition, "rain");
  ASSERT_TRUE(ok.ok());
  EXPECT_DOUBLE_EQ(ok.value().number, 2.0);
  EXPECT_FALSE(MakeCategorical(SensorType::kWeatherCondition, "hail").ok());
  EXPECT_FALSE(MakeCategorical(SensorType::kMotion, "clear").ok());
}

TEST(Sensor, NoiselessReadReportsTrueValue) {
  Sensor sensor(1, "living_temp", SensorType::kTemperature, "living_room", Vendor::kXiaomi,
                NoiseModel{});
  sensor.SetTrueValue(SensorValue::Continuous(22.0), SimTime(100));
  Rng rng(1);
  EXPECT_DOUBLE_EQ(sensor.Read(rng).number, 22.0);
  EXPECT_EQ(sensor.last_update().seconds(), 100);
}

TEST(Sensor, GaussianNoiseStaysInTraitRange) {
  Sensor sensor(2, "noisy", SensorType::kHumidity, "bath", Vendor::kSmartThings,
                NoiseModel{.gaussian_stddev = 30.0});
  sensor.SetTrueValue(SensorValue::Continuous(95.0), SimTime(0));
  Rng rng(2);
  for (int i = 0; i < 500; ++i) {
    const double v = sensor.Read(rng).number;
    EXPECT_GE(v, 0.0);
    EXPECT_LE(v, 100.0);
  }
}

TEST(Sensor, FlipNoiseFrequency) {
  Sensor sensor(3, "motion", SensorType::kMotion, "hall", Vendor::kXiaomi,
                NoiseModel{.flip_probability = 0.25});
  sensor.SetTrueValue(SensorValue::Binary(false), SimTime(0));
  Rng rng(3);
  int flips = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) flips += sensor.Read(rng).as_bool();
  EXPECT_NEAR(flips / static_cast<double>(n), 0.25, 0.02);
}

TEST(Sensor, SpoofOverridesReadingUntilCleared) {
  Sensor sensor(4, "smoke", SensorType::kSmoke, "kitchen", Vendor::kXiaomi, NoiseModel{});
  sensor.SetTrueValue(SensorValue::Binary(false), SimTime(0));
  Rng rng(4);
  EXPECT_FALSE(sensor.Read(rng).as_bool());

  sensor.Spoof(SensorValue::Binary(true));
  EXPECT_TRUE(sensor.spoofed());
  EXPECT_TRUE(sensor.Read(rng).as_bool());
  // The true value is unchanged underneath.
  EXPECT_FALSE(sensor.true_value().as_bool());

  sensor.ClearSpoof();
  EXPECT_FALSE(sensor.spoofed());
  EXPECT_FALSE(sensor.Read(rng).as_bool());
}

TEST(Snapshot, SetFindAndOverwrite) {
  SensorSnapshot snapshot(SimTime(60));
  snapshot.Set("kitchen_smoke", SensorType::kSmoke, SensorValue::Binary(false));
  snapshot.Set("kitchen_smoke", SensorType::kSmoke, SensorValue::Binary(true));
  EXPECT_EQ(snapshot.size(), 1u);
  ASSERT_NE(snapshot.Find("kitchen_smoke"), nullptr);
  EXPECT_TRUE(snapshot.Find("kitchen_smoke")->as_bool());
  EXPECT_EQ(snapshot.Find("missing"), nullptr);
  EXPECT_EQ(snapshot.TypeOf("kitchen_smoke"), SensorType::kSmoke);
  EXPECT_EQ(snapshot.TypeOf("missing"), std::nullopt);
}

TEST(Snapshot, FindByTypeReturnsFirst) {
  SensorSnapshot snapshot;
  snapshot.Set("t1", SensorType::kTemperature, SensorValue::Continuous(20));
  snapshot.Set("t2", SensorType::kTemperature, SensorValue::Continuous(25));
  ASSERT_NE(snapshot.FindByType(SensorType::kTemperature), nullptr);
  EXPECT_DOUBLE_EQ(snapshot.FindByType(SensorType::kTemperature)->number, 20.0);
  EXPECT_EQ(snapshot.FindByType(SensorType::kSmoke), nullptr);
}

TEST(Snapshot, JsonRoundTrip) {
  SensorSnapshot snapshot(SimTime::FromDayTime(2, 14, 30));
  snapshot.Set("smoke", SensorType::kSmoke, SensorValue::Binary(true));
  snapshot.Set("temp", SensorType::kTemperature, SensorValue::Continuous(23.25));
  snapshot.Set("weather", SensorType::kWeatherCondition, SensorValue::Categorical("cloudy", 1));

  Result<SensorSnapshot> back = SensorSnapshot::FromJson(snapshot.ToJson());
  ASSERT_TRUE(back.ok()) << back.error().message();
  EXPECT_EQ(back.value().time(), snapshot.time());
  EXPECT_EQ(back.value().size(), 3u);
  EXPECT_TRUE(back.value().Find("smoke")->as_bool());
  EXPECT_DOUBLE_EQ(back.value().Find("temp")->number, 23.25);
  EXPECT_EQ(back.value().Find("weather")->label, "cloudy");
}

TEST(Snapshot, FromJsonRejectsMalformed) {
  EXPECT_FALSE(SensorSnapshot::FromJson(Json(nullptr)).ok());
  EXPECT_FALSE(SensorSnapshot::FromJson(Json::Object()).ok());
  Json bad_type = Json::Parse(
      R"({"time_seconds":0,"readings":{"x":{"kind":"binary","value":true,"type":"bogus"}}})")
      .value();
  EXPECT_FALSE(SensorSnapshot::FromJson(bad_type).ok());
}

}  // namespace
}  // namespace sidet
