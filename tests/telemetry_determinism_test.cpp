// Telemetry is an observer, never a participant: attaching a registry and a
// tracer to the IDS must change no verdict, no stats counter, and no model
// byte. This is the contract that lets BENCH_* runs and production paths
// carry instrumentation without a correctness asterisk.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "telemetry/exporters.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"

namespace sidet {
namespace {

class TelemetryDeterminismTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const InstructionRegistry& registry = Registry();
    CorpusConfig config;
    Result<GeneratedCorpus> corpus = GenerateCorpus(config, registry);
    ASSERT_TRUE(corpus.ok());
    ContextFeatureMemory memory;
    MemoryTrainingOptions options;
    options.samples_per_device = 400;
    ASSERT_TRUE(memory.TrainFromCorpus(corpus.value().corpus, options).ok());
    serialized_memory_ = new Json(memory.ToJson());

    SmartHome home = BuildDemoHome(5);
    requests_ = new std::vector<ContextIds::JudgeRequest>();
    snapshots_ = new std::vector<SensorSnapshot>();
    times_ = new std::vector<SimTime>();
    for (int s = 0; s < 4; ++s) {
      home.Step(kSecondsPerHour);
      snapshots_->push_back(home.Snapshot());
      times_->push_back(home.now());
    }
    for (std::size_t s = 0; s < snapshots_->size(); ++s) {
      for (const Instruction& instruction : registry.all()) {
        requests_->push_back({&instruction, &(*snapshots_)[s], (*times_)[s]});
      }
    }
  }

  static const InstructionRegistry& Registry() {
    static const InstructionRegistry* registry =
        new InstructionRegistry(BuildStandardInstructionSet());
    return *registry;
  }

  // TrainedDeviceModel is move-only; clone through the JSON form.
  static ContextFeatureMemory CloneMemory() {
    Result<ContextFeatureMemory> clone = ContextFeatureMemory::FromJson(*serialized_memory_);
    EXPECT_TRUE(clone.ok());
    return std::move(clone).value();
  }

  static std::string StatsKey(const IdsStats& stats) { return stats.ToJson().Dump(); }

  static Json* serialized_memory_;
  static std::vector<ContextIds::JudgeRequest>* requests_;
  static std::vector<SensorSnapshot>* snapshots_;
  static std::vector<SimTime>* times_;
};

Json* TelemetryDeterminismTest::serialized_memory_ = nullptr;
std::vector<ContextIds::JudgeRequest>* TelemetryDeterminismTest::requests_ = nullptr;
std::vector<SensorSnapshot>* TelemetryDeterminismTest::snapshots_ = nullptr;
std::vector<SimTime>* TelemetryDeterminismTest::times_ = nullptr;

TEST_F(TelemetryDeterminismTest, JudgeVerdictsUnchangedByTelemetry) {
  ContextIds plain(SensitiveInstructionDetector(PaperTableThree()), CloneMemory());

  ContextIds instrumented(SensitiveInstructionDetector(PaperTableThree()), CloneMemory());
  MetricsRegistry registry;
  SpanTracer tracer;
  instrumented.AttachTelemetry(&registry, &tracer);

  for (const ContextIds::JudgeRequest& request : *requests_) {
    const Result<Judgement> a =
        plain.Judge(*request.instruction, *request.snapshot, request.time);
    const Result<Judgement> b =
        instrumented.Judge(*request.instruction, *request.snapshot, request.time);
    ASSERT_EQ(a.ok(), b.ok());
    if (!a.ok()) continue;
    EXPECT_EQ(a.value().sensitive, b.value().sensitive);
    EXPECT_EQ(a.value().allowed, b.value().allowed);
    EXPECT_EQ(a.value().consistency, b.value().consistency);
    EXPECT_EQ(a.value().reason, b.value().reason);
  }
  EXPECT_EQ(StatsKey(plain.stats()), StatsKey(instrumented.stats()));
  // The model itself is untouched by instrumentation.
  EXPECT_EQ(plain.memory().ToJson().Dump(), instrumented.memory().ToJson().Dump());
  // And the mirrored counters agree exactly with the canonical stats.
  EXPECT_EQ(registry.GetCounter("sidet_ids_judged_total")->Value(),
            instrumented.stats().judged);
  EXPECT_EQ(registry.GetCounter("sidet_ids_allowed_total")->Value(),
            instrumented.stats().allowed);
  EXPECT_EQ(registry.GetCounter("sidet_ids_blocked_total")->Value(),
            instrumented.stats().blocked);
  EXPECT_GT(tracer.size(), 0u);  // the spans actually recorded
}

TEST_F(TelemetryDeterminismTest, JudgeBatchVerdictsUnchangedByTelemetry) {
  for (const int threads : {1, 4}) {
    ContextIds plain(SensitiveInstructionDetector(PaperTableThree()), CloneMemory());
    const std::vector<Judgement> expected = plain.JudgeBatch(*requests_, threads);

    ContextIds instrumented(SensitiveInstructionDetector(PaperTableThree()), CloneMemory());
    MetricsRegistry registry;
    SpanTracer tracer;
    instrumented.AttachTelemetry(&registry, &tracer);
    const std::vector<Judgement> actual = instrumented.JudgeBatch(*requests_, threads);

    ASSERT_EQ(actual.size(), expected.size());
    for (std::size_t i = 0; i < actual.size(); ++i) {
      EXPECT_EQ(actual[i].sensitive, expected[i].sensitive) << "row " << i;
      EXPECT_EQ(actual[i].allowed, expected[i].allowed) << "row " << i;
      EXPECT_EQ(actual[i].consistency, expected[i].consistency) << "row " << i;
      EXPECT_EQ(actual[i].reason, expected[i].reason) << "row " << i;
    }
    EXPECT_EQ(StatsKey(plain.stats()), StatsKey(instrumented.stats()));
    EXPECT_EQ(registry.GetCounter("sidet_ids_judged_total")->Value(),
              instrumented.stats().judged)
        << "threads " << threads;
  }
}

TEST_F(TelemetryDeterminismTest, AttachDetachReattachKeepsCountersConsistent) {
  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()), CloneMemory());
  MetricsRegistry registry;
  ids.AttachTelemetry(&registry);

  const ContextIds::JudgeRequest& request = requests_->front();
  ASSERT_TRUE(ids.Judge(*request.instruction, *request.snapshot, request.time).ok());
  const std::uint64_t after_first = registry.GetCounter("sidet_ids_judged_total")->Value();

  ids.AttachTelemetry(nullptr);  // detached: judging updates no counters
  ASSERT_TRUE(ids.Judge(*request.instruction, *request.snapshot, request.time).ok());
  EXPECT_EQ(registry.GetCounter("sidet_ids_judged_total")->Value(), after_first);

  // Re-attach baselines the mirror at the current stats: the detached window
  // is skipped, not backfilled, and counting resumes by exact deltas.
  ids.AttachTelemetry(&registry);
  ASSERT_TRUE(ids.Judge(*request.instruction, *request.snapshot, request.time).ok());
  EXPECT_EQ(registry.GetCounter("sidet_ids_judged_total")->Value(), after_first + 1);
  EXPECT_EQ(ids.stats().judged, 3u);
}

TEST_F(TelemetryDeterminismTest, IdsStatsToJsonCarriesEveryField) {
  IdsStats stats;
  stats.judged = 1;
  stats.passed_non_sensitive = 2;
  stats.passed_unmodelled = 3;
  stats.allowed = 4;
  stats.blocked = 5;
  stats.errors = 6;
  stats.judged_degraded = 7;
  stats.blocked_on_outage = 8;
  stats.allowed_degraded = 9;
  const Json json = stats.ToJson();
  EXPECT_EQ(json.number_or("judged", -1), 1);
  EXPECT_EQ(json.number_or("passed_non_sensitive", -1), 2);
  EXPECT_EQ(json.number_or("passed_unmodelled", -1), 3);
  EXPECT_EQ(json.number_or("allowed", -1), 4);
  EXPECT_EQ(json.number_or("blocked", -1), 5);
  EXPECT_EQ(json.number_or("errors", -1), 6);
  EXPECT_EQ(json.number_or("judged_degraded", -1), 7);
  EXPECT_EQ(json.number_or("blocked_on_outage", -1), 8);
  EXPECT_EQ(json.number_or("allowed_degraded", -1), 9);
}

}  // namespace
}  // namespace sidet
