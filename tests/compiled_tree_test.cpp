// CompiledTree/CompiledForest: the flat-array engine must reproduce the
// pointer trees bit-for-bit — same class, same leaf probability — across all
// three split criteria, for single rows and batches at any lane count.
#include "ml/compiled_tree.h"

#include <gtest/gtest.h>

#include <vector>

#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "util/rng.h"

namespace sidet {
namespace {

std::vector<FeatureSpec> MixedFeatures() {
  std::vector<FeatureSpec> specs;
  for (int f = 0; f < 5; ++f) {
    FeatureSpec spec;
    spec.name = "num" + std::to_string(f);
    specs.push_back(std::move(spec));
  }
  FeatureSpec cat;
  cat.name = "kind";
  cat.categorical = true;
  cat.categories = {"a", "b", "c", "d"};
  specs.push_back(std::move(cat));
  return specs;
}

std::vector<double> RandomRow(Rng& rng, std::size_t num_features) {
  std::vector<double> row(num_features);
  for (std::size_t f = 0; f + 1 < num_features; ++f) row[f] = rng.UniformDouble(-3.0, 3.0);
  row[num_features - 1] = static_cast<double>(rng.UniformInt(0, 3));
  return row;
}

// Noisy nonlinear labelling so trees grow real structure on both feature
// kinds.
Dataset TrainingData(std::uint64_t seed, std::size_t rows) {
  Dataset data(MixedFeatures());
  Rng rng(seed);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<double> row = RandomRow(rng, data.num_features());
    const bool label = row[0] + row[1] * row[2] > 0.25 || (row[5] == 2.0 && row[3] < 0);
    const bool flipped = rng.Bernoulli(0.05);
    data.Add(std::move(row), (label != flipped) ? 1 : 0);
  }
  return data;
}

TEST(CompiledTreeTest, MatchesPointerTreeOnAllCriteria) {
  const Dataset train = TrainingData(7, 800);
  for (const SplitCriterion criterion :
       {SplitCriterion::kGini, SplitCriterion::kInfoGain, SplitCriterion::kGainRatio}) {
    DecisionTreeParams params;
    params.criterion = criterion;
    DecisionTree tree(params);
    ASSERT_TRUE(tree.Fit(train).ok());

    const CompiledTree compiled = CompiledTree::Compile(tree);
    ASSERT_FALSE(compiled.empty());
    EXPECT_EQ(compiled.num_features(), train.num_features());

    Rng rng(criterion == SplitCriterion::kGini ? 11u : 13u);
    for (int i = 0; i < 10000; ++i) {
      const std::vector<double> row = RandomRow(rng, train.num_features());
      // Bit-exact agreement, not approximate: same leaf, same stored double.
      EXPECT_EQ(compiled.PredictProbability(row), tree.PredictProbability(row))
          << "criterion " << ToString(criterion) << " row " << i;
      EXPECT_EQ(compiled.Predict(row), tree.Predict(row));
    }
  }
}

TEST(CompiledTreeTest, BatchAgreesWithScalarAtAnyLaneCount) {
  const Dataset train = TrainingData(21, 600);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());
  const CompiledTree compiled = CompiledTree::Compile(tree);

  Rng rng(5);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 2048; ++i) rows.push_back(RandomRow(rng, train.num_features()));

  std::vector<double> scalar(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) scalar[i] = compiled.PredictProbability(rows[i]);

  for (const int threads : {1, 2, 8}) {
    std::vector<double> batch(rows.size(), -1.0);
    compiled.PredictBatch(rows, batch, threads);
    EXPECT_EQ(batch, scalar) << "threads " << threads;
  }
}

TEST(CompiledTreeTest, EmptyTreePredictsPrior) {
  const CompiledTree compiled;
  EXPECT_TRUE(compiled.empty());
  const std::vector<double> row(4, 0.0);
  EXPECT_EQ(compiled.PredictProbability(row), 0.5);
}

TEST(CompiledForestTest, MatchesRandomForestExactly) {
  const Dataset train = TrainingData(33, 700);
  RandomForestParams params;
  params.trees = 15;
  RandomForest forest(params);
  ASSERT_TRUE(forest.Fit(train).ok());

  const CompiledForest compiled = CompiledForest::Compile(forest);

  Rng rng(17);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 10000; ++i) rows.push_back(RandomRow(rng, train.num_features()));

  for (const std::vector<double>& row : rows) {
    // Same per-tree leaves summed in the same order => identical double.
    EXPECT_EQ(compiled.PredictProbability(row), forest.PredictProbability(row));
    EXPECT_EQ(compiled.Predict(row), forest.Predict(row));
  }

  std::vector<double> batch(rows.size(), -1.0);
  compiled.PredictBatch(rows, batch, /*threads=*/4);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch[i], forest.PredictProbability(rows[i])) << "row " << i;
  }
}

}  // namespace
}  // namespace sidet
