// The serving layer: wire-protocol framing, the micro-batching scheduler's
// edge cases (deadline flush, max-batch cutoff, shed/block admission, drain
// completeness), multi-home routing with RCU hot reload, and the TCP gateway
// end to end over a loopback socket bound to port 0 (so parallel CTest jobs
// never collide on a port).
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "core/ids.h"
#include "core/model_store.h"
#include "datagen/corpus_generator.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "server/batcher.h"
#include "server/client.h"
#include "server/gateway.h"
#include "server/loadgen.h"
#include "server/router.h"
#include "server/wire.h"

namespace sidet {
namespace {

// ---------------------------------------------------------------- wire ----

TEST(Wire, ParsesJudgeRequest) {
  Result<WireRequest> parsed = ParseWireRequest(
      R"({"op":"judge","id":7,"home":"alpha","instruction":"window.open","time":3600})");
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  EXPECT_EQ(parsed.value().op, GatewayOp::kJudge);
  EXPECT_EQ(parsed.value().id, 7u);
  EXPECT_EQ(parsed.value().home, "alpha");
  EXPECT_EQ(parsed.value().instruction, "window.open");
  EXPECT_EQ(parsed.value().time.seconds(), 3600);
  EXPECT_FALSE(parsed.value().snapshot.has_value());
}

TEST(Wire, SnapshotInheritsRequestTime) {
  SensorSnapshot snapshot;
  snapshot.Set("smoke", SensorType::kSmoke, SensorValue::Binary(false));
  Json request = Json::Object();
  request["op"] = "judge";
  request["instruction"] = "window.open";
  request["time"] = 7200;
  request["snapshot"] = snapshot.ToJson();
  Result<WireRequest> parsed = ParseWireRequest(request.Dump());
  ASSERT_TRUE(parsed.ok()) << parsed.error().message();
  ASSERT_TRUE(parsed.value().snapshot.has_value());
  EXPECT_EQ(parsed.value().snapshot->time().seconds(), 7200);
  EXPECT_TRUE(parsed.value().snapshot->Has("smoke"));
}

TEST(Wire, RejectsMalformedRequests) {
  EXPECT_FALSE(ParseWireRequest("not json").ok());
  EXPECT_FALSE(ParseWireRequest("[1,2]").ok());
  EXPECT_FALSE(ParseWireRequest(R"({"id":1})").ok());                  // no op
  EXPECT_FALSE(ParseWireRequest(R"({"op":"frobnicate"})").ok());      // unknown op
  EXPECT_FALSE(ParseWireRequest(R"({"op":"judge"})").ok());           // no instruction
  EXPECT_FALSE(ParseWireRequest(R"({"op":"context"})").ok());         // no snapshot
  EXPECT_FALSE(ParseWireRequest(R"({"op":"reload"})").ok());          // no path
  EXPECT_FALSE(ParseWireRequest(R"({"op":"judge","id":-3,"instruction":"x"})").ok());
  EXPECT_FALSE(ParseWireRequest(R"({"op":"judge","home":5,"instruction":"x"})").ok());
}

TEST(Wire, ResponsesStayOnOneLineAndEchoIds) {
  Judgement judgement;
  judgement.sensitive = true;
  judgement.allowed = false;
  judgement.consistency = 0.125;
  judgement.reason = "multi\nline reason";
  const std::string response = WireJudgeResponse(42, judgement);
  EXPECT_EQ(response.find('\n'), std::string::npos);  // frame-safe
  Result<Json> parsed = Json::Parse(response);
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value().number_or("id", 0), 42.0);
  EXPECT_TRUE(parsed.value().bool_or("ok", false));
  EXPECT_FALSE(parsed.value().bool_or("allowed", true));
  EXPECT_EQ(parsed.value().string_or("reason", ""), "multi\nline reason");

  Result<Json> error = Json::Parse(WireErrorResponse(9, kWireOverloaded, "full"));
  ASSERT_TRUE(error.ok());
  EXPECT_FALSE(error.value().bool_or("ok", true));
  EXPECT_EQ(error.value().number_or("code", 0), 429.0);
  EXPECT_EQ(error.value().number_or("id", 0), 9.0);
}

// ------------------------------------------------------------- batcher ----

// Executor stub: every row allowed, consistency = row count (so tests can
// read the batch size a row was judged in straight off its verdict).
MicroBatcher::BatchFn CountingExecutor(std::atomic<int>* batches = nullptr) {
  return [batches](std::span<const JudgeRequest> requests, int) {
    if (batches != nullptr) batches->fetch_add(1);
    std::vector<Judgement> verdicts(requests.size());
    for (Judgement& verdict : verdicts) {
      verdict.consistency = static_cast<double>(requests.size());
    }
    return verdicts;
  };
}

JudgeTask MakeTask(const Instruction* instruction, std::atomic<int>* completions,
                   std::atomic<int>* last_batch_rows = nullptr) {
  JudgeTask task;
  task.instruction = instruction;
  task.time = SimTime(60);
  task.done = [completions, last_batch_rows](const Judgement& judgement) {
    if (last_batch_rows != nullptr) {
      last_batch_rows->store(static_cast<int>(judgement.consistency));
    }
    completions->fetch_add(1);
  };
  return task;
}

class BatcherTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new InstructionRegistry(BuildStandardInstructionSet());
    window_open_ = registry_->FindByName("window.open");
  }
  static void TearDownTestSuite() {
    delete registry_;
    registry_ = nullptr;
    window_open_ = nullptr;
  }
  static InstructionRegistry* registry_;
  static const Instruction* window_open_;
};
InstructionRegistry* BatcherTest::registry_ = nullptr;
const Instruction* BatcherTest::window_open_ = nullptr;

void AwaitCount(const std::atomic<int>& counter, int expected, int timeout_ms = 5000) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  while (counter.load() < expected && std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counter.load(), expected);
}

TEST_F(BatcherTest, DeadlineFlushesASingleRequest) {
  BatchPolicy policy;
  policy.max_batch = 64;
  policy.min_delay_us = policy.max_delay_us = 10'000;  // fixed 10ms coalescing
  std::atomic<int> completions{0};
  std::atomic<int> rows{0};
  MicroBatcher batcher(policy, CountingExecutor());
  ASSERT_EQ(batcher.Submit(MakeTask(window_open_, &completions, &rows)),
            Admission::kAccepted);
  AwaitCount(completions, 1);
  EXPECT_EQ(rows.load(), 1);  // flushed alone, not padded
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.deadline_flushes, 1u);
  EXPECT_EQ(stats.full_flushes, 0u);
}

TEST_F(BatcherTest, MaxBatchCutoffFlushesWithoutWaitingForTheDeadline) {
  BatchPolicy policy;
  policy.max_batch = 8;
  // A deadline far beyond the test timeout: only the size cutoff can flush.
  policy.min_delay_us = policy.max_delay_us = 30'000'000;
  std::atomic<int> completions{0};
  std::atomic<int> rows{0};
  MicroBatcher batcher(policy, CountingExecutor());
  for (int i = 0; i < 8; ++i) {
    ASSERT_EQ(batcher.Submit(MakeTask(window_open_, &completions, &rows)),
              Admission::kAccepted);
  }
  AwaitCount(completions, 8);
  EXPECT_EQ(rows.load(), 8);
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.full_flushes, 1u);
}

TEST_F(BatcherTest, ShedsOnOverflowAndStillServesAcceptedTasks) {
  BatchPolicy policy;
  policy.max_batch = 64;
  policy.queue_capacity = 2;
  policy.min_delay_us = policy.max_delay_us = 30'000'000;
  policy.overflow = OverflowPolicy::kShed;
  std::atomic<int> completions{0};
  MicroBatcher batcher(policy, CountingExecutor());
  ASSERT_EQ(batcher.Submit(MakeTask(window_open_, &completions)), Admission::kAccepted);
  ASSERT_EQ(batcher.Submit(MakeTask(window_open_, &completions)), Admission::kAccepted);
  EXPECT_EQ(batcher.Submit(MakeTask(window_open_, &completions)), Admission::kShed);
  batcher.Drain();
  EXPECT_EQ(completions.load(), 2);  // shed task's callback never fires
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.shed, 1u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST_F(BatcherTest, BlockPolicyAppliesBackpressureInsteadOfShedding) {
  BatchPolicy policy;
  policy.max_batch = 1;
  policy.queue_capacity = 1;
  policy.min_delay_us = policy.max_delay_us = 0;
  policy.overflow = OverflowPolicy::kBlock;
  std::atomic<int> completions{0};
  // Slow executor so the queue is full when the second submit lands.
  MicroBatcher batcher(policy, [&](std::span<const JudgeRequest> requests, int) {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    return std::vector<Judgement>(requests.size());
  });
  for (int i = 0; i < 4; ++i) {
    ASSERT_EQ(batcher.Submit(MakeTask(window_open_, &completions)), Admission::kAccepted);
  }
  batcher.Drain();
  EXPECT_EQ(completions.load(), 4);
  EXPECT_EQ(batcher.stats().shed, 0u);
}

TEST_F(BatcherTest, DrainDeliversEveryAcceptedTaskThenRejects) {
  BatchPolicy policy;
  policy.max_batch = 2;
  policy.min_delay_us = policy.max_delay_us = 30'000'000;
  std::atomic<int> completions{0};
  MicroBatcher batcher(policy, CountingExecutor());
  for (int i = 0; i < 5; ++i) {
    ASSERT_EQ(batcher.Submit(MakeTask(window_open_, &completions)), Admission::kAccepted);
  }
  batcher.Drain();
  EXPECT_EQ(completions.load(), 5);
  const MicroBatcher::Stats stats = batcher.stats();
  EXPECT_EQ(stats.completed, 5u);
  EXPECT_GE(stats.full_flushes + stats.drain_flushes, stats.batches);
  // Intake is closed for good after a drain.
  EXPECT_EQ(batcher.Submit(MakeTask(window_open_, &completions)), Admission::kClosed);
  EXPECT_EQ(completions.load(), 5);
}

TEST_F(BatcherTest, WrongRowCountFromExecutorFailsClosed) {
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.min_delay_us = policy.max_delay_us = 0;
  std::atomic<int> completions{0};
  Judgement seen;
  std::mutex seen_mu;
  MicroBatcher batcher(policy, [](std::span<const JudgeRequest>, int) {
    return std::vector<Judgement>();  // misbehaving: no rows
  });
  JudgeTask task;
  task.instruction = window_open_;
  task.done = [&](const Judgement& judgement) {
    std::lock_guard<std::mutex> lock(seen_mu);
    seen = judgement;
    completions.fetch_add(1);
  };
  ASSERT_EQ(batcher.Submit(std::move(task)), Admission::kAccepted);
  batcher.Drain();
  EXPECT_EQ(completions.load(), 1);
  std::lock_guard<std::mutex> lock(seen_mu);
  EXPECT_FALSE(seen.allowed);  // fail closed
  EXPECT_NE(seen.reason.find("internal"), std::string::npos);
}

TEST_F(BatcherTest, AdaptiveDelayGrowsWithBatchFill) {
  BatchPolicy policy;
  policy.max_batch = 4;
  policy.min_delay_us = 0;
  policy.max_delay_us = 10'000;
  std::atomic<int> completions{0};
  MicroBatcher batcher(policy, CountingExecutor());
  EXPECT_EQ(batcher.effective_delay_us(), 0);  // idle start: no coalescing tax
  for (int round = 0; round < 3; ++round) {
    const int before = completions.load();
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(batcher.Submit(MakeTask(window_open_, &completions)),
                Admission::kAccepted);
    }
    AwaitCount(completions, before + 4);
  }
  // Full batches pull the EWMA (and so the delay) up toward the ceiling.
  EXPECT_GT(batcher.effective_delay_us(), 0);
  EXPECT_LE(batcher.effective_delay_us(), policy.max_delay_us);
}

// ------------------------------------------------- router and gateway ----

// Shared expensive fixture: one trained memory, cloned into per-home IDS
// instances; a demo-home snapshot gives scored verdicts.
class ServingFixture : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    registry_ = new InstructionRegistry(BuildStandardInstructionSet());
    Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, *registry_);
    ASSERT_TRUE(corpus.ok());
    ContextFeatureMemory memory;
    MemoryTrainingOptions options;
    options.samples_per_device = 1200;  // keep the suite fast
    ASSERT_TRUE(memory.TrainFromCorpus(corpus.value().corpus, options).ok());
    // Per-process name: ctest runs each test in its own process and this
    // suite sets up once per process — a shared path would race.
    model_path_ = new std::string(::testing::TempDir() + "sidet_gateway_model." +
                                  std::to_string(::getpid()) + ".json");
    ASSERT_TRUE(SaveMemory(memory, *model_path_).ok());

    SmartHome home = BuildDemoHome(7);
    home.Step(3 * kSecondsPerHour);
    snapshot_ = new SensorSnapshot(home.Snapshot());
    time_ = home.now();
  }
  static void TearDownTestSuite() {
    std::remove(model_path_->c_str());
    delete registry_;
    delete model_path_;
    delete snapshot_;
    registry_ = nullptr;
    model_path_ = nullptr;
    snapshot_ = nullptr;
  }

  // The feature memory is move-only (trees own their nodes), so each IDS
  // instance reloads the persisted model — the same path the router's hot
  // reload exercises.
  static ContextIds MakeIds() {
    Result<ContextFeatureMemory> memory = LoadMemory(*model_path_);
    EXPECT_TRUE(memory.ok());
    return ContextIds(SensitiveInstructionDetector(PaperTableThree()),
                      std::move(memory).value());
  }

  static InstructionRegistry* registry_;
  static std::string* model_path_;
  static SensorSnapshot* snapshot_;
  static SimTime time_;
};
InstructionRegistry* ServingFixture::registry_ = nullptr;
std::string* ServingFixture::model_path_ = nullptr;
SensorSnapshot* ServingFixture::snapshot_ = nullptr;
SimTime ServingFixture::time_;

TEST_F(ServingFixture, RouterRoutesPerHomeAndRejectsUnknownTenants) {
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy);
  ASSERT_TRUE(router.AddHome("alpha", MakeIds()).ok());
  ASSERT_TRUE(router.AddHome("beta", MakeIds()).ok());
  EXPECT_FALSE(router.AddHome("alpha", MakeIds()).ok());  // duplicate
  EXPECT_TRUE(router.HasHome("beta"));
  EXPECT_FALSE(router.HasHome("gamma"));

  std::atomic<int> completions{0};
  JudgeTask task;
  task.instruction = registry_->FindByName("window.open");
  task.snapshot = std::make_shared<const SensorSnapshot>(*snapshot_);
  task.time = time_;
  task.done = [&](const Judgement& judgement) {
    EXPECT_TRUE(judgement.sensitive);
    completions.fetch_add(1);
  };
  EXPECT_EQ(router.SubmitJudge("gamma", JudgeTask(task)), Admission::kUnknownHome);
  EXPECT_EQ(router.SubmitJudge("alpha", std::move(task)), Admission::kAccepted);
  AwaitCount(completions, 1);
  router.DrainAll();
  const Json stats = router.StatsJson();
  EXPECT_EQ(stats.find("homes")->find("alpha")->number_or("completed", 0), 1.0);
  EXPECT_EQ(stats.find("homes")->find("beta")->number_or("completed", 0), 0.0);
}

TEST_F(ServingFixture, RouterUsesAmbientContextWhenNoInlineSnapshot) {
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy);
  ASSERT_TRUE(router.AddHome("alpha", MakeIds()).ok());
  const Instruction* window_open = registry_->FindByName("window.open");

  // Without ambient context a sensitive judge fails closed (empty snapshot).
  std::atomic<int> completions{0};
  Judgement no_context;
  std::mutex verdict_mu;
  JudgeTask task;
  task.instruction = window_open;
  task.time = time_;
  task.done = [&](const Judgement& judgement) {
    std::lock_guard<std::mutex> lock(verdict_mu);
    no_context = judgement;
    completions.fetch_add(1);
  };
  ASSERT_EQ(router.SubmitJudge("alpha", std::move(task)), Admission::kAccepted);
  AwaitCount(completions, 1);
  {
    std::lock_guard<std::mutex> lock(verdict_mu);
    EXPECT_FALSE(no_context.allowed);
  }

  // With the home's ambient snapshot pushed, the same request scores.
  ASSERT_TRUE(router.SetContext("alpha", *snapshot_).ok());
  EXPECT_FALSE(router.SetContext("ghost", *snapshot_).ok());
  Judgement ambient;
  JudgeTask repeat;
  repeat.instruction = window_open;
  repeat.time = time_;
  repeat.done = [&](const Judgement& judgement) {
    std::lock_guard<std::mutex> lock(verdict_mu);
    ambient = judgement;
    completions.fetch_add(1);
  };
  ASSERT_EQ(router.SubmitJudge("alpha", std::move(repeat)), Admission::kAccepted);
  AwaitCount(completions, 2);
  std::lock_guard<std::mutex> lock(verdict_mu);
  EXPECT_TRUE(ambient.sensitive);
  // A scored verdict, not the fail-closed "judgement error" path.
  EXPECT_NE(ambient.reason.find("context consistency"), std::string::npos) << ambient.reason;
}

TEST_F(ServingFixture, RouterHotReloadDropsNothingInFlight) {
  BatchPolicy policy;
  policy.max_batch = 16;
  policy.min_delay_us = policy.max_delay_us = 500;
  GatewayRouter router(policy);
  ASSERT_TRUE(router.AddHome("alpha", MakeIds()).ok());
  ASSERT_TRUE(router.SetContext("alpha", *snapshot_).ok());
  const Instruction* window_open = registry_->FindByName("window.open");

  std::atomic<int> completions{0};
  std::atomic<int> accepted{0};
  std::atomic<bool> stop{false};
  std::thread producer([&] {
    while (!stop.load()) {
      JudgeTask task;
      task.instruction = window_open;
      task.time = time_;
      task.done = [&](const Judgement&) { completions.fetch_add(1); };
      if (router.SubmitJudge("alpha", std::move(task)) == Admission::kAccepted) {
        accepted.fetch_add(1);
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  ASSERT_TRUE(router.ReloadModel("alpha", *model_path_).ok());
  EXPECT_FALSE(router.ReloadModel("alpha", "/nonexistent.json").ok());  // keeps serving
  EXPECT_FALSE(router.ReloadModel("ghost", *model_path_).ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  stop.store(true);
  producer.join();
  router.DrainAll();

  EXPECT_EQ(router.reloads(), 1u);
  EXPECT_GT(accepted.load(), 0);
  // Zero dropped: every accepted request completed through old or new model.
  EXPECT_EQ(completions.load(), accepted.load());
}

TEST_F(ServingFixture, GatewayServesJudgeHealthStatsAndMetrics) {
  MetricsRegistry metrics;
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 200;
  GatewayRouter router(policy, &metrics);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics);
  ASSERT_TRUE(gateway.Start().ok());
  ASSERT_NE(gateway.port(), 0);  // port 0 request resolved to a real port

  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok()) << client.error().message();

  // Ambient context push, then a judge without an inline snapshot.
  Json context = Json::Object();
  context["op"] = "context";
  context["id"] = 1;
  context["snapshot"] = snapshot_->ToJson();
  Result<Json> context_ack = client.value().Call(context);
  ASSERT_TRUE(context_ack.ok()) << context_ack.error().message();
  EXPECT_TRUE(context_ack.value().bool_or("ok", false));

  Json judge = Json::Object();
  judge["op"] = "judge";
  judge["id"] = 2;
  judge["instruction"] = "window.open";
  judge["time"] = time_.seconds();
  Result<Json> verdict = client.value().Call(judge);
  ASSERT_TRUE(verdict.ok()) << verdict.error().message();
  EXPECT_TRUE(verdict.value().bool_or("ok", false));
  EXPECT_TRUE(verdict.value().bool_or("sensitive", false));
  EXPECT_EQ(verdict.value().number_or("id", 0), 2.0);

  Json health = Json::Object();
  health["op"] = "health";
  health["id"] = 3;
  Result<Json> health_response = client.value().Call(health);
  ASSERT_TRUE(health_response.ok());
  EXPECT_EQ(health_response.value().string_or("status", ""), "serving");
  EXPECT_EQ(health_response.value().number_or("homes", 0), 1.0);

  Json stats = Json::Object();
  stats["op"] = "stats";
  stats["id"] = 4;
  Result<Json> stats_response = client.value().Call(stats);
  ASSERT_TRUE(stats_response.ok());
  EXPECT_GE(stats_response.value().find("gateway")->number_or("judges", 0), 1.0);
  EXPECT_GE(stats_response.value().find("homes")->find("default")->number_or("completed", 0),
            1.0);

  Json prom = Json::Object();
  prom["op"] = "metrics";
  prom["id"] = 5;
  Result<Json> prom_response = client.value().Call(prom);
  ASSERT_TRUE(prom_response.ok());
  const std::string exposition = prom_response.value().string_or("metrics", "");
  EXPECT_NE(exposition.find("sidet_gateway_batches_total"), std::string::npos);
  EXPECT_NE(exposition.find("sidet_gateway_requests_total"), std::string::npos);

  // In-band errors: unknown instruction and unknown home are 404s.
  Json unknown = Json::Object();
  unknown["op"] = "judge";
  unknown["id"] = 6;
  unknown["instruction"] = "warp.drive";
  Result<Json> unknown_response = client.value().Call(unknown);
  ASSERT_TRUE(unknown_response.ok());
  EXPECT_EQ(unknown_response.value().number_or("code", 0), 404.0);

  Json wrong_home = Json::Object();
  wrong_home["op"] = "judge";
  wrong_home["id"] = 7;
  wrong_home["home"] = "nowhere";
  wrong_home["instruction"] = "window.open";
  Result<Json> wrong_home_response = client.value().Call(wrong_home);
  ASSERT_TRUE(wrong_home_response.ok());
  EXPECT_EQ(wrong_home_response.value().number_or("code", 0), 404.0);

  // Malformed line => 400 with id 0.
  ASSERT_TRUE(client.value().Send("this is not json").ok());
  Result<std::string> bad = client.value().ReadLine();
  ASSERT_TRUE(bad.ok());
  Result<Json> bad_json = Json::Parse(bad.value());
  ASSERT_TRUE(bad_json.ok());
  EXPECT_EQ(bad_json.value().number_or("code", 0), 400.0);

  gateway.Shutdown();
}

TEST_F(ServingFixture, GatewayHotReloadOverTheWire) {
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router(policy);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  Gateway gateway(router, *registry_);
  ASSERT_TRUE(gateway.Start().ok());
  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());

  Json reload = Json::Object();
  reload["op"] = "reload";
  reload["id"] = 1;
  reload["path"] = *model_path_;
  Result<Json> ack = client.value().Call(reload, /*timeout_ms=*/30000);
  ASSERT_TRUE(ack.ok()) << ack.error().message();
  EXPECT_TRUE(ack.value().bool_or("ok", false));
  EXPECT_EQ(router.reloads(), 1u);

  reload["id"] = 2;
  reload["path"] = "/nonexistent/model.json";
  Result<Json> bad = client.value().Call(reload);
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad.value().number_or("code", 0), 404.0);
  gateway.Shutdown();
}

TEST_F(ServingFixture, GatewayPerConnectionBacklogSheds) {
  BatchPolicy policy;
  // Slow lane: a long fixed delay keeps the first judge in flight while the
  // pipelined follow-ups land.
  policy.min_delay_us = policy.max_delay_us = 200'000;
  GatewayRouter router(policy);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  GatewayConfig config;
  config.max_inflight_per_connection = 1;
  Gateway gateway(router, *registry_, config);
  ASSERT_TRUE(gateway.Start().ok());
  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());

  for (int i = 0; i < 3; ++i) {
    Json judge = Json::Object();
    judge["op"] = "judge";
    judge["id"] = i + 1;
    judge["instruction"] = "window.open";
    ASSERT_TRUE(client.value().Send(judge.Dump()).ok());
  }
  int shed = 0;
  int ok = 0;
  for (int i = 0; i < 3; ++i) {
    Result<std::string> line = client.value().ReadLine(/*timeout_ms=*/10000);
    ASSERT_TRUE(line.ok()) << line.error().message();
    Result<Json> response = Json::Parse(line.value());
    ASSERT_TRUE(response.ok());
    if (response.value().bool_or("ok", false)) {
      ++ok;
    } else if (response.value().number_or("code", 0) == 429.0) {
      ++shed;
    }
  }
  EXPECT_EQ(ok, 1);    // the admitted request completed
  EXPECT_EQ(shed, 2);  // the backlog overflow answered 429 immediately
  EXPECT_EQ(gateway.stats().shed, 2u);
  gateway.Shutdown();
}

TEST_F(ServingFixture, GatewayShutdownDrainsAdmittedJudges) {
  BatchPolicy policy;
  policy.max_batch = 64;
  policy.min_delay_us = policy.max_delay_us = 100'000;  // still queued at shutdown
  GatewayRouter router(policy);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  Gateway gateway(router, *registry_);
  ASSERT_TRUE(gateway.Start().ok());
  Result<GatewayClient> client = GatewayClient::Connect("127.0.0.1", gateway.port());
  ASSERT_TRUE(client.ok());

  const int kRequests = 10;
  for (int i = 0; i < kRequests; ++i) {
    Json judge = Json::Object();
    judge["op"] = "judge";
    judge["id"] = i + 1;
    judge["instruction"] = "window.open";
    ASSERT_TRUE(client.value().Send(judge.Dump()).ok());
  }
  // Give the loop a moment to admit the burst, then drain under load.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  gateway.Shutdown();

  int responses = 0;
  for (int i = 0; i < kRequests; ++i) {
    Result<std::string> line = client.value().ReadLine(/*timeout_ms=*/2000);
    if (!line.ok()) break;  // connection closed after the last flushed byte
    ++responses;
  }
  // Every judge admitted before the drain got a verdict (or an explicit 503
  // if it raced the drain) — nothing vanished without a response.
  EXPECT_EQ(responses, kRequests);
}

TEST_F(ServingFixture, TwoGatewaysBindDistinctEphemeralPorts) {
  BatchPolicy policy;
  policy.min_delay_us = policy.max_delay_us = 0;
  GatewayRouter router_a(policy);
  GatewayRouter router_b(policy);
  ASSERT_TRUE(router_a.AddHome("default", MakeIds()).ok());
  ASSERT_TRUE(router_b.AddHome("default", MakeIds()).ok());
  Gateway gateway_a(router_a, *registry_);
  Gateway gateway_b(router_b, *registry_);
  ASSERT_TRUE(gateway_a.Start().ok());
  ASSERT_TRUE(gateway_b.Start().ok());
  EXPECT_NE(gateway_a.port(), 0);
  EXPECT_NE(gateway_b.port(), 0);
  EXPECT_NE(gateway_a.port(), gateway_b.port());
  gateway_a.Shutdown();
  gateway_b.Shutdown();
}

TEST_F(ServingFixture, LoadGeneratorClosedLoopRoundTrips) {
  MetricsRegistry metrics;
  BatchPolicy policy;
  policy.max_batch = 32;
  policy.min_delay_us = 0;
  policy.max_delay_us = 1000;
  GatewayRouter router(policy, &metrics);
  ASSERT_TRUE(router.AddHome("default", MakeIds()).ok());
  ASSERT_TRUE(router.SetContext("default", *snapshot_).ok());
  Gateway gateway(router, *registry_, GatewayConfig{}, &metrics);
  ASSERT_TRUE(gateway.Start().ok());

  LoadOptions options;
  options.connections = 2;
  options.pipeline = 8;
  options.duration_ms = 200;
  options.request_tails = {
      JudgeRequestTail("default", "window.open", time_),
      JudgeRequestTail("default", "light.on", time_),
      JudgeRequestTail("default", "tv.on", time_),  // non-sensitive fast path
  };
  const LoadReport report = RunLoad("127.0.0.1", gateway.port(), options);
  EXPECT_GT(report.sent, 0u);
  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.responses, report.sent);
  EXPECT_EQ(report.ok, report.sent);
  EXPECT_GT(report.throughput_rps, 0.0);
  EXPECT_GT(report.p99_ms, 0.0);
  const Json json = report.ToJson();
  EXPECT_EQ(json.number_or("sent", 0), static_cast<double>(report.sent));
  gateway.Shutdown();
}

}  // namespace
}  // namespace sidet
