// Cross-module integration: the full pipelines the paper describes, end to
// end — firmware reverse engineering feeding the detector, both vendor
// protocol stacks feeding the collector, the trained IDS guarding a live
// home against the §III.A attack, and shape checks on the Table VI numbers.
#include <gtest/gtest.h>

#include "attacks/attack_generator.h"
#include "automation/engine.h"
#include "core/collector.h"
#include "core/ids.h"
#include "datagen/corpus_generator.h"
#include "datagen/device_dataset.h"
#include "firmware/firmware_image.h"
#include "instructions/standard_instruction_set.h"
#include "ml/decision_tree.h"
#include "ml/sampling.h"
#include "ml/validation.h"
#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"

namespace sidet {
namespace {

TEST(Integration, FirmwareToDetectorPipeline) {
  // 1. "Reverse" the gateway firmware to recover the instruction set.
  const Bytes image = BuildFirmwareImage(BuildStandardInstructionSet());
  Result<InstructionRegistry> registry = RegistryFromFirmware(image);
  ASSERT_TRUE(registry.ok()) << registry.error().message();

  // 2. Configure the detector from the survey profile; the recovered
  //    instructions classify exactly like the built-in catalogue.
  SensitiveInstructionDetector detector(PaperTableThree());
  EXPECT_TRUE(detector.IsSensitive(*registry.value().FindByName("backdoor.open")));
  EXPECT_FALSE(detector.IsSensitive(*registry.value().FindByName("tv.set_volume")));
  EXPECT_FALSE(detector.IsSensitive(*registry.value().FindByName("lock.get_state")));
}

TEST(Integration, TwoVendorCollectorMergesFullSnapshot) {
  SmartHome home = BuildDemoHome(61);
  home.Step(kSecondsPerHour * 3);

  InMemoryTransport transport(6);
  MiioGateway gateway(0x77, home);
  gateway.BindTo(transport, "udp://gw");
  RestBridge bridge(home, "long-lived");
  bridge.BindTo(transport, "http://ha");

  auto miio = std::make_unique<MiioClient>(transport, "udp://gw");
  ASSERT_TRUE(miio->HandshakeForToken().ok());
  auto rest = std::make_unique<RestClient>(transport, "http://ha", "long-lived");
  SensorDataCollector collector(std::move(miio), std::move(rest));

  Result<SensorSnapshot> snapshot = collector.Collect(home.now());
  ASSERT_TRUE(snapshot.ok()) << snapshot.error().message();
  // The merged snapshot covers every sensor in the home, across vendors.
  EXPECT_EQ(snapshot.value().size(), home.AllSensors().size());
  EXPECT_NE(snapshot.value().Find("kitchen_smoke"), nullptr);    // Xiaomi path
  EXPECT_NE(snapshot.value().Find("home_occupancy"), nullptr);   // SmartThings path
  EXPECT_EQ(collector.stats().failures, 0u);
}

TEST(Integration, CollectorRetriesThroughLossyNetwork) {
  SmartHome home = BuildDemoHome(62);
  home.Step(kSecondsPerHour);

  InMemoryTransport transport(7, FaultModel{.drop_probability = 0.3});
  MiioGateway gateway(0x78, home);
  gateway.BindTo(transport, "udp://gw");
  RestBridge bridge(home, "tok");
  bridge.BindTo(transport, "http://ha");

  auto miio = std::make_unique<MiioClient>(transport, "udp://gw");
  // The handshake itself may need a few tries on a lossy link.
  Status handshake = Error("none");
  for (int i = 0; i < 20 && !handshake.ok(); ++i) handshake = miio->HandshakeForToken();
  ASSERT_TRUE(handshake.ok());
  auto rest = std::make_unique<RestClient>(transport, "http://ha", "tok");
  SensorDataCollector collector(std::move(miio), std::move(rest), /*max_retries=*/10);

  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    if (collector.Collect(home.now()).ok()) ++successes;
  }
  // Retries make collection nearly reliable despite 30% drops.
  EXPECT_GE(successes, 18);
  EXPECT_GT(collector.stats().miio_retries + collector.stats().rest_retries, 0u);
}

TEST(Integration, SpoofedSmokeBlockedRealFireAllowed) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> ids = BuildIdsFromScratch(registry, 9);
  ASSERT_TRUE(ids.ok()) << ids.error().message();

  SmartHome home = BuildDemoHome(63);
  home.Step(kSecondsPerHour * 2);
  const Instruction* window_open = registry.FindByName("window.open");

  // (a) Spoofed smoke sensor: reported smoke without physics -> blocked.
  AttackGenerator attacker(home, registry, 4);
  Result<AttackAttempt> attempt = attacker.Launch(AttackKind::kGasSpoofWindow);
  ASSERT_TRUE(attempt.ok());
  Result<Judgement> spoofed = ids.value().Judge(*window_open, home.Snapshot(), home.now());
  ASSERT_TRUE(spoofed.ok()) << spoofed.error().message();
  EXPECT_FALSE(spoofed.value().allowed);
  attacker.Cleanup(attempt.value());

  // (b) A real fire: smoke plus rising temperature and foul air -> allowed.
  home.StartFire();
  home.Step(12 * kSecondsPerMinute);
  Result<Judgement> genuine = ids.value().Judge(*window_open, home.Snapshot(), home.now());
  ASSERT_TRUE(genuine.ok()) << genuine.error().message();
  EXPECT_TRUE(genuine.value().allowed)
      << "consistency " << genuine.value().consistency;
}

TEST(Integration, GuardedEngineBlocksInjectedRuleButRunsLegitimateOnes) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<ContextIds> ids = BuildIdsFromScratch(registry, 10);
  ASSERT_TRUE(ids.ok());

  SmartHome home = BuildDemoHome(64);
  RuleEngine engine(registry, home);
  // The §III.A malicious SmartApp: a rule the attacker injected, plus a
  // spoofed smoke sensor to trigger it.
  engine.AddRule(MakeRule(900, "MALICIOUS: fire exit", "smoke", "backdoor.open", registry)
                     .value());
  engine.SetGuard(ids.value().AsGuard());

  home.Step(kSecondsPerHour);
  home.FindSensor("kitchen_smoke")->Spoof(SensorValue::Binary(true));
  home.Step(kSecondsPerMinute);
  const std::vector<FiredAction> fired = engine.Poll();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_TRUE(fired[0].blocked) << "spoof-triggered backdoor.open must be vetoed";
  EXPECT_FALSE(home.FindDevice("living_window_motor")->IsOn("backdoor_open"));
  home.FindSensor("kitchen_smoke")->ClearSpoof();
}

TEST(Integration, TableSixShapeHolds) {
  // Light-weight re-run of the Table VI pipeline (fewer samples): the
  // paper's qualitative claims must hold.
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(corpus.ok());

  Rng rng(99);
  double kitchen_accuracy = 0.0;
  double worst_accuracy = 1.0;
  for (const DeviceCategory category : EvaluatedCategories()) {
    DeviceDatasetConfig config = DefaultConfigFor(category);
    config.samples = 2000;
    Result<DeviceDataset> built = BuildDeviceDataset(corpus.value().corpus, config);
    ASSERT_TRUE(built.ok());
    const TrainTestSplit split = StratifiedSplit(built.value().data, 0.3, rng);
    Dataset train = RandomOversample(split.train, rng);
    train.Shuffle(rng);
    DecisionTree tree;
    ASSERT_TRUE(tree.Fit(train).ok());

    const BinaryMetrics train_metrics = ComputeMetrics(train.labels(), tree.PredictAll(train));
    const BinaryMetrics test_metrics =
        ComputeMetrics(split.test.labels(), tree.PredictAll(split.test));

    // Paper shape: >= 89.23% accuracy everywhere, FNR under ~10%,
    // training >= test (no gross underfit), precision high.
    EXPECT_GE(test_metrics.accuracy, 0.8923) << ToString(category);
    EXPECT_LE(test_metrics.fnr, 0.12) << ToString(category);
    EXPECT_GE(train_metrics.accuracy + 0.02, test_metrics.accuracy) << ToString(category);
    EXPECT_GE(test_metrics.precision, 0.93) << ToString(category);

    if (category == DeviceCategory::kKitchen) kitchen_accuracy = test_metrics.accuracy;
    worst_accuracy = std::min(worst_accuracy, test_metrics.accuracy);
  }
  // Kitchen appliances are the best-fitting family in the paper.
  EXPECT_GE(kitchen_accuracy, worst_accuracy);
}

TEST(Integration, WindowFeatureWeightsShapedLikeFigSix) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  Result<GeneratedCorpus> corpus = GenerateCorpus(CorpusConfig{}, registry);
  ASSERT_TRUE(corpus.ok());
  DeviceDatasetConfig config = DefaultConfigFor(DeviceCategory::kWindowAndLock);
  config.spoof_negative_fraction = 0.0;  // the paper's (spoof-less) dataset
  config.hazard_coherence = false;       // and physics-free features
  Result<DeviceDataset> built = BuildDeviceDataset(corpus.value().corpus, config);
  ASSERT_TRUE(built.ok());

  Rng rng(7);
  Dataset train = RandomOversample(built.value().data, rng);
  DecisionTree tree;
  ASSERT_TRUE(tree.Fit(train).ok());

  // On the paper's spoof-less dataset, the hazard bits and their physical
  // consequences together dominate; motion stays minor (Fig 6 shape). Smoke
  // and air quality are informationally coupled through coherence, so assert
  // on the block and on smoke specifically.
  double smoke = 0.0;
  double hazard_block = 0.0;
  double motion = 0.0;
  for (const auto& [name, weight] : tree.RankedImportances()) {
    if (name == "smoke") smoke = weight;
    if (name == "smoke" || name == "gas_leak" || name == "air_quality" ||
        name == "temperature") {
      hazard_block += weight;
    }
    if (name == "motion") motion = weight;
  }
  EXPECT_GT(hazard_block, 0.35);
  EXPECT_GT(smoke, motion);
  EXPECT_LT(motion, 0.15);
}

TEST(Integration, LiveJudgeThroughCollector) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  SmartHome home = BuildDemoHome(65);
  home.Step(kSecondsPerHour);

  InMemoryTransport transport(8);
  MiioGateway gateway(0x90, home);
  gateway.BindTo(transport, "udp://gw");
  RestBridge bridge(home, "tok");
  bridge.BindTo(transport, "http://ha");

  auto miio = std::make_unique<MiioClient>(transport, "udp://gw");
  ASSERT_TRUE(miio->HandshakeForToken().ok());
  auto rest = std::make_unique<RestClient>(transport, "http://ha", "tok");
  auto collector =
      std::make_unique<SensorDataCollector>(std::move(miio), std::move(rest));

  Result<ContextIds> base = BuildIdsFromScratch(registry, 11);
  ASSERT_TRUE(base.ok());
  Result<ContextFeatureMemory> memory =
      ContextFeatureMemory::FromJson(base.value().memory().ToJson());
  ASSERT_TRUE(memory.ok());
  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()), std::move(memory).value(),
                 std::move(collector));

  // JudgeLive drives the full chain: encrypted miio poll + REST poll ->
  // merged snapshot -> featurize -> tree -> verdict.
  Result<Judgement> verdict =
      ids.JudgeLive(*registry.FindByName("window.open"), home.now());
  ASSERT_TRUE(verdict.ok()) << verdict.error().message();
  EXPECT_TRUE(verdict.value().sensitive);
}

}  // namespace
}  // namespace sidet
