// Adversarial campaign suite: scoreboard accounting, the cross-sensor
// consistency tier's physics couplings, the transport's compromised mode,
// the collector's stale-beyond-horizon warning, tier labels in audit
// records, and end-to-end determinism of a replay-attack campaign.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "attacks/campaign_metrics.h"
#include "attacks/campaigns.h"
#include "core/collector.h"
#include "core/consistency.h"
#include "core/ids.h"
#include "home/smart_home.h"
#include "instructions/standard_instruction_set.h"
#include "protocol/miio_gateway.h"
#include "protocol/rest_bridge.h"
#include "protocol/transport.h"

namespace sidet {
namespace {

constexpr const char* kGatewayAddress = "udp://gw";
constexpr const char* kBridgeAddress = "http://ha";

// ---------------------------------------------------------------------------
// Scoreboard

TEST(CampaignScoreboard, ConfusionFollowsTableVConvention) {
  CampaignScoreboard board;
  board.RecordAttack(AttackFamily::kMiioHazardSpoof, /*blocked=*/true);
  board.RecordAttack(AttackFamily::kMiioHazardSpoof, /*blocked=*/true);
  board.RecordAttack(AttackFamily::kMiioHazardSpoof, /*blocked=*/false);
  board.RecordBenign(/*blocked=*/false);
  board.RecordBenign(/*blocked=*/false);
  board.RecordBenign(/*blocked=*/false);
  board.RecordBenign(/*blocked=*/true);

  const ConfusionMatrix matrix = board.FamilyConfusion(AttackFamily::kMiioHazardSpoof);
  EXPECT_EQ(matrix.tn, 2);  // blocked attack = true negative
  EXPECT_EQ(matrix.fp, 1);  // missed attack = false positive
  EXPECT_EQ(matrix.tp, 3);  // allowed benign = true positive
  EXPECT_EQ(matrix.fn, 1);  // blocked benign = false alarm
  EXPECT_NEAR(board.DetectionRate(AttackFamily::kMiioHazardSpoof), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(board.BenignFalsePositiveRate(), 0.25, 1e-12);

  // A family that never struck shares the benign pool but has no attack rows.
  const ConfusionMatrix idle = board.FamilyConfusion(AttackFamily::kBoundaryMimicry);
  EXPECT_EQ(idle.tn, 0);
  EXPECT_EQ(idle.fp, 0);
  EXPECT_EQ(idle.tp, 3);
  EXPECT_EQ(idle.fn, 1);
  EXPECT_EQ(board.DetectionRate(AttackFamily::kBoundaryMimicry), 0.0);

  const ConfusionMatrix overall = board.OverallConfusion();
  EXPECT_EQ(overall.tn, 2);
  EXPECT_EQ(overall.fp, 1);
  EXPECT_EQ(overall.total(), 7);

  Json json = board.ToJson();
  EXPECT_EQ(json["families"].as_array().size(), kAttackFamilyCount);
  EXPECT_NEAR(json["benign"]["false_positive_rate"].as_number(), 0.25, 1e-12);
}

TEST(CampaignScoreboard, FamilyTaxonomy) {
  EXPECT_EQ(AllAttackFamilies().size(), kAttackFamilyCount);
  EXPECT_EQ(ClassOf(AttackFamily::kMiioHazardSpoof), AttackClass::kSpoofing);
  EXPECT_EQ(ClassOf(AttackFamily::kRestPresenceSpoof), AttackClass::kSpoofing);
  EXPECT_EQ(ClassOf(AttackFamily::kSnapshotReplay), AttackClass::kSpoofing);
  EXPECT_EQ(ClassOf(AttackFamily::kStuckSensorExploit), AttackClass::kCompromise);
  EXPECT_EQ(ClassOf(AttackFamily::kCompromisedSensorPin), AttackClass::kCompromise);
  EXPECT_EQ(ClassOf(AttackFamily::kBoundaryMimicry), AttackClass::kMimicry);
  EXPECT_EQ(ToString(AttackFamily::kSnapshotReplay), "snapshot_replay");
  EXPECT_EQ(ToString(AttackClass::kCompromise), "compromise");
}

// ---------------------------------------------------------------------------
// Consistency tier

SensorSnapshot DaytimeSnapshot(SimTime at) {
  SensorSnapshot snapshot(at);
  snapshot.Set("kitchen_smoke", SensorType::kSmoke, SensorValue::Binary(false));
  snapshot.Set("living_aqi", SensorType::kAirQuality, SensorValue::Continuous(62.31));
  snapshot.Set("living_motion", SensorType::kMotion, SensorValue::Binary(true));
  snapshot.Set("living_voice", SensorType::kVoiceCommand, SensorValue::Binary(true));
  snapshot.Set("living_noise", SensorType::kNoiseLevel, SensorValue::Continuous(36.42));
  snapshot.Set("living_lux", SensorType::kIlluminance, SensorValue::Continuous(412.7));
  snapshot.Set("living_temperature", SensorType::kTemperature,
               SensorValue::Continuous(21.37));
  return snapshot;
}

TEST(CrossSensorConsistencyTest, CoherentDaytimeContextPasses) {
  CrossSensorConsistency tier;
  const SensorSnapshot snapshot = DaytimeSnapshot(SimTime::FromDayTime(1, 12));
  const ConsistencyReport report = tier.Check(snapshot, snapshot.time());
  EXPECT_TRUE(report.findings.empty());
  EXPECT_FALSE(report.condemned);
  EXPECT_GT(report.checks_run, 0u);
  EXPECT_EQ(report.Summary(), "context consistent");
}

TEST(CrossSensorConsistencyTest, ForgedSmokeWithCleanAirCondemned) {
  CrossSensorConsistency tier;
  SensorSnapshot snapshot = DaytimeSnapshot(SimTime::FromDayTime(1, 12));
  snapshot.Set("kitchen_smoke", SensorType::kSmoke, SensorValue::Binary(true));
  const ConsistencyReport report = tier.Check(snapshot, snapshot.time());
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].check, "smoke_air");
  EXPECT_TRUE(report.condemned);
  EXPECT_NE(report.Summary().find("smoke_air"), std::string::npos);
}

TEST(CrossSensorConsistencyTest, GenuineFireRampSurvivesHazardAllowance) {
  CrossSensorConsistency tier;
  SensorSnapshot before = DaytimeSnapshot(SimTime::FromDayTime(1, 12));
  tier.Observe(before, before.time());

  // Ten minutes into a real fire: smoke tripped, temperature and AQI climbing
  // at physically plausible hazard rates.
  SensorSnapshot during = DaytimeSnapshot(SimTime::FromDayTime(1, 12, 10));
  during.Set("kitchen_smoke", SensorType::kSmoke, SensorValue::Binary(true));
  during.Set("living_temperature", SensorType::kTemperature, SensorValue::Continuous(36.2));
  during.Set("living_aqi", SensorType::kAirQuality, SensorValue::Continuous(301.9));
  const ConsistencyReport report = tier.Check(during, during.time());
  EXPECT_FALSE(report.condemned) << report.Summary();
}

TEST(CrossSensorConsistencyTest, BrightLuxAtNightWithLampsOffCondemned) {
  CrossSensorConsistency tier;
  ActuatorState actuators;
  actuators.known = true;
  actuators.any_lamp_on = false;
  tier.SetActuatorProvider([actuators]() { return actuators; });

  SensorSnapshot snapshot(SimTime::FromDayTime(1, 23));
  snapshot.Set("living_lux", SensorType::kIlluminance, SensorValue::Continuous(281.4));
  const ConsistencyReport report = tier.Check(snapshot, snapshot.time());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].check, "lux_night");
  EXPECT_TRUE(report.condemned);

  // The same reading with a lamp on is explained.
  actuators.any_lamp_on = true;
  tier.SetActuatorProvider([actuators]() { return actuators; });
  EXPECT_FALSE(tier.Check(snapshot, snapshot.time()).condemned);
}

TEST(CrossSensorConsistencyTest, SingleSoftCouplingStaysBelowThreshold) {
  CrossSensorConsistency tier;
  // Voice claimed with no motion but audible ambient noise: one 0.6-severity
  // finding — suspicious, not condemning (a sleeping-room voice assistant
  // misfire should not fail closed on its own).
  SensorSnapshot snapshot = DaytimeSnapshot(SimTime::FromDayTime(1, 12));
  snapshot.Set("living_motion", SensorType::kMotion, SensorValue::Binary(false));
  const ConsistencyReport report = tier.Check(snapshot, snapshot.time());
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].check, "voice_motion");
  EXPECT_FALSE(report.condemned);
}

TEST(CrossSensorConsistencyTest, FrozenContinuousReadingsCondemned) {
  CrossSensorConsistency tier;
  const SensorSnapshot snapshot = DaytimeSnapshot(SimTime::FromDayTime(1, 12));
  tier.Observe(snapshot, snapshot.time());

  // Bit-identical repeat one minute later: impossible under read noise.
  SensorSnapshot repeat = snapshot;
  repeat.set_time(SimTime::FromDayTime(1, 12, 1));
  const ConsistencyReport report = tier.Check(repeat, repeat.time());
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].check, "frozen_context");
  EXPECT_TRUE(report.condemned);

  // The collector's last-known-good cache legitimately repeats bytes: a
  // degraded snapshot is exempt.
  SnapshotQuality quality;
  quality.stale_readings = 3;
  repeat.set_quality(quality);
  EXPECT_FALSE(tier.Check(repeat, repeat.time()).condemned);
}

TEST(CrossSensorConsistencyTest, ImpossibleThermalSlopeCondemned) {
  CrossSensorConsistency tier;
  const SensorSnapshot before = DaytimeSnapshot(SimTime::FromDayTime(1, 12));
  tier.Observe(before, before.time());

  // +24 degC in ten minutes without smoke: no HVAC can do that.
  SensorSnapshot jump = DaytimeSnapshot(SimTime::FromDayTime(1, 12, 10));
  jump.Set("living_temperature", SensorType::kTemperature, SensorValue::Continuous(45.11));
  const ConsistencyReport report = tier.Check(jump, jump.time());
  ASSERT_FALSE(report.findings.empty());
  EXPECT_EQ(report.findings[0].check, "thermal_slope");
  EXPECT_TRUE(report.condemned);
}

TEST(CrossSensorConsistencyTest, StatsCountCheckedAndCondemned) {
  CrossSensorConsistency tier;
  SensorSnapshot bad = DaytimeSnapshot(SimTime::FromDayTime(1, 12));
  bad.Set("kitchen_smoke", SensorType::kSmoke, SensorValue::Binary(true));
  tier.Check(DaytimeSnapshot(SimTime::FromDayTime(1, 12)), SimTime::FromDayTime(1, 12));
  tier.Check(bad, bad.time());
  EXPECT_EQ(tier.snapshots_checked(), 2u);
  EXPECT_EQ(tier.snapshots_condemned(), 1u);
  Json stats = tier.StatsToJson();
  EXPECT_EQ(stats["findings"]["smoke_air"].as_number(), 1.0);
}

TEST(CrossSensorConsistencyTest, HomeActuatorProviderReadsDeviceLayer) {
  SmartHome home = BuildDemoHome(11);
  const ActuatorStateProvider provider = HomeActuatorProvider(home);
  ActuatorState state = provider();
  EXPECT_TRUE(state.known);
  EXPECT_TRUE(state.lock_known);   // demo home locks its entrance
  EXPECT_TRUE(state.lock_engaged);
  EXPECT_FALSE(state.any_opening_open);

  home.FindDevice("living_light")->SetState("on", 1.0);
  home.FindDevice("living_window_motor")->SetState("open", 1.0);
  state = provider();
  EXPECT_TRUE(state.any_lamp_on);
  EXPECT_TRUE(state.any_opening_open);
}

// ---------------------------------------------------------------------------
// Transport compromised mode + fault schedule

TEST(FaultScheduleTest, CompromisedAtRespectsStartTime) {
  FaultSpec spec;
  EXPECT_FALSE(spec.CompromisedAt(SimTime(1000)));
  spec.compromised_after = SimTime(500);
  EXPECT_FALSE(spec.CompromisedAt(SimTime(499)));
  EXPECT_TRUE(spec.CompromisedAt(SimTime(500)));
  EXPECT_TRUE(spec.CompromisedAt(SimTime(501)));
}

TEST(TransportCompromisedTest, PinnedBytesReplaceTheHandler) {
  InMemoryTransport transport(7);
  SimClock clock(SimTime(0));
  transport.AttachClock(&clock);
  transport.Bind("udp://dev", [](std::span<const std::uint8_t>) -> Result<Bytes> {
    return Bytes{'l', 'i', 'v', 'e'};
  });

  FaultSpec spec;
  spec.compromised_after = SimTime(100);
  spec.compromised_response = Bytes{'p', 'w', 'n', 'd'};
  FaultSchedule schedule;
  schedule.Set("udp://dev", spec);
  transport.SetFaultSchedule(schedule);

  const Bytes probe{0x01};
  Result<Bytes> before = transport.Request("udp://dev", probe);
  ASSERT_TRUE(before.ok());
  EXPECT_EQ(before.value(), (Bytes{'l', 'i', 'v', 'e'}));
  EXPECT_EQ(transport.compromised_replays(), 0u);

  clock.AdvanceTo(SimTime(200));
  Result<Bytes> after = transport.Request("udp://dev", probe);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value(), (Bytes{'p', 'w', 'n', 'd'}));
  EXPECT_EQ(transport.compromised_replays(), 1u);
  EXPECT_EQ(transport.stuck_replays(), 0u);  // distinct from the fault mode
}

TEST(TransportCompromisedTest, EmptyPinReplaysLastGoodCapture) {
  InMemoryTransport transport(7);
  SimClock clock(SimTime(0));
  transport.AttachClock(&clock);
  int calls = 0;
  transport.Bind("udp://dev", [&calls](std::span<const std::uint8_t>) -> Result<Bytes> {
    return Bytes{static_cast<std::uint8_t>(++calls)};
  });

  FaultSpec spec;
  spec.compromised_after = SimTime(0);  // compromised from the start, no pin
  FaultSchedule schedule;
  schedule.Set("udp://dev", spec);
  transport.SetFaultSchedule(schedule);

  const Bytes probe{0x01};
  // Nothing recorded yet: falls through so the attacker captures a reply.
  Result<Bytes> first = transport.Request("udp://dev", probe);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), Bytes{1});
  EXPECT_EQ(transport.compromised_replays(), 0u);

  // From now on the captured bytes replay; the handler is never reached.
  Result<Bytes> second = transport.Request("udp://dev", probe);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value(), Bytes{1});
  EXPECT_EQ(transport.compromised_replays(), 1u);
  EXPECT_EQ(calls, 1);
}

// ---------------------------------------------------------------------------
// Collector stale-beyond-horizon warning

TEST(CollectorStaleHorizonTest, BreakerOpenLkgBeyondHorizonIsCounted) {
  SmartHome home = BuildDemoHome(21);
  InMemoryTransport transport(9);
  SimClock clock(home.now());
  MiioGateway gateway(0x42, home);
  gateway.BindTo(transport, kGatewayAddress);

  auto miio = std::make_unique<MiioClient>(transport, kGatewayAddress);
  ASSERT_TRUE(miio->HandshakeForToken().ok());

  CollectorConfig config;
  config.max_retries = 0;
  config.breaker = {.failure_threshold = 1, .open_seconds = 48 * kSecondsPerHour};
  config.lkg_warn_staleness_seconds = kSecondsPerHour;
  SensorDataCollector collector(std::move(miio), /*rest=*/nullptr, config);
  collector.AttachClock(&clock);
  transport.AttachClock(&clock);

  // Healthy collection fills the last-known-good cache.
  ASSERT_TRUE(collector.Collect(clock.now()).ok());
  EXPECT_EQ(collector.stats().stale_beyond_horizon, 0u);

  // Gateway goes down hard; the first failed poll opens the breaker and the
  // cache (seconds old) serves without tripping the horizon.
  FaultSpec outage;
  outage.outages.push_back({clock.now(), SimTime(clock.now().seconds() + 365 * 86400)});
  FaultSchedule schedule;
  schedule.Set(kGatewayAddress, outage);
  transport.SetFaultSchedule(schedule);
  clock.AdvanceSeconds(30);
  Result<SensorSnapshot> degraded = collector.Collect(clock.now());
  ASSERT_TRUE(degraded.ok());
  EXPECT_TRUE(degraded.value().quality().degraded());
  EXPECT_EQ(collector.stats().stale_beyond_horizon, 0u);

  // Two hours later the same cache is past the warning horizon.
  clock.AdvanceSeconds(2 * kSecondsPerHour);
  Result<SensorSnapshot> ancient = collector.Collect(clock.now());
  ASSERT_TRUE(ancient.ok());
  EXPECT_GE(collector.stats().stale_beyond_horizon, 1u);
  EXPECT_GT(collector.stats().breaker_skips, 0u);
}

// ---------------------------------------------------------------------------
// Audit tier labels

TEST(AuditTierTest, TierAndStalenessRoundTripThroughJson) {
  AuditRecord record;
  record.at = SimTime(7200);
  record.instruction = "window.open";
  record.category = DeviceCategory::kWindowAndLock;
  record.sensitive = true;
  record.allowed = false;
  record.consistency = 0.0;
  record.degraded = false;
  record.reason = "cross-sensor inconsistency (severity 1.0): smoke_air: forged";
  record.tier = "consistency";
  record.staleness_seconds = 42;

  Result<AuditRecord> reparsed = AuditRecord::FromJsonLine(record.ToJsonLine());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), record);
  EXPECT_EQ(reparsed.value().tier, "consistency");
  EXPECT_EQ(reparsed.value().staleness_seconds, 42);
}

TEST(AuditTierTest, ModelVerdictsOmitTierFields) {
  AuditRecord record;
  record.instruction = "light.on";
  record.category = DeviceCategory::kLighting;
  record.allowed = true;
  const Json json = record.ToJson();
  EXPECT_EQ(json.find("tier"), nullptr);
  EXPECT_EQ(json.find("staleness_seconds"), nullptr);
  Result<AuditRecord> reparsed = AuditRecord::FromJsonLine(record.ToJsonLine());
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(reparsed.value(), record);
}

// ---------------------------------------------------------------------------
// Campaign crafting against the live wire protocols

struct CampaignRig {
  SmartHome home;
  SimClock clock;
  InMemoryTransport transport;
  MiioGateway gateway;
  RestBridge bridge;
  CampaignRunner campaigns;

  explicit CampaignRig(std::uint64_t seed, const InstructionRegistry* registry)
      : home(BuildDemoHome(seed & 0xffff)),
        clock(home.now()),
        transport(seed ^ 0xc0ffee),
        gateway(0x99, home),
        bridge(home, "adv-token"),
        campaigns(MakeContext(registry)) {
    transport.AttachClock(&clock);
  }

  CampaignContext MakeContext(const InstructionRegistry* registry) {
    gateway.BindTo(transport, kGatewayAddress);
    bridge.BindTo(transport, kBridgeAddress);
    CampaignContext context;
    context.home = &home;
    context.transport = &transport;
    context.registry = registry;
    context.gateway = &gateway;
    context.gateway_address = kGatewayAddress;
    context.bridge_address = kBridgeAddress;
    return context;
  }
};

TEST(CampaignRunnerTest, MiioForgeryDecodesAndFlipsHazardBits) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CampaignRig rig(77, &registry);
  MiioClient client(rig.transport, kGatewayAddress);
  ASSERT_TRUE(client.HandshakeForToken().ok());

  rig.campaigns.RecordBenignContext();
  ASSERT_TRUE(rig.campaigns.Prepare(AttackFamily::kMiioHazardSpoof, rig.clock.now()).ok());

  Result<SensorSnapshot> forged = client.PollAll();
  ASSERT_TRUE(forged.ok());
  const SensorValue* smoke = forged.value().FindByType(SensorType::kSmoke);
  ASSERT_NE(smoke, nullptr);
  EXPECT_TRUE(smoke->as_bool());
  // The lazy forgery leaves the co-located air-quality reading benign.
  const SensorValue* aqi = forged.value().FindByType(SensorType::kAirQuality);
  ASSERT_NE(aqi, nullptr);
  EXPECT_LT(aqi->number, 100.0);
  EXPECT_GT(rig.transport.compromised_replays(), 0u);

  rig.campaigns.Cleanup();
  Result<SensorSnapshot> genuine = client.PollAll();
  ASSERT_TRUE(genuine.ok());
  EXPECT_FALSE(genuine.value().FindByType(SensorType::kSmoke)->as_bool());
}

TEST(CampaignRunnerTest, RestForgeryClaimsPresenceAndLight) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CampaignRig rig(78, &registry);
  RestClient client(rig.transport, kBridgeAddress, "adv-token");

  rig.campaigns.RecordBenignContext();
  ASSERT_TRUE(rig.campaigns.Prepare(AttackFamily::kRestPresenceSpoof, rig.clock.now()).ok());

  Result<SensorSnapshot> forged = client.PollAll();
  ASSERT_TRUE(forged.ok());
  const SensorValue* voice = forged.value().FindByType(SensorType::kVoiceCommand);
  ASSERT_NE(voice, nullptr);
  EXPECT_TRUE(voice->as_bool());
  const SensorValue* lux = forged.value().FindByType(SensorType::kIlluminance);
  ASSERT_NE(lux, nullptr);
  EXPECT_NEAR(lux->number, 280.0, 1e-9);
  rig.campaigns.Cleanup();
}

TEST(CampaignRunnerTest, ForgeryFamiliesRequireABenignRecording) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CampaignRig rig(79, &registry);
  EXPECT_FALSE(rig.campaigns.Prepare(AttackFamily::kSnapshotReplay, rig.clock.now()).ok());
  // The stuck exploit needs no recording (it replays the wire itself).
  EXPECT_TRUE(rig.campaigns.Prepare(AttackFamily::kStuckSensorExploit, rig.clock.now()).ok());
  rig.campaigns.Cleanup();
}

TEST(CampaignRunnerTest, EveryFamilyResolvesStrikeInstructions) {
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CampaignRig rig(80, &registry);
  for (AttackFamily family : AllAttackFamilies()) {
    EXPECT_FALSE(rig.campaigns.Strike(family).empty())
        << "family " << ToString(family) << " resolves no instructions";
  }
}

// ---------------------------------------------------------------------------
// End-to-end determinism of a replay-attack campaign (fixed seed)

const Json& TrainedMemoryJson() {
  static const Json* json = [] {
    const InstructionRegistry registry = BuildStandardInstructionSet();
    Result<ContextIds> built = BuildIdsFromScratch(registry, 2026);
    if (!built.ok()) {
      ADD_FAILURE() << "BuildIdsFromScratch failed: " << built.error().message();
      return new Json(Json::Object());
    }
    return new Json(built.value().memory().ToJson());
  }();
  return *json;
}

struct MiniRun {
  std::vector<int> verdicts;  // 1 allowed, 0 blocked, 2 error — probes+strikes
  std::string consistency_stats;
  std::size_t compromised_replays = 0;
};

// Two-day snapshot-replay campaign against the tiered live IDS, mirroring
// the bench rig at test scale.
MiniRun RunReplayAttackCampaign(std::uint64_t seed) {
  MiniRun result;
  const InstructionRegistry registry = BuildStandardInstructionSet();
  CampaignRig rig(seed, &registry);

  auto miio = std::make_unique<MiioClient>(rig.transport, kGatewayAddress);
  if (!miio->HandshakeForToken().ok()) return result;
  auto rest = std::make_unique<RestClient>(rig.transport, kBridgeAddress, "adv-token");
  auto collector = std::make_unique<SensorDataCollector>(std::move(miio), std::move(rest),
                                                         CollectorConfig{});
  collector->AttachClock(&rig.clock);

  Result<ContextFeatureMemory> memory = ContextFeatureMemory::FromJson(TrainedMemoryJson());
  if (!memory.ok()) return result;
  ContextIds ids(SensitiveInstructionDetector(PaperTableThree()), std::move(memory).value(),
                 std::move(collector));
  ids.SetConsistencyTier(std::make_unique<CrossSensorConsistency>());
  ids.consistency_tier()->SetActuatorProvider(HomeActuatorProvider(rig.home));

  const auto judge = [&](const Instruction& instruction) {
    Result<Judgement> verdict = ids.JudgeLive(instruction, rig.home.now());
    result.verdicts.push_back(verdict.ok() ? (verdict.value().allowed ? 1 : 0) : 2);
  };

  const Instruction* window = registry.FindByName("window.open");
  const Instruction* light = registry.FindByName("light.on");
  for (int minute = 0; minute < 2 * 24 * 60; ++minute) {
    rig.home.Step(kSecondsPerMinute);
    rig.clock.AdvanceTo(rig.home.now());
    const int day = minute / (24 * 60);
    const int mod = minute % (24 * 60);
    if (day == 0 && mod == 13 * 60 + 1) rig.campaigns.RecordBenignContext();
    if (day == 1 && mod == 90) {
      EXPECT_TRUE(rig.campaigns.Prepare(AttackFamily::kSnapshotReplay, rig.home.now()).ok());
    }
    if (day == 1 && (mod == 95 || mod == 185 || mod == 275)) {
      for (const Instruction* strike : rig.campaigns.Strike(AttackFamily::kSnapshotReplay)) {
        judge(*strike);
      }
    }
    if (day == 1 && mod == 300) rig.campaigns.Cleanup();
    if (mod % 60 == 0) {
      judge(*window);
      judge(*light);
    }
  }
  result.consistency_stats = ids.consistency_tier()->StatsToJson().Dump();
  result.compromised_replays = rig.transport.compromised_replays();
  return result;
}

TEST(AdversarialDeterminismTest, ReplayAttackCampaignIsSeedDeterministic) {
  const MiniRun first = RunReplayAttackCampaign(4242);
  const MiniRun second = RunReplayAttackCampaign(4242);
  ASSERT_FALSE(first.verdicts.empty());
  EXPECT_EQ(first.verdicts, second.verdicts);
  EXPECT_EQ(first.consistency_stats, second.consistency_stats);
  EXPECT_EQ(first.compromised_replays, second.compromised_replays);
  EXPECT_GT(first.compromised_replays, 0u);

  // The replayed daytime context must be condemned at least once during the
  // night strikes: the tier is what turns record-and-replay into blocks.
  Result<Json> stats = Json::Parse(first.consistency_stats);
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value()["snapshots_condemned"].as_number(), 0.0);
}

}  // namespace
}  // namespace sidet
