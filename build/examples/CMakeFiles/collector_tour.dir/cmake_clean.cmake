file(REMOVE_RECURSE
  "CMakeFiles/collector_tour.dir/collector_tour.cpp.o"
  "CMakeFiles/collector_tour.dir/collector_tour.cpp.o.d"
  "collector_tour"
  "collector_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/collector_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
