# Empty dependencies file for collector_tour.
# This may be replaced when dependencies are built.
