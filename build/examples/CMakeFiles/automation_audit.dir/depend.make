# Empty dependencies file for automation_audit.
# This may be replaced when dependencies are built.
