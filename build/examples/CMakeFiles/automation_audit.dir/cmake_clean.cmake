file(REMOVE_RECURSE
  "CMakeFiles/automation_audit.dir/automation_audit.cpp.o"
  "CMakeFiles/automation_audit.dir/automation_audit.cpp.o.d"
  "automation_audit"
  "automation_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/automation_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
