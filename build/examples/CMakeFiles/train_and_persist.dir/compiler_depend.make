# Empty compiler generated dependencies file for train_and_persist.
# This may be replaced when dependencies are built.
