file(REMOVE_RECURSE
  "CMakeFiles/train_and_persist.dir/train_and_persist.cpp.o"
  "CMakeFiles/train_and_persist.dir/train_and_persist.cpp.o.d"
  "train_and_persist"
  "train_and_persist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_persist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
