file(REMOVE_RECURSE
  "libsidet_crypto.a"
)
