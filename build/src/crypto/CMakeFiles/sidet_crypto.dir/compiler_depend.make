# Empty compiler generated dependencies file for sidet_crypto.
# This may be replaced when dependencies are built.
