file(REMOVE_RECURSE
  "CMakeFiles/sidet_crypto.dir/aes.cpp.o"
  "CMakeFiles/sidet_crypto.dir/aes.cpp.o.d"
  "CMakeFiles/sidet_crypto.dir/md5.cpp.o"
  "CMakeFiles/sidet_crypto.dir/md5.cpp.o.d"
  "CMakeFiles/sidet_crypto.dir/miio_kdf.cpp.o"
  "CMakeFiles/sidet_crypto.dir/miio_kdf.cpp.o.d"
  "libsidet_crypto.a"
  "libsidet_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
