file(REMOVE_RECURSE
  "libsidet_automation.a"
)
