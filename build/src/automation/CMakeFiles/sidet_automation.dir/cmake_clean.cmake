file(REMOVE_RECURSE
  "CMakeFiles/sidet_automation.dir/condition.cpp.o"
  "CMakeFiles/sidet_automation.dir/condition.cpp.o.d"
  "CMakeFiles/sidet_automation.dir/dsl_parser.cpp.o"
  "CMakeFiles/sidet_automation.dir/dsl_parser.cpp.o.d"
  "CMakeFiles/sidet_automation.dir/engine.cpp.o"
  "CMakeFiles/sidet_automation.dir/engine.cpp.o.d"
  "CMakeFiles/sidet_automation.dir/rule.cpp.o"
  "CMakeFiles/sidet_automation.dir/rule.cpp.o.d"
  "CMakeFiles/sidet_automation.dir/rule_io.cpp.o"
  "CMakeFiles/sidet_automation.dir/rule_io.cpp.o.d"
  "libsidet_automation.a"
  "libsidet_automation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_automation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
