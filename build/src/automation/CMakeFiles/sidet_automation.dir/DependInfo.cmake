
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/automation/condition.cpp" "src/automation/CMakeFiles/sidet_automation.dir/condition.cpp.o" "gcc" "src/automation/CMakeFiles/sidet_automation.dir/condition.cpp.o.d"
  "/root/repo/src/automation/dsl_parser.cpp" "src/automation/CMakeFiles/sidet_automation.dir/dsl_parser.cpp.o" "gcc" "src/automation/CMakeFiles/sidet_automation.dir/dsl_parser.cpp.o.d"
  "/root/repo/src/automation/engine.cpp" "src/automation/CMakeFiles/sidet_automation.dir/engine.cpp.o" "gcc" "src/automation/CMakeFiles/sidet_automation.dir/engine.cpp.o.d"
  "/root/repo/src/automation/rule.cpp" "src/automation/CMakeFiles/sidet_automation.dir/rule.cpp.o" "gcc" "src/automation/CMakeFiles/sidet_automation.dir/rule.cpp.o.d"
  "/root/repo/src/automation/rule_io.cpp" "src/automation/CMakeFiles/sidet_automation.dir/rule_io.cpp.o" "gcc" "src/automation/CMakeFiles/sidet_automation.dir/rule_io.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sidet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/sidet_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/home/CMakeFiles/sidet_home.dir/DependInfo.cmake"
  "/root/repo/build/src/instructions/CMakeFiles/sidet_instructions.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
