# Empty dependencies file for sidet_automation.
# This may be replaced when dependencies are built.
