# Empty compiler generated dependencies file for sidet_firmware.
# This may be replaced when dependencies are built.
