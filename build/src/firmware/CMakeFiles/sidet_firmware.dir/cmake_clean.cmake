file(REMOVE_RECURSE
  "CMakeFiles/sidet_firmware.dir/firmware_image.cpp.o"
  "CMakeFiles/sidet_firmware.dir/firmware_image.cpp.o.d"
  "libsidet_firmware.a"
  "libsidet_firmware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_firmware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
