file(REMOVE_RECURSE
  "libsidet_firmware.a"
)
