file(REMOVE_RECURSE
  "CMakeFiles/sidet_survey.dir/survey.cpp.o"
  "CMakeFiles/sidet_survey.dir/survey.cpp.o.d"
  "libsidet_survey.a"
  "libsidet_survey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_survey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
