# Empty dependencies file for sidet_survey.
# This may be replaced when dependencies are built.
