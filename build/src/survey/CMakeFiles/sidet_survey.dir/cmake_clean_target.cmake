file(REMOVE_RECURSE
  "libsidet_survey.a"
)
