file(REMOVE_RECURSE
  "libsidet_ml.a"
)
