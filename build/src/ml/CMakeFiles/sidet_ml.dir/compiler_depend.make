# Empty compiler generated dependencies file for sidet_ml.
# This may be replaced when dependencies are built.
