file(REMOVE_RECURSE
  "CMakeFiles/sidet_ml.dir/dataset.cpp.o"
  "CMakeFiles/sidet_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/sidet_ml.dir/decision_tree.cpp.o"
  "CMakeFiles/sidet_ml.dir/decision_tree.cpp.o.d"
  "CMakeFiles/sidet_ml.dir/knn.cpp.o"
  "CMakeFiles/sidet_ml.dir/knn.cpp.o.d"
  "CMakeFiles/sidet_ml.dir/linear_svm.cpp.o"
  "CMakeFiles/sidet_ml.dir/linear_svm.cpp.o.d"
  "CMakeFiles/sidet_ml.dir/metrics.cpp.o"
  "CMakeFiles/sidet_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/sidet_ml.dir/naive_bayes.cpp.o"
  "CMakeFiles/sidet_ml.dir/naive_bayes.cpp.o.d"
  "CMakeFiles/sidet_ml.dir/random_forest.cpp.o"
  "CMakeFiles/sidet_ml.dir/random_forest.cpp.o.d"
  "CMakeFiles/sidet_ml.dir/roc.cpp.o"
  "CMakeFiles/sidet_ml.dir/roc.cpp.o.d"
  "CMakeFiles/sidet_ml.dir/sampling.cpp.o"
  "CMakeFiles/sidet_ml.dir/sampling.cpp.o.d"
  "CMakeFiles/sidet_ml.dir/validation.cpp.o"
  "CMakeFiles/sidet_ml.dir/validation.cpp.o.d"
  "libsidet_ml.a"
  "libsidet_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
