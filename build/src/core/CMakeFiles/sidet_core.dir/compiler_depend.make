# Empty compiler generated dependencies file for sidet_core.
# This may be replaced when dependencies are built.
