
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/audit.cpp" "src/core/CMakeFiles/sidet_core.dir/audit.cpp.o" "gcc" "src/core/CMakeFiles/sidet_core.dir/audit.cpp.o.d"
  "/root/repo/src/core/camera_warning.cpp" "src/core/CMakeFiles/sidet_core.dir/camera_warning.cpp.o" "gcc" "src/core/CMakeFiles/sidet_core.dir/camera_warning.cpp.o.d"
  "/root/repo/src/core/collector.cpp" "src/core/CMakeFiles/sidet_core.dir/collector.cpp.o" "gcc" "src/core/CMakeFiles/sidet_core.dir/collector.cpp.o.d"
  "/root/repo/src/core/detector.cpp" "src/core/CMakeFiles/sidet_core.dir/detector.cpp.o" "gcc" "src/core/CMakeFiles/sidet_core.dir/detector.cpp.o.d"
  "/root/repo/src/core/feature_memory.cpp" "src/core/CMakeFiles/sidet_core.dir/feature_memory.cpp.o" "gcc" "src/core/CMakeFiles/sidet_core.dir/feature_memory.cpp.o.d"
  "/root/repo/src/core/ids.cpp" "src/core/CMakeFiles/sidet_core.dir/ids.cpp.o" "gcc" "src/core/CMakeFiles/sidet_core.dir/ids.cpp.o.d"
  "/root/repo/src/core/model_store.cpp" "src/core/CMakeFiles/sidet_core.dir/model_store.cpp.o" "gcc" "src/core/CMakeFiles/sidet_core.dir/model_store.cpp.o.d"
  "/root/repo/src/core/online_update.cpp" "src/core/CMakeFiles/sidet_core.dir/online_update.cpp.o" "gcc" "src/core/CMakeFiles/sidet_core.dir/online_update.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sidet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/sidet_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/home/CMakeFiles/sidet_home.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/sidet_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/instructions/CMakeFiles/sidet_instructions.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/sidet_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/automation/CMakeFiles/sidet_automation.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sidet_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sidet_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sidet_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
