file(REMOVE_RECURSE
  "libsidet_core.a"
)
