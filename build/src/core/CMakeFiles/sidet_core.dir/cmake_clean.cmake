file(REMOVE_RECURSE
  "CMakeFiles/sidet_core.dir/audit.cpp.o"
  "CMakeFiles/sidet_core.dir/audit.cpp.o.d"
  "CMakeFiles/sidet_core.dir/camera_warning.cpp.o"
  "CMakeFiles/sidet_core.dir/camera_warning.cpp.o.d"
  "CMakeFiles/sidet_core.dir/collector.cpp.o"
  "CMakeFiles/sidet_core.dir/collector.cpp.o.d"
  "CMakeFiles/sidet_core.dir/detector.cpp.o"
  "CMakeFiles/sidet_core.dir/detector.cpp.o.d"
  "CMakeFiles/sidet_core.dir/feature_memory.cpp.o"
  "CMakeFiles/sidet_core.dir/feature_memory.cpp.o.d"
  "CMakeFiles/sidet_core.dir/ids.cpp.o"
  "CMakeFiles/sidet_core.dir/ids.cpp.o.d"
  "CMakeFiles/sidet_core.dir/model_store.cpp.o"
  "CMakeFiles/sidet_core.dir/model_store.cpp.o.d"
  "CMakeFiles/sidet_core.dir/online_update.cpp.o"
  "CMakeFiles/sidet_core.dir/online_update.cpp.o.d"
  "libsidet_core.a"
  "libsidet_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
