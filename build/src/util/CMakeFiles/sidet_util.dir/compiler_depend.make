# Empty compiler generated dependencies file for sidet_util.
# This may be replaced when dependencies are built.
