file(REMOVE_RECURSE
  "libsidet_util.a"
)
