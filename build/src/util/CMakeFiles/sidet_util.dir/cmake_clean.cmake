file(REMOVE_RECURSE
  "CMakeFiles/sidet_util.dir/args.cpp.o"
  "CMakeFiles/sidet_util.dir/args.cpp.o.d"
  "CMakeFiles/sidet_util.dir/bytes.cpp.o"
  "CMakeFiles/sidet_util.dir/bytes.cpp.o.d"
  "CMakeFiles/sidet_util.dir/csv.cpp.o"
  "CMakeFiles/sidet_util.dir/csv.cpp.o.d"
  "CMakeFiles/sidet_util.dir/json.cpp.o"
  "CMakeFiles/sidet_util.dir/json.cpp.o.d"
  "CMakeFiles/sidet_util.dir/log.cpp.o"
  "CMakeFiles/sidet_util.dir/log.cpp.o.d"
  "CMakeFiles/sidet_util.dir/rng.cpp.o"
  "CMakeFiles/sidet_util.dir/rng.cpp.o.d"
  "CMakeFiles/sidet_util.dir/sim_clock.cpp.o"
  "CMakeFiles/sidet_util.dir/sim_clock.cpp.o.d"
  "CMakeFiles/sidet_util.dir/stats.cpp.o"
  "CMakeFiles/sidet_util.dir/stats.cpp.o.d"
  "CMakeFiles/sidet_util.dir/strings.cpp.o"
  "CMakeFiles/sidet_util.dir/strings.cpp.o.d"
  "CMakeFiles/sidet_util.dir/table.cpp.o"
  "CMakeFiles/sidet_util.dir/table.cpp.o.d"
  "libsidet_util.a"
  "libsidet_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
