file(REMOVE_RECURSE
  "CMakeFiles/sidet_home.dir/device.cpp.o"
  "CMakeFiles/sidet_home.dir/device.cpp.o.d"
  "CMakeFiles/sidet_home.dir/environment.cpp.o"
  "CMakeFiles/sidet_home.dir/environment.cpp.o.d"
  "CMakeFiles/sidet_home.dir/home_builder.cpp.o"
  "CMakeFiles/sidet_home.dir/home_builder.cpp.o.d"
  "CMakeFiles/sidet_home.dir/occupant.cpp.o"
  "CMakeFiles/sidet_home.dir/occupant.cpp.o.d"
  "CMakeFiles/sidet_home.dir/smart_home.cpp.o"
  "CMakeFiles/sidet_home.dir/smart_home.cpp.o.d"
  "libsidet_home.a"
  "libsidet_home.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_home.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
