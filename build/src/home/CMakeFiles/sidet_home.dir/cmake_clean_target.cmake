file(REMOVE_RECURSE
  "libsidet_home.a"
)
