# Empty dependencies file for sidet_home.
# This may be replaced when dependencies are built.
