
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/home/device.cpp" "src/home/CMakeFiles/sidet_home.dir/device.cpp.o" "gcc" "src/home/CMakeFiles/sidet_home.dir/device.cpp.o.d"
  "/root/repo/src/home/environment.cpp" "src/home/CMakeFiles/sidet_home.dir/environment.cpp.o" "gcc" "src/home/CMakeFiles/sidet_home.dir/environment.cpp.o.d"
  "/root/repo/src/home/home_builder.cpp" "src/home/CMakeFiles/sidet_home.dir/home_builder.cpp.o" "gcc" "src/home/CMakeFiles/sidet_home.dir/home_builder.cpp.o.d"
  "/root/repo/src/home/occupant.cpp" "src/home/CMakeFiles/sidet_home.dir/occupant.cpp.o" "gcc" "src/home/CMakeFiles/sidet_home.dir/occupant.cpp.o.d"
  "/root/repo/src/home/smart_home.cpp" "src/home/CMakeFiles/sidet_home.dir/smart_home.cpp.o" "gcc" "src/home/CMakeFiles/sidet_home.dir/smart_home.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sidet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/sidet_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/instructions/CMakeFiles/sidet_instructions.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
