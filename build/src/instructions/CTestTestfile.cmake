# CMake generated Testfile for 
# Source directory: /root/repo/src/instructions
# Build directory: /root/repo/build/src/instructions
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
