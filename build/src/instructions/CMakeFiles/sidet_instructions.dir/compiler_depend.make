# Empty compiler generated dependencies file for sidet_instructions.
# This may be replaced when dependencies are built.
