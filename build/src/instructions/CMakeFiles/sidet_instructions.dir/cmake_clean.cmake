file(REMOVE_RECURSE
  "CMakeFiles/sidet_instructions.dir/device_category.cpp.o"
  "CMakeFiles/sidet_instructions.dir/device_category.cpp.o.d"
  "CMakeFiles/sidet_instructions.dir/instruction.cpp.o"
  "CMakeFiles/sidet_instructions.dir/instruction.cpp.o.d"
  "CMakeFiles/sidet_instructions.dir/standard_instruction_set.cpp.o"
  "CMakeFiles/sidet_instructions.dir/standard_instruction_set.cpp.o.d"
  "CMakeFiles/sidet_instructions.dir/threat.cpp.o"
  "CMakeFiles/sidet_instructions.dir/threat.cpp.o.d"
  "libsidet_instructions.a"
  "libsidet_instructions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_instructions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
