file(REMOVE_RECURSE
  "libsidet_instructions.a"
)
