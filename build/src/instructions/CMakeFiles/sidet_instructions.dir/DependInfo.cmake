
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/instructions/device_category.cpp" "src/instructions/CMakeFiles/sidet_instructions.dir/device_category.cpp.o" "gcc" "src/instructions/CMakeFiles/sidet_instructions.dir/device_category.cpp.o.d"
  "/root/repo/src/instructions/instruction.cpp" "src/instructions/CMakeFiles/sidet_instructions.dir/instruction.cpp.o" "gcc" "src/instructions/CMakeFiles/sidet_instructions.dir/instruction.cpp.o.d"
  "/root/repo/src/instructions/standard_instruction_set.cpp" "src/instructions/CMakeFiles/sidet_instructions.dir/standard_instruction_set.cpp.o" "gcc" "src/instructions/CMakeFiles/sidet_instructions.dir/standard_instruction_set.cpp.o.d"
  "/root/repo/src/instructions/threat.cpp" "src/instructions/CMakeFiles/sidet_instructions.dir/threat.cpp.o" "gcc" "src/instructions/CMakeFiles/sidet_instructions.dir/threat.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sidet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
