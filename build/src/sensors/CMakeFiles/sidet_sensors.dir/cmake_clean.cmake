file(REMOVE_RECURSE
  "CMakeFiles/sidet_sensors.dir/history.cpp.o"
  "CMakeFiles/sidet_sensors.dir/history.cpp.o.d"
  "CMakeFiles/sidet_sensors.dir/sensor.cpp.o"
  "CMakeFiles/sidet_sensors.dir/sensor.cpp.o.d"
  "CMakeFiles/sidet_sensors.dir/sensor_types.cpp.o"
  "CMakeFiles/sidet_sensors.dir/sensor_types.cpp.o.d"
  "CMakeFiles/sidet_sensors.dir/snapshot.cpp.o"
  "CMakeFiles/sidet_sensors.dir/snapshot.cpp.o.d"
  "libsidet_sensors.a"
  "libsidet_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
