# Empty dependencies file for sidet_sensors.
# This may be replaced when dependencies are built.
