
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sensors/history.cpp" "src/sensors/CMakeFiles/sidet_sensors.dir/history.cpp.o" "gcc" "src/sensors/CMakeFiles/sidet_sensors.dir/history.cpp.o.d"
  "/root/repo/src/sensors/sensor.cpp" "src/sensors/CMakeFiles/sidet_sensors.dir/sensor.cpp.o" "gcc" "src/sensors/CMakeFiles/sidet_sensors.dir/sensor.cpp.o.d"
  "/root/repo/src/sensors/sensor_types.cpp" "src/sensors/CMakeFiles/sidet_sensors.dir/sensor_types.cpp.o" "gcc" "src/sensors/CMakeFiles/sidet_sensors.dir/sensor_types.cpp.o.d"
  "/root/repo/src/sensors/snapshot.cpp" "src/sensors/CMakeFiles/sidet_sensors.dir/snapshot.cpp.o" "gcc" "src/sensors/CMakeFiles/sidet_sensors.dir/snapshot.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sidet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
