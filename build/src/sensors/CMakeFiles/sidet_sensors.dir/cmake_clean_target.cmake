file(REMOVE_RECURSE
  "libsidet_sensors.a"
)
