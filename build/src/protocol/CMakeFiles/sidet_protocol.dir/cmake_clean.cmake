file(REMOVE_RECURSE
  "CMakeFiles/sidet_protocol.dir/http.cpp.o"
  "CMakeFiles/sidet_protocol.dir/http.cpp.o.d"
  "CMakeFiles/sidet_protocol.dir/miio_codec.cpp.o"
  "CMakeFiles/sidet_protocol.dir/miio_codec.cpp.o.d"
  "CMakeFiles/sidet_protocol.dir/miio_gateway.cpp.o"
  "CMakeFiles/sidet_protocol.dir/miio_gateway.cpp.o.d"
  "CMakeFiles/sidet_protocol.dir/mqtt.cpp.o"
  "CMakeFiles/sidet_protocol.dir/mqtt.cpp.o.d"
  "CMakeFiles/sidet_protocol.dir/rest_bridge.cpp.o"
  "CMakeFiles/sidet_protocol.dir/rest_bridge.cpp.o.d"
  "CMakeFiles/sidet_protocol.dir/transport.cpp.o"
  "CMakeFiles/sidet_protocol.dir/transport.cpp.o.d"
  "libsidet_protocol.a"
  "libsidet_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
