# Empty compiler generated dependencies file for sidet_protocol.
# This may be replaced when dependencies are built.
