
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/http.cpp" "src/protocol/CMakeFiles/sidet_protocol.dir/http.cpp.o" "gcc" "src/protocol/CMakeFiles/sidet_protocol.dir/http.cpp.o.d"
  "/root/repo/src/protocol/miio_codec.cpp" "src/protocol/CMakeFiles/sidet_protocol.dir/miio_codec.cpp.o" "gcc" "src/protocol/CMakeFiles/sidet_protocol.dir/miio_codec.cpp.o.d"
  "/root/repo/src/protocol/miio_gateway.cpp" "src/protocol/CMakeFiles/sidet_protocol.dir/miio_gateway.cpp.o" "gcc" "src/protocol/CMakeFiles/sidet_protocol.dir/miio_gateway.cpp.o.d"
  "/root/repo/src/protocol/mqtt.cpp" "src/protocol/CMakeFiles/sidet_protocol.dir/mqtt.cpp.o" "gcc" "src/protocol/CMakeFiles/sidet_protocol.dir/mqtt.cpp.o.d"
  "/root/repo/src/protocol/rest_bridge.cpp" "src/protocol/CMakeFiles/sidet_protocol.dir/rest_bridge.cpp.o" "gcc" "src/protocol/CMakeFiles/sidet_protocol.dir/rest_bridge.cpp.o.d"
  "/root/repo/src/protocol/transport.cpp" "src/protocol/CMakeFiles/sidet_protocol.dir/transport.cpp.o" "gcc" "src/protocol/CMakeFiles/sidet_protocol.dir/transport.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sidet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sidet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/sidet_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/home/CMakeFiles/sidet_home.dir/DependInfo.cmake"
  "/root/repo/build/src/instructions/CMakeFiles/sidet_instructions.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
