file(REMOVE_RECURSE
  "libsidet_protocol.a"
)
