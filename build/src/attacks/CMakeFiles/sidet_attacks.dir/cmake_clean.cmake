file(REMOVE_RECURSE
  "CMakeFiles/sidet_attacks.dir/attack_generator.cpp.o"
  "CMakeFiles/sidet_attacks.dir/attack_generator.cpp.o.d"
  "CMakeFiles/sidet_attacks.dir/protocol_attacks.cpp.o"
  "CMakeFiles/sidet_attacks.dir/protocol_attacks.cpp.o.d"
  "libsidet_attacks.a"
  "libsidet_attacks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_attacks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
