file(REMOVE_RECURSE
  "libsidet_attacks.a"
)
