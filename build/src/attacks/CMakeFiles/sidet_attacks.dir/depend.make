# Empty dependencies file for sidet_attacks.
# This may be replaced when dependencies are built.
