
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/datagen/background.cpp" "src/datagen/CMakeFiles/sidet_datagen.dir/background.cpp.o" "gcc" "src/datagen/CMakeFiles/sidet_datagen.dir/background.cpp.o.d"
  "/root/repo/src/datagen/condition_solver.cpp" "src/datagen/CMakeFiles/sidet_datagen.dir/condition_solver.cpp.o" "gcc" "src/datagen/CMakeFiles/sidet_datagen.dir/condition_solver.cpp.o.d"
  "/root/repo/src/datagen/context_schema.cpp" "src/datagen/CMakeFiles/sidet_datagen.dir/context_schema.cpp.o" "gcc" "src/datagen/CMakeFiles/sidet_datagen.dir/context_schema.cpp.o.d"
  "/root/repo/src/datagen/corpus_generator.cpp" "src/datagen/CMakeFiles/sidet_datagen.dir/corpus_generator.cpp.o" "gcc" "src/datagen/CMakeFiles/sidet_datagen.dir/corpus_generator.cpp.o.d"
  "/root/repo/src/datagen/device_dataset.cpp" "src/datagen/CMakeFiles/sidet_datagen.dir/device_dataset.cpp.o" "gcc" "src/datagen/CMakeFiles/sidet_datagen.dir/device_dataset.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/sidet_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/sidet_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/automation/CMakeFiles/sidet_automation.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sidet_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/instructions/CMakeFiles/sidet_instructions.dir/DependInfo.cmake"
  "/root/repo/build/src/home/CMakeFiles/sidet_home.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
