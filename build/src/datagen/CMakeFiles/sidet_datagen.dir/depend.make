# Empty dependencies file for sidet_datagen.
# This may be replaced when dependencies are built.
