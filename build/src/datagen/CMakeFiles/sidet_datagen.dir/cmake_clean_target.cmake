file(REMOVE_RECURSE
  "libsidet_datagen.a"
)
