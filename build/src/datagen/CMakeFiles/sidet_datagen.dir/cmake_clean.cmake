file(REMOVE_RECURSE
  "CMakeFiles/sidet_datagen.dir/background.cpp.o"
  "CMakeFiles/sidet_datagen.dir/background.cpp.o.d"
  "CMakeFiles/sidet_datagen.dir/condition_solver.cpp.o"
  "CMakeFiles/sidet_datagen.dir/condition_solver.cpp.o.d"
  "CMakeFiles/sidet_datagen.dir/context_schema.cpp.o"
  "CMakeFiles/sidet_datagen.dir/context_schema.cpp.o.d"
  "CMakeFiles/sidet_datagen.dir/corpus_generator.cpp.o"
  "CMakeFiles/sidet_datagen.dir/corpus_generator.cpp.o.d"
  "CMakeFiles/sidet_datagen.dir/device_dataset.cpp.o"
  "CMakeFiles/sidet_datagen.dir/device_dataset.cpp.o.d"
  "libsidet_datagen.a"
  "libsidet_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sidet_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
