# Empty compiler generated dependencies file for ml_sampling_validation_test.
# This may be replaced when dependencies are built.
