file(REMOVE_RECURSE
  "CMakeFiles/fleet_audit_test.dir/fleet_audit_test.cpp.o"
  "CMakeFiles/fleet_audit_test.dir/fleet_audit_test.cpp.o.d"
  "fleet_audit_test"
  "fleet_audit_test.pdb"
  "fleet_audit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fleet_audit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
