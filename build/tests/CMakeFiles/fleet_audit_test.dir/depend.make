# Empty dependencies file for fleet_audit_test.
# This may be replaced when dependencies are built.
