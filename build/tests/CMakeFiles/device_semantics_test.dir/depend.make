# Empty dependencies file for device_semantics_test.
# This may be replaced when dependencies are built.
