file(REMOVE_RECURSE
  "CMakeFiles/device_semantics_test.dir/device_semantics_test.cpp.o"
  "CMakeFiles/device_semantics_test.dir/device_semantics_test.cpp.o.d"
  "device_semantics_test"
  "device_semantics_test.pdb"
  "device_semantics_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_semantics_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
