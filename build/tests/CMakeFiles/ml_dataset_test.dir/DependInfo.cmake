
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ml_dataset_test.cpp" "tests/CMakeFiles/ml_dataset_test.dir/ml_dataset_test.cpp.o" "gcc" "tests/CMakeFiles/ml_dataset_test.dir/ml_dataset_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/sidet_core.dir/DependInfo.cmake"
  "/root/repo/build/src/attacks/CMakeFiles/sidet_attacks.dir/DependInfo.cmake"
  "/root/repo/build/src/firmware/CMakeFiles/sidet_firmware.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/sidet_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/automation/CMakeFiles/sidet_automation.dir/DependInfo.cmake"
  "/root/repo/build/src/survey/CMakeFiles/sidet_survey.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/sidet_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/protocol/CMakeFiles/sidet_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/home/CMakeFiles/sidet_home.dir/DependInfo.cmake"
  "/root/repo/build/src/instructions/CMakeFiles/sidet_instructions.dir/DependInfo.cmake"
  "/root/repo/build/src/sensors/CMakeFiles/sidet_sensors.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/sidet_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/sidet_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
