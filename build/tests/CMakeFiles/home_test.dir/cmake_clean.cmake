file(REMOVE_RECURSE
  "CMakeFiles/home_test.dir/home_test.cpp.o"
  "CMakeFiles/home_test.dir/home_test.cpp.o.d"
  "home_test"
  "home_test.pdb"
  "home_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/home_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
