# Empty compiler generated dependencies file for rule_io_args_test.
# This may be replaced when dependencies are built.
