file(REMOVE_RECURSE
  "CMakeFiles/rule_io_args_test.dir/rule_io_args_test.cpp.o"
  "CMakeFiles/rule_io_args_test.dir/rule_io_args_test.cpp.o.d"
  "rule_io_args_test"
  "rule_io_args_test.pdb"
  "rule_io_args_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rule_io_args_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
