file(REMOVE_RECURSE
  "CMakeFiles/instructions_test.dir/instructions_test.cpp.o"
  "CMakeFiles/instructions_test.dir/instructions_test.cpp.o.d"
  "instructions_test"
  "instructions_test.pdb"
  "instructions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/instructions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
