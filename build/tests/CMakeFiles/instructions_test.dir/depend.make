# Empty dependencies file for instructions_test.
# This may be replaced when dependencies are built.
