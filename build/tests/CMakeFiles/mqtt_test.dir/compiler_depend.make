# Empty compiler generated dependencies file for mqtt_test.
# This may be replaced when dependencies are built.
