file(REMOVE_RECURSE
  "CMakeFiles/mqtt_test.dir/mqtt_test.cpp.o"
  "CMakeFiles/mqtt_test.dir/mqtt_test.cpp.o.d"
  "mqtt_test"
  "mqtt_test.pdb"
  "mqtt_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mqtt_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
