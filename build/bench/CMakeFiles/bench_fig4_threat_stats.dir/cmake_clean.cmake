file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_threat_stats.dir/bench_fig4_threat_stats.cpp.o"
  "CMakeFiles/bench_fig4_threat_stats.dir/bench_fig4_threat_stats.cpp.o.d"
  "bench_fig4_threat_stats"
  "bench_fig4_threat_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_threat_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
