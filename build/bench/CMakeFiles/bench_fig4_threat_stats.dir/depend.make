# Empty dependencies file for bench_fig4_threat_stats.
# This may be replaced when dependencies are built.
