file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_models.dir/bench_table6_models.cpp.o"
  "CMakeFiles/bench_table6_models.dir/bench_table6_models.cpp.o.d"
  "bench_table6_models"
  "bench_table6_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
