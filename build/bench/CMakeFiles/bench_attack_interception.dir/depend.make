# Empty dependencies file for bench_attack_interception.
# This may be replaced when dependencies are built.
