file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_interception.dir/bench_attack_interception.cpp.o"
  "CMakeFiles/bench_attack_interception.dir/bench_attack_interception.cpp.o.d"
  "bench_attack_interception"
  "bench_attack_interception.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_interception.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
