file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_feature_weights.dir/bench_fig6_feature_weights.cpp.o"
  "CMakeFiles/bench_fig6_feature_weights.dir/bench_fig6_feature_weights.cpp.o.d"
  "bench_fig6_feature_weights"
  "bench_fig6_feature_weights.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_feature_weights.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
