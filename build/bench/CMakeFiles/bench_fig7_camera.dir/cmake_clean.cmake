file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_camera.dir/bench_fig7_camera.cpp.o"
  "CMakeFiles/bench_fig7_camera.dir/bench_fig7_camera.cpp.o.d"
  "bench_fig7_camera"
  "bench_fig7_camera.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_camera.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
