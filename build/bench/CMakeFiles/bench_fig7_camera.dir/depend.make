# Empty dependencies file for bench_fig7_camera.
# This may be replaced when dependencies are built.
