file(REMOVE_RECURSE
  "CMakeFiles/bench_fleet_generalization.dir/bench_fleet_generalization.cpp.o"
  "CMakeFiles/bench_fleet_generalization.dir/bench_fleet_generalization.cpp.o.d"
  "bench_fleet_generalization"
  "bench_fleet_generalization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fleet_generalization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
