# Empty dependencies file for bench_fleet_generalization.
# This may be replaced when dependencies are built.
