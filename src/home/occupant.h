// Occupant model: where residents are and what they do, at any simulated
// time. Drives the occupancy / motion / voice-command context features.
//
// Schedules are jittered per-day so two Mondays never look identical: a
// weekday occupant leaves around `leave_hour`, returns around `return_hour`,
// and sleeps from `sleep_hour` to `wake_hour`. Weekend days drop the work
// block with probability `weekend_out_probability` replaced by a shorter
// errand window.
#pragma once

#include <string>

#include "util/rng.h"
#include "util/sim_clock.h"

namespace sidet {

struct OccupantSchedule {
  double wake_hour = 7.0;
  double leave_hour = 8.5;
  double return_hour = 17.5;
  double sleep_hour = 23.0;
  double jitter_hours = 0.5;          // per-day Gaussian jitter on each anchor
  double weekend_out_probability = 0.5;
  double weekend_out_start = 10.0;
  double weekend_out_hours = 3.0;
  bool works_weekdays = true;
};

class Occupant {
 public:
  Occupant(std::string name, OccupantSchedule schedule, std::uint64_t seed);

  const std::string& name() const { return name_; }

  bool IsHome(SimTime at) const;
  bool IsAwake(SimTime at) const;

  // Probability of producing a motion event in a 1-minute window while home
  // and awake. Sleeping or absent occupants produce none.
  double MotionRate(SimTime at) const;

 private:
  struct DayPlan {
    bool out_block = false;
    double out_start = 0.0;
    double out_end = 0.0;
    double wake = 7.0;
    double sleep = 23.0;
  };
  // Deterministic per-day plan derived from (seed, day) so queries at any
  // time order agree.
  DayPlan PlanFor(std::int64_t day) const;

  std::string name_;
  OccupantSchedule schedule_;
  std::uint64_t seed_;
};

}  // namespace sidet
