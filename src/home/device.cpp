#include "home/device.h"

#include <algorithm>

#include "util/strings.h"

namespace sidet {

Device::Device(DeviceId id, std::string name, DeviceCategory category, std::string room)
    : id_(id), name_(std::move(name)), category_(category), room_(std::move(room)) {}

double Device::State(const std::string& key, double fallback) const {
  const auto it = state_.find(key);
  return it == state_.end() ? fallback : it->second;
}

void Device::SetState(const std::string& key, double value) { state_[key] = value; }

Status Device::Apply(const Instruction& instruction, std::optional<double> argument) {
  if (instruction.kind != InstructionKind::kControl) {
    return Error("'" + instruction.name + "' is a status instruction, not applicable");
  }
  if (instruction.category != category_) {
    return Error("instruction '" + instruction.name + "' targets category " +
                 std::string(ToString(instruction.category)) + " but device '" + name_ +
                 "' is " + std::string(ToString(category_)));
  }

  const std::string& op = instruction.name;
  const double arg = argument.value_or(0.0);

  // Alarm.
  if (op == "alarm.arm") SetState("armed", 1);
  else if (op == "alarm.disarm") SetState("armed", 0);
  else if (op == "alarm.siren_on") SetState("siren", 1);
  else if (op == "alarm.siren_off") SetState("siren", 0);
  else if (op == "alarm.test") SetState("testing", 1);
  else if (op == "alarm.mute_gas") SetState("gas_muted", 1);
  // Kitchen.
  else if (op == "cooker.start") SetState("cooking", 1);
  else if (op == "cooker.stop") SetState("cooking", 0);
  else if (op == "oven.preheat") { SetState("oven_on", 1); SetState("oven_target", 180); }
  else if (op == "oven.off") SetState("oven_on", 0);
  else if (op == "oven.set_temp") SetState("oven_target", std::clamp(arg, 50.0, 280.0));
  else if (op == "dishwasher.start") SetState("washing", 1);
  else if (op == "dishwasher.stop") SetState("washing", 0);
  else if (op == "fridge.set_temp") SetState("fridge_target", std::clamp(arg, -24.0, 10.0));
  else if (op == "kettle.boil") SetState("boiling", 1);
  // Entertainment.
  else if (op == "tv.on") SetState("on", 1);
  else if (op == "tv.off") SetState("on", 0);
  else if (op == "tv.set_volume") SetState("volume", std::clamp(arg, 0.0, 100.0));
  else if (op == "tv.set_channel") SetState("channel", std::max(0.0, arg));
  else if (op == "stereo.play") SetState("playing", 1);
  else if (op == "stereo.pause") SetState("playing", 0);
  else if (op == "stereo.set_volume") SetState("volume", std::clamp(arg, 0.0, 100.0));
  // Air conditioning: mode 0 = off, 1 = cool, 2 = heat.
  else if (op == "ac.on") SetState("on", 1);
  else if (op == "ac.off") { SetState("on", 0); SetState("mode", 0); }
  else if (op == "ac.cool") { SetState("on", 1); SetState("mode", 1); }
  else if (op == "ac.heat") { SetState("on", 1); SetState("mode", 2); }
  else if (op == "ac.set_target") SetState("target", std::clamp(arg, 10.0, 32.0));
  else if (op == "thermostat.set_schedule") SetState("scheduled", 1);
  else if (op == "ac.fan_speed") SetState("fan", std::clamp(arg, 0.0, 3.0));
  // Curtains.
  else if (op == "curtain.open") SetState("position", 1);
  else if (op == "curtain.close") SetState("position", 0);
  else if (op == "curtain.set_position") SetState("position", std::clamp(arg, 0.0, 1.0));
  else if (op == "blind.tilt") SetState("tilt", std::clamp(arg, 0.0, 1.0));
  // Lighting.
  else if (op == "light.on") { SetState("on", 1); if (State("brightness") == 0) SetState("brightness", 0.8); }
  else if (op == "light.off") SetState("on", 0);
  else if (op == "light.set_brightness") { SetState("on", arg > 0 ? 1 : 0); SetState("brightness", std::clamp(arg, 0.0, 1.0)); }
  else if (op == "light.set_color") SetState("color_temp", std::clamp(arg, 2000.0, 6500.0));
  else if (op == "light.scene") SetState("scene", std::max(0.0, arg));
  // Windows / doors / locks.
  else if (op == "window.open") SetState("open", 1);
  else if (op == "window.close") SetState("open", 0);
  else if (op == "door.open") SetState("door_open", 1);
  else if (op == "door.close") SetState("door_open", 0);
  else if (op == "backdoor.open") SetState("backdoor_open", 1);
  else if (op == "lock.lock") SetState("locked", 1);
  else if (op == "lock.unlock") SetState("locked", 0);
  // Vacuum / mower.
  else if (op == "vacuum.start") SetState("cleaning", 1);
  else if (op == "vacuum.stop") SetState("cleaning", 0);
  else if (op == "vacuum.dock") { SetState("cleaning", 0); SetState("docked", 1); }
  else if (op == "mower.start") SetState("mowing", 1);
  else if (op == "mower.stop") SetState("mowing", 0);
  // Camera.
  else if (op == "camera.enable") SetState("recording", 1);
  else if (op == "camera.disable") SetState("recording", 0);
  else if (op == "camera.rotate") SetState("angle", arg);
  else if (op == "camera.alert") SetState("alerts_sent", State("alerts_sent") + 1);
  else {
    return Error("device '" + name_ + "' has no semantics for instruction '" + op + "'");
  }
  return Status::Ok();
}

}  // namespace sidet
