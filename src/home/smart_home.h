// SmartHome — the discrete-event smart-home simulator.
//
// One SmartHome is a single thermal zone with rooms, sensors, actuatable
// devices and occupants. Step() advances simulated time in one-minute ticks:
// weather evolves, occupants come and go, device states exert physical
// effects (heating, venting through open windows, cooking smoke), and every
// sensor's *true* value is refreshed. Collectors then Read() sensors (noisy),
// and the attack library may Spoof() them.
//
// The physics is deliberately first-order — the IDS consumes sensor
// *snapshots*, so what matters is that co-occurrence patterns are realistic:
// windows open while heating raises indoor temperature (Fig 2), smoke
// co-occurs with cooking or fire, occupancy tracks schedules, illuminance
// tracks daylight + lamps.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "home/device.h"
#include "home/environment.h"
#include "home/occupant.h"
#include "instructions/instruction.h"
#include "sensors/sensor.h"
#include "sensors/snapshot.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace sidet {

class SmartHome {
 public:
  explicit SmartHome(std::uint64_t seed, double seasonal_mean_c = 15.0);

  // --- Construction ---------------------------------------------------------
  void AddRoom(std::string name);
  // Default noise model is chosen per sensor type when none is given.
  Sensor& AddSensor(std::string name, SensorType type, std::string room, Vendor vendor,
                    std::optional<NoiseModel> noise = std::nullopt);
  Device& AddDevice(std::string name, DeviceCategory category, std::string room);
  void AddOccupant(std::string name, OccupantSchedule schedule);

  // --- Access ----------------------------------------------------------------
  const std::vector<std::string>& rooms() const { return rooms_; }
  Sensor* FindSensor(std::string_view name);
  const Sensor* FindSensor(std::string_view name) const;
  Device* FindDevice(std::string_view name);
  // First device of the category (nullptr when the home has none), and all of
  // them — actuator-state lookups for the cross-sensor consistency couplings.
  Device* FindDeviceByCategory(DeviceCategory category);
  std::vector<Device*> DevicesOfCategory(DeviceCategory category);
  std::vector<Sensor*> SensorsOfVendor(Vendor vendor);
  std::vector<Sensor*> AllSensors();
  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }
  const std::vector<Occupant>& occupants() const { return occupants_; }

  SimTime now() const { return clock_.now(); }
  double indoor_temperature() const { return indoor_temperature_c_; }
  const OutdoorConditions& outdoor() const { return weather_.current(); }
  bool AnyoneHome() const;
  bool AnyoneAwake() const;

  // --- Simulation -------------------------------------------------------------
  // Advances by `seconds`, in one-minute internal ticks.
  void Step(std::int64_t seconds);

  // Applies a control instruction to the first device of its category that
  // accepts it. Logged in the event stream.
  Status Execute(const Instruction& instruction, std::optional<double> argument = std::nullopt);

  // Scenario injection (ground-truth hazards — these change *physical* state,
  // unlike sensor spoofing which only changes reported values).
  void StartFire();
  void StopFire();
  void StartGasLeak();
  void StopGasLeak();
  void StartWaterLeak();
  void StopWaterLeak();
  bool fire_active() const { return fire_; }
  // Marks a genuine user voice command; the voice sensor reads true for the
  // next `window_seconds`.
  void TriggerVoiceCommand(std::int64_t window_seconds = 120);

  // All current sensor readings (noisy / possibly spoofed), keyed by sensor
  // name — what the data collector ultimately assembles.
  SensorSnapshot Snapshot();

  struct Event {
    SimTime time;
    std::string text;
  };
  const std::vector<Event>& events() const { return events_; }
  void LogEvent(std::string text);

 private:
  void Tick();  // one simulated minute
  void RefreshSensors();
  double WindowOpenFraction() const;

  Rng rng_;
  SimClock clock_;
  WeatherModel weather_;

  std::vector<std::string> rooms_;
  std::vector<std::unique_ptr<Sensor>> sensors_;
  std::vector<std::unique_ptr<Device>> devices_;
  std::vector<Occupant> occupants_;

  // Zone physical state.
  double indoor_temperature_c_ = 21.0;
  double indoor_humidity_ = 50.0;
  double indoor_air_quality_ = 60.0;
  bool fire_ = false;
  bool gas_leak_ = false;
  bool water_leak_ = false;
  SimTime voice_active_until_;

  std::vector<Event> events_;
  SensorId next_sensor_id_ = 1;
  DeviceId next_device_id_ = 1;
};

// A fully-equipped four-room demo home with one device per category, the
// complete sensor complement (split across the two vendors the paper
// deployed), and two residents. Used by examples, tests and benches.
SmartHome BuildDemoHome(std::uint64_t seed, double seasonal_mean_c = 15.0);

}  // namespace sidet
