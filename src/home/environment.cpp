#include "home/environment.h"

#include <algorithm>
#include <cmath>

namespace sidet {

const char* ToString(WeatherCondition condition) {
  switch (condition) {
    case WeatherCondition::kClear: return "clear";
    case WeatherCondition::kCloudy: return "cloudy";
    case WeatherCondition::kRain: return "rain";
    case WeatherCondition::kSnow: return "snow";
  }
  return "?";
}

WeatherModel::WeatherModel(Rng rng, double seasonal_mean_c)
    : rng_(rng), seasonal_mean_c_(seasonal_mean_c) {}

void WeatherModel::TransitionCondition() {
  // Row-stochastic transition matrix, tuned for "mostly persistent" weather.
  // Snow only occurs when it is cold.
  static constexpr double kMatrix[4][4] = {
      // to:  clear cloudy rain  snow
      {0.85, 0.12, 0.02, 0.01},  // from clear
      {0.20, 0.60, 0.17, 0.03},  // from cloudy
      {0.10, 0.35, 0.52, 0.03},  // from rain
      {0.10, 0.30, 0.10, 0.50},  // from snow
  };
  const auto row = static_cast<std::size_t>(current_.condition);
  const std::size_t next = rng_.Categorical(std::span<const double>(kMatrix[row], 4));
  auto condition = static_cast<WeatherCondition>(next);
  if (condition == WeatherCondition::kSnow && current_.temperature_c > 4.0) {
    condition = WeatherCondition::kRain;
  }
  current_.condition = condition;
}

OutdoorConditions WeatherModel::Step(SimTime now) {
  const std::int64_t hour = now.seconds() / kSecondsPerHour;
  while (last_hour_ < hour) {
    ++last_hour_;
    TransitionCondition();
    // AR(1) temperature noise, hourly step.
    ar_noise_ = 0.8 * ar_noise_ + rng_.Normal(0.0, 0.6);
  }

  // Diurnal cycle: coldest ~05:00, warmest ~15:00.
  const double hour_of_day = now.hour_of_day();
  const double diurnal = 5.0 * std::sin((hour_of_day - 9.0) / 24.0 * 2.0 * M_PI);

  double weather_offset = 0.0;
  switch (current_.condition) {
    case WeatherCondition::kClear: weather_offset = 1.0; break;
    case WeatherCondition::kCloudy: weather_offset = -0.5; break;
    case WeatherCondition::kRain: weather_offset = -2.0; break;
    case WeatherCondition::kSnow: weather_offset = -6.0; break;
  }
  current_.temperature_c = seasonal_mean_c_ + diurnal + weather_offset + ar_noise_;

  // Daylight: raised-cosine between 06:00 and 20:00, attenuated by cover.
  double daylight = 0.0;
  if (hour_of_day > 6.0 && hour_of_day < 20.0) {
    const double phase = (hour_of_day - 6.0) / 14.0;  // 0..1 across the day
    daylight = 20000.0 * std::sin(phase * M_PI);
    switch (current_.condition) {
      case WeatherCondition::kClear: break;
      case WeatherCondition::kCloudy: daylight *= 0.35; break;
      case WeatherCondition::kRain: daylight *= 0.15; break;
      case WeatherCondition::kSnow: daylight *= 0.25; break;
    }
  }
  current_.daylight_lux = std::max(0.0, daylight);
  return current_;
}

}  // namespace sidet
