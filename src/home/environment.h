// Outdoor environment model: weather condition, outdoor temperature and
// daylight. Drives the "outdoor weather" and "outdoor temperature" context
// features and the thermal coupling of Fig 2 (thermostat heats → indoor
// temperature rises → window opens).
#pragma once

#include <string>

#include "util/rng.h"
#include "util/sim_clock.h"

namespace sidet {

enum class WeatherCondition : std::uint8_t { kClear = 0, kCloudy, kRain, kSnow };

const char* ToString(WeatherCondition condition);

struct OutdoorConditions {
  double temperature_c = 15.0;
  WeatherCondition condition = WeatherCondition::kClear;
  double daylight_lux = 0.0;  // 0 at night, up to ~20k at clear noon
};

class WeatherModel {
 public:
  // `seasonal_mean_c` centres the diurnal temperature cycle (e.g. 22 for a
  // summer scenario, 2 for winter).
  WeatherModel(Rng rng, double seasonal_mean_c = 15.0);

  // Advances internal state to `now` (idempotent for equal times) and
  // returns the conditions. Condition transitions happen on hour boundaries
  // via a small Markov chain; temperature follows
  //   seasonal mean + diurnal sine + weather offset + AR(1) noise.
  OutdoorConditions Step(SimTime now);

  const OutdoorConditions& current() const { return current_; }

 private:
  void TransitionCondition();

  Rng rng_;
  double seasonal_mean_c_;
  double ar_noise_ = 0.0;
  std::int64_t last_hour_ = -1;
  OutdoorConditions current_;
};

}  // namespace sidet
