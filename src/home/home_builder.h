// Randomized home generation — many distinct deployments from one seed.
//
// §VI concedes the framework was "only successfully deployed on the devices
// of two IoT manufacturers" in one lab home; evaluating generalization needs
// a *fleet*. BuildRandomHome draws a home from a configurable distribution:
// room count, climate, occupant schedules, which optional devices exist, and
// how sensors are split across the three vendor stacks. The mandatory core
// (the sensors every family model needs) is always present, so a model
// trained once is judgeable everywhere — which is exactly the property the
// fleet bench measures.
#pragma once

#include "home/smart_home.h"

namespace sidet {

struct HomeConfig {
  int min_rooms = 3;
  int max_rooms = 6;
  int min_occupants = 1;
  int max_occupants = 4;
  double min_seasonal_c = -2.0;
  double max_seasonal_c = 24.0;
  // Probability each optional device family is installed.
  double optional_device_probability = 0.7;
  // Probability a given sensor is served by each vendor (weights).
  double xiaomi_weight = 0.45;
  double smartthings_weight = 0.35;
  double tuya_weight = 0.20;
};

// Deterministic for (config, seed).
SmartHome BuildRandomHome(const HomeConfig& config, std::uint64_t seed);

}  // namespace sidet
