#include "home/smart_home.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace sidet {

namespace {

NoiseModel DefaultNoiseFor(SensorType type) {
  switch (TraitsOf(type).kind) {
    case ValueKind::kBinary:
      switch (type) {
        // Certified hazard detectors and contact/lock sensors essentially
        // never misfire at per-minute sampling.
        case SensorType::kSmoke:
        case SensorType::kGasLeak:
        case SensorType::kWaterLeak:
        case SensorType::kLockState:
        case SensorType::kDoorContact:
        case SensorType::kWindowContact:
          return NoiseModel{.gaussian_stddev = 0.0, .flip_probability = 0.00005};
        default:
          return NoiseModel{.gaussian_stddev = 0.0, .flip_probability = 0.002};
      }
    case ValueKind::kContinuous:
      switch (type) {
        case SensorType::kTemperature:
        case SensorType::kOutdoorTemperature: return NoiseModel{.gaussian_stddev = 0.2};
        case SensorType::kHumidity: return NoiseModel{.gaussian_stddev = 1.5};
        case SensorType::kIlluminance: return NoiseModel{.gaussian_stddev = 40.0};
        case SensorType::kAirQuality: return NoiseModel{.gaussian_stddev = 4.0};
        case SensorType::kNoiseLevel: return NoiseModel{.gaussian_stddev = 2.0};
        default: return NoiseModel{.gaussian_stddev = 0.5};
      }
    case ValueKind::kCategorical:
      return NoiseModel{};
  }
  return NoiseModel{};
}

}  // namespace

SmartHome::SmartHome(std::uint64_t seed, double seasonal_mean_c)
    : rng_(seed), weather_(Rng(seed ^ 0x77ea7e45eedULL), seasonal_mean_c) {}

void SmartHome::AddRoom(std::string name) { rooms_.push_back(std::move(name)); }

Sensor& SmartHome::AddSensor(std::string name, SensorType type, std::string room, Vendor vendor,
                             std::optional<NoiseModel> noise) {
  sensors_.push_back(std::make_unique<Sensor>(next_sensor_id_++, std::move(name), type,
                                              std::move(room), vendor,
                                              noise.value_or(DefaultNoiseFor(type))));
  return *sensors_.back();
}

Device& SmartHome::AddDevice(std::string name, DeviceCategory category, std::string room) {
  devices_.push_back(
      std::make_unique<Device>(next_device_id_++, std::move(name), category, std::move(room)));
  return *devices_.back();
}

void SmartHome::AddOccupant(std::string name, OccupantSchedule schedule) {
  occupants_.emplace_back(std::move(name), schedule, rng_.Next());
}

Sensor* SmartHome::FindSensor(std::string_view name) {
  for (const auto& sensor : sensors_) {
    if (sensor->name() == name) return sensor.get();
  }
  return nullptr;
}

const Sensor* SmartHome::FindSensor(std::string_view name) const {
  for (const auto& sensor : sensors_) {
    if (sensor->name() == name) return sensor.get();
  }
  return nullptr;
}

Device* SmartHome::FindDevice(std::string_view name) {
  for (const auto& device : devices_) {
    if (device->name() == name) return device.get();
  }
  return nullptr;
}

Device* SmartHome::FindDeviceByCategory(DeviceCategory category) {
  for (const auto& device : devices_) {
    if (device->category() == category) return device.get();
  }
  return nullptr;
}

std::vector<Device*> SmartHome::DevicesOfCategory(DeviceCategory category) {
  std::vector<Device*> out;
  for (const auto& device : devices_) {
    if (device->category() == category) out.push_back(device.get());
  }
  return out;
}

std::vector<Sensor*> SmartHome::SensorsOfVendor(Vendor vendor) {
  std::vector<Sensor*> out;
  for (const auto& sensor : sensors_) {
    if (sensor->vendor() == vendor) out.push_back(sensor.get());
  }
  return out;
}

std::vector<Sensor*> SmartHome::AllSensors() {
  std::vector<Sensor*> out;
  out.reserve(sensors_.size());
  for (const auto& sensor : sensors_) out.push_back(sensor.get());
  return out;
}

bool SmartHome::AnyoneHome() const {
  return std::any_of(occupants_.begin(), occupants_.end(),
                     [&](const Occupant& o) { return o.IsHome(clock_.now()); });
}

bool SmartHome::AnyoneAwake() const {
  return std::any_of(occupants_.begin(), occupants_.end(), [&](const Occupant& o) {
    return o.IsHome(clock_.now()) && o.IsAwake(clock_.now());
  });
}

double SmartHome::WindowOpenFraction() const {
  // A device counts as a window when it has ever carried "open" state or is
  // named as one; locks in the same category carry "locked"/"door_open".
  int windows = 0;
  int open = 0;
  for (const auto& device : devices_) {
    if (device->category() != DeviceCategory::kWindowAndLock) continue;
    const bool is_window = device->state().count("open") != 0 ||
                           device->name().find("window") != std::string::npos;
    if (!is_window) continue;
    ++windows;
    if (device->IsOn("open")) ++open;
  }
  return windows == 0 ? 0.0 : static_cast<double>(open) / windows;
}

void SmartHome::Step(std::int64_t seconds) {
  assert(seconds >= 0);
  std::int64_t remaining = seconds;
  while (remaining > 0) {
    const std::int64_t dt = std::min<std::int64_t>(remaining, kSecondsPerMinute);
    clock_.AdvanceSeconds(dt);
    Tick();
    remaining -= dt;
  }
}

void SmartHome::Tick() {
  const SimTime now = clock_.now();
  const OutdoorConditions outdoor = weather_.Step(now);

  // --- Thermal zone -----------------------------------------------------------
  const double window_open = WindowOpenFraction();
  // Per-minute leak coefficient: insulated walls plus a strong open-window term.
  const double leak = 0.004 + 0.08 * window_open;
  double hvac = 0.0;
  for (const auto& device : devices_) {
    if (device->category() != DeviceCategory::kAirConditioning) continue;
    if (!device->IsOn("on")) continue;
    const double target = device->State("target", 22.0);
    const double mode = device->State("mode");
    if (mode == 2.0 && indoor_temperature_c_ < target + 0.5) hvac += 0.18;   // heating
    if (mode == 1.0 && indoor_temperature_c_ > target - 0.5) hvac -= 0.18;   // cooling
  }
  if (fire_) hvac += 1.5;  // a fire heats the zone fast
  indoor_temperature_c_ += leak * (outdoor.temperature_c - indoor_temperature_c_) + hvac;

  // --- Humidity ----------------------------------------------------------------
  double outdoor_humidity = 50.0;
  switch (outdoor.condition) {
    case WeatherCondition::kClear: outdoor_humidity = 45.0; break;
    case WeatherCondition::kCloudy: outdoor_humidity = 60.0; break;
    case WeatherCondition::kRain: outdoor_humidity = 88.0; break;
    case WeatherCondition::kSnow: outdoor_humidity = 80.0; break;
  }
  indoor_humidity_ += (0.01 + 0.05 * window_open) * (outdoor_humidity - indoor_humidity_);
  if (water_leak_) indoor_humidity_ = std::min(100.0, indoor_humidity_ + 0.5);

  // --- Air quality ---------------------------------------------------------------
  const double outdoor_aqi = outdoor.condition == WeatherCondition::kClear ? 45.0 : 70.0;
  bool cooking = false;
  for (const auto& device : devices_) {
    if (device->category() == DeviceCategory::kKitchen &&
        (device->IsOn("cooking") || device->IsOn("oven_on") || device->IsOn("boiling"))) {
      cooking = true;
    }
  }
  indoor_air_quality_ += (0.02 + 0.10 * window_open) * (outdoor_aqi - indoor_air_quality_);
  if (cooking) indoor_air_quality_ = std::min(300.0, indoor_air_quality_ + 2.5);
  if (fire_) indoor_air_quality_ = std::min(500.0, indoor_air_quality_ + 25.0);

  // --- Spontaneous voice commands -----------------------------------------------
  if (AnyoneAwake() && rng_.Bernoulli(0.02)) {
    voice_active_until_ = now + 120;
  }

  RefreshSensors();
}

void SmartHome::RefreshSensors() {
  const SimTime now = clock_.now();
  const OutdoorConditions& outdoor = weather_.current();

  const bool anyone_home = AnyoneHome();
  const bool anyone_awake = AnyoneAwake();

  bool any_window_open = false;
  bool any_door_open = false;
  bool locked = true;
  double lights_lux = 0.0;
  double curtain_open_fraction = 1.0;
  double tv_noise = 0.0;
  for (const auto& device : devices_) {
    switch (device->category()) {
      case DeviceCategory::kWindowAndLock:
        if (device->IsOn("open")) any_window_open = true;
        if (device->IsOn("door_open") || device->IsOn("backdoor_open")) any_door_open = true;
        if (device->state().count("locked") != 0 && !device->IsOn("locked")) locked = false;
        break;
      case DeviceCategory::kLighting:
        if (device->IsOn("on")) lights_lux += 300.0 * device->State("brightness", 0.8);
        break;
      case DeviceCategory::kCurtains:
        curtain_open_fraction = device->State("position", 1.0);
        break;
      case DeviceCategory::kEntertainment:
        if (device->IsOn("on") || device->IsOn("playing")) {
          tv_noise = 8.0 + 0.25 * device->State("volume", 30.0);
        }
        break;
      default:
        break;
    }
  }

  for (const auto& sensor : sensors_) {
    SensorValue value;
    switch (sensor->type()) {
      case SensorType::kMotion: {
        double rate = 0.0;
        for (const Occupant& occupant : occupants_) rate += occupant.MotionRate(now);
        // Motion is spread across rooms; a single sensor sees its share.
        const double per_room =
            rooms_.empty() ? rate : rate / static_cast<double>(rooms_.size());
        value = SensorValue::Binary(rng_.Bernoulli(std::min(0.95, per_room)));
        break;
      }
      case SensorType::kOccupancy:
        value = SensorValue::Binary(anyone_home);
        break;
      case SensorType::kDoorContact:
        value = SensorValue::Binary(any_door_open);
        break;
      case SensorType::kWindowContact:
        value = SensorValue::Binary(any_window_open);
        break;
      case SensorType::kSmoke:
        // Cooking smoke occasionally trips the detector; a real fire always.
        value = SensorValue::Binary(fire_ || (indoor_air_quality_ > 220.0 && rng_.Bernoulli(0.3)));
        break;
      case SensorType::kGasLeak:
        value = SensorValue::Binary(gas_leak_);
        break;
      case SensorType::kWaterLeak:
        value = SensorValue::Binary(water_leak_);
        break;
      case SensorType::kLockState:
        value = SensorValue::Binary(locked);
        break;
      case SensorType::kVoiceCommand:
        value = SensorValue::Binary(anyone_awake && now < voice_active_until_);
        break;
      case SensorType::kTemperature:
        value = SensorValue::Continuous(indoor_temperature_c_);
        break;
      case SensorType::kOutdoorTemperature:
        value = SensorValue::Continuous(outdoor.temperature_c);
        break;
      case SensorType::kHumidity:
        value = SensorValue::Continuous(indoor_humidity_);
        break;
      case SensorType::kIlluminance:
        value = SensorValue::Continuous(outdoor.daylight_lux * 0.08 * curtain_open_fraction +
                                        lights_lux);
        break;
      case SensorType::kAirQuality:
        value = SensorValue::Continuous(indoor_air_quality_);
        break;
      case SensorType::kNoiseLevel: {
        double noise = 28.0 + tv_noise;
        if (anyone_awake) noise += 8.0;
        value = SensorValue::Continuous(noise);
        break;
      }
      case SensorType::kWeatherCondition: {
        const char* label = ToString(outdoor.condition);
        value = SensorValue::Categorical(label, static_cast<double>(outdoor.condition));
        break;
      }
    }
    sensor->SetTrueValue(std::move(value), now);
  }
}

Status SmartHome::Execute(const Instruction& instruction, std::optional<double> argument) {
  if (instruction.kind != InstructionKind::kControl) {
    return Error("cannot execute status instruction '" + instruction.name + "'");
  }
  std::string last_error = "no device of category " +
                           std::string(ToString(instruction.category)) + " present";
  for (const auto& device : devices_) {
    if (device->category() != instruction.category) continue;
    const Status applied = device->Apply(instruction, argument);
    if (applied.ok()) {
      LogEvent("executed " + instruction.name + " on " + device->name());
      RefreshSensors();
      return Status::Ok();
    }
    last_error = applied.error().message();
  }
  return Error("execute '" + instruction.name + "': " + last_error);
}

void SmartHome::StartFire() {
  fire_ = true;
  LogEvent("FIRE started");
  RefreshSensors();
}

void SmartHome::StopFire() {
  fire_ = false;
  LogEvent("fire extinguished");
  RefreshSensors();
}

void SmartHome::StartGasLeak() {
  gas_leak_ = true;
  LogEvent("GAS LEAK started");
  RefreshSensors();
}

void SmartHome::StopGasLeak() {
  gas_leak_ = false;
  LogEvent("gas leak stopped");
  RefreshSensors();
}

void SmartHome::StartWaterLeak() {
  water_leak_ = true;
  LogEvent("WATER LEAK started");
  RefreshSensors();
}

void SmartHome::StopWaterLeak() {
  water_leak_ = false;
  LogEvent("water leak stopped");
  RefreshSensors();
}

void SmartHome::TriggerVoiceCommand(std::int64_t window_seconds) {
  voice_active_until_ = clock_.now() + window_seconds;
  LogEvent("voice command heard");
  RefreshSensors();
}

SensorSnapshot SmartHome::Snapshot() {
  SensorSnapshot snapshot(clock_.now());
  for (const auto& sensor : sensors_) {
    snapshot.Set(sensor->name(), sensor->type(), sensor->Read(rng_));
  }
  return snapshot;
}

void SmartHome::LogEvent(std::string text) {
  events_.push_back(Event{clock_.now(), std::move(text)});
}

SmartHome BuildDemoHome(std::uint64_t seed, double seasonal_mean_c) {
  SmartHome home(seed, seasonal_mean_c);
  for (const char* room : {"living_room", "bedroom", "kitchen", "entrance"}) home.AddRoom(room);

  // Sensors, split across the two vendors the paper integrated.
  home.AddSensor("living_motion", SensorType::kMotion, "living_room", Vendor::kXiaomi);
  home.AddSensor("home_occupancy", SensorType::kOccupancy, "living_room", Vendor::kSmartThings);
  home.AddSensor("entrance_door", SensorType::kDoorContact, "entrance", Vendor::kXiaomi);
  home.AddSensor("living_window", SensorType::kWindowContact, "living_room", Vendor::kXiaomi);
  home.AddSensor("kitchen_smoke", SensorType::kSmoke, "kitchen", Vendor::kXiaomi);
  home.AddSensor("kitchen_gas", SensorType::kGasLeak, "kitchen", Vendor::kXiaomi);
  home.AddSensor("kitchen_water", SensorType::kWaterLeak, "kitchen", Vendor::kSmartThings);
  home.AddSensor("entrance_lock", SensorType::kLockState, "entrance", Vendor::kXiaomi);
  home.AddSensor("living_voice", SensorType::kVoiceCommand, "living_room", Vendor::kSmartThings);
  home.AddSensor("living_temperature", SensorType::kTemperature, "living_room", Vendor::kXiaomi);
  home.AddSensor("outdoor_temperature", SensorType::kOutdoorTemperature, "outside",
                 Vendor::kSmartThings);
  home.AddSensor("living_humidity", SensorType::kHumidity, "living_room", Vendor::kXiaomi);
  home.AddSensor("living_lux", SensorType::kIlluminance, "living_room", Vendor::kSmartThings);
  home.AddSensor("living_aqi", SensorType::kAirQuality, "living_room", Vendor::kXiaomi);
  home.AddSensor("living_noise", SensorType::kNoiseLevel, "living_room", Vendor::kSmartThings);
  home.AddSensor("outdoor_weather", SensorType::kWeatherCondition, "outside",
                 Vendor::kSmartThings);

  // One device per Table I category (windows and locks are two devices).
  home.AddDevice("hall_alarm", DeviceCategory::kAlarm, "entrance");
  home.AddDevice("kitchen_oven", DeviceCategory::kKitchen, "kitchen");
  home.AddDevice("living_tv", DeviceCategory::kEntertainment, "living_room");
  home.AddDevice("living_ac", DeviceCategory::kAirConditioning, "living_room");
  home.AddDevice("living_curtain", DeviceCategory::kCurtains, "living_room");
  home.AddDevice("living_light", DeviceCategory::kLighting, "living_room");
  home.AddDevice("living_window_motor", DeviceCategory::kWindowAndLock, "living_room");
  home.AddDevice("entrance_smart_lock", DeviceCategory::kWindowAndLock, "entrance");
  home.AddDevice("robot_vacuum", DeviceCategory::kVacuum, "living_room");
  home.AddDevice("entrance_camera", DeviceCategory::kSecurityCamera, "entrance");

  // Lock starts engaged.
  home.FindDevice("entrance_smart_lock")->SetState("locked", 1.0);

  home.AddOccupant("alice", OccupantSchedule{});
  OccupantSchedule bob;
  bob.leave_hour = 9.5;
  bob.return_hour = 16.0;
  bob.weekend_out_probability = 0.3;
  home.AddOccupant("bob", bob);

  // Prime the physics/sensors so a fresh home has coherent readings.
  home.Step(kSecondsPerMinute);
  return home;
}

}  // namespace sidet
