// Actuatable devices. A Device holds a small named-state map ("open" = 1.0)
// plus the semantics of applying control instructions to it. The physical
// consequences of device state (a heater warming the room, an open window
// venting it) live in SmartHome's physics step.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>

#include "instructions/instruction.h"
#include "util/result.h"

namespace sidet {

using DeviceId = std::uint64_t;

class Device {
 public:
  Device(DeviceId id, std::string name, DeviceCategory category, std::string room);

  DeviceId id() const { return id_; }
  const std::string& name() const { return name_; }
  DeviceCategory category() const { return category_; }
  const std::string& room() const { return room_; }

  double State(const std::string& key, double fallback = 0.0) const;
  void SetState(const std::string& key, double value);
  bool IsOn(const std::string& key) const { return State(key) != 0.0; }
  const std::map<std::string, double>& state() const { return state_; }

  // Applies a control instruction's effect. `argument` carries the scalar
  // parameter for set-style instructions (target temperature, brightness…).
  // Fails when the instruction does not belong to this device's category or
  // is a status instruction.
  Status Apply(const Instruction& instruction, std::optional<double> argument = std::nullopt);

 private:
  DeviceId id_;
  std::string name_;
  DeviceCategory category_;
  std::string room_;
  std::map<std::string, double> state_;
};

}  // namespace sidet
