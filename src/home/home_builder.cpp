#include "home/home_builder.h"

#include "util/strings.h"

namespace sidet {

SmartHome BuildRandomHome(const HomeConfig& config, std::uint64_t seed) {
  Rng rng(seed ^ 0xb0115e5ULL);
  const double seasonal = rng.UniformDouble(config.min_seasonal_c, config.max_seasonal_c);
  SmartHome home(seed, seasonal);

  // Rooms: an entrance + kitchen always; the rest generic.
  const int rooms = static_cast<int>(rng.UniformInt(config.min_rooms, config.max_rooms));
  home.AddRoom("entrance");
  home.AddRoom("kitchen");
  for (int i = 2; i < rooms; ++i) home.AddRoom(Format("room_%d", i));

  const auto vendor = [&rng, &config] {
    const double weights[3] = {config.xiaomi_weight, config.smartthings_weight,
                               config.tuya_weight};
    return static_cast<Vendor>(rng.Categorical(std::span<const double>(weights, 3)));
  };
  const auto room_for = [&home, &rng]() -> const std::string& {
    return home.rooms()[static_cast<std::size_t>(
        rng.UniformInt(0, static_cast<std::int64_t>(home.rooms().size()) - 1))];
  };

  // Mandatory sensor core: one of every type the family schemas reference.
  for (const SensorType type :
       {SensorType::kMotion, SensorType::kOccupancy, SensorType::kDoorContact,
        SensorType::kWindowContact, SensorType::kSmoke, SensorType::kGasLeak,
        SensorType::kWaterLeak, SensorType::kLockState, SensorType::kVoiceCommand,
        SensorType::kTemperature, SensorType::kOutdoorTemperature, SensorType::kHumidity,
        SensorType::kIlluminance, SensorType::kAirQuality, SensorType::kNoiseLevel,
        SensorType::kWeatherCondition}) {
    home.AddSensor(std::string(ToString(type)) + "_0", type, room_for(), vendor());
  }
  // Extra duplicated sensors (larger homes have several motion/temp sensors).
  const int extras = static_cast<int>(rng.UniformInt(0, 2 * rooms));
  for (int i = 0; i < extras; ++i) {
    const SensorType type = rng.Bernoulli(0.5)   ? SensorType::kMotion
                            : rng.Bernoulli(0.5) ? SensorType::kTemperature
                                                 : SensorType::kIlluminance;
    home.AddSensor(Format("%s_%d", std::string(ToString(type)).c_str(), i + 1), type,
                   room_for(), vendor());
  }

  // Mandatory devices: the six evaluated families plus window motor & lock.
  home.AddDevice("kitchen_appliance", DeviceCategory::kKitchen, "kitchen");
  home.AddDevice("main_light", DeviceCategory::kLighting, room_for());
  home.AddDevice("main_ac", DeviceCategory::kAirConditioning, room_for());
  home.AddDevice("main_curtain", DeviceCategory::kCurtains, room_for());
  home.AddDevice("main_tv", DeviceCategory::kEntertainment, room_for());
  home.AddDevice("window_motor", DeviceCategory::kWindowAndLock, room_for());
  Device& lock = home.AddDevice("front_lock", DeviceCategory::kWindowAndLock, "entrance");
  lock.SetState("locked", 1.0);

  // Optional families.
  if (rng.Bernoulli(config.optional_device_probability)) {
    home.AddDevice("alarm_hub", DeviceCategory::kAlarm, "entrance");
  }
  if (rng.Bernoulli(config.optional_device_probability)) {
    home.AddDevice("vacuum", DeviceCategory::kVacuum, room_for());
  }
  if (rng.Bernoulli(config.optional_device_probability)) {
    home.AddDevice("porch_camera", DeviceCategory::kSecurityCamera, "entrance");
  }

  // Occupants with varied schedules.
  const int occupants =
      static_cast<int>(rng.UniformInt(config.min_occupants, config.max_occupants));
  for (int i = 0; i < occupants; ++i) {
    OccupantSchedule schedule;
    schedule.wake_hour = rng.UniformDouble(5.5, 8.5);
    schedule.leave_hour = rng.UniformDouble(7.5, 9.5);
    schedule.return_hour = rng.UniformDouble(15.5, 19.0);
    schedule.sleep_hour = rng.UniformDouble(21.5, 24.5);
    schedule.works_weekdays = rng.Bernoulli(0.8);
    schedule.weekend_out_probability = rng.UniformDouble(0.2, 0.7);
    home.AddOccupant(Format("resident_%d", i), schedule);
  }

  home.Step(kSecondsPerMinute);  // prime sensors
  return home;
}

}  // namespace sidet
