#include "home/occupant.h"

#include <algorithm>

namespace sidet {

Occupant::Occupant(std::string name, OccupantSchedule schedule, std::uint64_t seed)
    : name_(std::move(name)), schedule_(schedule), seed_(seed) {}

Occupant::DayPlan Occupant::PlanFor(std::int64_t day) const {
  Rng rng(seed_ ^ (static_cast<std::uint64_t>(day) * 0x9e3779b97f4a7c15ULL));
  DayPlan plan;
  const auto jitter = [&] { return rng.Normal(0.0, schedule_.jitter_hours); };
  plan.wake = std::clamp(schedule_.wake_hour + jitter(), 4.0, 11.0);
  plan.sleep = std::clamp(schedule_.sleep_hour + jitter(), 20.5, 26.0);  // may cross midnight

  const auto day_of_week = static_cast<DayOfWeek>(day % kDaysPerWeek);
  const bool weekend = day_of_week == DayOfWeek::kSaturday || day_of_week == DayOfWeek::kSunday;
  if (!weekend && schedule_.works_weekdays) {
    plan.out_block = true;
    plan.out_start = std::clamp(schedule_.leave_hour + jitter(), plan.wake + 0.25, 12.0);
    plan.out_end = std::clamp(schedule_.return_hour + jitter(), plan.out_start + 1.0, 22.0);
  } else if (rng.Bernoulli(schedule_.weekend_out_probability)) {
    plan.out_block = true;
    plan.out_start = std::clamp(schedule_.weekend_out_start + jitter(), plan.wake + 0.25, 18.0);
    plan.out_end = std::clamp(plan.out_start + schedule_.weekend_out_hours + jitter(),
                              plan.out_start + 0.5, 22.0);
  }
  return plan;
}

bool Occupant::IsHome(SimTime at) const {
  const DayPlan plan = PlanFor(at.day());
  const double h = at.hour_of_day();
  if (plan.out_block && h >= plan.out_start && h < plan.out_end) return false;
  return true;
}

bool Occupant::IsAwake(SimTime at) const {
  const DayPlan plan = PlanFor(at.day());
  const double h = at.hour_of_day();
  if (plan.sleep <= 24.0) {
    if (h >= plan.sleep || h < plan.wake) return false;
  } else {
    // Sleep time crossed midnight into the next day.
    const double sleep_wrapped = plan.sleep - 24.0;
    if (h < plan.wake && h >= sleep_wrapped) return false;
  }
  return h >= plan.wake;
}

double Occupant::MotionRate(SimTime at) const {
  if (!IsHome(at) || !IsAwake(at)) return 0.0;
  // More active in the morning and evening than mid-day.
  const double h = at.hour_of_day();
  if (h < 9.0 || (h >= 17.0 && h < 22.0)) return 0.5;
  return 0.25;
}

}  // namespace sidet
