#include "telemetry/exporters.h"

#include <fstream>
#include <set>

#include "util/strings.h"

namespace sidet {

namespace {

const char* KindName(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

// `name` or `name{labels}`; `extra` appends a label (e.g. le="0.5").
std::string Series(const std::string& name, const std::string& labels,
                   const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return name;
  std::string out = name;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

std::string FormatNumber(double value) {
  // Counters and bucket counts print as integers, everything else as %g.
  if (value == static_cast<double>(static_cast<std::int64_t>(value))) {
    return std::to_string(static_cast<std::int64_t>(value));
  }
  return Format("%g", value);
}

}  // namespace

std::string PrometheusEscapeHelp(std::string_view help) {
  std::string out;
  out.reserve(help.size());
  for (const char c : help) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PrometheusEscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (const char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '"') {
      out += "\\\"";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PrometheusLabel(std::string_view name, std::string_view value) {
  std::string out(name);
  out += "=\"";
  out += PrometheusEscapeLabelValue(value);
  out += '"';
  return out;
}

std::string_view BuildVersionLabel() {
#ifdef SIDET_GIT_DESCRIBE
  return SIDET_GIT_DESCRIBE;
#else
  return "unknown";
#endif
}

std::string_view BuildCompilerLabel() {
#ifdef __VERSION__
  return __VERSION__;
#else
  return "unknown";
#endif
}

void ExportBuildInfo(MetricsRegistry& registry) {
  const std::string labels = PrometheusLabel("version", BuildVersionLabel()) + "," +
                             PrometheusLabel("compiler", BuildCompilerLabel());
  if (Gauge* info = registry.GetGauge("sidet_build_info", labels,
                                      "Build provenance; constant 1")) {
    info->Set(1.0);
  }
}

std::string PrometheusText(const MetricsRegistry& registry) {
  std::string out;
  std::set<std::string> announced;  // one HELP/TYPE block per metric name
  registry.Visit([&](const MetricsRegistry::MetricView& metric) {
    if (announced.insert(metric.name).second) {
      if (!metric.help.empty()) {
        out += "# HELP " + metric.name + " " + PrometheusEscapeHelp(metric.help) + "\n";
      }
      out += "# TYPE " + metric.name + " " + KindName(metric.kind) + "\n";
    }
    switch (metric.kind) {
      case MetricKind::kCounter:
        out += Series(metric.name, metric.labels) + " " +
               std::to_string(metric.counter->Value()) + "\n";
        break;
      case MetricKind::kGauge:
        out += Series(metric.name, metric.labels) + " " +
               FormatNumber(metric.gauge->Value()) + "\n";
        break;
      case MetricKind::kHistogram: {
        const Histogram& histogram = *metric.histogram;
        std::uint64_t cumulative = 0;
        for (std::size_t i = 0; i < histogram.bounds().size(); ++i) {
          cumulative += histogram.BucketCount(i);
          out += Series(metric.name + "_bucket", metric.labels,
                        "le=\"" + Format("%g", histogram.bounds()[i]) + "\"") +
                 " " + std::to_string(cumulative) + "\n";
        }
        out += Series(metric.name + "_bucket", metric.labels, "le=\"+Inf\"") + " " +
               std::to_string(histogram.Count()) + "\n";
        out += Series(metric.name + "_sum", metric.labels) + " " +
               FormatNumber(histogram.Sum()) + "\n";
        out += Series(metric.name + "_count", metric.labels) + " " +
               std::to_string(histogram.Count()) + "\n";
        break;
      }
    }
  });
  return out;
}

Json MetricsSnapshotJson(const MetricsRegistry& registry) {
  Json counters = Json::Object();
  Json gauges = Json::Object();
  Json histograms = Json::Object();
  registry.Visit([&](const MetricsRegistry::MetricView& metric) {
    const std::string series = Series(metric.name, metric.labels);
    switch (metric.kind) {
      case MetricKind::kCounter:
        counters[series] = metric.counter->Value();
        break;
      case MetricKind::kGauge:
        gauges[series] = metric.gauge->Value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& histogram = *metric.histogram;
        Json summary = Json::Object();
        summary["count"] = histogram.Count();
        summary["sum"] = histogram.Sum();
        summary["p50"] = histogram.Quantile(0.50);
        summary["p95"] = histogram.Quantile(0.95);
        summary["p99"] = histogram.Quantile(0.99);
        histograms[series] = std::move(summary);
        break;
      }
    }
  });
  Json snapshot = Json::Object();
  snapshot["counters"] = std::move(counters);
  snapshot["gauges"] = std::move(gauges);
  snapshot["histograms"] = std::move(histograms);
  return snapshot;
}

Json ChromeTraceJson(const SpanTracer& tracer) {
  Json events = Json::Array();
  for (const SpanEvent& span : tracer.Events()) {
    Json event = Json::Object();
    event["name"] = span.name;
    event["cat"] = span.category;
    event["ph"] = "X";  // complete event: ts + dur
    event["ts"] = span.start_us;
    event["dur"] = span.duration_us;
    event["pid"] = 1;
    event["tid"] = static_cast<std::int64_t>(span.tid);
    events.as_array().push_back(std::move(event));
  }
  Json trace = Json::Object();
  trace["traceEvents"] = std::move(events);
  trace["displayTimeUnit"] = "ms";
  return trace;
}

Status WriteChromeTrace(const SpanTracer& tracer, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Error("cannot open trace file: " + path);
  out << ChromeTraceJson(tracer).Dump() << "\n";
  return out ? Status::Ok() : Status(Error("write failed: " + path));
}

Json ChromeTraceJson(const TailExemplarStore& store) {
  Json events = Json::Array();
  const std::vector<TraceExemplar> exemplars = store.Snapshot();
  for (std::size_t row = 0; row < exemplars.size(); ++row) {
    const TraceExemplar& exemplar = exemplars[row];
    const std::int64_t tid = static_cast<std::int64_t>(row) + 1;
    // Row label so chrome://tracing shows the request identity per track.
    Json label = Json::Object();
    label["name"] = "thread_name";
    label["ph"] = "M";  // metadata
    label["pid"] = 1;
    label["tid"] = tid;
    Json label_args = Json::Object();
    label_args["name"] = exemplar.home + "/" + exemplar.instruction + " [" +
                         exemplar.retained_for + "] " +
                         FormatTraceId(exemplar.trace_id);
    label["args"] = std::move(label_args);
    events.as_array().push_back(std::move(label));
    for (const ExemplarSpan& span : exemplar.spans) {
      Json event = Json::Object();
      event["name"] = span.name;
      event["cat"] = "gateway";
      event["ph"] = "X";
      event["ts"] = span.start_us;
      event["dur"] = span.duration_us;
      event["pid"] = 1;
      event["tid"] = tid;
      Json args = Json::Object();
      args["trace"] = FormatTraceId(exemplar.trace_id);
      args["retained_for"] = exemplar.retained_for;
      args["e2e_us"] = exemplar.e2e_us;
      args["batch_rows"] = static_cast<std::uint64_t>(exemplar.batch_rows);
      event["args"] = std::move(args);
      events.as_array().push_back(std::move(event));
    }
  }
  Json trace = Json::Object();
  trace["traceEvents"] = std::move(events);
  trace["displayTimeUnit"] = "ms";
  return trace;
}

Status WriteChromeTrace(const TailExemplarStore& store, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Error("cannot open trace file: " + path);
  out << ChromeTraceJson(store).Dump() << "\n";
  return out ? Status::Ok() : Status(Error("write failed: " + path));
}

void AttachThreadPoolTelemetry(ThreadPool& pool, MetricsRegistry& registry) {
  Gauge* depth = registry.GetGauge("sidet_pool_queue_depth", "",
                                   "Tasks waiting in the worker-pool queue");
  Counter* tasks =
      registry.GetCounter("sidet_pool_tasks_total", "", "Tasks executed by the pool");
  Histogram* seconds = registry.GetHistogram("sidet_pool_task_seconds", "", {},
                                             "Per-task execution wall time");
  ThreadPoolHooks hooks;
  hooks.queue_depth = [depth](std::size_t queued) {
    depth->Set(static_cast<double>(queued));
  };
  hooks.task_seconds = [tasks, seconds](double elapsed) {
    tasks->Increment();
    seconds->Observe(elapsed);
  };
  pool.SetHooks(std::move(hooks));
}

}  // namespace sidet
