#include "telemetry/slo.h"

#include <algorithm>
#include <utility>

#include "telemetry/timeseries.h"
#include "telemetry/trace.h"

namespace sidet {

std::vector<SloWindow> DefaultSloWindows() {
  return {{300, 14.4}, {3600, 1.0}};
}

std::vector<SloObjective> DefaultGatewaySlos(const std::string& home) {
  std::vector<SloObjective> slos;

  SloObjective latency;
  latency.name = "judge_latency";
  latency.description = "gateway judge wire-to-wire p99 under 2ms";
  latency.kind = SloObjective::Kind::kLatencyBound;
  latency.metric = "sidet_gateway_judge_e2e_seconds";
  latency.latency_bound_seconds = 0.002;
  latency.objective = 0.99;
  slos.push_back(std::move(latency));

  SloObjective availability;
  availability.name = "availability";
  availability.description = "99.9% of requests admitted (429s are bad events)";
  availability.kind = SloObjective::Kind::kBadRatio;
  availability.bad_metric = "sidet_gateway_backlog_shed_total";
  availability.total_metric = "sidet_gateway_requests_total";
  availability.objective = 0.999;
  slos.push_back(std::move(availability));

  SloObjective shed;
  shed.name = "lane_shed_rate";
  shed.description = "per-home lane shed rate under 0.1%";
  shed.kind = SloObjective::Kind::kBadRatio;
  shed.bad_metric = "sidet_gateway_shed_total";
  shed.bad_labels = "home=\"" + home + "\"";
  shed.total_metric = "sidet_gateway_requests_total";
  shed.objective = 0.999;
  slos.push_back(std::move(shed));

  return slos;
}

double HistogramGoodAtOrBelow(const Histogram& histogram, double bound) {
  const std::vector<double>& bounds = histogram.bounds();
  double good = 0.0;
  double lower = 0.0;
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    const double count = static_cast<double>(histogram.BucketCount(i));
    if (bounds[i] <= bound) {
      good += count;
      lower = bounds[i];
      continue;
    }
    // The bound lands inside this bucket: credit a linear share of it.
    const double width = bounds[i] - lower;
    if (width > 0.0 && bound > lower) {
      good += count * ((bound - lower) / width);
    }
    return good;
  }
  // Bound at or past the last finite bound; the +Inf overflow bucket always
  // counts as bad (those observations exceeded every finite bound).
  return good;
}

SloEngine::SloEngine(std::vector<SloWindow> windows, ClockFn clock)
    : windows_(std::move(windows)), clock_(std::move(clock)) {
  if (windows_.empty()) windows_ = DefaultSloWindows();
  if (!clock_) clock_ = [] { return MonotonicMicros(); };
}

void SloEngine::AddObjective(SloObjective objective) {
  objectives_.push_back(std::move(objective));
  history_.emplace_back();
}

bool SloEngine::ReadCumulative(MetricsRegistry& registry,
                               const SloObjective& objective, double* good,
                               double* total) const {
  bool ok = false;
  if (objective.kind == SloObjective::Kind::kLatencyBound) {
    registry.Find(objective.metric, objective.labels,
                  [&](const MetricsRegistry::MetricView& view) {
                    if (view.kind != MetricKind::kHistogram) return;
                    *total = static_cast<double>(view.histogram->Count());
                    *good = HistogramGoodAtOrBelow(
                        *view.histogram, objective.latency_bound_seconds);
                    ok = true;
                  });
    return ok;
  }
  double bad = 0.0;
  bool bad_ok = false;
  registry.Find(objective.bad_metric, objective.bad_labels,
                [&](const MetricsRegistry::MetricView& view) {
                  if (view.kind == MetricKind::kCounter) {
                    bad = static_cast<double>(view.counter->Value());
                    bad_ok = true;
                  } else if (view.kind == MetricKind::kGauge) {
                    bad = view.gauge->Value();
                    bad_ok = true;
                  }
                });
  // An unregistered bad counter means no bad event has happened yet, not
  // "no data": the serving path registers shed counters lazily on first
  // shed. The total counter existing is what proves traffic is flowing.
  if (!bad_ok) bad = 0.0;
  registry.Find(objective.total_metric, objective.total_labels,
                [&](const MetricsRegistry::MetricView& view) {
                  if (view.kind == MetricKind::kCounter) {
                    *total = static_cast<double>(view.counter->Value());
                    ok = true;
                  } else if (view.kind == MetricKind::kGauge) {
                    *total = view.gauge->Value();
                    ok = true;
                  }
                });
  if (ok) *good = std::max(0.0, *total - bad);
  return ok;
}

std::vector<SloState> SloEngine::Evaluate(MetricsRegistry& registry) {
  const std::int64_t now_us = clock_();
  std::int64_t max_window_us = 0;
  for (const SloWindow& window : windows_) {
    max_window_us = std::max(max_window_us, window.seconds * 1'000'000);
  }

  std::vector<SloState> states;
  states.reserve(objectives_.size());
  for (std::size_t i = 0; i < objectives_.size(); ++i) {
    const SloObjective& objective = objectives_[i];
    std::deque<Sample>& history = history_[i];

    SloState state;
    state.name = objective.name;
    state.objective = objective.objective;

    double good = 0.0;
    double total = 0.0;
    const bool resolved = ReadCumulative(registry, objective, &good, &total);
    if (resolved) {
      history.push_back({now_us, good, total});
      // Keep one sample older than the longest window so its delta still
      // spans the full width.
      while (history.size() > 2 &&
             history[1].at_us <= now_us - max_window_us) {
        history.pop_front();
      }
    }

    const double budget = std::max(1e-9, 1.0 - objective.objective);
    bool all_exhausted = resolved;
    for (const SloWindow& window : windows_) {
      SloWindowState ws;
      ws.window_seconds = window.seconds;
      ws.has_data = resolved && history.size() >= 2;
      if (ws.has_data) {
        // Oldest sample still inside the window (or the oldest we have).
        const std::int64_t horizon_us = now_us - window.seconds * 1'000'000;
        const Sample* base = &history.front();
        for (const Sample& sample : history) {
          if (sample.at_us < horizon_us) {
            base = &sample;
          } else {
            break;
          }
        }
        const Sample& head = history.back();
        const double delta_total = head.total - base->total;
        const double delta_good = head.good - base->good;
        ws.total_events = delta_total;
        if (delta_total > 0.0) {
          ws.bad_fraction =
              std::clamp(1.0 - delta_good / delta_total, 0.0, 1.0);
          ws.burn_rate = ws.bad_fraction / budget;
        }
        ws.exhausted = ws.burn_rate > window.burn_threshold;
      }
      all_exhausted = all_exhausted && ws.has_data && ws.exhausted;

      const std::string window_labels = "slo=\"" + objective.name +
                                        "\",window=\"" +
                                        std::to_string(window.seconds) + "s\"";
      if (Gauge* burn = registry.GetGauge("sidet_slo_burn_rate", window_labels,
                                          objective.description)) {
        burn->Set(ws.burn_rate);
      }
      if (Gauge* bad = registry.GetGauge("sidet_slo_bad_fraction",
                                         window_labels, objective.description)) {
        bad->Set(ws.bad_fraction);
      }
      state.windows.push_back(ws);
    }
    state.firing = all_exhausted;
    if (Gauge* firing =
            registry.GetGauge("sidet_slo_firing", "slo=\"" + objective.name + "\"",
                              objective.description)) {
      firing->Set(state.firing ? 1.0 : 0.0);
    }
    states.push_back(std::move(state));
  }
  return states;
}

std::vector<SloState> SloEngine::EvaluateTrend(const TimeSeriesStore& store,
                                               std::int64_t now_ms,
                                               MetricsRegistry* registry) const {
  std::vector<SloState> states;
  states.reserve(objectives_.size());
  for (const SloObjective& objective : objectives_) {
    SloState state;
    state.name = objective.name;
    state.objective = objective.objective;
    const double budget = std::max(1e-9, 1.0 - objective.objective);

    bool all_exhausted = true;
    for (const SloWindow& window : windows_) {
      SloWindowState ws;
      ws.window_seconds = window.seconds;
      const std::int64_t start_ms = now_ms - window.seconds * 1000;

      if (objective.kind == SloObjective::Kind::kLatencyBound) {
        const RangeResult counts = store.Query(
            {objective.metric + ":count", objective.labels, start_ms, now_ms});
        ws.has_data = counts.found && counts.points.size() >= 2;
        if (ws.has_data) {
          ws.total_events = counts.delta;
          // Quantile-trail estimate (see the header): the highest retained
          // quantile the bound undercuts anywhere in the window tiers the
          // bad fraction.
          const double bound = objective.latency_bound_seconds;
          const RangeResult p50 = store.Query(
              {objective.metric + ":p50", objective.labels, start_ms, now_ms});
          const RangeResult p95 = store.Query(
              {objective.metric + ":p95", objective.labels, start_ms, now_ms});
          const RangeResult p99 = store.Query(
              {objective.metric + ":p99", objective.labels, start_ms, now_ms});
          if (!p50.points.empty() && p50.max > bound) {
            ws.bad_fraction = 0.5;
          } else if (!p95.points.empty() && p95.max > bound) {
            ws.bad_fraction = 0.05;
          } else if (!p99.points.empty() && p99.max > bound) {
            ws.bad_fraction = 0.01;
          }
        }
      } else {
        const RangeResult total = store.Query(
            {objective.total_metric, objective.total_labels, start_ms, now_ms});
        const RangeResult bad = store.Query(
            {objective.bad_metric, objective.bad_labels, start_ms, now_ms});
        // As in ReadCumulative: a missing bad series means zero bad events,
        // the total series is what proves traffic flowed.
        ws.has_data = total.found && total.points.size() >= 2;
        if (ws.has_data) {
          ws.total_events = total.delta;
          if (total.delta > 0.0) {
            ws.bad_fraction = std::clamp(bad.delta / total.delta, 0.0, 1.0);
          }
        }
      }
      if (ws.has_data) ws.burn_rate = ws.bad_fraction / budget;
      ws.exhausted = ws.has_data && ws.burn_rate > window.burn_threshold;
      all_exhausted = all_exhausted && ws.exhausted;

      if (registry != nullptr) {
        const std::string window_labels = "slo=\"" + objective.name +
                                          "\",window=\"" +
                                          std::to_string(window.seconds) + "s\"";
        if (Gauge* burn = registry->GetGauge("sidet_slo_trend_burn_rate",
                                             window_labels, objective.description)) {
          burn->Set(ws.burn_rate);
        }
      }
      state.windows.push_back(ws);
    }
    state.firing = !windows_.empty() && all_exhausted;
    if (registry != nullptr) {
      if (Gauge* firing = registry->GetGauge("sidet_slo_trend_firing",
                                             "slo=\"" + objective.name + "\"",
                                             objective.description)) {
        firing->Set(state.firing ? 1.0 : 0.0);
      }
    }
    states.push_back(std::move(state));
  }
  return states;
}

Json SloEngine::StatesJson(const std::vector<SloState>& states) {
  Json array = Json::Array();
  for (const SloState& state : states) {
    Json s = Json::Object();
    s["slo"] = state.name;
    s["objective"] = state.objective;
    s["firing"] = state.firing;
    Json windows = Json::Array();
    for (const SloWindowState& ws : state.windows) {
      Json w = Json::Object();
      w["window_seconds"] = ws.window_seconds;
      w["burn_rate"] = ws.burn_rate;
      w["bad_fraction"] = ws.bad_fraction;
      w["total_events"] = ws.total_events;
      w["has_data"] = ws.has_data;
      w["exhausted"] = ws.exhausted;
      windows.as_array().push_back(std::move(w));
    }
    s["windows"] = std::move(windows);
    array.as_array().push_back(std::move(s));
  }
  return array;
}

}  // namespace sidet
