// Declarative service-level objectives evaluated as multi-window burn rates
// over the metrics registry.
//
// An objective reduces every evaluation to a cumulative (good, total) event
// pair read from already-registered metrics:
//
//   * kLatencyBound — a latency histogram; events at or under the bound are
//     good. The good count interpolates linearly inside the bucket the bound
//     lands in, so bounds need not align with the bucket ladder.
//   * kBadRatio — a bad-event counter over a total-event counter (e.g. shed
//     responses over requests); good = total - bad.
//
// Burn rate is the classic SRE definition: the fraction of the error budget
// consumed per unit of budgeted time,
//
//   burn = bad_fraction_over_window / (1 - objective)
//
// so burn == 1 means "spending the budget exactly as fast as the SLO
// allows", burn == 14.4 over 5 minutes means "a 30-day budget gone in ~2
// days". The engine keeps a sample history per objective and evaluates each
// configured window over the cumulative deltas inside it; an alert fires
// only when *every* window's burn exceeds its threshold (the multi-window
// AND suppresses both stale pages from long windows alone and noise blips
// from short windows alone). Until a window has a full history it evaluates
// over the samples it has — "since start" — which is the standard practical
// behavior for young processes.
//
// Evaluate() writes `sidet_slo_burn_rate{slo=...,window=...}`,
// `sidet_slo_bad_fraction{...}` and `sidet_slo_firing{slo=...}` gauges back
// into the registry, so objectives ride the Prometheus/JSON exporters and
// compose with the AlertEvaluator (see SloBurnAlerts in replay/drift_monitor.h).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "telemetry/metrics.h"
#include "util/json.h"

namespace sidet {

class TimeSeriesStore;

struct SloWindow {
  std::int64_t seconds = 300;
  double burn_threshold = 1.0;
};

// The stock pair: a fast 5-minute window at the page-worthy 14.4x burn and
// a slow 1-hour window at 1x, both of which must exceed to fire.
std::vector<SloWindow> DefaultSloWindows();

struct SloObjective {
  std::string name;         // e.g. "judge_latency"
  std::string description;  // becomes gauge HELP text

  enum class Kind { kLatencyBound, kBadRatio };
  Kind kind = Kind::kBadRatio;

  // kLatencyBound: the histogram and the bound that separates good from bad.
  std::string metric;
  std::string labels;
  double latency_bound_seconds = 0.0;

  // kBadRatio: bad events over total events.
  std::string bad_metric;
  std::string bad_labels;
  std::string total_metric;
  std::string total_labels;

  // Target good fraction (0.999 = "99.9% of events good").
  double objective = 0.999;
};

// The stock objectives for a serving gateway: judge wire-to-wire p99 under
// 2 ms, 99.9% availability (backlog sheds as bad events), and a per-home
// lane shed rate under 0.1%.
std::vector<SloObjective> DefaultGatewaySlos(const std::string& home = "default");

struct SloWindowState {
  std::int64_t window_seconds = 0;
  double burn_rate = 0.0;
  double bad_fraction = 0.0;
  double total_events = 0.0;  // events inside the window
  bool has_data = false;      // the objective's metrics resolved
  bool exhausted = false;     // burn_rate > this window's threshold
};

struct SloState {
  std::string name;
  double objective = 0.999;
  std::vector<SloWindowState> windows;
  bool firing = false;  // every window with data exceeded its threshold
};

class SloEngine {
 public:
  // Clock returns microseconds on a monotonic timeline; the default is
  // MonotonicMicros. Injectable so tests can hand-crank window expiry.
  using ClockFn = std::function<std::int64_t()>;

  explicit SloEngine(std::vector<SloWindow> windows = DefaultSloWindows(),
                     ClockFn clock = {});

  void AddObjective(SloObjective objective);
  const std::vector<SloObjective>& objectives() const { return objectives_; }
  const std::vector<SloWindow>& windows() const { return windows_; }

  // Reads each objective's cumulative (good, total) from the registry,
  // appends a sample, computes per-window burn rates, writes the
  // `sidet_slo_*` gauges back and returns the per-objective states.
  std::vector<SloState> Evaluate(MetricsRegistry& registry);

  // Trend evaluation over the time-series store's retained history instead
  // of the engine's own sample deque. Evaluate() can only see deltas between
  // its own calls — a freshly constructed engine (restart, or an ops query
  // hitting a gateway that never ran Evaluate) has no history at all. The
  // store retains the same cumulative counters for every sampler tick, so
  // each window reduces to the reset-clamped delta over its range query and
  // any evaluator reaches the same burn rates.
  //
  // kBadRatio objectives are exact (window deltas of the two counters).
  // kLatencyBound objectives are a quantile-trail estimate: the store keeps
  // `metric:count` plus the p50/p95/p99 trails but not bucket vectors, so
  // the bad fraction is tiered from the highest retained quantile the bound
  // undercuts inside the window (p50 above bound -> >=50% bad, p95 -> 5%,
  // p99 -> 1%, otherwise 0) — a lower bound on the true fraction, which is
  // the conservative direction for paging.
  //
  // With a non-null registry, writes `sidet_slo_trend_burn_rate{slo,window}`
  // and `sidet_slo_trend_firing{slo}` gauges (names distinct from Evaluate's
  // so the two evaluation modes never overwrite each other).
  std::vector<SloState> EvaluateTrend(const TimeSeriesStore& store, std::int64_t now_ms,
                                      MetricsRegistry* registry = nullptr) const;

  static Json StatesJson(const std::vector<SloState>& states);

 private:
  struct Sample {
    std::int64_t at_us = 0;
    double good = 0.0;
    double total = 0.0;
  };

  bool ReadCumulative(MetricsRegistry& registry, const SloObjective& objective,
                      double* good, double* total) const;

  std::vector<SloWindow> windows_;
  ClockFn clock_;
  std::vector<SloObjective> objectives_;
  std::vector<std::deque<Sample>> history_;  // parallel to objectives_
};

// Exposed for tests: the good-event count of a histogram at a latency bound,
// with linear interpolation inside the crossing bucket.
double HistogramGoodAtOrBelow(const Histogram& histogram, double bound);

}  // namespace sidet
