// Low-overhead span tracing for the judgement pipeline.
//
// A SpanTracer collects completed spans — name, category, lane, start, and
// duration in microseconds — into a bounded in-memory buffer that exports as
// Chrome `trace_event` JSON (chrome://tracing / Perfetto "X" complete
// events). The clock is injected: the default reads steady_clock wall time,
// a simulation passes `[&clock] { return clock.now().seconds() * 1'000'000; }`
// so traces line up with sim-time, tests pass a hand-cranked counter.
//
// Instrumentation sites hold a `SpanTracer*` that may be null; TraceSpan and
// ScopedStage compile down to a pointer test in that case, which is what
// keeps the disabled path inside bench_observability's <2% budget.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/metrics.h"

namespace sidet {

// Monotonic wall time in microseconds (steady_clock) — the default span
// clock, also used by ScopedStage when no tracer supplies one.
std::int64_t MonotonicMicros();

// Small dense id per OS thread (Chrome's tid field); stable for the thread's
// lifetime, assigned in first-use order.
std::uint32_t CurrentTraceThreadId();

struct SpanEvent {
  const char* name = "";  // static string at every call site
  const char* category = "";
  std::uint32_t tid = 0;
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
};

class SpanTracer {
 public:
  using ClockFn = std::function<std::int64_t()>;  // microseconds

  // Default clock is MonotonicMicros. `capacity` bounds the buffer; spans
  // beyond it are dropped (and counted) so tracing can stay attached to a
  // long-running process without unbounded growth.
  explicit SpanTracer(ClockFn clock = {}, std::size_t capacity = 1 << 16);

  std::int64_t NowMicros() const { return clock_(); }

  void Record(const char* name, const char* category, std::int64_t start_us,
              std::int64_t duration_us);

  std::size_t size() const;
  std::size_t dropped() const;
  void Clear();
  std::vector<SpanEvent> Events() const;

 private:
  ClockFn clock_;
  std::size_t capacity_;
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
  std::size_t dropped_ = 0;
};

// RAII span: records [construction, destruction) into the tracer. A null
// tracer makes both ends a pointer test. `name` and `category` must outlive
// the tracer (string literals at every call site).
class TraceSpan {
 public:
  explicit TraceSpan(SpanTracer* tracer, const char* name, const char* category = "pipeline")
      : tracer_(tracer), name_(name), category_(category) {
    if (tracer_ != nullptr) start_us_ = tracer_->NowMicros();
  }
  ~TraceSpan() {
    if (tracer_ != nullptr) {
      tracer_->Record(name_, category_, start_us_, tracer_->NowMicros() - start_us_);
    }
  }

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  SpanTracer* tracer_;
  const char* name_;
  const char* category_;
  std::int64_t start_us_ = 0;
};

// Times one pipeline stage into a latency histogram (seconds) and, when a
// tracer is attached, the same interval as a span — one clock read pair
// serves both. With both handles null no clock is read at all.
class ScopedStage {
 public:
  ScopedStage(SpanTracer* tracer, Histogram* latency, const char* name,
              const char* category = "pipeline")
      : tracer_(tracer), latency_(latency), name_(name), category_(category) {
    if (tracer_ != nullptr || latency_ != nullptr) {
      start_us_ = tracer_ != nullptr ? tracer_->NowMicros() : MonotonicMicros();
    }
  }
  ~ScopedStage() {
    if (tracer_ == nullptr && latency_ == nullptr) return;
    const std::int64_t now_us =
        tracer_ != nullptr ? tracer_->NowMicros() : MonotonicMicros();
    if (latency_ != nullptr) {
      latency_->Observe(static_cast<double>(now_us - start_us_) * 1e-6);
    }
    if (tracer_ != nullptr) tracer_->Record(name_, category_, start_us_, now_us - start_us_);
  }

  ScopedStage(const ScopedStage&) = delete;
  ScopedStage& operator=(const ScopedStage&) = delete;

 private:
  SpanTracer* tracer_;
  Histogram* latency_;
  const char* name_;
  const char* category_;
  std::int64_t start_us_ = 0;
};

#define SIDET_TRACE_CONCAT_INNER(a, b) a##b
#define SIDET_TRACE_CONCAT(a, b) SIDET_TRACE_CONCAT_INNER(a, b)
// Convenience: SIDET_TRACE_SPAN(tracer, "ids.judge"); — an anonymous RAII
// span covering the rest of the enclosing scope.
#define SIDET_TRACE_SPAN(tracer, ...) \
  ::sidet::TraceSpan SIDET_TRACE_CONCAT(sidet_trace_span_, __LINE__)(tracer, __VA_ARGS__)

}  // namespace sidet
