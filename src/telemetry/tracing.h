// End-to-end request tracing for the serving path.
//
// A TraceContext (64-bit trace id, parent span id, sampling flag) rides the
// NDJSON wire protocol as optional members (`trace`/`span`/`sampled`) — old
// clients and servers ignore them, so the protocol stays forward compatible.
// The gateway assigns an id at admission when the client did not send one and
// hands a per-request RequestTrace through MicroBatcher -> GatewayRouter ->
// ContextIds::JudgeBatch; every hop stamps its timestamps, so finalization
// yields a causal span tree with per-stage attribution:
//
//   gateway.admission  line parse + routing + admission control
//   gateway.queue      batcher intake wait (submit -> batch formation)
//   gateway.judge      the coalesced JudgeBatch call, annotated with the
//                      batch-level classify/score/verdict stage clocks
//   gateway.respond    verdict fan-out + response serialization (judge end
//                      -> response staged in the connection outbox)
//   gateway.writeback  outbox -> socket (last response byte written)
//
// The stages partition [admission, writeback] contiguously, so the named
// spans account for the full wire-to-wire latency by construction — the
// property the tracing acceptance test asserts at >= 95%.
//
// Sampling is *tail-based*: every request is traced while tracing is
// attached (cheap: one shared_ptr and a dozen stores), and the bounded
// TailExemplarStore decides retention at finalization — the slowest ~p99.9
// requests (top-K by wire-to-wire latency), every shed/429 request, every
// blocked verdict, and every client-forced sample (`"sampled":true`). A
// request that loses all four races costs no span materialization at all.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/metrics.h"
#include "util/json.h"

namespace sidet {

// Propagated trace identity. trace_id == 0 means "untraced" everywhere.
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  bool sampled = false;  // client-forced exemplar retention
};

// 16-hex-digit rendering used on the wire, in flight-recorder NDJSON and in
// exemplar exports ("00c3a4..."); ParseTraceId returns 0 on anything that is
// not exactly 16 hex digits (malformed ids degrade to "untraced", never to a
// parse error — forward compatibility).
std::string FormatTraceId(std::uint64_t trace_id);
std::uint64_t ParseTraceId(std::string_view text);

// Per-request trace record. The gateway creates one per judge request at
// admission; the batcher and completion path stamp into it; the writeback
// path finalizes it. All timestamps share the MonotonicMicros clock.
struct RequestTrace {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  bool sampled = false;  // wire `sampled` flag: force exemplar retention
  bool shed = false;     // answered 429 by either admission level

  std::string home;
  std::string instruction;

  // Stage stamps, in causal order. Zero = the request never reached the hop
  // (a shed request has no queue/judge stamps).
  std::int64_t admitted_us = 0;     // gateway parsed + routed the line
  std::int64_t submitted_us = 0;    // accepted into the batcher intake queue
  std::int64_t batch_start_us = 0;  // its coalesced batch began executing
  std::int64_t judge_end_us = 0;    // JudgeBatch returned
  std::int64_t staged_us = 0;       // response staged into the connection outbox
  std::int64_t write_us = 0;        // last response byte handed to the socket

  // Batch-level annotations copied from BatchStageMicros (the whole batch's
  // stage clocks — per-row attribution inside a coalesced batch is not
  // meaningful, so the tree carries them as child spans of gateway.judge).
  std::int64_t classify_us = 0;
  std::int64_t score_us = 0;
  std::int64_t verdict_us = 0;
  std::size_t batch_rows = 0;

  // Verdict summary stamped by the completion callback.
  bool sensitive = false;
  bool allowed = true;
  double consistency = 1.0;

  std::int64_t e2e_us() const { return write_us - admitted_us; }
  bool blocked() const { return sensitive && !allowed && !shed; }
};

// One named slice of a finalized span tree.
struct ExemplarSpan {
  const char* name = "";
  std::int64_t start_us = 0;
  std::int64_t duration_us = 0;
};

// A retained span tree with its request identity and verdict.
struct TraceExemplar {
  std::uint64_t trace_id = 0;
  std::uint64_t parent_span = 0;
  std::string home;
  std::string instruction;
  const char* retained_for = "slow";  // "slow" | "shed" | "blocked" | "forced"
  std::int64_t start_us = 0;          // admitted_us
  std::int64_t e2e_us = 0;            // wire-to-wire
  bool sensitive = false;
  bool allowed = true;
  bool shed = false;
  double consistency = 1.0;
  std::size_t batch_rows = 0;
  std::vector<ExemplarSpan> spans;

  Json ToJson() const;
};

// Builds the contiguous span tree for a finalized request. Exposed for the
// store and the coverage test; only stages the request actually reached are
// emitted (a shed request yields admission + writeback only).
std::vector<ExemplarSpan> BuildSpanTree(const RequestTrace& trace);

// Bounded tail-sampling retention. Three always-retain event rings (shed,
// blocked, client-forced) plus a top-K-by-latency set for the slow tail;
// everything is mutex-guarded and cheap to reject (the common case touches
// one comparison and no allocation).
class TailExemplarStore {
 public:
  explicit TailExemplarStore(std::size_t slow_capacity = 64,
                             std::size_t event_capacity = 128);

  // Decides retention and, when retained, materializes the exemplar.
  void Offer(const RequestTrace& trace);

  struct Stats {
    std::uint64_t offered = 0;
    std::uint64_t retained_slow = 0;
    std::uint64_t retained_shed = 0;
    std::uint64_t retained_blocked = 0;
    std::uint64_t retained_forced = 0;
    std::uint64_t evicted = 0;  // rotated out of a full ring / top-K set

    Json ToJson() const;
  };
  Stats stats() const;

  // Slow exemplars (slowest first), then shed, blocked, forced in retention
  // order. The copy is the export surface: the `trace` wire op and the
  // Chrome exporter both serialize a snapshot, never the live store.
  std::vector<TraceExemplar> Snapshot() const;
  Json ToJson() const;

  // The smallest wire-to-wire latency currently held in the slow set — the
  // store's implicit tail threshold (~p99.9 once warm). 0 while not full.
  std::int64_t slow_threshold_us() const;

 private:
  void RetainSlowLocked(const RequestTrace& trace);

  const std::size_t slow_capacity_;
  const std::size_t event_capacity_;
  mutable std::mutex mu_;
  std::vector<TraceExemplar> slow_;  // min-heap by e2e_us
  std::deque<TraceExemplar> shed_;
  std::deque<TraceExemplar> blocked_;
  std::deque<TraceExemplar> forced_;
  Stats stats_;
};

struct RequestTracingOptions {
  std::uint64_t seed = 0x51de7;     // trace-id stream seed (splitmix64)
  std::size_t slow_capacity = 64;   // top-K slowest retained
  std::size_t event_capacity = 128; // shed / blocked / forced rings, each
};

// The gateway-facing facade: id assignment at admission, finalization into
// the tail store, and optional counters. One instance per gateway; all
// methods are thread-safe (Begin runs on the loop thread, Finalize on the
// loop thread, stamps happen on the batch worker).
class RequestTracing {
 public:
  explicit RequestTracing(RequestTracingOptions options = {},
                          MetricsRegistry* registry = nullptr);

  // Starts a request trace: adopts the propagated context (assigning a fresh
  // id when the client sent none) and stamps admitted_us.
  std::shared_ptr<RequestTrace> Begin(const TraceContext& context,
                                      std::string home, std::string instruction);

  // Completes the trace (write_us must be stamped) and offers it to the
  // tail store.
  void Finalize(const std::shared_ptr<RequestTrace>& trace);

  std::uint64_t NextTraceId();

  TailExemplarStore& exemplars() { return store_; }
  const TailExemplarStore& exemplars() const { return store_; }

 private:
  RequestTracingOptions options_;
  std::atomic<std::uint64_t> next_{0};
  TailExemplarStore store_;
  Counter* m_started_ = nullptr;    // sidet_trace_requests_total
  Counter* m_finalized_ = nullptr;  // sidet_trace_finalized_total
};

}  // namespace sidet
