#include "telemetry/trace.h"

#include <atomic>
#include <chrono>
#include <utility>

namespace sidet {

std::int64_t MonotonicMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

std::uint32_t CurrentTraceThreadId() {
  static std::atomic<std::uint32_t> next{0};
  thread_local const std::uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

SpanTracer::SpanTracer(ClockFn clock, std::size_t capacity)
    : clock_(clock ? std::move(clock) : ClockFn(&MonotonicMicros)), capacity_(capacity) {}

void SpanTracer::Record(const char* name, const char* category, std::int64_t start_us,
                        std::int64_t duration_us) {
  const std::uint32_t tid = CurrentTraceThreadId();
  const std::lock_guard<std::mutex> lock(mu_);
  if (events_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  events_.push_back(SpanEvent{name, category, tid, start_us, duration_us});
}

std::size_t SpanTracer::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

std::size_t SpanTracer::dropped() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void SpanTracer::Clear() {
  const std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
  dropped_ = 0;
}

std::vector<SpanEvent> SpanTracer::Events() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

}  // namespace sidet
