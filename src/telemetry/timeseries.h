// TimeSeriesStore — bounded in-process retention of MetricsRegistry samples
// (DESIGN.md §17).
//
// Every prior observability layer (metrics, drift gauges, SLO burn, tracing)
// observes the present instant; nothing in the process can answer "what did
// the shed rate do over the last ten minutes". The store closes that gap
// without an external TSDB: a background sampler snapshots a registry at a
// fixed cadence into per-series multi-resolution ring buffers, and windowed
// queries reduce the retained points to rate/avg/min/max/quantile — the
// substrate of the gateway's `query` wire command and of the SLO/drift trend
// evaluation.
//
// Retention model:
//
//   * each registry metric flattens into scalar series — counters and gauges
//     one-to-one, histograms into five sub-series (`name:count`, `name:sum`,
//     `name:p50`, `name:p95`, `name:p99`) so quantile trends survive without
//     retaining whole bucket vectors;
//   * counter-like series (counters, `:count`, `:sum`) store the cumulative
//     value; rate/delta are computed at query time from consecutive points
//     with reset clamping (a restart never yields a negative delta);
//   * every series keeps one ring per configured resolution level, finest
//     first. Level 0 stores every sample; level L aggregates `factor`
//     consecutive level-(L-1) points into one {last,min,max,sum,count}
//     point, cascading at sample time. Memory is strictly bounded:
//     sum(capacity) points per series, forever.
//
// Queries pick the finest level whose retention still covers the window
// start, so recent windows answer at full resolution and old windows degrade
// gracefully instead of reading as empty.
//
// Thread safety: one mutex guards the series table and rings. Sampling
// (background thread or manual SampleNow) and queries may race freely; the
// TSan suite drives concurrent sample-while-query.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "telemetry/metrics.h"
#include "util/json.h"

namespace sidet {

struct TimeSeriesOptions {
  // Background sampler cadence (StartSampler).
  std::int64_t sample_interval_ms = 1000;

  // Resolution ladder, finest first. `factor` is how many points of the
  // previous level aggregate into one point here (level 0's is forced to 1);
  // `capacity` is the ring bound at this level. The default retains 10
  // minutes at sample resolution, 1 hour at 10 samples/point and 24 hours
  // at 60 samples/point (with the 1 s default cadence).
  struct Level {
    std::size_t factor = 1;
    std::size_t capacity = 600;
  };
  std::vector<Level> levels = {{1, 600}, {10, 360}, {6, 1440}};

  // Injectable clock (milliseconds since epoch) for the background sampler;
  // null uses the system clock. Tests drive SampleNow with explicit stamps
  // instead.
  std::function<std::int64_t()> now_ms;
};

// One retained point: the aggregate of every raw sample folded into it
// (level 0 points have count == 1 and last == min == max == sum).
struct SeriesPoint {
  std::int64_t at_ms = 0;  // timestamp of the newest folded sample
  double last = 0.0;
  double min = 0.0;
  double max = 0.0;
  double sum = 0.0;
  std::uint32_t count = 0;
};

struct RangeQuery {
  // Flattened series name: the metric name, or `name:p95` / `name:count` /
  // `name:sum` for histogram sub-series.
  std::string series;
  std::string labels;           // pre-rendered fragment, "" for unlabelled
  std::int64_t start_ms = 0;    // inclusive
  std::int64_t end_ms = 0;      // inclusive; 0 = newest retained sample
};

struct RangeResult {
  std::string series;           // echoed query identity
  std::string labels;
  std::int64_t start_ms = 0;    // resolved window (end_ms 0 resolved here)
  std::int64_t end_ms = 0;
  bool found = false;           // series exists (points may still be empty)
  bool cumulative = false;      // counter-like: rate/delta are meaningful
  std::int64_t step_seconds = 0;  // resolution level served
  std::vector<SeriesPoint> points;

  // Window reductions (0 when no points landed in the window):
  double delta = 0.0;  // reset-clamped cumulative growth (counter-like)
  double rate = 0.0;   // delta / window span in seconds
  double avg = 0.0;    // sample-weighted mean of folded values
  double min = 0.0;
  double max = 0.0;
  double last = 0.0;   // newest value in the window

  // Nearest-rank quantile over the in-window point values (q in [0, 1]).
  double Quantile(double q) const;

  Json ToJson() const;
};

class TimeSeriesStore {
 public:
  explicit TimeSeriesStore(TimeSeriesOptions options = {});
  ~TimeSeriesStore();

  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  // Takes one snapshot of `registry` stamped `at_ms`. The manual sampling
  // surface — tests and benches drive deterministic timelines through it;
  // the background sampler calls it on its cadence. Samples must be
  // monotonically stamped; a stamp at or before the previous one is
  // ignored (the sampler never goes back in time).
  void SampleNow(const MetricsRegistry& registry, std::int64_t at_ms);

  // Starts the background sampler over `registry` (not owned; must outlive
  // the store or StopSampler). No-op when already running.
  void StartSampler(const MetricsRegistry* registry);
  // Stops and joins the sampler. Idempotent; the destructor calls it.
  void StopSampler();
  bool sampler_running() const;

  RangeResult Query(const RangeQuery& query) const;

  // Names of every retained series, registration order (ops discovery).
  std::vector<std::string> SeriesNames() const;

  std::uint64_t samples_taken() const;
  std::int64_t last_sample_ms() const;
  std::int64_t sample_interval_ms() const { return options_.sample_interval_ms; }

 private:
  struct Ring {
    std::vector<SeriesPoint> points;  // ring storage, capacity fixed
    std::size_t head = 0;             // next write slot
    std::size_t size = 0;             // filled entries (<= capacity)
    // Cascade accumulator: folds points arriving from the finer level until
    // `factor` of them emit one point here.
    SeriesPoint pending;
    std::size_t pending_fill = 0;
  };

  struct Series {
    std::string name;
    std::string labels;
    bool cumulative = false;
    std::vector<Ring> rings;  // one per options_.levels entry
  };

  // mu_ held. One full registry snapshot (shared by SampleNow and the
  // sampler loop, which already owns the lock when its wait times out).
  void SampleLocked(const MetricsRegistry& registry, std::int64_t at_ms);
  // mu_ held. Finds or creates the flattened series.
  Series& Upsert(std::string_view name, std::string_view labels, bool cumulative);
  // mu_ held. Pushes one raw sample through the resolution cascade.
  void Push(Series& series, std::int64_t at_ms, double value);
  void SamplerLoop();
  std::int64_t NowMs() const;

  TimeSeriesOptions options_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Series>> series_;            // registration order
  std::map<std::string, std::size_t, std::less<>> index_;  // "name\0labels"
  std::uint64_t samples_taken_ = 0;
  std::int64_t last_sample_ms_ = 0;

  // Sampler thread state.
  const MetricsRegistry* sampled_ = nullptr;  // not owned
  std::thread sampler_;
  std::condition_variable stop_cv_;
  bool stop_ = false;
  bool running_ = false;
};

}  // namespace sidet
