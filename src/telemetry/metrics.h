// Process-wide metrics: monotonic counters, gauges, and fixed-bucket
// latency histograms with quantile readout.
//
// The registry is the shared observability substrate of the judgement path
// (ROADMAP: every perf/robustness PR reports through it). Design rules:
//
//   * handles are resolved once (`GetCounter` etc.) and then updated
//     lock-free with relaxed atomics — hot paths never touch the registry
//     map or a mutex;
//   * metric objects are owned by the registry and never deleted, so a
//     resolved `Counter*`/`Gauge*`/`Histogram*` stays valid for the
//     registry's lifetime;
//   * naming follows `sidet_<layer>_<name>` (DESIGN.md §10); label sets are
//     a pre-rendered Prometheus fragment like `vendor="miio"` so the
//     exporters never re-serialize them.
//
// Components take an optional `MetricsRegistry*`; a null registry compiles
// the instrumentation down to a pointer test (the "registry absent" mode
// measured by bench_observability).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sidet {

namespace detail {
// C++20 atomic<double>::fetch_add portability shim (CAS loop).
inline void AtomicAdd(std::atomic<double>& target, double delta) {
  double expected = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(expected, expected + delta,
                                       std::memory_order_relaxed)) {
  }
}
}  // namespace detail

// Monotonic counter. Thread-safe; increments are relaxed atomics.
class Counter {
 public:
  void Increment(std::uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

// Instantaneous value (queue depth, coverage ratio). Thread-safe.
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  void Add(double delta) { detail::AtomicAdd(value_, delta); }
  double Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

// Fixed-bucket histogram: `bounds` are ascending inclusive upper bounds, an
// implicit +Inf overflow bucket is appended. Observations are a few relaxed
// atomic updates; quantiles interpolate linearly inside the landing bucket,
// clamped to the observed [Min, Max] so a quantile never reports a value
// outside what was actually seen (a single observation of 8192 in the
// (4096, 16384] bucket reports 8192, not the interpolated 10240).
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void Observe(double value);

  std::uint64_t Count() const { return count_.load(std::memory_order_relaxed); }
  double Sum() const { return sum_.load(std::memory_order_relaxed); }
  // Observed extrema; 0 with no observations.
  double Min() const;
  double Max() const;
  // q in [0, 1]. Returns 0 with no observations; values landing in the
  // overflow bucket report the last finite bound (clamped like the rest).
  double Quantile(double q) const;

  const std::vector<double>& bounds() const { return bounds_; }
  // i in [0, bounds().size()]; the final index is the +Inf overflow bucket.
  std::uint64_t BucketCount(std::size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> buckets_;  // bounds_.size() + 1
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;  // +inf until the first observation
  std::atomic<double> max_;  // -inf until the first observation
};

// Exponential 1µs .. 10s ladder — the default for latency histograms.
std::vector<double> DefaultLatencyBoundsSeconds();

enum class MetricKind { kCounter, kGauge, kHistogram };

// Thread-safe name -> metric table. Lookups (Get*) take a mutex; the
// returned handles are updated lock-free and remain valid until the
// registry is destroyed. Re-registering an existing (name, labels) pair
// returns the original handle; a kind mismatch returns nullptr (a
// programming error surfaced softly so telemetry can never crash the IDS).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // `labels` is a pre-rendered Prometheus label body, e.g. `vendor="miio"`.
  Counter* GetCounter(std::string_view name, std::string_view labels = "",
                      std::string_view help = "");
  Gauge* GetGauge(std::string_view name, std::string_view labels = "",
                  std::string_view help = "");
  // Empty `bounds` selects DefaultLatencyBoundsSeconds(). The first
  // registration fixes the bounds.
  Histogram* GetHistogram(std::string_view name, std::string_view labels = "",
                          std::vector<double> bounds = {}, std::string_view help = "");

  struct MetricView {
    const std::string& name;
    const std::string& labels;
    const std::string& help;
    MetricKind kind;
    const Counter* counter;      // set when kind == kCounter
    const Gauge* gauge;          // set when kind == kGauge
    const Histogram* histogram;  // set when kind == kHistogram
  };
  // Visits every metric in registration order (stable export output).
  void Visit(const std::function<void(const MetricView&)>& fn) const;

  // Read-only lookup of an already-registered (name, labels) pair; never
  // creates. Calls `fn` with the entry and returns true when present. The
  // AlertEvaluator resolves rule targets through this so a rule over a
  // metric that has not been registered yet reads as "no data", not as a
  // new empty series.
  bool Find(std::string_view name, std::string_view labels,
            const std::function<void(const MetricView&)>& fn) const;

  std::size_t size() const;

  // The process-wide registry examples and benches attach to. Library code
  // never touches it implicitly — components only observe through an
  // explicitly attached registry.
  static MetricsRegistry& Global();

 private:
  struct Entry {
    std::string name;
    std::string labels;
    std::string help;
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
  };

  Entry& Insert(std::string_view name, std::string_view labels, std::string_view help,
                MetricKind kind);

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Entry>> entries_;          // registration order
  std::map<std::string, std::size_t, std::less<>> index_;  // "name\0labels" -> index
};

}  // namespace sidet
