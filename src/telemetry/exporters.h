// Exporters for the telemetry substrate.
//
//   * PrometheusText  — Prometheus text exposition format 0.0.4 (HELP/TYPE
//     comments, cumulative `_bucket{le=...}` lines for histograms);
//   * MetricsSnapshotJson — the machine-readable snapshot stamped into every
//     BENCH_*.json and printed by the examples' unified telemetry dump
//     (histograms summarize as count/sum/p50/p95/p99);
//   * ChromeTraceJson / WriteChromeTrace — spans as Chrome `trace_event`
//     complete ("X") events; the file loads directly in chrome://tracing
//     and Perfetto.
#pragma once

#include <string>

#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "telemetry/tracing.h"
#include "util/json.h"
#include "util/result.h"
#include "util/thread_pool.h"

namespace sidet {

// Prometheus 0.0.4 escaping. HELP text escapes `\` and newline; label
// values additionally escape `"`. Every HELP line and label value the
// exporter emits goes through these, so pathological metric help/labels
// can never corrupt the exposition framing.
std::string PrometheusEscapeHelp(std::string_view help);
std::string PrometheusEscapeLabelValue(std::string_view value);
// Renders one label pair `name="escaped value"` — the canonical way to
// build the pre-rendered label fragments MetricsRegistry keys series by.
std::string PrometheusLabel(std::string_view name, std::string_view value);

std::string PrometheusText(const MetricsRegistry& registry);

// Build provenance labels: the configure-time `git describe` baked in by
// CMake (SIDET_GIT_DESCRIBE, "unknown" outside a checkout) and the compiler
// identity (__VERSION__).
std::string_view BuildVersionLabel();
std::string_view BuildCompilerLabel();

// Registers the constant `sidet_build_info{version="...",compiler="..."} 1`
// gauge — the Prometheus idiom for joining build provenance onto any other
// series by group_left. Idempotent; the gateway exports it at construction.
void ExportBuildInfo(MetricsRegistry& registry);

Json MetricsSnapshotJson(const MetricsRegistry& registry);

Json ChromeTraceJson(const SpanTracer& tracer);
Status WriteChromeTrace(const SpanTracer& tracer, const std::string& path);

// Tail-sampled request exemplars as Chrome trace_event JSON: each exemplar
// gets its own tid row (slowest first) with its contiguous stage spans as
// nested "X" events and the request identity/verdict attached as args, so
// a `trace` wire-command dump loads straight into chrome://tracing.
Json ChromeTraceJson(const TailExemplarStore& store);
Status WriteChromeTrace(const TailExemplarStore& store, const std::string& path);

// Wires a ThreadPool's observer hooks into the registry:
//   sidet_pool_queue_depth (gauge), sidet_pool_tasks_total (counter),
//   sidet_pool_task_seconds (histogram of per-task execution wall time).
// Call before submitting work; the pool must not outlive the registry.
void AttachThreadPoolTelemetry(ThreadPool& pool, MetricsRegistry& registry);

}  // namespace sidet
