#include "telemetry/metrics.h"

#include <algorithm>
#include <cassert>
#include <limits>

namespace sidet {

namespace {

// Relaxed CAS update of an atomic extremum.
void AtomicMin(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value < current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>& target, double value) {
  double current = target.load(std::memory_order_relaxed);
  while (value > current &&
         !target.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  assert(std::is_sorted(bounds_.begin(), bounds_.end()));
  buckets_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
}

void Histogram::Observe(double value) {
  const std::size_t bucket =
      static_cast<std::size_t>(std::lower_bound(bounds_.begin(), bounds_.end(), value) -
                               bounds_.begin());
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  detail::AtomicAdd(sum_, value);
  AtomicMin(min_, value);
  AtomicMax(max_, value);
}

double Histogram::Min() const {
  return Count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::Max() const {
  return Count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  const std::uint64_t total = Count();
  if (total == 0) return 0.0;
  // Buckets only bound a quantile to an interval; the observed extrema
  // tighten it, so no quantile reports below the smallest or above the
  // largest observation (a count=1 histogram reports its sample exactly).
  const auto clamped = [this](double value) {
    return std::clamp(value, min_.load(std::memory_order_relaxed),
                      max_.load(std::memory_order_relaxed));
  };
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i <= bounds_.size(); ++i) {
    const std::uint64_t in_bucket = BucketCount(i);
    if (in_bucket == 0) continue;
    const std::uint64_t next = cumulative + in_bucket;
    if (static_cast<double>(next) >= rank) {
      if (i == bounds_.size()) return clamped(bounds_.empty() ? 0.0 : bounds_.back());
      const double upper = bounds_[i];
      const double lower = i == 0 ? 0.0 : bounds_[i - 1];
      const double within =
          (rank - static_cast<double>(cumulative)) / static_cast<double>(in_bucket);
      return clamped(lower + (upper - lower) * std::clamp(within, 0.0, 1.0));
    }
    cumulative = next;
  }
  return clamped(bounds_.empty() ? 0.0 : bounds_.back());
}

std::vector<double> DefaultLatencyBoundsSeconds() {
  return {1e-6, 2.5e-6, 5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
          1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1,  0.25,   0.5,
          1.0,  2.5,    5.0,  10.0};
}

namespace {
std::string IndexKey(std::string_view name, std::string_view labels) {
  std::string key;
  key.reserve(name.size() + labels.size() + 1);
  key.append(name);
  key.push_back('\0');
  key.append(labels);
  return key;
}
}  // namespace

MetricsRegistry::Entry& MetricsRegistry::Insert(std::string_view name,
                                                std::string_view labels,
                                                std::string_view help, MetricKind kind) {
  auto entry = std::make_unique<Entry>();
  entry->name = std::string(name);
  entry->labels = std::string(labels);
  entry->help = std::string(help);
  entry->kind = kind;
  index_[IndexKey(name, labels)] = entries_.size();
  return *entries_.emplace_back(std::move(entry));
}

Counter* MetricsRegistry::GetCounter(std::string_view name, std::string_view labels,
                                     std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(IndexKey(name, labels));
  if (it != index_.end()) {
    Entry& existing = *entries_[it->second];
    return existing.kind == MetricKind::kCounter ? existing.counter.get() : nullptr;
  }
  Entry& entry = Insert(name, labels, help, MetricKind::kCounter);
  entry.counter = std::make_unique<Counter>();
  return entry.counter.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name, std::string_view labels,
                                 std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(IndexKey(name, labels));
  if (it != index_.end()) {
    Entry& existing = *entries_[it->second];
    return existing.kind == MetricKind::kGauge ? existing.gauge.get() : nullptr;
  }
  Entry& entry = Insert(name, labels, help, MetricKind::kGauge);
  entry.gauge = std::make_unique<Gauge>();
  return entry.gauge.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name, std::string_view labels,
                                         std::vector<double> bounds,
                                         std::string_view help) {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(IndexKey(name, labels));
  if (it != index_.end()) {
    Entry& existing = *entries_[it->second];
    return existing.kind == MetricKind::kHistogram ? existing.histogram.get() : nullptr;
  }
  Entry& entry = Insert(name, labels, help, MetricKind::kHistogram);
  if (bounds.empty()) bounds = DefaultLatencyBoundsSeconds();
  entry.histogram = std::make_unique<Histogram>(std::move(bounds));
  return entry.histogram.get();
}

void MetricsRegistry::Visit(const std::function<void(const MetricView&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Entry>& entry : entries_) {
    fn(MetricView{entry->name, entry->labels, entry->help, entry->kind,
                  entry->counter.get(), entry->gauge.get(), entry->histogram.get()});
  }
}

bool MetricsRegistry::Find(std::string_view name, std::string_view labels,
                           const std::function<void(const MetricView&)>& fn) const {
  const std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(IndexKey(name, labels));
  if (it == index_.end()) return false;
  const Entry& entry = *entries_[it->second];
  fn(MetricView{entry.name, entry.labels, entry.help, entry.kind, entry.counter.get(),
                entry.gauge.get(), entry.histogram.get()});
  return true;
}

std::size_t MetricsRegistry::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return index_.size();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();  // never destroyed
  return *registry;
}

}  // namespace sidet
