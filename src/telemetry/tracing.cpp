#include "telemetry/tracing.h"

#include <algorithm>
#include <utility>

#include "telemetry/trace.h"

namespace sidet {
namespace {

// splitmix64: cheap, well-mixed 64-bit stream; collisions across a session
// are as unlikely as random ids without any coordination between gateways.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

TraceExemplar MakeExemplar(const RequestTrace& trace, const char* retained_for) {
  TraceExemplar exemplar;
  exemplar.trace_id = trace.trace_id;
  exemplar.parent_span = trace.parent_span;
  exemplar.home = trace.home;
  exemplar.instruction = trace.instruction;
  exemplar.retained_for = retained_for;
  exemplar.start_us = trace.admitted_us;
  exemplar.e2e_us = trace.e2e_us();
  exemplar.sensitive = trace.sensitive;
  exemplar.allowed = trace.allowed;
  exemplar.shed = trace.shed;
  exemplar.consistency = trace.consistency;
  exemplar.batch_rows = trace.batch_rows;
  exemplar.spans = BuildSpanTree(trace);
  return exemplar;
}

struct SlowLater {
  bool operator()(const TraceExemplar& a, const TraceExemplar& b) const {
    return a.e2e_us > b.e2e_us;  // min-heap on e2e: heap top = fastest retained
  }
};

}  // namespace

std::string FormatTraceId(std::uint64_t trace_id) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = kHex[trace_id & 0xf];
    trace_id >>= 4;
  }
  return out;
}

std::uint64_t ParseTraceId(std::string_view text) {
  if (text.size() != 16) return 0;
  std::uint64_t value = 0;
  for (const char c : text) {
    const int nibble = HexValue(c);
    if (nibble < 0) return 0;
    value = (value << 4) | static_cast<std::uint64_t>(nibble);
  }
  return value;
}

std::vector<ExemplarSpan> BuildSpanTree(const RequestTrace& trace) {
  std::vector<ExemplarSpan> spans;
  spans.reserve(8);
  const auto emit = [&spans](const char* name, std::int64_t start,
                             std::int64_t end) {
    if (start <= 0 || end < start) return;
    spans.push_back({name, start, end - start});
  };
  // Top-level stages partition [admitted, write] contiguously: each stage
  // starts where the previous one ended, at the last stamp the request
  // actually reached.
  std::int64_t cursor = trace.admitted_us;
  const auto stage = [&](const char* name, std::int64_t end) {
    if (end <= 0) return;  // request never reached this hop
    emit(name, cursor, end);
    cursor = end;
  };
  // A request that never reached the batcher (shed / 404) has no submitted
  // stamp: admission ran straight to response staging and there is no
  // distinct respond stage to attribute.
  const bool reached_batcher = trace.submitted_us > 0;
  stage("gateway.admission", reached_batcher ? trace.submitted_us
                                             : trace.staged_us);
  stage("gateway.queue", trace.batch_start_us);
  stage("gateway.judge", trace.judge_end_us);
  if (reached_batcher) stage("gateway.respond", trace.staged_us);
  stage("gateway.writeback", trace.write_us);
  // Batch-stage annotations nest inside gateway.judge: laid out sequentially
  // from the batch start, they show where the coalesced batch spent its time
  // (these clocks cover the whole batch, not just this row).
  if (trace.batch_start_us > 0 && trace.judge_end_us > trace.batch_start_us) {
    std::int64_t t = trace.batch_start_us;
    const std::int64_t budget = trace.judge_end_us;
    const auto annotate = [&](const char* name, std::int64_t duration) {
      if (duration <= 0 || t >= budget) return;
      const std::int64_t clamped = std::min(duration, budget - t);
      spans.push_back({name, t, clamped});
      t += clamped;
    };
    annotate("ids.classify", trace.classify_us);
    annotate("ids.score", trace.score_us);
    annotate("ids.verdict", trace.verdict_us);
  }
  return spans;
}

Json TraceExemplar::ToJson() const {
  Json json = Json::Object();
  json["trace"] = FormatTraceId(trace_id);
  if (parent_span != 0) json["span"] = FormatTraceId(parent_span);
  json["home"] = home;
  json["instruction"] = instruction;
  json["retained_for"] = retained_for;
  json["start_us"] = start_us;
  json["e2e_us"] = e2e_us;
  json["sensitive"] = sensitive;
  json["allowed"] = allowed;
  json["shed"] = shed;
  json["consistency"] = consistency;
  json["batch_rows"] = static_cast<std::uint64_t>(batch_rows);
  Json span_array = Json::Array();
  for (const ExemplarSpan& span : spans) {
    Json s = Json::Object();
    s["name"] = span.name;
    s["start_us"] = span.start_us;
    s["duration_us"] = span.duration_us;
    span_array.as_array().push_back(std::move(s));
  }
  json["spans"] = std::move(span_array);
  return json;
}

TailExemplarStore::TailExemplarStore(std::size_t slow_capacity,
                                     std::size_t event_capacity)
    : slow_capacity_(slow_capacity == 0 ? 1 : slow_capacity),
      event_capacity_(event_capacity == 0 ? 1 : event_capacity) {}

void TailExemplarStore::RetainSlowLocked(const RequestTrace& trace) {
  if (slow_.size() < slow_capacity_) {
    slow_.push_back(MakeExemplar(trace, "slow"));
    std::push_heap(slow_.begin(), slow_.end(), SlowLater{});
    ++stats_.retained_slow;
    return;
  }
  if (trace.e2e_us() <= slow_.front().e2e_us) return;  // not in the tail
  std::pop_heap(slow_.begin(), slow_.end(), SlowLater{});
  slow_.back() = MakeExemplar(trace, "slow");
  std::push_heap(slow_.begin(), slow_.end(), SlowLater{});
  ++stats_.retained_slow;
  ++stats_.evicted;
}

void TailExemplarStore::Offer(const RequestTrace& trace) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.offered;
  const auto ring_retain = [this](std::deque<TraceExemplar>& ring,
                                  TraceExemplar exemplar) {
    if (ring.size() >= event_capacity_) {
      ring.pop_front();
      ++stats_.evicted;
    }
    ring.push_back(std::move(exemplar));
  };
  if (trace.shed) {
    ring_retain(shed_, MakeExemplar(trace, "shed"));
    ++stats_.retained_shed;
    return;
  }
  if (trace.blocked()) {
    ring_retain(blocked_, MakeExemplar(trace, "blocked"));
    ++stats_.retained_blocked;
    return;
  }
  if (trace.sampled) {
    ring_retain(forced_, MakeExemplar(trace, "forced"));
    ++stats_.retained_forced;
    return;
  }
  RetainSlowLocked(trace);
}

TailExemplarStore::Stats TailExemplarStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Json TailExemplarStore::Stats::ToJson() const {
  Json json = Json::Object();
  json["offered"] = offered;
  json["retained_slow"] = retained_slow;
  json["retained_shed"] = retained_shed;
  json["retained_blocked"] = retained_blocked;
  json["retained_forced"] = retained_forced;
  json["evicted"] = evicted;
  return json;
}

std::vector<TraceExemplar> TailExemplarStore::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TraceExemplar> out;
  out.reserve(slow_.size() + shed_.size() + blocked_.size() + forced_.size());
  out.insert(out.end(), slow_.begin(), slow_.end());
  std::sort(out.begin(), out.end(),
            [](const TraceExemplar& a, const TraceExemplar& b) {
              return a.e2e_us > b.e2e_us;  // slowest first
            });
  out.insert(out.end(), shed_.begin(), shed_.end());
  out.insert(out.end(), blocked_.begin(), blocked_.end());
  out.insert(out.end(), forced_.begin(), forced_.end());
  return out;
}

Json TailExemplarStore::ToJson() const {
  Json array = Json::Array();
  for (const TraceExemplar& exemplar : Snapshot()) {
    array.as_array().push_back(exemplar.ToJson());
  }
  return array;
}

std::int64_t TailExemplarStore::slow_threshold_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (slow_.size() < slow_capacity_) return 0;
  return slow_.front().e2e_us;
}

RequestTracing::RequestTracing(RequestTracingOptions options,
                               MetricsRegistry* registry)
    : options_(options),
      store_(options.slow_capacity, options.event_capacity) {
  if (registry != nullptr) {
    m_started_ = registry->GetCounter("sidet_trace_requests_total", "",
                                      "Requests traced at gateway admission");
    m_finalized_ = registry->GetCounter("sidet_trace_finalized_total", "",
                                        "Traces finalized after writeback");
  }
}

std::uint64_t RequestTracing::NextTraceId() {
  std::uint64_t id = 0;
  while (id == 0) {
    const std::uint64_t n = next_.fetch_add(1, std::memory_order_relaxed);
    id = SplitMix64(options_.seed ^ (n + 1));
  }
  return id;
}

std::shared_ptr<RequestTrace> RequestTracing::Begin(const TraceContext& context,
                                                    std::string home,
                                                    std::string instruction) {
  auto trace = std::make_shared<RequestTrace>();
  trace->trace_id = context.trace_id != 0 ? context.trace_id : NextTraceId();
  trace->parent_span = context.parent_span;
  trace->sampled = context.sampled;
  trace->home = std::move(home);
  trace->instruction = std::move(instruction);
  trace->admitted_us = MonotonicMicros();
  if (m_started_ != nullptr) m_started_->Increment();
  return trace;
}

void RequestTracing::Finalize(const std::shared_ptr<RequestTrace>& trace) {
  if (trace == nullptr) return;
  if (trace->write_us <= 0) trace->write_us = MonotonicMicros();
  store_.Offer(*trace);
  if (m_finalized_ != nullptr) m_finalized_->Increment();
}

}  // namespace sidet
