#include "telemetry/timeseries.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <utility>

namespace sidet {

namespace {

std::string SeriesKey(std::string_view name, std::string_view labels) {
  std::string key;
  key.reserve(name.size() + labels.size() + 1);
  key.append(name);
  key.push_back('\0');
  key.append(labels);
  return key;
}

// Folds one finer-level point into a cascade accumulator.
void Fold(SeriesPoint& pending, std::size_t& fill, const SeriesPoint& point) {
  if (fill == 0) {
    pending = point;
  } else {
    pending.at_ms = point.at_ms;
    pending.last = point.last;
    pending.min = std::min(pending.min, point.min);
    pending.max = std::max(pending.max, point.max);
    pending.sum += point.sum;
    pending.count += point.count;
  }
  ++fill;
}

}  // namespace

double RangeResult::Quantile(double q) const {
  if (points.empty()) return 0.0;
  std::vector<double> values;
  values.reserve(points.size());
  for (const SeriesPoint& point : points) values.push_back(point.last);
  std::sort(values.begin(), values.end());
  const double clamped = std::min(1.0, std::max(0.0, q));
  // Nearest rank: the smallest value with cumulative fraction >= q.
  const std::size_t rank = clamped <= 0.0
                               ? 0
                               : static_cast<std::size_t>(
                                     std::ceil(clamped * static_cast<double>(values.size()))) -
                                     1;
  return values[std::min(rank, values.size() - 1)];
}

Json RangeResult::ToJson() const {
  Json out = Json::Object();
  out["series"] = series;
  out["labels"] = labels;
  out["found"] = found;
  out["cumulative"] = cumulative;
  out["step_seconds"] = step_seconds;
  out["start_ms"] = start_ms;
  out["end_ms"] = end_ms;
  out["delta"] = delta;
  out["rate"] = rate;
  out["avg"] = avg;
  out["min"] = min;
  out["max"] = max;
  out["last"] = last;
  out["p50"] = Quantile(0.5);
  out["p95"] = Quantile(0.95);
  Json rendered = Json::Array();
  for (const SeriesPoint& point : points) {
    Json entry = Json::Object();
    entry["t"] = point.at_ms;
    entry["v"] = point.last;
    entry["min"] = point.min;
    entry["max"] = point.max;
    entry["n"] = static_cast<std::int64_t>(point.count);
    rendered.as_array().push_back(std::move(entry));
  }
  out["points"] = std::move(rendered);
  return out;
}

TimeSeriesStore::TimeSeriesStore(TimeSeriesOptions options) : options_(std::move(options)) {
  if (options_.levels.empty()) options_.levels = TimeSeriesOptions().levels;
  options_.levels.front().factor = 1;
  for (TimeSeriesOptions::Level& level : options_.levels) {
    level.factor = std::max<std::size_t>(1, level.factor);
    level.capacity = std::max<std::size_t>(1, level.capacity);
  }
}

TimeSeriesStore::~TimeSeriesStore() { StopSampler(); }

std::int64_t TimeSeriesStore::NowMs() const {
  if (options_.now_ms) return options_.now_ms();
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

TimeSeriesStore::Series& TimeSeriesStore::Upsert(std::string_view name,
                                                 std::string_view labels, bool cumulative) {
  const std::string key = SeriesKey(name, labels);
  const auto it = index_.find(key);
  if (it != index_.end()) return *series_[it->second];
  auto series = std::make_unique<Series>();
  series->name = std::string(name);
  series->labels = std::string(labels);
  series->cumulative = cumulative;
  series->rings.resize(options_.levels.size());
  for (std::size_t level = 0; level < options_.levels.size(); ++level) {
    series->rings[level].points.resize(options_.levels[level].capacity);
  }
  index_.emplace(key, series_.size());
  series_.push_back(std::move(series));
  return *series_.back();
}

void TimeSeriesStore::Push(Series& series, std::int64_t at_ms, double value) {
  SeriesPoint point;
  point.at_ms = at_ms;
  point.last = value;
  point.min = value;
  point.max = value;
  point.sum = value;
  point.count = 1;
  // Cascade: write into level 0, and whenever a level's accumulator reaches
  // its factor, emit the folded point into that level's ring and hand it to
  // the next.
  for (std::size_t level = 0; level < series.rings.size(); ++level) {
    Ring& ring = series.rings[level];
    if (level > 0) {
      Fold(ring.pending, ring.pending_fill, point);
      if (ring.pending_fill < options_.levels[level].factor) break;
      point = ring.pending;
      ring.pending_fill = 0;
    }
    const std::size_t capacity = ring.points.size();
    ring.points[ring.head] = point;
    ring.head = (ring.head + 1) % capacity;
    ring.size = std::min(ring.size + 1, capacity);
  }
}

void TimeSeriesStore::SampleLocked(const MetricsRegistry& registry, std::int64_t at_ms) {
  if (samples_taken_ > 0 && at_ms <= last_sample_ms_) return;
  registry.Visit([&](const MetricsRegistry::MetricView& metric) {
    switch (metric.kind) {
      case MetricKind::kCounter:
        Push(Upsert(metric.name, metric.labels, /*cumulative=*/true), at_ms,
             static_cast<double>(metric.counter->Value()));
        break;
      case MetricKind::kGauge:
        Push(Upsert(metric.name, metric.labels, /*cumulative=*/false), at_ms,
             metric.gauge->Value());
        break;
      case MetricKind::kHistogram: {
        const Histogram& histogram = *metric.histogram;
        Push(Upsert(metric.name + ":count", metric.labels, /*cumulative=*/true), at_ms,
             static_cast<double>(histogram.Count()));
        Push(Upsert(metric.name + ":sum", metric.labels, /*cumulative=*/true), at_ms,
             histogram.Sum());
        Push(Upsert(metric.name + ":p50", metric.labels, /*cumulative=*/false), at_ms,
             histogram.Quantile(0.5));
        Push(Upsert(metric.name + ":p95", metric.labels, /*cumulative=*/false), at_ms,
             histogram.Quantile(0.95));
        Push(Upsert(metric.name + ":p99", metric.labels, /*cumulative=*/false), at_ms,
             histogram.Quantile(0.99));
        break;
      }
    }
  });
  ++samples_taken_;
  last_sample_ms_ = at_ms;
}

void TimeSeriesStore::SampleNow(const MetricsRegistry& registry, std::int64_t at_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  SampleLocked(registry, at_ms);
}

void TimeSeriesStore::StartSampler(const MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_ || registry == nullptr) return;
  sampled_ = registry;
  stop_ = false;
  running_ = true;
  sampler_ = std::thread([this] { SamplerLoop(); });
}

void TimeSeriesStore::StopSampler() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!running_) return;
    stop_ = true;
  }
  stop_cv_.notify_all();
  sampler_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
  stop_ = false;
  sampled_ = nullptr;
}

bool TimeSeriesStore::sampler_running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

void TimeSeriesStore::SamplerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_) {
    if (stop_cv_.wait_for(lock, std::chrono::milliseconds(options_.sample_interval_ms),
                          [this] { return stop_; })) {
      break;
    }
    SampleLocked(*sampled_, NowMs());
  }
}

RangeResult TimeSeriesStore::Query(const RangeQuery& query) const {
  RangeResult out;
  out.series = query.series;
  out.labels = query.labels;
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = index_.find(SeriesKey(query.series, query.labels));
  if (it == index_.end()) return out;
  const Series& series = *series_[it->second];
  out.found = true;
  out.cumulative = series.cumulative;
  out.start_ms = query.start_ms;
  out.end_ms = query.end_ms != 0 ? query.end_ms : last_sample_ms_;

  // Finest level whose retention still reaches the window start; when even
  // the coarsest ring starts after `start_ms`, serve the coarsest non-empty
  // one (partial window) rather than nothing.
  const Ring* chosen = nullptr;
  std::size_t chosen_level = 0;
  std::int64_t step_ms = options_.sample_interval_ms;
  std::int64_t chosen_step_ms = step_ms;
  for (std::size_t level = 0; level < series.rings.size(); ++level) {
    const Ring& ring = series.rings[level];
    if (level > 0) step_ms *= static_cast<std::int64_t>(options_.levels[level].factor);
    if (ring.size == 0) continue;
    const std::size_t capacity = ring.points.size();
    const std::size_t oldest = (ring.head + capacity - ring.size) % capacity;
    chosen = &ring;
    chosen_level = level;
    chosen_step_ms = step_ms;
    if (ring.points[oldest].at_ms <= query.start_ms) break;
  }
  out.step_seconds = std::max<std::int64_t>(1, chosen_step_ms / 1000);
  if (chosen == nullptr) return out;
  (void)chosen_level;

  const std::size_t capacity = chosen->points.size();
  const std::size_t oldest = (chosen->head + capacity - chosen->size) % capacity;
  for (std::size_t i = 0; i < chosen->size; ++i) {
    const SeriesPoint& point = chosen->points[(oldest + i) % capacity];
    if (point.at_ms < query.start_ms || point.at_ms > out.end_ms) continue;
    out.points.push_back(point);
  }
  if (out.points.empty()) return out;

  double sum = 0.0;
  std::uint64_t count = 0;
  out.min = out.points.front().min;
  out.max = out.points.front().max;
  for (std::size_t i = 0; i < out.points.size(); ++i) {
    const SeriesPoint& point = out.points[i];
    out.min = std::min(out.min, point.min);
    out.max = std::max(out.max, point.max);
    sum += point.sum;
    count += point.count;
    if (i > 0) {
      // Reset-clamped growth: a cumulative drop (process restart) counts as
      // zero rather than unwinding the window's delta.
      out.delta += std::max(0.0, point.last - out.points[i - 1].last);
    }
  }
  out.avg = count > 0 ? sum / static_cast<double>(count) : 0.0;
  out.last = out.points.back().last;
  const double span_seconds =
      static_cast<double>(out.points.back().at_ms - out.points.front().at_ms) / 1000.0;
  out.rate = span_seconds > 0.0 ? out.delta / span_seconds : 0.0;
  return out;
}

std::vector<std::string> TimeSeriesStore::SeriesNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const std::unique_ptr<Series>& series : series_) names.push_back(series->name);
  return names;
}

std::uint64_t TimeSeriesStore::samples_taken() const {
  std::lock_guard<std::mutex> lock(mu_);
  return samples_taken_;
}

std::int64_t TimeSeriesStore::last_sample_ms() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_sample_ms_;
}

}  // namespace sidet
