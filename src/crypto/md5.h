// MD5 (RFC 1321), implemented from scratch.
//
// The paper found (by reversing the Xiaomi APK's native library) that the
// gateway protocol uses MD5 for key derivation and packet checksumming; our
// miio-style protocol substrate does the same. MD5 is of course not a secure
// hash — it is here because the modelled protocol uses it, not as a general
// primitive.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>

#include "util/bytes.h"

namespace sidet {

using Md5Digest = std::array<std::uint8_t, 16>;

// Incremental interface for streaming input.
class Md5 {
 public:
  Md5();

  void Update(std::span<const std::uint8_t> data);
  void Update(std::string_view text);
  Md5Digest Finish();

 private:
  void ProcessBlock(const std::uint8_t* block);

  std::uint32_t state_[4];
  std::uint64_t total_bytes_ = 0;
  std::uint8_t pending_[64];
  std::size_t pending_size_ = 0;
};

// One-shot helpers.
Md5Digest Md5Sum(std::span<const std::uint8_t> data);
Md5Digest Md5Sum(std::string_view text);
std::string Md5Hex(std::string_view text);

}  // namespace sidet
