#include "crypto/miio_kdf.h"

#include "util/bytes.h"

namespace sidet {

MiioKeyMaterial DeriveMiioKeys(const MiioToken& token) {
  MiioKeyMaterial material;

  const Md5Digest key_digest = Md5Sum(std::span<const std::uint8_t>(token.data(), token.size()));
  material.key = key_digest;

  Md5 iv_hasher;
  iv_hasher.Update(std::span<const std::uint8_t>(key_digest.data(), key_digest.size()));
  iv_hasher.Update(std::span<const std::uint8_t>(token.data(), token.size()));
  material.iv = iv_hasher.Finish();

  return material;
}

MiioToken TokenForDevice(std::uint64_t device_id) {
  ByteWriter writer;
  writer.Raw("sidet-device-token:");
  writer.U64Be(device_id);
  return Md5Sum(std::span<const std::uint8_t>(writer.data().data(), writer.data().size()));
}

}  // namespace sidet
