// Key/IV derivation for the miio-style gateway protocol.
//
// The real Xiaomi protocol (as recovered in the paper by reversing the APK's
// so-library) derives the AES material from the 16-byte device token:
//   key = MD5(token)
//   iv  = MD5(key || token)
// and checksums packets with MD5 over (header || token || payload). We
// reproduce that scheme exactly.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "crypto/aes.h"
#include "crypto/md5.h"

namespace sidet {

using MiioToken = std::array<std::uint8_t, 16>;

struct MiioKeyMaterial {
  AesKey128 key;
  AesIv iv;
};

MiioKeyMaterial DeriveMiioKeys(const MiioToken& token);

// Deterministically derives a device token from a device id — the simulator's
// stand-in for the per-device factory token printed on real hardware.
MiioToken TokenForDevice(std::uint64_t device_id);

}  // namespace sidet
