// AES-128 block cipher with CBC mode and PKCS#7 padding, from scratch
// (FIPS 197 / NIST SP 800-38A).
//
// This mirrors the payload encryption the paper recovered from the Xiaomi
// communication stack ("MD5 and AES_CBC encryption algorithms", §IV.B.1).
// Table-free S-box computation is NOT attempted; we use the standard S-box
// tables — this is a protocol substrate, not a hardened crypto library.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "util/bytes.h"
#include "util/result.h"

namespace sidet {

inline constexpr std::size_t kAesBlockSize = 16;
using AesKey128 = std::array<std::uint8_t, 16>;
using AesIv = std::array<std::uint8_t, 16>;
using AesBlock = std::array<std::uint8_t, kAesBlockSize>;

// Expanded-key AES-128 engine; one instance per key.
class Aes128 {
 public:
  explicit Aes128(const AesKey128& key);

  void EncryptBlock(const std::uint8_t in[kAesBlockSize], std::uint8_t out[kAesBlockSize]) const;
  void DecryptBlock(const std::uint8_t in[kAesBlockSize], std::uint8_t out[kAesBlockSize]) const;

 private:
  // 11 round keys × 16 bytes.
  std::array<std::uint8_t, 176> round_keys_;
};

// CBC with PKCS#7: output length is input length rounded up to the next
// multiple of 16 (always at least one padding byte).
Bytes AesCbcEncrypt(const AesKey128& key, const AesIv& iv, std::span<const std::uint8_t> plain);

// Fails on: empty/ragged ciphertext, invalid padding byte, padding bytes
// that do not match. Wrong key/IV typically surfaces as a padding error.
Result<Bytes> AesCbcDecrypt(const AesKey128& key, const AesIv& iv,
                            std::span<const std::uint8_t> cipher);

// Timing-safe equality for MACs/checksums.
bool ConstantTimeEquals(std::span<const std::uint8_t> a, std::span<const std::uint8_t> b);

}  // namespace sidet
