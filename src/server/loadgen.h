// Load generator for the gateway: closed-loop (fixed concurrency with a
// pipelining window — throughput-oriented) and open-loop (a fixed offered
// rate regardless of completions — the honest way to measure shed rate and
// tail latency under overload, since closed-loop clients slow down with the
// server and hide queueing collapse).
//
// Requests are pre-rendered "tails" (a judge request body minus the `id`
// member); each sender stamps a fresh id per send and correlates responses
// by the echoed id, so pipelined and out-of-band (shed/error) responses
// never confuse the latency accounting.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sensors/snapshot.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace sidet {

// Renders the body of a judge request with the leading '{' and `id` member
// left for the sender to prepend: `"op":"judge","home":...,...}`.
// `sampled` stamps `"sampled":true` so a tracing gateway force-retains the
// request's exemplar (tail-sampling override; ignored by older servers).
std::string JudgeRequestTail(const std::string& home, const std::string& instruction,
                             SimTime time, const SensorSnapshot* snapshot = nullptr,
                             bool sampled = false);

struct LoadOptions {
  int connections = 4;
  int pipeline = 32;         // closed-loop: in-flight window per connection
  double offered_rps = 0.0;  // > 0 switches to open loop at this total rate
  std::int64_t duration_ms = 1000;
  int read_timeout_ms = 5000;
  // Collects the per-second timeline (LoadReport::timeline): sends, ok/shed/
  // error responses and latency percentiles bucketed by elapsed second. Off
  // by default — buckets hold raw latency samples while the run is live.
  bool timeline = false;
  // Round-robined per send; must be non-empty.
  std::vector<std::string> request_tails;
  // > 0 switches tail selection from round-robin to Zipf(zipf_s) popularity
  // over the tail list: rank r (1-based, tail order) is drawn with
  // probability proportional to r^-s — the fleet bench's skewed key
  // distribution. Each sender forks its own deterministic stream from
  // (zipf_seed, sender index), so a run's request multiset is reproducible
  // given the same seed and connection count, independent of timing.
  double zipf_s = 0.0;
  std::uint64_t zipf_seed = 1;
};

// The Zipf sampler's pieces, exported for benches/tests that need the same
// deterministic draw outside a load run (e.g. pre-computing per-shard home
// popularity): cumulative mass over ranks 1..n (back() == 1.0), and one
// inverse-CDF draw returning an index in [0, cdf.size()).
std::vector<double> ZipfCdf(std::size_t n, double s);
std::size_t ZipfPick(const std::vector<double>& cdf, Rng& rng);

// One elapsed second of a timeline-enabled run, aggregated across senders.
// `ok` per one-second bucket IS that second's throughput in rps; latency
// percentiles cover the ok responses that completed within the second.
struct TimelineBucket {
  std::int64_t second = 0;  // offset from run start
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double max_ms = 0.0;
};

struct LoadReport {
  std::uint64_t sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t ok = 0;
  std::uint64_t allowed = 0;
  std::uint64_t blocked = 0;
  std::uint64_t shed = 0;    // in-band 429s (queue or connection backlog)
  std::uint64_t errors = 0;  // every other non-ok response or transport failure
  std::uint64_t traced = 0;  // ok responses carrying a server trace id
  double wall_seconds = 0.0;
  double offered_rps = 0.0;   // open loop: configured; closed loop: sent/wall
  double throughput_rps = 0.0;  // ok responses per second of wall time
  double shed_rate = 0.0;       // shed / responses
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double mean_ms = 0.0;
  double max_ms = 0.0;
  // Per-second progression (empty unless LoadOptions::timeline). The tail
  // bucket may extend past the configured duration: drain-phase responses
  // land in the second they actually completed.
  std::vector<TimelineBucket> timeline;

  Json ToJson() const;
};

// Drives the gateway at host:port. Spawns `connections` sender threads and
// blocks until the run completes and every outstanding response is reaped
// (or times out into `errors`).
LoadReport RunLoad(const std::string& host, std::uint16_t port, const LoadOptions& options);

}  // namespace sidet
