#include "server/loadgen.h"

#include <algorithm>
#include <cmath>
#include <thread>
#include <unordered_map>

#include "server/client.h"
#include "telemetry/trace.h"

namespace sidet {

std::string JudgeRequestTail(const std::string& home, const std::string& instruction,
                             SimTime time, const SensorSnapshot* snapshot, bool sampled) {
  Json body = Json::Object();
  body["op"] = "judge";
  body["home"] = home;
  body["instruction"] = instruction;
  body["time"] = time.seconds();
  if (snapshot != nullptr) body["snapshot"] = snapshot->ToJson();
  if (sampled) body["sampled"] = true;
  const std::string line = body.Dump();
  // Strip the leading '{' so the sender can prepend `{"id":N,`.
  return line.substr(1);
}

std::vector<double> ZipfCdf(std::size_t n, double s) {
  std::vector<double> cdf(n, 0.0);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
    cdf[r] = total;
  }
  for (double& mass : cdf) mass /= total;
  if (!cdf.empty()) cdf.back() = 1.0;  // close the tail against rounding
  return cdf;
}

std::size_t ZipfPick(const std::vector<double>& cdf, Rng& rng) {
  const double u = rng.UniformDouble();
  const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
  return it == cdf.end() ? cdf.size() - 1
                         : static_cast<std::size_t>(it - cdf.begin());
}

namespace {

// The reap path scans response fields straight off the line instead of
// building a Json tree: the load generator must stay cheaper than the server
// it measures, especially when both share cores. Unexpected shapes fall back
// to the full parser.
bool ScanUintField(std::string_view line, std::string_view needle, std::uint64_t* out) {
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return false;
  std::size_t i = at + needle.size();
  if (i >= line.size() || line[i] < '0' || line[i] > '9') return false;
  std::uint64_t value = 0;
  while (i < line.size() && line[i] >= '0' && line[i] <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(line[i] - '0');
    ++i;
  }
  *out = value;
  return true;
}

// -1 = field absent, 0 = false, 1 = true.
int ScanBoolField(std::string_view line, std::string_view needle) {
  const std::size_t at = line.find(needle);
  if (at == std::string_view::npos) return -1;
  return line.compare(at + needle.size(), 4, "true") == 0 ? 1 : 0;
}

// One sender's slice of one elapsed second (timeline mode only); merged with
// the other senders' same-second slices at join time.
struct WorkerBucket {
  std::uint64_t sent = 0;
  std::uint64_t ok = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::vector<double> latencies_ms;
};

// One sender's tally, merged under a mutex-free join (each thread owns its
// own slot).
struct WorkerResult {
  std::uint64_t sent = 0;
  std::uint64_t responses = 0;
  std::uint64_t ok = 0;
  std::uint64_t allowed = 0;
  std::uint64_t blocked = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t traced = 0;
  std::vector<double> latencies_ms;  // ok responses only
  std::vector<WorkerBucket> buckets;  // indexed by elapsed second (timeline)
};

class Sender {
 public:
  Sender(GatewayClient client, const LoadOptions& options, int index,
         std::int64_t run_start_us, const std::vector<double>* zipf_cdf)
      : client_(std::move(client)),
        options_(options),
        index_(index),
        run_start_us_(run_start_us),
        zipf_cdf_(zipf_cdf),
        zipf_rng_(Rng(options.zipf_seed).Fork(static_cast<std::uint64_t>(index))) {}

  WorkerResult Run() {
    const std::int64_t deadline_us =
        MonotonicMicros() + options_.duration_ms * 1000;
    if (options_.offered_rps > 0.0) {
      OpenLoop(deadline_us);
    } else {
      ClosedLoop(deadline_us);
    }
    Drain();
    return std::move(result_);
  }

 private:
  // The timeline slot for an event at `now_us`, growing the bucket vector to
  // cover it (drain-phase responses land past the configured duration).
  WorkerBucket& Bucket(std::int64_t now_us) {
    const std::int64_t second = std::max<std::int64_t>(0, (now_us - run_start_us_) / 1000000);
    if (result_.buckets.size() <= static_cast<std::size_t>(second)) {
      result_.buckets.resize(static_cast<std::size_t>(second) + 1);
    }
    return result_.buckets[static_cast<std::size_t>(second)];
  }

  // Stages one request into the send buffer; FlushSends ships the batch.
  void StageOne() {
    // Ids are unique per sender (stride = connection count) so correlation
    // maps never collide across threads.
    const std::uint64_t id = next_id_;
    next_id_ += static_cast<std::uint64_t>(options_.connections);
    sndbuf_ += "{\"id\":";
    sndbuf_ += std::to_string(id);
    sndbuf_ += ',';
    if (zipf_cdf_ != nullptr) {
      sndbuf_ += options_.request_tails[ZipfPick(*zipf_cdf_, zipf_rng_)];
    } else {
      sndbuf_ += options_.request_tails[tail_rr_];
      tail_rr_ = (tail_rr_ + 1) % options_.request_tails.size();
    }
    sndbuf_ += '\n';
    const std::int64_t now_us = MonotonicMicros();
    send_us_[id] = now_us;
    ++result_.sent;
    ++outstanding_;
    if (options_.timeline) ++Bucket(now_us).sent;
  }

  // Writes every staged request in one syscall-sized burst.
  bool FlushSends() {
    if (sndbuf_.empty()) return true;
    const bool ok = client_.SendFramed(sndbuf_).ok();
    if (!ok) ++result_.errors;
    sndbuf_.clear();
    return ok;
  }

  // Reaps one response line; returns false on transport failure/timeout.
  bool ReapOne(int timeout_ms) {
    Result<std::string_view> line = client_.ReadLineView(timeout_ms);
    if (!line.ok()) {
      ++result_.errors;
      return false;
    }
    ++result_.responses;
    if (outstanding_ > 0) --outstanding_;
    const std::string_view text = line.value();
    std::uint64_t id = 0;
    std::uint64_t code = 0;
    int ok = ScanBoolField(text, "\"ok\":");
    int allowed = ScanBoolField(text, "\"allowed\":");
    if (!ScanUintField(text, "\"id\":", &id) || ok < 0) {
      Result<Json> parsed = Json::Parse(text);
      if (!parsed.ok() || !parsed.value().is_object()) {
        ++result_.errors;
        return true;
      }
      const Json& response = parsed.value();
      id = static_cast<std::uint64_t>(response.number_or("id", 0));
      ok = response.bool_or("ok", false) ? 1 : 0;
      allowed = response.bool_or("allowed", false) ? 1 : 0;
      code = static_cast<std::uint64_t>(response.number_or("code", 0));
    } else if (ok == 0) {
      (void)ScanUintField(text, "\"code\":", &code);
    }
    const std::int64_t now_us = MonotonicMicros();
    WorkerBucket* bucket = options_.timeline ? &Bucket(now_us) : nullptr;
    const auto sent_at = send_us_.find(id);
    if (ok == 1) {
      ++result_.ok;
      if (bucket != nullptr) ++bucket->ok;
      if (text.find("\"trace\":\"") != std::string_view::npos) ++result_.traced;
      if (allowed == 1) {
        ++result_.allowed;
      } else {
        ++result_.blocked;
      }
      if (sent_at != send_us_.end()) {
        const double latency_ms = static_cast<double>(now_us - sent_at->second) * 1e-3;
        result_.latencies_ms.push_back(latency_ms);
        if (bucket != nullptr) bucket->latencies_ms.push_back(latency_ms);
      }
    } else if (code == 429) {
      ++result_.shed;
      if (bucket != nullptr) ++bucket->shed;
    } else {
      ++result_.errors;
      if (bucket != nullptr) ++bucket->errors;
    }
    if (sent_at != send_us_.end()) send_us_.erase(sent_at);
    return true;
  }

  void ClosedLoop(std::int64_t deadline_us) {
    while (MonotonicMicros() < deadline_us) {
      while (outstanding_ < options_.pipeline && MonotonicMicros() < deadline_us) {
        StageOne();
      }
      if (!FlushSends()) return;
      if (outstanding_ > 0 && !ReapOne(options_.read_timeout_ms)) return;
    }
  }

  void OpenLoop(std::int64_t deadline_us) {
    const double per_connection_rps =
        options_.offered_rps / std::max(1, options_.connections);
    const std::int64_t period_us =
        std::max<std::int64_t>(1, static_cast<std::int64_t>(1e6 / per_connection_rps));
    // Staggered start de-synchronizes the senders' schedules.
    std::int64_t next_us =
        MonotonicMicros() + (period_us * index_) / std::max(1, options_.connections);
    while (MonotonicMicros() < deadline_us) {
      const std::int64_t now_us = MonotonicMicros();
      if (now_us >= next_us) {
        StageOne();
        if (!FlushSends()) return;
        next_us += period_us;  // absolute schedule: late sends do not thin the rate
        continue;
      }
      const int wait_ms =
          static_cast<int>(std::min<std::int64_t>((next_us - now_us) / 1000, 5));
      Result<bool> readable = client_.Readable(wait_ms);
      if (readable.ok() && readable.value()) {
        if (!ReapOne(options_.read_timeout_ms)) return;
      }
    }
  }

  void Drain() {
    while (outstanding_ > 0) {
      if (!ReapOne(options_.read_timeout_ms)) return;
    }
  }

  GatewayClient client_;
  const LoadOptions& options_;
  const int index_;
  const std::int64_t run_start_us_;  // shared epoch for timeline buckets
  std::uint64_t next_id_ = 1 + static_cast<std::uint64_t>(index_);
  std::size_t tail_rr_ = 0;
  const std::vector<double>* zipf_cdf_;  // null = round-robin
  Rng zipf_rng_;
  int outstanding_ = 0;
  WorkerResult result_;
  std::string sndbuf_;  // staged request lines awaiting one batched write
  std::unordered_map<std::uint64_t, std::int64_t> send_us_;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const double rank = q * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

Json LoadReport::ToJson() const {
  Json out = Json::Object();
  out["sent"] = sent;
  out["responses"] = responses;
  out["ok"] = ok;
  out["allowed"] = allowed;
  out["blocked"] = blocked;
  out["shed"] = shed;
  out["errors"] = errors;
  out["traced"] = traced;
  out["wall_seconds"] = wall_seconds;
  out["offered_rps"] = offered_rps;
  out["throughput_rps"] = throughput_rps;
  out["shed_rate"] = shed_rate;
  out["latency_ms"] = [&] {
    Json latency = Json::Object();
    latency["p50"] = p50_ms;
    latency["p95"] = p95_ms;
    latency["p99"] = p99_ms;
    latency["mean"] = mean_ms;
    latency["max"] = max_ms;
    return latency;
  }();
  if (!timeline.empty()) {
    Json seconds = Json::Array();
    for (const TimelineBucket& bucket : timeline) {
      Json entry = Json::Object();
      entry["second"] = bucket.second;
      entry["sent"] = bucket.sent;
      entry["ok"] = bucket.ok;
      entry["shed"] = bucket.shed;
      entry["errors"] = bucket.errors;
      entry["p50_ms"] = bucket.p50_ms;
      entry["p95_ms"] = bucket.p95_ms;
      entry["max_ms"] = bucket.max_ms;
      seconds.as_array().push_back(std::move(entry));
    }
    out["timeline"] = std::move(seconds);
  }
  return out;
}

LoadReport RunLoad(const std::string& host, std::uint16_t port, const LoadOptions& options) {
  LoadReport report;
  if (options.request_tails.empty() || options.connections <= 0) return report;

  std::vector<GatewayClient> clients;
  clients.reserve(static_cast<std::size_t>(options.connections));
  for (int i = 0; i < options.connections; ++i) {
    Result<GatewayClient> client = GatewayClient::Connect(host, port);
    if (!client.ok()) {
      ++report.errors;
      return report;
    }
    clients.push_back(std::move(client).value());
  }

  std::vector<WorkerResult> results(static_cast<std::size_t>(options.connections));
  // Shared, read-only across senders; each sender draws from its own forked
  // stream, so the popularity law is common but the pick sequences never
  // couple threads.
  std::vector<double> zipf_cdf;
  if (options.zipf_s > 0.0) zipf_cdf = ZipfCdf(options.request_tails.size(), options.zipf_s);
  const std::int64_t start_us = MonotonicMicros();
  {
    std::vector<std::thread> threads;
    threads.reserve(clients.size());
    for (int i = 0; i < options.connections; ++i) {
      threads.emplace_back([&, i] {
        Sender sender(std::move(clients[static_cast<std::size_t>(i)]), options, i,
                      start_us, zipf_cdf.empty() ? nullptr : &zipf_cdf);
        results[static_cast<std::size_t>(i)] = sender.Run();
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  report.wall_seconds = static_cast<double>(MonotonicMicros() - start_us) * 1e-6;

  std::vector<double> latencies;
  std::vector<WorkerBucket> merged;  // per-second union of the senders
  for (const WorkerResult& result : results) {
    if (result.buckets.size() > merged.size()) merged.resize(result.buckets.size());
    for (std::size_t s = 0; s < result.buckets.size(); ++s) {
      const WorkerBucket& bucket = result.buckets[s];
      merged[s].sent += bucket.sent;
      merged[s].ok += bucket.ok;
      merged[s].shed += bucket.shed;
      merged[s].errors += bucket.errors;
      merged[s].latencies_ms.insert(merged[s].latencies_ms.end(),
                                    bucket.latencies_ms.begin(),
                                    bucket.latencies_ms.end());
    }
    report.sent += result.sent;
    report.responses += result.responses;
    report.ok += result.ok;
    report.allowed += result.allowed;
    report.blocked += result.blocked;
    report.shed += result.shed;
    report.errors += result.errors;
    report.traced += result.traced;
    latencies.insert(latencies.end(), result.latencies_ms.begin(),
                     result.latencies_ms.end());
  }
  std::sort(latencies.begin(), latencies.end());
  report.offered_rps = options.offered_rps > 0.0
                           ? options.offered_rps
                           : static_cast<double>(report.sent) /
                                 std::max(report.wall_seconds, 1e-9);
  report.throughput_rps =
      static_cast<double>(report.ok) / std::max(report.wall_seconds, 1e-9);
  report.shed_rate = report.responses == 0
                         ? 0.0
                         : static_cast<double>(report.shed) /
                               static_cast<double>(report.responses);
  report.p50_ms = Percentile(latencies, 0.50);
  report.p95_ms = Percentile(latencies, 0.95);
  report.p99_ms = Percentile(latencies, 0.99);
  report.max_ms = latencies.empty() ? 0.0 : latencies.back();
  if (!latencies.empty()) {
    double sum = 0.0;
    for (const double value : latencies) sum += value;
    report.mean_ms = sum / static_cast<double>(latencies.size());
  }
  report.timeline.reserve(merged.size());
  for (std::size_t s = 0; s < merged.size(); ++s) {
    WorkerBucket& bucket = merged[s];
    TimelineBucket entry;
    entry.second = static_cast<std::int64_t>(s);
    entry.sent = bucket.sent;
    entry.ok = bucket.ok;
    entry.shed = bucket.shed;
    entry.errors = bucket.errors;
    std::sort(bucket.latencies_ms.begin(), bucket.latencies_ms.end());
    entry.p50_ms = Percentile(bucket.latencies_ms, 0.50);
    entry.p95_ms = Percentile(bucket.latencies_ms, 0.95);
    entry.max_ms = bucket.latencies_ms.empty() ? 0.0 : bucket.latencies_ms.back();
    report.timeline.push_back(entry);
  }
  return report;
}

}  // namespace sidet
