#include "server/gateway.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <deque>
#include <mutex>
#include <vector>

#include "replay/drift_monitor.h"
#include "telemetry/exporters.h"
#include "telemetry/slo.h"
#include "telemetry/timeseries.h"
#include "util/log.h"

namespace sidet {

// Per-connection state. The loop thread owns fd/rdbuf/wrbuf; batch-worker
// completions only touch the mutex-guarded outbox (and never the fd), so the
// two sides share nothing unguarded.
struct Gateway::Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  int fd;
  std::string rdbuf;
  std::string wrbuf;  // framed responses awaiting write; loop-owned
  std::size_t wroff = 0;
  bool closing = false;  // close once wrbuf flushes

  std::mutex mu;       // guards outbox + outbox_traces
  std::string outbox;  // responses staged by batch completions
  std::atomic<std::size_t> inflight{0};

  // Writeback attribution (tracing only). Byte positions are absolute
  // counters over the connection's lifetime, independent of wrbuf
  // compaction: appended_bytes advances on every wrbuf append,
  // written_bytes on every successful ::write. A trace finalizes when the
  // socket has absorbed its response's last byte.
  std::uint64_t appended_bytes = 0;  // loop-owned
  std::uint64_t written_bytes = 0;   // loop-owned
  struct OutboxTrace {  // staged by completions, end relative to outbox
    std::size_t rel_end;
    std::shared_ptr<RequestTrace> trace;
  };
  std::vector<OutboxTrace> outbox_traces;  // guarded by mu
  std::vector<OutboxTrace> trace_scratch;  // loop-owned; ping-pongs capacity
                                           // with outbox_traces on each drain
  struct TraceWrite {  // loop-owned, ascending end_bytes
    std::uint64_t end_bytes;
    std::shared_ptr<RequestTrace> trace;
  };
  std::deque<TraceWrite> trace_writes;
};

namespace {

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Error(std::string("fcntl(O_NONBLOCK): ") + std::strerror(errno));
  }
  return Status::Ok();
}

}  // namespace

Gateway::Gateway(GatewayRouter& router, const InstructionRegistry& instructions,
                 GatewayConfig config, MetricsRegistry* metrics, SpanTracer* tracer,
                 RequestTracing* tracing)
    : router_(router),
      instructions_(instructions),
      config_(std::move(config)),
      metrics_(metrics),
      tracer_(tracer),
      tracing_(tracing) {
  if (metrics_ != nullptr) {
    m_connections_ = metrics_->GetCounter("sidet_gateway_connections_total", "",
                                          "Accepted TCP connections");
    m_requests_ =
        metrics_->GetCounter("sidet_gateway_requests_total", "", "Parsed request lines");
    m_responses_ =
        metrics_->GetCounter("sidet_gateway_responses_total", "", "Response lines queued");
    m_parse_errors_ = metrics_->GetCounter("sidet_gateway_parse_errors_total", "",
                                           "Request lines rejected as malformed");
    m_shed_ = metrics_->GetCounter("sidet_gateway_backlog_shed_total", "",
                                   "Judge requests shed by per-connection backlog");
    m_open_connections_ =
        metrics_->GetGauge("sidet_gateway_open_connections", "", "Live TCP connections");
    m_uptime_seconds_ = metrics_->GetGauge("sidet_gateway_uptime_seconds", "",
                                           "Seconds since the gateway started serving");
    ExportBuildInfo(*metrics_);
    m_judge_e2e_seconds_ =
        metrics_->GetHistogram("sidet_gateway_judge_e2e_seconds", "", {},
                               "Judge request admission-to-verdict wall time");
  }
}

Gateway::~Gateway() { Shutdown(); }

Status Gateway::Start() {
  if (running_.load()) return Error("gateway already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) return Error(std::string("socket: ") + std::strerror(errno));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.host.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error("invalid gateway host '" + config_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error("bind " + config_.host + ":" + std::to_string(config_.port) + ": " + why);
  }
  // Binding port 0 delegates port choice to the kernel; read the result back
  // so callers (tests, benches, parallel CTest jobs) never race on a port.
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &bound_len) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(std::string("getsockname: ") + why);
  }
  port_ = ntohs(bound.sin_port);
  if (::listen(listen_fd_, config_.backlog) < 0) {
    const std::string why = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(std::string("listen: ") + why);
  }
  if (const Status nb = SetNonBlocking(listen_fd_); !nb.ok()) return nb;

  int pipe_fds[2];
  if (::pipe(pipe_fds) < 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Error(std::string("pipe: ") + std::strerror(errno));
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];
  (void)SetNonBlocking(wake_read_fd_);
  (void)SetNonBlocking(wake_write_fd_);

  running_.store(true);
  stop_accepting_.store(false);
  finish_.store(false);
  started_us_.store(MonotonicMicros());
  loop_ = std::thread([this] { Loop(); });
  LogInfo("gateway: serving on " + config_.host + ":" + std::to_string(port_));
  return Status::Ok();
}

void Gateway::Wake() {
  // Coalesce: while one wake byte is in flight, further wakes are free. The
  // loop clears the flag after draining the pipe and before collecting
  // outboxes, so a completion that appends after the clear writes a fresh
  // byte and nothing staged is ever stranded.
  if (wake_pending_.exchange(true, std::memory_order_acq_rel)) return;
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
}

void Gateway::Shutdown() {
  if (!running_.load()) return;
  // Phase 1: stop taking new connections/requests.
  stop_accepting_.store(true);
  Wake();
  // Phase 2: flush every admitted judge task; completions stage responses
  // into connection outboxes and wake the (still running) loop.
  router_.DrainAll();
  // Phase 3: let the loop write out the final responses, then exit.
  finish_.store(true);
  Wake();
  if (loop_.joinable()) loop_.join();
  running_.store(false);
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (wake_read_fd_ >= 0) ::close(wake_read_fd_);
  if (wake_write_fd_ >= 0) ::close(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  LogInfo("gateway: drained and stopped");
}

double Gateway::UptimeSeconds() const {
  const std::int64_t started = started_us_.load(std::memory_order_relaxed);
  if (started == 0) return 0.0;
  return static_cast<double>(MonotonicMicros() - started) * 1e-6;
}

void Gateway::Loop() {
  std::int64_t finish_seen_us = -1;
  std::vector<pollfd> fds;
  std::vector<int> fd_conns;  // parallel: connection fd per pollfd (or -1)
  for (;;) {
    const bool finishing = finish_.load();
    // Refreshed every loop turn (>= every poll timeout), so a sampler
    // snapshotting the registry always sees live uptime.
    if (m_uptime_seconds_ != nullptr) m_uptime_seconds_->Set(UptimeSeconds());
    // Move completion outboxes into loop-owned write buffers so pending
    // output is visible to the POLLOUT decision below.
    for (auto& [fd, conn] : connections_) {
      std::string staged;
      std::vector<Connection::OutboxTrace>& staged_traces = conn->trace_scratch;
      staged_traces.clear();
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        staged = std::move(conn->outbox);
        conn->outbox.clear();
        if (!conn->outbox_traces.empty()) staged_traces.swap(conn->outbox_traces);
      }
      // Rebase staged trace offsets (relative to the outbox string) onto the
      // connection's absolute appended-bytes timeline before the append.
      for (Connection::OutboxTrace& t : staged_traces) {
        conn->trace_writes.push_back(
            {conn->appended_bytes + t.rel_end, std::move(t.trace)});
      }
      conn->wrbuf += staged;
      conn->appended_bytes += staged.size();
    }

    bool output_pending = false;
    fds.clear();
    fd_conns.clear();
    if (listen_fd_ >= 0 && !stop_accepting_.load() &&
        connections_.size() < config_.max_connections) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conns.push_back(-1);
    }
    fds.push_back({wake_read_fd_, POLLIN, 0});
    fd_conns.push_back(-1);
    for (auto& [fd, conn] : connections_) {
      short events = 0;
      if (!conn->closing) events |= POLLIN;
      if (conn->wrbuf.size() > conn->wroff) {
        events |= POLLOUT;
        output_pending = true;
      }
      fds.push_back({fd, events, 0});
      fd_conns.push_back(fd);
    }

    if (finishing) {
      if (finish_seen_us < 0) finish_seen_us = MonotonicMicros();
      const bool timed_out =
          MonotonicMicros() - finish_seen_us > config_.drain_timeout_ms * 1000;
      if (!output_pending || timed_out) break;
    }

    const int ready = ::poll(fds.data(), fds.size(), /*timeout_ms=*/50);
    if (ready < 0 && errno != EINTR) break;

    std::vector<int> to_close;
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents == 0) continue;
      if (fds[i].fd == wake_read_fd_) {
        char buffer[256];
        while (::read(wake_read_fd_, buffer, sizeof(buffer)) > 0) {
        }
        wake_pending_.store(false, std::memory_order_release);
        continue;
      }
      if (fds[i].fd == listen_fd_ && fd_conns[i] < 0) {
        AcceptNew();
        continue;
      }
      const auto it = connections_.find(fd_conns[i]);
      if (it == connections_.end()) continue;
      const std::shared_ptr<Connection>& conn = it->second;
      bool alive = true;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) alive = false;
      if (alive && (fds[i].revents & (POLLIN | POLLHUP)) != 0) alive = ServiceInput(conn);
      if (alive && (fds[i].revents & POLLOUT) != 0) alive = FlushOutput(conn);
      if (alive && conn->closing && conn->wrbuf.size() <= conn->wroff &&
          conn->inflight.load() == 0) {
        alive = false;  // deferred close: everything owed has been written
      }
      if (!alive) to_close.push_back(fds[i].fd);
    }
    for (const int fd : to_close) {
      const auto doomed = connections_.find(fd);
      if (doomed != connections_.end()) {
        FinalizeConnectionTraces(*doomed->second);
        connections_.erase(doomed);
      }
    }
    if (m_open_connections_ != nullptr) {
      m_open_connections_->Set(static_cast<double>(connections_.size()));
    }
  }
  for (auto& [fd, conn] : connections_) FinalizeConnectionTraces(*conn);
  connections_.clear();
  if (m_open_connections_ != nullptr) m_open_connections_->Set(0.0);
}

void Gateway::FinalizeConnectionTraces(Connection& conn) {
  if (tracing_ == nullptr) return;
  // Sweep both the loop-side registrations and anything a completion staged
  // that the loop never got to move; their bytes will never hit the socket,
  // so the writeback stage ends at teardown time.
  std::vector<Connection::OutboxTrace> staged;
  {
    std::lock_guard<std::mutex> lock(conn.mu);
    staged.swap(conn.outbox_traces);
  }
  const std::int64_t now_us = MonotonicMicros();
  for (Connection::TraceWrite& pending : conn.trace_writes) {
    pending.trace->write_us = now_us;
    tracing_->Finalize(pending.trace);
  }
  conn.trace_writes.clear();
  for (Connection::OutboxTrace& pending : staged) {
    pending.trace->write_us = now_us;
    tracing_->Finalize(pending.trace);
  }
}

void Gateway::AcceptNew() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error; poll retries
    if (connections_.size() >= config_.max_connections) {
      ::close(fd);
      return;
    }
    if (!SetNonBlocking(fd).ok()) {
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    connections_.emplace(fd, std::make_shared<Connection>(fd));
    connections_total_.fetch_add(1, std::memory_order_relaxed);
    if (m_connections_ != nullptr) m_connections_->Increment();
  }
}

bool Gateway::ServiceInput(const std::shared_ptr<Connection>& conn) {
  char buffer[16384];
  for (;;) {
    const ssize_t n = ::read(conn->fd, buffer, sizeof(buffer));
    if (n > 0) {
      conn->rdbuf.append(buffer, static_cast<std::size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buffer))) break;
      continue;
    }
    if (n == 0) return false;  // peer closed
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }

  std::size_t start = 0;
  for (;;) {
    const std::size_t newline = conn->rdbuf.find('\n', start);
    if (newline == std::string::npos) break;
    std::string_view line(conn->rdbuf.data() + start, newline - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    if (!line.empty()) HandleLine(conn, line);
    start = newline + 1;
    if (conn->closing) break;
  }
  conn->rdbuf.erase(0, start);
  if (conn->rdbuf.size() > config_.max_line_bytes) {
    parse_errors_total_.fetch_add(1, std::memory_order_relaxed);
    if (m_parse_errors_ != nullptr) m_parse_errors_->Increment();
    Reply(conn, WireErrorResponse(0, kWireBadRequest, "request line too long"));
    conn->closing = true;
  }
  return FlushOutput(conn);
}

void Gateway::HandleLine(const std::shared_ptr<Connection>& conn, std::string_view line) {
  requests_total_.fetch_add(1, std::memory_order_relaxed);
  if (m_requests_ != nullptr) m_requests_->Increment();

  // Hot path first: most traffic is snapshot-less judge lines, and the loop
  // thread parses every request, so the scanner is load-bearing.
  WireRequest request;
  if (!FastParseJudgeRequest(line, &request)) {
    Result<WireRequest> parsed = ParseWireRequest(line);
    if (!parsed.ok()) {
      parse_errors_total_.fetch_add(1, std::memory_order_relaxed);
      if (m_parse_errors_ != nullptr) m_parse_errors_->Increment();
      Reply(conn, WireErrorResponse(0, kWireBadRequest, parsed.error().message()));
      return;
    }
    request = std::move(parsed).value();
  }

  switch (request.op) {
    case GatewayOp::kJudge:
      HandleJudge(conn, std::move(request));
      return;
    case GatewayOp::kContext: {
      const Status set = router_.SetContext(request.home, *std::move(request.snapshot));
      Reply(conn, set.ok() ? WireOkResponse(request.id)
                           : WireErrorResponse(request.id, kWireNotFound,
                                               set.error().message()));
      return;
    }
    case GatewayOp::kHealth: {
      Json body = Json::Object();
      body["status"] = stop_accepting_.load() ? "draining" : "serving";
      body["homes"] = router_.Homes().size();
      body["lanes_resident"] = router_.resident_lanes();
      body["lane_evictions"] = router_.lane_evictions();
      body["model_cold_loads"] = router_.model_cold_loads();
      body["open_connections"] = connections_.size();
      body["uptime_seconds"] = UptimeSeconds();
      if (ops_.timeseries != nullptr) {
        body["scorecard"] = HealthScorecard(request.window_seconds);
      }
      Reply(conn, WireObjectResponse(request.id, std::move(body)));
      return;
    }
    case GatewayOp::kStats: {
      Reply(conn, WireObjectResponse(request.id, StatsJson()));
      return;
    }
    case GatewayOp::kMetrics: {
      if (metrics_ == nullptr) {
        Reply(conn, WireErrorResponse(request.id, kWireNotFound,
                                      "gateway started without a metrics registry"));
        return;
      }
      Json body = Json::Object();
      body["metrics"] = PrometheusText(*metrics_);
      Reply(conn, WireObjectResponse(request.id, std::move(body)));
      return;
    }
    case GatewayOp::kReload: {
      const Status reloaded = router_.ReloadModel(request.home, request.model_path);
      Reply(conn, reloaded.ok()
                      ? WireOkResponse(request.id)
                      : WireErrorResponse(request.id, kWireNotFound,
                                          reloaded.error().message()));
      return;
    }
    case GatewayOp::kTrace: {
      if (tracing_ == nullptr) {
        Reply(conn, WireErrorResponse(request.id, kWireNotFound,
                                      "gateway started without request tracing"));
        return;
      }
      Json body = Json::Object();
      if (request.chrome_trace) {
        body["trace"] = ChromeTraceJson(tracing_->exemplars());
      } else {
        body["exemplars"] = tracing_->exemplars().ToJson();
      }
      Reply(conn, WireObjectResponse(request.id, std::move(body)));
      return;
    }
    case GatewayOp::kExplain:
      HandleExplain(conn, request);
      return;
    case GatewayOp::kQuery:
      HandleQuery(conn, request);
      return;
  }
}

void Gateway::HandleExplain(const std::shared_ptr<Connection>& conn,
                            const WireRequest& request) {
  if (!router_.HasHome(request.home)) {
    Reply(conn, WireErrorResponse(request.id, kWireNotFound,
                                  "unknown home '" + request.home + "'"));
    return;
  }
  const Instruction* instruction = instructions_.FindByName(request.instruction);
  if (instruction == nullptr) {
    Reply(conn, WireErrorResponse(request.id, kWireNotFound,
                                  "unknown instruction '" + request.instruction + "'"));
    return;
  }
  std::shared_ptr<const SensorSnapshot> snapshot;
  if (request.snapshot.has_value()) {
    snapshot = std::make_shared<const SensorSnapshot>(*request.snapshot);
  }
  Result<ExplainResult> explained =
      router_.ExplainJudge(request.home, *instruction, std::move(snapshot), request.time,
                           static_cast<std::size_t>(request.top_k));
  if (!explained.ok()) {
    Reply(conn, WireErrorResponse(request.id, kWireInternal, explained.error().message()));
    return;
  }
  const ExplainResult& result = explained.value();

  // Stash a compact summary for the health scorecard's recent-attribution
  // section: the verdict plus the single strongest contribution.
  Json summary = Json::Object();
  summary["instruction"] = request.instruction;
  summary["kind"] = std::string(ToString(result.kind));
  summary["allowed"] = result.judgement.allowed;
  summary["consistency"] = result.judgement.consistency;
  if (!result.contributions.empty()) {
    const FeatureContribution& top = result.contributions.front();
    summary["top_feature"] = top.feature;
    summary["top_contribution"] = top.contribution;
  }
  {
    std::lock_guard<std::mutex> lock(explain_mu_);
    std::deque<Json>& ring = recent_explains_[request.home];
    ring.push_back(std::move(summary));
    if (ring.size() > kRecentExplainCap) ring.pop_front();
  }
  Reply(conn, WireObjectResponse(request.id, result.ToJson()));
}

void Gateway::HandleQuery(const std::shared_ptr<Connection>& conn,
                          const WireRequest& request) {
  if (ops_.timeseries == nullptr) {
    Reply(conn, WireErrorResponse(request.id, kWireNotFound,
                                  "gateway started without a time-series store"));
    return;
  }
  const std::int64_t end_ms = ops_.timeseries->last_sample_ms();
  RangeQuery query;
  query.series = request.series;
  query.labels = request.series_labels;
  query.start_ms = end_ms - request.window_seconds * 1000;
  query.end_ms = end_ms;
  Json rendered = ops_.timeseries->Query(query).ToJson();
  if (!request.query_points) rendered["points"] = Json::Array();
  Json body = Json::Object();
  body["result"] = std::move(rendered);
  body["samples_taken"] = ops_.timeseries->samples_taken();
  Reply(conn, WireObjectResponse(request.id, std::move(body)));
}

Json Gateway::HealthScorecard(std::int64_t window_seconds) const {
  const TimeSeriesStore& store = *ops_.timeseries;
  const std::int64_t now_ms = store.last_sample_ms();
  const std::int64_t start_ms = now_ms - window_seconds * 1000;

  Json card = Json::Object();
  card["window_seconds"] = window_seconds;
  card["samples_taken"] = store.samples_taken();
  card["last_sample_ms"] = now_ms;

  // Gateway-wide flow over the window.
  const RangeResult requests =
      store.Query({"sidet_gateway_requests_total", "", start_ms, now_ms});
  const RangeResult backlog_shed =
      store.Query({"sidet_gateway_backlog_shed_total", "", start_ms, now_ms});
  Json flow = Json::Object();
  flow["request_rate"] = requests.rate;
  flow["requests_in_window"] = requests.delta;
  flow["backlog_shed_in_window"] = backlog_shed.delta;
  card["gateway"] = std::move(flow);

  Json router_stats = router_.StatsJson();
  const Json* lanes = router_stats.find("homes");
  Json homes = Json::Object();
  for (const std::string& home : router_.Homes()) {
    Json entry = Json::Object();
    const std::string label = "home=\"" + home + "\"";
    const RangeResult shed =
        store.Query({"sidet_gateway_shed_total", label, start_ms, now_ms});
    const RangeResult depth =
        store.Query({"sidet_gateway_queue_depth", label, start_ms, now_ms});
    entry["shed_in_window"] = shed.delta;
    entry["shed_rate"] = shed.rate;
    entry["shed_fraction"] =
        requests.delta > 0.0 ? shed.delta / requests.delta : 0.0;
    entry["queue_depth_avg"] = depth.avg;
    entry["queue_depth_max"] = depth.max;
    if (lanes != nullptr) {
      if (const Json* lane = lanes->find(home)) {
        if (const Json* ids = lane->find("ids")) {
          const double judged = ids->number_or("judged", 0.0);
          entry["block_fraction"] =
              judged > 0.0 ? ids->number_or("blocked", 0.0) / judged : 0.0;
        }
        entry["lane"] = *lane;
      }
    }
    {
      std::lock_guard<std::mutex> lock(explain_mu_);
      const auto it = recent_explains_.find(home);
      if (it != recent_explains_.end()) {
        Json recent = Json::Array();
        for (const Json& summary : it->second) recent.as_array().push_back(summary);
        entry["recent_attributions"] = std::move(recent);
      }
    }
    homes[home] = std::move(entry);
  }
  card["homes"] = std::move(homes);

  if (ops_.slo != nullptr) {
    card["slo"] = SloEngine::StatesJson(ops_.slo->EvaluateTrend(store, now_ms, metrics_));
  }
  if (ops_.drift != nullptr) {
    card["drift"] = ops_.drift->EvaluateTrend(store, window_seconds, now_ms).ToJson();
  }
  return card;
}

void Gateway::HandleJudge(const std::shared_ptr<Connection>& conn, WireRequest request) {
  judges_total_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<RequestTrace> trace;
  if (tracing_ != nullptr) {
    trace = tracing_->Begin(request.trace, request.home, request.instruction);
  }
  if (conn->inflight.load(std::memory_order_relaxed) >=
      config_.max_inflight_per_connection) {
    shed_total_.fetch_add(1, std::memory_order_relaxed);
    if (m_shed_ != nullptr) m_shed_->Increment();
    if (trace != nullptr) trace->shed = true;
    Reply(conn,
          WireErrorResponse(request.id, kWireOverloaded, "connection judge backlog full"),
          trace);
    return;
  }
  const Instruction* instruction = instructions_.FindByName(request.instruction);
  if (instruction == nullptr) {
    Reply(conn,
          WireErrorResponse(request.id, kWireNotFound,
                            "unknown instruction '" + request.instruction + "'"),
          trace);
    return;
  }

  JudgeTask task;
  task.instruction = instruction;
  if (request.snapshot.has_value()) {
    task.snapshot = std::make_shared<const SensorSnapshot>(*std::move(request.snapshot));
  }
  task.time = request.time;
  task.trace = trace;
  conn->inflight.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t id = request.id;
  const std::int64_t admitted_us = MonotonicMicros();
  std::weak_ptr<Connection> weak = conn;
  task.done = [this, weak, id, admitted_us, trace](const Judgement& judgement) {
    const std::shared_ptr<Connection> target = weak.lock();
    if (m_judge_e2e_seconds_ != nullptr) {
      m_judge_e2e_seconds_->Observe(
          static_cast<double>(MonotonicMicros() - admitted_us) * 1e-6);
    }
    if (trace != nullptr) {
      trace->sensitive = judgement.sensitive;
      trace->allowed = judgement.allowed;
      trace->consistency = judgement.consistency;
    }
    if (target == nullptr) {
      // Connection went away; the verdict is unroutable and its response will
      // never be written, so the trace ends here.
      if (trace != nullptr) tracing_->Finalize(trace);
      return;
    }
    {
      std::lock_guard<std::mutex> lock(target->mu);
      target->outbox +=
          WireJudgeResponse(id, judgement, trace != nullptr ? trace->trace_id : 0);
      target->outbox += '\n';
      if (trace != nullptr) {
        trace->staged_us = MonotonicMicros();
        target->outbox_traces.push_back({target->outbox.size(), trace});
      }
    }
    target->inflight.fetch_sub(1, std::memory_order_relaxed);
    responses_total_.fetch_add(1, std::memory_order_relaxed);
    if (m_responses_ != nullptr) m_responses_->Increment();
    Wake();
  };

  const Admission admission = router_.SubmitJudge(request.home, std::move(task));
  switch (admission) {
    case Admission::kAccepted:
      return;
    case Admission::kShed:
      conn->inflight.fetch_sub(1, std::memory_order_relaxed);
      shed_total_.fetch_add(1, std::memory_order_relaxed);
      if (m_shed_ != nullptr) m_shed_->Increment();
      if (trace != nullptr) trace->shed = true;
      Reply(conn, WireErrorResponse(id, kWireOverloaded, "judge queue full"), trace);
      return;
    case Admission::kClosed:
      conn->inflight.fetch_sub(1, std::memory_order_relaxed);
      Reply(conn, WireErrorResponse(id, kWireDraining, "gateway draining"), trace);
      return;
    case Admission::kUnknownHome:
      conn->inflight.fetch_sub(1, std::memory_order_relaxed);
      Reply(conn, WireErrorResponse(id, kWireNotFound, "unknown home"), trace);
      return;
  }
}

void Gateway::Reply(const std::shared_ptr<Connection>& conn, std::string line,
                    const std::shared_ptr<RequestTrace>& trace) {
  conn->wrbuf += line;
  conn->wrbuf += '\n';
  conn->appended_bytes += line.size() + 1;
  if (trace != nullptr) {
    trace->staged_us = MonotonicMicros();
    conn->trace_writes.push_back({conn->appended_bytes, trace});
  }
  responses_total_.fetch_add(1, std::memory_order_relaxed);
  if (m_responses_ != nullptr) m_responses_->Increment();
}

bool Gateway::FlushOutput(const std::shared_ptr<Connection>& conn) {
  while (conn->wroff < conn->wrbuf.size()) {
    const ssize_t n = ::write(conn->fd, conn->wrbuf.data() + conn->wroff,
                              conn->wrbuf.size() - conn->wroff);
    if (n > 0) {
      conn->wroff += static_cast<std::size_t>(n);
      conn->written_bytes += static_cast<std::uint64_t>(n);
      continue;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return false;
  }
  // Writeback attribution: finalize every trace whose response the socket
  // has now fully absorbed. One clock read covers the whole drain — the
  // responses left the socket in the same ::write burst.
  if (!conn->trace_writes.empty() &&
      conn->trace_writes.front().end_bytes <= conn->written_bytes) {
    const std::int64_t now_us = MonotonicMicros();
    do {
      Connection::TraceWrite pending = std::move(conn->trace_writes.front());
      conn->trace_writes.pop_front();
      pending.trace->write_us = now_us;
      tracing_->Finalize(pending.trace);
    } while (!conn->trace_writes.empty() &&
             conn->trace_writes.front().end_bytes <= conn->written_bytes);
  }
  if (conn->wroff == conn->wrbuf.size()) {
    conn->wrbuf.clear();
    conn->wroff = 0;
  } else if (conn->wroff > (1 << 20)) {
    conn->wrbuf.erase(0, conn->wroff);
    conn->wroff = 0;
  }
  return true;
}

Gateway::Stats Gateway::stats() const {
  Stats out;
  out.connections = connections_total_.load(std::memory_order_relaxed);
  out.requests = requests_total_.load(std::memory_order_relaxed);
  out.judges = judges_total_.load(std::memory_order_relaxed);
  out.responses = responses_total_.load(std::memory_order_relaxed);
  out.parse_errors = parse_errors_total_.load(std::memory_order_relaxed);
  out.shed = shed_total_.load(std::memory_order_relaxed);
  return out;
}

Json Gateway::StatsJson() const {
  const Stats stats = this->stats();
  Json gateway = Json::Object();
  gateway["port"] = port_;
  gateway["connections"] = stats.connections;
  gateway["requests"] = stats.requests;
  gateway["judges"] = stats.judges;
  gateway["responses"] = stats.responses;
  gateway["parse_errors"] = stats.parse_errors;
  gateway["shed"] = stats.shed;
  const double uptime = UptimeSeconds();
  if (m_uptime_seconds_ != nullptr) m_uptime_seconds_->Set(uptime);
  gateway["uptime_seconds"] = uptime;
  Json build = Json::Object();
  build["version"] = std::string(BuildVersionLabel());
  build["compiler"] = std::string(BuildCompilerLabel());
  gateway["build"] = std::move(build);
  Json out = router_.StatsJson();
  if (tracing_ != nullptr) out["tracing"] = tracing_->exemplars().stats().ToJson();
  out["gateway"] = std::move(gateway);
  return out;
}

}  // namespace sidet
