// Multi-home request router: one ContextIds (model set + detector) per
// home/tenant, each fronted by its own MicroBatcher lane.
//
// Concurrency contract:
//
//   * each lane has exactly one batch worker, so a given ContextIds instance
//     is only ever driven by one thread — JudgeBatch needs no internal
//     locking and per-home stats/audit stay exact;
//   * the lane holds its ContextIds behind a shared_ptr that batch execution
//     copies under a short mutex hold (RCU-style): ReloadModel() builds a
//     complete replacement IDS off to the side and swaps the pointer, so an
//     in-flight batch finishes on the model it started with and the next
//     batch picks up the new one — a hot reload under load drops zero
//     accepted requests;
//   * the ambient context snapshot (GatewayOp::kContext) is likewise an
//     immutable shared_ptr swap; queued judge tasks pin the snapshot they
//     were admitted with.
//
// Per-home IdsStats restart from zero at each reload (they belong to the
// ContextIds instance); the sidet_gateway_* registry counters are cumulative
// across reloads.
//
// Fleet mode (DESIGN.md §18): with a model provider attached, SubmitJudge on
// an unknown home cold-starts a lane from the tiered model store instead of
// answering kUnknownHome, and a resident-lane cap evicts the least-recently-
// judged lane first (drained before teardown — an eviction drops zero
// accepted requests, the same guarantee as hot reload). Cold-start eviction
// tears lanes down, so with a cap set SubmitJudge/ExplainJudge callers must
// be externally serialized — the gateway's single event-loop thread provides
// exactly that; without a cap the legacy concurrent-submit contract is
// unchanged.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/ids.h"
#include "server/batcher.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/json.h"
#include "util/result.h"

namespace sidet {

class GatewayRouter {
 public:
  // `policy` applies to every lane. Telemetry/tracing pointers are optional
  // and not owned; they must outlive the router. With `tracing` attached,
  // every lane's ContextIds measures batch stage clocks and the lane batcher
  // reads them back into traced tasks (see MicroBatcher::SetStageProbe).
  explicit GatewayRouter(BatchPolicy policy = {}, MetricsRegistry* registry = nullptr,
                         SpanTracer* tracer = nullptr, RequestTracing* tracing = nullptr);
  ~GatewayRouter();  // DrainAll

  GatewayRouter(const GatewayRouter&) = delete;
  GatewayRouter& operator=(const GatewayRouter&) = delete;

  // Registers a tenant and starts its lane. Fails on duplicate names and
  // after DrainAll. Explicit registration bypasses the lane cap (operator
  // action); only cold starts evict.
  Status AddHome(const std::string& home, ContextIds ids);
  // Convenience: cold-boot a tenant from a persisted model store document
  // (JSON or compact blob, sniffed), with the paper's Table III detector.
  Status AddHomeFromModel(const std::string& home, const std::string& model_path);

  // ---- tiered model store hooks (fleet mode) ----
  // Builds the ContextIds for a home this shard does not currently host: the
  // cold-start miss path (typically ModelCache::Load + the shard detector).
  // Called with cold_mu_ held, so loads for different homes never interleave.
  using ModelProvider = std::function<Result<ContextIds>(const std::string& home)>;
  void SetModelProvider(ModelProvider provider);
  // Bounds resident lanes; 0 = unbounded (the legacy pin-forever behavior).
  // At the cap a cold start evicts the least-recently-judged lane first.
  void SetLaneCap(std::size_t max_resident_lanes);
  // Per-home batcher instruments are per-home label cardinality in the
  // registry; a fleet shard churning through transient lanes turns them off
  // (the aggregate sidet_gateway_lane*/cold_load* series remain).
  void EnablePerLaneTelemetry(bool on) { lane_telemetry_ = on; }

  std::size_t resident_lanes() const;
  std::uint64_t lane_evictions() const;
  std::uint64_t model_cold_loads() const;

  // Hot model reload: loads the ModelStore document, builds a fresh
  // ContextIds around the lane's existing detector, and atomically swaps it
  // in. In-flight batches complete on the old model; on failure the lane
  // keeps serving the old model untouched.
  Status ReloadModel(const std::string& home, const std::string& model_path);

  // Replaces the home's ambient sensor context (used by judge requests that
  // carry no inline snapshot).
  Status SetContext(const std::string& home, SensorSnapshot snapshot);

  // Judges one instruction on the home's current model with full feature
  // attribution (ContextIds::Explain, DESIGN.md §17). Runs synchronously on
  // the caller's thread under the lane's judge mutex — serialized against
  // any in-flight batch, never queued — so the answer reflects exactly the
  // model serving at call time and the hot path is untouched. A null
  // snapshot falls back to the home's ambient context (empty context when
  // none was ever pushed, matching what a judge task would see).
  Result<ExplainResult> ExplainJudge(const std::string& home,
                                     const Instruction& instruction,
                                     std::shared_ptr<const SensorSnapshot> snapshot,
                                     SimTime time, std::size_t top_k = 5);

  // Admits one judge task into the home's lane. On kAccepted the task's
  // `done` callback fires exactly once (worker thread); any other admission
  // leaves the callback uncalled and the response to the caller.
  // A task without a snapshot is pinned to the home's current ambient
  // context at admission time.
  Admission SubmitJudge(const std::string& home, JudgeTask task);

  bool HasHome(const std::string& home) const;
  std::vector<std::string> Homes() const;
  std::uint64_t reloads() const;

  // Per-home serving counters: lane batcher stats, IdsStats of the current
  // model instance, model fingerprint, and reload count.
  Json StatsJson() const;

  // Attaches a verdict observer (e.g. replay::FlightRecorder) to the home's
  // *current* ContextIds so every served verdict is captured — with tracing
  // attached, each recorded row carries its request's trace_id. Taken under
  // the lane's judge mutex so it never races an in-flight batch. A model
  // reload builds a fresh ContextIds and drops the observer; re-attach after
  // ReloadModel when recording across reloads.
  Status SetVerdictObserver(const std::string& home, VerdictObserver* observer);

  // Stops intake on every lane and flushes all accepted tasks. Idempotent;
  // afterwards SubmitJudge returns kClosed and AddHome fails.
  void DrainAll();

 private:
  struct HomeLane {
    // Guards `ids` and `context` swaps; batch execution holds it only long
    // enough to copy the shared_ptr.
    mutable std::mutex mu;
    // Held across each JudgeBatch call and while StatsJson copies IdsStats,
    // so the stats endpoint never reads counters mid-mutation. Reloads do
    // NOT take it — the pointer swap stays wait-free under load.
    mutable std::mutex judge_mu;
    std::shared_ptr<ContextIds> ids;
    std::shared_ptr<const SensorSnapshot> context;  // may be null (no ambient yet)
    std::unique_ptr<MicroBatcher> batcher;
    std::uint64_t reloads = 0;
    // LRU clock stamp; bumped per admitted judge (the eviction order key).
    std::atomic<std::uint64_t> last_used{0};
  };

  HomeLane* FindLane(const std::string& home) const;
  // Loads the home through provider_ and installs its lane, evicting down to
  // the cap first. Returns false when there is no provider or the load
  // failed (the caller answers kUnknownHome).
  bool ColdStart(const std::string& home);
  // Evicts least-recently-judged lanes until at most `target` remain. Each
  // victim is unlinked under homes_mu_, then drained outside the lock so its
  // in-flight tasks all complete.
  void EvictToCap(std::size_t target);

  const BatchPolicy policy_;
  MetricsRegistry* registry_;  // not owned, may be null
  SpanTracer* tracer_;         // not owned, may be null
  RequestTracing* tracing_;    // not owned, may be null

  mutable std::mutex homes_mu_;  // guards the lane map shape
  std::map<std::string, std::unique_ptr<HomeLane>> lanes_;
  bool drained_ = false;
  Counter* reloads_total_ = nullptr;

  // Fleet mode (see header comment). cold_mu_ serializes the whole
  // load-evict-install sequence so two misses never double-load a model or
  // evict past the cap.
  std::mutex cold_mu_;
  ModelProvider provider_;
  std::size_t max_resident_lanes_ = 0;
  bool lane_telemetry_ = true;
  std::atomic<std::uint64_t> use_clock_{0};
  std::atomic<std::uint64_t> lane_evictions_{0};
  std::atomic<std::uint64_t> cold_loads_{0};
  Counter* evictions_total_ = nullptr;
  Counter* cold_loads_total_ = nullptr;
  Gauge* lanes_resident_ = nullptr;
  Histogram* cold_load_seconds_ = nullptr;
};

}  // namespace sidet
