#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace sidet {

GatewayClient::~GatewayClient() { Close(); }

GatewayClient::GatewayClient(GatewayClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      rdbuf_(std::move(other.rdbuf_)),
      rdoff_(std::exchange(other.rdoff_, 0)) {}

GatewayClient& GatewayClient::operator=(GatewayClient&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    rdbuf_ = std::move(other.rdbuf_);
    rdoff_ = std::exchange(other.rdoff_, 0);
  }
  return *this;
}

void GatewayClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rdbuf_.clear();
  rdoff_ = 0;
}

Result<GatewayClient> GatewayClient::Connect(const std::string& host, std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Error(std::string("socket: ") + std::strerror(errno));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Error("invalid gateway host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string why = std::strerror(errno);
    ::close(fd);
    return Error("connect " + host + ":" + std::to_string(port) + ": " + why);
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  GatewayClient client;
  client.fd_ = fd;
  return client;
}

Status GatewayClient::Send(std::string_view line) {
  std::string framed(line);
  framed += '\n';
  return SendFramed(framed);
}

Status GatewayClient::SendFramed(std::string_view bytes) {
  if (fd_ < 0) return Error("client not connected");
  std::size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::write(fd_, bytes.data() + off, bytes.size() - off);
    if (n > 0) {
      off += static_cast<std::size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    return Error(std::string("send: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Result<std::string> GatewayClient::ReadLine(int timeout_ms) {
  Result<std::string_view> line = ReadLineView(timeout_ms);
  if (!line.ok()) return line.error();
  return std::string(line.value());
}

Result<std::string_view> GatewayClient::ReadLineView(int timeout_ms) {
  if (fd_ < 0) return Error("client not connected");
  for (;;) {
    const std::size_t newline = rdbuf_.find('\n', rdoff_);
    if (newline != std::string::npos) {
      std::string_view line(rdbuf_.data() + rdoff_, newline - rdoff_);
      rdoff_ = newline + 1;
      if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
      return line;
    }
    // Everything buffered has been consumed as lines; reclaim the prefix
    // before the next read instead of shifting bytes per line.
    if (rdoff_ > 0) {
      rdbuf_.erase(0, rdoff_);
      rdoff_ = 0;
    }
    pollfd pfd{fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready == 0) return Error("read: timed out waiting for a response line");
    if (ready < 0) {
      if (errno == EINTR) continue;
      return Error(std::string("poll: ") + std::strerror(errno));
    }
    char buffer[16384];
    const ssize_t n = ::read(fd_, buffer, sizeof(buffer));
    if (n > 0) {
      rdbuf_.append(buffer, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) return Error("read: gateway closed the connection");
    if (errno == EINTR) continue;
    return Error(std::string("read: ") + std::strerror(errno));
  }
}

Result<bool> GatewayClient::Readable(int timeout_ms) {
  if (fd_ < 0) return Error("client not connected");
  if (rdbuf_.find('\n', rdoff_) != std::string::npos) return true;
  pollfd pfd{fd_, POLLIN, 0};
  const int ready = ::poll(&pfd, 1, timeout_ms);
  if (ready < 0 && errno != EINTR) return Error(std::string("poll: ") + std::strerror(errno));
  return ready > 0 && (pfd.revents & (POLLIN | POLLHUP)) != 0;
}

Result<Json> GatewayClient::Call(const Json& request, int timeout_ms) {
  if (const Status sent = Send(request.Dump()); !sent.ok()) return sent.error();
  Result<std::string> line = ReadLine(timeout_ms);
  if (!line.ok()) return line.error();
  Result<Json> parsed = Json::Parse(line.value());
  if (!parsed.ok()) return parsed.error().context("response line");
  return std::move(parsed).value();
}

Result<Json> GatewayClient::FetchTrace(bool chrome, int timeout_ms) {
  Json request = Json::Object();
  request["op"] = "trace";
  if (chrome) request["chrome"] = true;
  Result<Json> response = Call(request, timeout_ms);
  if (!response.ok()) return response;
  if (!response.value().bool_or("ok", false)) {
    return Error("trace command failed: " +
                 response.value().string_or("error", "unknown error"));
  }
  return response;
}

Result<Json> GatewayClient::Explain(const std::string& home, const std::string& instruction,
                                    std::int64_t time, int top_k, int timeout_ms) {
  Json request = Json::Object();
  request["op"] = "explain";
  request["home"] = home;
  request["instruction"] = instruction;
  if (time != 0) request["time"] = time;
  request["top_k"] = top_k;
  Result<Json> response = Call(request, timeout_ms);
  if (!response.ok()) return response;
  if (!response.value().bool_or("ok", false)) {
    return Error("explain command failed: " +
                 response.value().string_or("error", "unknown error"));
  }
  return response;
}

Result<Json> GatewayClient::QueryRange(const std::string& series, const std::string& labels,
                                       std::int64_t window_seconds, bool include_points,
                                       int timeout_ms) {
  Json request = Json::Object();
  request["op"] = "query";
  request["series"] = series;
  if (!labels.empty()) request["labels"] = labels;
  request["window_seconds"] = window_seconds;
  if (include_points) request["points"] = true;
  Result<Json> response = Call(request, timeout_ms);
  if (!response.ok()) return response;
  if (!response.value().bool_or("ok", false)) {
    return Error("query command failed: " +
                 response.value().string_or("error", "unknown error"));
  }
  return response;
}

Result<Json> GatewayClient::FetchHealth(std::int64_t window_seconds, int timeout_ms) {
  Json request = Json::Object();
  request["op"] = "health";
  request["window_seconds"] = window_seconds;
  Result<Json> response = Call(request, timeout_ms);
  if (!response.ok()) return response;
  if (!response.value().bool_or("ok", false)) {
    return Error("health command failed: " +
                 response.value().string_or("error", "unknown error"));
  }
  return response;
}

}  // namespace sidet
