// Minimal blocking TCP client for the gateway's newline-delimited JSON
// protocol — the shape a platform-side SDK would take, and the substrate the
// load generator, the tour example, and the server tests drive the gateway
// with.
//
// Two usage styles:
//   * Call(): one request line out, one response line back (closed loop);
//   * Send()/ReadLine(): decoupled halves for pipelined/open-loop traffic —
//     responses correlate to requests by the echoed `id` field.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.h"
#include "util/result.h"

namespace sidet {

class GatewayClient {
 public:
  GatewayClient() = default;
  ~GatewayClient();

  GatewayClient(GatewayClient&& other) noexcept;
  GatewayClient& operator=(GatewayClient&& other) noexcept;
  GatewayClient(const GatewayClient&) = delete;
  GatewayClient& operator=(const GatewayClient&) = delete;

  static Result<GatewayClient> Connect(const std::string& host, std::uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void Close();

  // Writes one request line (the '\n' frame delimiter is appended here).
  Status Send(std::string_view line);
  // Writes pre-framed bytes as-is — the caller has already placed the '\n'
  // delimiters. Lets pipelined senders flush a whole window in one syscall.
  Status SendFramed(std::string_view bytes);
  // Blocks until one full response line arrives (without the delimiter).
  // `timeout_ms` < 0 waits forever; a timeout or peer close is an error.
  Result<std::string> ReadLine(int timeout_ms = 5000);
  // Zero-copy variant: the returned view aliases the client's internal read
  // buffer and is invalidated by the next ReadLine/ReadLineView call. The
  // load generator's hot path.
  Result<std::string_view> ReadLineView(int timeout_ms = 5000);
  // True when a full line is already buffered or the socket turns readable
  // within `timeout_ms` — the open-loop sender's "anything to reap?" probe.
  Result<bool> Readable(int timeout_ms);
  // Send + ReadLine + parse. The caller checks "ok"/"code" fields itself —
  // in-band application errors are still an ok() Call.
  Result<Json> Call(const Json& request, int timeout_ms = 5000);
  // `trace` wire command: fetches the gateway's tail-sampled exemplars.
  // `chrome` asks for the Chrome trace_event form (load the "trace" member
  // into chrome://tracing); otherwise the response carries raw "exemplars".
  // An in-band error (gateway without tracing) is returned as an error here.
  Result<Json> FetchTrace(bool chrome = false, int timeout_ms = 5000);
  // `explain` wire command: the verdict the gateway would serve for this
  // instruction plus the top-k signed feature contributions (DESIGN.md §17).
  // `time` is the simulated timestamp judge requests carry. In-band errors
  // (unknown home/instruction, judgement failure) come back as errors.
  Result<Json> Explain(const std::string& home, const std::string& instruction,
                       std::int64_t time = 0, int top_k = 5, int timeout_ms = 5000);
  // `query` wire command: windowed reductions of one retained metric series
  // (histograms expose `name:count`/`name:sum`/`name:p50`/`name:p95`/
  // `name:p99`); `include_points` returns the raw point array too.
  Result<Json> QueryRange(const std::string& series, const std::string& labels = "",
                          std::int64_t window_seconds = 60, bool include_points = false,
                          int timeout_ms = 5000);
  // `health` wire command: liveness plus (on a gateway with ops attached)
  // the per-home scorecard over the trailing window.
  Result<Json> FetchHealth(std::int64_t window_seconds = 60, int timeout_ms = 5000);

 private:
  int fd_ = -1;
  std::string rdbuf_;       // buffered bytes not yet returned as lines
  std::size_t rdoff_ = 0;   // consumed prefix of rdbuf_ (compacted lazily)
};

}  // namespace sidet
