#include "server/router.h"

#include <limits>
#include <utility>

#include "core/detector.h"
#include "core/model_store.h"
#include "instructions/threat.h"

namespace sidet {

GatewayRouter::GatewayRouter(BatchPolicy policy, MetricsRegistry* registry, SpanTracer* tracer,
                             RequestTracing* tracing)
    : policy_(policy), registry_(registry), tracer_(tracer), tracing_(tracing) {
  if (registry_ != nullptr) {
    reloads_total_ = registry_->GetCounter("sidet_gateway_reloads_total", "",
                                           "Hot model reloads completed");
    evictions_total_ = registry_->GetCounter("sidet_gateway_lane_evictions_total", "",
                                             "Resident lanes evicted under the lane cap");
    cold_loads_total_ = registry_->GetCounter("sidet_gateway_model_cold_loads_total", "",
                                              "Lane cold starts served from the model store");
    lanes_resident_ = registry_->GetGauge("sidet_gateway_lanes_resident", "",
                                          "Lanes currently resident on this shard");
    cold_load_seconds_ =
        registry_->GetHistogram("sidet_gateway_model_cold_load_seconds", "", {},
                                "Cold-start latency: model load + lane install");
  }
}

GatewayRouter::~GatewayRouter() { DrainAll(); }

Status GatewayRouter::AddHome(const std::string& home, ContextIds ids) {
  std::lock_guard<std::mutex> lock(homes_mu_);
  if (drained_) return Error("router is drained");
  if (lanes_.contains(home)) return Error("home '" + home + "' already registered");
  auto lane = std::make_unique<HomeLane>();
  lane->ids = std::make_shared<ContextIds>(std::move(ids));
  HomeLane* raw = lane.get();
  lane->batcher = std::make_unique<MicroBatcher>(
      policy_, [raw](std::span<const JudgeRequest> requests, int threads) {
        // RCU read side: pin the IDS the batch starts with; a concurrent
        // reload swaps the lane pointer without touching this copy.
        std::shared_ptr<ContextIds> ids;
        {
          std::lock_guard<std::mutex> pin(raw->mu);
          ids = raw->ids;
        }
        std::lock_guard<std::mutex> judging(raw->judge_mu);
        return ids->JudgeBatch(requests, threads);
      });
  if (lane_telemetry_) lane->batcher->AttachTelemetry(registry_, home, tracer_);
  if (tracing_ != nullptr) {
    lane->ids->EnableBatchStageCapture(true);
    // The probe runs on the lane's batch worker immediately after JudgeBatch
    // returns — the same thread that wrote last_batch_stages, so the read is
    // race-free. A reload between the batch and the probe merely reads the
    // fresh instance's zeroed stages.
    lane->batcher->SetStageProbe([raw] {
      std::shared_ptr<ContextIds> ids;
      {
        std::lock_guard<std::mutex> pin(raw->mu);
        ids = raw->ids;
      }
      return ids->last_batch_stages();
    });
  }
  lane->last_used.store(use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  lanes_.emplace(home, std::move(lane));
  if (lanes_resident_ != nullptr) lanes_resident_->Set(static_cast<double>(lanes_.size()));
  return Status::Ok();
}

Status GatewayRouter::AddHomeFromModel(const std::string& home, const std::string& model_path) {
  Result<ContextFeatureMemory> memory = LoadMemoryAuto(model_path);
  if (!memory.ok()) return memory.error().context("home '" + home + "'");
  return AddHome(home, ContextIds(SensitiveInstructionDetector(PaperTableThree()),
                                  std::move(memory).value()));
}

void GatewayRouter::SetModelProvider(ModelProvider provider) {
  std::lock_guard<std::mutex> cold(cold_mu_);
  provider_ = std::move(provider);
}

void GatewayRouter::SetLaneCap(std::size_t max_resident_lanes) {
  std::lock_guard<std::mutex> cold(cold_mu_);
  max_resident_lanes_ = max_resident_lanes;
}

std::size_t GatewayRouter::resident_lanes() const {
  std::lock_guard<std::mutex> lock(homes_mu_);
  return lanes_.size();
}

std::uint64_t GatewayRouter::lane_evictions() const {
  return lane_evictions_.load(std::memory_order_relaxed);
}

std::uint64_t GatewayRouter::model_cold_loads() const {
  return cold_loads_.load(std::memory_order_relaxed);
}

void GatewayRouter::EvictToCap(std::size_t target) {
  while (true) {
    std::unique_ptr<HomeLane> victim;
    {
      std::lock_guard<std::mutex> lock(homes_mu_);
      if (lanes_.size() <= target) break;
      auto oldest = lanes_.end();
      std::uint64_t oldest_stamp = std::numeric_limits<std::uint64_t>::max();
      for (auto it = lanes_.begin(); it != lanes_.end(); ++it) {
        const std::uint64_t stamp = it->second->last_used.load(std::memory_order_relaxed);
        if (stamp < oldest_stamp) {
          oldest_stamp = stamp;
          oldest = it;
        }
      }
      victim = std::move(oldest->second);
      lanes_.erase(oldest);
      if (lanes_resident_ != nullptr) {
        lanes_resident_->Set(static_cast<double>(lanes_.size()));
      }
    }
    // Outside the map lock: flush every accepted task (zero drops — the
    // hot-reload guarantee, applied to teardown), then let the lane die.
    victim->batcher->Drain();
    lane_evictions_.fetch_add(1, std::memory_order_relaxed);
    if (evictions_total_ != nullptr) evictions_total_->Increment();
  }
}

bool GatewayRouter::ColdStart(const std::string& home) {
  std::lock_guard<std::mutex> cold(cold_mu_);
  if (!provider_) return false;
  if (HasHome(home)) return true;  // lost the race to another submitter
  const std::int64_t start_us = MonotonicMicros();
  Result<ContextIds> ids = provider_(home);
  if (!ids.ok()) return false;
  if (max_resident_lanes_ > 0) EvictToCap(max_resident_lanes_ - 1);
  if (!AddHome(home, std::move(ids).value()).ok()) return false;
  cold_loads_.fetch_add(1, std::memory_order_relaxed);
  if (cold_loads_total_ != nullptr) cold_loads_total_->Increment();
  if (cold_load_seconds_ != nullptr) {
    cold_load_seconds_->Observe(static_cast<double>(MonotonicMicros() - start_us) * 1e-6);
  }
  return true;
}

GatewayRouter::HomeLane* GatewayRouter::FindLane(const std::string& home) const {
  std::lock_guard<std::mutex> lock(homes_mu_);
  const auto it = lanes_.find(home);
  return it == lanes_.end() ? nullptr : it->second.get();
}

Status GatewayRouter::ReloadModel(const std::string& home, const std::string& model_path) {
  HomeLane* lane = FindLane(home);
  if (lane == nullptr) return Error("unknown home '" + home + "'");
  Result<ContextFeatureMemory> memory = LoadMemoryAuto(model_path);
  if (!memory.ok()) return memory.error().context("reload home '" + home + "'");
  // Build the replacement completely before the swap so the lane is never
  // caught between models.
  SensitiveInstructionDetector detector = [&] {
    std::lock_guard<std::mutex> pin(lane->mu);
    return lane->ids->detector();
  }();
  auto fresh =
      std::make_shared<ContextIds>(std::move(detector), std::move(memory).value());
  if (tracing_ != nullptr) fresh->EnableBatchStageCapture(true);
  {
    std::lock_guard<std::mutex> pin(lane->mu);
    lane->ids = std::move(fresh);
    ++lane->reloads;
  }
  if (reloads_total_ != nullptr) reloads_total_->Increment();
  return Status::Ok();
}

Status GatewayRouter::SetVerdictObserver(const std::string& home, VerdictObserver* observer) {
  HomeLane* lane = FindLane(home);
  if (lane == nullptr) return Error("unknown home '" + home + "'");
  std::shared_ptr<ContextIds> ids;
  {
    std::lock_guard<std::mutex> pin(lane->mu);
    ids = lane->ids;
  }
  // judge_mu serializes against an in-flight batch on the same instance.
  std::lock_guard<std::mutex> judging(lane->judge_mu);
  ids->SetVerdictObserver(observer);
  return Status::Ok();
}

Status GatewayRouter::SetContext(const std::string& home, SensorSnapshot snapshot) {
  HomeLane* lane = FindLane(home);
  if (lane == nullptr) return Error("unknown home '" + home + "'");
  auto fresh = std::make_shared<const SensorSnapshot>(std::move(snapshot));
  std::lock_guard<std::mutex> pin(lane->mu);
  lane->context = std::move(fresh);
  return Status::Ok();
}

Result<ExplainResult> GatewayRouter::ExplainJudge(const std::string& home,
                                                  const Instruction& instruction,
                                                  std::shared_ptr<const SensorSnapshot> snapshot,
                                                  SimTime time, std::size_t top_k) {
  HomeLane* lane = FindLane(home);
  if (lane == nullptr) return Error("unknown home '" + home + "'");
  std::shared_ptr<ContextIds> ids;
  {
    std::lock_guard<std::mutex> pin(lane->mu);
    ids = lane->ids;
    if (snapshot == nullptr) snapshot = lane->context;
  }
  static const SensorSnapshot kEmptyContext;
  const SensorSnapshot& context = snapshot != nullptr ? *snapshot : kEmptyContext;
  std::lock_guard<std::mutex> judging(lane->judge_mu);
  return ids->Explain(instruction, context, time, top_k);
}

Admission GatewayRouter::SubmitJudge(const std::string& home, JudgeTask task) {
  HomeLane* lane = FindLane(home);
  if (lane == nullptr) {
    // Cold-start miss path: pull the home's model out of the tiered store
    // and install a lane, evicting the LRU lane when capped.
    if (!ColdStart(home)) return Admission::kUnknownHome;
    lane = FindLane(home);
    if (lane == nullptr) return Admission::kUnknownHome;
  }
  lane->last_used.store(use_clock_.fetch_add(1, std::memory_order_relaxed) + 1,
                        std::memory_order_relaxed);
  if (task.snapshot == nullptr) {
    std::lock_guard<std::mutex> pin(lane->mu);
    task.snapshot = lane->context;  // may stay null; batcher fills empty
  }
  return lane->batcher->Submit(std::move(task));
}

bool GatewayRouter::HasHome(const std::string& home) const {
  return FindLane(home) != nullptr;
}

std::vector<std::string> GatewayRouter::Homes() const {
  std::lock_guard<std::mutex> lock(homes_mu_);
  std::vector<std::string> names;
  names.reserve(lanes_.size());
  for (const auto& [name, lane] : lanes_) names.push_back(name);
  return names;
}

std::uint64_t GatewayRouter::reloads() const {
  std::lock_guard<std::mutex> lock(homes_mu_);
  std::uint64_t total = 0;
  for (const auto& [name, lane] : lanes_) {
    std::lock_guard<std::mutex> pin(lane->mu);
    total += lane->reloads;
  }
  return total;
}

Json GatewayRouter::StatsJson() const {
  std::lock_guard<std::mutex> lock(homes_mu_);
  Json homes = Json::Object();
  for (const auto& [name, lane] : lanes_) {
    const MicroBatcher::Stats stats = lane->batcher->stats();
    Json entry = Json::Object();
    entry["submitted"] = stats.submitted;
    entry["completed"] = stats.completed;
    entry["shed"] = stats.shed;
    entry["rejected_closed"] = stats.rejected_closed;
    entry["batches"] = stats.batches;
    entry["full_flushes"] = stats.full_flushes;
    entry["deadline_flushes"] = stats.deadline_flushes;
    entry["drain_flushes"] = stats.drain_flushes;
    entry["queue_depth"] = lane->batcher->depth();
    entry["effective_delay_us"] = lane->batcher->effective_delay_us();
    std::shared_ptr<ContextIds> ids;
    std::uint64_t reloads = 0;
    bool has_context = false;
    {
      std::lock_guard<std::mutex> pin(lane->mu);
      ids = lane->ids;
      reloads = lane->reloads;
      has_context = lane->context != nullptr;
    }
    entry["reloads"] = reloads;
    entry["has_ambient_context"] = has_context;
    entry["model_fingerprint"] = ids->memory().Fingerprint();
    {
      // Waits out at most one in-flight batch so counters are read at rest.
      std::lock_guard<std::mutex> judging(lane->judge_mu);
      entry["ids"] = ids->stats().ToJson();
    }
    homes[name] = std::move(entry);
  }
  Json out = Json::Object();
  out["homes"] = std::move(homes);
  Json fleet = Json::Object();
  fleet["lanes_resident"] = lanes_.size();
  fleet["lane_evictions"] = lane_evictions_.load(std::memory_order_relaxed);
  fleet["model_cold_loads"] = cold_loads_.load(std::memory_order_relaxed);
  out["fleet"] = std::move(fleet);
  return out;
}

void GatewayRouter::DrainAll() {
  std::vector<MicroBatcher*> batchers;
  {
    std::lock_guard<std::mutex> lock(homes_mu_);
    drained_ = true;
    for (const auto& [name, lane] : lanes_) batchers.push_back(lane->batcher.get());
  }
  for (MicroBatcher* batcher : batchers) batcher->Drain();
}

}  // namespace sidet
