#include "server/wire.h"

#include <cmath>
#include <cstdio>

namespace sidet {

std::string_view ToString(GatewayOp op) {
  switch (op) {
    case GatewayOp::kJudge:
      return "judge";
    case GatewayOp::kContext:
      return "context";
    case GatewayOp::kHealth:
      return "health";
    case GatewayOp::kStats:
      return "stats";
    case GatewayOp::kMetrics:
      return "metrics";
    case GatewayOp::kReload:
      return "reload";
    case GatewayOp::kTrace:
      return "trace";
    case GatewayOp::kExplain:
      return "explain";
    case GatewayOp::kQuery:
      return "query";
  }
  return "unknown";
}

namespace {

Result<GatewayOp> OpFromString(std::string_view name) {
  if (name == "judge") return GatewayOp::kJudge;
  if (name == "context") return GatewayOp::kContext;
  if (name == "health") return GatewayOp::kHealth;
  if (name == "stats") return GatewayOp::kStats;
  if (name == "metrics") return GatewayOp::kMetrics;
  if (name == "reload") return GatewayOp::kReload;
  if (name == "trace") return GatewayOp::kTrace;
  if (name == "explain") return GatewayOp::kExplain;
  if (name == "query") return GatewayOp::kQuery;
  return Error("unknown op '" + std::string(name) + "'");
}

// --- fast-path judge scanner -------------------------------------------------

bool ScanSpace(const char*& p, const char* end) {
  while (p < end && (*p == ' ' || *p == '\t')) ++p;
  return p < end;
}

// Quoted string without escape sequences; escapes bail to the full parser.
bool ScanPlainString(const char*& p, const char* end, std::string_view* out) {
  if (p >= end || *p != '"') return false;
  const char* start = ++p;
  while (p < end && *p != '"') {
    if (*p == '\\') return false;
    ++p;
  }
  if (p >= end) return false;
  *out = std::string_view(start, static_cast<std::size_t>(p - start));
  ++p;
  return true;
}

// Plain decimal digits; signs, fractions and exponents bail.
bool ScanUint(const char*& p, const char* end, std::uint64_t* out) {
  if (p >= end || *p < '0' || *p > '9') return false;
  std::uint64_t value = 0;
  while (p < end && *p >= '0' && *p <= '9') {
    value = value * 10 + static_cast<std::uint64_t>(*p - '0');
    ++p;
  }
  if (p < end && (*p == '.' || *p == 'e' || *p == 'E')) return false;
  *out = value;
  return true;
}

void AppendJsonNumber(std::string& out, double value) {
  // Mirrors the Json printer: integral values print as integers, the rest
  // with enough digits to round-trip.
  char buf[32];
  if (std::isfinite(value) && value == std::floor(value) && std::abs(value) < 1e15) {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(value));
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", value);
  }
  out += buf;
}

}  // namespace

bool FastParseJudgeRequest(std::string_view line, WireRequest* out) {
  const char* p = line.data();
  const char* end = p + line.size();
  if (!ScanSpace(p, end) || *p++ != '{') return false;

  std::string_view op;
  std::string_view home;
  std::string_view instruction;
  std::uint64_t id = 0;
  std::uint64_t time = 0;
  if (!ScanSpace(p, end)) return false;
  if (*p == '}') {
    ++p;
  } else {
    for (;;) {
      std::string_view key;
      if (!ScanSpace(p, end) || !ScanPlainString(p, end, &key)) return false;
      if (!ScanSpace(p, end) || *p++ != ':') return false;
      if (!ScanSpace(p, end)) return false;
      if (key == "op") {
        if (!ScanPlainString(p, end, &op)) return false;
      } else if (key == "home") {
        if (!ScanPlainString(p, end, &home)) return false;
      } else if (key == "instruction") {
        if (!ScanPlainString(p, end, &instruction)) return false;
      } else if (key == "id") {
        if (!ScanUint(p, end, &id)) return false;
      } else if (key == "time") {
        if (!ScanUint(p, end, &time)) return false;
      } else {
        return false;  // snapshots and unknown members take the full parser
      }
      if (!ScanSpace(p, end)) return false;
      if (*p == ',') {
        ++p;
        continue;
      }
      if (*p == '}') {
        ++p;
        break;
      }
      return false;
    }
  }
  ScanSpace(p, end);
  if (p != end) return false;
  if (op != "judge" || instruction.empty()) return false;

  out->op = GatewayOp::kJudge;
  out->id = id;
  if (!home.empty()) out->home.assign(home);
  out->instruction.assign(instruction);
  out->time = SimTime(static_cast<std::int64_t>(time));
  out->snapshot.reset();
  return true;
}

Result<WireRequest> ParseWireRequest(std::string_view line) {
  Result<Json> parsed = Json::Parse(line);
  if (!parsed.ok()) return parsed.error().context("request line");
  const Json& json = parsed.value();
  if (!json.is_object()) return Error("request line: expected a JSON object");

  const Json* op_field = json.find("op");
  if (op_field == nullptr || !op_field->is_string()) {
    return Error("request line: missing string field 'op'");
  }
  Result<GatewayOp> op = OpFromString(op_field->as_string());
  if (!op.ok()) return op.error();

  WireRequest request;
  request.op = op.value();
  if (const Json* id = json.find("id"); id != nullptr) {
    if (!id->is_number() || id->as_number() < 0) {
      return Error("request line: 'id' must be a non-negative number");
    }
    request.id = static_cast<std::uint64_t>(id->as_number());
  }
  if (const Json* home = json.find("home"); home != nullptr) {
    if (!home->is_string()) return Error("request line: 'home' must be a string");
    request.home = home->as_string();
  }
  request.time = SimTime(static_cast<std::int64_t>(json.number_or("time", 0)));

  if (const Json* snapshot = json.find("snapshot"); snapshot != nullptr) {
    Result<SensorSnapshot> decoded = SensorSnapshot::FromJson(*snapshot);
    if (!decoded.ok()) return decoded.error().context("request snapshot");
    request.snapshot = std::move(decoded).value();
    // A snapshot without its own timestamp inherits the request's.
    if (request.snapshot->time() == SimTime() && request.time != SimTime()) {
      request.snapshot->set_time(request.time);
    }
  }

  // Optional propagated trace context. Unknown/malformed values degrade to
  // "untraced" so a peer speaking a newer protocol revision never faults an
  // older gateway.
  if (const Json* trace = json.find("trace"); trace != nullptr && trace->is_string()) {
    request.trace.trace_id = ParseTraceId(trace->as_string());
  }
  if (const Json* span = json.find("span"); span != nullptr && span->is_string()) {
    request.trace.parent_span = ParseTraceId(span->as_string());
  }
  request.trace.sampled = json.bool_or("sampled", false);

  switch (request.op) {
    case GatewayOp::kJudge:
    case GatewayOp::kExplain: {
      const Json* instruction = json.find("instruction");
      if (instruction == nullptr || !instruction->is_string() ||
          instruction->as_string().empty()) {
        return Error(std::string(ToString(request.op)) +
                     " request: missing string field 'instruction'");
      }
      request.instruction = instruction->as_string();
      if (request.op == GatewayOp::kExplain) {
        request.top_k = static_cast<std::int64_t>(json.number_or("top_k", 5));
        if (request.top_k < 1) {
          return Error("explain request: 'top_k' must be at least 1");
        }
      }
      break;
    }
    case GatewayOp::kQuery: {
      const Json* series = json.find("series");
      if (series == nullptr || !series->is_string() || series->as_string().empty()) {
        return Error("query request: missing string field 'series'");
      }
      request.series = series->as_string();
      request.series_labels = json.string_or("labels", "");
      request.window_seconds =
          static_cast<std::int64_t>(json.number_or("window_seconds", 60));
      if (request.window_seconds < 1) {
        return Error("query request: 'window_seconds' must be at least 1");
      }
      request.query_points = json.bool_or("points", false);
      break;
    }
    case GatewayOp::kContext:
      if (!request.snapshot.has_value()) {
        return Error("context request: missing field 'snapshot'");
      }
      break;
    case GatewayOp::kReload: {
      const Json* path = json.find("path");
      if (path == nullptr || !path->is_string() || path->as_string().empty()) {
        return Error("reload request: missing string field 'path'");
      }
      request.model_path = path->as_string();
      break;
    }
    case GatewayOp::kTrace:
      request.chrome_trace = json.bool_or("chrome", false);
      break;
    case GatewayOp::kHealth:
      request.window_seconds =
          static_cast<std::int64_t>(json.number_or("window_seconds", 60));
      if (request.window_seconds < 1) {
        return Error("health request: 'window_seconds' must be at least 1");
      }
      break;
    case GatewayOp::kStats:
    case GatewayOp::kMetrics:
      break;
  }
  return request;
}

std::string WireJudgeResponse(std::uint64_t id, const Judgement& judgement) {
  return WireJudgeResponse(id, judgement, 0);
}

std::string WireJudgeResponse(std::uint64_t id, const Judgement& judgement,
                              std::uint64_t trace_id) {
  // Hand-rendered: one response per judge request makes this the hottest
  // formatter in the gateway, and the field set is fixed. Byte-identical to
  // the Json-tree rendering of the same members; the optional trailing
  // `trace` member keeps trace_id == 0 responses byte-identical to the
  // pre-tracing protocol.
  std::string out;
  out.reserve(96 + judgement.reason.size() + (trace_id != 0 ? 28 : 0));
  out += "{\"id\":";
  out += std::to_string(id);
  out += ",\"ok\":true,\"sensitive\":";
  out += judgement.sensitive ? "true" : "false";
  out += ",\"allowed\":";
  out += judgement.allowed ? "true" : "false";
  out += ",\"consistency\":";
  AppendJsonNumber(out, judgement.consistency);
  out += ",\"reason\":";
  out += JsonQuote(judgement.reason);
  if (trace_id != 0) {
    out += ",\"trace\":\"";
    out += FormatTraceId(trace_id);
    out += '"';
  }
  out += '}';
  return out;
}

std::string WireErrorResponse(std::uint64_t id, int code, std::string_view error) {
  Json response = Json::Object();
  response["id"] = id;
  response["ok"] = false;
  response["code"] = code;
  response["error"] = std::string(error);
  return response.Dump();
}

std::string WireOkResponse(std::uint64_t id) {
  Json response = Json::Object();
  response["id"] = id;
  response["ok"] = true;
  return response.Dump();
}

std::string WireObjectResponse(std::uint64_t id, Json body) {
  Json response = Json::Object();
  response["id"] = id;
  response["ok"] = true;
  for (auto& [key, value] : body.as_object()) {
    response[key] = value;
  }
  return response.Dump();
}

}  // namespace sidet
