// Gateway — the TCP serving layer in front of the IDS (the network front
// door of the Fig 3 deployment position).
//
// One event-loop thread owns every socket: a poll(2) loop accepts
// connections, splits reads on '\n', parses wire requests, and answers
// health/stats/metrics/context/reload inline. Judge requests are admitted
// into the GatewayRouter, whose per-home MicroBatcher workers coalesce them
// into JudgeBatch calls; completions append the correlated response to the
// connection's outbox and wake the loop through a self-pipe, so the loop
// thread remains the only writer of any fd.
//
// Admission happens at two levels: per connection (`max_inflight_per_
// connection` judge requests awaiting verdicts; excess answers 429 without
// touching the router) and per home lane (the batcher's bounded queue —
// kShed maps to 429, kClosed during drain to 503).
//
// Port selection is race-free by construction: the default config binds port
// 0 and Start() reports the kernel-chosen port via port(), so parallel CTest
// jobs never collide.
//
// Shutdown() drains gracefully: stop accepting, let the router flush every
// admitted task, then keep the loop alive until each response byte is
// written (bounded by drain_timeout_ms) before closing sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "instructions/instruction.h"
#include "server/router.h"
#include "server/wire.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "util/json.h"
#include "util/result.h"

namespace sidet {

class TimeSeriesStore;
class SloEngine;
class DriftMonitor;

// Optional observability back-ends behind the gateway's ops surface: the
// `query` wire command and the `health` per-home scorecard (DESIGN.md §17).
// Nothing here is owned; everything must outlive the gateway. The store is
// the substrate — without it `query` answers 404 and `health` keeps its
// original liveness-only body; the SLO engine and drift monitor each add
// their trend section to the scorecard when present.
struct GatewayOpsHooks {
  TimeSeriesStore* timeseries = nullptr;
  const SloEngine* slo = nullptr;
  const DriftMonitor* drift = nullptr;
};

struct GatewayConfig {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  // 0 = kernel-chosen ephemeral port (see port())
  int backlog = 64;
  std::size_t max_connections = 256;
  std::size_t max_line_bytes = 1 << 20;  // oversize frame => 400 + close
  std::size_t max_inflight_per_connection = 256;
  std::int64_t drain_timeout_ms = 5000;  // response-flush bound in Shutdown
};

class Gateway {
 public:
  // `router` and `registry` (the instruction catalogue) are not owned and
  // must outlive the gateway. Telemetry/tracing pointers are optional, not
  // owned. With `tracing` attached every judge request is traced end to end
  // (admission -> queue -> judge -> respond -> writeback), responses carry a
  // `trace` field, and the tail store retains exemplars; pass the same
  // RequestTracing to the GatewayRouter so batch stages are annotated.
  Gateway(GatewayRouter& router, const InstructionRegistry& instructions,
          GatewayConfig config = {}, MetricsRegistry* metrics = nullptr,
          SpanTracer* tracer = nullptr, RequestTracing* tracing = nullptr);
  ~Gateway();  // Shutdown

  Gateway(const Gateway&) = delete;
  Gateway& operator=(const Gateway&) = delete;

  // Binds, listens, and spawns the event loop. After an ok Start, port()
  // returns the actually-bound port.
  Status Start();
  std::uint16_t port() const { return port_; }
  bool serving() const { return running_.load() && !stop_accepting_.load(); }

  // Attaches the ops-surface back-ends. Call before Start(); the loop thread
  // reads the hooks without synchronization.
  void AttachOps(GatewayOpsHooks ops) { ops_ = ops; }

  // Graceful drain; safe to call repeatedly and from any thread except the
  // loop thread.
  void Shutdown();

  struct Stats {
    std::uint64_t connections = 0;
    std::uint64_t requests = 0;
    std::uint64_t judges = 0;
    std::uint64_t responses = 0;
    std::uint64_t parse_errors = 0;
    std::uint64_t shed = 0;  // 429s from either admission level
  };
  Stats stats() const;
  Json StatsJson() const;  // gateway + router sections (the `stats` op body)

 private:
  struct Connection;

  void Loop();
  void Wake();
  void AcceptNew();
  // Reads and processes one connection; returns false when it should close.
  bool ServiceInput(const std::shared_ptr<Connection>& conn);
  void HandleLine(const std::shared_ptr<Connection>& conn, std::string_view line);
  void HandleJudge(const std::shared_ptr<Connection>& conn, WireRequest request);
  void HandleExplain(const std::shared_ptr<Connection>& conn, const WireRequest& request);
  void HandleQuery(const std::shared_ptr<Connection>& conn, const WireRequest& request);
  // The `health` scorecard body: per-home lane/shed/block state joined with
  // windowed rates from the time-series store, SLO burn trends, drift trends
  // and the most recent explain summaries. Requires ops_.timeseries.
  Json HealthScorecard(std::int64_t window_seconds) const;
  double UptimeSeconds() const;
  // Appends one framed response line to the loop-owned write buffer; with a
  // trace, stamps staged_us and registers the line's final byte for
  // writeback attribution.
  void Reply(const std::shared_ptr<Connection>& conn, std::string line,
             const std::shared_ptr<RequestTrace>& trace = nullptr);
  bool FlushOutput(const std::shared_ptr<Connection>& conn);  // false => close
  // Finalizes traces whose last response byte the connection will never
  // write (connection torn down with staged output pending).
  void FinalizeConnectionTraces(Connection& conn);

  GatewayRouter& router_;
  const InstructionRegistry& instructions_;
  const GatewayConfig config_;
  MetricsRegistry* metrics_;  // not owned, may be null
  SpanTracer* tracer_;        // not owned, may be null
  RequestTracing* tracing_;   // not owned, may be null
  GatewayOpsHooks ops_;       // nothing owned; see AttachOps

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_accepting_{false};
  std::atomic<bool> finish_{false};
  std::atomic<bool> wake_pending_{false};  // coalesces self-pipe wake bytes
  std::thread loop_;

  std::map<int, std::shared_ptr<Connection>> connections_;  // loop-thread only

  std::atomic<std::uint64_t> connections_total_{0};
  std::atomic<std::uint64_t> requests_total_{0};
  std::atomic<std::uint64_t> judges_total_{0};
  std::atomic<std::uint64_t> responses_total_{0};
  std::atomic<std::uint64_t> parse_errors_total_{0};
  std::atomic<std::uint64_t> shed_total_{0};

  // Registry instruments (null when detached).
  Counter* m_connections_ = nullptr;
  Counter* m_requests_ = nullptr;
  Counter* m_responses_ = nullptr;
  Counter* m_parse_errors_ = nullptr;
  Counter* m_shed_ = nullptr;
  Gauge* m_open_connections_ = nullptr;
  Gauge* m_uptime_seconds_ = nullptr;
  Histogram* m_judge_e2e_seconds_ = nullptr;

  std::atomic<std::int64_t> started_us_{0};  // MonotonicMicros at Start()

  // Most recent explain summaries per home, newest last — the scorecard's
  // "what has been driving verdicts lately" section. Bounded; guarded by
  // explain_mu_ (the loop thread writes, health reads on the same thread,
  // but StatsJson-style external callers may read concurrently).
  static constexpr std::size_t kRecentExplainCap = 16;
  mutable std::mutex explain_mu_;
  std::map<std::string, std::deque<Json>> recent_explains_;
};

}  // namespace sidet
