#include "server/batcher.h"

#include <algorithm>
#include <chrono>

namespace sidet {

namespace {

// Snapshot used for judge tasks that arrive with no context at all: sensitive
// rows then fail closed with the model's missing-sensor error, exactly as a
// caller of Judge() with an empty snapshot would see.
const std::shared_ptr<const SensorSnapshot>& EmptySnapshot() {
  static const std::shared_ptr<const SensorSnapshot> kEmpty =
      std::make_shared<SensorSnapshot>();
  return kEmpty;
}

}  // namespace

std::string_view ToString(Admission admission) {
  switch (admission) {
    case Admission::kAccepted:
      return "accepted";
    case Admission::kShed:
      return "shed";
    case Admission::kClosed:
      return "closed";
    case Admission::kUnknownHome:
      return "unknown_home";
  }
  return "unknown";
}

MicroBatcher::MicroBatcher(BatchPolicy policy, BatchFn run)
    : policy_(policy), run_(std::move(run)) {
  worker_ = std::thread([this] { WorkerLoop(); });
}

MicroBatcher::~MicroBatcher() { Drain(); }

void MicroBatcher::AttachTelemetry(MetricsRegistry* registry, const std::string& home,
                                   SpanTracer* tracer) {
  tracer_ = tracer;
  if (registry == nullptr) return;
  const std::string label = "home=\"" + home + "\"";
  depth_gauge_ = registry->GetGauge("sidet_gateway_queue_depth", label,
                                    "Judge tasks waiting in the intake queue");
  batch_rows_ = registry->GetHistogram("sidet_gateway_batch_rows", label,
                                       {1, 2, 4, 8, 16, 32, 64, 128, 256, 512},
                                       "Rows per coalesced JudgeBatch call");
  queue_wait_seconds_ =
      registry->GetHistogram("sidet_gateway_queue_wait_seconds", label, {},
                             "Submit-to-batch-start wait of accepted judge tasks");
  shed_total_ = registry->GetCounter("sidet_gateway_shed_total", label,
                                     "Judge tasks rejected by the bounded intake queue");
  batches_total_ = registry->GetCounter("sidet_gateway_batches_total", label,
                                        "Coalesced JudgeBatch calls");
}

Admission MicroBatcher::Submit(JudgeTask task) {
  task.enqueue_us = MonotonicMicros();
  if (task.trace != nullptr) task.trace->submitted_us = task.enqueue_us;
  if (task.snapshot == nullptr) task.snapshot = EmptySnapshot();
  std::unique_lock<std::mutex> lock(mu_);
  if (draining_) {
    ++stats_.rejected_closed;
    return Admission::kClosed;
  }
  if (queue_.size() >= policy_.queue_capacity) {
    if (policy_.overflow == OverflowPolicy::kShed) {
      ++stats_.shed;
      if (shed_total_ != nullptr) shed_total_->Increment();
      return Admission::kShed;
    }
    space_cv_.wait(lock, [this] {
      return draining_ || queue_.size() < policy_.queue_capacity;
    });
    if (draining_) {
      ++stats_.rejected_closed;
      return Admission::kClosed;
    }
  }
  ++stats_.submitted;
  queue_.push_back(std::move(task));
  if (depth_gauge_ != nullptr) depth_gauge_->Set(static_cast<double>(queue_.size()));
  work_cv_.notify_one();
  return Admission::kAccepted;
}

void MicroBatcher::Drain() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    draining_ = true;
  }
  work_cv_.notify_all();
  space_cv_.notify_all();
  if (worker_.joinable()) worker_.join();
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t MicroBatcher::depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

std::int64_t MicroBatcher::effective_delay_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return EffectiveDelayLocked();
}

std::int64_t MicroBatcher::EffectiveDelayLocked() const {
  const std::int64_t floor_us = std::min(policy_.min_delay_us, policy_.max_delay_us);
  const std::int64_t span_us = policy_.max_delay_us - floor_us;
  return floor_us + static_cast<std::int64_t>(fill_ewma_ * static_cast<double>(span_us));
}

void MicroBatcher::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [this] { return draining_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (draining_) return;
      continue;
    }

    // Coalesce: wait for more rows until the batch fills or the oldest task's
    // deadline passes. Draining flushes immediately.
    if (!draining_ && queue_.size() < policy_.max_batch) {
      const std::int64_t deadline_us = queue_.front().enqueue_us + EffectiveDelayLocked();
      while (!draining_ && queue_.size() < policy_.max_batch) {
        const std::int64_t remaining_us = deadline_us - MonotonicMicros();
        if (remaining_us <= 0) break;
        work_cv_.wait_for(lock, std::chrono::microseconds(remaining_us));
      }
    }

    const std::size_t take = std::min(queue_.size(), policy_.max_batch);
    batch_scratch_.clear();
    batch_scratch_.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch_scratch_.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    ++stats_.batches;
    if (take >= policy_.max_batch) {
      ++stats_.full_flushes;
    } else if (draining_) {
      ++stats_.drain_flushes;
    } else {
      ++stats_.deadline_flushes;
    }
    fill_ewma_ = 0.8 * fill_ewma_ +
                 0.2 * (static_cast<double>(take) / static_cast<double>(policy_.max_batch));
    if (depth_gauge_ != nullptr) depth_gauge_->Set(static_cast<double>(queue_.size()));
    if (batches_total_ != nullptr) batches_total_->Increment();
    space_cv_.notify_all();

    lock.unlock();
    RunBatch();
    lock.lock();
  }
}

void MicroBatcher::RunBatch() {
  std::vector<JudgeTask>& batch = batch_scratch_;
  const TraceSpan span(tracer_, "gateway.batch", "gateway");
  const std::int64_t start_us = MonotonicMicros();
  if (batch_rows_ != nullptr) batch_rows_->Observe(static_cast<double>(batch.size()));
  if (queue_wait_seconds_ != nullptr) {
    for (const JudgeTask& task : batch) {
      queue_wait_seconds_->Observe(static_cast<double>(start_us - task.enqueue_us) * 1e-6);
    }
  }

  request_scratch_.clear();
  request_scratch_.reserve(batch.size());
  bool any_traced = false;
  for (const JudgeTask& task : batch) {
    request_scratch_.push_back(JudgeRequest{task.instruction, task.snapshot.get(), task.time,
                                            task.trace != nullptr ? task.trace->trace_id : 0});
    any_traced |= task.trace != nullptr;
  }
  std::vector<Judgement> verdicts = run_(request_scratch_, policy_.judge_threads);
  if (any_traced) {
    // Stamp the batch window and the batch-level stage clocks into every
    // traced task; per-row attribution inside a coalesced batch is not
    // meaningful, so the whole batch's clocks annotate each member.
    const std::int64_t judge_end_us = MonotonicMicros();
    const BatchStageMicros stages = stage_probe_ ? stage_probe_() : BatchStageMicros{};
    for (const JudgeTask& task : batch) {
      if (task.trace == nullptr) continue;
      RequestTrace& trace = *task.trace;
      trace.batch_start_us = start_us;
      trace.judge_end_us = judge_end_us;
      trace.classify_us = stages.classify_us;
      trace.score_us = stages.score_us;
      trace.verdict_us = stages.verdict_us;
      trace.batch_rows = batch.size();
    }
  }
  // A misbehaving BatchFn (wrong row count) fails closed instead of crashing
  // the worker: missing rows report an internal error verdict.
  Judgement internal_error;
  internal_error.sensitive = true;
  internal_error.allowed = false;
  internal_error.consistency = 0.0;
  internal_error.reason = "internal: batch executor returned wrong row count";
  // Count the batch before delivering verdicts: a caller that observes its
  // response must also observe the completion in stats.
  {
    std::lock_guard<std::mutex> lock(mu_);
    stats_.completed += batch.size();
  }
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const Judgement& verdict = i < verdicts.size() ? verdicts[i] : internal_error;
    if (batch[i].done) batch[i].done(verdict);
  }
  // Release task snapshots/callbacks now rather than holding them until the
  // next flush; the vectors keep their capacity.
  batch.clear();
}

}  // namespace sidet
