// Gateway wire protocol: newline-delimited JSON request/response framing.
//
// The serving layer sits where the paper's Fig 3 deployment puts the IDS —
// inline between the automation platform and the devices — so the protocol
// mirrors what that hop needs: `judge` requests carrying an instruction name
// (and optionally an inline sensor snapshot), `context` pushes that update a
// home's ambient sensor state, and `health` / `stats` / `metrics` / `reload`
// operations for operating the gateway itself.
//
// Framing rules (DESIGN.md §12):
//   * one request per line, one response per line, both compact JSON — the
//     printer never emits raw newlines, so '\n' is an unambiguous delimiter;
//   * every response echoes the request's `id` (0 when the request carried
//     none or could not be parsed far enough to find one);
//   * errors are in-band: `{"id":N,"ok":false,"code":429,"error":"..."}`
//     with HTTP-flavoured codes (400 bad request, 404 unknown name, 429
//     overloaded/shed, 500 internal, 503 draining).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/ids.h"
#include "sensors/snapshot.h"
#include "telemetry/tracing.h"
#include "util/json.h"
#include "util/result.h"

namespace sidet {

enum class GatewayOp : std::uint8_t {
  kJudge = 0,  // judge one instruction against inline or ambient context
  kContext,    // replace a home's ambient sensor snapshot
  kHealth,     // liveness + per-home health scorecard (when ops attached)
  kStats,      // gateway + per-home counters as JSON
  kMetrics,    // Prometheus text exposition (embedded as a JSON string)
  kReload,     // hot-swap a home's model from a ModelStore JSON file
  kTrace,      // tail-sampled request exemplars (span trees) as JSON
  kExplain,    // judge + top-k feature attribution (DESIGN.md §17)
  kQuery,      // windowed time-series query over retained metric history
};

std::string_view ToString(GatewayOp op);

// In-band error codes, HTTP-flavoured so operators read them on sight.
inline constexpr int kWireBadRequest = 400;
inline constexpr int kWireNotFound = 404;
inline constexpr int kWireOverloaded = 429;  // shed by admission control
inline constexpr int kWireInternal = 500;
inline constexpr int kWireDraining = 503;

struct WireRequest {
  GatewayOp op = GatewayOp::kHealth;
  std::uint64_t id = 0;          // client correlation id, echoed verbatim
  std::string home = "default";  // tenant routing key
  std::string instruction;       // judge: instruction name, e.g. "window.open"
  SimTime time;                  // judge/context: simulated timestamp
  // judge: optional inline context overriding the home's ambient snapshot;
  // context: the new ambient snapshot (required).
  std::optional<SensorSnapshot> snapshot;
  std::string model_path;        // reload: ModelStore JSON document
  // judge: optional propagated trace context (`trace`/`span` 16-hex ids,
  // `sampled` bool). Optional on the wire in both directions — old peers
  // ignore the members, old requests leave it zeroed. A malformed id reads
  // as 0 (untraced), never as a parse error.
  TraceContext trace;
  // trace: render exemplars as a chrome://tracing document instead of the
  // raw span-tree array (`"chrome":true`).
  bool chrome_trace = false;
  // explain: contributions to return, |contribution| descending (`top_k`).
  std::int64_t top_k = 5;
  // query: flattened series name (histograms expose `name:count`/`name:sum`/
  // `name:p50`/`name:p95`/`name:p99`) and optional pre-rendered label
  // fragment, exactly as the registry keys them.
  std::string series;
  std::string series_labels;
  // query/health: lookback window ending at the newest retained sample.
  std::int64_t window_seconds = 60;
  // query: include the raw point array in the response (`"points":true`);
  // default returns only the window reductions to keep response lines small.
  bool query_points = false;
};

// Parses one request line. Fails (code-less) on malformed JSON, unknown op,
// or a missing required field; the caller wraps the message in a 400.
Result<WireRequest> ParseWireRequest(std::string_view line);

// Hot-path scanner for the dominant judge-line shape (flat object, known
// keys, no inline snapshot, no escape sequences): fills *out and returns
// true, or returns false — never an error — on anything it does not
// recognize, in which case the caller falls back to ParseWireRequest. Every
// line it accepts parses identically under the full parser; the single
// event-loop thread parses each request, so this is load-bearing for
// gateway throughput.
bool FastParseJudgeRequest(std::string_view line, WireRequest* out);

// Response builders. All return one compact JSON line *without* the trailing
// '\n' (the connection writer appends the frame delimiter).
std::string WireJudgeResponse(std::uint64_t id, const Judgement& judgement);
// Traced variant: appends `"trace":"<16-hex>"` when trace_id != 0; with
// trace_id == 0 the bytes are identical to the untraced form, so detached
// gateways keep emitting exactly the old responses.
std::string WireJudgeResponse(std::uint64_t id, const Judgement& judgement,
                              std::uint64_t trace_id);
std::string WireErrorResponse(std::uint64_t id, int code, std::string_view error);
std::string WireOkResponse(std::uint64_t id);                 // context/reload acks
std::string WireObjectResponse(std::uint64_t id, Json body);  // health/stats/metrics

}  // namespace sidet
