// Adaptive micro-batching scheduler for the gateway's judge path.
//
// PR 2's `ContextIds::JudgeBatch` amortizes context featurization and scores
// rows through the compiled flat-array trees, but only when calls arrive as
// batches. The network hands the gateway one request at a time, so this
// scheduler sits between the two: accepted judge tasks queue in a bounded
// intake buffer and a single worker thread coalesces them into JudgeBatch
// calls under a max-batch-size / max-delay policy, then completes each task's
// callback with its correlated verdict.
//
// Three policies are load-bearing:
//
//   * batching — a batch closes when it reaches `max_batch` rows or when the
//     oldest queued task has waited `delay` microseconds. The delay adapts
//     between [min_delay_us, max_delay_us] on an EWMA of recent batch fill:
//     sparse traffic (mostly singleton batches) pulls the delay toward the
//     floor so idle-period requests are not taxed for coalescing that will
//     not happen, while saturating traffic (full batches) pushes it toward
//     the ceiling to maximize amortization. Setting the floor equal to the
//     ceiling gives a fixed-delay scheduler (what the edge-case tests use).
//
//   * admission — the intake queue holds at most `queue_capacity` tasks.
//     Overflow either sheds (Submit returns kShed and the caller answers
//     429-style) or blocks the submitting thread until space frees
//     (backpressure propagates to the socket reader).
//
//   * drain — Drain() stops intake (further submits return kClosed) but the
//     worker keeps flushing until the queue is empty, so every *accepted*
//     task receives exactly one completion. The destructor drains too.
//
// Completions run on the worker thread; callbacks must be quick and must not
// re-enter the batcher.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "core/ids.h"
#include "sensors/snapshot.h"
#include "telemetry/metrics.h"
#include "telemetry/trace.h"
#include "telemetry/tracing.h"

namespace sidet {

enum class OverflowPolicy : std::uint8_t {
  kShed = 0,  // full queue rejects the task (429-style)
  kBlock,     // full queue blocks the submitter until space frees
};

struct BatchPolicy {
  std::size_t max_batch = 64;         // rows per JudgeBatch call
  std::int64_t max_delay_us = 2000;   // coalescing-delay ceiling
  std::int64_t min_delay_us = 0;      // coalescing-delay floor
  std::size_t queue_capacity = 1024;  // intake bound (admission control)
  OverflowPolicy overflow = OverflowPolicy::kShed;
  int judge_threads = 1;  // lanes inside each JudgeBatch call
};

enum class Admission : std::uint8_t {
  kAccepted = 0,
  kShed,        // bounded queue full under OverflowPolicy::kShed
  kClosed,      // draining or drained; no new work accepted
  kUnknownHome  // router-level: no lane for the tenant
};

std::string_view ToString(Admission admission);

// One queued judgement. The instruction points into registry storage that
// outlives the gateway; the snapshot is owned (inline context or a copy of
// the home's ambient snapshot) so nothing dangles while the task queues.
struct JudgeTask {
  const Instruction* instruction = nullptr;
  std::shared_ptr<const SensorSnapshot> snapshot;  // never null once submitted
  SimTime time;
  // Completion, invoked exactly once on the worker thread.
  std::function<void(const Judgement&)> done;
  std::int64_t enqueue_us = 0;  // stamped by Submit (MonotonicMicros)
  // Per-request trace record; null when tracing is detached (the untraced
  // path pays one pointer test). Submit stamps submitted_us, RunBatch
  // stamps the batch window and stage annotations.
  std::shared_ptr<RequestTrace> trace;
};

class MicroBatcher {
 public:
  // `run` executes one coalesced batch (the router points it at the home's
  // current ContextIds) and must return exactly one Judgement per request,
  // index-correlated.
  using BatchFn =
      std::function<std::vector<Judgement>(std::span<const JudgeRequest>, int threads)>;

  MicroBatcher(BatchPolicy policy, BatchFn run);
  ~MicroBatcher();  // drains

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  // Stamps `enqueue_us`, fills a null snapshot with a shared empty one, and
  // queues the task. kShed/kClosed tasks are NOT completed by the batcher —
  // the caller owns the rejection response.
  Admission Submit(JudgeTask task);

  // Stops intake, flushes every queued task, joins the worker. Idempotent.
  void Drain();

  struct Stats {
    std::uint64_t submitted = 0;
    std::uint64_t shed = 0;
    std::uint64_t rejected_closed = 0;
    std::uint64_t completed = 0;
    std::uint64_t batches = 0;
    std::uint64_t full_flushes = 0;      // batch closed by max_batch
    std::uint64_t deadline_flushes = 0;  // batch closed by the delay deadline
    std::uint64_t drain_flushes = 0;     // batch closed because of Drain()
  };
  Stats stats() const;
  std::size_t depth() const;
  // Current adaptive coalescing delay (µs) — observable for tests/stats.
  std::int64_t effective_delay_us() const;

  // Registers sidet_gateway_* instruments labelled home="<home>": queue
  // depth gauge, batch-size and queue-wait histograms, shed/flush counters.
  // Spans record one "gateway.batch" slice per flush when `tracer` is given.
  // Call before the first Submit; pointers are not owned.
  void AttachTelemetry(MetricsRegistry* registry, const std::string& home,
                       SpanTracer* tracer = nullptr);

  // Tracing hook: after each BatchFn call with traced tasks in the batch,
  // the probe reads the batch's stage wall clocks (the router wires it to
  // the lane's ContextIds::last_batch_stages). Runs on the worker thread
  // immediately after `run` returns. Call before the first Submit.
  using StageProbe = std::function<BatchStageMicros()>;
  void SetStageProbe(StageProbe probe) { stage_probe_ = std::move(probe); }

 private:
  void WorkerLoop();
  // Runs the tasks currently staged in batch_scratch_ and completes them.
  void RunBatch();
  std::int64_t EffectiveDelayLocked() const;

  const BatchPolicy policy_;
  const BatchFn run_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // worker wakeups
  std::condition_variable space_cv_;  // kBlock submitters
  std::deque<JudgeTask> queue_;
  bool draining_ = false;
  Stats stats_;
  // EWMA of batch fill (rows / max_batch) in [0, 1]; drives the delay.
  double fill_ewma_ = 0.0;

  // Telemetry handles (null when detached).
  Gauge* depth_gauge_ = nullptr;
  Histogram* batch_rows_ = nullptr;
  Histogram* queue_wait_seconds_ = nullptr;
  Counter* shed_total_ = nullptr;
  Counter* batches_total_ = nullptr;
  SpanTracer* tracer_ = nullptr;
  StageProbe stage_probe_;

  // Worker-thread flush scratch, reused across batches so a steady-state
  // flush moves tasks and assembles JudgeRequest rows without growing either
  // buffer — the wire -> feature-vector path allocates nothing per row once
  // warm. Only the worker thread touches these, outside mu_.
  std::vector<JudgeTask> batch_scratch_;
  std::vector<JudgeRequest> request_scratch_;

  std::thread worker_;
};

}  // namespace sidet
