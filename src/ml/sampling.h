// Class-imbalance correction (§IV.C.2): "there are two under-sampling
// methods and over-sampling to improve the uneven data set. Combined with the
// actual situation, we choose the oversampling method."
//
// Three strategies:
//   RandomOversample — duplicate minority rows until balanced (the paper's
//     choice);
//   SmoteOversample  — synthesize minority rows by interpolating between a
//     minority row and one of its k nearest minority neighbours (numeric
//     features interpolate; categorical features copy from one parent);
//   RandomUndersample — drop majority rows (implemented for the ablation).
#pragma once

#include "ml/dataset.h"
#include "util/rng.h"

namespace sidet {

// All return a new dataset whose minority class has been grown (or majority
// shrunk) to `target_ratio` × majority (1.0 = fully balanced). A dataset
// with one class or already satisfying the ratio is returned unchanged.
//
// The oversamplers draw every synthetic row from its own rng.Fork(row)
// stream and shard row synthesis across `threads` workers (1 = sequential,
// 0 = hardware concurrency); the output is bit-identical at any thread
// count and `rng` itself is never advanced by the row loop.
Dataset RandomOversample(const Dataset& data, Rng& rng, double target_ratio = 1.0,
                         int threads = 1);
Dataset SmoteOversample(const Dataset& data, Rng& rng, int k = 5, double target_ratio = 1.0,
                        int threads = 1);
Dataset RandomUndersample(const Dataset& data, Rng& rng, double target_ratio = 1.0);

}  // namespace sidet
