#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"
#include "util/thread_pool.h"

namespace sidet {

RandomForest::RandomForest(RandomForestParams params) : params_(params) {}

Status RandomForest::Fit(const Dataset& data) {
  if (data.empty()) return Error("cannot fit a random forest on an empty dataset");
  if (params_.trees < 1) return Error("random forest needs at least one tree");

  const std::size_t total_features = data.num_features();
  std::size_t per_tree = params_.max_features;
  if (per_tree == 0) {
    per_tree = static_cast<std::size_t>(
        std::max(1.0, std::round(std::sqrt(static_cast<double>(total_features)))));
  }
  per_tree = std::min(per_tree, total_features);

  const auto bag_size = static_cast<std::size_t>(
      std::max(1.0, params_.bootstrap_fraction * static_cast<double>(data.size())));
  const auto tree_count = static_cast<std::size_t>(params_.trees);

  // Every tree gets its own seed stream derived from (seed, tree index), so
  // the draws below do not depend on which worker runs which tree, or when.
  const Rng master(params_.seed);

  std::vector<DecisionTree> trees;
  trees.reserve(tree_count);
  for (std::size_t t = 0; t < tree_count; ++t) trees.emplace_back(params_.tree_params);
  std::vector<std::vector<std::size_t>> tree_features(tree_count);
  std::vector<Status> statuses(tree_count, Status::Ok());

  ParallelFor(params_.threads, tree_count, [&](std::size_t t) {
    Rng rng = master.Fork(t);

    // Feature subsample.
    std::vector<std::size_t> features = rng.SampleWithoutReplacement(total_features, per_tree);
    std::sort(features.begin(), features.end());

    std::vector<FeatureSpec> specs;
    specs.reserve(features.size());
    for (const std::size_t f : features) specs.push_back(data.features()[f]);

    // Bootstrap rows, projected onto the feature subset.
    Dataset bag((std::vector<FeatureSpec>(specs)));
    for (std::size_t i = 0; i < bag_size; ++i) {
      const auto row_index = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(data.size()) - 1));
      const std::span<const double> row = data.row(row_index);
      std::vector<double> projected;
      projected.reserve(features.size());
      for (const std::size_t f : features) projected.push_back(row[f]);
      bag.Add(std::move(projected), data.label(row_index));
    }

    const Status fitted = trees[t].Fit(bag);
    if (!fitted.ok()) {
      statuses[t] = fitted.error().context("forest tree " + std::to_string(t));
      return;
    }
    tree_features[t] = std::move(features);
  });

  for (const Status& status : statuses) {
    if (!status.ok()) return status;
  }

  trees_ = std::move(trees);
  tree_features_ = std::move(tree_features);

  // Importances accumulate in tree order — identical at any thread count.
  importances_.assign(total_features, 0.0);
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const std::vector<std::size_t>& features = tree_features_[t];
    for (std::size_t k = 0; k < features.size(); ++k) {
      importances_[features[k]] += trees_[t].feature_importances()[k];
    }
  }
  double sum = 0.0;
  for (const double w : importances_) sum += w;
  if (sum > 0.0) {
    for (double& w : importances_) w /= sum;
  }
  return Status::Ok();
}

double RandomForest::PredictProbability(std::span<const double> row) const {
  if (trees_.empty()) return 0.5;
  double total = 0.0;
  std::vector<double> projected;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    projected.clear();
    for (const std::size_t f : tree_features_[t]) projected.push_back(row[f]);
    total += trees_[t].PredictProbability(projected);
  }
  return total / static_cast<double>(trees_.size());
}

int RandomForest::Predict(std::span<const double> row) const {
  return PredictProbability(row) >= 0.5 ? 1 : 0;
}

Json RandomForest::ToJson() const {
  Json out = Json::Object();
  out["model"] = "random_forest";
  out["seed"] = static_cast<std::int64_t>(params_.seed);

  Json trees = Json::Array();
  for (const DecisionTree& tree : trees_) trees.as_array().push_back(tree.ToJson());
  out["trees"] = std::move(trees);

  Json features = Json::Array();
  for (const std::vector<std::size_t>& subset : tree_features_) {
    Json list = Json::Array();
    for (const std::size_t f : subset) list.as_array().push_back(static_cast<std::int64_t>(f));
    features.as_array().push_back(std::move(list));
  }
  out["tree_features"] = std::move(features);

  Json importances = Json::Array();
  for (const double w : importances_) importances.as_array().push_back(w);
  out["importances"] = std::move(importances);
  return out;
}

Result<RandomForest> RandomForest::FromJson(const Json& json) {
  if (!json.is_object() || json.string_or("model", "") != "random_forest") {
    return Error("not a serialized random forest");
  }
  RandomForest forest;
  forest.params_.seed = static_cast<std::uint64_t>(json.number_or("seed", 17));

  const Json* trees = json.find("trees");
  const Json* features = json.find("tree_features");
  if (trees == nullptr || !trees->is_array()) return Error("forest json lacks trees");
  if (features == nullptr || !features->is_array() ||
      features->as_array().size() != trees->as_array().size()) {
    return Error("forest json lacks per-tree feature subsets");
  }
  for (std::size_t t = 0; t < trees->as_array().size(); ++t) {
    Result<DecisionTree> tree = DecisionTree::FromJson(trees->as_array()[t]);
    if (!tree.ok()) return tree.error().context("forest tree " + std::to_string(t));
    forest.trees_.push_back(std::move(tree).value());

    const Json& subset = features->as_array()[t];
    if (!subset.is_array()) return Error("forest tree feature subset must be an array");
    std::vector<std::size_t> indices;
    for (const Json& f : subset.as_array()) {
      indices.push_back(f.is_number() ? static_cast<std::size_t>(f.as_number()) : 0);
    }
    forest.tree_features_.push_back(std::move(indices));
  }
  forest.params_.trees = static_cast<int>(forest.trees_.size());

  if (const Json* importances = json.find("importances"); importances && importances->is_array()) {
    for (const Json& w : importances->as_array()) {
      forest.importances_.push_back(w.is_number() ? w.as_number() : 0.0);
    }
  }
  return forest;
}

}  // namespace sidet
