#include "ml/random_forest.h"

#include <algorithm>
#include <cmath>

#include "util/rng.h"

namespace sidet {

RandomForest::RandomForest(RandomForestParams params) : params_(params) {}

Status RandomForest::Fit(const Dataset& data) {
  if (data.empty()) return Error("cannot fit a random forest on an empty dataset");
  if (params_.trees < 1) return Error("random forest needs at least one tree");

  const std::size_t total_features = data.num_features();
  std::size_t per_tree = params_.max_features;
  if (per_tree == 0) {
    per_tree = static_cast<std::size_t>(
        std::max(1.0, std::round(std::sqrt(static_cast<double>(total_features)))));
  }
  per_tree = std::min(per_tree, total_features);

  Rng rng(params_.seed);
  trees_.clear();
  tree_features_.clear();
  importances_.assign(total_features, 0.0);

  const auto bag_size = static_cast<std::size_t>(
      std::max(1.0, params_.bootstrap_fraction * static_cast<double>(data.size())));

  for (int t = 0; t < params_.trees; ++t) {
    // Feature subsample.
    std::vector<std::size_t> features = rng.SampleWithoutReplacement(total_features, per_tree);
    std::sort(features.begin(), features.end());

    std::vector<FeatureSpec> specs;
    specs.reserve(features.size());
    for (const std::size_t f : features) specs.push_back(data.features()[f]);

    // Bootstrap rows, projected onto the feature subset.
    Dataset bag((std::vector<FeatureSpec>(specs)));
    for (std::size_t i = 0; i < bag_size; ++i) {
      const auto row_index = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(data.size()) - 1));
      const std::span<const double> row = data.row(row_index);
      std::vector<double> projected;
      projected.reserve(features.size());
      for (const std::size_t f : features) projected.push_back(row[f]);
      bag.Add(std::move(projected), data.label(row_index));
    }

    DecisionTree tree(params_.tree_params);
    const Status fitted = tree.Fit(bag);
    if (!fitted.ok()) return fitted.error().context("forest tree " + std::to_string(t));

    for (std::size_t k = 0; k < features.size(); ++k) {
      importances_[features[k]] += tree.feature_importances()[k];
    }
    trees_.push_back(std::move(tree));
    tree_features_.push_back(std::move(features));
  }

  double sum = 0.0;
  for (const double w : importances_) sum += w;
  if (sum > 0.0) {
    for (double& w : importances_) w /= sum;
  }
  return Status::Ok();
}

double RandomForest::PredictProbability(std::span<const double> row) const {
  if (trees_.empty()) return 0.5;
  double total = 0.0;
  std::vector<double> projected;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    projected.clear();
    for (const std::size_t f : tree_features_[t]) projected.push_back(row[f]);
    total += trees_[t].PredictProbability(projected);
  }
  return total / static_cast<double>(trees_.size());
}

int RandomForest::Predict(std::span<const double> row) const {
  return PredictProbability(row) >= 0.5 ? 1 : 0;
}

}  // namespace sidet
