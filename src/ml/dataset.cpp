#include "ml/dataset.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdlib>

#include "util/csv.h"
#include "util/strings.h"

namespace sidet {

Dataset::Dataset(std::vector<FeatureSpec> features) : features_(std::move(features)) {}

void Dataset::Add(std::vector<double> row, int label) {
  assert(row.size() == features_.size());
  assert(label == 0 || label == 1);
  values_.insert(values_.end(), row.begin(), row.end());
  labels_.push_back(label);
}

std::span<const double> Dataset::row(std::size_t i) const {
  assert(i < size());
  return std::span<const double>(values_.data() + i * num_features(), num_features());
}

std::size_t Dataset::CountLabel(int label) const {
  return static_cast<std::size_t>(std::count(labels_.begin(), labels_.end(), label));
}

double Dataset::PositiveFraction() const {
  return empty() ? 0.0 : static_cast<double>(CountLabel(1)) / static_cast<double>(size());
}

std::vector<double> Dataset::Column(std::size_t feature) const {
  assert(feature < num_features());
  std::vector<double> out;
  out.reserve(size());
  for (std::size_t i = 0; i < size(); ++i) out.push_back(row(i)[feature]);
  return out;
}

Dataset Dataset::Subset(std::span<const std::size_t> indices) const {
  Dataset out(features_);
  for (const std::size_t i : indices) {
    const std::span<const double> r = row(i);
    out.Add(std::vector<double>(r.begin(), r.end()), label(i));
  }
  return out;
}

Dataset Dataset::EmptyLike() const { return Dataset(features_); }

Status Dataset::Append(const Dataset& other) {
  if (other.features_ != features_) return Error("appending dataset with different features");
  values_.insert(values_.end(), other.values_.begin(), other.values_.end());
  labels_.insert(labels_.end(), other.labels_.begin(), other.labels_.end());
  return Status::Ok();
}

void Dataset::Shuffle(Rng& rng) {
  // Fisher–Yates over rows, swapping in the flat value array.
  const std::size_t width = num_features();
  for (std::size_t i = size(); i > 1; --i) {
    const auto j = static_cast<std::size_t>(rng.UniformInt(0, static_cast<std::int64_t>(i) - 1));
    if (j == i - 1) continue;
    for (std::size_t f = 0; f < width; ++f) {
      std::swap(values_[(i - 1) * width + f], values_[j * width + f]);
    }
    std::swap(labels_[i - 1], labels_[j]);
  }
}

std::string Dataset::ToCsv() const {
  std::vector<CsvRow> rows;
  CsvRow header;
  for (const FeatureSpec& spec : features_) header.push_back(spec.name);
  header.push_back("label");
  rows.push_back(std::move(header));

  for (std::size_t i = 0; i < size(); ++i) {
    CsvRow csv_row;
    const std::span<const double> r = row(i);
    for (std::size_t f = 0; f < num_features(); ++f) {
      const FeatureSpec& spec = features_[f];
      if (spec.categorical) {
        const auto index = static_cast<std::size_t>(r[f]);
        csv_row.push_back(index < spec.categories.size() ? spec.categories[index]
                                                         : std::to_string(index));
      } else {
        csv_row.push_back(Format("%.10g", r[f]));
      }
    }
    csv_row.push_back(std::to_string(label(i)));
    rows.push_back(std::move(csv_row));
  }
  return WriteCsv(rows);
}

Result<Dataset> Dataset::FromCsv(std::string_view text, std::vector<FeatureSpec> features) {
  Result<std::vector<CsvRow>> parsed = ParseCsv(text);
  if (!parsed.ok()) return parsed.error().context("dataset csv");
  const std::vector<CsvRow>& rows = parsed.value();
  if (rows.empty()) return Error("dataset csv has no header");

  const std::size_t expected_cells = features.size() + 1;
  if (rows[0].size() != expected_cells) {
    return Error("csv header has " + std::to_string(rows[0].size()) + " cells, expected " +
                 std::to_string(expected_cells));
  }

  Dataset out(std::move(features));
  for (std::size_t r = 1; r < rows.size(); ++r) {
    const CsvRow& cells = rows[r];
    if (cells.size() != expected_cells) {
      return Error("csv row " + std::to_string(r) + " has " + std::to_string(cells.size()) +
                   " cells, expected " + std::to_string(expected_cells));
    }
    std::vector<double> values(out.num_features());
    for (std::size_t f = 0; f < out.num_features(); ++f) {
      const FeatureSpec& spec = out.features()[f];
      if (spec.categorical) {
        const auto it = std::find(spec.categories.begin(), spec.categories.end(), cells[f]);
        if (it == spec.categories.end()) {
          return Error("row " + std::to_string(r) + ": unknown category '" + cells[f] +
                       "' for feature " + spec.name);
        }
        values[f] = static_cast<double>(it - spec.categories.begin());
      } else {
        char* end = nullptr;
        const double parsed = std::strtod(cells[f].c_str(), &end);
        if (cells[f].empty() || end != cells[f].c_str() + cells[f].size() ||
            std::isnan(parsed)) {
          return Error("row " + std::to_string(r) + ": bad number '" + cells[f] + "'");
        }
        values[f] = parsed;
      }
    }
    int label = 0;
    try {
      label = std::stoi(cells.back());
    } catch (...) {
      return Error("row " + std::to_string(r) + ": bad label '" + cells.back() + "'");
    }
    if (label != 0 && label != 1) {
      return Error("row " + std::to_string(r) + ": label must be 0/1");
    }
    out.Add(std::move(values), label);
  }
  return out;
}

}  // namespace sidet
