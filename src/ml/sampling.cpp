#include "ml/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/thread_pool.h"

namespace sidet {

namespace {

struct ClassSplit {
  std::vector<std::size_t> minority;
  std::vector<std::size_t> majority;
  int minority_label = 1;
};

ClassSplit SplitClasses(const Dataset& data) {
  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) == 0 ? zeros : ones).push_back(i);
  }
  ClassSplit split;
  if (zeros.size() <= ones.size()) {
    split.minority = std::move(zeros);
    split.majority = std::move(ones);
    split.minority_label = 0;
  } else {
    split.minority = std::move(ones);
    split.majority = std::move(zeros);
    split.minority_label = 1;
  }
  return split;
}

}  // namespace

Dataset RandomOversample(const Dataset& data, Rng& rng, double target_ratio, int threads) {
  const ClassSplit split = SplitClasses(data);
  if (split.minority.empty() || split.majority.empty()) return data;

  const auto target =
      static_cast<std::size_t>(std::ceil(target_ratio * static_cast<double>(split.majority.size())));
  if (split.minority.size() >= target) return data;
  const std::size_t need = target - split.minority.size();

  // Row i duplicates the minority pick drawn from stream rng.Fork(i);
  // sharding the picks across workers cannot change them.
  std::vector<std::size_t> picks(need);
  ParallelFor(threads, need, [&](std::size_t i) {
    Rng row_rng = rng.Fork(i);
    picks[i] = split.minority[static_cast<std::size_t>(
        row_rng.UniformInt(0, static_cast<std::int64_t>(split.minority.size()) - 1))];
  });

  Dataset out = data;
  for (const std::size_t pick : picks) {
    const std::span<const double> row = data.row(pick);
    out.Add(std::vector<double>(row.begin(), row.end()), data.label(pick));
  }
  return out;
}

Dataset SmoteOversample(const Dataset& data, Rng& rng, int k, double target_ratio, int threads) {
  const ClassSplit split = SplitClasses(data);
  if (split.minority.empty() || split.majority.empty()) return data;
  if (split.minority.size() < 2) return RandomOversample(data, rng, target_ratio, threads);

  // Pairwise distances within the minority class (numeric dims only — the
  // categorical dims would dominate otherwise).
  const std::size_t width = data.num_features();
  const auto distance = [&](std::size_t a, std::size_t b) {
    double sum = 0.0;
    for (std::size_t f = 0; f < width; ++f) {
      if (data.features()[f].categorical) continue;
      const double d = data.row(a)[f] - data.row(b)[f];
      sum += d * d;
    }
    return sum;
  };

  const auto target =
      static_cast<std::size_t>(std::ceil(target_ratio * static_cast<double>(split.majority.size())));
  if (split.minority.size() >= target) return data;
  const std::size_t need = target - split.minority.size();

  // Synthetic row i interpolates between a base row and one of its k nearest
  // minority neighbours, every draw coming from stream rng.Fork(i). The
  // per-row kNN scan is the expensive part — sharding it across workers is
  // where the wall-clock win lives.
  std::vector<std::vector<double>> synthetic_rows(need);
  ParallelFor(threads, need, [&](std::size_t i) {
    Rng row_rng = rng.Fork(i);
    const std::size_t base = split.minority[static_cast<std::size_t>(
        row_rng.UniformInt(0, static_cast<std::int64_t>(split.minority.size()) - 1))];

    // k nearest minority neighbours of `base` (excluding itself).
    std::vector<std::pair<double, std::size_t>> neighbours;
    for (const std::size_t other : split.minority) {
      if (other != base) neighbours.emplace_back(distance(base, other), other);
    }
    const auto take = std::min<std::size_t>(static_cast<std::size_t>(k), neighbours.size());
    std::partial_sort(neighbours.begin(), neighbours.begin() + static_cast<std::ptrdiff_t>(take),
                      neighbours.end());
    const std::size_t partner =
        neighbours[static_cast<std::size_t>(
                       row_rng.UniformInt(0, static_cast<std::int64_t>(take) - 1))]
            .second;

    const double alpha = row_rng.UniformDouble();
    std::vector<double> synthetic(width);
    for (std::size_t f = 0; f < width; ++f) {
      const double a = data.row(base)[f];
      const double b = data.row(partner)[f];
      if (data.features()[f].categorical) {
        synthetic[f] = row_rng.Bernoulli(0.5) ? a : b;
      } else {
        synthetic[f] = a + alpha * (b - a);
      }
    }
    synthetic_rows[i] = std::move(synthetic);
  });

  Dataset out = data;
  for (std::vector<double>& row : synthetic_rows) {
    out.Add(std::move(row), split.minority_label);
  }
  return out;
}

Dataset RandomUndersample(const Dataset& data, Rng& rng, double target_ratio) {
  const ClassSplit split = SplitClasses(data);
  if (split.minority.empty() || split.majority.empty()) return data;

  // Keep majority down to minority/target_ratio.
  const auto keep = std::min<std::size_t>(
      split.majority.size(),
      static_cast<std::size_t>(
          std::ceil(static_cast<double>(split.minority.size()) / std::max(target_ratio, 1e-9))));

  std::vector<std::size_t> majority = split.majority;
  rng.Shuffle(majority);
  majority.resize(keep);

  std::vector<std::size_t> kept = split.minority;
  kept.insert(kept.end(), majority.begin(), majority.end());
  std::sort(kept.begin(), kept.end());
  return data.Subset(kept);
}

}  // namespace sidet
