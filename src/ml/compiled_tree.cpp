#include "ml/compiled_tree.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/thread_pool.h"

// The block kernel's inner loop is written to if-convert: with OpenMP SIMD
// support (-fopenmp-simd, signalled by the build as SIDET_OPENMP_SIMD, no
// runtime) the pragma asks for vectorization, without it the pragma vanishes
// and the same loop compiles scalar — results are bit-identical either way
// because the loop body is pure comparisons and selects.
#if defined(SIDET_OPENMP_SIMD) || defined(_OPENMP)
#define SIDET_PRAGMA(text) _Pragma(#text)
#define SIDET_SIMD_REDUCE_OR(var) SIDET_PRAGMA(omp simd reduction(| : var))
#else
#define SIDET_SIMD_REDUCE_OR(var)
#endif

namespace sidet {

namespace {

// Output rows per worker chunk: 512 doubles = 4KiB of output per chunk, so
// adjacent lanes never contend for the same cache lines mid-chunk and the
// boundary overlap is at most one line per 4KiB written.
constexpr std::size_t kMinChunkRows = 512;

// Lock-step steps the block kernel runs before draining straggler lanes
// through the scalar walk. Splits trained on the paper's sensor contexts
// put most leaves within the first few levels, so past this depth most
// lanes are parked and a lock-step step advances almost nobody.
constexpr std::int32_t kLockStepCap = 4;

// Residual that makes `fl(partial + residual) == target` bit-for-bit.
// partial and target differ by at most a few ulps of the margin (the
// regrouped Saabas deltas telescope almost exactly), so target - partial is
// computed exactly by Sterbenz's lemma and the first candidate closes the
// sum; the bounded nextafter refinement covers the degenerate corner where
// the two straddle a binade boundary.
double ClosureResidual(double target, double partial) {
  double residual = target - partial;
  for (int i = 0; i < 16; ++i) {
    const double sum = partial + residual;
    if (sum == target) break;
    residual = std::nextafter(residual, sum < target
                                            ? std::numeric_limits<double>::infinity()
                                            : -std::numeric_limits<double>::infinity());
  }
  return residual;
}

}  // namespace

CompiledTree CompiledTree::Compile(const DecisionTree& tree) {
  return CompileInternal(tree, nullptr, tree.features_.size());
}

CompiledTree CompiledTree::CompileProjected(const DecisionTree& tree,
                                            std::span<const std::size_t> projection,
                                            std::size_t row_width) {
  return CompileInternal(tree, projection.data(), row_width);
}

CompiledTree CompiledTree::CompileInternal(const DecisionTree& tree,
                                           const std::size_t* projection,
                                           std::size_t row_width) {
  CompiledTree out;
  out.num_features_ = row_width;
  if (tree.root_ == nullptr) return out;

  // Breadth-first order: children of node i always sit at larger indices,
  // and sibling subtrees at the same depth share cache lines.
  std::vector<const DecisionTree::Node*> order;
  std::vector<std::int32_t> node_depth;
  std::deque<std::pair<const DecisionTree::Node*, std::int32_t>> frontier{
      {tree.root_.get(), 0}};
  while (!frontier.empty()) {
    const auto [node, depth] = frontier.front();
    frontier.pop_front();
    order.push_back(node);
    node_depth.push_back(depth);
    out.depth_ = std::max(out.depth_, depth);
    if (!node->is_leaf) {
      frontier.push_back({node->left.get(), depth + 1});
      frontier.push_back({node->right.get(), depth + 1});
    }
  }

  const std::size_t count = order.size();
  out.feature_.reserve(count);
  out.kernel_feature_.reserve(count);
  out.categorical_.reserve(count);
  out.threshold_.reserve(count);
  out.left_.reserve(count);
  out.right_.reserve(count);
  out.prob_.reserve(count);

  // In BFS order the two children of the k-th split node (counting splits in
  // visit order) land at the queue positions right after everything enqueued
  // so far; recompute indices with a second pass over the same order.
  std::int32_t next_child = 1;
  std::int32_t index = 0;
  for (const DecisionTree::Node* node : order) {
    out.prob_.push_back(node->probability);
    if (node->is_leaf) {
      // Self-loop encoding for the fixed-step block kernel: a lane that
      // reaches this leaf keeps comparing row[0] <= +inf and staying put
      // (NaN compares false and takes the right child — also self), so no
      // per-lane exit test is needed. The scalar walk still stops on
      // feature_ < 0.
      out.feature_.push_back(-1);
      out.kernel_feature_.push_back(0);
      out.categorical_.push_back(0);
      out.threshold_.push_back(std::numeric_limits<double>::infinity());
      out.left_.push_back(index);
      out.right_.push_back(index);
      ++index;
      continue;
    }
    const std::size_t feature =
        projection == nullptr ? node->feature : projection[node->feature];
    out.feature_.push_back(static_cast<std::int32_t>(feature));
    out.kernel_feature_.push_back(static_cast<std::int32_t>(feature));
    out.categorical_.push_back(node->categorical ? 1 : 0);
    out.threshold_.push_back(node->threshold);
    out.left_.push_back(next_child);
    out.right_.push_back(next_child + 1);
    next_child += 2;
    ++index;
  }

  // Attribution deltas (a third pass — children sit after their parent in
  // BFS order, so prob_ is only complete now). Leaves self-loop, so only
  // real splits assign their children's deltas.
  out.delta_.assign(count, 0.0);
  for (std::size_t i = 0; i < count; ++i) {
    if (out.feature_[i] < 0) continue;
    const auto l = static_cast<std::size_t>(out.left_[i]);
    const auto r = static_cast<std::size_t>(out.right_[i]);
    out.delta_[l] = out.prob_[l] - out.prob_[i];
    out.delta_[r] = out.prob_[r] - out.prob_[i];
  }
  return out;
}

CompiledTree::ColumnsView CompiledTree::columns() const {
  ColumnsView view;
  view.feature = feature_;
  view.categorical = categorical_;
  view.threshold = threshold_;
  view.left = left_;
  view.right = right_;
  view.prob = prob_;
  view.num_features = num_features_;
  return view;
}

Result<CompiledTree> CompiledTree::FromColumns(std::vector<std::int32_t> feature,
                                               std::vector<std::uint8_t> categorical,
                                               std::vector<double> threshold,
                                               std::vector<std::int32_t> left,
                                               std::vector<std::int32_t> right,
                                               std::vector<double> prob,
                                               std::size_t num_features) {
  const std::size_t count = feature.size();
  if (categorical.size() != count || threshold.size() != count || left.size() != count ||
      right.size() != count || prob.size() != count) {
    return Error("compiled tree columns disagree on node count");
  }
  CompiledTree out;
  out.num_features_ = num_features;
  if (count == 0) return out;  // untrained tree: predicts 0.5, like Compile
  if (count > static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max())) {
    return Error("compiled tree node count overflows the index type");
  }
  std::vector<std::uint32_t> indegree(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    if (!(prob[i] >= 0.0 && prob[i] <= 1.0)) {  // negated to also reject NaN
      return Error("compiled tree node probability outside [0, 1]");
    }
    if (feature[i] < 0) {
      // Leaf: the self-loop encoding the block kernel relies on.
      if (left[i] != static_cast<std::int32_t>(i) || right[i] != static_cast<std::int32_t>(i) ||
          threshold[i] != std::numeric_limits<double>::infinity() || categorical[i] != 0) {
        return Error("compiled tree leaf is not a well-formed self-loop");
      }
      continue;
    }
    if (static_cast<std::size_t>(feature[i]) >= num_features) {
      return Error("compiled tree split feature out of range");
    }
    if (!std::isfinite(threshold[i])) return Error("compiled tree split threshold not finite");
    // BFS layout: children sit strictly after their parent, which also rules
    // out cycles and makes the derived-array passes below single forward
    // scans.
    if (left[i] <= static_cast<std::int32_t>(i) ||
        static_cast<std::size_t>(left[i]) >= count ||
        right[i] <= static_cast<std::int32_t>(i) ||
        static_cast<std::size_t>(right[i]) >= count || left[i] == right[i]) {
      return Error("compiled tree split children violate the BFS layout");
    }
    ++indegree[static_cast<std::size_t>(left[i])];
    ++indegree[static_cast<std::size_t>(right[i])];
  }
  if (indegree[0] != 0) return Error("compiled tree root is entered by a split");
  for (std::size_t i = 1; i < count; ++i) {
    if (indegree[i] != 1) return Error("compiled tree node is not entered by exactly one split");
  }

  out.feature_ = std::move(feature);
  out.categorical_ = std::move(categorical);
  out.threshold_ = std::move(threshold);
  out.left_ = std::move(left);
  out.right_ = std::move(right);
  out.prob_ = std::move(prob);

  // Rebuild the derived arrays exactly as Compile lays them out.
  out.kernel_feature_.resize(count);
  out.delta_.assign(count, 0.0);
  std::vector<std::int32_t> node_depth(count, 0);
  for (std::size_t i = 0; i < count; ++i) {
    if (out.feature_[i] < 0) {
      out.kernel_feature_[i] = 0;
      continue;
    }
    out.kernel_feature_[i] = out.feature_[i];
    const auto l = static_cast<std::size_t>(out.left_[i]);
    const auto r = static_cast<std::size_t>(out.right_[i]);
    node_depth[l] = node_depth[i] + 1;
    node_depth[r] = node_depth[i] + 1;
    out.depth_ = std::max({out.depth_, node_depth[l], node_depth[r]});
    out.delta_[l] = out.prob_[l] - out.prob_[i];
    out.delta_[r] = out.prob_[r] - out.prob_[i];
  }
  return out;
}

double CompiledTree::PredictProbability(std::span<const double> row) const {
  if (feature_.empty()) return 0.5;
  std::int32_t node = 0;
  std::int32_t feature = feature_[0];
  while (feature >= 0) {
    const double v = row[static_cast<std::size_t>(feature)];
    const bool goes_left =
        categorical_[static_cast<std::size_t>(node)] != 0
            ? v == threshold_[static_cast<std::size_t>(node)]
            : v <= threshold_[static_cast<std::size_t>(node)];
    node = goes_left ? left_[static_cast<std::size_t>(node)]
                     : right_[static_cast<std::size_t>(node)];
    feature = feature_[static_cast<std::size_t>(node)];
  }
  return prob_[static_cast<std::size_t>(node)];
}

double CompiledTree::ExplainRow(std::span<const double> row,
                                std::span<double> contributions) const {
  if (feature_.empty()) return 0.5;
  std::int32_t node = 0;
  while (feature_[static_cast<std::size_t>(node)] >= 0) {
    const auto n = static_cast<std::size_t>(node);
    const double v = row[static_cast<std::size_t>(feature_[n])];
    const bool goes_left =
        categorical_[n] != 0 ? v == threshold_[n] : v <= threshold_[n];
    const std::int32_t next = goes_left ? left_[n] : right_[n];
    contributions[static_cast<std::size_t>(feature_[n])] +=
        delta_[static_cast<std::size_t>(next)];
    node = next;
  }
  return prob_[static_cast<std::size_t>(node)];
}

ForestExplanation CompiledTree::Explain(std::span<const double> row) const {
  ForestExplanation out;
  out.contributions.assign(num_features_, 0.0);
  if (feature_.empty()) return out;
  out.bias = prob_[0];
  out.margin = ExplainRow(row, out.contributions);
  double partial = out.bias;
  for (const double c : out.contributions) partial += c;
  out.residual = ClosureResidual(out.margin, partial);
  return out;
}

template <bool kAccumulate>
void CompiledTree::WalkRows(const double* const* rows, std::size_t count,
                            double* out) const {
  const auto emit = [&](std::size_t i, double probability) {
    if constexpr (kAccumulate) {
      out[i] += probability;
    } else {
      out[i] = probability;
    }
  };
  if (feature_.empty()) {
    for (std::size_t i = 0; i < count; ++i) emit(i, 0.5);
    return;
  }
  const std::int32_t* const feature = kernel_feature_.data();
  const std::int32_t* const leaf = feature_.data();  // < 0 at leaves
  const std::uint8_t* const categorical = categorical_.data();
  const double* const threshold = threshold_.data();
  const std::int32_t* const left = left_.data();
  const std::int32_t* const right = right_.data();
  if (leaf[0] < 0) {  // root is a leaf: the tree is a constant
    const double probability = prob_[0];
    for (std::size_t i = 0; i < count; ++i) emit(i, probability);
    return;
  }

  // Per-row scalar walk (small counts and the kernel's drain phase).
  const auto walk_one = [&](const double* row) {
    std::int32_t n = 0;
    do {
      const double v = row[feature[n]];
      const bool goes_left = categorical[n] != 0 ? v == threshold[n] : v <= threshold[n];
      n = goes_left ? left[n] : right[n];
    } while (leaf[n] >= 0);
    return prob_[static_cast<std::size_t>(n)];
  };

  // Per-lane scalar continuation from an arbitrary node (the drain phase).
  const auto walk_from = [&](std::int32_t n, const double* row) {
    while (leaf[n] >= 0) {
      const double v = row[feature[n]];
      const bool goes_left = categorical[n] != 0 ? v == threshold[n] : v <= threshold[n];
      n = goes_left ? left[n] : right[n];
    }
    return prob_[static_cast<std::size_t>(n)];
  };

  // Lock-step block kernel: eight lanes step together through a branch-free
  // select (the dependent-load chains never interlock, so they pipeline); a
  // lane that reaches a leaf parks on its self-loop, so the select body needs
  // no per-lane exit test. Lock-step is only profitable while most lanes are
  // still live — past the typical leaf depth each extra step burns eight
  // selects to advance a straggler or two — so the block phase stops at the
  // earlier of kLockStepCap steps or an all-lanes-parked step, and stragglers
  // drain through the well-predicted scalar walk from wherever they stopped.
  // The drain pays its data-dependent "still live?" branch once per lane per
  // block, not once per step. (A lane-refill variant — emit parked lanes
  // mid-block and reseat fresh rows — measured strictly slower here: it needs
  // those leaf checks at every step, and they mispredict at every park.)
  // Both phases run the same comparisons in the same order, so results stay
  // bit-identical to the per-row scalar walk.
  const std::int32_t cap = std::min(depth_, kLockStepCap);
  std::size_t i = 0;
  for (; i + kBlockRows <= count; i += kBlockRows) {
    std::int32_t node[kBlockRows] = {};
    for (std::int32_t step = 0; step < cap; ++step) {
      std::int32_t moved = 0;
      SIDET_SIMD_REDUCE_OR(moved)
      for (std::size_t k = 0; k < kBlockRows; ++k) {
        const std::int32_t n = node[k];
        const double v = rows[i + k][feature[n]];
        const bool goes_left =
            categorical[n] != 0 ? v == threshold[n] : v <= threshold[n];
        const std::int32_t next = goes_left ? left[n] : right[n];
        moved |= next ^ n;
        node[k] = next;
      }
      if (moved == 0) break;
    }
    for (std::size_t k = 0; k < kBlockRows; ++k) {
      emit(i + k, walk_from(node[k], rows[i + k]));
    }
  }
  for (; i < count; ++i) emit(i, walk_one(rows[i]));
}

template void CompiledTree::WalkRows<false>(const double* const* rows, std::size_t count,
                                            double* out) const;
template void CompiledTree::WalkRows<true>(const double* const* rows, std::size_t count,
                                           double* out) const;

void CompiledTree::PredictRows(const double* const* rows, std::size_t count,
                               double* out) const {
  WalkRows<false>(rows, count, out);
}

void CompiledTree::PredictBatch(const Dataset& data, std::span<double> out,
                                int threads) const {
  std::vector<const double*> ptrs(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) ptrs[i] = data.row(i).data();
  ParallelForChunks(threads, data.size(), kMinChunkRows, kBlockRows,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      WalkRows<false>(ptrs.data() + begin, end - begin, out.data() + begin);
                    });
}

void CompiledTree::PredictBatch(std::span<const std::vector<double>> rows,
                                std::span<double> out, int threads) const {
  std::vector<const double*> ptrs(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) ptrs[i] = rows[i].data();
  ParallelForChunks(threads, rows.size(), kMinChunkRows, kBlockRows,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      WalkRows<false>(ptrs.data() + begin, end - begin, out.data() + begin);
                    });
}

CompiledForest CompiledForest::Compile(const RandomForest& forest) {
  CompiledForest out;
  out.trees_.reserve(forest.size());
  const std::vector<std::vector<std::size_t>>& tree_features = forest.tree_features();
  for (const std::vector<std::size_t>& features : tree_features) {
    for (const std::size_t f : features) {
      out.num_features_ = std::max(out.num_features_, f + 1);
    }
  }
  for (std::size_t t = 0; t < forest.trees().size(); ++t) {
    out.trees_.push_back(CompiledTree::CompileProjected(forest.trees()[t], tree_features[t],
                                                        out.num_features_));
  }
  return out;
}

double CompiledForest::PredictProbability(std::span<const double> row) const {
  if (trees_.empty()) return 0.5;
  double total = 0.0;
  for (const CompiledTree& tree : trees_) {
    total += tree.PredictProbability(row);
  }
  return total / static_cast<double>(trees_.size());
}

void CompiledForest::PredictRows(const double* const* rows, std::size_t count,
                                 double* out) const {
  if (trees_.empty()) {
    std::fill(out, out + count, 0.5);
    return;
  }
  // Tree-major accumulation: per row this sums member trees in the same
  // order as the scalar walk, so the total (and the final divide) is
  // bit-identical to PredictProbability.
  std::fill(out, out + count, 0.0);
  for (const CompiledTree& tree : trees_) {
    tree.WalkRows<true>(rows, count, out);
  }
  const double scale = static_cast<double>(trees_.size());
  for (std::size_t i = 0; i < count; ++i) out[i] /= scale;
}

ForestExplanation CompiledForest::Explain(std::span<const double> row) const {
  ForestExplanation out;
  out.contributions.assign(num_features_, 0.0);
  if (trees_.empty()) return out;
  // Tree-major, matching PredictProbability's summation order exactly so
  // `margin` carries the served probability's bit pattern.
  double bias_total = 0.0;
  double margin_total = 0.0;
  for (const CompiledTree& tree : trees_) {
    bias_total += tree.prob_.empty() ? 0.5 : tree.prob_[0];
    margin_total += tree.ExplainRow(row, out.contributions);
  }
  const double scale = static_cast<double>(trees_.size());
  out.bias = bias_total / scale;
  out.margin = margin_total / scale;
  for (double& c : out.contributions) c /= scale;
  double partial = out.bias;
  for (const double c : out.contributions) partial += c;
  out.residual = ClosureResidual(out.margin, partial);
  return out;
}

void CompiledForest::PredictRowsScalar(const double* const* rows, std::size_t count,
                                       double* out) const {
  for (std::size_t i = 0; i < count; ++i) {
    out[i] = PredictProbability(std::span<const double>(rows[i], num_features_));
  }
}

void CompiledForest::PredictBatch(const Dataset& data, std::span<double> out,
                                  int threads) const {
  std::vector<const double*> ptrs(data.size());
  for (std::size_t i = 0; i < data.size(); ++i) ptrs[i] = data.row(i).data();
  ParallelForChunks(threads, data.size(), kMinChunkRows, CompiledTree::kBlockRows,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      PredictRows(ptrs.data() + begin, end - begin, out.data() + begin);
                    });
}

void CompiledForest::PredictBatch(std::span<const std::vector<double>> rows,
                                  std::span<double> out, int threads) const {
  std::vector<const double*> ptrs(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) ptrs[i] = rows[i].data();
  ParallelForChunks(threads, rows.size(), kMinChunkRows, CompiledTree::kBlockRows,
                    [&](std::size_t, std::size_t begin, std::size_t end) {
                      PredictRows(ptrs.data() + begin, end - begin, out.data() + begin);
                    });
}

}  // namespace sidet
