#include "ml/compiled_tree.h"

#include <algorithm>
#include <deque>

#include "util/thread_pool.h"

namespace sidet {

CompiledTree CompiledTree::Compile(const DecisionTree& tree) {
  CompiledTree out;
  out.num_features_ = tree.features_.size();
  if (tree.root_ == nullptr) return out;

  // Breadth-first order: children of node i always sit at larger indices,
  // and sibling subtrees at the same depth share cache lines.
  std::vector<const DecisionTree::Node*> order;
  std::deque<const DecisionTree::Node*> frontier{tree.root_.get()};
  while (!frontier.empty()) {
    const DecisionTree::Node* node = frontier.front();
    frontier.pop_front();
    order.push_back(node);
    if (!node->is_leaf) {
      frontier.push_back(node->left.get());
      frontier.push_back(node->right.get());
    }
  }

  const std::size_t count = order.size();
  out.feature_.reserve(count);
  out.categorical_.reserve(count);
  out.threshold_.reserve(count);
  out.left_.reserve(count);
  out.right_.reserve(count);
  out.prob_.reserve(count);

  // In BFS order the two children of the k-th split node (counting splits in
  // visit order) land at the queue positions right after everything enqueued
  // so far; recompute indices with a second pass over the same order.
  std::int32_t next_child = 1;
  for (const DecisionTree::Node* node : order) {
    out.prob_.push_back(node->probability);
    if (node->is_leaf) {
      out.feature_.push_back(-1);
      out.categorical_.push_back(0);
      out.threshold_.push_back(0.0);
      out.left_.push_back(-1);
      out.right_.push_back(-1);
      continue;
    }
    out.feature_.push_back(static_cast<std::int32_t>(node->feature));
    out.categorical_.push_back(node->categorical ? 1 : 0);
    out.threshold_.push_back(node->threshold);
    out.left_.push_back(next_child);
    out.right_.push_back(next_child + 1);
    next_child += 2;
  }
  return out;
}

double CompiledTree::PredictProbability(std::span<const double> row) const {
  if (feature_.empty()) return 0.5;
  std::int32_t node = 0;
  std::int32_t feature = feature_[0];
  while (feature >= 0) {
    const double v = row[static_cast<std::size_t>(feature)];
    const bool goes_left =
        categorical_[static_cast<std::size_t>(node)] != 0
            ? v == threshold_[static_cast<std::size_t>(node)]
            : v <= threshold_[static_cast<std::size_t>(node)];
    node = goes_left ? left_[static_cast<std::size_t>(node)]
                     : right_[static_cast<std::size_t>(node)];
    feature = feature_[static_cast<std::size_t>(node)];
  }
  return prob_[static_cast<std::size_t>(node)];
}

void CompiledTree::PredictBatch(const Dataset& data, std::span<double> out, int threads) const {
  ParallelFor(threads, data.size(),
              [&](std::size_t i) { out[i] = PredictProbability(data.row(i)); });
}

void CompiledTree::PredictBatch(std::span<const std::vector<double>> rows, std::span<double> out,
                                int threads) const {
  ParallelFor(threads, rows.size(),
              [&](std::size_t i) { out[i] = PredictProbability(rows[i]); });
}

CompiledForest CompiledForest::Compile(const RandomForest& forest) {
  CompiledForest out;
  out.trees_.reserve(forest.size());
  out.tree_features_ = forest.tree_features();
  for (const DecisionTree& tree : forest.trees()) {
    out.trees_.push_back(CompiledTree::Compile(tree));
  }
  for (const std::vector<std::size_t>& features : out.tree_features_) {
    out.max_projection_ = std::max(out.max_projection_, features.size());
  }
  return out;
}

double CompiledForest::PredictWithScratch(std::span<const double> row,
                                          std::vector<double>& scratch) const {
  if (trees_.empty()) return 0.5;
  double total = 0.0;
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    const std::vector<std::size_t>& features = tree_features_[t];
    scratch.resize(features.size());
    for (std::size_t k = 0; k < features.size(); ++k) scratch[k] = row[features[k]];
    total += trees_[t].PredictProbability(scratch);
  }
  return total / static_cast<double>(trees_.size());
}

double CompiledForest::PredictProbability(std::span<const double> row) const {
  std::vector<double> scratch;
  scratch.reserve(max_projection_);
  return PredictWithScratch(row, scratch);
}

void CompiledForest::PredictBatch(const Dataset& data, std::span<double> out,
                                  int threads) const {
  const std::size_t resolved =
      threads <= 0 ? ThreadPool::DefaultThreadCount() : static_cast<std::size_t>(threads);
  if (resolved <= 1 || data.size() <= 1) {
    std::vector<double> scratch;
    scratch.reserve(max_projection_);
    for (std::size_t i = 0; i < data.size(); ++i) {
      out[i] = PredictWithScratch(data.row(i), scratch);
    }
    return;
  }
  ParallelFor(threads, data.size(),
              [&](std::size_t i) { out[i] = PredictProbability(data.row(i)); });
}

void CompiledForest::PredictBatch(std::span<const std::vector<double>> rows,
                                  std::span<double> out, int threads) const {
  const std::size_t resolved =
      threads <= 0 ? ThreadPool::DefaultThreadCount() : static_cast<std::size_t>(threads);
  if (resolved <= 1 || rows.size() <= 1) {
    std::vector<double> scratch;
    scratch.reserve(max_projection_);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      out[i] = PredictWithScratch(rows[i], scratch);
    }
    return;
  }
  ParallelFor(threads, rows.size(),
              [&](std::size_t i) { out[i] = PredictProbability(rows[i]); });
}

}  // namespace sidet
