#include "ml/roc.h"

#include <algorithm>
#include <cassert>

namespace sidet {

RocCurve ComputeRoc(std::span<const double> scores, std::span<const int> labels) {
  assert(scores.size() == labels.size());
  RocCurve curve;

  long positives = 0;
  long negatives = 0;
  for (const int label : labels) (label == 1 ? positives : negatives) += 1;
  if (positives == 0 || negatives == 0) {
    curve.points = {{1.0, 0.0, 0.0}, {0.0, 1.0, 1.0}};
    curve.auc = 0.5;
    return curve;
  }

  // Sort by score descending; sweep thresholds at each distinct score.
  std::vector<std::size_t> order(scores.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(),
            [&](std::size_t a, std::size_t b) { return scores[a] > scores[b]; });

  curve.points.push_back({1.0 + 1e-9, 0.0, 0.0});
  long tp = 0;
  long fp = 0;
  for (std::size_t k = 0; k < order.size(); ++k) {
    (labels[order[k]] == 1 ? tp : fp) += 1;
    const bool last_of_score =
        k + 1 == order.size() || scores[order[k + 1]] != scores[order[k]];
    if (last_of_score) {
      curve.points.push_back({scores[order[k]],
                              static_cast<double>(tp) / static_cast<double>(positives),
                              static_cast<double>(fp) / static_cast<double>(negatives)});
    }
  }

  // Trapezoidal AUC.
  double auc = 0.0;
  for (std::size_t i = 1; i < curve.points.size(); ++i) {
    const RocPoint& a = curve.points[i - 1];
    const RocPoint& b = curve.points[i];
    auc += (b.fpr - a.fpr) * (a.tpr + b.tpr) / 2.0;
  }
  curve.auc = auc;
  return curve;
}

BinaryMetrics MetricsAtThreshold(std::span<const double> scores, std::span<const int> labels,
                                 double threshold) {
  assert(scores.size() == labels.size());
  ConfusionMatrix confusion;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    confusion.Add(labels[i], scores[i] >= threshold ? 1 : 0);
  }
  return ComputeMetrics(confusion);
}

double ThresholdForFpr(std::span<const double> scores, std::span<const int> labels,
                       double max_fpr) {
  const RocCurve curve = ComputeRoc(scores, labels);
  // Points are threshold-descending with increasing FPR: the first point that
  // exceeds max_fpr ends the feasible prefix; take the last feasible one's
  // threshold (highest TPR while FPR stays within budget). The initial
  // sentinel point sits just above the maximum score ("block everything"),
  // so the result is meaningful even when no real point fits the budget.
  double best = curve.points.front().threshold;
  for (const RocPoint& point : curve.points) {
    if (point.fpr <= max_fpr) best = point.threshold;
    else break;
  }
  return best;
}

}  // namespace sidet
