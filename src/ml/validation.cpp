#include "ml/validation.h"

#include <cassert>
#include <cmath>

#include "util/stats.h"
#include "util/thread_pool.h"

namespace sidet {

TrainTestSplit StratifiedSplit(const Dataset& data, double test_fraction, Rng& rng) {
  assert(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) == 0 ? zeros : ones).push_back(i);
  }
  rng.Shuffle(zeros);
  rng.Shuffle(ones);

  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
  for (const auto* bucket : {&zeros, &ones}) {
    const auto test_count = static_cast<std::size_t>(
        std::round(test_fraction * static_cast<double>(bucket->size())));
    for (std::size_t i = 0; i < bucket->size(); ++i) {
      (i < test_count ? test_indices : train_indices).push_back((*bucket)[i]);
    }
  }

  TrainTestSplit split{data.Subset(train_indices), data.Subset(test_indices)};
  split.train.Shuffle(rng);
  split.test.Shuffle(rng);
  return split;
}

std::vector<int> StratifiedFolds(const Dataset& data, int folds, Rng& rng) {
  assert(folds >= 2);
  std::vector<int> assignment(data.size(), 0);
  for (const int label : {0, 1}) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data.label(i) == label) indices.push_back(i);
    }
    rng.Shuffle(indices);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      assignment[indices[i]] = static_cast<int>(i % static_cast<std::size_t>(folds));
    }
  }
  return assignment;
}

CrossValidationResult CrossValidate(
    const Dataset& data, const ClassifierFactory& factory, int folds, Rng& rng,
    const std::function<Dataset(const Dataset&, Rng&)>& rebalance, int threads) {
  const std::vector<int> assignment = StratifiedFolds(data, folds, rng);

  // Each fold trains and scores independently on its own rng.Fork(fold)
  // stream; results land in per-fold slots and are folded back together in
  // fold order, so thread count never changes the output.
  struct FoldOutcome {
    bool valid = false;
    ConfusionMatrix confusion;
  };
  std::vector<FoldOutcome> outcomes(static_cast<std::size_t>(folds));

  ParallelFor(threads, static_cast<std::size_t>(folds), [&](std::size_t f) {
    const int fold = static_cast<int>(f);
    std::vector<std::size_t> train_indices;
    std::vector<std::size_t> test_indices;
    for (std::size_t i = 0; i < data.size(); ++i) {
      (assignment[i] == fold ? test_indices : train_indices).push_back(i);
    }
    if (test_indices.empty() || train_indices.empty()) return;

    Rng fold_rng = rng.Fork(f);
    Dataset train = data.Subset(train_indices);
    const Dataset test = data.Subset(test_indices);
    if (rebalance) train = rebalance(train, fold_rng);
    train.Shuffle(fold_rng);

    const std::unique_ptr<Classifier> model = factory();
    const Status fitted = model->Fit(train);
    if (!fitted.ok()) return;

    FoldOutcome& outcome = outcomes[f];
    for (std::size_t i = 0; i < test.size(); ++i) {
      const int predicted = model->Predict(test.row(i));
      outcome.confusion.Add(test.label(i), predicted);
    }
    outcome.valid = true;
  });

  CrossValidationResult result;
  ConfusionMatrix pooled;
  std::vector<double> accuracies;
  for (const FoldOutcome& outcome : outcomes) {
    if (!outcome.valid) continue;
    pooled.Accumulate(outcome.confusion);
    const BinaryMetrics metrics = ComputeMetrics(outcome.confusion);
    accuracies.push_back(metrics.accuracy);
    result.fold_metrics.push_back(metrics);
  }

  result.pooled = ComputeMetrics(pooled);
  result.mean_accuracy = Mean(accuracies);
  result.stddev_accuracy = StdDev(accuracies);
  return result;
}

}  // namespace sidet
