#include "ml/validation.h"

#include <cassert>
#include <cmath>

#include "util/stats.h"

namespace sidet {

TrainTestSplit StratifiedSplit(const Dataset& data, double test_fraction, Rng& rng) {
  assert(test_fraction > 0.0 && test_fraction < 1.0);
  std::vector<std::size_t> zeros;
  std::vector<std::size_t> ones;
  for (std::size_t i = 0; i < data.size(); ++i) {
    (data.label(i) == 0 ? zeros : ones).push_back(i);
  }
  rng.Shuffle(zeros);
  rng.Shuffle(ones);

  std::vector<std::size_t> train_indices;
  std::vector<std::size_t> test_indices;
  for (const auto* bucket : {&zeros, &ones}) {
    const auto test_count = static_cast<std::size_t>(
        std::round(test_fraction * static_cast<double>(bucket->size())));
    for (std::size_t i = 0; i < bucket->size(); ++i) {
      (i < test_count ? test_indices : train_indices).push_back((*bucket)[i]);
    }
  }

  TrainTestSplit split{data.Subset(train_indices), data.Subset(test_indices)};
  split.train.Shuffle(rng);
  split.test.Shuffle(rng);
  return split;
}

std::vector<int> StratifiedFolds(const Dataset& data, int folds, Rng& rng) {
  assert(folds >= 2);
  std::vector<int> assignment(data.size(), 0);
  for (const int label : {0, 1}) {
    std::vector<std::size_t> indices;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (data.label(i) == label) indices.push_back(i);
    }
    rng.Shuffle(indices);
    for (std::size_t i = 0; i < indices.size(); ++i) {
      assignment[indices[i]] = static_cast<int>(i % static_cast<std::size_t>(folds));
    }
  }
  return assignment;
}

CrossValidationResult CrossValidate(
    const Dataset& data, const ClassifierFactory& factory, int folds, Rng& rng,
    const std::function<Dataset(const Dataset&, Rng&)>& rebalance) {
  const std::vector<int> assignment = StratifiedFolds(data, folds, rng);

  CrossValidationResult result;
  ConfusionMatrix pooled;
  std::vector<double> accuracies;

  for (int fold = 0; fold < folds; ++fold) {
    std::vector<std::size_t> train_indices;
    std::vector<std::size_t> test_indices;
    for (std::size_t i = 0; i < data.size(); ++i) {
      (assignment[i] == fold ? test_indices : train_indices).push_back(i);
    }
    if (test_indices.empty() || train_indices.empty()) continue;

    Dataset train = data.Subset(train_indices);
    const Dataset test = data.Subset(test_indices);
    if (rebalance) train = rebalance(train, rng);
    train.Shuffle(rng);

    const std::unique_ptr<Classifier> model = factory();
    const Status fitted = model->Fit(train);
    if (!fitted.ok()) continue;

    ConfusionMatrix confusion;
    for (std::size_t i = 0; i < test.size(); ++i) {
      const int predicted = model->Predict(test.row(i));
      confusion.Add(test.label(i), predicted);
      pooled.Add(test.label(i), predicted);
    }
    const BinaryMetrics metrics = ComputeMetrics(confusion);
    accuracies.push_back(metrics.accuracy);
    result.fold_metrics.push_back(metrics);
  }

  result.pooled = ComputeMetrics(pooled);
  result.mean_accuracy = Mean(accuracies);
  result.stddev_accuracy = StdDev(accuracies);
  return result;
}

}  // namespace sidet
