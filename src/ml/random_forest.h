// Random forest over the CART trees — the natural "further study the attack
// detection system" extension of §VI: bagged, feature-subsampled trees with
// majority voting, sharing DecisionTree's mixed-type splits, importances and
// JSON persistence.
#pragma once

#include "ml/decision_tree.h"

namespace sidet {

struct RandomForestParams {
  int trees = 25;
  DecisionTreeParams tree_params;
  // Features considered per split-candidate tree: sqrt(n) when 0.
  std::size_t max_features = 0;
  double bootstrap_fraction = 1.0;  // bag size relative to the training set
  std::uint64_t seed = 17;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestParams params = {});

  Status Fit(const Dataset& data) override;
  int Predict(std::span<const double> row) const override;
  // Mean of the member trees' leaf probabilities.
  double PredictProbability(std::span<const double> row) const override;

  std::size_t size() const { return trees_.size(); }
  // Mean of per-tree normalized importances (sums to 1).
  const std::vector<double>& feature_importances() const { return importances_; }

 private:
  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
  // Per tree: the feature subset it was trained on (indices into the full
  // feature vector); rows are projected at predict time.
  std::vector<std::vector<std::size_t>> tree_features_;
  std::vector<double> importances_;
};

}  // namespace sidet
