// Random forest over the CART trees — the natural "further study the attack
// detection system" extension of §VI: bagged, feature-subsampled trees with
// majority voting, sharing DecisionTree's mixed-type splits, importances and
// JSON persistence.
//
// Training is parallel: every tree draws its feature subset and bootstrap
// bag from its own Rng::Fork(tree_index) stream, so the fitted model is
// bit-identical whether trees are trained sequentially or across a thread
// pool of any size.
#pragma once

#include "ml/decision_tree.h"

namespace sidet {

struct RandomForestParams {
  int trees = 25;
  DecisionTreeParams tree_params;
  // Features considered per split-candidate tree: sqrt(n) when 0.
  std::size_t max_features = 0;
  double bootstrap_fraction = 1.0;  // bag size relative to the training set
  std::uint64_t seed = 17;
  // Worker lanes for Fit (1 = sequential, 0 = hardware concurrency). Has no
  // effect on the fitted model, only on wall-clock.
  int threads = 1;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestParams params = {});

  Status Fit(const Dataset& data) override;
  int Predict(std::span<const double> row) const override;
  // Mean of the member trees' leaf probabilities.
  double PredictProbability(std::span<const double> row) const override;

  std::size_t size() const { return trees_.size(); }
  // Mean of per-tree normalized importances (sums to 1).
  const std::vector<double>& feature_importances() const { return importances_; }

  // Member trees and their feature subsets (for compiled inference and
  // serialization).
  const std::vector<DecisionTree>& trees() const { return trees_; }
  const std::vector<std::vector<std::size_t>>& tree_features() const { return tree_features_; }

  Json ToJson() const;
  static Result<RandomForest> FromJson(const Json& json);

 private:
  RandomForestParams params_;
  std::vector<DecisionTree> trees_;
  // Per tree: the feature subset it was trained on (indices into the full
  // feature vector); rows are projected at predict time.
  std::vector<std::vector<std::size_t>> tree_features_;
  std::vector<double> importances_;
};

}  // namespace sidet
