// Linear SVM baseline trained with Pegasos (primal stochastic sub-gradient,
// hinge loss, L2 regularization) — the "support vector machine" of §IV.C.
//
// Categorical features are one-hot encoded; numeric features standardized
// (zero mean, unit variance) before training. Deterministic given the seed.
#pragma once

#include "ml/classifier.h"

namespace sidet {

struct LinearSvmParams {
  double lambda = 1e-3;   // regularization strength
  int epochs = 40;
  std::uint64_t seed = 7;
};

class LinearSvm : public Classifier {
 public:
  explicit LinearSvm(LinearSvmParams params = {});

  Status Fit(const Dataset& data) override;
  int Predict(std::span<const double> row) const override;
  double PredictProbability(std::span<const double> row) const override;

  // Signed distance to the hyperplane (pre-sigmoid score).
  double Decision(std::span<const double> row) const;

 private:
  std::vector<double> Encode(std::span<const double> row) const;

  LinearSvmParams params_;
  std::vector<FeatureSpec> features_;
  // Encoding layout: numeric features first (standardized), then one-hot
  // blocks for categorical features.
  std::vector<std::size_t> encoded_offset_;  // per original feature
  std::size_t encoded_width_ = 0;
  std::vector<double> numeric_mean_;
  std::vector<double> numeric_stddev_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace sidet
