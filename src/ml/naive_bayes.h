// Hybrid naive Bayes baseline: Gaussian likelihoods for numeric features,
// Laplace-smoothed categorical likelihoods for discrete ones. Another of the
// §IV.C candidate algorithms.
#pragma once

#include "ml/classifier.h"

namespace sidet {

struct NaiveBayesParams {
  double laplace_alpha = 1.0;     // categorical smoothing
  double min_variance = 1e-6;     // Gaussian variance floor
};

class NaiveBayesClassifier : public Classifier {
 public:
  explicit NaiveBayesClassifier(NaiveBayesParams params = {});

  Status Fit(const Dataset& data) override;
  int Predict(std::span<const double> row) const override;
  double PredictProbability(std::span<const double> row) const override;

 private:
  double LogJoint(std::span<const double> row, int label) const;

  NaiveBayesParams params_;
  std::vector<FeatureSpec> features_;
  double log_prior_[2] = {0.0, 0.0};
  // Per class, per feature: Gaussian mean/variance for numeric features.
  std::vector<double> mean_[2];
  std::vector<double> variance_[2];
  // Per class, per feature: log P(category | class), flattened per feature.
  std::vector<std::vector<double>> category_log_prob_[2];
};

}  // namespace sidet
