#include "ml/metrics.h"

#include <cassert>

#include "util/strings.h"

namespace sidet {

void ConfusionMatrix::Add(int truth, int predicted) {
  assert((truth == 0 || truth == 1) && (predicted == 0 || predicted == 1));
  if (truth == 1 && predicted == 1) ++tp;
  else if (truth == 0 && predicted == 0) ++tn;
  else if (truth == 0 && predicted == 1) ++fp;
  else ++fn;
}

BinaryMetrics ComputeMetrics(const ConfusionMatrix& confusion) {
  BinaryMetrics metrics;
  metrics.confusion = confusion;
  const auto ratio = [](long numerator, long denominator) {
    return denominator == 0 ? 0.0 : static_cast<double>(numerator) / denominator;
  };
  metrics.accuracy = ratio(confusion.tp + confusion.tn, confusion.total());
  metrics.recall = ratio(confusion.tp, confusion.tp + confusion.fn);
  metrics.precision = ratio(confusion.tp, confusion.tp + confusion.fp);
  metrics.fpr = ratio(confusion.fp, confusion.fp + confusion.tn);
  metrics.fnr = ratio(confusion.fn, confusion.tp + confusion.fn);
  const double pr_sum = metrics.precision + metrics.recall;
  metrics.f1 = pr_sum == 0.0 ? 0.0 : 2.0 * metrics.precision * metrics.recall / pr_sum;
  return metrics;
}

BinaryMetrics ComputeMetrics(std::span<const int> truth, std::span<const int> predicted) {
  assert(truth.size() == predicted.size());
  ConfusionMatrix confusion;
  for (std::size_t i = 0; i < truth.size(); ++i) confusion.Add(truth[i], predicted[i]);
  return ComputeMetrics(confusion);
}

std::string BinaryMetrics::ToString() const {
  return Format("acc=%.4f recall=%.4f precision=%.4f fpr=%.4f fnr=%.4f f1=%.4f", accuracy,
                recall, precision, fpr, fnr, f1);
}

}  // namespace sidet
