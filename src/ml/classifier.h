// Common interface for the binary classifiers the paper studied (§IV.C:
// "KNN, support vector machine, Naive Bayes, and decision tree").
#pragma once

#include <span>
#include <vector>

#include "ml/dataset.h"
#include "util/result.h"

namespace sidet {

class Classifier {
 public:
  virtual ~Classifier() = default;

  // Trains on the dataset. Fails on empty or single-class data where the
  // model cannot be fit meaningfully.
  virtual Status Fit(const Dataset& data) = 0;

  // Predicts the label (0/1) for one row laid out per the training specs.
  virtual int Predict(std::span<const double> row) const = 0;

  // P(label == 1); default derives a hard 0/1 from Predict.
  virtual double PredictProbability(std::span<const double> row) const {
    return Predict(row) == 1 ? 1.0 : 0.0;
  }

  std::vector<int> PredictAll(const Dataset& data) const {
    std::vector<int> out;
    out.reserve(data.size());
    for (std::size_t i = 0; i < data.size(); ++i) out.push_back(Predict(data.row(i)));
    return out;
  }
};

}  // namespace sidet
