// CART decision tree — the classifier the paper selected (§IV.C.2): "suitable
// for learning from small sample data sets, ideal for numerical data and
// discrete data, and can also obtain the weights of feature attributes".
//
// Numeric features split on thresholds (candidate midpoints between sorted
// distinct values); categorical features split one-category-vs-rest. The
// three split criteria the paper names — information gain, gain ratio, Gini
// impurity — are all implemented. Feature importances are the
// impurity-decrease weights of Fig 6, normalized to sum to 1.
//
// Trained trees serialize to JSON so the context feature memory can store
// and reload per-device models.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "ml/classifier.h"
#include "util/json.h"

namespace sidet {

enum class SplitCriterion { kGini = 0, kInfoGain, kGainRatio };
std::string_view ToString(SplitCriterion criterion);

struct DecisionTreeParams {
  SplitCriterion criterion = SplitCriterion::kGini;
  int max_depth = 10;
  std::size_t min_samples_split = 16;
  std::size_t min_samples_leaf = 8;
  double min_impurity_decrease = 1e-7;
};

class DecisionTree : public Classifier {
 public:
  explicit DecisionTree(DecisionTreeParams params = {});

  Status Fit(const Dataset& data) override;
  int Predict(std::span<const double> row) const override;
  double PredictProbability(std::span<const double> row) const override;

  bool trained() const { return root_ != nullptr; }
  const DecisionTreeParams& params() const { return params_; }

  // Normalized impurity-decrease importances, indexed by feature (Fig 6).
  const std::vector<double>& feature_importances() const { return importances_; }
  // (feature name, importance) sorted descending — the Fig 6 series.
  std::vector<std::pair<std::string, double>> RankedImportances() const;

  int depth() const;
  std::size_t node_count() const;
  std::size_t leaf_count() const;

  // Human-readable tree dump (for examples and debugging).
  std::string Describe() const;

  Json ToJson() const;
  static Result<DecisionTree> FromJson(const Json& json);

 private:
  // CompiledTree flattens the pointer nodes into contiguous arrays.
  friend class CompiledTree;
  struct Node {
    // Leaf fields.
    bool is_leaf = true;
    int label = 0;
    double probability = 0.5;  // P(label==1) among training rows at the leaf
    std::size_t samples = 0;
    // Split fields.
    std::size_t feature = 0;
    bool categorical = false;
    double threshold = 0.0;  // numeric: go left if value <= threshold;
                             // categorical: go left if value == threshold
    std::unique_ptr<Node> left;
    std::unique_ptr<Node> right;
  };

  struct SplitChoice {
    bool found = false;
    std::size_t feature = 0;
    bool categorical = false;
    double threshold = 0.0;
    double gain = 0.0;
    double impurity_decrease = 0.0;
  };

  std::unique_ptr<Node> Build(const Dataset& data, std::vector<std::size_t>& indices, int depth);
  SplitChoice FindBestSplit(const Dataset& data, std::span<const std::size_t> indices) const;
  const Node* Walk(std::span<const double> row) const;

  static Json NodeToJson(const Node& node);
  static Result<std::unique_ptr<Node>> NodeFromJson(const Json& json);

  DecisionTreeParams params_;
  std::vector<FeatureSpec> features_;
  std::unique_ptr<Node> root_;
  std::vector<double> importances_;
  double total_samples_ = 0.0;
};

}  // namespace sidet
