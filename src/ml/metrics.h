// Evaluation metrics — exactly the five indicators of §V, equations (1)–(5):
// accuracy, recall, precision, false-positive rate (the paper's "false alarm
// rate") and false-negative rate.
#pragma once

#include <span>
#include <string>

namespace sidet {

struct ConfusionMatrix {
  // Convention matches Table V: positive class = legitimate context (1).
  long tp = 0;
  long tn = 0;
  long fp = 0;
  long fn = 0;

  long total() const { return tp + tn + fp + fn; }
  void Add(int truth, int predicted);
  void Accumulate(const ConfusionMatrix& other) {
    tp += other.tp;
    tn += other.tn;
    fp += other.fp;
    fn += other.fn;
  }
};

struct BinaryMetrics {
  double accuracy = 0.0;
  double recall = 0.0;     // TP / (TP + FN), eq (2)
  double precision = 0.0;  // TP / (TP + FP), eq (3)
  double fpr = 0.0;        // FP / (FP + TN), eq (4) — "false alarm rate"
  double fnr = 0.0;        // FN / (TP + FN), eq (5)
  double f1 = 0.0;
  ConfusionMatrix confusion;

  std::string ToString() const;
};

BinaryMetrics ComputeMetrics(const ConfusionMatrix& confusion);
BinaryMetrics ComputeMetrics(std::span<const int> truth, std::span<const int> predicted);

}  // namespace sidet
