#include "ml/linear_svm.h"

#include <cassert>
#include <cmath>

#include "util/rng.h"

namespace sidet {

LinearSvm::LinearSvm(LinearSvmParams params) : params_(params) {}

Status LinearSvm::Fit(const Dataset& data) {
  if (data.empty()) return Error("cannot fit svm on an empty dataset");
  if (data.CountLabel(0) == 0 || data.CountLabel(1) == 0) {
    return Error("svm needs both classes present");
  }
  features_ = data.features();

  // Build the encoding layout.
  encoded_offset_.assign(features_.size(), 0);
  encoded_width_ = 0;
  for (std::size_t f = 0; f < features_.size(); ++f) {
    encoded_offset_[f] = encoded_width_;
    encoded_width_ += features_[f].categorical
                          ? std::max<std::size_t>(features_[f].categories.size(), 1)
                          : 1;
  }

  // Standardization statistics for numeric columns.
  numeric_mean_.assign(features_.size(), 0.0);
  numeric_stddev_.assign(features_.size(), 1.0);
  for (std::size_t f = 0; f < features_.size(); ++f) {
    if (features_[f].categorical) continue;
    double sum = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) sum += data.row(i)[f];
    const double mean = sum / static_cast<double>(data.size());
    double sq = 0.0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const double d = data.row(i)[f] - mean;
      sq += d * d;
    }
    const double stddev = std::sqrt(sq / static_cast<double>(data.size()));
    numeric_mean_[f] = mean;
    numeric_stddev_[f] = stddev > 1e-9 ? stddev : 1.0;
  }

  // Pegasos.
  weights_.assign(encoded_width_, 0.0);
  bias_ = 0.0;
  Rng rng(params_.seed);
  std::size_t t = 0;
  for (int epoch = 0; epoch < params_.epochs; ++epoch) {
    for (std::size_t step = 0; step < data.size(); ++step) {
      ++t;
      const auto i = static_cast<std::size_t>(
          rng.UniformInt(0, static_cast<std::int64_t>(data.size()) - 1));
      const std::vector<double> x = Encode(data.row(i));
      const double y = data.label(i) == 1 ? 1.0 : -1.0;

      double margin = bias_;
      for (std::size_t d = 0; d < encoded_width_; ++d) margin += weights_[d] * x[d];
      margin *= y;

      const double eta = 1.0 / (params_.lambda * static_cast<double>(t));
      for (double& w : weights_) w *= 1.0 - eta * params_.lambda;
      if (margin < 1.0) {
        for (std::size_t d = 0; d < encoded_width_; ++d) weights_[d] += eta * y * x[d];
        bias_ += eta * y;
      }
    }
  }
  return Status::Ok();
}

std::vector<double> LinearSvm::Encode(std::span<const double> row) const {
  assert(row.size() == features_.size());
  std::vector<double> encoded(encoded_width_, 0.0);
  for (std::size_t f = 0; f < features_.size(); ++f) {
    if (features_[f].categorical) {
      const std::size_t arity = std::max<std::size_t>(features_[f].categories.size(), 1);
      auto index = static_cast<std::size_t>(row[f]);
      if (index >= arity) index = arity - 1;
      encoded[encoded_offset_[f] + index] = 1.0;
    } else {
      encoded[encoded_offset_[f]] = (row[f] - numeric_mean_[f]) / numeric_stddev_[f];
    }
  }
  return encoded;
}

double LinearSvm::Decision(std::span<const double> row) const {
  const std::vector<double> x = Encode(row);
  double score = bias_;
  for (std::size_t d = 0; d < encoded_width_; ++d) score += weights_[d] * x[d];
  return score;
}

int LinearSvm::Predict(std::span<const double> row) const {
  return Decision(row) >= 0.0 ? 1 : 0;
}

double LinearSvm::PredictProbability(std::span<const double> row) const {
  return 1.0 / (1.0 + std::exp(-Decision(row)));  // Platt-style squashing
}

}  // namespace sidet
