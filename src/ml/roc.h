// Decision-threshold analysis: ROC curves, AUC and threshold selection.
//
// The paper fixes the judger's consistency threshold at 0.5; this module
// makes the FPR/FNR trade-off explicit — bench_ablation_threshold sweeps it,
// and deployments that prefer "never block a legitimate user" vs "never let
// a spoof through" can pick their operating point.
#pragma once

#include <span>
#include <vector>

#include "ml/metrics.h"

namespace sidet {

struct RocPoint {
  double threshold = 0.5;
  double tpr = 0.0;  // recall at this threshold
  double fpr = 0.0;
};

struct RocCurve {
  std::vector<RocPoint> points;  // threshold descending: (0,0) -> (1,1)
  double auc = 0.0;
};

// Builds the curve from scores (P(label==1)) and true labels. One point per
// distinct score plus the two trivial endpoints.
RocCurve ComputeRoc(std::span<const double> scores, std::span<const int> labels);

// Metrics at a fixed threshold.
BinaryMetrics MetricsAtThreshold(std::span<const double> scores, std::span<const int> labels,
                                 double threshold);

// Largest threshold whose FPR stays <= `max_fpr` (conservative "almost never
// false-alarm" operating point); falls back to 0.5 on degenerate input.
double ThresholdForFpr(std::span<const double> scores, std::span<const int> labels,
                       double max_fpr);

}  // namespace sidet
