#include "ml/decision_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/strings.h"

namespace sidet {

std::string_view ToString(SplitCriterion criterion) {
  switch (criterion) {
    case SplitCriterion::kGini: return "gini";
    case SplitCriterion::kInfoGain: return "info_gain";
    case SplitCriterion::kGainRatio: return "gain_ratio";
  }
  return "?";
}

namespace {

double Gini(double n0, double n1) {
  const double n = n0 + n1;
  if (n == 0.0) return 0.0;
  const double p0 = n0 / n;
  const double p1 = n1 / n;
  return 1.0 - p0 * p0 - p1 * p1;
}

double Entropy(double n0, double n1) {
  const double n = n0 + n1;
  if (n == 0.0) return 0.0;
  double h = 0.0;
  for (const double c : {n0, n1}) {
    if (c > 0.0) {
      const double p = c / n;
      h -= p * std::log2(p);
    }
  }
  return h;
}

double Impurity(SplitCriterion criterion, double n0, double n1) {
  return criterion == SplitCriterion::kGini ? Gini(n0, n1) : Entropy(n0, n1);
}

}  // namespace

DecisionTree::DecisionTree(DecisionTreeParams params) : params_(params) {}

Status DecisionTree::Fit(const Dataset& data) {
  if (data.empty()) return Error("cannot fit a decision tree on an empty dataset");
  features_ = data.features();
  importances_.assign(features_.size(), 0.0);
  total_samples_ = static_cast<double>(data.size());

  std::vector<std::size_t> indices(data.size());
  for (std::size_t i = 0; i < indices.size(); ++i) indices[i] = i;
  root_ = Build(data, indices, 0);

  // Normalize importances (Fig 6 plots relative weights).
  double sum = 0.0;
  for (const double w : importances_) sum += w;
  if (sum > 0.0) {
    for (double& w : importances_) w /= sum;
  }
  return Status::Ok();
}

DecisionTree::SplitChoice DecisionTree::FindBestSplit(
    const Dataset& data, std::span<const std::size_t> indices) const {
  SplitChoice best;

  double parent0 = 0.0, parent1 = 0.0;
  for (const std::size_t i : indices) (data.label(i) == 0 ? parent0 : parent1) += 1.0;
  const double n = parent0 + parent1;
  const double parent_impurity = Impurity(params_.criterion, parent0, parent1);
  if (parent_impurity == 0.0) return best;  // already pure

  const double min_leaf = static_cast<double>(params_.min_samples_leaf);

  const auto consider = [&](std::size_t feature, bool categorical, double threshold, double l0,
                            double l1) {
    const double r0 = parent0 - l0;
    const double r1 = parent1 - l1;
    const double nl = l0 + l1;
    const double nr = r0 + r1;
    if (nl < min_leaf || nr < min_leaf) return;

    const double child_impurity = (nl * Impurity(params_.criterion, l0, l1) +
                                   nr * Impurity(params_.criterion, r0, r1)) /
                                  n;
    double gain = parent_impurity - child_impurity;
    if (params_.criterion == SplitCriterion::kGainRatio) {
      const double pl = nl / n;
      const double pr = nr / n;
      const double split_info = -(pl * std::log2(pl) + pr * std::log2(pr));
      if (split_info <= 1e-12) return;
      gain /= split_info;
    }
    const double impurity_decrease = (n / total_samples_) * (parent_impurity - child_impurity);
    if (gain > best.gain + 1e-12 && impurity_decrease >= params_.min_impurity_decrease) {
      best.found = true;
      best.feature = feature;
      best.categorical = categorical;
      best.threshold = threshold;
      best.gain = gain;
      best.impurity_decrease = impurity_decrease;
    }
  };

  for (std::size_t feature = 0; feature < features_.size(); ++feature) {
    if (features_[feature].categorical) {
      // One-vs-rest on each category present among these rows.
      std::vector<double> seen;
      for (const std::size_t i : indices) {
        const double v = data.row(i)[feature];
        if (std::find(seen.begin(), seen.end(), v) == seen.end()) seen.push_back(v);
      }
      std::sort(seen.begin(), seen.end());
      if (seen.size() < 2) continue;
      for (const double category : seen) {
        double l0 = 0.0, l1 = 0.0;
        for (const std::size_t i : indices) {
          if (data.row(i)[feature] == category) {
            (data.label(i) == 0 ? l0 : l1) += 1.0;
          }
        }
        consider(feature, /*categorical=*/true, category, l0, l1);
      }
    } else {
      // Threshold splits at midpoints between distinct sorted values.
      std::vector<std::pair<double, int>> sorted;
      sorted.reserve(indices.size());
      for (const std::size_t i : indices) sorted.emplace_back(data.row(i)[feature], data.label(i));
      std::sort(sorted.begin(), sorted.end());
      double l0 = 0.0, l1 = 0.0;
      for (std::size_t k = 0; k + 1 < sorted.size(); ++k) {
        (sorted[k].second == 0 ? l0 : l1) += 1.0;
        if (sorted[k].first == sorted[k + 1].first) continue;
        const double threshold = (sorted[k].first + sorted[k + 1].first) / 2.0;
        consider(feature, /*categorical=*/false, threshold, l0, l1);
      }
    }
  }
  return best;
}

std::unique_ptr<DecisionTree::Node> DecisionTree::Build(const Dataset& data,
                                                        std::vector<std::size_t>& indices,
                                                        int depth) {
  auto node = std::make_unique<Node>();
  node->samples = indices.size();

  double n0 = 0.0, n1 = 0.0;
  for (const std::size_t i : indices) (data.label(i) == 0 ? n0 : n1) += 1.0;
  node->probability = (n0 + n1) == 0.0 ? 0.5 : n1 / (n0 + n1);
  node->label = node->probability >= 0.5 ? 1 : 0;

  const bool pure = n0 == 0.0 || n1 == 0.0;
  if (pure || depth >= params_.max_depth || indices.size() < params_.min_samples_split) {
    return node;
  }

  const SplitChoice split = FindBestSplit(data, indices);
  if (!split.found) return node;

  std::vector<std::size_t> left_indices;
  std::vector<std::size_t> right_indices;
  for (const std::size_t i : indices) {
    const double v = data.row(i)[split.feature];
    const bool goes_left = split.categorical ? v == split.threshold : v <= split.threshold;
    (goes_left ? left_indices : right_indices).push_back(i);
  }
  // FindBestSplit guarantees both sides meet min_samples_leaf.
  assert(!left_indices.empty() && !right_indices.empty());

  importances_[split.feature] += split.impurity_decrease;

  node->is_leaf = false;
  node->feature = split.feature;
  node->categorical = split.categorical;
  node->threshold = split.threshold;
  node->left = Build(data, left_indices, depth + 1);
  node->right = Build(data, right_indices, depth + 1);
  return node;
}

const DecisionTree::Node* DecisionTree::Walk(std::span<const double> row) const {
  assert(root_ != nullptr);
  assert(row.size() == features_.size());
  const Node* node = root_.get();
  while (!node->is_leaf) {
    const double v = row[node->feature];
    const bool goes_left = node->categorical ? v == node->threshold : v <= node->threshold;
    node = goes_left ? node->left.get() : node->right.get();
  }
  return node;
}

int DecisionTree::Predict(std::span<const double> row) const { return Walk(row)->label; }

double DecisionTree::PredictProbability(std::span<const double> row) const {
  return Walk(row)->probability;
}

std::vector<std::pair<std::string, double>> DecisionTree::RankedImportances() const {
  std::vector<std::pair<std::string, double>> ranked;
  for (std::size_t f = 0; f < features_.size(); ++f) {
    ranked.emplace_back(features_[f].name, importances_[f]);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  return ranked;
}

namespace {

template <typename NodeT>
int DepthOf(const NodeT* node) {
  if (node == nullptr || node->is_leaf) return 0;
  return 1 + std::max(DepthOf(node->left.get()), DepthOf(node->right.get()));
}

template <typename NodeT>
std::size_t CountNodes(const NodeT* node) {
  if (node == nullptr) return 0;
  return 1 + CountNodes(node->left.get()) + CountNodes(node->right.get());
}

template <typename NodeT>
std::size_t CountLeaves(const NodeT* node) {
  if (node == nullptr) return 0;
  if (node->is_leaf) return 1;
  return CountLeaves(node->left.get()) + CountLeaves(node->right.get());
}

}  // namespace

int DecisionTree::depth() const { return DepthOf(root_.get()); }
std::size_t DecisionTree::node_count() const { return CountNodes(root_.get()); }
std::size_t DecisionTree::leaf_count() const { return CountLeaves(root_.get()); }

std::string DecisionTree::Describe() const {
  std::string out;
  struct Walker {
    const std::vector<FeatureSpec>& features;
    std::string& out;
    void Visit(const Node* node, int depth) {
      out.append(static_cast<std::size_t>(depth) * 2, ' ');
      if (node->is_leaf) {
        out += Format("leaf: label=%d p=%.3f n=%zu\n", node->label, node->probability,
                      node->samples);
        return;
      }
      const FeatureSpec& spec = features[node->feature];
      if (node->categorical) {
        const auto index = static_cast<std::size_t>(node->threshold);
        const std::string label =
            index < spec.categories.size() ? spec.categories[index] : std::to_string(index);
        out += Format("if %s == \"%s\":\n", spec.name.c_str(), label.c_str());
      } else {
        out += Format("if %s <= %.4g:\n", spec.name.c_str(), node->threshold);
      }
      Visit(node->left.get(), depth + 1);
      out.append(static_cast<std::size_t>(depth) * 2, ' ');
      out += "else:\n";
      Visit(node->right.get(), depth + 1);
    }
  };
  if (root_ == nullptr) return "(untrained)\n";
  Walker{features_, out}.Visit(root_.get(), 0);
  return out;
}

Json DecisionTree::NodeToJson(const Node& node) {
  Json out = Json::Object();
  if (node.is_leaf) {
    out["leaf"] = true;
    out["label"] = node.label;
    out["p"] = node.probability;
    out["n"] = static_cast<std::int64_t>(node.samples);
    return out;
  }
  out["leaf"] = false;
  out["feature"] = static_cast<std::int64_t>(node.feature);
  out["categorical"] = node.categorical;
  out["threshold"] = node.threshold;
  out["label"] = node.label;
  out["p"] = node.probability;
  out["n"] = static_cast<std::int64_t>(node.samples);
  out["left"] = NodeToJson(*node.left);
  out["right"] = NodeToJson(*node.right);
  return out;
}

Result<std::unique_ptr<DecisionTree::Node>> DecisionTree::NodeFromJson(const Json& json) {
  if (!json.is_object()) return Error("tree node must be an object");
  auto node = std::make_unique<Node>();
  node->is_leaf = json.bool_or("leaf", true);
  node->label = static_cast<int>(json.number_or("label", 0));
  node->probability = json.number_or("p", 0.5);
  node->samples = static_cast<std::size_t>(json.number_or("n", 0));
  if (!node->is_leaf) {
    node->feature = static_cast<std::size_t>(json.number_or("feature", 0));
    node->categorical = json.bool_or("categorical", false);
    node->threshold = json.number_or("threshold", 0.0);
    const Json* left = json.find("left");
    const Json* right = json.find("right");
    if (left == nullptr || right == nullptr) return Error("split node missing children");
    Result<std::unique_ptr<Node>> left_node = NodeFromJson(*left);
    if (!left_node.ok()) return left_node.error();
    Result<std::unique_ptr<Node>> right_node = NodeFromJson(*right);
    if (!right_node.ok()) return right_node.error();
    node->left = std::move(left_node).value();
    node->right = std::move(right_node).value();
  }
  return node;
}

Json DecisionTree::ToJson() const {
  Json out = Json::Object();
  out["model"] = "decision_tree";
  out["criterion"] = std::string(sidet::ToString(params_.criterion));
  out["max_depth"] = params_.max_depth;

  Json feature_list = Json::Array();
  for (const FeatureSpec& spec : features_) {
    Json f = Json::Object();
    f["name"] = spec.name;
    f["categorical"] = spec.categorical;
    Json categories = Json::Array();
    for (const std::string& c : spec.categories) categories.as_array().push_back(c);
    f["categories"] = std::move(categories);
    feature_list.as_array().push_back(std::move(f));
  }
  out["features"] = std::move(feature_list);

  Json importance_list = Json::Array();
  for (const double w : importances_) importance_list.as_array().push_back(w);
  out["importances"] = std::move(importance_list);

  if (root_ != nullptr) out["root"] = NodeToJson(*root_);
  return out;
}

Result<DecisionTree> DecisionTree::FromJson(const Json& json) {
  if (!json.is_object() || json.string_or("model", "") != "decision_tree") {
    return Error("not a serialized decision tree");
  }
  DecisionTree tree;
  const std::string criterion = json.string_or("criterion", "gini");
  if (criterion == "gini") tree.params_.criterion = SplitCriterion::kGini;
  else if (criterion == "info_gain") tree.params_.criterion = SplitCriterion::kInfoGain;
  else if (criterion == "gain_ratio") tree.params_.criterion = SplitCriterion::kGainRatio;
  else return Error("unknown criterion '" + criterion + "'");
  tree.params_.max_depth = static_cast<int>(json.number_or("max_depth", 12));

  const Json* features = json.find("features");
  if (features == nullptr || !features->is_array()) return Error("missing features");
  for (const Json& f : features->as_array()) {
    FeatureSpec spec;
    spec.name = f.string_or("name", "");
    spec.categorical = f.bool_or("categorical", false);
    if (const Json* categories = f.find("categories"); categories && categories->is_array()) {
      for (const Json& c : categories->as_array()) {
        if (c.is_string()) spec.categories.push_back(c.as_string());
      }
    }
    tree.features_.push_back(std::move(spec));
  }

  tree.importances_.assign(tree.features_.size(), 0.0);
  if (const Json* importances = json.find("importances"); importances && importances->is_array()) {
    const JsonArray& arr = importances->as_array();
    for (std::size_t i = 0; i < arr.size() && i < tree.importances_.size(); ++i) {
      if (arr[i].is_number()) tree.importances_[i] = arr[i].as_number();
    }
  }

  const Json* root = json.find("root");
  if (root == nullptr) return Error("missing tree root");
  Result<std::unique_ptr<Node>> parsed = NodeFromJson(*root);
  if (!parsed.ok()) return parsed.error();
  tree.root_ = std::move(parsed).value();
  return tree;
}

}  // namespace sidet
