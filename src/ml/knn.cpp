#include "ml/knn.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sidet {

KnnClassifier::KnnClassifier(KnnParams params) : params_(params) {
  assert(params_.k >= 1);
}

Status KnnClassifier::Fit(const Dataset& data) {
  if (data.empty()) return Error("cannot fit knn on an empty dataset");
  training_ = data;

  const std::size_t width = data.num_features();
  feature_min_.assign(width, 0.0);
  feature_range_.assign(width, 1.0);
  for (std::size_t f = 0; f < width; ++f) {
    if (data.features()[f].categorical) continue;
    double lo = data.row(0)[f];
    double hi = lo;
    for (std::size_t i = 1; i < data.size(); ++i) {
      lo = std::min(lo, data.row(i)[f]);
      hi = std::max(hi, data.row(i)[f]);
    }
    feature_min_[f] = lo;
    feature_range_[f] = hi > lo ? hi - lo : 1.0;
  }
  majority_label_ = data.CountLabel(1) >= data.CountLabel(0) ? 1 : 0;
  return Status::Ok();
}

double KnnClassifier::Distance(std::span<const double> a, std::span<const double> b) const {
  double sum = 0.0;
  for (std::size_t f = 0; f < a.size(); ++f) {
    if (training_.features()[f].categorical) {
      sum += a[f] == b[f] ? 0.0 : 1.0;
    } else {
      const double da = (a[f] - feature_min_[f]) / feature_range_[f];
      const double db = (b[f] - feature_min_[f]) / feature_range_[f];
      sum += (da - db) * (da - db);
    }
  }
  return sum;  // squared distance; monotone, so fine for ranking
}

double KnnClassifier::PositiveVote(std::span<const double> row) const {
  assert(!training_.empty());
  const auto k = std::min<std::size_t>(static_cast<std::size_t>(params_.k), training_.size());

  // Partial selection of the k smallest distances.
  std::vector<std::pair<double, int>> distances;
  distances.reserve(training_.size());
  for (std::size_t i = 0; i < training_.size(); ++i) {
    distances.emplace_back(Distance(row, training_.row(i)), training_.label(i));
  }
  std::nth_element(distances.begin(), distances.begin() + static_cast<std::ptrdiff_t>(k - 1),
                   distances.end());
  double positives = 0.0;
  for (std::size_t i = 0; i < k; ++i) positives += distances[i].second;
  return positives / static_cast<double>(k);
}

int KnnClassifier::Predict(std::span<const double> row) const {
  const double vote = PositiveVote(row);
  if (vote == 0.5) return majority_label_;
  return vote > 0.5 ? 1 : 0;
}

double KnnClassifier::PredictProbability(std::span<const double> row) const {
  return PositiveVote(row);
}

}  // namespace sidet
