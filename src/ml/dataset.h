// Tabular dataset with mixed numeric/categorical features and binary labels.
//
// This is the representation the paper's feature memory trains on: one row
// per (strategy execution × sensor context), label 1 = legitimate context,
// label 0 = out-of-context / attack. Categorical feature values are stored
// as category indices in the same double-typed row; the FeatureSpec carries
// the decoding table.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace sidet {

struct FeatureSpec {
  std::string name;
  bool categorical = false;
  std::vector<std::string> categories;  // index -> label, for categorical

  bool operator==(const FeatureSpec&) const = default;
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(std::vector<FeatureSpec> features);

  const std::vector<FeatureSpec>& features() const { return features_; }
  std::size_t num_features() const { return features_.size(); }
  std::size_t size() const { return labels_.size(); }
  bool empty() const { return labels_.empty(); }

  // Row length must equal num_features(); label must be 0 or 1.
  void Add(std::vector<double> row, int label);

  std::span<const double> row(std::size_t i) const;
  int label(std::size_t i) const { return labels_[i]; }
  const std::vector<int>& labels() const { return labels_; }

  std::size_t CountLabel(int label) const;
  double PositiveFraction() const;

  // Column values across all rows.
  std::vector<double> Column(std::size_t feature) const;

  Dataset Subset(std::span<const std::size_t> indices) const;
  // Same specs, no rows.
  Dataset EmptyLike() const;
  // Appends all rows of `other` (must have identical specs).
  Status Append(const Dataset& other);

  void Shuffle(Rng& rng);

  // CSV round trip: header = feature names + "label"; categorical cells are
  // written as their labels.
  std::string ToCsv() const;
  static Result<Dataset> FromCsv(std::string_view text, std::vector<FeatureSpec> features);

 private:
  std::vector<FeatureSpec> features_;
  std::vector<double> values_;  // row-major
  std::vector<int> labels_;
};

}  // namespace sidet
