#include "ml/naive_bayes.h"

#include <cassert>
#include <cmath>

namespace sidet {

NaiveBayesClassifier::NaiveBayesClassifier(NaiveBayesParams params) : params_(params) {}

Status NaiveBayesClassifier::Fit(const Dataset& data) {
  if (data.empty()) return Error("cannot fit naive bayes on an empty dataset");
  const std::size_t class_counts[2] = {data.CountLabel(0), data.CountLabel(1)};
  if (class_counts[0] == 0 || class_counts[1] == 0) {
    return Error("naive bayes needs both classes present");
  }
  features_ = data.features();
  const std::size_t width = features_.size();

  for (int c = 0; c < 2; ++c) {
    log_prior_[c] =
        std::log(static_cast<double>(class_counts[c]) / static_cast<double>(data.size()));
    mean_[c].assign(width, 0.0);
    variance_[c].assign(width, params_.min_variance);
    category_log_prob_[c].assign(width, {});
  }

  // Numeric: per-class mean then variance.
  for (std::size_t f = 0; f < width; ++f) {
    if (features_[f].categorical) {
      const std::size_t arity = std::max<std::size_t>(features_[f].categories.size(), 1);
      for (int c = 0; c < 2; ++c) {
        std::vector<double> counts(arity, params_.laplace_alpha);
        double total = params_.laplace_alpha * static_cast<double>(arity);
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data.label(i) != c) continue;
          auto index = static_cast<std::size_t>(data.row(i)[f]);
          if (index >= arity) index = arity - 1;
          counts[index] += 1.0;
          total += 1.0;
        }
        std::vector<double>& logs = category_log_prob_[c][f];
        logs.resize(arity);
        for (std::size_t k = 0; k < arity; ++k) logs[k] = std::log(counts[k] / total);
      }
    } else {
      for (int c = 0; c < 2; ++c) {
        double sum = 0.0;
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data.label(i) == c) sum += data.row(i)[f];
        }
        const double mean = sum / static_cast<double>(class_counts[c]);
        double sq = 0.0;
        for (std::size_t i = 0; i < data.size(); ++i) {
          if (data.label(i) == c) {
            const double d = data.row(i)[f] - mean;
            sq += d * d;
          }
        }
        mean_[c][f] = mean;
        variance_[c][f] =
            std::max(params_.min_variance, sq / static_cast<double>(class_counts[c]));
      }
    }
  }
  return Status::Ok();
}

double NaiveBayesClassifier::LogJoint(std::span<const double> row, int label) const {
  assert(row.size() == features_.size());
  double log_p = log_prior_[label];
  for (std::size_t f = 0; f < features_.size(); ++f) {
    if (features_[f].categorical) {
      const std::vector<double>& logs = category_log_prob_[label][f];
      auto index = static_cast<std::size_t>(row[f]);
      if (index >= logs.size()) index = logs.empty() ? 0 : logs.size() - 1;
      if (!logs.empty()) log_p += logs[index];
    } else {
      const double variance = variance_[label][f];
      const double diff = row[f] - mean_[label][f];
      log_p += -0.5 * std::log(2.0 * M_PI * variance) - diff * diff / (2.0 * variance);
    }
  }
  return log_p;
}

int NaiveBayesClassifier::Predict(std::span<const double> row) const {
  return LogJoint(row, 1) >= LogJoint(row, 0) ? 1 : 0;
}

double NaiveBayesClassifier::PredictProbability(std::span<const double> row) const {
  const double l0 = LogJoint(row, 0);
  const double l1 = LogJoint(row, 1);
  const double max = std::max(l0, l1);
  const double e0 = std::exp(l0 - max);
  const double e1 = std::exp(l1 - max);
  return e1 / (e0 + e1);
}

}  // namespace sidet
