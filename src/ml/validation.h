// Train/test splitting and cross-validation (§V: "we divide the data set by
// 7:3 … then use the cross-validation method").
#pragma once

#include <functional>
#include <memory>

#include "ml/classifier.h"
#include "ml/metrics.h"
#include "util/rng.h"

namespace sidet {

struct TrainTestSplit {
  Dataset train;
  Dataset test;
};

// Stratified: both classes keep their proportions across the split.
TrainTestSplit StratifiedSplit(const Dataset& data, double test_fraction, Rng& rng);

// Stratified k-fold index assignment; returns fold id per row.
std::vector<int> StratifiedFolds(const Dataset& data, int folds, Rng& rng);

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

struct CrossValidationResult {
  std::vector<BinaryMetrics> fold_metrics;
  BinaryMetrics pooled;     // metrics over the union of held-out predictions
  double mean_accuracy = 0.0;
  double stddev_accuracy = 0.0;
};

// k-fold CV: for each fold, fit a fresh classifier on the remaining folds
// (optionally re-balancing the training portion only — oversampling must
// never touch held-out data) and evaluate on the fold.
//
// Folds run concurrently on `threads` lanes (1 = sequential, 0 = hardware
// concurrency). Each fold draws from its own rng.Fork(fold) stream, so the
// result is bit-identical at any thread count; `factory` and `rebalance`
// must be safe to invoke from multiple threads (pure functions of their
// arguments, as every in-repo classifier and oversampler is).
CrossValidationResult CrossValidate(
    const Dataset& data, const ClassifierFactory& factory, int folds, Rng& rng,
    const std::function<Dataset(const Dataset&, Rng&)>& rebalance = nullptr, int threads = 1);

}  // namespace sidet
