// k-nearest-neighbours baseline (§IV.C considered KNN before settling on
// decision trees).
//
// Mixed-type distance: numeric features are min-max normalized to [0,1] and
// contribute squared differences; categorical features contribute 0/1
// (Hamming). Ties in the vote break toward the majority training class.
#pragma once

#include "ml/classifier.h"

namespace sidet {

struct KnnParams {
  int k = 5;
};

class KnnClassifier : public Classifier {
 public:
  explicit KnnClassifier(KnnParams params = {});

  Status Fit(const Dataset& data) override;
  int Predict(std::span<const double> row) const override;
  double PredictProbability(std::span<const double> row) const override;

 private:
  double Distance(std::span<const double> a, std::span<const double> b) const;
  // Fraction of positive labels among the k nearest neighbours.
  double PositiveVote(std::span<const double> row) const;

  KnnParams params_;
  Dataset training_;
  std::vector<double> feature_min_;
  std::vector<double> feature_range_;  // max - min, 1 when degenerate
  int majority_label_ = 1;
};

}  // namespace sidet
