// Flat-array ("compiled") inference for trained trees and forests.
//
// A trained DecisionTree predicts by chasing unique_ptr nodes — one
// dependent load per level, each landing in a separate heap allocation.
// CompiledTree re-lays the same tree out as a structure-of-arrays in
// breadth-first order: parallel feature[]/threshold[]/left[]/right[]/prob[]
// vectors in one contiguous block, so the walk is index arithmetic over hot
// cache lines and a whole batch of rows streams through without pointer
// indirection. Predictions are bit-identical to the source tree: the same
// thresholds are compared with the same <= / == semantics in the same order.
//
// Two traversal engines share the arrays (DESIGN.md §15):
//
//   * the scalar walk (PredictProbability) — one row, data-dependent exit at
//     the first leaf reached;
//   * the block kernel (PredictRows) — eight rows per tree step in
//     lock-step: each step is a branch-free select over all eight lanes
//     (`omp simd`; builds without OpenMP SIMD support compile the same loop
//     scalar). Leaves are compiled as self-loops (left == right == self,
//     threshold +inf) so the select body needs no per-lane exit test; the
//     block exits early once a step moves no lane. Comparisons are identical
//     either way, so block and scalar verdicts are bit-equal — the seeded
//     equivalence suite (vectorized_equiv_test) enforces it.
//
// CompiledForest bakes each member tree's feature-subset projection
// (RandomForest trains trees on feature subsamples) into the compiled node
// feature indices, so member trees read the full row directly — no per-row
// gather into a projection scratch — and averages leaf probabilities in tree
// order, matching RandomForest::PredictProbability exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/random_forest.h"
#include "util/result.h"

namespace sidet {

// Saabas-style path attribution for one row (DESIGN.md §17). The prediction
// decomposes as
//
//   margin == bias + contributions[0] + ... + contributions[F-1] + residual
//
// where `bias` is the mean of the member trees' root probabilities (the
// prediction an empty row of evidence would get), contributions[f] is the
// mean of every probability delta feature f's splits moved the walk by, and
// `residual` is the floating-point closure term (|residual| <~ 1e-12 — the
// telescoped per-split deltas re-round when regrouped per feature). The
// identity above holds bit-for-bit when evaluated left-to-right in exactly
// that order: the residual is chosen so the final addition reproduces the
// margin's bit pattern, and `margin` itself is computed with the same
// tree-major sum + divide as PredictProbability, so it equals the served
// probability exactly.
struct ForestExplanation {
  double bias = 0.5;
  double margin = 0.5;
  double residual = 0.0;
  // One signed contribution per full-row feature column.
  std::vector<double> contributions;
};

class CompiledTree {
 public:
  // Rows traversed per step by the block kernel. Eight independent walks
  // hide the latency of the data-dependent node loads (the lanes' chains
  // never interlock) and match one AVX-512 / two AVX2 double vectors.
  static constexpr std::size_t kBlockRows = 8;

  CompiledTree() = default;

  // Flattens a trained tree. An untrained tree compiles to an empty
  // CompiledTree that predicts 0.5 (as DecisionTree would crash instead,
  // callers gate on trained()).
  static CompiledTree Compile(const DecisionTree& tree);

  // Flattens with node feature indices remapped through `projection`
  // (node feature f reads full-row column projection[f]) so the compiled
  // tree traverses unprojected rows of width `row_width` directly.
  // CompiledForest bakes its per-tree feature subsets this way.
  static CompiledTree CompileProjected(const DecisionTree& tree,
                                       std::span<const std::size_t> projection,
                                       std::size_t row_width);

  // Borrowing view over the serializable node columns — exactly what the
  // compact model store persists. kernel_feature_, delta_ and depth_ are
  // derived arrays and are recomputed by FromColumns on load.
  struct ColumnsView {
    std::span<const std::int32_t> feature;
    std::span<const std::uint8_t> categorical;
    std::span<const double> threshold;
    std::span<const std::int32_t> left;
    std::span<const std::int32_t> right;
    std::span<const double> prob;
    std::size_t num_features = 0;
  };
  ColumnsView columns() const;

  // Rebuilds a tree from stored columns (the compact model store's load
  // path), enforcing the invariants Compile guarantees: BFS layout (children
  // strictly after their parent), leaves self-looped with threshold +inf and
  // categorical 0, split features inside [0, num_features), probabilities in
  // [0, 1], and every non-root node entered by exactly one split. Any
  // violation returns an error and no tree — a corrupt blob can never
  // produce a partially-valid walker.
  static Result<CompiledTree> FromColumns(std::vector<std::int32_t> feature,
                                          std::vector<std::uint8_t> categorical,
                                          std::vector<double> threshold,
                                          std::vector<std::int32_t> left,
                                          std::vector<std::int32_t> right,
                                          std::vector<double> prob,
                                          std::size_t num_features);

  bool empty() const { return feature_.empty(); }
  std::size_t node_count() const { return feature_.size(); }
  std::size_t num_features() const { return num_features_; }
  // Maximum split steps on any root-to-leaf path — the block kernel's
  // per-block step bound (blocks exit early once every lane is parked).
  std::int32_t depth() const { return depth_; }

  double PredictProbability(std::span<const double> row) const;
  int Predict(std::span<const double> row) const {
    return PredictProbability(row) >= 0.5 ? 1 : 0;
  }

  // Scores rows[0..count) into out[0..count): full blocks of kBlockRows go
  // through the lock-step kernel, the ragged tail (< kBlockRows rows)
  // through the scalar walk. Bit-identical to per-row PredictProbability.
  void PredictRows(const double* const* rows, std::size_t count, double* out) const;

  // Scores every row of `data` into out[i] (out.size() must equal
  // data.size()); rows are sharded across `threads` lanes (clamped to
  // hardware concurrency) in contiguous cache-line-aligned blocks.
  void PredictBatch(const Dataset& data, std::span<double> out, int threads = 1) const;
  // Same, over already-featurized rows.
  void PredictBatch(std::span<const std::vector<double>> rows, std::span<double> out,
                    int threads = 1) const;

  // Attribution walk: traverses `row` with exactly the comparisons of
  // PredictProbability while adding each taken split's child-minus-parent
  // probability delta (precomputed SoA at compile time, `delta_`) into
  // contributions[split feature]. Entries accumulate — zero the span first
  // or chain member trees — and the span must cover num_features() columns.
  // Returns the leaf probability, bit-equal to PredictProbability. The hot
  // scoring paths never touch the attribution arrays, so enabling
  // explanation costs the serving path nothing.
  double ExplainRow(std::span<const double> row, std::span<double> contributions) const;

  // Single-tree explanation (a forest of one): bias is the root's training
  // mean, margin the leaf probability. See ForestExplanation for the exact
  // decomposition identity.
  ForestExplanation Explain(std::span<const double> row) const;

 private:
  friend class CompiledForest;

  // The block kernel. Walks every row to its leaf and either assigns the
  // leaf probability to out[i] (kAccumulate == false) or adds it
  // (kAccumulate == true — CompiledForest sums member trees tree-major, the
  // same per-row order as the scalar sum).
  template <bool kAccumulate>
  void WalkRows(const double* const* rows, std::size_t count, double* out) const;

  static CompiledTree CompileInternal(const DecisionTree& tree,
                                      const std::size_t* projection,
                                      std::size_t row_width);

  // Breadth-first node arrays. feature_[i] < 0 marks a leaf for the scalar
  // walk; kernel_feature_[i] is the same index with leaves mapped to column
  // 0, and leaves self-loop (left_ == right_ == i, threshold_ = +inf) so the
  // block kernel can run a fixed step count with no per-lane exit test.
  std::vector<std::int32_t> feature_;
  std::vector<std::int32_t> kernel_feature_;
  std::vector<std::uint8_t> categorical_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> prob_;  // P(label == 1); meaningful at every node
  // Attribution SoA (read only by ExplainRow, never by the scoring kernels):
  // delta_[i] = prob_[i] - prob_[parent of i], 0 at the root — the Saabas
  // per-split contribution of the parent's feature when the walk enters i.
  std::vector<double> delta_;
  std::size_t num_features_ = 0;
  std::int32_t depth_ = 0;
};

class CompiledForest {
 public:
  CompiledForest() = default;

  static CompiledForest Compile(const RandomForest& forest);

  bool empty() const { return trees_.empty(); }
  std::size_t size() const { return trees_.size(); }
  std::size_t num_features() const { return num_features_; }

  double PredictProbability(std::span<const double> row) const;
  int Predict(std::span<const double> row) const {
    return PredictProbability(row) >= 0.5 ? 1 : 0;
  }

  // Vectorized batch scoring: every member tree streams all rows through
  // the block kernel, accumulating leaf probabilities tree-major — per row
  // that is the same summation order as the scalar path, so results are
  // bit-identical.
  void PredictRows(const double* const* rows, std::size_t count, double* out) const;
  // Reference per-row scalar walks — the equivalence baseline and the
  // bench's scalar lane.
  void PredictRowsScalar(const double* const* rows, std::size_t count, double* out) const;

  // Forest attribution: member trees walk tree-major (the same order as
  // PredictRows), so `margin` is bit-equal to PredictProbability for the
  // same row. Per-feature contributions and the bias are the tree means of
  // the per-tree values; `residual` closes the regrouped sum exactly.
  ForestExplanation Explain(std::span<const double> row) const;

  void PredictBatch(const Dataset& data, std::span<double> out, int threads = 1) const;
  void PredictBatch(std::span<const std::vector<double>> rows, std::span<double> out,
                    int threads = 1) const;

 private:
  // Member trees compiled with their feature projections baked in: every
  // tree reads the full row, so batch traversal needs no projection scratch.
  std::vector<CompiledTree> trees_;
  std::size_t num_features_ = 0;
};

}  // namespace sidet
