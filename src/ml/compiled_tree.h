// Flat-array ("compiled") inference for trained trees and forests.
//
// A trained DecisionTree predicts by chasing unique_ptr nodes — one
// dependent load per level, each landing in a separate heap allocation.
// CompiledTree re-lays the same tree out as a structure-of-arrays in
// breadth-first order: parallel feature[]/threshold[]/left[]/right[]/prob[]
// vectors in one contiguous block, so the walk is index arithmetic over hot
// cache lines and a whole batch of rows streams through without pointer
// indirection. Predictions are bit-identical to the source tree: the same
// thresholds are compared with the same <= / == semantics in the same order.
//
// CompiledForest additionally bakes in each member tree's feature-subset
// projection (RandomForest trains trees on feature subsamples) and averages
// leaf probabilities in tree order, matching RandomForest::PredictProbability
// exactly.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "ml/decision_tree.h"
#include "ml/random_forest.h"

namespace sidet {

class CompiledTree {
 public:
  CompiledTree() = default;

  // Flattens a trained tree. An untrained tree compiles to an empty
  // CompiledTree that predicts 0.5 (as DecisionTree would crash instead,
  // callers gate on trained()).
  static CompiledTree Compile(const DecisionTree& tree);

  bool empty() const { return feature_.empty(); }
  std::size_t node_count() const { return feature_.size(); }
  std::size_t num_features() const { return num_features_; }

  double PredictProbability(std::span<const double> row) const;
  int Predict(std::span<const double> row) const {
    return PredictProbability(row) >= 0.5 ? 1 : 0;
  }

  // Scores every row of `data` into out[i] (out.size() must equal
  // data.size()); rows are sharded across `threads` lanes.
  void PredictBatch(const Dataset& data, std::span<double> out, int threads = 1) const;
  // Same, over already-featurized rows.
  void PredictBatch(std::span<const std::vector<double>> rows, std::span<double> out,
                    int threads = 1) const;

 private:
  // Breadth-first node arrays. feature_[i] < 0 marks a leaf; left_/right_
  // hold node indices (always valid for split nodes).
  std::vector<std::int32_t> feature_;
  std::vector<std::uint8_t> categorical_;
  std::vector<double> threshold_;
  std::vector<std::int32_t> left_;
  std::vector<std::int32_t> right_;
  std::vector<double> prob_;  // P(label == 1); meaningful at every node
  std::size_t num_features_ = 0;
};

class CompiledForest {
 public:
  CompiledForest() = default;

  static CompiledForest Compile(const RandomForest& forest);

  bool empty() const { return trees_.empty(); }
  std::size_t size() const { return trees_.size(); }

  double PredictProbability(std::span<const double> row) const;
  int Predict(std::span<const double> row) const {
    return PredictProbability(row) >= 0.5 ? 1 : 0;
  }

  void PredictBatch(const Dataset& data, std::span<double> out, int threads = 1) const;
  void PredictBatch(std::span<const std::vector<double>> rows, std::span<double> out,
                    int threads = 1) const;

 private:
  double PredictWithScratch(std::span<const double> row, std::vector<double>& scratch) const;

  std::vector<CompiledTree> trees_;
  // Per tree: full-row feature indices to gather into the projected row the
  // member tree was trained on.
  std::vector<std::vector<std::size_t>> tree_features_;
  std::size_t max_projection_ = 0;
};

}  // namespace sidet
