#include "protocol/fault_schedule.h"

namespace sidet {

bool FaultSpec::DownAt(SimTime t) const {
  for (const FaultWindow& window : outages) {
    if (t >= window.begin && t < window.end) return true;
  }
  const std::int64_t period = flap_up_seconds + flap_down_seconds;
  if (period > 0 && t >= flap_start) {
    const std::int64_t phase = (t - flap_start) % period;
    if (phase >= flap_up_seconds) return true;
  }
  return false;
}

bool FaultSpec::StuckAt(SimTime t) const {
  return stuck_after.has_value() && t >= *stuck_after;
}

bool FaultSpec::CompromisedAt(SimTime t) const {
  return compromised_after.has_value() && t >= *compromised_after;
}

void FaultSchedule::SetDefault(FaultSpec spec) { default_spec_ = std::move(spec); }

void FaultSchedule::Set(std::string address, FaultSpec spec) {
  per_address_[std::move(address)] = std::move(spec);
}

const FaultSpec* FaultSchedule::Find(const std::string& address) const {
  const auto it = per_address_.find(address);
  if (it != per_address_.end()) return &it->second;
  if (default_spec_.has_value()) return &*default_spec_;
  return nullptr;
}

}  // namespace sidet
