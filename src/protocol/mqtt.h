// MQTT-style publish/subscribe substrate — the third vendor path.
//
// §VI lists "subsequent research on other manufacturers' machines" as future
// work; the dominant remaining ecosystem (Tuya-style devices, and Home
// Assistant's own MQTT integration) is push-based rather than polled. This
// module provides:
//   MqttBroker        — in-process broker: topic filters with MQTT's `+`
//                       (one level) and `#` (rest) wildcards, retained
//                       messages delivered on subscribe;
//   MqttSensorBridge  — publishes a home's sensor readings as retained JSON
//                       messages under <base>/<sensor>/state;
//   MqttCollector     — subscribes to <base>/# and maintains the latest
//                       snapshot, so the IDS sees push-updated context with
//                       zero per-judgement polling cost.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "home/smart_home.h"
#include "sensors/snapshot.h"
#include "util/result.h"

namespace sidet {

class MqttBroker {
 public:
  using MessageHandler =
      std::function<void(const std::string& topic, const std::string& payload)>;

  // `filter` may contain `+` and `#` wildcards per the MQTT spec subset:
  // `#` only as the final level, `+` as a whole level. Retained messages
  // matching the filter are delivered immediately. Returns a subscription id.
  int Subscribe(const std::string& filter, MessageHandler handler);
  void Unsubscribe(int id);

  // Delivers to every matching subscription; `retain` stores the payload as
  // the topic's retained message (empty retained payload clears it).
  void Publish(const std::string& topic, const std::string& payload, bool retain = false);

  static bool TopicMatches(const std::string& filter, const std::string& topic);

  std::size_t messages_published() const { return messages_published_; }
  std::size_t deliveries() const { return deliveries_; }
  std::size_t retained_count() const { return retained_.size(); }

 private:
  struct Subscription {
    int id;
    std::string filter;
    MessageHandler handler;
  };
  std::vector<Subscription> subscriptions_;
  std::map<std::string, std::string> retained_;
  int next_id_ = 1;
  std::size_t messages_published_ = 0;
  std::size_t deliveries_ = 0;
};

// Publishes sensors of `home` (optionally restricted to one vendor) as
// retained JSON under "<base_topic>/<sensor name>/state". Call PublishAll()
// after simulator steps — the push analogue of a device's state report.
class MqttSensorBridge {
 public:
  MqttSensorBridge(SmartHome& home, MqttBroker& broker, std::string base_topic,
                   std::optional<Vendor> vendor = std::nullopt);

  void PublishAll();
  std::size_t published() const { return published_; }

 private:
  SmartHome& home_;
  MqttBroker& broker_;
  std::string base_topic_;
  std::optional<Vendor> vendor_;
  Rng read_rng_{0x1217};
  std::size_t published_ = 0;
};

// Maintains the last-known reading per sensor from the broker's push stream.
class MqttCollector {
 public:
  MqttCollector(MqttBroker& broker, std::string base_topic);
  ~MqttCollector();

  MqttCollector(const MqttCollector&) = delete;
  MqttCollector& operator=(const MqttCollector&) = delete;

  // Latest accumulated snapshot (stamped `now`). Fails while nothing has
  // been received yet.
  Result<SensorSnapshot> Snapshot(SimTime now) const;
  std::size_t updates_received() const { return updates_received_; }
  std::size_t malformed_updates() const { return malformed_updates_; }

 private:
  void OnMessage(const std::string& topic, const std::string& payload);

  MqttBroker& broker_;
  std::string base_topic_;
  int subscription_id_ = 0;
  SensorSnapshot latest_;
  std::size_t updates_received_ = 0;
  std::size_t malformed_updates_ = 0;
};

}  // namespace sidet
