#include "protocol/miio_gateway.h"
#include <algorithm>

namespace sidet {

MiioGateway::MiioGateway(std::uint32_t device_id, SmartHome& home)
    : device_id_(device_id), home_(home), token_(TokenForDevice(device_id)) {}

void MiioGateway::BindTo(InMemoryTransport& transport, const std::string& address) {
  transport.Bind(address,
                 [this](std::span<const std::uint8_t> request) { return Handle(request); });
}

std::uint32_t MiioGateway::CurrentStamp() const {
  // Device uptime in seconds == simulated seconds since epoch here. Never
  // behind the anti-replay high-water mark, so a *new* client that pairs via
  // hello learns a stamp its own calls can safely increment from even when
  // earlier clients already pushed the mark past the wall clock.
  return std::max(static_cast<std::uint32_t>(home_.now().seconds()), last_stamp_seen_);
}

Result<Bytes> MiioGateway::Handle(std::span<const std::uint8_t> request) {
  if (IsMiioHello(request)) {
    // Developer mode (as the paper enabled on its gateway): the hello
    // response discloses the token so a local client can pair.
    return EncodeMiioHelloResponse(device_id_, CurrentStamp(), &token_);
  }

  Result<MiioMessage> message = DecodeMiioPacket(token_, request);
  if (!message.ok()) {
    ++checksum_failures_;
    return message.error().context("gateway rx");
  }
  if (message.value().stamp <= last_stamp_seen_) {
    ++replays_rejected_;
    return Error("stale stamp " + std::to_string(message.value().stamp) +
                 " (replay rejected)");
  }
  last_stamp_seen_ = message.value().stamp;

  Result<std::string> response_json = Dispatch(message.value().payload_json);
  if (!response_json.ok()) return response_json.error();

  MiioMessage response;
  response.device_id = device_id_;
  response.stamp = CurrentStamp();
  response.payload_json = std::move(response_json).value();
  return EncodeMiioPacket(token_, response);
}

void MiioGateway::EnableControl(const InstructionRegistry* registry, Guard guard) {
  control_registry_ = registry;
  guard_ = std::move(guard);
}

Result<std::string> MiioGateway::Dispatch(const std::string& payload_json) {
  Result<Json> parsed = Json::Parse(payload_json);
  if (!parsed.ok()) return parsed.error().context("gateway payload");
  const Json& request = parsed.value();
  const std::string method = request.string_or("method", "");
  const double id = request.number_or("id", 0);

  Json response = Json::Object();
  response["id"] = id;

  if (method == "miIO.info") {
    Json info = Json::Object();
    info["model"] = "sidet.gateway.v3";
    info["fw_ver"] = "1.4.1_164";
    info["device_id"] = static_cast<std::int64_t>(device_id_);
    response["result"] = std::move(info);
    return response.Dump();
  }

  if (method == "get_prop") {
    const Json* params = request.find("params");
    if (params == nullptr || !params->is_array()) {
      return Error("get_prop requires a params array");
    }
    Json values = Json::Array();
    for (const Json& name : params->as_array()) {
      if (!name.is_string()) return Error("get_prop params must be sensor names");
      Sensor* sensor = home_.FindSensor(name.as_string());
      if (sensor == nullptr || sensor->vendor() != Vendor::kXiaomi) {
        values.as_array().push_back(Json(nullptr));
        continue;
      }
      // The gateway reads the sensor afresh per query — same as the real
      // polled protocol.
      Json record = sensor->Read(read_rng_).ToJson();
      record["type"] = std::string(ToString(sensor->type()));
      record["name"] = sensor->name();
      values.as_array().push_back(std::move(record));
    }
    response["result"] = std::move(values);
    return response.Dump();
  }

  if (method == "get_all_props") {
    Json values = Json::Object();
    for (Sensor* sensor : home_.SensorsOfVendor(Vendor::kXiaomi)) {
      Json record = sensor->Read(read_rng_).ToJson();
      record["type"] = std::string(ToString(sensor->type()));
      values[sensor->name()] = std::move(record);
    }
    response["result"] = std::move(values);
    return response.Dump();
  }

  if (method == "execute" && control_registry_ != nullptr) {
    const Json* params = request.find("params");
    if (params == nullptr || !params->is_array() || params->as_array().empty() ||
        !params->as_array()[0].is_string()) {
      return Error("execute requires [instruction name, arg?]");
    }
    const std::string& name = params->as_array()[0].as_string();
    std::optional<double> argument;
    if (params->as_array().size() > 1 && params->as_array()[1].is_number()) {
      argument = params->as_array()[1].as_number();
    }

    const Instruction* instruction = control_registry_->FindByName(name);
    Json error = Json::Object();
    if (instruction == nullptr) {
      error["code"] = -2;
      error["message"] = "unknown instruction '" + name + "'";
      response["error"] = std::move(error);
      return response.Dump();
    }
    ++executions_;
    if (guard_) {
      // Judge against a fresh full snapshot — the collector step of Fig 3
      // performed gateway-side.
      const SensorSnapshot context = home_.Snapshot();
      if (!guard_(*instruction, context)) {
        ++blocked_executions_;
        home_.LogEvent("gateway blocked " + name);
        error["code"] = -77;
        error["message"] = "instruction '" + name + "' blocked: sensor context inconsistent";
        response["error"] = std::move(error);
        return response.Dump();
      }
    }
    const Status executed = home_.Execute(*instruction, argument);
    if (!executed.ok()) {
      error["code"] = -3;
      error["message"] = executed.error().message();
      response["error"] = std::move(error);
      return response.Dump();
    }
    response["result"] = "executed";
    return response.Dump();
  }

  Json error = Json::Object();
  error["code"] = -32601;
  error["message"] = "method '" + method + "' not found";
  response["error"] = std::move(error);
  return response.Dump();
}

MiioClient::MiioClient(Transport& transport, std::string address)
    : transport_(transport), address_(std::move(address)) {}

Status MiioClient::Handshake() {
  const Bytes hello = EncodeMiioHello();
  Result<Bytes> reply = transport_.Request(address_, hello);
  if (!reply.ok()) return reply.error().context("miio handshake");
  Result<MiioMessage> parsed =
      DecodeMiioHelloResponse(std::span<const std::uint8_t>(reply.value()));
  if (!parsed.ok()) return parsed.error().context("miio handshake");
  device_id_ = parsed.value().device_id;
  stamp_ = parsed.value().stamp;
  return Status::Ok();
}

Status MiioClient::HandshakeForToken() {
  const Bytes hello = EncodeMiioHello();
  Result<Bytes> reply = transport_.Request(address_, hello);
  if (!reply.ok()) return reply.error().context("miio token handshake");
  MiioToken token;
  Result<MiioMessage> parsed =
      DecodeMiioHelloResponse(std::span<const std::uint8_t>(reply.value()), &token);
  if (!parsed.ok()) return parsed.error().context("miio token handshake");
  device_id_ = parsed.value().device_id;
  stamp_ = parsed.value().stamp;
  SetToken(token);
  return Status::Ok();
}

Result<Json> MiioClient::Call(const std::string& method, Json params) {
  if (!has_token_) return Error("miio client has no token; handshake first");

  Json request = Json::Object();
  request["id"] = next_request_id_++;
  request["method"] = method;
  request["params"] = std::move(params);

  MiioMessage message;
  message.device_id = device_id_;
  message.stamp = ++stamp_;  // strictly increasing, required by the gateway
  message.payload_json = request.Dump();

  const Bytes packet = EncodeMiioPacket(token_, message);
  Result<Bytes> reply = transport_.Request(address_, packet);
  if (!reply.ok()) return reply.error().context("miio call " + method);

  Result<MiioMessage> decoded =
      DecodeMiioPacket(token_, std::span<const std::uint8_t>(reply.value()));
  if (!decoded.ok()) return decoded.error().context("miio call " + method);
  stamp_ = std::max(stamp_, decoded.value().stamp);

  Result<Json> response = Json::Parse(decoded.value().payload_json);
  if (!response.ok()) return response.error().context("miio call " + method);
  if (const Json* error = response.value().find("error")) {
    return Error("miio rpc error: " + error->string_or("message", "unknown"));
  }
  const Json* result = response.value().find("result");
  if (result == nullptr) return Error("miio response lacks result");
  return *result;
}

namespace {

Result<SensorSnapshot> SnapshotFromRecords(const Json& result) {
  SensorSnapshot snapshot;
  const auto add_record = [&snapshot](const std::string& name, const Json& record) -> Status {
    if (record.is_null()) return Status::Ok();  // unknown sensor: skipped
    const Json* type_field = record.find("type");
    if (type_field == nullptr || !type_field->is_string()) {
      return Error("record for '" + name + "' lacks type");
    }
    Result<SensorType> type = SensorTypeFromString(type_field->as_string());
    if (!type.ok()) return type.error();
    Result<SensorValue> value = SensorValue::FromJson(record);
    if (!value.ok()) return value.error();
    snapshot.Set(name, type.value(), std::move(value).value());
    return Status::Ok();
  };

  if (result.is_array()) {
    for (const Json& record : result.as_array()) {
      if (record.is_null()) continue;
      const std::string name = record.string_or("name", "");
      if (name.empty()) return Error("array record lacks name");
      const Status added = add_record(name, record);
      if (!added.ok()) return added.error();
    }
    return snapshot;
  }
  if (result.is_object()) {
    for (const auto& [name, record] : result.as_object()) {
      const Status added = add_record(name, record);
      if (!added.ok()) return added.error();
    }
    return snapshot;
  }
  return Error("unexpected get_prop result shape");
}

}  // namespace

Result<SensorSnapshot> MiioClient::Poll(const std::vector<std::string>& sensor_names) {
  Json params = Json::Array();
  for (const std::string& name : sensor_names) params.as_array().push_back(name);
  Result<Json> result = Call("get_prop", std::move(params));
  if (!result.ok()) return result.error();
  return SnapshotFromRecords(result.value());
}

Result<SensorSnapshot> MiioClient::PollAll() {
  Result<Json> result = Call("get_all_props", Json::Array());
  if (!result.ok()) return result.error();
  return SnapshotFromRecords(result.value());
}

}  // namespace sidet
