// Minimal HTTP/1.0-style message framing for the Home-Assistant-like REST
// bridge. Text format over the in-memory transport: request line / status
// line, headers, blank line, body. Enough of the real thing that the client
// code is shaped exactly like one talking to actual Home Assistant.
#pragma once

#include <map>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace sidet {

struct HttpRequest {
  std::string method = "GET";
  std::string path = "/";
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
};

struct HttpResponse {
  int status = 200;
  std::map<std::string, std::string> headers;
  std::string body;
};

Bytes EncodeHttpRequest(const HttpRequest& request);
Result<HttpRequest> DecodeHttpRequest(std::span<const std::uint8_t> raw);

Bytes EncodeHttpResponse(const HttpResponse& response);
Result<HttpResponse> DecodeHttpResponse(std::span<const std::uint8_t> raw);

const char* HttpStatusText(int status);

}  // namespace sidet
