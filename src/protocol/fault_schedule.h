// Scheduled, deterministic fault injection for the in-memory transport.
//
// The original FaultModel models only memoryless per-request loss/corruption.
// Real home Wi-Fi fails in structured ways: a gateway reboots (hard outage
// window), an access point flaps (periodic up/down), a congested link adds
// latency and duplicates datagrams, a wedged device keeps answering with its
// last reading ("stuck sensor"). FaultSpec describes those behaviours for one
// address; FaultSchedule maps addresses (plus a default) to specs. Scheduled
// faults are evaluated against simulated time (the transport's attached
// SimClock) and drawn from the transport's seeded Rng, so every chaos
// scenario replays bit-for-bit from a seed.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/sim_clock.h"

namespace sidet {

// Hard-down interval: the address is unreachable while begin <= t < end.
struct FaultWindow {
  SimTime begin;
  SimTime end;
};

struct FaultSpec {
  // Memoryless per-request faults (superset of the legacy FaultModel).
  double drop_probability = 0.0;     // request silently lost -> timeout error
  double corrupt_probability = 0.0;  // one random byte of the response flipped
  // Duplicate datagram: the handler sees the request twice (the second
  // delivery is how replay-protected servers like the miio gateway get
  // exercised); the first reply is what the client receives.
  double duplicate_probability = 0.0;
  // Injected round-trip latency; advances the attached clock on every
  // request, plus uniform jitter in [0, latency_jitter_seconds].
  std::int64_t latency_seconds = 0;
  std::int64_t latency_jitter_seconds = 0;
  // Scheduled hard outages.
  std::vector<FaultWindow> outages;
  // Flapping: from flap_start the address cycles up for flap_up_seconds then
  // down for flap_down_seconds. Disabled while both are zero.
  SimTime flap_start{};
  std::int64_t flap_up_seconds = 0;
  std::int64_t flap_down_seconds = 0;
  // Stuck sensor: from this time on the transport replays the last good
  // response bytes for the address instead of reaching the handler.
  std::optional<SimTime> stuck_after;
  // Compromised device: the adversarial sibling of `stuck`. From this time on
  // the transport serves the attacker's pinned response bytes — or, when
  // `compromised_response` is empty, replays the last good response the
  // attacker recorded — so the client sees a perfectly healthy feed whose
  // contents the attacker controls. Counted separately from stuck replays.
  std::optional<SimTime> compromised_after;
  Bytes compromised_response;

  // True while an outage window or the down half of a flap cycle covers `t`.
  bool DownAt(SimTime t) const;
  bool StuckAt(SimTime t) const;
  bool CompromisedAt(SimTime t) const;
};

class FaultSchedule {
 public:
  // Spec applied to addresses without their own entry.
  void SetDefault(FaultSpec spec);
  void Set(std::string address, FaultSpec spec);

  // Exact address match, else the default, else nullptr (fault-free).
  const FaultSpec* Find(const std::string& address) const;
  bool empty() const { return !default_spec_.has_value() && per_address_.empty(); }

 private:
  std::optional<FaultSpec> default_spec_;
  std::map<std::string, FaultSpec> per_address_;
};

}  // namespace sidet
