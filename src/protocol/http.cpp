#include "protocol/http.h"

#include "util/strings.h"

namespace sidet {

namespace {

void AppendHeaders(std::string& out, const std::map<std::string, std::string>& headers,
                   std::size_t body_size) {
  for (const auto& [name, value] : headers) {
    out += name + ": " + value + "\r\n";
  }
  if (headers.find("content-length") == headers.end()) {
    out += "content-length: " + std::to_string(body_size) + "\r\n";
  }
  out += "\r\n";
}

struct ParsedHead {
  std::string first_line;
  std::map<std::string, std::string> headers;
  std::string body;
};

Result<ParsedHead> ParseHead(std::span<const std::uint8_t> raw) {
  const std::string text = ToString(raw);
  const std::size_t head_end = text.find("\r\n\r\n");
  if (head_end == std::string::npos) return Error("no header terminator");

  ParsedHead parsed;
  parsed.body = text.substr(head_end + 4);

  const std::vector<std::string> lines = Split(text.substr(0, head_end), '\n');
  if (lines.empty()) return Error("empty HTTP head");
  parsed.first_line = std::string(Trim(lines[0]));

  for (std::size_t i = 1; i < lines.size(); ++i) {
    const std::string_view line = Trim(lines[i]);
    if (line.empty()) continue;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos) return Error("malformed header line '" + std::string(line) + "'");
    parsed.headers[ToLower(Trim(line.substr(0, colon)))] = std::string(Trim(line.substr(colon + 1)));
  }

  // Honour content-length when present (truncate any transport padding).
  const auto it = parsed.headers.find("content-length");
  if (it != parsed.headers.end()) {
    std::size_t length = 0;
    try {
      length = static_cast<std::size_t>(std::stoul(it->second));
    } catch (...) {
      return Error("malformed content-length '" + it->second + "'");
    }
    if (length > parsed.body.size()) return Error("body shorter than content-length");
    parsed.body.resize(length);
  }
  return parsed;
}

}  // namespace

Bytes EncodeHttpRequest(const HttpRequest& request) {
  std::string out = request.method + " " + request.path + " HTTP/1.0\r\n";
  AppendHeaders(out, request.headers, request.body.size());
  out += request.body;
  return ToBytes(out);
}

Result<HttpRequest> DecodeHttpRequest(std::span<const std::uint8_t> raw) {
  Result<ParsedHead> head = ParseHead(raw);
  if (!head.ok()) return head.error().context("http request");
  const std::vector<std::string> parts = SplitWhitespace(head.value().first_line);
  if (parts.size() != 3) return Error("malformed request line '" + head.value().first_line + "'");
  HttpRequest request;
  request.method = parts[0];
  request.path = parts[1];
  request.headers = std::move(head.value().headers);
  request.body = std::move(head.value().body);
  return request;
}

Bytes EncodeHttpResponse(const HttpResponse& response) {
  std::string out =
      "HTTP/1.0 " + std::to_string(response.status) + " " + HttpStatusText(response.status) +
      "\r\n";
  AppendHeaders(out, response.headers, response.body.size());
  out += response.body;
  return ToBytes(out);
}

Result<HttpResponse> DecodeHttpResponse(std::span<const std::uint8_t> raw) {
  Result<ParsedHead> head = ParseHead(raw);
  if (!head.ok()) return head.error().context("http response");
  const std::vector<std::string> parts = SplitWhitespace(head.value().first_line);
  if (parts.size() < 2 || !StartsWith(parts[0], "HTTP/")) {
    return Error("malformed status line '" + head.value().first_line + "'");
  }
  HttpResponse response;
  try {
    response.status = std::stoi(parts[1]);
  } catch (...) {
    return Error("malformed status code '" + parts[1] + "'");
  }
  response.headers = std::move(head.value().headers);
  response.body = std::move(head.value().body);
  return response;
}

const char* HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 500: return "Internal Server Error";
    default: return "Unknown";
  }
}

}  // namespace sidet
