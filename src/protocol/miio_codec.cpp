#include "protocol/miio_codec.h"

#include <cstring>

#include "crypto/aes.h"
#include "crypto/md5.h"

namespace sidet {

namespace {

// Checksum = MD5 over the header with the checksum slot replaced by the
// token, followed by the encrypted payload — exactly the real scheme.
Md5Digest ComputeChecksum(std::span<const std::uint8_t> header_first16, const MiioToken& token,
                          std::span<const std::uint8_t> encrypted_payload) {
  Md5 hasher;
  hasher.Update(header_first16);
  hasher.Update(std::span<const std::uint8_t>(token.data(), token.size()));
  hasher.Update(encrypted_payload);
  return hasher.Finish();
}

}  // namespace

Bytes EncodeMiioHello() {
  ByteWriter writer;
  writer.U16Be(kMiioMagic);
  writer.U16Be(kMiioHeaderSize);
  writer.Pad(kMiioHeaderSize - 4, 0xff);
  return writer.Take();
}

bool IsMiioHello(std::span<const std::uint8_t> packet) {
  if (packet.size() != kMiioHeaderSize) return false;
  ByteReader reader(packet);
  const Result<std::uint16_t> magic = reader.U16Be();
  const Result<std::uint16_t> length = reader.U16Be();
  if (!magic.ok() || !length.ok()) return false;
  if (magic.value() != kMiioMagic || length.value() != kMiioHeaderSize) return false;
  for (std::size_t i = 4; i < kMiioHeaderSize; ++i) {
    if (packet[i] != 0xff) return false;
  }
  return true;
}

Bytes EncodeMiioHelloResponse(std::uint32_t device_id, std::uint32_t stamp,
                              const MiioToken* token_to_disclose) {
  ByteWriter writer;
  writer.U16Be(kMiioMagic);
  writer.U16Be(kMiioHeaderSize);
  writer.U32Be(0);
  writer.U32Be(device_id);
  writer.U32Be(stamp);
  if (token_to_disclose != nullptr) {
    writer.Raw(std::span<const std::uint8_t>(token_to_disclose->data(),
                                             token_to_disclose->size()));
  } else {
    writer.Pad(16, 0);
  }
  return writer.Take();
}

Result<MiioMessage> DecodeMiioHelloResponse(std::span<const std::uint8_t> packet,
                                            MiioToken* disclosed_token) {
  if (packet.size() != kMiioHeaderSize) return Error("hello response must be 32 bytes");
  ByteReader reader(packet);
  const Result<std::uint16_t> magic = reader.U16Be();
  if (!magic.ok() || magic.value() != kMiioMagic) return Error("bad miio magic");
  const Result<std::uint16_t> length = reader.U16Be();
  if (!length.ok() || length.value() != kMiioHeaderSize) return Error("bad hello length");
  (void)reader.U32Be();  // reserved
  const Result<std::uint32_t> device_id = reader.U32Be();
  const Result<std::uint32_t> stamp = reader.U32Be();
  if (!device_id.ok() || !stamp.ok()) return Error("truncated hello response");
  if (disclosed_token != nullptr) {
    Result<Bytes> token_bytes = reader.Raw(16);
    if (!token_bytes.ok()) return token_bytes.error();
    std::memcpy(disclosed_token->data(), token_bytes.value().data(), 16);
  }
  MiioMessage message;
  message.device_id = device_id.value();
  message.stamp = stamp.value();
  return message;
}

Bytes EncodeMiioPacket(const MiioToken& token, const MiioMessage& message) {
  const MiioKeyMaterial keys = DeriveMiioKeys(token);
  const Bytes plaintext = ToBytes(message.payload_json);
  const Bytes encrypted = AesCbcEncrypt(keys.key, keys.iv, plaintext);

  ByteWriter header;
  header.U16Be(kMiioMagic);
  header.U16Be(static_cast<std::uint16_t>(kMiioHeaderSize + encrypted.size()));
  header.U32Be(0);
  header.U32Be(message.device_id);
  header.U32Be(message.stamp);

  const Md5Digest checksum = ComputeChecksum(
      std::span<const std::uint8_t>(header.data().data(), 16), token,
      std::span<const std::uint8_t>(encrypted.data(), encrypted.size()));

  ByteWriter packet;
  packet.Raw(std::span<const std::uint8_t>(header.data().data(), 16));
  packet.Raw(std::span<const std::uint8_t>(checksum.data(), checksum.size()));
  packet.Raw(std::span<const std::uint8_t>(encrypted.data(), encrypted.size()));
  return packet.Take();
}

Result<MiioMessage> DecodeMiioPacket(const MiioToken& token,
                                     std::span<const std::uint8_t> packet) {
  if (packet.size() < kMiioHeaderSize) return Error("packet shorter than miio header");
  ByteReader reader(packet);
  const Result<std::uint16_t> magic = reader.U16Be();
  if (!magic.ok() || magic.value() != kMiioMagic) return Error("bad miio magic");
  const Result<std::uint16_t> length = reader.U16Be();
  if (!length.ok()) return length.error();
  if (length.value() != packet.size()) {
    return Error("miio length field " + std::to_string(length.value()) +
                 " does not match packet size " + std::to_string(packet.size()));
  }
  (void)reader.U32Be();  // reserved
  const Result<std::uint32_t> device_id = reader.U32Be();
  const Result<std::uint32_t> stamp = reader.U32Be();
  Result<Bytes> claimed_checksum = reader.Raw(16);
  if (!device_id.ok() || !stamp.ok() || !claimed_checksum.ok()) {
    return Error("truncated miio header");
  }

  const std::span<const std::uint8_t> encrypted = packet.subspan(kMiioHeaderSize);
  const Md5Digest expected =
      ComputeChecksum(packet.subspan(0, 16), token, encrypted);
  if (!ConstantTimeEquals(std::span<const std::uint8_t>(expected.data(), expected.size()),
                          std::span<const std::uint8_t>(claimed_checksum.value().data(),
                                                        claimed_checksum.value().size()))) {
    return Error("miio checksum mismatch (wrong token or tampered packet)");
  }

  MiioMessage message;
  message.device_id = device_id.value();
  message.stamp = stamp.value();
  if (!encrypted.empty()) {
    const MiioKeyMaterial keys = DeriveMiioKeys(token);
    Result<Bytes> plaintext = AesCbcDecrypt(keys.key, keys.iv, encrypted);
    if (!plaintext.ok()) return plaintext.error().context("miio payload");
    message.payload_json = ToString(plaintext.value());
  }
  return message;
}

}  // namespace sidet
