#include "protocol/rest_bridge.h"

#include "util/strings.h"

namespace sidet {

std::string EntityIdFor(const Sensor& sensor) {
  const bool binary = TraitsOf(sensor.type()).kind == ValueKind::kBinary;
  return (binary ? std::string("binary_sensor.") : std::string("sensor.")) + sensor.name();
}

RestBridge::RestBridge(SmartHome& home, std::string token)
    : home_(home), token_(std::move(token)) {}

void RestBridge::BindTo(InMemoryTransport& transport, const std::string& address) {
  transport.Bind(address,
                 [this](std::span<const std::uint8_t> request) { return Handle(request); });
}

Result<Bytes> RestBridge::Handle(std::span<const std::uint8_t> raw) {
  Result<HttpRequest> request = DecodeHttpRequest(raw);
  if (!request.ok()) {
    HttpResponse bad;
    bad.status = 400;
    bad.body = "{\"message\": \"malformed request\"}";
    return EncodeHttpResponse(bad);
  }
  return EncodeHttpResponse(Route(request.value()));
}

Json RestBridge::EntityJson(Sensor& sensor) {
  // Shape follows HA's /api/states payload: entity_id, state, attributes.
  const SensorValue reading = sensor.Read(read_rng_);
  Json entity = Json::Object();
  entity["entity_id"] = EntityIdFor(sensor);
  switch (reading.kind) {
    case ValueKind::kBinary:
      entity["state"] = reading.as_bool() ? "on" : "off";
      break;
    case ValueKind::kContinuous:
      entity["state"] = Format("%.3f", reading.number);
      break;
    case ValueKind::kCategorical:
      entity["state"] = reading.label;
      break;
  }
  Json attributes = Json::Object();
  attributes["friendly_name"] = Humanize(sensor.name());
  attributes["device_class"] = std::string(ToString(sensor.type()));
  attributes["room"] = sensor.room();
  attributes["unit_of_measurement"] = std::string(TraitsOf(sensor.type()).unit);
  attributes["reading"] = reading.ToJson();  // lossless normalized form
  entity["attributes"] = std::move(attributes);
  entity["last_updated_seconds"] = sensor.last_update().seconds();
  return entity;
}

HttpResponse RestBridge::Route(const HttpRequest& request) {
  HttpResponse response;
  response.headers["content-type"] = "application/json";

  const auto auth = request.headers.find("authorization");
  if (auth == request.headers.end() || auth->second != "Bearer " + token_) {
    ++unauthorized_requests_;
    response.status = 401;
    response.body = "{\"message\": \"401: Unauthorized\"}";
    return response;
  }

  if (request.method != "GET") {
    response.status = 405;
    response.body = "{\"message\": \"method not allowed\"}";
    return response;
  }

  if (request.path == "/api/" || request.path == "/api") {
    response.body = "{\"message\": \"API running.\"}";
    return response;
  }

  if (request.path == "/api/states") {
    Json states = Json::Array();
    for (Sensor* sensor : home_.SensorsOfVendor(Vendor::kSmartThings)) {
      states.as_array().push_back(EntityJson(*sensor));
    }
    response.body = states.Dump();
    return response;
  }

  constexpr std::string_view kStatesPrefix = "/api/states/";
  if (StartsWith(request.path, kStatesPrefix)) {
    const std::string entity_id = request.path.substr(kStatesPrefix.size());
    for (Sensor* sensor : home_.SensorsOfVendor(Vendor::kSmartThings)) {
      if (EntityIdFor(*sensor) == entity_id) {
        response.body = EntityJson(*sensor).Dump();
        return response;
      }
    }
    response.status = 404;
    response.body = "{\"message\": \"entity not found\"}";
    return response;
  }

  response.status = 404;
  response.body = "{\"message\": \"path not found\"}";
  return response;
}

RestClient::RestClient(Transport& transport, std::string address, std::string token)
    : transport_(transport), address_(std::move(address)), token_(std::move(token)) {}

Result<Json> RestClient::Get(const std::string& path) {
  HttpRequest request;
  request.method = "GET";
  request.path = path;
  request.headers["authorization"] = "Bearer " + token_;

  const Bytes raw = EncodeHttpRequest(request);
  Result<Bytes> reply = transport_.Request(address_, raw);
  if (!reply.ok()) return reply.error().context("GET " + path);

  Result<HttpResponse> response =
      DecodeHttpResponse(std::span<const std::uint8_t>(reply.value()));
  if (!response.ok()) return response.error().context("GET " + path);
  if (response.value().status != 200) {
    return Error("GET " + path + " -> HTTP " + std::to_string(response.value().status) + ": " +
                 response.value().body);
  }
  return Json::Parse(response.value().body);
}

Status RestClient::Ping() {
  Result<Json> reply = Get("/api/");
  if (!reply.ok()) return reply.error();
  return Status::Ok();
}

namespace {

Status AddEntityToSnapshot(const Json& entity, SensorSnapshot& snapshot) {
  const std::string entity_id = entity.string_or("entity_id", "");
  const Json* attributes = entity.find("attributes");
  if (entity_id.empty() || attributes == nullptr) {
    return Error("entity missing id or attributes");
  }
  const Json* reading = attributes->find("reading");
  if (reading == nullptr) return Error("entity '" + entity_id + "' missing reading attribute");
  Result<SensorValue> value = SensorValue::FromJson(*reading);
  if (!value.ok()) return value.error().context(entity_id);
  Result<SensorType> type =
      SensorTypeFromString(attributes->string_or("device_class", ""));
  if (!type.ok()) return type.error().context(entity_id);
  // Strip the HA domain prefix to recover the sensor name.
  const std::size_t dot = entity_id.find('.');
  const std::string name = dot == std::string::npos ? entity_id : entity_id.substr(dot + 1);
  snapshot.Set(name, type.value(), std::move(value).value());
  return Status::Ok();
}

}  // namespace

Result<SensorSnapshot> RestClient::PollAll() {
  Result<Json> states = Get("/api/states");
  if (!states.ok()) return states.error();
  if (!states.value().is_array()) return Error("/api/states did not return an array");
  SensorSnapshot snapshot;
  for (const Json& entity : states.value().as_array()) {
    const Status added = AddEntityToSnapshot(entity, snapshot);
    if (!added.ok()) return added.error();
  }
  return snapshot;
}

Result<SensorSnapshot> RestClient::PollEntity(const std::string& entity_id) {
  Result<Json> entity = Get("/api/states/" + entity_id);
  if (!entity.ok()) return entity.error();
  SensorSnapshot snapshot;
  const Status added = AddEntityToSnapshot(entity.value(), snapshot);
  if (!added.ok()) return added.error();
  return snapshot;
}

}  // namespace sidet
