// In-memory request/response transport.
//
// Stands in for the UDP (miio) and TCP (REST) sockets of the real deployment:
// servers register a handler under an address, clients Request() against it.
// Synchronous round-trips keep the collector code identical in shape to a
// socket implementation while staying deterministic. Fault injection (drop /
// corrupt) models the lossy home Wi-Fi the paper's collector had to survive.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace sidet {

class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<Bytes> Request(const std::string& address,
                                std::span<const std::uint8_t> payload) = 0;
};

using RequestHandler = std::function<Result<Bytes>(std::span<const std::uint8_t>)>;

struct FaultModel {
  double drop_probability = 0.0;     // request silently lost -> timeout error
  double corrupt_probability = 0.0;  // one random byte of the response flipped
};

class InMemoryTransport : public Transport {
 public:
  explicit InMemoryTransport(std::uint64_t seed = 1, FaultModel faults = {});

  // Replaces any existing binding at `address`.
  void Bind(const std::string& address, RequestHandler handler);
  void Unbind(const std::string& address);

  Result<Bytes> Request(const std::string& address,
                        std::span<const std::uint8_t> payload) override;

  std::size_t requests_sent() const { return requests_sent_; }
  std::size_t requests_dropped() const { return requests_dropped_; }

 private:
  std::map<std::string, RequestHandler> handlers_;
  Rng rng_;
  FaultModel faults_;
  std::size_t requests_sent_ = 0;
  std::size_t requests_dropped_ = 0;
};

}  // namespace sidet
