// In-memory request/response transport.
//
// Stands in for the UDP (miio) and TCP (REST) sockets of the real deployment:
// servers register a handler under an address, clients Request() against it.
// Synchronous round-trips keep the collector code identical in shape to a
// socket implementation while staying deterministic. Fault injection models
// the lossy home Wi-Fi the paper's collector had to survive: the legacy
// FaultModel gives memoryless drop/corrupt, and a FaultSchedule adds
// scheduled faults (latency, duplicates, outage windows, flapping, stuck
// replies, attacker-compromised replies) evaluated against an attached
// SimClock.
#pragma once

#include <functional>
#include <map>
#include <string>

#include "protocol/fault_schedule.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"
#include "util/sim_clock.h"

namespace sidet {

class Transport {
 public:
  virtual ~Transport() = default;
  virtual Result<Bytes> Request(const std::string& address,
                                std::span<const std::uint8_t> payload) = 0;
};

using RequestHandler = std::function<Result<Bytes>(std::span<const std::uint8_t>)>;

// Legacy memoryless fault model, kept for existing call sites; internally it
// becomes the schedule's default FaultSpec.
struct FaultModel {
  double drop_probability = 0.0;     // request silently lost -> timeout error
  double corrupt_probability = 0.0;  // one random byte of the response flipped
};

class InMemoryTransport : public Transport {
 public:
  explicit InMemoryTransport(std::uint64_t seed = 1, FaultModel faults = {});

  // Replaces any existing binding at `address`.
  void Bind(const std::string& address, RequestHandler handler);
  void Unbind(const std::string& address);

  // Replaces the active fault schedule (and any legacy FaultModel defaults).
  void SetFaultSchedule(FaultSchedule schedule);
  // Scheduled faults (outages, flapping, stuck, latency) are evaluated at
  // this clock's time; injected latency advances it. Not owned. Without a
  // clock, time-windowed faults are evaluated at the epoch and latency only
  // accumulates in injected_latency_seconds().
  void AttachClock(SimClock* clock) { clock_ = clock; }
  SimTime now() const { return clock_ != nullptr ? clock_->now() : SimTime(); }

  Result<Bytes> Request(const std::string& address,
                        std::span<const std::uint8_t> payload) override;

  std::size_t requests_sent() const { return requests_sent_; }
  std::size_t requests_dropped() const { return requests_dropped_; }
  std::size_t outage_rejections() const { return outage_rejections_; }
  std::size_t duplicates_delivered() const { return duplicates_delivered_; }
  std::size_t stuck_replays() const { return stuck_replays_; }
  std::size_t compromised_replays() const { return compromised_replays_; }
  std::int64_t injected_latency_seconds() const { return injected_latency_seconds_; }

 private:
  std::map<std::string, RequestHandler> handlers_;
  Rng rng_;
  FaultSchedule schedule_;
  SimClock* clock_ = nullptr;  // not owned
  // Last good (pre-corruption) response per address, replayed by stuck mode.
  std::map<std::string, Bytes> last_good_response_;
  std::size_t requests_sent_ = 0;
  std::size_t requests_dropped_ = 0;
  std::size_t outage_rejections_ = 0;
  std::size_t duplicates_delivered_ = 0;
  std::size_t stuck_replays_ = 0;
  std::size_t compromised_replays_ = 0;
  std::int64_t injected_latency_seconds_ = 0;
};

}  // namespace sidet
