// miio-style packet codec — our reconstruction of the Xiaomi gateway wire
// format the paper decrypted (§IV.B.1: "fixed port number, data packet
// header … MD5 and AES_CBC encryption algorithms").
//
// Packet layout (network byte order), mirroring the real miio protocol:
//   0x00  magic          u16 = 0x2131
//   0x02  length         u16 = total packet length
//   0x04  reserved       u32 = 0
//   0x08  device_id      u32
//   0x0c  stamp          u32   (device uptime seconds; replay defence)
//   0x10  checksum       16 B  MD5( header[0..16) || token || payload )
//   0x20  payload        AES-128-CBC(key, iv, plaintext JSON), may be empty
//
// A *hello* packet is a bare 32-byte header with every field after `length`
// set to 0xff; the gateway answers with its device_id and stamp so a client
// can synchronize before sending authenticated requests.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/miio_kdf.h"
#include "util/bytes.h"
#include "util/result.h"

namespace sidet {

inline constexpr std::uint16_t kMiioMagic = 0x2131;
inline constexpr std::size_t kMiioHeaderSize = 32;

struct MiioMessage {
  std::uint32_t device_id = 0;
  std::uint32_t stamp = 0;
  std::string payload_json;  // decrypted plaintext (empty for hello/ack)
};

// Builds the 32-byte hello probe.
Bytes EncodeMiioHello();
bool IsMiioHello(std::span<const std::uint8_t> packet);

// Builds a hello *response*: header-only packet carrying device_id + stamp
// (checksum slot holds the token in provisioning mode, zeros otherwise).
Bytes EncodeMiioHelloResponse(std::uint32_t device_id, std::uint32_t stamp,
                              const MiioToken* token_to_disclose = nullptr);
Result<MiioMessage> DecodeMiioHelloResponse(std::span<const std::uint8_t> packet,
                                            MiioToken* disclosed_token = nullptr);

// Encrypts `payload_json` and assembles a full authenticated packet.
Bytes EncodeMiioPacket(const MiioToken& token, const MiioMessage& message);

// Verifies magic, length and checksum, then decrypts. Fails loudly on any
// mismatch — a corrupted or forged packet never yields plaintext.
Result<MiioMessage> DecodeMiioPacket(const MiioToken& token,
                                     std::span<const std::uint8_t> packet);

}  // namespace sidet
