#include "protocol/transport.h"

namespace sidet {

InMemoryTransport::InMemoryTransport(std::uint64_t seed, FaultModel faults)
    : rng_(seed), faults_(faults) {}

void InMemoryTransport::Bind(const std::string& address, RequestHandler handler) {
  handlers_[address] = std::move(handler);
}

void InMemoryTransport::Unbind(const std::string& address) { handlers_.erase(address); }

Result<Bytes> InMemoryTransport::Request(const std::string& address,
                                         std::span<const std::uint8_t> payload) {
  ++requests_sent_;
  const auto it = handlers_.find(address);
  if (it == handlers_.end()) {
    return Error("no host at address '" + address + "'");
  }
  if (faults_.drop_probability > 0.0 && rng_.Bernoulli(faults_.drop_probability)) {
    ++requests_dropped_;
    return Error("request to '" + address + "' timed out");
  }
  Result<Bytes> response = it->second(payload);
  if (response.ok() && !response.value().empty() && faults_.corrupt_probability > 0.0 &&
      rng_.Bernoulli(faults_.corrupt_probability)) {
    Bytes corrupted = std::move(response).value();
    const auto index = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(corrupted.size()) - 1));
    corrupted[index] ^= static_cast<std::uint8_t>(1 + rng_.UniformInt(0, 254));
    return corrupted;
  }
  return response;
}

}  // namespace sidet
