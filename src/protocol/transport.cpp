#include "protocol/transport.h"

namespace sidet {

InMemoryTransport::InMemoryTransport(std::uint64_t seed, FaultModel faults) : rng_(seed) {
  if (faults.drop_probability > 0.0 || faults.corrupt_probability > 0.0) {
    FaultSpec spec;
    spec.drop_probability = faults.drop_probability;
    spec.corrupt_probability = faults.corrupt_probability;
    schedule_.SetDefault(std::move(spec));
  }
}

void InMemoryTransport::Bind(const std::string& address, RequestHandler handler) {
  handlers_[address] = std::move(handler);
}

void InMemoryTransport::Unbind(const std::string& address) { handlers_.erase(address); }

void InMemoryTransport::SetFaultSchedule(FaultSchedule schedule) {
  schedule_ = std::move(schedule);
}

Result<Bytes> InMemoryTransport::Request(const std::string& address,
                                         std::span<const std::uint8_t> payload) {
  ++requests_sent_;
  const auto it = handlers_.find(address);
  if (it == handlers_.end()) {
    return Error("no host at address '" + address + "'");
  }

  const FaultSpec* spec = schedule_.Find(address);
  if (spec != nullptr) {
    // Latency burns clock time whether or not the request ultimately
    // succeeds — a timed-out request costs at least a full round trip.
    std::int64_t latency = spec->latency_seconds;
    if (spec->latency_jitter_seconds > 0) {
      latency += rng_.UniformInt(0, spec->latency_jitter_seconds);
    }
    if (latency > 0) {
      injected_latency_seconds_ += latency;
      if (clock_ != nullptr) clock_->AdvanceSeconds(latency);
    }

    if (spec->DownAt(now())) {
      ++outage_rejections_;
      return Error("host at '" + address + "' unreachable (outage)");
    }
    if (spec->drop_probability > 0.0 && rng_.Bernoulli(spec->drop_probability)) {
      ++requests_dropped_;
      return Error("request to '" + address + "' timed out");
    }
    if (spec->CompromisedAt(now())) {
      // Compromised device: the attacker answers instead of the handler, with
      // either pinned crafted bytes or a replay of the last good response.
      // Unlike an outage the client sees a healthy round-trip, so no breaker
      // opens and no staleness is flagged downstream.
      if (!spec->compromised_response.empty()) {
        ++compromised_replays_;
        return spec->compromised_response;
      }
      const auto cached = last_good_response_.find(address);
      if (cached != last_good_response_.end()) {
        ++compromised_replays_;
        return cached->second;
      }
      // Nothing recorded yet: fall through so the attacker captures a reply.
    }
    if (spec->StuckAt(now())) {
      const auto cached = last_good_response_.find(address);
      if (cached != last_good_response_.end()) {
        ++stuck_replays_;
        return cached->second;
      }
      // Nothing captured yet: fall through so the first reply gets stuck.
    }
  }

  Result<Bytes> response = it->second(payload);
  if (spec != nullptr && spec->duplicate_probability > 0.0 &&
      rng_.Bernoulli(spec->duplicate_probability)) {
    // Duplicate datagram: the handler sees the request a second time (replay
    // protection on the server side absorbs it); the client keeps the first
    // reply.
    ++duplicates_delivered_;
    (void)it->second(payload);
  }
  if (response.ok()) {
    last_good_response_[address] = response.value();
  }
  if (spec != nullptr && response.ok() && !response.value().empty() &&
      spec->corrupt_probability > 0.0 && rng_.Bernoulli(spec->corrupt_probability)) {
    Bytes corrupted = std::move(response).value();
    const auto index = static_cast<std::size_t>(
        rng_.UniformInt(0, static_cast<std::int64_t>(corrupted.size()) - 1));
    corrupted[index] ^= static_cast<std::uint8_t>(1 + rng_.UniformInt(0, 254));
    return corrupted;
  }
  return response;
}

}  // namespace sidet
