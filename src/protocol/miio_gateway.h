// MiioGateway: the simulated Xiaomi smart gateway, and MiioClient: the
// collector-side client that speaks the encrypted protocol to it.
//
// The gateway serves the home's Xiaomi-vendor sensors over a JSON-RPC-ish
// method set modeled on the real device:
//   miIO.info                          -> {model, fw_ver, token_set}
//   get_prop {params: [sensor names]}  -> {result: [sensor value objects]}
//   get_all_props                      -> {result: {name: value object}}
//   execute {params: [name, arg?]}     -> {result: "executed"} (when control
//                                         is enabled; the IDS guard vetoes
//                                         in-context — the paper's framework
//                                         deployed at the gateway)
// Stamps must be strictly increasing — the gateway rejects replays, which the
// attack library exercises.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include <functional>

#include "crypto/miio_kdf.h"
#include "home/smart_home.h"
#include "instructions/instruction.h"
#include "protocol/miio_codec.h"
#include "protocol/transport.h"
#include "sensors/snapshot.h"

namespace sidet {

class MiioGateway {
 public:
  // Serves the Xiaomi-vendor sensors of `home`. The token is derived from
  // the device id exactly like a factory-provisioned token would be.
  MiioGateway(std::uint32_t device_id, SmartHome& home);

  std::uint32_t device_id() const { return device_id_; }
  const MiioToken& token() const { return token_; }

  // Registers this gateway on the transport at `address`.
  void BindTo(InMemoryTransport& transport, const std::string& address);

  // Raw request entry point (what Bind installs).
  Result<Bytes> Handle(std::span<const std::uint8_t> request);

  // Enables the `execute` RPC: instructions resolve against `registry` and,
  // when a guard is installed, every control instruction is judged against a
  // fresh sensor snapshot before the home executes it (Fig 3 deployed at the
  // gateway). Pass a null guard to execute unconditionally.
  using Guard = std::function<bool(const Instruction&, const SensorSnapshot&)>;
  void EnableControl(const InstructionRegistry* registry, Guard guard);

  std::size_t replays_rejected() const { return replays_rejected_; }
  std::size_t checksum_failures() const { return checksum_failures_; }
  std::size_t executions() const { return executions_; }
  std::size_t blocked_executions() const { return blocked_executions_; }

 private:
  Result<std::string> Dispatch(const std::string& payload_json);
  std::uint32_t CurrentStamp() const;

  std::uint32_t device_id_;
  SmartHome& home_;
  MiioToken token_;
  Rng read_rng_{0xd00d};  // measurement noise for per-query sensor reads
  const InstructionRegistry* control_registry_ = nullptr;
  Guard guard_;
  std::uint32_t last_stamp_seen_ = 0;
  std::size_t replays_rejected_ = 0;
  std::size_t checksum_failures_ = 0;
  std::size_t executions_ = 0;
  std::size_t blocked_executions_ = 0;
};

class MiioClient {
 public:
  MiioClient(Transport& transport, std::string address);

  // Hello handshake: learns device id and current stamp.
  Status Handshake();
  // Provisioning-mode handshake that also learns the token (models the
  // developer mode the paper used on the Xiaomi gateway).
  Status HandshakeForToken();

  void SetToken(const MiioToken& token) { token_ = token; has_token_ = true; }
  bool has_token() const { return has_token_; }
  std::uint32_t device_id() const { return device_id_; }

  // JSON-RPC call; returns the "result" field of the response.
  Result<Json> Call(const std::string& method, Json params);

  // Reads the named sensors into a snapshot.
  Result<SensorSnapshot> Poll(const std::vector<std::string>& sensor_names);
  // Reads every sensor the gateway serves.
  Result<SensorSnapshot> PollAll();

 private:
  Transport& transport_;
  std::string address_;
  MiioToken token_{};
  bool has_token_ = false;
  std::uint32_t device_id_ = 0;
  std::uint32_t stamp_ = 0;
  int next_request_id_ = 1;
};

}  // namespace sidet
