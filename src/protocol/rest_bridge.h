// RestBridge: the Home-Assistant-style REST server bridging SmartThings
// sensors, and RestClient: its collector-side client.
//
// The paper deployed SmartThings devices behind a lab Home Assistant server
// and queried state through its token-authenticated REST API (§IV.B.2). The
// bridge reproduces that surface:
//   GET /api/                          -> {message: "API running."}
//   GET /api/states                    -> [entity...]
//   GET /api/states/<entity_id>        -> entity
// with `Authorization: Bearer <long-lived token>` required on every route.
// Entity ids follow HA convention: "sensor.<name>" / "binary_sensor.<name>".
#pragma once

#include <string>
#include <vector>

#include "home/smart_home.h"
#include "protocol/http.h"
#include "protocol/transport.h"
#include "sensors/snapshot.h"
#include "util/rng.h"

namespace sidet {

// Entity id for a sensor, HA-style.
std::string EntityIdFor(const Sensor& sensor);

class RestBridge {
 public:
  // Serves the SmartThings-vendor sensors of `home`. `token` is the
  // long-lived access token created "in the background management in
  // advance" (§IV.B.2).
  RestBridge(SmartHome& home, std::string token);

  const std::string& token() const { return token_; }
  void BindTo(InMemoryTransport& transport, const std::string& address);
  Result<Bytes> Handle(std::span<const std::uint8_t> request);

  std::size_t unauthorized_requests() const { return unauthorized_requests_; }

 private:
  HttpResponse Route(const HttpRequest& request);
  Json EntityJson(Sensor& sensor);

  SmartHome& home_;
  std::string token_;
  Rng read_rng_{0xba5e};
  std::size_t unauthorized_requests_ = 0;
};

class RestClient {
 public:
  RestClient(Transport& transport, std::string address, std::string token);

  Result<Json> Get(const std::string& path);

  // Health probe (GET /api/).
  Status Ping();
  // Reads every served sensor into a snapshot.
  Result<SensorSnapshot> PollAll();
  // Reads one entity.
  Result<SensorSnapshot> PollEntity(const std::string& entity_id);

 private:
  Transport& transport_;
  std::string address_;
  std::string token_;
};

}  // namespace sidet
