#include "protocol/mqtt.h"

#include <algorithm>

#include "util/strings.h"

namespace sidet {

bool MqttBroker::TopicMatches(const std::string& filter, const std::string& topic) {
  const std::vector<std::string> filter_levels = Split(filter, '/');
  const std::vector<std::string> topic_levels = Split(topic, '/');

  std::size_t i = 0;
  for (; i < filter_levels.size(); ++i) {
    const std::string& level = filter_levels[i];
    if (level == "#") {
      // '#' must be the last filter level; matches the rest (including none).
      return i + 1 == filter_levels.size();
    }
    if (i >= topic_levels.size()) return false;
    if (level == "+") continue;
    if (level != topic_levels[i]) return false;
  }
  return i == topic_levels.size();
}

int MqttBroker::Subscribe(const std::string& filter, MessageHandler handler) {
  const int id = next_id_++;
  // Deliver matching retained messages first, as a real broker does.
  for (const auto& [topic, payload] : retained_) {
    if (TopicMatches(filter, topic)) {
      ++deliveries_;
      handler(topic, payload);
    }
  }
  subscriptions_.push_back(Subscription{id, filter, std::move(handler)});
  return id;
}

void MqttBroker::Unsubscribe(int id) {
  subscriptions_.erase(
      std::remove_if(subscriptions_.begin(), subscriptions_.end(),
                     [id](const Subscription& s) { return s.id == id; }),
      subscriptions_.end());
}

void MqttBroker::Publish(const std::string& topic, const std::string& payload, bool retain) {
  ++messages_published_;
  if (retain) {
    if (payload.empty()) retained_.erase(topic);
    else retained_[topic] = payload;
  }
  for (const Subscription& subscription : subscriptions_) {
    if (TopicMatches(subscription.filter, topic)) {
      ++deliveries_;
      subscription.handler(topic, payload);
    }
  }
}

MqttSensorBridge::MqttSensorBridge(SmartHome& home, MqttBroker& broker, std::string base_topic,
                                   std::optional<Vendor> vendor)
    : home_(home), broker_(broker), base_topic_(std::move(base_topic)), vendor_(vendor) {}

void MqttSensorBridge::PublishAll() {
  for (Sensor* sensor : home_.AllSensors()) {
    if (vendor_.has_value() && sensor->vendor() != *vendor_) continue;
    Json record = sensor->Read(read_rng_).ToJson();
    record["type"] = std::string(ToString(sensor->type()));
    record["time_seconds"] = home_.now().seconds();
    broker_.Publish(base_topic_ + "/" + sensor->name() + "/state", record.Dump(),
                    /*retain=*/true);
    ++published_;
  }
}

MqttCollector::MqttCollector(MqttBroker& broker, std::string base_topic)
    : broker_(broker), base_topic_(std::move(base_topic)) {
  subscription_id_ = broker_.Subscribe(
      base_topic_ + "/#",
      [this](const std::string& topic, const std::string& payload) { OnMessage(topic, payload); });
}

MqttCollector::~MqttCollector() { broker_.Unsubscribe(subscription_id_); }

void MqttCollector::OnMessage(const std::string& topic, const std::string& payload) {
  // topic = <base>/<sensor name>/state
  if (!StartsWith(topic, base_topic_ + "/") || !EndsWith(topic, "/state")) {
    ++malformed_updates_;
    return;
  }
  const std::size_t name_begin = base_topic_.size() + 1;
  const std::size_t name_end = topic.size() - std::string_view("/state").size();
  if (name_end <= name_begin) {
    ++malformed_updates_;
    return;
  }
  const std::string name = topic.substr(name_begin, name_end - name_begin);

  Result<Json> record = Json::Parse(payload);
  if (!record.ok()) {
    ++malformed_updates_;
    return;
  }
  Result<SensorType> type = SensorTypeFromString(record.value().string_or("type", ""));
  Result<SensorValue> value = SensorValue::FromJson(record.value());
  if (!type.ok() || !value.ok()) {
    ++malformed_updates_;
    return;
  }
  latest_.Set(name, type.value(), std::move(value).value());
  ++updates_received_;
}

Result<SensorSnapshot> MqttCollector::Snapshot(SimTime now) const {
  if (latest_.empty()) return Error("mqtt collector has received no sensor state yet");
  SensorSnapshot snapshot = latest_;
  snapshot.set_time(now);
  return snapshot;
}

}  // namespace sidet
