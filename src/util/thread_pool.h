// Fixed-size worker pool for the training and batch-inference hot paths.
//
// Determinism contract: the pool never owns randomness. Callers that need
// random draws inside parallel work derive one independent stream per work
// unit up front (Rng::Fork(stream_index)) and write results into
// pre-allocated per-index slots, so results are bit-identical to a
// sequential run at any thread count — the scheduler only decides *when*
// a unit runs, never *what* it computes.
//
// Inline fallback: a pool of size 1 — requested explicitly, or resolved
// from std::thread::hardware_concurrency() returning 0 or 1 — spawns no
// worker threads at all; Submit and ParallelFor execute on the caller's
// thread. Constrained CI containers therefore can neither deadlock on a
// starved queue nor oversubscribe a single core.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace sidet {

// Observer hooks for pool telemetry. util stays dependency-free: the
// telemetry layer adapts these to a MetricsRegistry
// (AttachThreadPoolTelemetry in telemetry/exporters.h). Unset hooks cost
// nothing on the task path.
struct ThreadPoolHooks {
  // Queue depth after every enqueue and dequeue (0 in inline mode).
  std::function<void(std::size_t depth)> queue_depth;
  // Execution wall time of each completed task, in seconds.
  std::function<void(double seconds)> task_seconds;
};

class ThreadPool {
 public:
  // threads == 0 resolves to DefaultThreadCount().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Number of execution lanes (1 in inline mode).
  std::size_t size() const { return workers_.empty() ? 1 : workers_.size(); }
  // True when no worker threads exist and all work runs on the caller.
  bool inline_mode() const { return workers_.empty(); }

  // Enqueues a task; the future resolves when it has run. In inline mode the
  // task runs before Submit returns.
  std::future<void> Submit(std::function<void()> task);

  // Runs body(i) for every i in [0, n). Work is distributed dynamically in
  // contiguous chunks; the call returns once all indices have run. The body
  // must confine writes to per-index state (or synchronize itself).
  void ParallelFor(std::size_t n, const std::function<void(std::size_t)>& body);

  // Static contiguous partition for per-lane arenas: splits [0, n) into at
  // most size() ranges and runs body(lane, begin, end) with lane < size().
  // Every range except the last is a multiple of `align` indices long and at
  // least `min_chunk` long (so lanes writing `double` outputs ≥ 4KiB apart
  // never false-share mid-chunk); short inputs collapse to fewer lanes, and
  // n <= min_chunk runs inline as body(0, 0, n). Unlike ParallelFor the
  // lane index is stable per range, so bodies may keep per-lane scratch.
  void ParallelForChunks(std::size_t n, std::size_t min_chunk, std::size_t align,
                         const std::function<void(std::size_t lane, std::size_t begin,
                                                  std::size_t end)>& body);

  // hardware_concurrency(), clamped to at least 1 (the standard allows 0).
  static std::size_t DefaultThreadCount();

  // Installs observer hooks. Call before submitting work; hooks run on
  // worker threads (or the caller in inline mode) and must be thread-safe.
  void SetHooks(ThreadPoolHooks hooks);

 private:
  void WorkerLoop();
  void RunTask(std::packaged_task<void()>& task);

  std::vector<std::thread> workers_;
  std::deque<std::packaged_task<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  ThreadPoolHooks hooks_;              // guarded by mu_
  std::atomic<bool> has_hooks_{false}; // fast no-hooks test off the hot path
};

// Resolves a caller-requested lane count: 0 (and negatives) mean "hardware
// concurrency", and explicit requests are clamped to hardware concurrency —
// oversubscribing a small host only adds context-switch thrash to the hot
// path (BENCH_throughput's old negative thread scaling). Always >= 1.
std::size_t ResolveLaneCount(int threads);

// One-shot helper: runs body(i) for i in [0, n) on ResolveLaneCount(threads)
// lanes. threads <= 1 or n <= 1 executes inline with no pool construction;
// otherwise a transient pool is stood up for the call.
void ParallelFor(int threads, std::size_t n, const std::function<void(std::size_t)>& body);

// One-shot chunked helper (see ThreadPool::ParallelForChunks). Runs inline
// when the resolved lane count is 1 or n fits one chunk.
void ParallelForChunks(int threads, std::size_t n, std::size_t min_chunk, std::size_t align,
                       const std::function<void(std::size_t lane, std::size_t begin,
                                                std::size_t end)>& body);

}  // namespace sidet
