// CSV read/write with RFC-4180 quoting — datasets and bench results are
// exportable as CSV so they can be plotted outside this repo.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sidet {

using CsvRow = std::vector<std::string>;

std::string CsvEscape(std::string_view field);
std::string WriteCsvRow(const CsvRow& row);
std::string WriteCsv(const std::vector<CsvRow>& rows);

// Parses quoted fields, embedded separators, embedded newlines and doubled
// quotes. Accepts both \n and \r\n line endings.
Result<std::vector<CsvRow>> ParseCsv(std::string_view text);

}  // namespace sidet
