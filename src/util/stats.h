// Descriptive statistics used by the survey module, dataset reports and
// benchmark summaries.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace sidet {

double Mean(std::span<const double> values);
// Sample variance (n-1 denominator); 0 for fewer than two values.
double Variance(std::span<const double> values);
double StdDev(std::span<const double> values);
double Min(std::span<const double> values);
double Max(std::span<const double> values);
// Linear-interpolated percentile, p in [0, 100]. Requires non-empty input.
double Percentile(std::vector<double> values, double p);
double Median(std::vector<double> values);

// Pearson correlation; 0 when either side is constant.
double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys);

// Incremental mean/variance accumulator (Welford).
class RunningStats {
 public:
  void Add(double x);
  std::size_t count() const { return count_; }
  double mean() const { return mean_; }
  double variance() const;  // sample variance
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Histogram over fixed-width bins in [lo, hi); out-of-range values clamp to
// the edge bins. (The telemetry layer's sidet::Histogram is the atomic,
// Prometheus-style one; this is the plain analysis helper.)
class FixedBinHistogram {
 public:
  FixedBinHistogram(double lo, double hi, std::size_t bins);
  void Add(double x);
  std::size_t bin_count() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_[bin]; }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace sidet
