// Simulated time.
//
// The smart-home simulator, the automation engine, and the generated datasets
// all reason about *time of day* and *day of week* (e.g. "if someone goes
// home and it is afternoon or later, turn on the lights" — Table IV of the
// paper). SimTime is a count of simulated seconds since an epoch that starts
// on a Monday at 00:00; SimClock is the advancing clock the discrete-event
// simulator owns.
#pragma once

#include <cstdint>
#include <string>

namespace sidet {

inline constexpr std::int64_t kSecondsPerMinute = 60;
inline constexpr std::int64_t kSecondsPerHour = 3600;
inline constexpr std::int64_t kSecondsPerDay = 86400;
inline constexpr std::int64_t kDaysPerWeek = 7;

enum class DayOfWeek { kMonday = 0, kTuesday, kWednesday, kThursday, kFriday, kSaturday, kSunday };

// Day segments used as categorical ML features and in rule conditions.
enum class DaySegment {
  kNight = 0,      // 00:00–06:00
  kMorning,        // 06:00–12:00
  kAfternoon,      // 12:00–18:00
  kEvening,        // 18:00–24:00
};

class SimTime {
 public:
  constexpr SimTime() = default;
  constexpr explicit SimTime(std::int64_t seconds) : seconds_(seconds) {}

  static constexpr SimTime FromDayTime(std::int64_t day, int hour, int minute = 0,
                                       int second = 0) {
    return SimTime(day * kSecondsPerDay + hour * kSecondsPerHour +
                   minute * kSecondsPerMinute + second);
  }

  constexpr std::int64_t seconds() const { return seconds_; }
  constexpr std::int64_t day() const { return seconds_ / kSecondsPerDay; }
  constexpr std::int64_t second_of_day() const { return seconds_ % kSecondsPerDay; }
  constexpr int hour() const { return static_cast<int>(second_of_day() / kSecondsPerHour); }
  constexpr int minute() const {
    return static_cast<int>((second_of_day() % kSecondsPerHour) / kSecondsPerMinute);
  }
  // Fractional hour in [0, 24), convenient as a continuous ML feature.
  constexpr double hour_of_day() const {
    return static_cast<double>(second_of_day()) / kSecondsPerHour;
  }

  constexpr DayOfWeek day_of_week() const {
    return static_cast<DayOfWeek>(day() % kDaysPerWeek);
  }
  constexpr bool is_weekend() const {
    const DayOfWeek d = day_of_week();
    return d == DayOfWeek::kSaturday || d == DayOfWeek::kSunday;
  }
  DaySegment day_segment() const;

  std::string ToString() const;  // "d3 14:05:00 (Thu)"

  constexpr SimTime operator+(std::int64_t delta_seconds) const {
    return SimTime(seconds_ + delta_seconds);
  }
  constexpr std::int64_t operator-(SimTime other) const { return seconds_ - other.seconds_; }
  constexpr auto operator<=>(const SimTime&) const = default;

 private:
  std::int64_t seconds_ = 0;
};

const char* ToString(DayOfWeek day);
const char* ToString(DaySegment segment);

class SimClock {
 public:
  explicit SimClock(SimTime start = SimTime()) : now_(start) {}

  SimTime now() const { return now_; }
  void AdvanceSeconds(std::int64_t seconds) { now_ = now_ + seconds; }
  void AdvanceTo(SimTime t) { now_ = t > now_ ? t : now_; }

 private:
  SimTime now_;
};

}  // namespace sidet
