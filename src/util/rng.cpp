#include "util/rng.h"

#include <cassert>
#include <cmath>
#include <numeric>
#include <unordered_set>

namespace sidet {

std::uint64_t SplitMix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start from the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

std::uint64_t Rng::Next() {
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

Rng Rng::Fork() { return Rng(Next() ^ 0xa5a5a5a5a5a5a5a5ULL); }

Rng Rng::Fork(std::uint64_t stream) const {
  // Hash the full 256-bit state with the stream index through splitmix64 so
  // sibling streams are decorrelated even for adjacent indices.
  std::uint64_t h = stream ^ 0x9e3779b97f4a7c15ULL;
  for (const std::uint64_t word : state_) {
    std::uint64_t mix = h ^ word;
    h = SplitMix64(mix);
  }
  return Rng(h);
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(Next());  // full 64-bit range
  // Rejection sampling to remove modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t value = Next();
  while (value >= limit) value = Next();
  return lo + static_cast<std::int64_t>(value % range);
}

double Rng::UniformDouble() {
  // 53 random mantissa bits.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) { return UniformDouble() < p; }

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = UniformDouble();
  while (u1 <= 1e-300) u1 = UniformDouble();
  const double u2 = UniformDouble();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = radius * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * radius * std::cos(theta);
}

std::int64_t Rng::Zipf(std::int64_t n, double s) {
  assert(n >= 1);
  // Rejection method (Devroye) — works for any n without precomputing the
  // full harmonic table, and is exact.
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = UniformDouble();
    const double v = UniformDouble();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x > static_cast<double>(n) || x < 1.0) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::int64_t>(x);
    }
  }
}

std::size_t Rng::Categorical(std::span<const double> weights) {
  double total = 0.0;
  for (const double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double target = UniformDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    target -= weights[i];
    if (target < 0.0) return i;
  }
  return weights.size() - 1;  // numeric edge: fall into the last bucket
}

std::int64_t Rng::Poisson(double lambda) {
  assert(lambda >= 0.0);
  if (lambda < 30.0) {
    const double limit = std::exp(-lambda);
    std::int64_t k = 0;
    double product = UniformDouble();
    while (product > limit) {
      ++k;
      product *= UniformDouble();
    }
    return k;
  }
  // Normal approximation with continuity correction.
  const double sample = Normal(lambda, std::sqrt(lambda));
  return sample < 0.0 ? 0 : static_cast<std::int64_t>(sample + 0.5);
}

std::vector<std::size_t> Rng::SampleWithoutReplacement(std::size_t n, std::size_t k) {
  assert(k <= n);
  // Floyd's algorithm: O(k) expected, no O(n) scratch.
  std::unordered_set<std::size_t> chosen;
  std::vector<std::size_t> out;
  out.reserve(k);
  for (std::size_t j = n - k; j < n; ++j) {
    const auto t = static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(j)));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

}  // namespace sidet
