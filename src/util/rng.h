// Deterministic pseudo-random number generation and the distributions the
// simulator, data generator and ML library need.
//
// Everything in this project that is stochastic takes an explicit Rng (or a
// seed) so experiments are exactly reproducible; no library code ever reads
// the wall clock or std::random_device.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace sidet {

// splitmix64: used to expand a single 64-bit seed into the xoshiro state.
std::uint64_t SplitMix64(std::uint64_t& state);

// xoshiro256** — fast, high-quality, tiny state. Satisfies the C++
// UniformRandomBitGenerator concept so it also plugs into <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return Next(); }
  std::uint64_t Next();

  // Derive an independent child stream; useful to give each subsystem its own
  // generator without coupling their consumption patterns. Advances this
  // generator by one draw.
  Rng Fork();

  // Derive the `stream`-th child stream WITHOUT advancing this generator:
  // Fork(i) depends only on (current state, i), so callers can hand one
  // independent, reproducible stream to every parallel work unit and the
  // results are bit-identical to a sequential run at any thread count.
  Rng Fork(std::uint64_t stream) const;

  // --- Uniform primitives -------------------------------------------------
  // Unbiased integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);
  // Double in [0, 1).
  double UniformDouble();
  // Double in [lo, hi).
  double UniformDouble(double lo, double hi);
  bool Bernoulli(double p);

  // --- Shaped distributions ----------------------------------------------
  // Standard normal via Box–Muller (cached second variate).
  double Normal(double mean = 0.0, double stddev = 1.0);
  // Zipf over ranks 1..n with exponent s (popularity skew for the strategy
  // corpus, Fig 5). Uses inverse-CDF over the precomputable harmonic weights
  // when n is small; rejection sampling otherwise.
  std::int64_t Zipf(std::int64_t n, double s);
  // Index sampled proportionally to non-negative weights. Requires at least
  // one strictly positive weight.
  std::size_t Categorical(std::span<const double> weights);
  // Poisson(lambda) via Knuth for small lambda, normal approximation for
  // large lambda.
  std::int64_t Poisson(double lambda);

  // --- Collections ---------------------------------------------------------
  template <typename T>
  void Shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(items[i - 1], items[j]);
    }
  }

  // k distinct indices drawn uniformly from [0, n). Requires k <= n.
  std::vector<std::size_t> SampleWithoutReplacement(std::size_t n, std::size_t k);

 private:
  std::uint64_t state_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace sidet
