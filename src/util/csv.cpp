#include "util/csv.h"

namespace sidet {

std::string CsvEscape(std::string_view field) {
  const bool needs_quotes =
      field.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quotes) return std::string(field);
  std::string out = "\"";
  for (const char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

std::string WriteCsvRow(const CsvRow& row) {
  std::string out;
  for (std::size_t i = 0; i < row.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += CsvEscape(row[i]);
  }
  out.push_back('\n');
  return out;
}

std::string WriteCsv(const std::vector<CsvRow>& rows) {
  std::string out;
  for (const CsvRow& row : rows) out += WriteCsvRow(row);
  return out;
}

Result<std::vector<CsvRow>> ParseCsv(std::string_view text) {
  std::vector<CsvRow> rows;
  CsvRow row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  const auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  const auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (std::size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) return Error("quote inside unquoted field at offset " + std::to_string(i));
        in_quotes = true;
        field_started = true;
        break;
      case ',': end_field(); break;
      case '\r': break;  // swallow; \n ends the row
      case '\n': end_row(); break;
      default:
        field.push_back(c);
        field_started = true;
    }
  }
  if (in_quotes) return Error("unterminated quoted field");
  if (field_started || !row.empty()) end_row();
  return rows;
}

}  // namespace sidet
