// Aligned ASCII table and bar-chart rendering for benchmark output.
//
// Every bench binary regenerates one of the paper's tables or figures; this
// is the shared presentation layer so their output looks uniform.
#pragma once

#include <string>
#include <vector>

namespace sidet {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Convenience: formats doubles with the given precision.
  static std::string Cell(double value, int precision = 4);
  static std::string Percent(double fraction, int precision = 2);

  std::string Render() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Horizontal ASCII bar chart: one row per labelled value, proportional bars.
// Used to render the paper's figures (Fig 4, 5, 6, 7) as text series.
class BarChart {
 public:
  explicit BarChart(std::string title, int width = 50);
  void Add(std::string label, double value);
  std::string Render() const;

 private:
  std::string title_;
  int width_;
  std::vector<std::pair<std::string, double>> bars_;
};

}  // namespace sidet
