// Small string helpers shared across the project.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace sidet {

std::vector<std::string> Split(std::string_view text, char sep);
// Split on any whitespace run; no empty tokens.
std::vector<std::string> SplitWhitespace(std::string_view text);
std::string_view Trim(std::string_view text);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);
std::string ToLower(std::string_view text);
std::string ToUpper(std::string_view text);
bool StartsWith(std::string_view text, std::string_view prefix);
bool EndsWith(std::string_view text, std::string_view suffix);
bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle);
// "some_snake_name" -> "Some snake name"
std::string Humanize(std::string_view snake);
// printf-style convenience.
std::string Format(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace sidet
