// Minimal command-line flag parsing for the bench/example binaries:
//   --name value   or   --name=value   (flags may appear in any order)
// Unknown flags are an error so typos surface; positional arguments are
// collected separately.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"

namespace sidet {

class ArgParser {
 public:
  // Declare flags with defaults before Parse.
  void AddFlag(const std::string& name, std::string default_value,
               std::string description = "");

  Status Parse(int argc, const char* const* argv);

  const std::string& Get(const std::string& name) const;
  std::int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;  // "true"/"1"/"yes"

  const std::vector<std::string>& positional() const { return positional_; }

  // Usage text from the declared flags.
  std::string Help(const std::string& program) const;

 private:
  struct Flag {
    std::string value;
    std::string description;
  };
  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
};

}  // namespace sidet
