// Byte-buffer reader/writer with explicit endianness.
//
// Used by the crypto layer (MD5/AES block handling), the miio-style packet
// codec, and the synthetic firmware image: every on-the-wire / on-flash
// structure in this project is serialized through these two classes so that
// layout is defined in exactly one place per structure.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"

namespace sidet {

using Bytes = std::vector<std::uint8_t>;

// Appends fixed-width integers and blobs. Big-endian variants are the network
// order the miio-style protocol uses; little-endian variants match the
// firmware image layout (ARM little-endian flash, as on the real gateway).
class ByteWriter {
 public:
  const Bytes& data() const { return buffer_; }
  Bytes Take() { return std::move(buffer_); }
  std::size_t size() const { return buffer_.size(); }

  void U8(std::uint8_t v) { buffer_.push_back(v); }
  void U16Be(std::uint16_t v);
  void U32Be(std::uint32_t v);
  void U64Be(std::uint64_t v);
  void U16Le(std::uint16_t v);
  void U32Le(std::uint32_t v);
  void U64Le(std::uint64_t v);
  void Raw(std::span<const std::uint8_t> bytes);
  void Raw(std::string_view text);
  // Writes exactly `width` bytes: the string truncated or zero-padded.
  void FixedString(std::string_view text, std::size_t width);
  // Zero padding.
  void Pad(std::size_t count, std::uint8_t fill = 0);

  // Overwrite previously written bytes (e.g. a checksum slot) in place.
  void PatchU32Be(std::size_t offset, std::uint32_t v);
  void PatchRaw(std::size_t offset, std::span<const std::uint8_t> bytes);

 private:
  Bytes buffer_;
};

// Bounds-checked sequential reads over a byte span. Every read returns a
// Result so malformed packets surface as errors, never as UB.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::size_t remaining() const { return data_.size() - pos_; }
  std::size_t position() const { return pos_; }
  bool AtEnd() const { return remaining() == 0; }

  Result<std::uint8_t> U8();
  Result<std::uint16_t> U16Be();
  Result<std::uint32_t> U32Be();
  Result<std::uint64_t> U64Be();
  Result<std::uint16_t> U16Le();
  Result<std::uint32_t> U32Le();
  Result<std::uint64_t> U64Le();
  Result<Bytes> Raw(std::size_t count);
  // Reads `width` bytes and strips trailing zero padding.
  Result<std::string> FixedString(std::size_t width);
  Status Skip(std::size_t count);
  Status SeekTo(std::size_t offset);

 private:
  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

// Hex helpers (lowercase).
std::string ToHex(std::span<const std::uint8_t> bytes);
Result<Bytes> FromHex(std::string_view hex);

// Convenience converters between std::string payloads and byte vectors.
Bytes ToBytes(std::string_view text);
std::string ToString(std::span<const std::uint8_t> bytes);

}  // namespace sidet
