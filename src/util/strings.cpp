#include "util/strings.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace sidet {

std::vector<std::string> Split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> SplitWhitespace(std::string_view text) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < text.size()) {
    while (i < text.size() && std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    const std::size_t start = i;
    while (i < text.size() && !std::isspace(static_cast<unsigned char>(text[i]))) ++i;
    if (i > start) out.emplace_back(text.substr(start, i - start));
  }
  return out;
}

std::string_view Trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(text[end - 1]))) --end;
  return text.substr(begin, end - begin);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string ToUpper(std::string_view text) {
  std::string out(text);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool StartsWith(std::string_view text, std::string_view prefix) {
  return text.size() >= prefix.size() && text.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() && text.substr(text.size() - suffix.size()) == suffix;
}

bool ContainsIgnoreCase(std::string_view haystack, std::string_view needle) {
  return ToLower(haystack).find(ToLower(needle)) != std::string::npos;
}

std::string Humanize(std::string_view snake) {
  std::string out(snake);
  for (char& c : out) {
    if (c == '_') c = ' ';
  }
  if (!out.empty()) out[0] = static_cast<char>(std::toupper(static_cast<unsigned char>(out[0])));
  return out;
}

std::string Format(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out(needed > 0 ? static_cast<std::size_t>(needed) : 0, '\0');
  if (needed > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  va_end(args);
  return out;
}

}  // namespace sidet
