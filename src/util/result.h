// Result<T>: a lightweight expected-like type for recoverable runtime errors.
//
// Library code in this project reserves exceptions for programming errors
// (violated preconditions, corrupted internal state). Anything that can fail
// because of *input* — a malformed packet, an unparsable rule, an unknown
// device id — returns Result<T> so the caller decides how to react.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace sidet {

// Error carries a human-readable message; context() prepends a prefix so
// errors accumulate a breadcrumb trail as they bubble up.
class Error {
 public:
  Error() = default;
  explicit Error(std::string message) : message_(std::move(message)) {}

  const std::string& message() const { return message_; }

  Error context(const std::string& prefix) const {
    return Error(prefix + ": " + message_);
  }

 private:
  std::string message_;
};

template <typename T>
class [[nodiscard]] Result {
 public:
  // Implicit from value and from Error keeps call sites terse:
  //   return 42;            // ok
  //   return Error("bad");  // error
  Result(T value) : value_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const Error& error() const {
    assert(!ok());
    return error_;
  }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Error error_;
};

// Status: Result with no payload.
class [[nodiscard]] Status {
 public:
  Status() = default;  // ok
  Status(Error error) : error_(std::move(error)) {}  // NOLINT(google-explicit-constructor)

  static Status Ok() { return Status(); }

  bool ok() const { return !error_.has_value(); }
  explicit operator bool() const { return ok(); }

  const Error& error() const {
    assert(!ok());
    return *error_;
  }

 private:
  std::optional<Error> error_;
};

}  // namespace sidet
