#include "util/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace sidet {

double Mean(std::span<const double> values) {
  if (values.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : values) sum += v;
  return sum / static_cast<double>(values.size());
}

double Variance(std::span<const double> values) {
  if (values.size() < 2) return 0.0;
  const double mean = Mean(values);
  double sum_sq = 0.0;
  for (const double v : values) sum_sq += (v - mean) * (v - mean);
  return sum_sq / static_cast<double>(values.size() - 1);
}

double StdDev(std::span<const double> values) { return std::sqrt(Variance(values)); }

double Min(std::span<const double> values) {
  assert(!values.empty());
  return *std::min_element(values.begin(), values.end());
}

double Max(std::span<const double> values) {
  assert(!values.empty());
  return *std::max_element(values.begin(), values.end());
}

double Percentile(std::vector<double> values, double p) {
  assert(!values.empty());
  assert(p >= 0.0 && p <= 100.0);
  std::sort(values.begin(), values.end());
  const double rank = p / 100.0 * static_cast<double>(values.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, values.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return values[lo] * (1.0 - frac) + values[hi] * frac;
}

double Median(std::vector<double> values) { return Percentile(std::move(values), 50.0); }

double PearsonCorrelation(std::span<const double> xs, std::span<const double> ys) {
  assert(xs.size() == ys.size());
  if (xs.size() < 2) return 0.0;
  const double mx = Mean(xs);
  const double my = Mean(ys);
  double sxy = 0.0, sxx = 0.0, syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

FixedBinHistogram::FixedBinHistogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  assert(hi > lo);
  assert(bins > 0);
}

void FixedBinHistogram::Add(double x) {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  auto bin = static_cast<std::ptrdiff_t>(std::floor((x - lo_) / width));
  bin = std::clamp<std::ptrdiff_t>(bin, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

double FixedBinHistogram::bin_lo(std::size_t bin) const {
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return lo_ + width * static_cast<double>(bin);
}

double FixedBinHistogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

}  // namespace sidet
