// Allocation-counting test hook for the "zero per-row heap allocations"
// guarantees on the judge hot path (DESIGN.md §15).
//
// The probe is two pieces:
//
//   * this library half — a thread-local counter and an `active` flag,
//     always compiled, costing nothing unless someone bumps the counter;
//   * an opt-in replacement `operator new` TU (tests/alloc_hook.cpp) that
//     increments the counter on every global allocation and flips the flag
//     from a static initializer. Only test binaries that explicitly compile
//     that TU observe counts; production binaries never link it.
//
// Tests gate on AllocProbe::Active() and skip when the hook is absent (e.g.
// sanitizer builds, where interposing on operator new would fight the
// sanitizer's own allocator).
#pragma once

#include <cstddef>

namespace sidet {

namespace detail {
// Incremented by the replacement operator new when the hook TU is linked.
extern thread_local std::size_t alloc_probe_count;
// Set to true by the hook TU's static initializer.
extern bool alloc_probe_active;
}  // namespace detail

class AllocProbe {
 public:
  // True when the counting operator new is linked into this binary.
  static bool Active() { return detail::alloc_probe_active; }
  // Allocations made by the calling thread since the last Reset().
  static std::size_t Count() { return detail::alloc_probe_count; }
  static void Reset() { detail::alloc_probe_count = 0; }
};

}  // namespace sidet
