// Leveled logging with a swappable sink.
//
// Libraries log through this; tests install a capturing sink, tools leave the
// default stderr sink. Intentionally tiny — no formatting DSL, callers build
// the message with sidet::Format.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace sidet {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

const char* ToString(LogLevel level);

using LogSink = std::function<void(LogLevel, std::string_view message)>;

// Replaces the process-wide sink; returns the previous one so scoped
// replacement (tests) can restore it.
LogSink SetLogSink(LogSink sink);
// Messages below this level are dropped before reaching the sink.
void SetMinLogLevel(LogLevel level);

void Log(LogLevel level, std::string_view message);

inline void LogDebug(std::string_view m) { Log(LogLevel::kDebug, m); }
inline void LogInfo(std::string_view m) { Log(LogLevel::kInfo, m); }
inline void LogWarn(std::string_view m) { Log(LogLevel::kWarn, m); }
inline void LogError(std::string_view m) { Log(LogLevel::kError, m); }

// RAII: installs a sink that appends into `captured`, restores on scope exit.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(std::string& captured);
  ~ScopedLogCapture();

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

 private:
  LogSink previous_;
};

}  // namespace sidet
