// Leveled logging with a swappable sink.
//
// Libraries log through this; tests install a capturing sink, tools leave the
// default stderr sink. Intentionally tiny — no formatting DSL, callers build
// the message with sidet::Format.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace sidet {

enum class LogLevel { kDebug = 0, kInfo, kWarn, kError };

const char* ToString(LogLevel level);

// Sinks run *outside* the logging mutex (see Log below), so concurrent Log
// calls may invoke the sink concurrently — sinks must be thread-safe.
using LogSink = std::function<void(LogLevel, std::string_view message)>;

// Replaces the process-wide sink; returns the previous one so scoped
// replacement (tests) can restore it.
LogSink SetLogSink(LogSink sink);
// Messages below this level are dropped before reaching the sink. The
// initial level honors the SIDET_LOG_LEVEL environment variable at first
// use ("debug" / "info" / "warn" / "error", case-insensitive, or the
// numeric 0-3); unset or unparsable defaults to kInfo.
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

// Parses a SIDET_LOG_LEVEL-style spelling; `fallback` on unknown input.
LogLevel ParseLogLevel(std::string_view text, LogLevel fallback);

// Thread-safe, and safe to call re-entrantly from a sink: the sink and
// level are copied under the global mutex and the sink runs outside it, so
// a slow or logging sink can neither deadlock nor serialize the process.
void Log(LogLevel level, std::string_view message);

inline void LogDebug(std::string_view m) { Log(LogLevel::kDebug, m); }
inline void LogInfo(std::string_view m) { Log(LogLevel::kInfo, m); }
inline void LogWarn(std::string_view m) { Log(LogLevel::kWarn, m); }
inline void LogError(std::string_view m) { Log(LogLevel::kError, m); }

// RAII: installs a sink that appends into `captured`, restores on scope exit.
class ScopedLogCapture {
 public:
  explicit ScopedLogCapture(std::string& captured);
  ~ScopedLogCapture();

  ScopedLogCapture(const ScopedLogCapture&) = delete;
  ScopedLogCapture& operator=(const ScopedLogCapture&) = delete;

 private:
  LogSink previous_;
};

}  // namespace sidet
