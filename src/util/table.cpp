#include "util/table.h"

#include <algorithm>
#include <cassert>

#include "util/strings.h"

namespace sidet {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::AddRow(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

std::string TextTable::Cell(double value, int precision) {
  return Format("%.*f", precision, value);
}

std::string TextTable::Percent(double fraction, int precision) {
  return Format("%.*f%%", precision, fraction * 100.0);
}

std::string TextTable::Render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  }

  const auto render_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(widths[c] - row[c].size(), ' ') + " |";
    }
    return line + "\n";
  };
  const auto rule = [&] {
    std::string line = "+";
    for (const std::size_t w : widths) line += std::string(w + 2, '-') + "+";
    return line + "\n";
  };

  std::string out = rule() + render_row(header_) + rule();
  for (const auto& row : rows_) out += render_row(row);
  out += rule();
  return out;
}

BarChart::BarChart(std::string title, int width) : title_(std::move(title)), width_(width) {}

void BarChart::Add(std::string label, double value) {
  bars_.emplace_back(std::move(label), value);
}

std::string BarChart::Render() const {
  std::string out = title_ + "\n";
  if (bars_.empty()) return out;
  std::size_t label_width = 0;
  double max_value = 0.0;
  for (const auto& [label, value] : bars_) {
    label_width = std::max(label_width, label.size());
    max_value = std::max(max_value, value);
  }
  for (const auto& [label, value] : bars_) {
    const int filled =
        max_value > 0.0 ? static_cast<int>(value / max_value * width_ + 0.5) : 0;
    out += "  " + label + std::string(label_width - label.size(), ' ') + " | " +
           std::string(static_cast<std::size_t>(filled), '#') + " " +
           Format("%.4g", value) + "\n";
  }
  return out;
}

}  // namespace sidet
